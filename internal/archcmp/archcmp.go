// Package archcmp models the five systems the paper compares the SCC
// against in Figure 10: Itanium2 Montvale, Xeon X5570, Opteron 6174 and the
// NVIDIA Tesla C1060 and M2050 GPUs. CSR SpMV is bandwidth-bound on all of
// them, so each system is a calibrated roofline: sustained SpMV throughput
// is the bandwidth-limited rate (or compute peak, whichever binds), scaled
// by a measured-efficiency factor that captures format overheads, NUMA
// effects and (on GPUs) the Bell & Garland kernel efficiencies. Power uses
// the manufacturer TDP, exactly as the paper does ("the power consumption
// of the processors has been obtained from the manufacturer's
// documentation").
package archcmp

import "fmt"

// SpMVFlopsPerByte is the arithmetic intensity of CSR SpMV with 32-bit
// indices and double precision: 2 flops per nonzero against 12 streamed
// bytes (8-byte value + 4-byte index), ignoring reusable x/y traffic.
const SpMVFlopsPerByte = 2.0 / 12.0

// System is one comparison machine.
type System struct {
	// Name is the label used in Figure 10.
	Name string
	// Cores is the hardware parallelism the paper quotes.
	Cores int
	// ClockGHz is the core clock.
	ClockGHz float64
	// PeakGFLOPS is the double-precision peak of the full chip.
	PeakGFLOPS float64
	// MemBWGBs is the peak memory bandwidth in GB/s.
	MemBWGBs float64
	// SpMVEfficiency is the fraction of the roofline bound the measured
	// average CSR SpMV sustains (calibration constant).
	SpMVEfficiency float64
	// TDPWatts is the manufacturer thermal design power.
	TDPWatts float64
	// GPU marks the Tesla entries (they run the Bell & Garland CUDA
	// kernels rather than the OpenMP code).
	GPU bool
}

// RooflineGFLOPS returns the unscaled roofline bound for CSR SpMV:
// min(compute peak, bandwidth x intensity).
func (s System) RooflineGFLOPS() float64 {
	bw := s.MemBWGBs * SpMVFlopsPerByte
	if bw < s.PeakGFLOPS {
		return bw
	}
	return s.PeakGFLOPS
}

// SpMVGFLOPS returns the modelled average CSR SpMV throughput.
func (s System) SpMVGFLOPS() float64 {
	return s.SpMVEfficiency * s.RooflineGFLOPS()
}

// MFLOPSPerWatt returns the paper's efficiency metric for the system.
func (s System) MFLOPSPerWatt() float64 {
	if s.TDPWatts <= 0 {
		return 0
	}
	return s.SpMVGFLOPS() * 1000 / s.TDPWatts
}

// String implements fmt.Stringer.
func (s System) String() string {
	return fmt.Sprintf("%s (%d cores @ %.2f GHz)", s.Name, s.Cores, s.ClockGHz)
}

// The comparison systems, calibrated to the paper's Figure 10 relations:
// M2050 averages 7.9 GFLOPS (7.6x the SCC default) at ~35 MFLOPS/W; the
// C1060 beats the Xeon by 2.4x and the Opteron by 1.7x while its MFLOPS/W
// roughly ties theirs; the Itanium2 trails the SCC on both axes.
var (
	// Itanium2Montvale: dual core, 1.6 GHz, 9 MB L3 per core, FSB-bound.
	Itanium2Montvale = System{
		Name: "Itanium2 Montvale", Cores: 2, ClockGHz: 1.6,
		PeakGFLOPS: 12.8, MemBWGBs: 10.6, SpMVEfficiency: 0.425,
		TDPWatts: 104,
	}
	// XeonX5570: quad-core Nehalem-EP, 2.93 GHz, 8 MB shared L3.
	XeonX5570 = System{
		Name: "Xeon X5570", Cores: 4, ClockGHz: 2.93,
		PeakGFLOPS: 46.9, MemBWGBs: 32.0, SpMVEfficiency: 0.263,
		TDPWatts: 95,
	}
	// Opteron6174: 12-core Magny-Cours, 2.2 GHz, 12 MB shared L3.
	// The paper converts AMD's 80 W ACP to a 115 W TDP for comparison.
	Opteron6174 = System{
		Name: "Opteron 6174", Cores: 12, ClockGHz: 2.2,
		PeakGFLOPS: 105.6, MemBWGBs: 42.7, SpMVEfficiency: 0.277,
		TDPWatts: 115,
	}
	// TeslaC1060: GT200, 240 cores, 78 double-precision GFLOPS peak.
	TeslaC1060 = System{
		Name: "Tesla C1060", Cores: 240, ClockGHz: 1.30,
		PeakGFLOPS: 78, MemBWGBs: 102, SpMVEfficiency: 0.198,
		TDPWatts: 187.8, GPU: true,
	}
	// TeslaM2050: Fermi, 448 cores, 515.2 double-precision GFLOPS peak.
	TeslaM2050 = System{
		Name: "Tesla M2050", Cores: 448, ClockGHz: 1.15,
		PeakGFLOPS: 515.2, MemBWGBs: 148, SpMVEfficiency: 0.320,
		TDPWatts: 225, GPU: true,
	}
)

// Systems returns the Figure 10 comparison set in the paper's order
// (excluding the SCC itself, whose numbers come from the simulator).
func Systems() []System {
	return []System{Itanium2Montvale, XeonX5570, Opteron6174, TeslaC1060, TeslaM2050}
}

// SCCEntry adapts a simulated SCC result into the comparison table.
type SCCEntry struct {
	// Name labels the configuration ("SCC conf0" / "SCC conf1").
	Name string
	// GFLOPS is the simulated full-chip average SpMV throughput.
	GFLOPS float64
	// Watts is the modelled full-system power.
	Watts float64
}

// MFLOPSPerWatt returns the efficiency metric for the SCC entry.
func (e SCCEntry) MFLOPSPerWatt() float64 {
	if e.Watts <= 0 {
		return 0
	}
	return e.GFLOPS * 1000 / e.Watts
}
