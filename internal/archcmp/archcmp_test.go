package archcmp

import (
	"math"
	"strings"
	"testing"
)

func TestSystemsList(t *testing.T) {
	ss := Systems()
	if len(ss) != 5 {
		t.Fatalf("%d systems, want 5", len(ss))
	}
	for _, s := range ss {
		if s.SpMVGFLOPS() <= 0 || s.TDPWatts <= 0 {
			t.Errorf("%s: degenerate model %+v", s.Name, s)
		}
		if s.SpMVEfficiency <= 0 || s.SpMVEfficiency > 1 {
			t.Errorf("%s: efficiency %v outside (0,1]", s.Name, s.SpMVEfficiency)
		}
		if s.SpMVGFLOPS() > s.RooflineGFLOPS() {
			t.Errorf("%s: modelled SpMV exceeds the roofline", s.Name)
		}
	}
}

func TestRooflineBindsOnBandwidth(t *testing.T) {
	// Every comparison system is bandwidth-bound for CSR SpMV: the
	// roofline must equal bw * intensity, not the compute peak.
	for _, s := range Systems() {
		bwBound := s.MemBWGBs * SpMVFlopsPerByte
		if math.Abs(s.RooflineGFLOPS()-bwBound) > 1e-12 {
			t.Errorf("%s: roofline %v != bandwidth bound %v", s.Name, s.RooflineGFLOPS(), bwBound)
		}
	}
	// A compute-bound synthetic system must clamp at the peak.
	tiny := System{PeakGFLOPS: 1, MemBWGBs: 1000, SpMVEfficiency: 1}
	if tiny.RooflineGFLOPS() != 1 {
		t.Fatal("compute-bound roofline not clamped at peak")
	}
}

func TestM2050Anchor(t *testing.T) {
	// The paper quotes 7.9 GFLOPS average and ~35 MFLOPS/W for the M2050.
	g := TeslaM2050.SpMVGFLOPS()
	if math.Abs(g-7.9) > 0.2 {
		t.Fatalf("M2050 SpMV = %.2f GFLOPS, want ~7.9", g)
	}
	if e := TeslaM2050.MFLOPSPerWatt(); math.Abs(e-35) > 2 {
		t.Fatalf("M2050 efficiency = %.1f MFLOPS/W, want ~35", e)
	}
}

func TestC1060SpeedupsVsCPUs(t *testing.T) {
	// "the GPU shows speedups of 2.4 and 1.7 with respect to the
	// performance on both processors" (Xeon and Opteron).
	c := TeslaC1060.SpMVGFLOPS()
	if r := c / XeonX5570.SpMVGFLOPS(); math.Abs(r-2.4) > 0.15 {
		t.Fatalf("C1060/Xeon = %.2f, want ~2.4", r)
	}
	if r := c / Opteron6174.SpMVGFLOPS(); math.Abs(r-1.7) > 0.15 {
		t.Fatalf("C1060/Opteron = %.2f, want ~1.7", r)
	}
}

func TestCPUandC1060EfficienciesSimilar(t *testing.T) {
	// "the efficiencies of the Xeon and Opteron processors are quite
	// similar to the observed for Tesla C1060".
	effs := []float64{
		XeonX5570.MFLOPSPerWatt(),
		Opteron6174.MFLOPSPerWatt(),
		TeslaC1060.MFLOPSPerWatt(),
	}
	lo, hi := effs[0], effs[0]
	for _, e := range effs {
		lo = math.Min(lo, e)
		hi = math.Max(hi, e)
	}
	if hi/lo > 1.35 {
		t.Fatalf("Xeon/Opteron/C1060 efficiencies spread %.2fx: %v", hi/lo, effs)
	}
}

func TestPerformanceOrdering(t *testing.T) {
	// Figure 10(a): M2050 > C1060 > Opteron > Xeon > Itanium2.
	order := []System{TeslaM2050, TeslaC1060, Opteron6174, XeonX5570, Itanium2Montvale}
	for i := 1; i < len(order); i++ {
		if order[i].SpMVGFLOPS() >= order[i-1].SpMVGFLOPS() {
			t.Fatalf("%s (%.2f) not below %s (%.2f)",
				order[i].Name, order[i].SpMVGFLOPS(),
				order[i-1].Name, order[i-1].SpMVGFLOPS())
		}
	}
}

func TestItaniumTrailsTypicalSCC(t *testing.T) {
	// The SCC default configuration averages ~1 GFLOPS in the paper and
	// beats only the Itanium2; the Itanium2 model must sit below that.
	if g := Itanium2Montvale.SpMVGFLOPS(); g >= 1.0 {
		t.Fatalf("Itanium2 SpMV = %.2f GFLOPS; must trail the ~1 GFLOPS SCC", g)
	}
	// And every other system must beat 1 GFLOPS.
	for _, s := range []System{XeonX5570, Opteron6174, TeslaC1060, TeslaM2050} {
		if s.SpMVGFLOPS() <= 1.0 {
			t.Errorf("%s should beat the SCC's ~1 GFLOPS", s.Name)
		}
	}
}

func TestSCCEntry(t *testing.T) {
	e := SCCEntry{Name: "SCC conf0", GFLOPS: 1.0, Watts: 83.3}
	if got := e.MFLOPSPerWatt(); math.Abs(got-12.0) > 0.1 {
		t.Fatalf("SCC efficiency = %.2f, want ~12", got)
	}
	if (SCCEntry{}).MFLOPSPerWatt() != 0 {
		t.Fatal("zero watts must not divide")
	}
}

func TestSystemString(t *testing.T) {
	s := XeonX5570.String()
	if !strings.Contains(s, "Xeon X5570") || !strings.Contains(s, "4 cores") {
		t.Fatalf("String = %q", s)
	}
}

func TestGPUFlag(t *testing.T) {
	if !TeslaC1060.GPU || !TeslaM2050.GPU {
		t.Error("Tesla entries must be marked GPU")
	}
	if Itanium2Montvale.GPU || XeonX5570.GPU || Opteron6174.GPU {
		t.Error("CPU entries must not be marked GPU")
	}
}
