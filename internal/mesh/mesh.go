// Package mesh models the SCC's on-die interconnect: a 6x4 2D grid of
// routers (one per tile) using dimension-ordered X-then-Y routing. The
// timing model only needs hop counts (the SCC latency formula charges
// 4·2·C_mesh per hop), but the package also exposes full route enumeration
// and per-link utilisation accounting so congestion can be inspected.
package mesh

import "fmt"

// Coord is a router/tile coordinate on the grid; X grows rightward across
// the 6 columns, Y upward across the 4 rows.
type Coord struct {
	X, Y int
}

// String implements fmt.Stringer.
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Mesh is a W x H grid of routers.
type Mesh struct {
	W, H int
	// linkX[y][x] counts traversals of the horizontal link between
	// (x,y) and (x+1,y); linkY[y][x] the vertical link (x,y)-(x,y+1).
	linkX [][]uint64
	linkY [][]uint64
}

// New builds a W x H mesh. The SCC's is 6x4.
func New(w, h int) *Mesh {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("mesh: non-positive dimensions %dx%d", w, h))
	}
	m := &Mesh{W: w, H: h}
	m.linkX = make([][]uint64, h)
	m.linkY = make([][]uint64, h)
	for y := 0; y < h; y++ {
		m.linkX[y] = make([]uint64, max(w-1, 0))
		m.linkY[y] = make([]uint64, w)
	}
	return m
}

// NewSCC returns the SCC's 6x4 mesh.
func NewSCC() *Mesh { return New(6, 4) }

// InBounds reports whether c is a valid coordinate.
func (m *Mesh) InBounds(c Coord) bool {
	return c.X >= 0 && c.X < m.W && c.Y >= 0 && c.Y < m.H
}

// Hops returns the Manhattan distance between two routers - the hop count
// XY routing traverses.
func (m *Mesh) Hops(a, b Coord) int {
	m.check(a)
	m.check(b)
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

// Route returns the sequence of coordinates XY routing visits from a to b,
// inclusive of both endpoints: first along X, then along Y.
func (m *Mesh) Route(a, b Coord) []Coord {
	m.check(a)
	m.check(b)
	path := make([]Coord, 0, m.Hops(a, b)+1)
	cur := a
	path = append(path, cur)
	for cur.X != b.X {
		cur.X += sign(b.X - cur.X)
		path = append(path, cur)
	}
	for cur.Y != b.Y {
		cur.Y += sign(b.Y - cur.Y)
		path = append(path, cur)
	}
	return path
}

// Traverse records one message travelling from a to b on every link of the
// XY route and returns the hop count.
func (m *Mesh) Traverse(a, b Coord) int {
	path := m.Route(a, b)
	for i := 0; i+1 < len(path); i++ {
		p, q := path[i], path[i+1]
		switch {
		case q.X == p.X+1:
			m.linkX[p.Y][p.X]++
		case q.X == p.X-1:
			m.linkX[p.Y][q.X]++
		case q.Y == p.Y+1:
			m.linkY[p.Y][p.X]++
		default: // q.Y == p.Y-1
			m.linkY[q.Y][p.X]++
		}
	}
	return len(path) - 1
}

// LinkLoad returns the traversal count of the link between adjacent
// coordinates a and b; it panics when a and b are not neighbours.
func (m *Mesh) LinkLoad(a, b Coord) uint64 {
	m.check(a)
	m.check(b)
	switch {
	case a.Y == b.Y && b.X == a.X+1:
		return m.linkX[a.Y][a.X]
	case a.Y == b.Y && b.X == a.X-1:
		return m.linkX[a.Y][b.X]
	case a.X == b.X && b.Y == a.Y+1:
		return m.linkY[a.Y][a.X]
	case a.X == b.X && b.Y == a.Y-1:
		return m.linkY[b.Y][a.X]
	}
	panic(fmt.Sprintf("mesh: %v and %v are not adjacent", a, b))
}

// MaxLinkLoad returns the highest traversal count over all links - the
// congestion hot spot.
func (m *Mesh) MaxLinkLoad() uint64 {
	var best uint64
	for y := 0; y < m.H; y++ {
		for _, v := range m.linkX[y] {
			if v > best {
				best = v
			}
		}
		if y+1 < m.H {
			for _, v := range m.linkY[y] {
				if v > best {
					best = v
				}
			}
		}
	}
	return best
}

// TotalTraversals returns the sum of all link traversal counts
// (= sum over messages of their hop counts).
func (m *Mesh) TotalTraversals() uint64 {
	var t uint64
	for y := 0; y < m.H; y++ {
		for _, v := range m.linkX[y] {
			t += v
		}
		if y+1 < m.H {
			for _, v := range m.linkY[y] {
				t += v
			}
		}
	}
	return t
}

// ResetLoads zeroes all link counters.
func (m *Mesh) ResetLoads() {
	for y := 0; y < m.H; y++ {
		for x := range m.linkX[y] {
			m.linkX[y][x] = 0
		}
		for x := range m.linkY[y] {
			m.linkY[y][x] = 0
		}
	}
}

func (m *Mesh) check(c Coord) {
	if !m.InBounds(c) {
		panic(fmt.Sprintf("mesh: coordinate %v outside %dx%d", c, m.W, m.H))
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Diameter returns the longest shortest-path (in hops) between any two
// routers: (W-1)+(H-1) for a mesh.
func (m *Mesh) Diameter() int { return m.W - 1 + m.H - 1 }

// BisectionLinks returns the number of links crossing the vertical cut
// that splits the mesh into two halves of columns - the structural
// bisection width (H for an even-width mesh).
func (m *Mesh) BisectionLinks() int {
	if m.W < 2 {
		return 0
	}
	return m.H
}

// AverageDistance returns the mean hop count over all ordered router pairs
// (excluding self-pairs).
func (m *Mesh) AverageDistance() float64 {
	n := m.W * m.H
	if n < 2 {
		return 0
	}
	total := 0
	for ay := 0; ay < m.H; ay++ {
		for ax := 0; ax < m.W; ax++ {
			for by := 0; by < m.H; by++ {
				for bx := 0; bx < m.W; bx++ {
					total += abs(ax-bx) + abs(ay-by)
				}
			}
		}
	}
	return float64(total) / float64(n*n-n)
}
