package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSCCDimensions(t *testing.T) {
	m := NewSCC()
	if m.W != 6 || m.H != 4 {
		t.Fatalf("SCC mesh %dx%d, want 6x4", m.W, m.H)
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, d := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", d[0], d[1])
				}
			}()
			New(d[0], d[1])
		}()
	}
}

func TestHopsManhattan(t *testing.T) {
	m := NewSCC()
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{0, 0}, Coord{5, 0}, 5},
		{Coord{0, 0}, Coord{5, 3}, 8},
		{Coord{2, 1}, Coord{3, 2}, 2},
		{Coord{5, 3}, Coord{0, 0}, 8},
	}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRouteIsXThenY(t *testing.T) {
	m := NewSCC()
	path := m.Route(Coord{1, 1}, Coord{3, 3})
	want := []Coord{{1, 1}, {2, 1}, {3, 1}, {3, 2}, {3, 3}}
	if len(path) != len(want) {
		t.Fatalf("path %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
}

func TestRouteSelf(t *testing.T) {
	m := NewSCC()
	path := m.Route(Coord{2, 2}, Coord{2, 2})
	if len(path) != 1 || path[0] != (Coord{2, 2}) {
		t.Fatalf("self route = %v", path)
	}
}

func TestRouteNegativeDirections(t *testing.T) {
	m := NewSCC()
	path := m.Route(Coord{3, 3}, Coord{1, 1})
	if len(path) != 5 {
		t.Fatalf("path length %d, want 5", len(path))
	}
	if path[1] != (Coord{2, 3}) {
		t.Fatalf("first step %v; X must move first", path[1])
	}
}

func TestTraverseAccountsLinks(t *testing.T) {
	m := NewSCC()
	hops := m.Traverse(Coord{0, 0}, Coord{2, 1})
	if hops != 3 {
		t.Fatalf("hops = %d, want 3", hops)
	}
	if got := m.LinkLoad(Coord{0, 0}, Coord{1, 0}); got != 1 {
		t.Fatalf("link (0,0)-(1,0) load = %d, want 1", got)
	}
	if got := m.LinkLoad(Coord{1, 0}, Coord{2, 0}); got != 1 {
		t.Fatalf("link (1,0)-(2,0) load = %d, want 1", got)
	}
	if got := m.LinkLoad(Coord{2, 0}, Coord{2, 1}); got != 1 {
		t.Fatalf("link (2,0)-(2,1) load = %d, want 1", got)
	}
	if got := m.LinkLoad(Coord{0, 0}, Coord{0, 1}); got != 0 {
		t.Fatalf("unused link load = %d, want 0", got)
	}
	if m.TotalTraversals() != 3 {
		t.Fatalf("total = %d, want 3", m.TotalTraversals())
	}
}

func TestLinkLoadSymmetricLookup(t *testing.T) {
	m := NewSCC()
	m.Traverse(Coord{0, 0}, Coord{1, 0})
	if m.LinkLoad(Coord{1, 0}, Coord{0, 0}) != 1 {
		t.Fatal("reverse lookup of link load failed")
	}
	m.Traverse(Coord{4, 2}, Coord{4, 1}) // downward Y
	if m.LinkLoad(Coord{4, 1}, Coord{4, 2}) != 1 {
		t.Fatal("downward traversal not recorded")
	}
}

func TestLinkLoadPanicsOnNonAdjacent(t *testing.T) {
	m := NewSCC()
	defer func() {
		if recover() == nil {
			t.Fatal("LinkLoad on non-adjacent pair did not panic")
		}
	}()
	m.LinkLoad(Coord{0, 0}, Coord{2, 0})
}

func TestOutOfBoundsPanics(t *testing.T) {
	m := NewSCC()
	defer func() {
		if recover() == nil {
			t.Fatal("Hops out of bounds did not panic")
		}
	}()
	m.Hops(Coord{0, 0}, Coord{6, 0})
}

func TestMaxLinkLoadFindsHotspot(t *testing.T) {
	m := NewSCC()
	for i := 0; i < 7; i++ {
		m.Traverse(Coord{0, 0}, Coord{1, 0})
	}
	m.Traverse(Coord{5, 3}, Coord{4, 3})
	if got := m.MaxLinkLoad(); got != 7 {
		t.Fatalf("max link load = %d, want 7", got)
	}
}

func TestResetLoads(t *testing.T) {
	m := NewSCC()
	m.Traverse(Coord{0, 0}, Coord{5, 3})
	m.ResetLoads()
	if m.TotalTraversals() != 0 || m.MaxLinkLoad() != 0 {
		t.Fatal("loads survive reset")
	}
}

// Property: route length equals Manhattan distance + 1, endpoints match,
// and consecutive coordinates are grid neighbours.
func TestQuickRouteWellFormed(t *testing.T) {
	m := NewSCC()
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a := Coord{rng.Intn(6), rng.Intn(4)}
		b := Coord{rng.Intn(6), rng.Intn(4)}
		path := m.Route(a, b)
		if len(path) != m.Hops(a, b)+1 {
			return false
		}
		if path[0] != a || path[len(path)-1] != b {
			return false
		}
		for i := 0; i+1 < len(path); i++ {
			dx := path[i+1].X - path[i].X
			dy := path[i+1].Y - path[i].Y
			if abs(dx)+abs(dy) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: total traversals equals the sum of per-message hop counts.
func TestQuickTraversalConservation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		m := NewSCC()
		rng := rand.New(rand.NewSource(seed))
		var sum uint64
		for i := 0; i < int(n); i++ {
			a := Coord{rng.Intn(6), rng.Intn(4)}
			b := Coord{rng.Intn(6), rng.Intn(4)}
			sum += uint64(m.Traverse(a, b))
		}
		return m.TotalTraversals() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDiameterAndBisection(t *testing.T) {
	m := NewSCC()
	if m.Diameter() != 8 {
		t.Fatalf("SCC diameter = %d, want 8", m.Diameter())
	}
	if m.BisectionLinks() != 4 {
		t.Fatalf("SCC bisection = %d, want 4", m.BisectionLinks())
	}
	if New(1, 3).BisectionLinks() != 0 {
		t.Fatal("1-wide mesh has no bisection cut")
	}
}

func TestAverageDistance(t *testing.T) {
	// 2x1 mesh: the only pair is 1 hop apart.
	if got := New(2, 1).AverageDistance(); got != 1 {
		t.Fatalf("2x1 average = %v, want 1", got)
	}
	// SCC: average Manhattan distance on 6x4 grid.
	got := NewSCC().AverageDistance()
	if got < 3 || got > 3.6 {
		t.Fatalf("SCC average distance = %v, want ~3.3", got)
	}
	// Exhaustively verify against Hops.
	m := NewSCC()
	total, pairs := 0, 0
	for ax := 0; ax < 6; ax++ {
		for ay := 0; ay < 4; ay++ {
			for bx := 0; bx < 6; bx++ {
				for by := 0; by < 4; by++ {
					if ax == bx && ay == by {
						continue
					}
					total += m.Hops(Coord{ax, ay}, Coord{bx, by})
					pairs++
				}
			}
		}
	}
	want := float64(total) / float64(pairs)
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("average %v != brute force %v", got, want)
	}
}
