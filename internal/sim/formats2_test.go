package sim

import (
	"math"
	"testing"

	"repro/internal/scc"
	"repro/internal/sparse"
)

func checkAgainstCSR(t *testing.T, a *sparse.CSR, got []float64, ctx string) {
	t.Helper()
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1
	}
	want := make([]float64, a.Rows)
	a.MulVec(want, x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("%s: y[%d] = %v, want %v", ctx, i, got[i], want[i])
		}
	}
}

func TestRunDIAMatchesCSR(t *testing.T) {
	m := NewMachine(scc.Conf0)
	a := sparse.Generate(sparse.Gen{Name: "b", Class: sparse.PatternBanded, N: 3000, NNZTarget: 24000, Bandwidth: 16, Seed: 12})
	d, err := sparse.ToDIA(a, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, ues := range []int{1, 8} {
		r, err := m.RunDIA(d, ues)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstCSR(t, a, r.Y, "dia")
		if r.MFLOPS <= 0 {
			t.Fatal("no throughput")
		}
	}
}

func TestRunDIALaplacianFastAmongFormats(t *testing.T) {
	// On a pure band, DIA (all streams, no index loads) should beat CSR.
	a := sparse.Laplacian2D(200) // 40000 rows, 5 diagonals
	d, err := sparse.ToDIA(a, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(scc.Conf0)
	rd, err := m.RunDIA(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := m.RunSpMV(a, nil, Options{Mapping: scc.DistanceReductionMapping(8)})
	if err != nil {
		t.Fatal(err)
	}
	if rd.MFLOPS <= rc.MFLOPS {
		t.Fatalf("DIA %.0f MFLOPS not above CSR %.0f on a pure band", rd.MFLOPS, rc.MFLOPS)
	}
}

func TestRunHYBMatchesCSR(t *testing.T) {
	m := NewMachine(scc.Conf0)
	for _, class := range []sparse.PatternClass{sparse.PatternPowerLaw, sparse.PatternStencil2D} {
		a := sparse.Generate(sparse.Gen{Name: string(class), Class: class, N: 4000, NNZTarget: 40000, Seed: 13})
		hyb, err := sparse.ToHYB(a, 0.66)
		if err != nil {
			t.Fatal(err)
		}
		for _, ues := range []int{1, 6} {
			r, err := m.RunHYB(hyb, ues)
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstCSR(t, a, r.Y, string(class))
		}
	}
}

func TestFormat2Validation(t *testing.T) {
	m := NewMachine(scc.Conf0)
	a := sparse.Laplacian2D(8)
	d, _ := sparse.ToDIA(a, 5)
	hyb, _ := sparse.ToHYB(a, 0.66)
	if _, err := m.RunDIA(d, 0); err == nil {
		t.Error("DIA ues=0 accepted")
	}
	if _, err := m.RunHYB(hyb, 49); err == nil {
		t.Error("HYB ues=49 accepted")
	}
}
