package sim

import (
	"math"
	"testing"

	"repro/internal/partition"
	"repro/internal/scc"
	"repro/internal/sparse"
)

// Shared fixtures; moderate sizes keep the suite fast while preserving the
// regimes (ws >> L2, ws/core < L2, irregular, short rows).
var (
	fixBig   = sparse.Generate(sparse.Gen{Name: "big", Class: sparse.PatternStencil3D, N: 30000, NNZTarget: 1200000, Seed: 1})
	fixSmall = sparse.Generate(sparse.Gen{Name: "small", Class: sparse.PatternStencil2D, N: 8000, NNZTarget: 200000, Seed: 2})
	fixIrr   = sparse.Generate(sparse.Gen{Name: "irr", Class: sparse.PatternRandom, N: 20000, NNZTarget: 800000, Seed: 3})
)

func mustRun(t *testing.T, m *Machine, a *sparse.CSR, o Options) *Result {
	t.Helper()
	r, err := m.RunSpMV(a, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunSpMVComputesCorrectProduct(t *testing.T) {
	m := NewMachine(scc.Conf0)
	a := fixSmall
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.1)
	}
	want := make([]float64, a.Rows)
	a.MulVec(want, x)
	for _, ues := range []int{1, 7, 48} {
		r, err := m.RunSpMV(a, x, Options{UEs: ues})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(r.Y[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("ues=%d: y[%d] = %v, want %v", ues, i, r.Y[i], want[i])
			}
		}
	}
}

func TestRunSpMVDeterministic(t *testing.T) {
	m := NewMachine(scc.Conf0)
	a, b := mustRun(t, m, fixSmall, Options{UEs: 8}), mustRun(t, m, fixSmall, Options{UEs: 8})
	if a.TimeSec != b.TimeSec || a.GFLOPS != b.GFLOPS {
		t.Fatalf("non-deterministic: %v vs %v", a.TimeSec, b.TimeSec)
	}
}

func TestRunSpMVOptionValidation(t *testing.T) {
	m := NewMachine(scc.Conf0)
	if _, err := m.RunSpMV(fixSmall, nil, Options{}); err == nil {
		t.Error("no UEs accepted")
	}
	if _, err := m.RunSpMV(fixSmall, nil, Options{Mapping: scc.Mapping{0, 0}}); err == nil {
		t.Error("duplicate mapping accepted")
	}
	if _, err := m.RunSpMV(fixSmall, nil, Options{UEs: 1, Variant: Variant(9)}); err == nil {
		t.Error("bad variant accepted")
	}
	if _, err := m.RunSpMV(fixSmall, make([]float64, 3), Options{UEs: 1}); err == nil {
		t.Error("short x accepted")
	}
	bad := NewMachine(scc.Conf0)
	bad.Domains.TileMHz[0] = 1
	if _, err := bad.RunSpMV(fixSmall, nil, Options{UEs: 1}); err == nil {
		t.Error("invalid domains accepted")
	}
}

func TestFlopAccounting(t *testing.T) {
	m := NewMachine(scc.Conf0)
	r := mustRun(t, m, fixSmall, Options{UEs: 4})
	// GFLOPS must equal 2*nnz / time exactly.
	want := 2 * float64(fixSmall.NNZ()) / r.TimeSec / 1e9
	if math.Abs(r.GFLOPS-want) > 1e-12 {
		t.Fatalf("GFLOPS = %v, want %v", r.GFLOPS, want)
	}
	if math.Abs(r.MFLOPS-1000*r.GFLOPS) > 1e-9 {
		t.Fatal("MFLOPS inconsistent with GFLOPS")
	}
	totalNNZ := 0
	for _, c := range r.PerCore {
		totalNNZ += c.NNZ
	}
	if totalNNZ != fixSmall.NNZ() {
		t.Fatalf("per-core nnz sums to %d, want %d", totalNNZ, fixSmall.NNZ())
	}
}

func TestTimeIsMaxOverCores(t *testing.T) {
	m := NewMachine(scc.Conf0)
	r := mustRun(t, m, fixBig, Options{UEs: 6})
	if r.TimeSec != r.MaxCoreTime() {
		t.Fatalf("TimeSec %v != max core time %v", r.TimeSec, r.MaxCoreTime())
	}
	for _, c := range r.PerCore {
		if c.TimeSec <= 0 || c.TimeSec > r.TimeSec {
			t.Fatalf("core %d time %v outside (0, %v]", c.Core, c.TimeSec, r.TimeSec)
		}
		if c.Slowdown < 1 {
			t.Fatalf("core %d slowdown %v < 1", c.Core, c.Slowdown)
		}
	}
}

// --- Reproduction shape tests (the paper's qualitative claims) ---

// Figure 3: more hops to the memory controller degrades single-core SpMV,
// and the 3-hop degradation lands near the paper's ~12%.
func TestHopsDegradeSingleCore(t *testing.T) {
	m := NewMachine(scc.Conf0)
	var mflops [4]float64
	for h := 0; h < 4; h++ {
		core := scc.CoresWithHops(h)[0]
		r := mustRun(t, m, fixBig, Options{Mapping: scc.Mapping{core}})
		mflops[h] = r.MFLOPS
	}
	for h := 1; h < 4; h++ {
		if mflops[h] >= mflops[h-1] {
			t.Fatalf("performance not decreasing with hops: %v", mflops)
		}
	}
	deg := 1 - mflops[3]/mflops[0]
	if deg < 0.05 || deg > 0.25 {
		t.Fatalf("3-hop degradation = %.1f%%, want near the paper's ~12%%", 100*deg)
	}
}

// Figure 5: the distance-reduction mapping beats the standard mapping at
// intermediate core counts and ties at 1-2 cores.
func TestDistanceReductionMappingWins(t *testing.T) {
	m := NewMachine(scc.Conf0)
	for _, n := range []int{8, 16, 24} {
		std := mustRun(t, m, fixBig, Options{Mapping: scc.StandardMapping(n)})
		dr := mustRun(t, m, fixBig, Options{Mapping: scc.DistanceReductionMapping(n)})
		sp := dr.MFLOPS / std.MFLOPS
		if sp < 1.02 {
			t.Errorf("n=%d: distance-reduction speedup %.3f, want > 1.02", n, sp)
		}
		if sp > 1.5 {
			t.Errorf("n=%d: speedup %.3f implausibly high", n, sp)
		}
	}
	// At 1 core both mappings pick core 0: identical results.
	std1 := mustRun(t, m, fixBig, Options{Mapping: scc.StandardMapping(1)})
	dr1 := mustRun(t, m, fixBig, Options{Mapping: scc.DistanceReductionMapping(1)})
	if math.Abs(std1.MFLOPS-dr1.MFLOPS) > 1e-9 {
		t.Error("mappings differ at 1 core; paper says they coincide")
	}
}

// Figure 6: with warm caches and many cores, a matrix whose per-core
// working set fits L2 outruns one that does not.
func TestWorkingSetBoost(t *testing.T) {
	m := NewMachine(scc.Conf0)
	// fixSmall ws ~2.9 MB: at 24 cores ~124 KB/core -> fits 256 KB L2.
	// fixBig ws ~14 MB: at 24 cores ~600 KB/core -> capacity misses.
	small := mustRun(t, m, fixSmall, Options{Mapping: scc.DistanceReductionMapping(24)})
	big := mustRun(t, m, fixBig, Options{Mapping: scc.DistanceReductionMapping(24)})
	if small.MFLOPS < 1.3*big.MFLOPS {
		t.Fatalf("L2-resident matrix %.0f MFLOPS not clearly above streaming %.0f",
			small.MFLOPS, big.MFLOPS)
	}
	// At 1 core neither fits: the gap must be much smaller.
	s1 := mustRun(t, m, fixSmall, Options{Mapping: scc.Mapping{0}})
	b1 := mustRun(t, m, fixBig, Options{Mapping: scc.Mapping{0}})
	if s1.MFLOPS > 1.3*b1.MFLOPS {
		t.Fatalf("single-core gap %.2f unexpectedly large", s1.MFLOPS/b1.MFLOPS)
	}
}

// Figure 7: disabling the L2 degrades performance, more at high core counts
// (where L2 residency was paying off).
func TestL2DisabledDegrades(t *testing.T) {
	on := NewMachine(scc.Conf0)
	off := NewMachine(scc.Conf0)
	off.WithL2 = false
	for _, a := range []*sparse.CSR{fixBig, fixSmall} {
		rOn := mustRun(t, on, a, Options{Mapping: scc.DistanceReductionMapping(24)})
		rOff := mustRun(t, off, a, Options{Mapping: scc.DistanceReductionMapping(24)})
		if rOff.MFLOPS >= rOn.MFLOPS {
			t.Fatalf("%s: disabling L2 did not hurt (%.0f vs %.0f)", a.Name, rOff.MFLOPS, rOn.MFLOPS)
		}
	}
	// The degradation is worse for the L2-resident matrix.
	degOf := func(a *sparse.CSR) float64 {
		rOn := mustRun(t, on, a, Options{Mapping: scc.DistanceReductionMapping(24)})
		rOff := mustRun(t, off, a, Options{Mapping: scc.DistanceReductionMapping(24)})
		return 1 - rOff.MFLOPS/rOn.MFLOPS
	}
	if degOf(fixSmall) <= degOf(fixBig) {
		t.Fatal("L2-resident matrix should suffer more from disabling L2")
	}
}

// Figure 8: the no-x-miss variant speeds up irregular matrices far more
// than local ones.
func TestNoXMissIsolatesIrregularity(t *testing.T) {
	m := NewMachine(scc.Conf0)
	speedup := func(a *sparse.CSR) float64 {
		std := mustRun(t, m, a, Options{Mapping: scc.DistanceReductionMapping(24)})
		nox := mustRun(t, m, a, Options{Mapping: scc.DistanceReductionMapping(24), Variant: KernelNoXMiss})
		return nox.MFLOPS / std.MFLOPS
	}
	spIrr, spLocal := speedup(fixIrr), speedup(fixSmall)
	if spIrr < 1.5 {
		t.Fatalf("irregular no-x speedup %.2f, want > 1.5 (paper sees > 2 for the worst)", spIrr)
	}
	if spLocal > spIrr {
		t.Fatalf("local matrix speedup %.2f exceeds irregular %.2f", spLocal, spIrr)
	}
	if spLocal < 0.99 {
		t.Fatalf("no-x variant slowed a local matrix: %.2f", spLocal)
	}
}

// Figure 9: conf1 > conf2 > conf0 in performance; conf1's speedup is in the
// paper's ~1.45 neighbourhood at scale.
func TestClockConfigurations(t *testing.T) {
	run := func(cfg scc.ClockConfig) float64 {
		m := NewMachine(cfg)
		return mustRun(t, m, fixBig, Options{Mapping: scc.DistanceReductionMapping(48)}).MFLOPS
	}
	p0, p1, p2 := run(scc.Conf0), run(scc.Conf1), run(scc.Conf2)
	if !(p1 > p2 && p2 > p0) {
		t.Fatalf("ordering broken: conf0=%.0f conf1=%.0f conf2=%.0f", p0, p1, p2)
	}
	if sp := p1 / p0; sp < 1.3 || sp > 1.6 {
		t.Fatalf("conf1 speedup %.2f, want near the paper's 1.45", sp)
	}
	if sp := p1 / p2; sp < 1.05 {
		t.Fatalf("conf1/conf2 = %.2f; memory clock should matter", sp)
	}
}

// Power efficiency: conf1's MFLOPS/W should beat conf0's (the paper's
// Figure 9(b)), because its ~45% speedup outruns its ~30% power increase.
func TestPowerEfficiencyConf1Best(t *testing.T) {
	eff := func(cfg scc.ClockConfig) float64 {
		m := NewMachine(cfg)
		return mustRun(t, m, fixBig, Options{Mapping: scc.DistanceReductionMapping(48)}).MFLOPSPerWatt
	}
	if eff(scc.Conf1) <= eff(scc.Conf0) {
		t.Fatal("conf1 should be the most power-efficient configuration")
	}
}

func TestRowOverheadPenalisesShortRows(t *testing.T) {
	// Two matrices with the same nnz, one with 4 nnz/row, one with 64:
	// the short-row matrix must be slower per nonzero (Section IV-B,
	// matrices 24/25).
	shortRows := sparse.Generate(sparse.Gen{Name: "short", Class: sparse.PatternBanded, N: 50000, NNZTarget: 200000, Bandwidth: 64, Seed: 4})
	longRows := sparse.Generate(sparse.Gen{Name: "long", Class: sparse.PatternBanded, N: 3200, NNZTarget: 200000, Bandwidth: 64, Seed: 5})
	m := NewMachine(scc.Conf0)
	rs := mustRun(t, m, shortRows, Options{Mapping: scc.Mapping{0}})
	rl := mustRun(t, m, longRows, Options{Mapping: scc.Mapping{0}})
	if rs.MFLOPS >= rl.MFLOPS {
		t.Fatalf("short rows %.0f MFLOPS not slower than long rows %.0f", rs.MFLOPS, rl.MFLOPS)
	}
}

func TestColdVsWarmCache(t *testing.T) {
	m := NewMachine(scc.Conf0)
	warm := mustRun(t, m, fixSmall, Options{Mapping: scc.DistanceReductionMapping(24)})
	cold := mustRun(t, m, fixSmall, Options{Mapping: scc.DistanceReductionMapping(24), ColdCache: true})
	if warm.MFLOPS <= cold.MFLOPS {
		t.Fatal("warm caches should beat cold for an L2-resident matrix")
	}
	// For a streaming matrix the difference must be small.
	warmB := mustRun(t, m, fixBig, Options{Mapping: scc.Mapping{0}})
	coldB := mustRun(t, m, fixBig, Options{Mapping: scc.Mapping{0}, ColdCache: true})
	if r := warmB.MFLOPS / coldB.MFLOPS; r > 1.2 {
		t.Fatalf("streaming matrix warm/cold ratio %.2f; should be near 1", r)
	}
}

func TestPartitionSchemes(t *testing.T) {
	m := NewMachine(scc.Conf0)
	for _, s := range []partition.Scheme{partition.SchemeByNNZ, partition.SchemeByRows, partition.SchemeCyclic} {
		r, err := m.RunSpMV(fixIrr, nil, Options{UEs: 8, Scheme: s})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		want := make([]float64, fixIrr.Rows)
		x := make([]float64, fixIrr.Cols)
		for i := range x {
			x[i] = 1
		}
		fixIrr.MulVec(want, x)
		for i := range want {
			if math.Abs(r.Y[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("%s: wrong product at row %d", s, i)
			}
		}
	}
}

func TestMoreCoresFaster(t *testing.T) {
	m := NewMachine(scc.Conf0)
	prev := 0.0
	for _, n := range []int{1, 4, 16, 48} {
		r := mustRun(t, m, fixBig, Options{Mapping: scc.DistanceReductionMapping(n)})
		if r.MFLOPS <= prev {
			t.Fatalf("no speedup at %d cores: %.0f <= %.0f", n, r.MFLOPS, prev)
		}
		prev = r.MFLOPS
	}
}

func TestVariantString(t *testing.T) {
	if KernelStandard.String() != "standard" || KernelNoXMiss.String() != "no-x-miss" {
		t.Fatal("variant names")
	}
	if Variant(7).String() != "invalid" {
		t.Fatal("invalid variant name")
	}
}

func TestLayoutNonOverlapping(t *testing.T) {
	l := layoutFor(fixBig)
	n, nnz := uint64(fixBig.Rows), uint64(fixBig.NNZ())
	type span struct{ lo, hi uint64 }
	spans := []span{
		{l.ptr, l.ptr + 4*(n+1)},
		{l.index, l.index + 4*nnz},
		{l.val, l.val + 8*nnz},
		{l.x, l.x + 8*n},
		{l.y, l.y + 8*n},
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			t.Fatalf("array %d overlaps previous: %#x < %#x", i, spans[i].lo, spans[i-1].hi)
		}
		if spans[i].lo%32 != 0 {
			t.Fatalf("array %d base %#x not line aligned", i, spans[i].lo)
		}
	}
}

func TestMemStallPlusComputeEqualsTime(t *testing.T) {
	m := NewMachine(scc.Conf0)
	r := mustRun(t, m, fixBig, Options{UEs: 4})
	barrier := 4 * m.Params.BarrierMeshCyclesPerUE / (float64(m.Domains.MeshMHz) * 1e6)
	for _, c := range r.PerCore {
		want := c.ComputeSec + c.Slowdown*c.MemStallSec + barrier
		if math.Abs(c.TimeSec-want) > 1e-12 {
			t.Fatalf("core %d: time %v != compute %v + slowdown %v * stall %v + barrier %v",
				c.Core, c.TimeSec, c.ComputeSec, c.Slowdown, c.MemStallSec, barrier)
		}
	}
}

func TestBarrierCostScalesWithUEsAndMeshClock(t *testing.T) {
	// A tiny matrix makes the barrier visible: per-core time at 48 UEs
	// must exceed the single-UE time share by at least the barrier.
	tiny := sparse.Identity(480)
	m := NewMachine(scc.Conf0)
	r48 := mustRun(t, m, tiny, Options{Mapping: scc.DistanceReductionMapping(48)})
	barrier48 := 48 * m.Params.BarrierMeshCyclesPerUE / (float64(m.Domains.MeshMHz) * 1e6)
	if r48.TimeSec < barrier48 {
		t.Fatalf("48-UE run %v shorter than its own barrier %v", r48.TimeSec, barrier48)
	}
	// Doubling the mesh clock halves the barrier: conf1's tiny-matrix
	// run must be faster than conf0's by more than the core ratio alone
	// would suggest... at minimum, strictly faster.
	m1 := NewMachine(scc.Conf1)
	r1 := mustRun(t, m1, tiny, Options{Mapping: scc.DistanceReductionMapping(48)})
	if r1.TimeSec >= r48.TimeSec {
		t.Fatal("faster mesh clock did not shrink a barrier-dominated run")
	}
}
