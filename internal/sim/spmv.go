package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/partition"
	"repro/internal/scc"
	"repro/internal/sparse"
)

// RunSpMV simulates one parallel y = A·x on the machine and returns timing,
// cache and power detail. x is the multiplicand; pass nil for an all-ones
// vector. The simulation is deterministic.
func (m *Machine) RunSpMV(a *sparse.CSR, x []float64, opts Options) (*Result, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if err := m.Domains.Validate(); err != nil {
		return nil, err
	}
	if x == nil {
		x = make([]float64, a.Cols)
		for i := range x {
			x[i] = 1
		}
	}
	if len(x) != a.Cols {
		return nil, fmt.Errorf("sim: len(x)=%d, matrix has %d columns", len(x), a.Cols)
	}

	parts, err := partition.Split(opts.Scheme, a, opts.UEs)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Matrix:  a.Name,
		Variant: opts.Variant,
		UEs:     opts.UEs,
		PerCore: make([]CoreResult, opts.UEs),
		Y:       make([]float64, a.Rows),
	}
	lay := layoutFor(a)

	for rank := 0; rank < opts.UEs; rank++ {
		core := opts.Mapping[rank]
		cfg := m.Domains.ConfigFor(core)
		cr := m.simCore(a, x, res.Y, parts[rank], core, cfg, opts, lay)
		cr.Rank = rank
		res.PerCore[rank] = cr
	}

	m.applyContention(res)
	m.addBarrierCost(res)

	res.TimeSec = res.MaxCoreTime()
	if res.TimeSec > 0 {
		flops := 2 * float64(a.NNZ())
		res.GFLOPS = flops / res.TimeSec / 1e9
		res.MFLOPS = res.GFLOPS * 1000
	}
	res.PowerWatts = scc.FullSystemPower(m.Domains)
	res.MFLOPSPerWatt = scc.MFLOPSPerWatt(res.GFLOPS, res.PowerWatts)
	return res, nil
}

// stream batches a unit-stride access sequence: the cache is probed only
// when the stream crosses into a new line; the within-line accesses are
// L1 hits whose cost is folded into NNZComputeCycles.
type stream struct {
	lastLine uint64
	valid    bool
}

func (s *stream) crossing(addr uint64) bool {
	line := addr >> 5 // 32-byte lines
	if s.valid && line == s.lastLine {
		return false
	}
	s.lastLine = line
	s.valid = true
	return true
}

// simCore executes one UE's row list on a private cold cache hierarchy and
// returns its uncontended timing. It also computes the UE's slice of y.
func (m *Machine) simCore(a *sparse.CSR, x, y []float64, rows []int32,
	core scc.CoreID, cfg scc.ClockConfig, opts Options, lay layout) CoreResult {

	h := m.newHierarchy()
	hops := scc.HopsToMC(core)
	memLat := scc.MemoryLatencyCoreCycles(hops, cfg)

	passes := 2 // warm-up pass + timed steady-state pass
	if opts.ColdCache {
		passes = 1
	}
	var compute, stall float64
	var nnz int
	for pass := 0; pass < passes; pass++ {
		if pass == passes-1 {
			h.ResetStats()
		}
		compute, stall, nnz = m.runPass(a, x, y, rows, h, memLat, opts, lay)
	}

	cyc := cfg.CoreCycleSec()
	return CoreResult{
		Core:        core,
		Hops:        hops,
		Rows:        len(rows),
		NNZ:         nnz,
		ComputeSec:  compute * cyc,
		MemStallSec: stall * cyc,
		Slowdown:    1,
		TimeSec:     (compute + stall) * cyc,
		Cache:       h.Stats(),
	}
}

// runPass walks the rows once, returning (compute cycles, stall cycles, nnz).
func (m *Machine) runPass(a *sparse.CSR, x, y []float64, rows []int32,
	h *cache.Hierarchy, memLat float64, opts Options, lay layout) (compute, stall float64, nnz int) {

	noX := opts.Variant == KernelNoXMiss
	var ptrS, idxS, valS, yS stream

	probe := func(addr uint64, write bool) {
		switch h.Access(addr, write) {
		case cache.LevelL1:
			// already priced into NNZComputeCycles
		case cache.LevelL2:
			stall += m.Params.L2HitCycles
		case cache.LevelMemory:
			stall += memLat
		}
	}

	x0 := 0.0
	if len(x) > 0 {
		x0 = x[0]
	}
	for _, ri := range rows {
		i := int(ri)
		compute += m.Params.RowOverheadCycles
		if addr := lay.ptr + 4*uint64(i); ptrS.crossing(addr) {
			probe(addr, false)
		}
		var t float64
		for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
			if addr := lay.index + 4*uint64(k); idxS.crossing(addr) {
				probe(addr, false)
			}
			if addr := lay.val + 8*uint64(k); valS.crossing(addr) {
				probe(addr, false)
			}
			if noX {
				probe(lay.x, false)
				t += a.Val[k] * x0
			} else {
				probe(lay.x+8*uint64(a.Index[k]), false)
				t += a.Val[k] * x[a.Index[k]]
			}
			compute += m.Params.NNZComputeCycles
			nnz++
		}
		y[i] = t
		if addr := lay.y + 8*uint64(i); yS.crossing(addr) {
			probe(addr, true)
		}
	}
	return compute, stall, nnz
}

// addBarrierCost charges every core the closing RCCE barrier: UEs mesh
// round trips at the current mesh clock.
func (m *Machine) addBarrierCost(res *Result) {
	barrier := float64(res.UEs) * m.Params.BarrierMeshCyclesPerUE /
		(float64(m.Domains.MeshMHz) * 1e6)
	for i := range res.PerCore {
		res.PerCore[i].TimeSec += barrier
	}
}

// applyContention groups cores by their memory controller, computes each
// controller's saturation slowdown from the cores' traffic, and stretches
// every core's memory-stall time accordingly.
func (m *Machine) applyContention(res *Result) {
	byMC := map[int][]int{} // controller -> indices into PerCore
	for i := range res.PerCore {
		mc := scc.ControllerFor(res.PerCore[i].Core).ID
		byMC[mc] = append(byMC[mc], i)
	}
	for mcID, idxs := range byMC {
		ctl := mem.Controller{ID: mcID, MemMHz: m.Domains.MemMHz}
		demands := make([]mem.CoreDemand, 0, len(idxs))
		for _, i := range idxs {
			c := &res.PerCore[i]
			demands = append(demands, mem.CoreDemand{
				ReadBytes:  float64(c.Cache.MemReadBytes(scc.CacheLineBytes)),
				WriteBytes: float64(c.Cache.MemWriteBytes(scc.CacheLineBytes)),
				TimeSec:    c.TimeSec,
			})
		}
		s := mem.Slowdown(ctl, demands)
		for _, i := range idxs {
			c := &res.PerCore[i]
			c.Slowdown = s
			c.TimeSec = c.ComputeSec + s*c.MemStallSec
		}
	}
}
