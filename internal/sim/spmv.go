package sim

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/scc"
	"repro/internal/sparse"
)

// Engine observability (see internal/obs): every metric below is
// write-only from the simulation's point of view - it never feeds back
// into results, and the determinism tests prove bit-identical output
// with metrics enabled or disabled at every parallelism level.
var (
	// simulatedFLOPs counts the useful floating-point operations of
	// every simulated kernel delivered by the engine (2·nnz per Result).
	simulatedFLOPs = obs.Default.Counter("sim.flops.simulated")
	// sweepRuns counts RunSpMVSweep invocations and sweepMachineRuns the
	// machine configurations they priced; machineRuns/runs is the
	// sweep-share factor (cache walks saved per invocation).
	sweepRuns        = obs.Default.Counter("sim.sweep.runs")
	sweepMachineRuns = obs.Default.Counter("sim.sweep.machine_runs")
	// uePool fans per-UE cache walks out and records sim.ue_walk.tasks,
	// sim.ue_walk.task_seconds and sim.ue_walk.occupancy.
	uePool = obs.Default.Pool("sim.ue_walk")
)

// SimulatedFLOPs returns the cumulative simulated-kernel flop count. The
// difference of two readings divided by wall time is the engine's
// simulation throughput in simulated FLOPS.
func SimulatedFLOPs() uint64 { return simulatedFLOPs.Load() }

// RunSpMV simulates one parallel y = A·x on the machine and returns timing,
// cache and power detail. x is the multiplicand; pass nil for an all-ones
// vector. The simulation is deterministic: per-UE simulations are
// independent (private cold caches, disjoint y rows), so the host-parallel
// engine (Options.Parallelism) produces bit-identical results to the
// serial reference path.
func (m *Machine) RunSpMV(a *sparse.CSR, x []float64, opts Options) (*Result, error) {
	rs, err := RunSpMVSweep([]*Machine{m}, a, x, opts)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// RunSpMVSweep simulates the same kernel invocation under several machines
// that share cache geometry and timing coefficients but may differ in
// frequency domains (e.g. conf0/conf1/conf2). The clock setting cannot
// change which cache level satisfies an access, so the expensive cache walk
// runs once per UE while per-configuration stall cycles accumulate in the
// same order a dedicated run would use - every returned Result is
// bit-identical to machines[j].RunSpMV on its own.
func RunSpMVSweep(machines []*Machine, a *sparse.CSR, x []float64, opts Options) ([]*Result, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("sim: sweep needs at least one machine")
	}
	lead := machines[0]
	for _, mj := range machines[1:] {
		if mj.WithL2 != lead.WithL2 || mj.Prefetch != lead.Prefetch || mj.Params != lead.Params ||
			(lead.WithL2 && mj.l2Config() != lead.l2Config()) {
			return nil, fmt.Errorf("sim: sweep machines must share cache geometry and timing params")
		}
	}
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	ctx := opts.ctx()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, mj := range machines {
		if err := mj.Domains.Validate(); err != nil {
			return nil, err
		}
	}
	xProvided := x != nil
	if x == nil {
		x = make([]float64, a.Cols)
		for i := range x {
			x[i] = 1
		}
	}
	if len(x) != a.Cols {
		return nil, fmt.Errorf("sim: len(x)=%d, matrix has %d columns", len(x), a.Cols)
	}
	analytic, err := lead.usesAnalytic(&opts, xProvided)
	if err != nil {
		return nil, err
	}

	parts, err := partition.Split(opts.Scheme, a, opts.UEs)
	if err != nil {
		return nil, err
	}

	results := make([]*Result, len(machines))
	for j := range machines {
		results[j] = &Result{
			Matrix:  a.Name,
			Variant: opts.Variant,
			UEs:     opts.UEs,
			PerCore: make([]CoreResult, opts.UEs),
		}
	}
	// y is computed once and shared across the sweep: the arithmetic does
	// not depend on the clock configuration, and each UE owns a disjoint
	// row block, so concurrent workers never touch the same element.
	y := make([]float64, a.Rows)
	lay := layoutFor(a)

	if analytic {
		if err := analyticSweep(machines, a, x, y, parts, opts, lay, results); err != nil {
			return nil, err
		}
	} else {
		cellsExact.Add(1)
		poolErr := uePool.ForEachCtx(ctx, opts.UEs, opts.workers(), func(rank int) {
			start := time.Now() //sccvet:allow nondeterminism write-only span instrumentation; never feeds simulated results
			core := opts.Mapping[rank]
			crs := lead.simCoreSweep(machines, a, x, y, parts[rank], core, opts, lay)
			for j := range crs {
				crs[j].Rank = rank
				results[j].PerCore[rank] = crs[j]
			}
			opts.Span.Record("ue-walk", time.Since(start)) //sccvet:allow nondeterminism write-only span instrumentation; never feeds simulated results
		})
		if poolErr != nil {
			// Cancelled mid-sweep: partial per-core results are discarded.
			return nil, poolErr
		}
	}

	// Every Result owns its product vector: the engine's scratch y is
	// never aliased out, so the sweep and single-run paths return
	// structurally identical Results and callers may mutate any Y freely.
	for j := range results {
		results[j].Y = append([]float64(nil), y...)
	}
	for j, mj := range machines {
		mj.applyContention(results[j])
		mj.addBarrierCost(results[j])
		mj.finalize(results[j], a.NNZ())
	}
	simulatedFLOPs.Add(uint64(len(machines)) * uint64(2*a.NNZ()))
	sweepRuns.Add(1)
	sweepMachineRuns.Add(uint64(len(machines)))
	return results, nil
}

// finalize derives the run-level metrics from the per-core results.
func (m *Machine) finalize(res *Result, nnz int) {
	res.TimeSec = res.MaxCoreTime()
	if res.TimeSec > 0 {
		flops := 2 * float64(nnz)
		res.GFLOPS = flops / res.TimeSec / 1e9
		res.MFLOPS = res.GFLOPS * 1000
	}
	res.PowerWatts = scc.FullSystemPower(m.Domains)
	res.MFLOPSPerWatt = scc.MFLOPSPerWatt(res.GFLOPS, res.PowerWatts)
}

// workers resolves the Parallelism knob to a pool size.
func (o *Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// lineShift is the log2 of the simulated cache-line size: stream
// batching and the cache simulator must agree on line granularity or
// batched accesses would silently stop matching the hierarchy's lines.
// The two const conversions below are a compile-time guard that
// 1<<lineShift == scc.CacheLineBytes (each underflows uint and fails to
// compile if the constants ever diverge); TestLineShiftMatchesCacheLine
// double-checks at run time.
const lineShift = 5

const (
	_ = uint(scc.CacheLineBytes - 1<<lineShift)
	_ = uint(1<<lineShift - scc.CacheLineBytes)
)

// stream batches a unit-stride access sequence: the cache is probed only
// when the stream crosses into a new line; the within-line accesses are
// L1 hits whose cost is folded into NNZComputeCycles.
type stream struct {
	lastLine uint64
	valid    bool
}

func (s *stream) crossing(addr uint64) bool {
	line := addr >> lineShift // scc.CacheLineBytes-sized lines
	if s.valid && line == s.lastLine {
		return false
	}
	s.lastLine = line
	s.valid = true
	return true
}

// prober receives every line-crossing access of a pass. runPass is generic
// over it (and monomorphised per implementation, so the exact walk pays no
// interface-dispatch cost): the exact engine plugs in the full cache
// hierarchy (hierProber), the analytic engine the L1 + multi-geometry
// profiler (profileProber, pricing.go).
type prober interface {
	probe(addr uint64, write bool)
}

// hierProber drives one core's exact cache hierarchy. Stall cycles are no
// longer accumulated per access: they follow from the timed pass's event
// counts in closed form (see simCoreSweep), which is what lets the
// analytic backend reproduce them bit-for-bit.
type hierProber struct {
	h *cache.Hierarchy
}

func (p *hierProber) probe(addr uint64, write bool) {
	p.h.Access(addr, write)
}

// simCoreSweep executes one UE's row list on a private cold cache hierarchy
// and returns its uncontended timing under every swept machine. It also
// computes the UE's slice of y (once; the values are clock-independent).
func (m *Machine) simCoreSweep(machines []*Machine, a *sparse.CSR, x, y []float64,
	rows []int32, core scc.CoreID, opts Options, lay layout) []CoreResult {

	h := m.newHierarchy()
	hops := scc.HopsToMC(core)
	cfgs := make([]scc.ClockConfig, len(machines))
	memLat := make([]float64, len(machines))
	for j, mj := range machines {
		cfgs[j] = mj.Domains.ConfigFor(core)
		memLat[j] = scc.MemoryLatencyCoreCycles(hops, cfgs[j])
	}
	pr := &hierProber{h: h}

	passes := 2 // warm-up pass + timed steady-state pass
	if opts.ColdCache {
		passes = 1
	}
	var compute float64
	var nnz int
	for pass := 0; pass < passes; pass++ {
		// Cancellation granularity is the pass boundary: a cancelled walk
		// stops before its timed pass and the (discarded) zero result is
		// never observable because the pool propagates the context error.
		if opts.ctx().Err() != nil {
			return make([]CoreResult, len(machines))
		}
		timed := pass == passes-1
		if timed {
			h.ResetStats()
		}
		compute, nnz = runPass(m, a, x, y, rows, pr, opts, lay, timed)
	}

	// Memory stalls follow from the timed pass's event counts in closed
	// form: every L2 hit stalls L2HitCycles, every demand memory access
	// memLat[j]. The closed form is what the analytic pricing backend
	// computes from a stream profile, so exact and analytic results agree
	// bit-for-bit wherever the profile's LRU model is exact.
	stats := h.Stats()
	out := make([]CoreResult, len(machines))
	for j := range out {
		cyc := cfgs[j].CoreCycleSec()
		stall := float64(stats.L2Hits)*m.Params.L2HitCycles + float64(stats.MemAccesses)*memLat[j]
		out[j] = CoreResult{
			Core:        core,
			Hops:        hops,
			Rows:        len(rows),
			NNZ:         nnz,
			ComputeSec:  compute * cyc,
			MemStallSec: stall * cyc,
			Slowdown:    1,
			TimeSec:     (compute + stall) * cyc,
			Cache:       stats,
		}
	}
	return out
}

// runPass walks the rows once, returning (compute cycles, nnz); every
// line-crossing access goes to pr. storeY=false is the untimed warm-up:
// the access stream (and therefore cache behaviour) is unchanged, but the
// arithmetic and the y store are skipped - the timed pass recomputes every
// owned y element from scratch, so the final values cannot differ. The
// generic prober keeps the exact and profiling engines on ONE walk: any
// divergence in the probe stream would break their proven agreement.
func runPass[P prober](m *Machine, a *sparse.CSR, x, y []float64, rows []int32,
	pr P, opts Options, lay layout, storeY bool) (compute float64, nnz int) {

	noX := opts.Variant == KernelNoXMiss
	var ptrS, idxS, valS, yS stream

	// Hoist loop invariants: layout bases, CSR arrays and cycle prices.
	layPtr, layIdx, layVal, layX, layY := lay.ptr, lay.index, lay.val, lay.x, lay.y
	aPtr, aIdx, aVal := a.Ptr, a.Index, a.Val
	rowOverhead := m.Params.RowOverheadCycles
	nnzCompute := m.Params.NNZComputeCycles

	x0 := 0.0
	if len(x) > 0 {
		x0 = x[0]
	}
	for _, ri := range rows {
		i := int(ri)
		compute += rowOverhead
		if addr := layPtr + 4*uint64(i); ptrS.crossing(addr) {
			pr.probe(addr, false)
		}
		var t float64
		for k := aPtr[i]; k < aPtr[i+1]; k++ {
			if addr := layIdx + 4*uint64(k); idxS.crossing(addr) {
				pr.probe(addr, false)
			}
			if addr := layVal + 8*uint64(k); valS.crossing(addr) {
				pr.probe(addr, false)
			}
			if noX {
				pr.probe(layX, false)
				if storeY {
					t += aVal[k] * x0
				}
			} else {
				j := aIdx[k]
				pr.probe(layX+8*uint64(j), false)
				if storeY {
					t += aVal[k] * x[j]
				}
			}
			compute += nnzCompute
			nnz++
		}
		if storeY {
			y[i] = t
		}
		if addr := layY + 8*uint64(i); yS.crossing(addr) {
			pr.probe(addr, true)
		}
	}
	return compute, nnz
}

// addBarrierCost charges every core the closing RCCE barrier: UEs mesh
// round trips at the current mesh clock.
func (m *Machine) addBarrierCost(res *Result) {
	barrier := float64(res.UEs) * m.Params.BarrierMeshCyclesPerUE /
		(float64(m.Domains.MeshMHz) * 1e6)
	for i := range res.PerCore {
		res.PerCore[i].TimeSec += barrier
	}
}

// applyContention groups cores by their memory controller, computes each
// controller's saturation slowdown from the cores' traffic, and stretches
// every core's memory-stall time accordingly.
func (m *Machine) applyContention(res *Result) {
	// Controllers are grouped in a dense array indexed by controller ID,
	// not a map: sccvet's nondeterminism analyzer targets map-range loops
	// that write into result slices, and walking MC0..MC3 in ID order
	// keeps the (order-independent, but why leave it to chance) stretch
	// pass trivially deterministic.
	byMC := make([][]int, scc.NumControllers) // controller -> indices into PerCore
	for i := range res.PerCore {
		mc := scc.ControllerFor(res.PerCore[i].Core).ID
		byMC[mc] = append(byMC[mc], i)
	}
	for mcID, idxs := range byMC {
		if len(idxs) == 0 {
			continue
		}
		ctl := mem.Controller{ID: mcID, MemMHz: m.Domains.MemMHz}
		demands := make([]mem.CoreDemand, 0, len(idxs))
		for _, i := range idxs {
			c := &res.PerCore[i]
			demands = append(demands, mem.CoreDemand{
				ReadBytes:  float64(c.Cache.MemReadBytes(scc.CacheLineBytes)),
				WriteBytes: float64(c.Cache.MemWriteBytes(scc.CacheLineBytes)),
				TimeSec:    c.TimeSec,
			})
		}
		s := mem.Slowdown(ctl, demands)
		for _, i := range idxs {
			c := &res.PerCore[i]
			c.Slowdown = s
			c.TimeSec = c.ComputeSec + s*c.MemStallSec
		}
	}
}
