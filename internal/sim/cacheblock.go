package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/partition"
	"repro/internal/scc"
	"repro/internal/sparse"
)

// RunCacheBlocked simulates the cache-blocked (column-banded) CSR SpMV:
// each core processes its row partition one column band at a time, so the
// active x window is at most 8·bandCols bytes. The gain is x locality for
// scattered matrices; the cost is re-walking the row structure (ptr, y
// read-modify-write) once per non-empty band.
func (m *Machine) RunCacheBlocked(a *sparse.CSR, bandCols, ues int) (*Result, error) {
	if bandCols <= 0 {
		return nil, fmt.Errorf("sim: bandCols %d must be positive", bandCols)
	}
	if ues <= 0 || ues > scc.NumCores {
		return nil, fmt.Errorf("sim: %d UEs outside [1, %d]", ues, scc.NumCores)
	}
	if err := m.Domains.Validate(); err != nil {
		return nil, err
	}
	bands := sparse.ColumnBands(a, bandCols)
	mapping := scc.DistanceReductionMapping(ues)
	parts := partition.ByNNZ(a, ues)

	// Layout: each band gets its own ptr/index/val arrays; x and y are
	// shared across bands.
	const base = uint64(1) << 28
	align := func(v uint64) uint64 { return (v + 63) &^ 63 }
	type bandLay struct{ ptr, index, val uint64 }
	lays := make([]bandLay, len(bands))
	cursor := base
	for bi, b := range bands {
		lays[bi].ptr = cursor
		lays[bi].index = align(lays[bi].ptr + 4*uint64(a.Rows+1))
		lays[bi].val = align(lays[bi].index + 4*uint64(b.NNZ()))
		cursor = align(lays[bi].val + 8*uint64(b.NNZ()))
	}
	layX := cursor
	layY := align(layX + 8*uint64(a.Cols))

	res := &Result{Matrix: a.Name, UEs: ues, PerCore: make([]CoreResult, ues), Y: make([]float64, a.Rows)}
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1
	}
	for rank := 0; rank < ues; rank++ {
		core := mapping[rank]
		cfg := m.Domains.ConfigFor(core)
		rows := parts[rank]
		h := m.newHierarchy()
		memLat := scc.MemoryLatencyCoreCycles(scc.HopsToMC(core), cfg)

		var compute, stall float64
		var nnz int
		for pass := 0; pass < 2; pass++ {
			if pass == 1 {
				h.ResetStats()
			}
			compute, stall, nnz = 0, 0, 0
			probe := func(addr uint64, write bool) {
				switch h.Access(addr, write) {
				case cache.LevelL2:
					stall += m.Params.L2HitCycles
				case cache.LevelMemory:
					stall += memLat
				}
			}
			for _, ri := range rows {
				res.Y[ri] = 0
			}
			for bi, b := range bands {
				if b.NNZ() == 0 {
					continue
				}
				var ptrS, idxS, valS, yS stream
				for _, ri := range rows {
					i := int(ri)
					lo, hi := b.Ptr[i], b.Ptr[i+1]
					if lo == hi {
						continue // skipped rows still cost the ptr walk
					}
					compute += m.Params.RowOverheadCycles
					if addr := lays[bi].ptr + 4*uint64(i); ptrS.crossing(addr) {
						probe(addr, false)
					}
					var t float64
					for k := lo; k < hi; k++ {
						if addr := lays[bi].index + 4*uint64(k); idxS.crossing(addr) {
							probe(addr, false)
						}
						if addr := lays[bi].val + 8*uint64(k); valS.crossing(addr) {
							probe(addr, false)
						}
						probe(layX+8*uint64(b.Index[k]), false)
						t += b.Val[k] * x[b.Index[k]]
						compute += m.Params.NNZComputeCycles
						nnz++
					}
					res.Y[i] += t
					if addr := layY + 8*uint64(i); yS.crossing(addr) {
						probe(addr, true)
					}
				}
			}
		}
		cyc := cfg.CoreCycleSec()
		res.PerCore[rank] = CoreResult{
			Rank: rank, Core: core, Hops: scc.HopsToMC(core),
			Rows: len(rows), NNZ: nnz,
			ComputeSec: compute * cyc, MemStallSec: stall * cyc,
			Slowdown: 1, TimeSec: (compute + stall) * cyc,
			Cache: h.Stats(),
		}
	}
	m.applyContention(res)
	m.addBarrierCost(res)
	res.TimeSec = res.MaxCoreTime()
	if res.TimeSec > 0 {
		res.GFLOPS = 2 * float64(a.NNZ()) / res.TimeSec / 1e9
		res.MFLOPS = res.GFLOPS * 1000
	}
	res.PowerWatts = scc.FullSystemPower(m.Domains)
	res.MFLOPSPerWatt = scc.MFLOPSPerWatt(res.GFLOPS, res.PowerWatts)
	return res, nil
}
