package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/scc"
	"repro/internal/sparse"
)

// Randomised invariant checks of the timing model: these must hold for any
// matrix shape, not just the fixtures.

func quickMatrix(seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	classes := []sparse.PatternClass{
		sparse.PatternStencil2D, sparse.PatternBanded,
		sparse.PatternRandom, sparse.PatternPowerLaw,
	}
	n := 500 + rng.Intn(4000)
	return sparse.Generate(sparse.Gen{
		Name:      "q",
		Class:     classes[rng.Intn(len(classes))],
		N:         n,
		NNZTarget: n * (2 + rng.Intn(12)),
		Seed:      seed,
	})
}

// Property: conf1 (faster everything) is never slower than conf0.
func TestQuickConf1NeverSlower(t *testing.T) {
	m0 := NewMachine(scc.Conf0)
	m1 := NewMachine(scc.Conf1)
	f := func(seed int64, rawUEs uint8) bool {
		a := quickMatrix(seed)
		ues := int(rawUEs)%16 + 1
		opts := Options{Mapping: scc.DistanceReductionMapping(ues)}
		r0, err := m0.RunSpMV(a, nil, opts)
		if err != nil {
			return false
		}
		r1, err := m1.RunSpMV(a, nil, opts)
		if err != nil {
			return false
		}
		return r1.TimeSec <= r0.TimeSec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: disabling the L2 never speeds anything up.
func TestQuickL2OffNeverFaster(t *testing.T) {
	on := NewMachine(scc.Conf0)
	off := NewMachine(scc.Conf0)
	off.WithL2 = false
	f := func(seed int64, rawUEs uint8) bool {
		a := quickMatrix(seed)
		ues := int(rawUEs)%12 + 1
		opts := Options{Mapping: scc.DistanceReductionMapping(ues)}
		rOn, err := on.RunSpMV(a, nil, opts)
		if err != nil {
			return false
		}
		rOff, err := off.RunSpMV(a, nil, opts)
		if err != nil {
			return false
		}
		return rOff.TimeSec >= rOn.TimeSec*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: the no-x-miss variant's uncontended stall time never exceeds
// the standard kernel's (removing irregular accesses cannot add stalls).
func TestQuickNoXMissNeverMoreStalls(t *testing.T) {
	m := NewMachine(scc.Conf0)
	f := func(seed int64) bool {
		a := quickMatrix(seed)
		opts := Options{Mapping: scc.Mapping{0}}
		std, err := m.RunSpMV(a, nil, opts)
		if err != nil {
			return false
		}
		opts.Variant = KernelNoXMiss
		nox, err := m.RunSpMV(a, nil, opts)
		if err != nil {
			return false
		}
		return nox.PerCore[0].MemStallSec <= std.PerCore[0].MemStallSec*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: the simulator is deterministic across repeated runs and
// produces identical numerics to the reference kernel.
func TestQuickDeterministicAndCorrect(t *testing.T) {
	m := NewMachine(scc.Conf0)
	f := func(seed int64, rawUEs uint8) bool {
		a := quickMatrix(seed)
		ues := int(rawUEs)%48 + 1
		opts := Options{UEs: ues}
		r1, err := m.RunSpMV(a, nil, opts)
		if err != nil {
			return false
		}
		r2, err := m.RunSpMV(a, nil, Options{UEs: ues})
		if err != nil {
			return false
		}
		if r1.TimeSec != r2.TimeSec {
			return false
		}
		want := make([]float64, a.Rows)
		x := make([]float64, a.Cols)
		for i := range x {
			x[i] = 1
		}
		a.MulVec(want, x)
		for i := range want {
			d := r1.Y[i] - want[i]
			if d < -1e-9 || d > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-core nnz always sums to the matrix total for every
// partitioning scheme the simulator accepts.
func TestQuickNNZConservation(t *testing.T) {
	m := NewMachine(scc.Conf0)
	f := func(seed int64, rawUEs uint8) bool {
		a := quickMatrix(seed)
		ues := int(rawUEs)%48 + 1
		r, err := m.RunSpMV(a, nil, Options{UEs: ues})
		if err != nil {
			return false
		}
		total := 0
		for _, c := range r.PerCore {
			total += c.NNZ
		}
		return total == a.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: prefetching never increases demand-miss-driven stall time on a
// single core (extra traffic, never extra demand stalls in this model).
func TestQuickPrefetchNeverMoreStallsSingleCore(t *testing.T) {
	plain := NewMachine(scc.Conf0)
	pf := NewMachine(scc.Conf0)
	pf.Prefetch = true
	f := func(seed int64) bool {
		a := quickMatrix(seed)
		opts := Options{Mapping: scc.Mapping{0}}
		rp, err := plain.RunSpMV(a, nil, opts)
		if err != nil {
			return false
		}
		rf, err := pf.RunSpMV(a, nil, opts)
		if err != nil {
			return false
		}
		// Prefetch can pollute the small L1/L2 slightly; allow 5%.
		return rf.PerCore[0].MemStallSec <= rp.PerCore[0].MemStallSec*1.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
