// Benchmarks splitting the analytic fast path into its three cost
// components: the exact per-access walk it replaces (the baseline a
// geometry sweep pays once per cell), the one-time profile build (an
// instrumented walk, a small constant factor over exact), and pricing a
// cell from a resident profile (microseconds - the fast path's whole
// point). The sweep-level speedup these imply is recorded end to end by
// `make bench-smoke`.
package sim

import (
	"testing"

	"repro/internal/scc"
	"repro/internal/sparse"
)

func BenchmarkExactWalk(b *testing.B) {
	m := NewMachine(scc.Conf0)
	m.L2Geom = l2geom(256<<10, 4)
	for i := 0; i < b.N; i++ {
		if _, err := m.RunSpMV(fixBig, nil, Options{UEs: 24, Pricing: PricingExact}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileBuild(b *testing.B) {
	m := NewMachine(scc.Conf0)
	m.L2Geom = l2geom(256<<10, 4)
	for i := 0; i < b.N; i++ {
		if _, err := m.RunSpMV(fixBig, nil, Options{UEs: 24, Pricing: PricingAnalytic}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileReuse(b *testing.B) {
	m := NewMachine(scc.Conf0)
	m.L2Geom = l2geom(256<<10, 4)
	store := sparse.NewMatrixCache(1 << 30)
	if _, err := m.RunSpMV(fixBig, nil, Options{UEs: 24, Pricing: PricingAnalytic, Profiles: store}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.RunSpMV(fixBig, nil, Options{UEs: 24, Pricing: PricingAnalytic, Profiles: store}); err != nil {
			b.Fatal(err)
		}
	}
}
