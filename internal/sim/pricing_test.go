package sim

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/scc"
	"repro/internal/sparse"
)

// l2geom builds a TrueLRU write-back L2 config at the SCC line size.
func l2geom(sizeBytes, ways int) *cache.Config {
	return &cache.Config{
		SizeBytes:   sizeBytes,
		LineBytes:   scc.CacheLineBytes,
		Ways:        ways,
		WriteBack:   true,
		Replacement: cache.TrueLRU,
	}
}

// requireSameResults asserts two Results are bit-identical in every field the
// pricing backend influences: per-core cache counters, timing splits, the
// derived run metrics and the product vector.
func requireSameResults(t *testing.T, label string, exact, got *Result) {
	t.Helper()
	if len(exact.PerCore) != len(got.PerCore) {
		t.Fatalf("%s: core count %d vs %d", label, len(exact.PerCore), len(got.PerCore))
	}
	for i := range exact.PerCore {
		e, g := exact.PerCore[i], got.PerCore[i]
		if e.Cache != g.Cache {
			t.Fatalf("%s: core %d cache stats\nexact    %+v\nanalytic %+v", label, i, e.Cache, g.Cache)
		}
		if e != g {
			t.Fatalf("%s: core %d result\nexact    %+v\nanalytic %+v", label, i, e, g)
		}
	}
	if exact.TimeSec != got.TimeSec || exact.GFLOPS != got.GFLOPS || exact.MFLOPS != got.MFLOPS ||
		exact.PowerWatts != got.PowerWatts || exact.MFLOPSPerWatt != got.MFLOPSPerWatt {
		t.Fatalf("%s: run metrics differ: exact (t=%v gflops=%v) analytic (t=%v gflops=%v)",
			label, exact.TimeSec, exact.GFLOPS, got.TimeSec, got.GFLOPS)
	}
	for i := range exact.Y {
		if exact.Y[i] != got.Y[i] {
			t.Fatalf("%s: y[%d] = %v exact vs %v analytic", label, i, exact.Y[i], got.Y[i])
		}
	}
}

// TestAnalyticOracleL2Sweep is the tentpole regression: across testbed-style
// matrices and a grid of TrueLRU L2 geometries, the analytic pricing backend
// must reproduce the exact per-access simulator bit-for-bit - per-core
// HierarchyStats, timing and product alike. It also covers the L2-disabled
// machine and the cold-cache (single-pass) protocol.
func TestAnalyticOracleL2Sweep(t *testing.T) {
	matrices := []*sparse.CSR{fixBig, fixSmall, fixIrr}
	geoms := []*cache.Config{
		l2geom(64<<10, 2),
		l2geom(128<<10, 4),
		l2geom(256<<10, 4),
		l2geom(512<<10, 8),
		l2geom(192<<10, 3), // non-power-of-two ways: TrueLRU-only geometry
	}
	for _, a := range matrices {
		for gi, g := range geoms {
			// The cold-cache variant only needs one geometry per matrix.
			colds := []bool{false}
			if gi == 0 {
				colds = []bool{false, true}
			}
			for _, cold := range colds {
				label := fmt.Sprintf("%s/geom%d/cold=%t", a.Name, gi, cold)
				m := NewMachine(scc.Conf0)
				m.L2Geom = g
				opts := Options{UEs: 12, ColdCache: cold}

				opts.Pricing = PricingExact
				exact, err := m.RunSpMV(a, nil, opts)
				if err != nil {
					t.Fatal(err)
				}
				opts.Pricing = PricingAnalytic
				opts.Profiles = sparse.NewMatrixCache(1 << 30)
				an, err := m.RunSpMV(a, nil, opts)
				if err != nil {
					t.Fatal(err)
				}
				requireSameResults(t, label, exact, an)
			}
		}
	}

	// L2 disabled: the analytic path must reproduce the write-through
	// memory accounting too.
	m := NewMachine(scc.Conf0)
	m.WithL2 = false
	exact, err := m.RunSpMV(fixSmall, nil, Options{UEs: 8, Pricing: PricingExact})
	if err != nil {
		t.Fatal(err)
	}
	an, err := m.RunSpMV(fixSmall, nil, Options{UEs: 8, Pricing: PricingAnalytic})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "l2-off", exact, an)
}

// TestAnalyticOracleSweepAndVariants covers the sweep entry point (several
// clock configurations priced from one profile) and the no-x-miss kernel.
func TestAnalyticOracleSweepAndVariants(t *testing.T) {
	mk := func() []*Machine {
		ms := make([]*Machine, 0, 3)
		for _, cfg := range []scc.ClockConfig{scc.Conf0, scc.Conf1, scc.Conf2} {
			m := NewMachine(cfg)
			m.L2Geom = l2geom(256<<10, 4)
			ms = append(ms, m)
		}
		return ms
	}
	for _, variant := range []Variant{KernelStandard, KernelNoXMiss} {
		opts := Options{UEs: 16, Variant: variant, Pricing: PricingExact}
		exact, err := RunSpMVSweep(mk(), fixIrr, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Pricing = PricingAnalytic
		opts.Profiles = sparse.NewMatrixCache(1 << 30)
		an, err := RunSpMVSweep(mk(), fixIrr, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		for j := range exact {
			requireSameResults(t, fmt.Sprintf("variant=%v machine=%d", variant, j), exact[j], an[j])
		}
	}
}

// TestAnalyticProfileReuse proves trace-once, price-many: a second run with
// the same store rebuilds nothing, and a different geometry prices from the
// SAME profile while staying exact.
func TestAnalyticProfileReuse(t *testing.T) {
	store := sparse.NewMatrixCache(1 << 30)
	run := func(g *cache.Config, pricing Pricing) *Result {
		t.Helper()
		m := NewMachine(scc.Conf0)
		m.L2Geom = g
		r, err := m.RunSpMV(fixSmall, nil, Options{UEs: 8, Pricing: pricing, Profiles: store})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	b0, r0, c0, _ := PricingCounters()
	run(l2geom(256<<10, 4), PricingAnalytic)
	b1, r1, _, _ := PricingCounters()
	if b1 != b0+1 || r1 != r0 {
		t.Fatalf("first run: built %d->%d reused %d->%d, want one build", b0, b1, r0, r1)
	}
	run(l2geom(256<<10, 4), PricingAnalytic)
	run(l2geom(64<<10, 2), PricingAnalytic) // new geometry, same stream
	b2, r2, c2, _ := PricingCounters()
	if b2 != b1 {
		t.Fatalf("profile rebuilt on reuse: built %d -> %d", b1, b2)
	}
	if r2 != r1+2 {
		t.Fatalf("reused %d -> %d, want +2", r1, r2)
	}
	if c2 != c0+3 {
		t.Fatalf("cells analytic %d -> %d, want +3", c0, c2)
	}
	st := store.Stats()
	if st.ProfileResident != 1 || st.ProfileUsedBytes <= 0 {
		t.Fatalf("store: %+v, want one resident profile", st)
	}

	// The reused profile still prices the new geometry exactly.
	m := NewMachine(scc.Conf0)
	m.L2Geom = l2geom(64<<10, 2)
	exact, err := m.RunSpMV(fixSmall, nil, Options{UEs: 8, Pricing: PricingExact})
	if err != nil {
		t.Fatal(err)
	}
	an := run(l2geom(64<<10, 2), PricingAnalytic)
	requireSameResults(t, "reused-profile", exact, an)
}

// TestPricingAutoSelection pins auto mode's contract: it goes analytic only
// when that is provably identical to the exact walk (TrueLRU or no L2, no
// structural blocker, a profile store present) and NEVER changes output.
func TestPricingAutoSelection(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*Machine, *Options)
		analytic bool
	}{
		{"lru-l2+store", func(m *Machine, o *Options) {
			m.L2Geom = l2geom(256<<10, 4)
			o.Profiles = sparse.NewMatrixCache(1 << 30)
		}, true},
		{"no-l2+store", func(m *Machine, o *Options) {
			m.WithL2 = false
			o.Profiles = sparse.NewMatrixCache(1 << 30)
		}, true},
		{"plru-l2", func(m *Machine, o *Options) {
			o.Profiles = sparse.NewMatrixCache(1 << 30) // default L2 is tree-PLRU
		}, false},
		{"no-store", func(m *Machine, o *Options) {
			m.L2Geom = l2geom(256<<10, 4)
		}, false},
		{"prefetch", func(m *Machine, o *Options) {
			m.L2Geom = l2geom(256<<10, 4)
			m.Prefetch = true
			o.Profiles = sparse.NewMatrixCache(1 << 30)
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMachine(scc.Conf0)
			auto := Options{UEs: 6}
			tc.mutate(m, &auto)
			exact := auto
			exact.Pricing = PricingExact
			exact.Profiles = nil

			_, _, c0, e0 := PricingCounters()
			want, err := m.RunSpMV(fixSmall, nil, exact)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.RunSpMV(fixSmall, nil, auto)
			if err != nil {
				t.Fatal(err)
			}
			_, _, c1, e1 := PricingCounters()
			wentAnalytic := c1 == c0+1
			// The reference run always prices exact; the auto run adds to
			// whichever counter its selection picked.
			wantExact := e0 + 2
			if tc.analytic {
				wantExact = e0 + 1
			}
			if wentAnalytic != tc.analytic || e1 != wantExact {
				t.Fatalf("auto path: analytic %v (cells %d->%d, exact %d->%d), want analytic=%v",
					wentAnalytic, c0, c1, e0, e1, tc.analytic)
			}
			requireSameResults(t, tc.name, want, got)
		})
	}
}

// TestAnalyticForcedErrors pins the structural blockers: forced analytic
// pricing must refuse (with a reason) rather than silently mis-price.
func TestAnalyticForcedErrors(t *testing.T) {
	x := make([]float64, fixSmall.Cols)
	for i := range x {
		x[i] = 1
	}
	cases := []struct {
		name string
		run  func() error
	}{
		{"prefetch", func() error {
			m := NewMachine(scc.Conf0)
			m.L2Geom = l2geom(256<<10, 4)
			m.Prefetch = true
			_, err := m.RunSpMV(fixSmall, nil, Options{UEs: 4, Pricing: PricingAnalytic})
			return err
		}},
		{"explicit-x", func() error {
			m := NewMachine(scc.Conf0)
			m.L2Geom = l2geom(256<<10, 4)
			_, err := m.RunSpMV(fixSmall, x, Options{UEs: 4, Pricing: PricingAnalytic})
			return err
		}},
		{"geometry-too-big", func() error {
			m := NewMachine(scc.Conf0)
			m.L2Geom = l2geom(32<<20, 32) // 2^15 sets, 32 ways: outside profile bounds
			_, err := m.RunSpMV(fixSmall, nil, Options{UEs: 4, Pricing: PricingAnalytic})
			return err
		}},
		{"write-through-l2", func() error {
			m := NewMachine(scc.Conf0)
			g := l2geom(256<<10, 4)
			g.WriteBack = false
			m.L2Geom = g
			_, err := m.RunSpMV(fixSmall, nil, Options{UEs: 4, Pricing: PricingAnalytic})
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.run(); err == nil {
			t.Fatalf("%s: forced analytic pricing succeeded, want error", tc.name)
		}
	}
}

// TestAnalyticPLRUBoundedError labels the approximation: forcing analytic
// pricing on the SCC's tree-PLRU L2 is allowed, and the LRU-model stats must
// stay close to (but are not required to equal) the exact PLRU walk. The
// bound is generous - the test exists to pin that the error IS bounded and
// the path IS reachable, not to certify a tight approximation.
func TestAnalyticPLRUBoundedError(t *testing.T) {
	m := NewMachine(scc.Conf0) // stock tree-PLRU 256 KB L2
	opts := Options{UEs: 8, Pricing: PricingExact}
	exact, err := m.RunSpMV(fixIrr, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Pricing = PricingAnalytic
	an, err := m.RunSpMV(fixIrr, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact.PerCore {
		e, a := exact.PerCore[i].Cache, an.PerCore[i].Cache
		if e.Accesses != a.Accesses || e.L1Hits != a.L1Hits {
			t.Fatalf("core %d: L1 side differs (%+v vs %+v) - the L1 is exact regardless of policy", i, e, a)
		}
		// LRU-vs-PLRU can move accesses between L2 hits and memory, but
		// only within the L1-miss stream. A 20% relative band on memory
		// accesses keeps the approximation honest.
		miss := float64(e.MemAccesses)
		if d := float64(a.MemAccesses) - miss; d > 0.2*miss+16 || -d > 0.2*miss+16 {
			t.Fatalf("core %d: PLRU approximation off by %v mem accesses (exact %v)", i, d, miss)
		}
	}
}

// TestAnalyticCancellation proves the fast path honours the run context at
// its boundaries exactly like the exact engine: a pre-cancelled context
// returns the context error and no result.
func TestAnalyticCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := NewMachine(scc.Conf0)
	m.L2Geom = l2geom(256<<10, 4)
	r, err := m.RunSpMV(fixSmall, nil, Options{
		UEs: 4, Ctx: ctx, Pricing: PricingAnalytic,
		Profiles: sparse.NewMatrixCache(1 << 30),
	})
	if err == nil || r != nil {
		t.Fatalf("pre-cancelled analytic run: r=%v err=%v, want nil result and context error", r, err)
	}
}

// TestParsePricing pins the flag grammar.
func TestParsePricing(t *testing.T) {
	for s, want := range map[string]Pricing{
		"": PricingAuto, "auto": PricingAuto, "exact": PricingExact, "analytic": PricingAnalytic,
	} {
		got, err := ParsePricing(s)
		if err != nil || got != want {
			t.Fatalf("ParsePricing(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePricing("magic"); err == nil {
		t.Fatal("ParsePricing accepted garbage")
	}
	for p, s := range map[Pricing]string{PricingAuto: "auto", PricingExact: "exact", PricingAnalytic: "analytic"} {
		if p.String() != s {
			t.Fatalf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
}
