package sim

// Trace-once, price-many: the analytic pricing backend.
//
// Every experiment's wall time is dominated by the address-accurate cache
// walk, yet the per-UE access stream depends only on (matrix, layout,
// partition, kernel variant) - not on the cache geometry being evaluated.
// The L1 is fixed across all sweeps (the SCC's 16 KB write-through L1), so
// the engine simulates it once and records, per UE, a multi-geometry LRU
// stack-distance profile of the L1-to-L2 stream (trace.SetAnalyzer). That
// profile prices ANY covered L2 geometry - hits, demand memory accesses,
// write-allocate fills and dirty write-backs - in O(ways), bit-identically
// to the exact simulator wherever LRU's stack property holds (TrueLRU
// replacement, or no L2 at all). Profiles persist in the experiments
// matrix cache keyed by exact matrix content, so a geometry sweep walks
// each (matrix, partition) cell once and prices N configurations from it.
//
// Tree pseudo-LRU (the SCC's real policy) is not a stack algorithm, so
// PLRU geometries cannot be priced exactly from a stack profile. Auto mode
// therefore never selects the analytic path for a PLRU L2 - output never
// changes under auto - while forced analytic mode prices PLRU as if it
// were LRU, a clearly-labelled bounded-error approximation (see DESIGN.md
// and TestAnalyticPLRUBoundedError).

import (
	"context"
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/scc"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// Pricing selects the cache-pricing backend of a run.
type Pricing int

const (
	// PricingAuto (the default) uses the analytic path only when it is
	// provably identical to the exact walk AND a profile store that can
	// retain profiles is available (a zero-budget store would force a
	// fresh trace per cell); otherwise it runs the exact simulator.
	// Output is always bit-identical to PricingExact.
	PricingAuto Pricing = iota
	// PricingExact always runs the per-access hierarchy walk.
	PricingExact
	// PricingAnalytic forces the analytic path and errors when the run is
	// structurally unpriceable (prefetch enabled, custom x, geometry
	// outside the profile bounds). On a tree-PLRU L2 the result is a
	// bounded-error LRU approximation, not the exact simulator's output.
	PricingAnalytic
)

// String implements fmt.Stringer.
func (p Pricing) String() string {
	switch p {
	case PricingAuto:
		return "auto"
	case PricingExact:
		return "exact"
	case PricingAnalytic:
		return "analytic"
	default:
		return "invalid"
	}
}

// ParsePricing parses the -pricing flag values exact|analytic|auto.
func ParsePricing(s string) (Pricing, error) {
	switch s {
	case "auto", "":
		return PricingAuto, nil
	case "exact":
		return PricingExact, nil
	case "analytic":
		return PricingAnalytic, nil
	default:
		return 0, fmt.Errorf("sim: unknown pricing mode %q (want exact, analytic or auto)", s)
	}
}

// profileSetConfig bounds the geometries persisted profiles can price:
// set counts 2^8..2^14 and up to 8 ways cover, at 32-byte lines, every
// L2 from 8 KB direct-mapped to 4 MB 8-way - comfortably spanning the
// SCC's 256 KB 4-way point and the ablation grids around it. The bounds
// are deliberately tight: the trace pass costs O(levels x ways) per
// access, so every extra level or way taxes the one walk the fast path
// ever pays for.
var profileSetConfig = trace.SetConfig{MinSetsLog2: 8, MaxSetsLog2: 14, MaxWays: 8}

// Analytic-pricing observability (internal/obs, write-only).
var (
	profilesBuilt  = obs.Default.Counter("sim.pricing.profiles_built")
	profilesReused = obs.Default.Counter("sim.pricing.profiles_reused")
	cellsAnalytic  = obs.Default.Counter("sim.pricing.cells_analytic")
	cellsExact     = obs.Default.Counter("sim.pricing.cells_exact")
)

// PricingCounters returns the cumulative pricing-path counters: profiles
// built, profiles reused from the store, and sweep cells priced by the
// analytic vs exact backend (bench harness observability).
func PricingCounters() (built, reused, analytic, exact uint64) {
	return profilesBuilt.Load(), profilesReused.Load(), cellsAnalytic.Load(), cellsExact.Load()
}

// analyticBlocker reports why the analytic path structurally cannot price
// this run ("" when it can). Exactness is a separate question - see
// usesAnalytic.
func (m *Machine) analyticBlocker(xProvided bool) string {
	if m.Prefetch {
		return "next-line prefetch perturbs replacement state per geometry"
	}
	if xProvided {
		return "explicit x vector (profiles persist the default all-ones product)"
	}
	if m.WithL2 {
		g := m.l2Config()
		if g.LineBytes != scc.CacheLineBytes {
			return fmt.Sprintf("L2 line size %d != %d", g.LineBytes, scc.CacheLineBytes)
		}
		if !g.WriteBack {
			return "write-through L2 outside the profile's write-back model"
		}
		if n := g.Sets(); n&(n-1) != 0 {
			return fmt.Sprintf("L2 set count %d is not a power of two", n)
		}
		if s := bits.TrailingZeros(uint(g.Sets())); !profileSetConfig.Covers(s, g.Ways) {
			return fmt.Sprintf("L2 geometry (2^%d sets, %d ways) outside profile bounds (2^%d-2^%d sets, <=%d ways)",
				s, g.Ways, profileSetConfig.MinSetsLog2, profileSetConfig.MaxSetsLog2, profileSetConfig.MaxWays)
		}
	}
	return ""
}

// analyticExact reports whether the analytic path reproduces the exact
// simulator bit-for-bit: LRU's stack property must hold at the L2 (TrueLRU
// replacement), or there must be no L2 to model at all.
func (m *Machine) analyticExact() bool {
	return !m.WithL2 || m.l2Config().Replacement == cache.TrueLRU
}

// usesAnalytic resolves the Pricing knob for this run. Auto only goes
// analytic when the result is provably identical to the exact walk and a
// profile store exists to amortise the trace; forced analytic errors when
// the run is structurally unpriceable.
func (m *Machine) usesAnalytic(opts *Options, xProvided bool) (bool, error) {
	switch opts.Pricing {
	case PricingExact:
		return false, nil
	case PricingAuto:
		// The store must actually RETAIN profiles, not merely exist: with
		// memoisation disabled (-cachemb 0, or a zero blob budget) PutBlob
		// is a no-op, so going analytic would silently rebuild the reuse
		// profile for every sweep cell - strictly slower than the exact
		// walk it replaces. Auto stays exact there; forcing PricingAnalytic
		// against a non-retaining store remains available (each call then
		// knowingly builds a throwaway profile).
		return opts.Profiles.RetainsBlobs() && m.analyticExact() && m.analyticBlocker(xProvided) == "", nil
	case PricingAnalytic:
		if reason := m.analyticBlocker(xProvided); reason != "" {
			return false, fmt.Errorf("sim: analytic pricing unavailable: %s", reason)
		}
		return true, nil
	default:
		return false, fmt.Errorf("sim: unknown pricing mode %d", opts.Pricing)
	}
}

// ueProfile is one UE's recorded stream: the fixed-L1 outcome, the
// multi-geometry profile of the L1-to-L2 stream, and the geometry-
// independent arithmetic results (compute cycles, nnz, owned y values) so
// pricing a new geometry re-runs nothing.
type ueProfile struct {
	// Timed-pass access counts: total probes, L1 hits, and the L1-to-L2
	// stream split by kind (L1 read misses, L1 store misses, forwarded
	// write-through store hits).
	accesses, l1Hits                     uint64
	demandReads, demandStores, fwdStores uint64
	// sets prices any covered L2 geometry over the stream.
	sets trace.SetProfile
	// compute and nnz are the timed pass's arithmetic outcome; y holds
	// the UE's owned product values aligned with its partition rows.
	compute float64
	nnz     int
	y       []float64
}

// cellProfile is the persisted unit: every UE of one (matrix, layout,
// partition, variant) cell.
type cellProfile struct {
	perUE []ueProfile
}

// SizeBytes prices the profile for the cache's byte budget.
func (p *cellProfile) SizeBytes() int64 {
	var n int64 = 64
	for i := range p.perUE {
		up := &p.perUE[i]
		n += 128 + up.sets.SizeBytes() + 8*int64(len(up.y))
	}
	return n
}

// profileKey is the content-addressed identity of a cell profile: matrix
// content plus everything else that shapes the per-UE stream. The rank-
// to-core mapping is deliberately absent - it moves a stream between
// cores but never changes it.
func profileKey(a *sparse.CSR, opts *Options) string {
	l1 := cache.SCCL1()
	return fmt.Sprintf("spmvprof/v1|m=%s|s=%s|u=%d|k=%d|cold=%t|l1=%d:%d:%d|sets=%d-%d|w=%d",
		a.ContentKey(), opts.Scheme, opts.UEs, opts.Variant, opts.ColdCache,
		l1.SizeBytes, l1.Ways, l1.LineBytes,
		profileSetConfig.MinSetsLog2, profileSetConfig.MaxSetsLog2, profileSetConfig.MaxWays)
}

// profileProber drives the fixed L1 and feeds the surviving L1-to-L2
// stream into the multi-geometry analyzer, classifying each access the
// way cache.Hierarchy would (see hierarchy.go): L1 read misses and store
// misses are demand L2 accesses, write-through store hits are forwarded
// stores. The SCC L1 is write-through, so it never writes back victims.
type profileProber struct {
	l1        *cache.Cache
	sa        *trace.SetAnalyzer
	recording bool

	accesses, l1Hits                     uint64
	demandReads, demandStores, fwdStores uint64
}

func (p *profileProber) probe(addr uint64, write bool) {
	if p.recording {
		p.accesses++
	}
	r1 := p.l1.Access(addr, write)
	line := addr >> lineShift
	if r1.Hit {
		if p.recording {
			p.l1Hits++
		}
		if r1.WroteThrough {
			if p.recording {
				p.fwdStores++
			}
			p.sa.Touch(line, trace.ForwardedStore)
		}
		return
	}
	if write && r1.WroteThrough {
		if p.recording {
			p.demandStores++
		}
		p.sa.Touch(line, trace.DemandStore)
	} else {
		if p.recording {
			p.demandReads++
		}
		p.sa.Touch(line, trace.DemandRead)
	}
}

// buildUEProfile runs one UE's walk with the profiling prober: the same
// two-pass protocol as the exact engine (stack and L1 state warm through
// the untimed pass; counts cover the timed pass only). ok=false means the
// run's context was cancelled at a pass boundary.
func (m *Machine) buildUEProfile(a *sparse.CSR, x, y []float64, rows []int32,
	opts Options, lay layout) (ueProfile, bool) {

	pp := &profileProber{l1: cache.New(cache.SCCL1()), sa: trace.NewSetAnalyzer(profileSetConfig)}
	passes := 2
	if opts.ColdCache {
		passes = 1
	}
	var compute float64
	var nnz int
	for pass := 0; pass < passes; pass++ {
		if opts.ctx().Err() != nil {
			return ueProfile{}, false
		}
		timed := pass == passes-1
		pp.recording = timed
		pp.sa.SetRecording(timed)
		compute, nnz = runPass(m, a, x, y, rows, pp, opts, lay, timed)
	}
	up := ueProfile{
		accesses:     pp.accesses,
		l1Hits:       pp.l1Hits,
		demandReads:  pp.demandReads,
		demandStores: pp.demandStores,
		fwdStores:    pp.fwdStores,
		sets:         pp.sa.Profile(),
		compute:      compute,
		nnz:          nnz,
		y:            make([]float64, len(rows)),
	}
	for i, ri := range rows {
		up.y[i] = y[ri]
	}
	return up, true
}

// priceStats converts one UE's profile into the HierarchyStats the exact
// walk would report under this machine's L2 geometry, mirroring
// cache.Hierarchy accounting term by term: demand L2 hits satisfy the
// access, demand L2 misses become memory accesses and line fills,
// forwarded-store misses add a write-allocate fill only, dirty evictions
// write back, and with the L2 disabled every store reaching below is a
// write-through word.
func (m *Machine) priceStats(up *ueProfile) cache.HierarchyStats {
	s := cache.HierarchyStats{Accesses: up.accesses, L1Hits: up.l1Hits}
	demand := up.demandReads + up.demandStores
	if !m.WithL2 {
		s.MemAccesses = demand
		s.MemLineFills = demand
		s.MemWriteThroughs = up.demandStores + up.fwdStores
		return s
	}
	g := m.l2Config()
	price, ok := up.sets.Price(bits.TrailingZeros(uint(g.Sets())), g.Ways)
	if !ok {
		// usesAnalytic vetted the geometry against profileSetConfig; a
		// profile that cannot price it is a version-skew bug.
		panic(fmt.Sprintf("sim: profile cannot price vetted L2 geometry %+v", g))
	}
	s.L2Hits = price.DemandHits
	s.MemAccesses = price.DemandMisses
	s.MemLineFills = price.DemandMisses + price.FwdMisses
	s.MemWriteBacks = price.WriteBacks
	return s
}

// profileFlights single-flights profile builds per (store, key): a
// geometry sweep fans its cells out concurrently and all of them share one
// (matrix, partition) stream, so letting every racing cell build its own
// copy would spend exactly the walks the fast path exists to avoid. The
// mutexes are never removed; the population is bounded by the distinct
// (store, cell) pairs the process ever prices.
var profileFlights sync.Map // string -> *sync.Mutex

// fetchOrBuildProfile returns the cell profile for this run, from the
// store when resident, building (and persisting) it otherwise. Builds
// against a store are single-flighted; a nil store skips both the lock and
// persistence (every call builds a throwaway profile). The build writes
// the UE-owned y values into y as a side effect, exactly like the exact
// walk would.
func fetchOrBuildProfile(lead *Machine, a *sparse.CSR, x, y []float64,
	parts [][]int32, opts Options, lay layout) (*cellProfile, error) {

	ctx := opts.ctx()
	key := profileKey(a, &opts)
	if opts.Profiles != nil {
		flight, _ := profileFlights.LoadOrStore(fmt.Sprintf("%p|%s", opts.Profiles, key), &sync.Mutex{})
		mu := flight.(*sync.Mutex)
		mu.Lock()
		defer mu.Unlock()
	}
	if v, ok := opts.Profiles.GetBlob(key); ok {
		profilesReused.Add(1)
		return v.(*cellProfile), nil
	}
	built := &cellProfile{perUE: make([]ueProfile, opts.UEs)}
	walked := make([]bool, opts.UEs)
	poolErr := uePool.ForEachCtx(ctx, opts.UEs, opts.workers(), func(rank int) {
		built.perUE[rank], walked[rank] = lead.buildUEProfile(a, x, y, parts[rank], opts, lay)
	})
	if poolErr != nil {
		return nil, poolErr
	}
	for _, ok := range walked {
		if !ok {
			// A walk aborted at a pass boundary (cancellation) after the
			// pool stopped noticing: surface the context error rather than
			// a torn profile.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, context.Canceled
		}
	}
	profilesBuilt.Add(1)
	opts.Profiles.PutBlob(key, built, built.SizeBytes())
	return built, nil
}

// analyticSweep is the fast-path twin of the exact per-UE pool in
// RunSpMVSweep: fetch or build the cell profile (one L1+profile walk per
// UE, fanned over the same pool), then price every (machine, UE) pair in
// O(ways) and replay the recorded y values into the shared scratch.
// Results land in results[j].PerCore exactly like the exact path's.
func analyticSweep(machines []*Machine, a *sparse.CSR, x, y []float64,
	parts [][]int32, opts Options, lay layout, results []*Result) error {

	lead := machines[0]
	ctx := opts.ctx()

	prof, err := fetchOrBuildProfile(lead, a, x, y, parts, opts, lay)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// Replay the recorded product into the sweep's shared scratch (the
	// profile-build path already wrote it, but a reused profile must
	// restore it; the assignment is idempotent either way).
	for rank := range parts {
		for i, ri := range parts[rank] {
			y[ri] = prof.perUE[rank].y[i]
		}
	}

	for j, mj := range machines {
		for rank := 0; rank < opts.UEs; rank++ {
			up := &prof.perUE[rank]
			core := opts.Mapping[rank]
			cfg := mj.Domains.ConfigFor(core)
			hops := scc.HopsToMC(core)
			stats := mj.priceStats(up)
			stall := float64(stats.L2Hits)*mj.Params.L2HitCycles +
				float64(stats.MemAccesses)*scc.MemoryLatencyCoreCycles(hops, cfg)
			cyc := cfg.CoreCycleSec()
			results[j].PerCore[rank] = CoreResult{
				Rank:        rank,
				Core:        core,
				Hops:        hops,
				Rows:        len(parts[rank]),
				NNZ:         up.nnz,
				ComputeSec:  up.compute * cyc,
				MemStallSec: stall * cyc,
				Slowdown:    1,
				TimeSec:     (up.compute + stall) * cyc,
				Cache:       stats,
			}
		}
	}
	cellsAnalytic.Add(1)
	return nil
}
