package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/scc"
	"repro/internal/sparse"
)

// DIA and HYB timing kernels, completing the Bell & Garland format family
// for the storage ablation. DIA is the stream-friendliest format (both the
// diagonal values and the x accesses are unit-stride); HYB pays ELL costs
// for the row prefix and scattered COO costs (including random y updates)
// for the tail.

// RunDIA simulates y = A·x over diagonal storage with ues units of
// execution (distance-reduction mapping, rows split evenly). Padding slots
// inside stored diagonals cost compute and bandwidth like real entries -
// DIA's fundamental trade.
func (m *Machine) RunDIA(d *sparse.DIA, ues int) (*Result, error) {
	if ues <= 0 || ues > scc.NumCores {
		return nil, fmt.Errorf("sim: %d UEs outside [1, %d]", ues, scc.NumCores)
	}
	if err := m.Domains.Validate(); err != nil {
		return nil, err
	}
	mapping := scc.DistanceReductionMapping(ues)

	const base = uint64(1) << 28
	align := func(v uint64) uint64 { return (v + 63) &^ 63 }
	slots := uint64(len(d.Val))
	layVal := base
	layX := align(layVal + 8*slots)
	layY := align(layX + 8*uint64(d.Cols))

	res := &Result{Matrix: d.Name, UEs: ues, PerCore: make([]CoreResult, ues), Y: make([]float64, d.Rows)}
	x := make([]float64, d.Cols)
	for i := range x {
		x[i] = 1
	}
	for rank := 0; rank < ues; rank++ {
		core := mapping[rank]
		cfg := m.Domains.ConfigFor(core)
		lo, hi := d.Rows*rank/ues, d.Rows*(rank+1)/ues
		h := m.newHierarchy()
		memLat := scc.MemoryLatencyCoreCycles(scc.HopsToMC(core), cfg)

		var compute, stall float64
		var slotsDone int
		for pass := 0; pass < 2; pass++ {
			if pass == 1 {
				h.ResetStats()
			}
			compute, stall, slotsDone = 0, 0, 0
			var valS, xS, yS stream
			probe := func(addr uint64, write bool) {
				switch h.Access(addr, write) {
				case cache.LevelL2:
					stall += m.Params.L2HitCycles
				case cache.LevelMemory:
					stall += memLat
				}
			}
			for i := lo; i < hi; i++ {
				res.Y[i] = 0
			}
			// Diagonal-major traversal over the owned row range: the
			// natural DIA loop nest (one pass per diagonal).
			for p, off := range d.Offsets {
				compute += m.Params.RowOverheadCycles // per-diagonal loop setup
				baseIdx := p * d.Rows
				rLo, rHi := lo, hi
				if off < 0 && int(-off) > rLo {
					rLo = int(-off)
				}
				if over := d.Rows + int(off) - d.Cols; over > 0 && d.Rows-over < rHi {
					rHi = d.Rows - over
				}
				for i := rLo; i < rHi; i++ {
					if addr := layVal + 8*uint64(baseIdx+i); valS.crossing(addr) {
						probe(addr, false)
					}
					if addr := layX + 8*uint64(i+int(off)); xS.crossing(addr) {
						probe(addr, false)
					}
					if addr := layY + 8*uint64(i); yS.crossing(addr) {
						probe(addr, true)
					}
					res.Y[i] += d.Val[baseIdx+i] * x[i+int(off)]
					compute += m.Params.NNZComputeCycles
					slotsDone++
				}
			}
		}
		cyc := cfg.CoreCycleSec()
		res.PerCore[rank] = CoreResult{
			Rank: rank, Core: core, Hops: scc.HopsToMC(core),
			Rows: hi - lo, NNZ: slotsDone,
			ComputeSec: compute * cyc, MemStallSec: stall * cyc,
			Slowdown: 1, TimeSec: (compute + stall) * cyc,
			Cache: h.Stats(),
		}
	}
	m.applyContention(res)
	m.addBarrierCost(res)
	res.TimeSec = res.MaxCoreTime()
	if res.TimeSec > 0 {
		// Useful flops: only true nonzeros count.
		res.GFLOPS = 2 * float64(d.NNZ()) / res.TimeSec / 1e9
		res.MFLOPS = res.GFLOPS * 1000
	}
	res.PowerWatts = scc.FullSystemPower(m.Domains)
	res.MFLOPSPerWatt = scc.MFLOPSPerWatt(res.GFLOPS, res.PowerWatts)
	return res, nil
}

// RunHYB simulates y = A·x over hybrid ELL+COO storage: the ELL slab via
// the ELL kernel's access pattern and the COO tail with scattered row
// updates (random y traffic - the price of the overflow path).
func (m *Machine) RunHYB(hyb *sparse.HYB, ues int) (*Result, error) {
	if ues <= 0 || ues > scc.NumCores {
		return nil, fmt.Errorf("sim: %d UEs outside [1, %d]", ues, scc.NumCores)
	}
	if err := m.Domains.Validate(); err != nil {
		return nil, err
	}
	mapping := scc.DistanceReductionMapping(ues)
	e := hyb.ELL

	const base = uint64(1) << 28
	align := func(v uint64) uint64 { return (v + 63) &^ 63 }
	slots := uint64(e.Rows) * uint64(e.K)
	layIdx := base
	layVal := align(layIdx + 4*slots)
	layX := align(layVal + 8*slots)
	layY := align(layX + 8*uint64(e.Cols))
	tailN := uint64(hyb.Tail.NNZ())
	layTI := align(layY + 8*uint64(e.Rows))
	layTJ := align(layTI + 4*tailN)
	layTV := align(layTJ + 4*tailN)

	// Pre-split the tail by owning row range.
	tailLo := make([]int, ues+1)
	{
		// Tail triplets are appended row-major, so a binary search per
		// boundary suffices.
		b := 0
		for u := 1; u <= ues; u++ {
			bound := int32(e.Rows * u / ues)
			for b < hyb.Tail.NNZ() && hyb.Tail.I[b] < bound {
				b++
			}
			tailLo[u] = b
		}
	}

	res := &Result{Matrix: hyb.Name, UEs: ues, PerCore: make([]CoreResult, ues), Y: make([]float64, e.Rows)}
	x := make([]float64, e.Cols)
	for i := range x {
		x[i] = 1
	}
	for rank := 0; rank < ues; rank++ {
		core := mapping[rank]
		cfg := m.Domains.ConfigFor(core)
		lo, hi := e.Rows*rank/ues, e.Rows*(rank+1)/ues
		h := m.newHierarchy()
		memLat := scc.MemoryLatencyCoreCycles(scc.HopsToMC(core), cfg)

		var compute, stall float64
		var done int
		for pass := 0; pass < 2; pass++ {
			if pass == 1 {
				h.ResetStats()
			}
			compute, stall, done = 0, 0, 0
			var idxS, valS, yS, tiS, tjS, tvS stream
			probe := func(addr uint64, write bool) {
				switch h.Access(addr, write) {
				case cache.LevelL2:
					stall += m.Params.L2HitCycles
				case cache.LevelMemory:
					stall += memLat
				}
			}
			for i := lo; i < hi; i++ {
				res.Y[i] = 0
			}
			// ELL slab.
			for i := lo; i < hi; i++ {
				compute += m.Params.RowOverheadCycles
				rowBase := i * e.K
				var t float64
				for s := 0; s < e.K; s++ {
					c := e.Index[rowBase+s]
					if c < 0 {
						break
					}
					if addr := layIdx + 4*uint64(rowBase+s); idxS.crossing(addr) {
						probe(addr, false)
					}
					if addr := layVal + 8*uint64(rowBase+s); valS.crossing(addr) {
						probe(addr, false)
					}
					probe(layX+8*uint64(c), false)
					t += e.Val[rowBase+s] * x[c]
					compute += m.Params.NNZComputeCycles
					done++
				}
				res.Y[i] += t
				if addr := layY + 8*uint64(i); yS.crossing(addr) {
					probe(addr, true)
				}
			}
			// COO tail: streams over I/J/V plus scattered x reads and
			// y read-modify-writes.
			for p := tailLo[rank]; p < tailLo[rank+1]; p++ {
				if addr := layTI + 4*uint64(p); tiS.crossing(addr) {
					probe(addr, false)
				}
				if addr := layTJ + 4*uint64(p); tjS.crossing(addr) {
					probe(addr, false)
				}
				if addr := layTV + 8*uint64(p); tvS.crossing(addr) {
					probe(addr, false)
				}
				probe(layX+8*uint64(hyb.Tail.J[p]), false)
				probe(layY+8*uint64(hyb.Tail.I[p]), true)
				res.Y[hyb.Tail.I[p]] += hyb.Tail.V[p] * x[hyb.Tail.J[p]]
				compute += m.Params.NNZComputeCycles
				done++
			}
		}
		cyc := cfg.CoreCycleSec()
		res.PerCore[rank] = CoreResult{
			Rank: rank, Core: core, Hops: scc.HopsToMC(core),
			Rows: hi - lo, NNZ: done,
			ComputeSec: compute * cyc, MemStallSec: stall * cyc,
			Slowdown: 1, TimeSec: (compute + stall) * cyc,
			Cache: h.Stats(),
		}
	}
	m.applyContention(res)
	m.addBarrierCost(res)
	res.TimeSec = res.MaxCoreTime()
	if res.TimeSec > 0 {
		res.GFLOPS = 2 * float64(hyb.NNZ()) / res.TimeSec / 1e9
		res.MFLOPS = res.GFLOPS * 1000
	}
	res.PowerWatts = scc.FullSystemPower(m.Domains)
	res.MFLOPSPerWatt = scc.MFLOPSPerWatt(res.GFLOPS, res.PowerWatts)
	return res, nil
}
