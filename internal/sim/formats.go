package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/scc"
	"repro/internal/sparse"
)

// Alternative-format kernels for the storage-format ablation (DESIGN.md,
// abl-fmt). Each walks the format's real data, generates its access stream
// (including padding and fill overheads) and prices it with the same core
// model as the CSR kernel, so format comparisons isolate the format.

// RunELL simulates y = A·x over ELLPACK storage with ues units of
// execution mapped by the distance-reduction policy. Padding slots cost
// compute like real slots until the row's first pad (rows are left-packed),
// mirroring the branch-free inner loop ELL enables.
func (m *Machine) RunELL(e *sparse.ELL, ues int) (*Result, error) {
	if ues <= 0 || ues > scc.NumCores {
		return nil, fmt.Errorf("sim: %d UEs outside [1, %d]", ues, scc.NumCores)
	}
	if err := m.Domains.Validate(); err != nil {
		return nil, err
	}
	mapping := scc.DistanceReductionMapping(ues)

	// Virtual layout: Index (4B) and Val (8B) rectangles, x and y.
	const base = uint64(1) << 28
	align := func(v uint64) uint64 { return (v + 63) &^ 63 }
	slots := uint64(e.Rows) * uint64(e.K)
	layIdx := base
	layVal := align(layIdx + 4*slots)
	layX := align(layVal + 8*slots)
	layY := align(layX + 8*uint64(e.Cols))

	res := &Result{Matrix: e.Name, UEs: ues, PerCore: make([]CoreResult, ues), Y: make([]float64, e.Rows)}
	x := make([]float64, e.Cols)
	for i := range x {
		x[i] = 1
	}
	for rank := 0; rank < ues; rank++ {
		core := mapping[rank]
		cfg := m.Domains.ConfigFor(core)
		lo, hi := e.Rows*rank/ues, e.Rows*(rank+1)/ues
		h := m.newHierarchy()
		memLat := scc.MemoryLatencyCoreCycles(scc.HopsToMC(core), cfg)

		var compute, stall float64
		var nnz int
		for pass := 0; pass < 2; pass++ { // warm-up + timed, like CSR
			if pass == 1 {
				h.ResetStats()
			}
			compute, stall, nnz = 0, 0, 0
			var idxS, valS, yS stream
			probe := func(addr uint64, write bool) {
				switch h.Access(addr, write) {
				case cache.LevelL2:
					stall += m.Params.L2HitCycles
				case cache.LevelMemory:
					stall += memLat
				}
			}
			for i := lo; i < hi; i++ {
				compute += m.Params.RowOverheadCycles
				rowBase := i * e.K
				var t float64
				for s := 0; s < e.K; s++ {
					c := e.Index[rowBase+s]
					if c < 0 {
						break
					}
					if addr := layIdx + 4*uint64(rowBase+s); idxS.crossing(addr) {
						probe(addr, false)
					}
					if addr := layVal + 8*uint64(rowBase+s); valS.crossing(addr) {
						probe(addr, false)
					}
					probe(layX+8*uint64(c), false)
					t += e.Val[rowBase+s] * x[c]
					compute += m.Params.NNZComputeCycles
					nnz++
				}
				res.Y[i] = t
				if addr := layY + 8*uint64(i); yS.crossing(addr) {
					probe(addr, true)
				}
			}
		}
		cyc := cfg.CoreCycleSec()
		res.PerCore[rank] = CoreResult{
			Rank: rank, Core: core, Hops: scc.HopsToMC(core),
			Rows: hi - lo, NNZ: nnz,
			ComputeSec: compute * cyc, MemStallSec: stall * cyc,
			Slowdown: 1, TimeSec: (compute + stall) * cyc,
			Cache: h.Stats(),
		}
	}
	m.applyContention(res)
	m.addBarrierCost(res)
	res.TimeSec = res.MaxCoreTime()
	if res.TimeSec > 0 {
		res.GFLOPS = 2 * float64(e.NNZ()) / res.TimeSec / 1e9
		res.MFLOPS = res.GFLOPS * 1000
	}
	res.PowerWatts = scc.FullSystemPower(m.Domains)
	res.MFLOPSPerWatt = scc.MFLOPSPerWatt(res.GFLOPS, res.PowerWatts)
	return res, nil
}

// RunBCSR simulates y = A·x over blocked-CSR storage with ues units of
// execution (distance-reduction mapping, block rows split evenly). Stored
// zeros inside blocks cost compute and bandwidth - the fill-ratio tax of
// register blocking.
func (m *Machine) RunBCSR(b *sparse.BCSR, ues int) (*Result, error) {
	if ues <= 0 || ues > scc.NumCores {
		return nil, fmt.Errorf("sim: %d UEs outside [1, %d]", ues, scc.NumCores)
	}
	if err := m.Domains.Validate(); err != nil {
		return nil, err
	}
	mapping := scc.DistanceReductionMapping(ues)

	const base = uint64(1) << 28
	align := func(v uint64) uint64 { return (v + 63) &^ 63 }
	rc := uint64(b.R * b.C)
	layPtr := base
	layBIdx := align(layPtr + 4*uint64(b.BRows+1))
	layVal := align(layBIdx + 4*uint64(b.Blocks()))
	layX := align(layVal + 8*uint64(b.Blocks())*rc)
	layY := align(layX + 8*uint64(b.Cols))

	res := &Result{Matrix: b.Name, UEs: ues, PerCore: make([]CoreResult, ues), Y: make([]float64, b.Rows)}
	x := make([]float64, b.Cols)
	for i := range x {
		x[i] = 1
	}
	for rank := 0; rank < ues; rank++ {
		core := mapping[rank]
		cfg := m.Domains.ConfigFor(core)
		lo, hi := b.BRows*rank/ues, b.BRows*(rank+1)/ues
		h := m.newHierarchy()
		memLat := scc.MemoryLatencyCoreCycles(scc.HopsToMC(core), cfg)

		var compute, stall float64
		var stored int
		for pass := 0; pass < 2; pass++ {
			if pass == 1 {
				h.ResetStats()
			}
			compute, stall, stored = 0, 0, 0
			var ptrS, bidxS, valS, yS stream
			probe := func(addr uint64, write bool) {
				switch h.Access(addr, write) {
				case cache.LevelL2:
					stall += m.Params.L2HitCycles
				case cache.LevelMemory:
					stall += memLat
				}
			}
			for br := lo; br < hi; br++ {
				compute += m.Params.RowOverheadCycles
				if addr := layPtr + 4*uint64(br); ptrS.crossing(addr) {
					probe(addr, false)
				}
				rowLo := br * b.R
				for p := b.Ptr[br]; p < b.Ptr[br+1]; p++ {
					if addr := layBIdx + 4*uint64(p); bidxS.crossing(addr) {
						probe(addr, false)
					}
					colLo := int(b.BIndex[p]) * b.C
					blk := b.Val[int(p)*int(rc) : (int(p)+1)*int(rc)]
					for ri := 0; ri < b.R; ri++ {
						i := rowLo + ri
						if i >= b.Rows {
							break
						}
						var t float64
						for cj := 0; cj < b.C; cj++ {
							j := colLo + cj
							if j >= b.Cols {
								break
							}
							off := uint64(int(p)*int(rc) + ri*b.C + cj)
							if addr := layVal + 8*off; valS.crossing(addr) {
								probe(addr, false)
							}
							probe(layX+8*uint64(j), false)
							t += blk[ri*b.C+cj] * x[j]
							compute += m.Params.NNZComputeCycles
							stored++
						}
						res.Y[i] += t
					}
				}
				for ri := 0; ri < b.R; ri++ {
					if i := rowLo + ri; i < b.Rows {
						if addr := layY + 8*uint64(i); yS.crossing(addr) {
							probe(addr, true)
						}
					}
				}
			}
			if pass == 0 {
				// Zero y between passes so the second pass recomputes it.
				for i := rowLo(lo, b.R); i < rowHi(hi, b.R, b.Rows); i++ {
					res.Y[i] = 0
				}
			}
		}
		cyc := cfg.CoreCycleSec()
		res.PerCore[rank] = CoreResult{
			Rank: rank, Core: core, Hops: scc.HopsToMC(core),
			Rows: hi - lo, NNZ: stored,
			ComputeSec: compute * cyc, MemStallSec: stall * cyc,
			Slowdown: 1, TimeSec: (compute + stall) * cyc,
			Cache: h.Stats(),
		}
	}
	m.applyContention(res)
	m.addBarrierCost(res)
	res.TimeSec = res.MaxCoreTime()
	if res.TimeSec > 0 {
		// FLOPS use the true nonzero count via the fill ratio: the fill
		// work is overhead, not useful flops. Callers compare against
		// CSR on the same matrix, so use stored-entry count consistently
		// with useful work = original nnz unavailable here; report the
		// stored count and let the ablation normalise.
		var stored int
		for _, c := range res.PerCore {
			stored += c.NNZ
		}
		res.GFLOPS = 2 * float64(stored) / res.TimeSec / 1e9
		res.MFLOPS = res.GFLOPS * 1000
	}
	res.PowerWatts = scc.FullSystemPower(m.Domains)
	res.MFLOPSPerWatt = scc.MFLOPSPerWatt(res.GFLOPS, res.PowerWatts)
	return res, nil
}

func rowLo(blockRow, r int) int { return blockRow * r }

func rowHi(blockRow, r, rows int) int {
	h := blockRow * r
	if h > rows {
		return rows
	}
	return h
}
