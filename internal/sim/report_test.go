package sim

import (
	"strings"
	"testing"

	"repro/internal/scc"
)

func TestWriteReport(t *testing.T) {
	m := NewMachine(scc.Conf0)
	r := mustRun(t, m, fixSmall, Options{UEs: 4})
	var b strings.Builder
	if err := r.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, needle := range []string{"matrix", "throughput", "MFLOPS/W", "rank", "slowdown"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("report missing %q:\n%s", needle, out)
		}
	}
	// One line per core plus headers.
	if lines := strings.Count(out, "\n"); lines < 4+2+4 {
		t.Fatalf("report too short (%d lines):\n%s", lines, out)
	}
}

func TestResultSummary(t *testing.T) {
	m := NewMachine(scc.Conf0)
	r := mustRun(t, m, fixSmall, Options{UEs: 2})
	s := r.Summary()
	if !strings.Contains(s, "2 UEs") || !strings.Contains(s, "standard kernel") {
		t.Fatalf("summary = %q", s)
	}
}

func TestAggregateCacheStats(t *testing.T) {
	m := NewMachine(scc.Conf0)
	r := mustRun(t, m, fixSmall, Options{UEs: 3})
	agg := r.AggregateCacheStats()
	if agg.Accesses == 0 {
		t.Fatal("no accesses aggregated")
	}
	if agg.L1Hits+agg.L2Hits+agg.MemAccesses != agg.Accesses {
		t.Fatal("aggregate levels do not partition accesses")
	}
	var manual uint64
	for _, c := range r.PerCore {
		manual += c.Cache.Accesses
	}
	if agg.Accesses != manual {
		t.Fatal("aggregation mismatch")
	}
}
