// Package sim is the SCC timing simulator: it executes SpMV kernels over
// real CSR data, generates the exact per-core memory access stream, drives
// it through private L1/L2 cache models, prices every miss with the SCC's
// documented latency formula, applies memory-controller contention, and
// reports execution time, FLOPS and power. It is the engine behind every
// figure reproduction (see DESIGN.md).
package sim

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/scc"
	"repro/internal/sparse"
)

// Params are the timing coefficients of the core model, all in core cycles.
// They are the calibration surface of the simulator; DefaultParams is tuned
// so the reproduction targets in DESIGN.md hold.
type Params struct {
	// RowOverheadCycles is charged once per matrix row: loop setup,
	// pointer loads and the branch at the row end. On the in-order P54C
	// short rows make this overhead dominant, which is the paper's
	// explanation for the poor performance of matrices 24 and 25.
	RowOverheadCycles float64
	// NNZComputeCycles is charged per nonzero: the multiply-accumulate,
	// index arithmetic and the L1 accesses of the streaming loads.
	NNZComputeCycles float64
	// L2HitCycles is the additional stall when a line-crossing access
	// hits in L2.
	L2HitCycles float64
	// BarrierMeshCyclesPerUE prices the RCCE barrier that ends every
	// kernel invocation: the reference barrier is a centralised counter
	// in the MPB, costing a mesh round trip per participating UE. The
	// cost is charged once per run to every core and shrinks with the
	// mesh clock, so it only matters for small work sizes at high core
	// counts.
	BarrierMeshCyclesPerUE float64
}

// DefaultParams returns the calibrated coefficients.
func DefaultParams() Params {
	return Params{
		RowOverheadCycles:      20,
		NNZComputeCycles:       10,
		L2HitCycles:            scc.L2HitCoreCycles,
		BarrierMeshCyclesPerUE: 400,
	}
}

// Variant selects the kernel the simulator runs.
type Variant int

const (
	// KernelStandard is the paper's Figure 2 CSR SpMV.
	KernelStandard Variant = iota
	// KernelNoXMiss is the Section IV-C diagnostic variant: every x
	// reference reads x[0], eliminating irregular accesses while keeping
	// all other traffic.
	KernelNoXMiss
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case KernelStandard:
		return "standard"
	case KernelNoXMiss:
		return "no-x-miss"
	default:
		return "invalid"
	}
}

// Machine is a configured SCC instance.
type Machine struct {
	// Domains fixes the chip clocks (per-tile core clock, mesh, memory).
	Domains scc.FreqDomains
	// WithL2 enables the per-core 256 KB L2 (false models the
	// L2-disabled boot of Figure 7).
	WithL2 bool
	// Prefetch enables the next-line prefetcher in every core's cache
	// hierarchy (a software-prefetch what-if; the stock SCC has none).
	Prefetch bool
	// L2Geom overrides the per-core L2 geometry (nil keeps the SCC's
	// 256 KB 4-way write-back L2). It only matters when WithL2 is set and
	// is how the cache-geometry ablations sweep size, associativity and
	// replacement policy; the line size must stay scc.CacheLineBytes
	// because the engine's stream batching is fixed at that granularity.
	L2Geom *cache.Config
	// Params are the core timing coefficients.
	Params Params
}

// l2Config resolves the effective L2 geometry (SCCL2 unless overridden).
func (m *Machine) l2Config() cache.Config {
	if m.L2Geom != nil {
		return *m.L2Geom
	}
	return cache.SCCL2()
}

// newHierarchy builds one core's cache hierarchy per the machine options.
func (m *Machine) newHierarchy() *cache.Hierarchy {
	var l2 *cache.Cache
	if m.WithL2 {
		l2 = cache.New(m.l2Config())
	}
	h := cache.NewHierarchy(cache.New(cache.SCCL1()), l2)
	h.NextLinePrefetch = m.Prefetch
	return h
}

// NewMachine builds a machine with uniform clocks, L2 enabled and default
// timing parameters.
func NewMachine(cfg scc.ClockConfig) *Machine {
	return &Machine{
		Domains: scc.Uniform(cfg),
		WithL2:  true,
		Params:  DefaultParams(),
	}
}

// Options configures one SpMV run.
type Options struct {
	// Mapping places ranks on cores; nil means the RCCE standard
	// mapping (rank r on core r). Its length is the UE count.
	Mapping scc.Mapping
	// UEs is the unit-of-execution count used when Mapping is nil.
	UEs int
	// Variant selects the kernel.
	Variant Variant
	// Scheme picks the row partitioner (default: the paper's
	// balanced-nonzero scheme).
	Scheme partition.Scheme
	// ColdCache, when set, reports the very first (cold-cache) pass.
	// By default the simulator runs one untimed warm-up pass and times
	// the steady state, matching the paper's methodology of timing
	// repeated kernel iterations: for matrices whose per-core working
	// set fits the 256 KB L2 only compulsory misses remain, and those
	// are amortised away across iterations (Section IV-B).
	ColdCache bool
	// Parallelism bounds the host worker pool that simulates UEs
	// concurrently: 0 uses GOMAXPROCS, 1 forces the serial reference
	// path, n > 1 caps the pool at n goroutines. Per-UE simulations are
	// independent (private cold caches, disjoint y rows), so every
	// setting produces bit-identical results; 1 is kept as the
	// determinism oracle and for debugging.
	Parallelism int
	// Span, when set, receives per-UE walk timings as "ue-walk" rollup
	// entries (internal/obs). Observability is write-only: a nil or
	// non-nil span never changes any Result.
	Span *obs.Span
	// Ctx bounds the run: cancellation stops the engine from starting
	// further per-UE walks and aborts between a walk's warm-up and timed
	// passes; the run then returns the context's error and no Result.
	// nil means Background (never cancelled), under which results are
	// bit-identical to the pre-context engine.
	Ctx context.Context
	// Pricing selects the cache-pricing backend: the exact per-access
	// hierarchy walk, the reuse-distance analytic fast path, or (the
	// default) automatic selection that only goes analytic when the
	// result is provably identical to the exact walk (see pricing.go).
	Pricing Pricing
	// Profiles is the store analytic pricing persists stream profiles in
	// (the experiments layer passes its matrix cache, so profiles live
	// beside the matrices they were traced from under one byte budget).
	// A nil store - or one that cannot retain blobs (zero byte or blob
	// budget, e.g. -cachemb 0) - disables persistence: auto mode then
	// stays exact instead of re-tracing the profile per cell, while
	// forced analytic builds a throwaway profile per call.
	Profiles *sparse.MatrixCache
}

// ctx resolves the context knob (nil means Background).
func (o *Options) ctx() context.Context {
	if o.Ctx == nil {
		return context.Background() //sccvet:allow ctx-propagation documented nil-means-Background fallback for the Options knob
	}
	return o.Ctx
}

func (o *Options) normalize() error {
	if o.Mapping == nil {
		if o.UEs <= 0 {
			return fmt.Errorf("sim: options need a Mapping or a positive UE count")
		}
		o.Mapping = scc.StandardMapping(o.UEs)
	}
	o.UEs = len(o.Mapping)
	if err := o.Mapping.Validate(); err != nil {
		return err
	}
	if o.Scheme == "" {
		o.Scheme = partition.SchemeByNNZ
	}
	if o.Variant != KernelStandard && o.Variant != KernelNoXMiss {
		return fmt.Errorf("sim: unknown kernel variant %d", o.Variant)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("sim: negative parallelism %d", o.Parallelism)
	}
	if o.Pricing != PricingAuto && o.Pricing != PricingExact && o.Pricing != PricingAnalytic {
		return fmt.Errorf("sim: unknown pricing mode %d", o.Pricing)
	}
	return nil
}

// Virtual layout of the SpMV working set in each core's private address
// space. The bases are line-aligned and far apart so arrays never share a
// cache line; sizes use the paper's element widths (4-byte Ptr/Index,
// 8-byte values and vectors).
type layout struct {
	ptr, index, val, x, y uint64
}

func layoutFor(a *sparse.CSR) layout {
	const base = uint64(1) << 28 // private memory window
	align := func(v uint64) uint64 { return (v + 63) &^ 63 }
	l := layout{ptr: base}
	l.index = align(l.ptr + 4*uint64(a.Rows+1))
	l.val = align(l.index + 4*uint64(a.NNZ()))
	l.x = align(l.val + 8*uint64(a.NNZ()))
	l.y = align(l.x + 8*uint64(a.Cols))
	return l
}

// CoreResult is one core's contribution to a run.
type CoreResult struct {
	// Rank is the UE rank; Core the physical core it ran on.
	Rank int
	Core scc.CoreID
	// Hops is the distance to the core's memory controller.
	Hops int
	// Rows and NNZ are the work assigned to this core.
	Rows, NNZ int
	// ComputeSec and MemStallSec split the uncontended execution time.
	ComputeSec, MemStallSec float64
	// Slowdown is the memory-contention factor applied to MemStallSec.
	Slowdown float64
	// TimeSec is the final per-core time: Compute + Slowdown*MemStall.
	TimeSec float64
	// Cache reports the core's hierarchy counters.
	Cache cache.HierarchyStats
}

// Result is the outcome of one simulated SpMV.
type Result struct {
	// Matrix and Variant identify the run.
	Matrix  string
	Variant Variant
	// UEs is the number of units of execution.
	UEs int
	// TimeSec is the parallel execution time (max over cores; the
	// kernel ends at a barrier).
	TimeSec float64
	// GFLOPS is 2·nnz / TimeSec / 1e9, the paper's metric.
	GFLOPS float64
	// MFLOPS is the same in MFLOPS/s.
	MFLOPS float64
	// PowerWatts is the modelled full-system power during the run and
	// MFLOPSPerWatt the paper's efficiency metric against it.
	PowerWatts    float64
	MFLOPSPerWatt float64
	// PerCore holds each UE's detail.
	PerCore []CoreResult
	// Y is the computed product (for verification); meaningless for
	// KernelNoXMiss by construction.
	Y []float64
}

// MaxCoreTime returns the slowest core's time (equals TimeSec).
func (r *Result) MaxCoreTime() float64 {
	t := 0.0
	for _, c := range r.PerCore {
		if c.TimeSec > t {
			t = c.TimeSec
		}
	}
	return t
}
