package sim

import (
	"fmt"
	"io"
)

// WriteReport renders a human-readable account of a run: the headline
// numbers and the per-core breakdown (work, time, stall share, contention,
// cache hit ratios). cmd/spmvrun's -verbose output is this report.
func (r *Result) WriteReport(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "matrix      %s\n", r.Matrix); err != nil {
		return err
	}
	fmt.Fprintf(w, "kernel      %s, %d units of execution\n", r.Variant, r.UEs)
	fmt.Fprintf(w, "time        %.3f ms\n", r.TimeSec*1e3)
	fmt.Fprintf(w, "throughput  %.1f MFLOPS (%.3f GFLOPS)\n", r.MFLOPS, r.GFLOPS)
	fmt.Fprintf(w, "power       %.1f W  ->  %.1f MFLOPS/W\n", r.PowerWatts, r.MFLOPSPerWatt)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "rank  core  hops  rows      nnz        time(ms)  stall%  slowdown  L1hit%  L2hit%")
	for _, c := range r.PerCore {
		total := c.ComputeSec + c.Slowdown*c.MemStallSec
		stallPct := 0.0
		if total > 0 {
			stallPct = 100 * c.Slowdown * c.MemStallSec / total
		}
		acc := float64(c.Cache.Accesses)
		l1, l2 := 0.0, 0.0
		if acc > 0 {
			l1 = 100 * float64(c.Cache.L1Hits) / acc
			l2 = 100 * float64(c.Cache.L2Hits) / acc
		}
		if _, err := fmt.Fprintf(w, "%-5d %-5d %-5d %-9d %-10d %-9.3f %-7.1f %-9.2f %-7.1f %-6.1f\n",
			c.Rank, int(c.Core), c.Hops, c.Rows, c.NNZ, c.TimeSec*1e3, stallPct, c.Slowdown, l1, l2); err != nil {
			return err
		}
	}
	return nil
}

// Summary returns the one-line digest of the run.
func (r *Result) Summary() string {
	return fmt.Sprintf("%s: %d UEs, %.1f MFLOPS in %.3f ms at %.1f W (%s kernel)",
		r.Matrix, r.UEs, r.MFLOPS, r.TimeSec*1e3, r.PowerWatts, r.Variant)
}

// AggregateCacheStats sums the per-core hierarchy counters.
func (r *Result) AggregateCacheStats() (s struct {
	Accesses, L1Hits, L2Hits, MemAccesses uint64
}) {
	for _, c := range r.PerCore {
		s.Accesses += c.Cache.Accesses
		s.L1Hits += c.Cache.L1Hits
		s.L2Hits += c.Cache.L2Hits
		s.MemAccesses += c.Cache.MemAccesses
	}
	return s
}
