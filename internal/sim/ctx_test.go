package sim

import (
	"context"
	"testing"

	"repro/internal/scc"
	"repro/internal/sparse"
)

func ctxTestMatrix() *sparse.CSR {
	return sparse.Generate(sparse.Gen{
		Name: "ctx-test", Class: sparse.PatternStencil3D, N: 512, NNZTarget: 8192, Seed: 42,
	})
}

func TestRunSpMVCancelledContext(t *testing.T) {
	a := ctxTestMatrix()
	m := NewMachine(scc.Conf0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RunSpMV(a, nil, Options{UEs: 8, Ctx: ctx}); err != context.Canceled {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}

func TestRunSpMVNilContextMatchesExplicitBackground(t *testing.T) {
	a := ctxTestMatrix()
	m := NewMachine(scc.Conf0)
	base, err := m.RunSpMV(a, nil, Options{UEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := m.RunSpMV(a, nil, Options{UEs: 8, Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if base.TimeSec != withCtx.TimeSec || base.GFLOPS != withCtx.GFLOPS {
		t.Fatalf("explicit Background context changed results: %v vs %v", base.TimeSec, withCtx.TimeSec)
	}
	for i := range base.Y {
		if base.Y[i] != withCtx.Y[i] {
			t.Fatalf("Y[%d] differs under explicit context", i)
		}
	}
}
