package sim

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/rcce"
	"repro/internal/scc"
	"repro/internal/sparse"
	"repro/internal/spmv"
)

// Executable-RCCE scaling sweeps. Unlike the analytic SpMV model above,
// these rows come from actually running the message-passing program
// (internal/spmv.RCCEWith) at each UE count, so they measure what the
// runtime really does: messages exchanged, bytes moved, barriers crossed.
// Every value is deterministic and engine-independent - the goroutine and
// DES backends must render bit-identical rows, which the cross-engine
// determinism tests assert. Wall and virtual time are deliberately absent
// from the rows (they differ between engines by design); the DES bench
// harness records them separately.

// RCCESweepOptions configures an executable-RCCE scaling sweep.
type RCCESweepOptions struct {
	// Engine selects the RCCE backend (goroutine or DES); both produce
	// identical rows.
	Engine rcce.Backend
	// Geometry is the simulated chip (zero value = the real 48-core SCC).
	// Custom geometries lift the UE cap for beyond-the-hardware counts.
	Geometry scc.Geometry
	// Deadline arms the per-op watchdog for every run (0 = block-forever
	// on the goroutine backend, exact quiescence detection on DES).
	Deadline time.Duration
	// Fault is the deterministic fault-injection plan applied to every
	// run (nil injects nothing). Injected delays never change the rows -
	// only wall clock on the goroutine backend, virtual time on DES.
	Fault *fault.Plan
	// Counts are the UE counts to sweep; nil derives the default ladder
	// from the geometry (the paper's core counts, extended by doubling up
	// to the mesh size on custom geometries).
	Counts []int
}

// RCCESweepRow is one UE count's deterministic outcome.
type RCCESweepRow struct {
	// UEs is the number of units of execution the program ran with.
	UEs int
	// Messages/Bytes/Barriers are the runtime's traffic counters after
	// the program's trailing barrier (see spmv.RCCEWith).
	Messages, Bytes, Barriers uint64
	// MeanHops is the mean core-to-memory-controller distance of the
	// distance-reduction mapping at this count.
	MeanHops float64
	// Checksum is the sum of the product vector, the functional identity
	// of the computation.
	Checksum float64
}

// DefaultRCCECounts returns the sweep ladder for a geometry: the paper's
// core counts up to the real chip, then doublings up to the mesh size,
// always ending at the full mesh.
func DefaultRCCECounts(geom scc.Geometry) []int {
	geom = geom.OrDefault()
	cores := geom.NumCores()
	var counts []int
	for _, n := range []int{1, 2, 4, 8, 16, 24, 32, 48} {
		if n <= cores {
			counts = append(counts, n)
		}
	}
	for n := 64; n <= cores; n *= 2 {
		counts = append(counts, n)
	}
	if counts[len(counts)-1] != cores {
		counts = append(counts, cores)
	}
	return counts
}

// RunRCCESweep runs the executable RCCE SpMV at each UE count and returns
// one row per count. x is the deterministic input vector x[i] = 1+(i mod 3),
// chosen so the checksum exercises every column without overflow.
func RunRCCESweep(a *sparse.CSR, opts RCCESweepOptions) ([]RCCESweepRow, error) {
	geom := opts.Geometry.OrDefault()
	counts := opts.Counts
	if counts == nil {
		counts = DefaultRCCECounts(geom)
	}
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(1 + i%3)
	}
	rows := make([]RCCESweepRow, 0, len(counts))
	for _, n := range counts {
		if n <= 0 || n > geom.NumCores() {
			return nil, fmt.Errorf("sim: rcce sweep count %d outside the %d-core mesh", n, geom.NumCores())
		}
		mapping := geom.DistanceReductionMapping(n)
		res, err := spmv.RCCEWith(rcce.Options{
			Backend:  opts.Engine,
			Geometry: opts.Geometry,
			Deadline: opts.Deadline,
			Fault:    opts.Fault,
		}, a, x, n, mapping)
		if err != nil {
			return nil, fmt.Errorf("sim: rcce sweep at %d UEs: %w", n, err)
		}
		sum := 0.0
		for _, v := range res.Y {
			sum += v
		}
		rows = append(rows, RCCESweepRow{
			UEs:      n,
			Messages: res.Stats.Messages,
			Bytes:    res.Stats.Bytes,
			Barriers: res.Stats.Barriers,
			MeanHops: geom.MeanHops(mapping),
			Checksum: sum,
		})
	}
	return rows, nil
}
