package sim

import (
	"math"
	"testing"

	"repro/internal/scc"
	"repro/internal/sparse"
)

func TestRunELLMatchesCSRNumerics(t *testing.T) {
	m := NewMachine(scc.Conf0)
	a := sparse.Generate(sparse.Gen{Name: "e", Class: sparse.PatternStencil2D, N: 4000, NNZTarget: 40000, Seed: 9})
	e, err := sparse.ToELL(a, 10)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.RunELL(e, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, a.Rows)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1
	}
	a.MulVec(want, x)
	for i := range want {
		if math.Abs(r.Y[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("ELL y[%d] = %v, want %v", i, r.Y[i], want[i])
		}
	}
	if r.MFLOPS <= 0 {
		t.Fatal("no throughput reported")
	}
}

func TestRunBCSRMatchesCSRNumerics(t *testing.T) {
	m := NewMachine(scc.Conf0)
	a := sparse.Generate(sparse.Gen{Name: "b", Class: sparse.PatternBlock, N: 3000, NNZTarget: 60000, BlockSize: 32, Seed: 10})
	b := sparse.ToBCSR(a, 2, 2)
	r, err := m.RunBCSR(b, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, a.Rows)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1
	}
	a.MulVec(want, x)
	for i := range want {
		if math.Abs(r.Y[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("BCSR y[%d] = %v, want %v", i, r.Y[i], want[i])
		}
	}
}

func TestFormatKernelsValidateUEs(t *testing.T) {
	m := NewMachine(scc.Conf0)
	a := sparse.Identity(16)
	e, _ := sparse.ToELL(a, 10)
	if _, err := m.RunELL(e, 0); err == nil {
		t.Error("ELL ues=0 accepted")
	}
	if _, err := m.RunELL(e, 49); err == nil {
		t.Error("ELL ues=49 accepted")
	}
	b := sparse.ToBCSR(a, 2, 2)
	if _, err := m.RunBCSR(b, 0); err == nil {
		t.Error("BCSR ues=0 accepted")
	}
}

func TestELLPaddingCostsTime(t *testing.T) {
	// One long row forces heavy padding; ELL throughput per useful flop
	// must trail CSR's on the same matrix.
	m := NewMachine(scc.Conf0)
	coo := sparse.NewCOO(2000, 2000, 0)
	coo.Name = "padded"
	for i := 0; i < 2000; i++ {
		coo.Append(i, i, 1)
	}
	for j := 0; j < 64; j++ { // row 0 has 65 entries, all others 1
		if j != 0 {
			coo.Append(0, j, 1)
		}
	}
	a := coo.ToCSR()
	e, err := sparse.ToELL(a, 100)
	if err != nil {
		t.Fatal(err)
	}
	rCSR, err := m.RunSpMV(a, nil, Options{Mapping: scc.Mapping{0}})
	if err != nil {
		t.Fatal(err)
	}
	rELL, err := m.RunELL(e, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Same useful flops; ELL must take longer overall.
	if rELL.TimeSec <= rCSR.TimeSec {
		t.Fatalf("padded ELL time %v not above CSR %v", rELL.TimeSec, rCSR.TimeSec)
	}
}
