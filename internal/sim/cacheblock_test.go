package sim

import (
	"testing"

	"repro/internal/scc"
	"repro/internal/sparse"
)

func TestRunCacheBlockedMatchesCSRNumerics(t *testing.T) {
	m := NewMachine(scc.Conf0)
	a := sparse.Generate(sparse.Gen{Name: "cb", Class: sparse.PatternRandom, N: 5000, NNZTarget: 50000, Seed: 18})
	r, err := m.RunCacheBlocked(a, 1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstCSR(t, a, r.Y, "cacheblocked")
}

func TestCacheBlockingHelpsScatteredMatrices(t *testing.T) {
	// Cache blocking needs two things: x larger than the L2 (so plain
	// CSR misses) and enough per-core reuse of each x entry (nnz/n well
	// above the core count) for the banded window to pay off. x here is
	// 640 KB with nnz/n = 50 over 4 cores: ~12 touches per entry per
	// core.
	m := NewMachine(scc.Conf0)
	a := sparse.Generate(sparse.Gen{Name: "sc", Class: sparse.PatternRandom, N: 80000, NNZTarget: 4000000, Seed: 19})
	plain, err := m.RunSpMV(a, nil, Options{Mapping: scc.DistanceReductionMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := m.RunCacheBlocked(a, 16384, 4) // 128 KB x-window
	if err != nil {
		t.Fatal(err)
	}
	if blocked.MFLOPS <= plain.MFLOPS {
		t.Fatalf("cache blocking did not help: %.0f vs %.0f MFLOPS", blocked.MFLOPS, plain.MFLOPS)
	}
}

func TestCacheBlockingNeutralOrWorseOnLocalMatrices(t *testing.T) {
	// A band matrix already has a tiny x window; blocking only adds the
	// repeated row walks.
	m := NewMachine(scc.Conf0)
	a := sparse.Generate(sparse.Gen{Name: "lb", Class: sparse.PatternBanded, N: 60000, NNZTarget: 600000, Bandwidth: 64, Seed: 20})
	plain, err := m.RunSpMV(a, nil, Options{Mapping: scc.DistanceReductionMapping(8)})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := m.RunCacheBlocked(a, 4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	if blocked.MFLOPS > 1.1*plain.MFLOPS {
		t.Fatalf("blocking should not help a band matrix: %.0f vs %.0f", blocked.MFLOPS, plain.MFLOPS)
	}
}

func TestRunCacheBlockedValidation(t *testing.T) {
	m := NewMachine(scc.Conf0)
	a := sparse.Identity(8)
	if _, err := m.RunCacheBlocked(a, 0, 4); err == nil {
		t.Error("bandCols=0 accepted")
	}
	if _, err := m.RunCacheBlocked(a, 4, 0); err == nil {
		t.Error("ues=0 accepted")
	}
}
