package sim

import (
	"reflect"
	"testing"

	"repro/internal/scc"
	"repro/internal/sparse"
)

// The host-parallel engine must be a pure performance feature: every field
// of Result (Y, per-core times, GFLOPS, cache stats, ...) must be
// bit-identical to the serial reference path for any pool size.
func TestParallelEngineBitIdenticalToSerial(t *testing.T) {
	matrices := []*sparse.CSR{fixBig, fixSmall, fixIrr}
	ueCounts := []int{1, 7, 24, 48}
	variants := []Variant{KernelStandard, KernelNoXMiss}

	m := NewMachine(scc.Conf0)
	for _, a := range matrices {
		for _, ues := range ueCounts {
			for _, v := range variants {
				for _, cold := range []bool{false, true} {
					opts := Options{
						Mapping:   scc.DistanceReductionMapping(ues),
						Variant:   v,
						ColdCache: cold,
					}
					sOpts := opts
					sOpts.Parallelism = 1
					serial, err := m.RunSpMV(a, nil, sOpts)
					if err != nil {
						t.Fatal(err)
					}
					for _, workers := range []int{0, 3, 16} {
						pOpts := opts
						pOpts.Parallelism = workers
						par, err := m.RunSpMV(a, nil, pOpts)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(serial, par) {
							t.Fatalf("%s ues=%d variant=%v cold=%v workers=%d: parallel result differs from serial",
								a.Name, ues, v, cold, workers)
						}
					}
				}
			}
		}
	}
}

// A swept run must be bit-identical to running each machine on its own:
// the shared cache walk is an optimisation, not an approximation.
func TestSweepBitIdenticalToIndividualRuns(t *testing.T) {
	machines := []*Machine{
		NewMachine(scc.Conf0),
		NewMachine(scc.Conf1),
		NewMachine(scc.Conf2),
	}
	for _, a := range []*sparse.CSR{fixSmall, fixIrr} {
		for _, ues := range []int{1, 24, 48} {
			opts := Options{Mapping: scc.DistanceReductionMapping(ues)}
			swept, err := RunSpMVSweep(machines, a, nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			for j, mj := range machines {
				solo, err := mj.RunSpMV(a, nil, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(swept[j], solo) {
					t.Fatalf("%s ues=%d machine %d: swept result differs from individual run", a.Name, ues, j)
				}
			}
		}
	}
}

// The sweep validates that machines share everything the cache walk
// depends on.
func TestSweepRejectsMismatchedMachines(t *testing.T) {
	a, b := NewMachine(scc.Conf0), NewMachine(scc.Conf1)
	b.WithL2 = false
	if _, err := RunSpMVSweep([]*Machine{a, b}, fixSmall, nil, Options{UEs: 4}); err == nil {
		t.Error("mismatched WithL2 accepted")
	}
	c := NewMachine(scc.Conf1)
	c.Params.NNZComputeCycles++
	if _, err := RunSpMVSweep([]*Machine{a, c}, fixSmall, nil, Options{UEs: 4}); err == nil {
		t.Error("mismatched Params accepted")
	}
	if _, err := RunSpMVSweep(nil, fixSmall, nil, Options{UEs: 4}); err == nil {
		t.Error("empty machine list accepted")
	}
}

func TestNegativeParallelismRejected(t *testing.T) {
	m := NewMachine(scc.Conf0)
	if _, err := m.RunSpMV(fixSmall, nil, Options{UEs: 2, Parallelism: -1}); err == nil {
		t.Error("negative parallelism accepted")
	}
}
