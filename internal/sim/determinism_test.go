package sim

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/scc"
	"repro/internal/sparse"
)

// The host-parallel engine must be a pure performance feature: every field
// of Result (Y, per-core times, GFLOPS, cache stats, ...) must be
// bit-identical to the serial reference path for any pool size.
func TestParallelEngineBitIdenticalToSerial(t *testing.T) {
	matrices := []*sparse.CSR{fixBig, fixSmall, fixIrr}
	ueCounts := []int{1, 7, 24, 48}
	variants := []Variant{KernelStandard, KernelNoXMiss}

	m := NewMachine(scc.Conf0)
	for _, a := range matrices {
		for _, ues := range ueCounts {
			for _, v := range variants {
				for _, cold := range []bool{false, true} {
					opts := Options{
						Mapping:   scc.DistanceReductionMapping(ues),
						Variant:   v,
						ColdCache: cold,
					}
					sOpts := opts
					sOpts.Parallelism = 1
					serial, err := m.RunSpMV(a, nil, sOpts)
					if err != nil {
						t.Fatal(err)
					}
					for _, workers := range []int{0, 3, 16} {
						pOpts := opts
						pOpts.Parallelism = workers
						par, err := m.RunSpMV(a, nil, pOpts)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(serial, par) {
							t.Fatalf("%s ues=%d variant=%v cold=%v workers=%d: parallel result differs from serial",
								a.Name, ues, v, cold, workers)
						}
					}
				}
			}
		}
	}
}

// A swept run must be bit-identical to running each machine on its own:
// the shared cache walk is an optimisation, not an approximation.
func TestSweepBitIdenticalToIndividualRuns(t *testing.T) {
	machines := []*Machine{
		NewMachine(scc.Conf0),
		NewMachine(scc.Conf1),
		NewMachine(scc.Conf2),
	}
	for _, a := range []*sparse.CSR{fixSmall, fixIrr} {
		for _, ues := range []int{1, 24, 48} {
			opts := Options{Mapping: scc.DistanceReductionMapping(ues)}
			swept, err := RunSpMVSweep(machines, a, nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			for j, mj := range machines {
				solo, err := mj.RunSpMV(a, nil, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(swept[j], solo) {
					t.Fatalf("%s ues=%d machine %d: swept result differs from individual run", a.Name, ues, j)
				}
			}
		}
	}
}

// The sweep validates that machines share everything the cache walk
// depends on.
func TestSweepRejectsMismatchedMachines(t *testing.T) {
	a, b := NewMachine(scc.Conf0), NewMachine(scc.Conf1)
	b.WithL2 = false
	if _, err := RunSpMVSweep([]*Machine{a, b}, fixSmall, nil, Options{UEs: 4}); err == nil {
		t.Error("mismatched WithL2 accepted")
	}
	c := NewMachine(scc.Conf1)
	c.Params.NNZComputeCycles++
	if _, err := RunSpMVSweep([]*Machine{a, c}, fixSmall, nil, Options{UEs: 4}); err == nil {
		t.Error("mismatched Params accepted")
	}
	if _, err := RunSpMVSweep(nil, fixSmall, nil, Options{UEs: 4}); err == nil {
		t.Error("empty machine list accepted")
	}
}

func TestNegativeParallelismRejected(t *testing.T) {
	m := NewMachine(scc.Conf0)
	if _, err := m.RunSpMV(fixSmall, nil, Options{UEs: 2, Parallelism: -1}); err == nil {
		t.Error("negative parallelism accepted")
	}
}

// Observability is write-only: disabling the metrics registry (and
// running with or without a trace span) must leave every Result
// bit-identical at every parallelism level. Not t.Parallel: it toggles
// the process-wide registry.
func TestMetricsOnOffBitIdentical(t *testing.T) {
	m := NewMachine(scc.Conf0)
	for _, a := range []*sparse.CSR{fixSmall, fixIrr} {
		for _, workers := range []int{1, 0} {
			opts := Options{
				Mapping:     scc.DistanceReductionMapping(24),
				Parallelism: workers,
			}
			on, err := m.RunSpMV(a, nil, opts)
			if err != nil {
				t.Fatal(err)
			}

			span := obs.Default.StartSpan("test-run")
			spanOpts := opts
			spanOpts.Span = span
			traced, err := m.RunSpMV(a, nil, spanOpts)
			span.End()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(on, traced) {
				t.Fatalf("%s workers=%d: span-traced result differs", a.Name, workers)
			}

			obs.Default.SetEnabled(false)
			off, err := m.RunSpMV(a, nil, opts)
			obs.Default.SetEnabled(true)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(on, off) {
				t.Fatalf("%s workers=%d: metrics-off result differs from metrics-on", a.Name, workers)
			}
		}
	}
}

// Every Result of a sweep must own its product vector: no sharing
// between machines, and no aliasing of the engine's scratch buffer.
func TestSweepResultsOwnTheirY(t *testing.T) {
	machines := []*Machine{NewMachine(scc.Conf0), NewMachine(scc.Conf1)}
	opts := Options{Mapping: scc.DistanceReductionMapping(8)}
	rs, err := RunSpMVSweep(machines, fixSmall, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs[0].Y) == 0 || len(rs[1].Y) == 0 {
		t.Fatal("sweep returned empty product vectors")
	}
	if &rs[0].Y[0] == &rs[1].Y[0] {
		t.Fatal("sweep results share one Y backing array")
	}
	want := rs[1].Y[0]
	rs[0].Y[0] = want + 42 // mutating one result must not leak anywhere
	if rs[1].Y[0] != want {
		t.Fatal("mutation of results[0].Y corrupted results[1].Y")
	}
	solo, err := machines[1].RunSpMV(fixSmall, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(solo.Y, rs[1].Y) {
		t.Fatal("sweep Y differs from single-run Y")
	}
}

// The stream batcher's line shift must track the cache simulator's line
// size (the const guards in spmv.go enforce this at compile time; this
// is the runtime witness).
func TestLineShiftMatchesCacheLine(t *testing.T) {
	if 1<<lineShift != scc.CacheLineBytes {
		t.Fatalf("lineShift %d encodes %d-byte lines, scc.CacheLineBytes = %d",
			lineShift, 1<<lineShift, scc.CacheLineBytes)
	}
}
