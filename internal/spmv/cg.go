package spmv

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/sparse"
)

// CGResult reports a conjugate-gradient solve.
type CGResult struct {
	// X is the solution estimate.
	X []float64
	// Iterations is the number of CG steps performed.
	Iterations int
	// Residual is the final ||b - Ax|| / ||b||.
	Residual float64
	// Converged reports whether the tolerance was met.
	Converged bool
}

// ErrNotSPD signals that CG hit a non-positive curvature direction: the
// matrix is not symmetric positive definite.
var ErrNotSPD = errors.New("spmv: matrix is not symmetric positive definite")

// CG solves A·x = b with the conjugate-gradient method, the canonical
// SpMV-dominated solver the paper's introduction motivates. A must be
// symmetric positive definite. It stops when the relative residual drops
// below tol or after maxIter steps.
func CG(a *sparse.CSR, b []float64, tol float64, maxIter int) (*CGResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("spmv: CG needs a square matrix, have %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("spmv: len(b)=%d != %d", len(b), a.Rows)
	}
	if tol <= 0 || maxIter <= 0 {
		return nil, fmt.Errorf("spmv: CG needs tol > 0 and maxIter > 0")
	}
	n := a.Rows
	x := make([]float64, n)
	r := append([]float64(nil), b...) // r = b - A*0
	p := append([]float64(nil), b...)
	ap := make([]float64, n)

	bNorm := norm2(b)
	if bNorm == 0 {
		return &CGResult{X: x, Converged: true}, nil
	}
	rr := dot(r, r)
	res := &CGResult{X: x}
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		if math.Sqrt(rr)/bNorm < tol {
			res.Converged = true
			break
		}
		a.MulVec(ap, p)
		pap := dot(p, ap)
		if pap <= 0 {
			return nil, ErrNotSPD
		}
		alpha := rr / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rrNew := dot(r, r)
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rr = rrNew
	}
	if !res.Converged && math.Sqrt(rr)/bNorm < tol {
		res.Converged = true
	}
	res.Residual = math.Sqrt(rr) / bNorm
	return res, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(a []float64) float64 { return math.Sqrt(dot(a, a)) }
