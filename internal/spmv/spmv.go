// Package spmv provides executable (not simulated) SpMV kernels: the
// sequential reference, a goroutine-parallel version mirroring the OpenMP
// parallelisation the paper uses on the Xeon/Itanium2/Opteron comparison
// systems, and an RCCE-style version that runs on the message-passing
// runtime exactly like the paper's SCC code (x in shared memory, row blocks
// partitioned by nonzeros, results gathered at rank 0). The timing figures
// come from internal/sim; this package establishes functional correctness
// and exercises the RCCE substrate end to end.
package spmv

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/rcce"
	"repro/internal/scc"
	"repro/internal/sparse"
)

// parallelPool fans the shared-memory kernel's row blocks out through the
// engine's instrumented worker pool (spmv.parallel.tasks/task_seconds/
// occupancy), so the executable kernel path is observable like the
// simulation engine and inherits the pool's serial reference path.
var parallelPool = obs.Default.Pool("spmv.parallel")

// Sequential computes y = A·x with the paper's Figure 2 kernel.
func Sequential(a *sparse.CSR, y, x []float64) {
	a.MulVec(y, x)
}

// Parallel computes y = A·x with workers goroutines over a balanced-nonzero
// row partition - the shared-memory (OpenMP-style) parallelisation used on
// the paper's multicore comparison systems.
func Parallel(a *sparse.CSR, y, x []float64, workers int) error {
	if workers <= 0 {
		return fmt.Errorf("spmv: worker count %d must be positive", workers)
	}
	if len(x) != a.Cols || len(y) != a.Rows {
		return fmt.Errorf("spmv: dimension mismatch: %dx%d with len(x)=%d len(y)=%d",
			a.Rows, a.Cols, len(x), len(y))
	}
	parts := partition.ByNNZ(a, workers)
	parallelPool.ForEach(workers, workers, func(w int) {
		for _, ri := range parts[w] {
			i := int(ri)
			var t float64
			for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
				t += a.Val[k] * x[a.Index[k]]
			}
			y[i] = t
		}
	})
	return nil
}

// RCCEResult carries the outcome of an RCCE-parallel SpMV.
type RCCEResult struct {
	// Y is the full product, assembled at rank 0.
	Y []float64
	// Stats reports the communication volume the run generated.
	Stats rcce.Stats
}

// RCCE computes y = A·x on the message-passing runtime with ues units of
// execution placed by mapping (nil = standard). It reproduces the paper's
// SCC program structure: every UE reads the shared x, processes its
// balanced-nonzero row block, and rank 0 gathers the partial results.
func RCCE(a *sparse.CSR, x []float64, ues int, mapping scc.Mapping) (*RCCEResult, error) {
	return RCCEWith(rcce.Options{}, a, x, ues, mapping)
}

// RCCEWith is RCCE with runtime options armed: engine selection, custom
// mesh geometry, deadline watchdog and/or fault injection (see
// rcce.Options). A custom geometry lifts the 48-UE cap for
// beyond-the-hardware scaling runs.
func RCCEWith(opts rcce.Options, a *sparse.CSR, x []float64, ues int, mapping scc.Mapping) (*RCCEResult, error) {
	if len(x) != a.Cols {
		return nil, fmt.Errorf("spmv: len(x)=%d, matrix has %d columns", len(x), a.Cols)
	}
	parts := partition.ByNNZ(a, ues)
	out := &RCCEResult{Y: make([]float64, a.Rows)}

	err := rcce.RunWith(opts, ues, mapping, scc.Uniform(scc.Conf0), func(u *rcce.UE) error {
		// x lives in shared memory, initialised by rank 0 (paper setup).
		shx, err := u.Shmalloc("x", a.Cols)
		if err != nil {
			return err
		}
		if u.Rank() == 0 {
			copy(shx, x)
		}
		if err := u.Barrier(); err != nil {
			return err
		}

		rows := parts[u.Rank()]
		part := make([]float64, len(rows))
		for p, ri := range rows {
			i := int(ri)
			var t float64
			for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
				t += a.Val[k] * shx[a.Index[k]]
			}
			part[p] = t
		}

		if u.Rank() == 0 {
			for p, ri := range rows {
				out.Y[ri] = part[p]
			}
			// Receive every other rank's block, tagged implicitly by
			// the deterministic partition.
			for r := 1; r < u.NumUEs(); r++ {
				peer := parts[r]
				if len(peer) == 0 {
					continue
				}
				buf := make([]float64, len(peer))
				if err := u.RecvFloat64s(buf, r); err != nil {
					return err
				}
				for p, ri := range peer {
					out.Y[ri] = buf[p]
				}
			}
		} else if len(part) > 0 {
			if err := u.SendFloat64s(part, 0); err != nil {
				return err
			}
		}
		// The trailing barrier makes the counter snapshot deterministic:
		// every rank's traffic is complete before rank 0 reads the stats,
		// so both engines report identical numbers.
		if err := u.Barrier(); err != nil {
			return err
		}
		if u.Rank() == 0 {
			out.Stats = u.Stats()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Iterate runs iters repeated products y = A·(A·(...x)) sequentially,
// normalising between steps - the power-method loop used by the examples
// and the benchmark harness to emulate a solver workload.
func Iterate(a *sparse.CSR, x []float64, iters int) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("spmv: Iterate needs a square matrix")
	}
	if len(x) != a.Cols {
		return nil, fmt.Errorf("spmv: len(x)=%d != %d", len(x), a.Cols)
	}
	cur := append([]float64(nil), x...)
	next := make([]float64, a.Rows)
	for it := 0; it < iters; it++ {
		a.MulVec(next, cur)
		// Normalise by the max magnitude to avoid overflow.
		maxAbs := 0.0
		for _, v := range next {
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		if maxAbs == 0 {
			copy(cur, next)
			break
		}
		for i := range next {
			cur[i] = next[i] / maxAbs
		}
	}
	return cur, nil
}
