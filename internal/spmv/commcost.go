package spmv

import (
	"fmt"

	"repro/internal/mesh"
	"repro/internal/scc"
)

// Analytic cost model for the halo exchange of a distributed SpMV on the
// SCC: messages move through the message passing buffers in line-sized
// flits over the mesh. Per message the model charges a flag-handshake
// startup, a per-hop mesh transit and an MPB-bandwidth term; per UE the
// costs of its sends and receives serialise (single-issue P54C cores), and
// the exchange completes when the busiest UE finishes.
const (
	// commStartupCoreCycles is the RCCE flag handshake per message.
	commStartupCoreCycles = 1000
	// commMeshCyclesPerHop is charged per mesh hop per message (flit
	// pipeline setup; the payload streams behind it).
	commMeshCyclesPerHop = 8
	// commMeshCyclesPerLine is the MPB/mesh cost of moving one 32-byte
	// line end to end.
	commMeshCyclesPerLine = 16
)

// ExchangeCost prices one halo exchange of the plan with UEs placed by
// mapping on a chip clocked at cc. It returns the busiest UE's time in
// seconds.
func ExchangeCost(plan *CommPlan, mapping scc.Mapping, cc scc.ClockConfig) (float64, error) {
	k := len(plan.Parts)
	if len(mapping) != k {
		return 0, fmt.Errorf("spmv: mapping size %d != %d UEs", len(mapping), k)
	}
	if err := mapping.Validate(); err != nil {
		return 0, err
	}
	grid := mesh.NewSCC()
	coreCyc := cc.CoreCycleSec()
	meshCyc := cc.MeshCycleSec()

	perUE := make([]float64, k)
	msgCost := func(u, v, entries int) float64 {
		hops := grid.Hops(mapping[u].Coord(), mapping[v].Coord())
		bytes := 8 * entries
		lines := (bytes + scc.CacheLineBytes - 1) / scc.CacheLineBytes
		return commStartupCoreCycles*coreCyc +
			float64(hops*commMeshCyclesPerHop)*meshCyc +
			float64(lines*commMeshCyclesPerLine)*meshCyc
	}
	for u := 0; u < k; u++ {
		for v := 0; v < k; v++ {
			n := len(plan.SendIdx[u][v])
			if n == 0 {
				continue
			}
			c := msgCost(u, v, n)
			perUE[u] += c // sender side
			perUE[v] += c // receiver side
		}
	}
	busiest := 0.0
	for _, t := range perUE {
		if t > busiest {
			busiest = t
		}
	}
	return busiest, nil
}

// ExchangeFraction estimates what share of one distributed SpMV iteration
// the halo exchange would consume, given the compute time of the kernel
// (e.g. sim.Result.TimeSec): comm / (comm + compute).
func ExchangeFraction(commSec, computeSec float64) float64 {
	if commSec <= 0 {
		return 0
	}
	return commSec / (commSec + computeSec)
}
