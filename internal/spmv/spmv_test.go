package spmv

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/scc"
	"repro/internal/sparse"
)

func fixture(seed int64) (*sparse.CSR, []float64, []float64) {
	a := sparse.Generate(sparse.Gen{
		Name: "f", Class: sparse.PatternPowerLaw, N: 600, NNZTarget: 6000, Seed: seed,
	})
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = math.Sin(float64(i)*0.3) + 1
	}
	want := make([]float64, a.Rows)
	a.MulVec(want, x)
	return a, x, want
}

func assertClose(t *testing.T, got, want []float64, ctx string) {
	t.Helper()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("%s: y[%d] = %v, want %v", ctx, i, got[i], want[i])
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	a, x, want := fixture(1)
	for _, w := range []int{1, 2, 3, 8, 48, 100} {
		y := make([]float64, a.Rows)
		if err := Parallel(a, y, x, w); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		assertClose(t, y, want, "parallel")
	}
}

func TestParallelValidation(t *testing.T) {
	a, x, _ := fixture(2)
	y := make([]float64, a.Rows)
	if err := Parallel(a, y, x, 0); err == nil {
		t.Error("workers=0 accepted")
	}
	if err := Parallel(a, y[:3], x, 2); err == nil {
		t.Error("short y accepted")
	}
	if err := Parallel(a, y, x[:3], 2); err == nil {
		t.Error("short x accepted")
	}
}

func TestRCCEMatchesSequential(t *testing.T) {
	a, x, want := fixture(3)
	for _, ues := range []int{1, 2, 5, 16} {
		r, err := RCCE(a, x, ues, nil)
		if err != nil {
			t.Fatalf("ues=%d: %v", ues, err)
		}
		assertClose(t, r.Y, want, "rcce")
	}
}

func TestRCCEWithDistanceMapping(t *testing.T) {
	a, x, want := fixture(4)
	r, err := RCCE(a, x, 8, scc.DistanceReductionMapping(8))
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, r.Y, want, "rcce-mapped")
	if r.Stats.Messages == 0 {
		t.Error("no messages recorded; gather should communicate")
	}
}

func TestRCCEMoreUEsThanRows(t *testing.T) {
	a := sparse.Identity(5)
	x := []float64{1, 2, 3, 4, 5}
	r, err := RCCE(a, x, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if r.Y[i] != x[i] {
			t.Fatalf("y = %v", r.Y)
		}
	}
}

func TestRCCEValidation(t *testing.T) {
	a, _, _ := fixture(5)
	if _, err := RCCE(a, make([]float64, 3), 2, nil); err == nil {
		t.Error("short x accepted")
	}
}

func TestIteratePowerMethod(t *testing.T) {
	// The identity: any normalised vector is a fixed point.
	a := sparse.Identity(10)
	x := make([]float64, 10)
	x[3] = 2
	out, err := Iterate(a, x, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[3]-1) > 1e-12 {
		t.Fatalf("power iteration on identity: %v", out)
	}
	if _, err := Iterate(&sparse.CSR{Rows: 2, Cols: 3, Ptr: []int32{0, 0, 0}}, x, 1); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := Iterate(a, x[:3], 1); err == nil {
		t.Error("short x accepted")
	}
}

func TestIterateZeroMatrix(t *testing.T) {
	z := &sparse.CSR{Rows: 4, Cols: 4, Ptr: []int32{0, 0, 0, 0, 0}}
	out, err := Iterate(z, []float64{1, 1, 1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 0 {
			t.Fatalf("zero matrix iterate = %v", out)
		}
	}
}

func TestCGSolvesLaplacian(t *testing.T) {
	a := sparse.Laplacian2D(16) // SPD, n=256
	n := a.Rows
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Cos(float64(i) * 0.05)
	}
	b := make([]float64, n)
	a.MulVec(b, want)
	res, err := CG(a, b, 1e-10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: residual %v after %d iters", res.Residual, res.Iterations)
	}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], want[i])
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := sparse.Laplacian2D(4)
	res, err := CG(a, make([]float64, a.Rows), 1e-8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero RHS: %+v", res)
	}
}

func TestCGRejectsNonSPD(t *testing.T) {
	// -Laplacian is negative definite: p·Ap < 0 on the first step.
	a := sparse.Laplacian2D(4)
	for k := range a.Val {
		a.Val[k] = -a.Val[k]
	}
	b := make([]float64, a.Rows)
	b[0] = 1
	if _, err := CG(a, b, 1e-8, 100); err != ErrNotSPD {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
}

func TestCGValidation(t *testing.T) {
	a := sparse.Laplacian2D(4)
	b := make([]float64, a.Rows)
	if _, err := CG(a, b[:3], 1e-8, 10); err == nil {
		t.Error("short b accepted")
	}
	if _, err := CG(a, b, 0, 10); err == nil {
		t.Error("tol=0 accepted")
	}
	if _, err := CG(a, b, 1e-8, 0); err == nil {
		t.Error("maxIter=0 accepted")
	}
	rect := &sparse.CSR{Rows: 2, Cols: 3, Ptr: []int32{0, 0, 0}}
	if _, err := CG(rect, b[:2], 1e-8, 10); err == nil {
		t.Error("rectangular accepted")
	}
}

// Property: Parallel equals Sequential for arbitrary shapes/worker counts.
func TestQuickParallelEquivalence(t *testing.T) {
	f := func(seed int64, rawN uint8, rawW uint8) bool {
		n := int(rawN)%150 + 1
		w := int(rawW)%20 + 1
		a := sparse.Generate(sparse.Gen{
			Name: "q", Class: sparse.PatternRandom, N: n, NNZTarget: 4 * n, Seed: seed,
		})
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i%9) - 4
		}
		want := make([]float64, n)
		a.MulVec(want, x)
		got := make([]float64, n)
		if err := Parallel(a, got, x, w); err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
