package spmv

import (
	"math"
	"testing"

	"repro/internal/partition"
	"repro/internal/scc"
	"repro/internal/sparse"
)

func TestCommPlanIdentityNeedsNoComm(t *testing.T) {
	a := sparse.Identity(12)
	plan, err := NewCommPlan(a, partition.ByNNZ(a, 4))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Volume() != 0 {
		t.Fatalf("identity exchange volume = %d, want 0", plan.Volume())
	}
	if plan.MaxDegree() != 0 {
		t.Fatalf("identity max degree = %d", plan.MaxDegree())
	}
}

func TestCommPlanTridiagonalNeighborOnly(t *testing.T) {
	// A tridiagonal matrix split contiguously needs exactly the two
	// boundary entries per internal cut.
	n := 40
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Append(i, i, 2)
		if i > 0 {
			coo.Append(i, i-1, -1)
		}
		if i < n-1 {
			coo.Append(i, i+1, -1)
		}
	}
	a := coo.ToCSR()
	const k = 4
	plan, err := NewCommPlan(a, partition.ByRows(n, k))
	if err != nil {
		t.Fatal(err)
	}
	// 3 internal cuts x 2 directions x 1 entry each.
	if plan.Volume() != 6 {
		t.Fatalf("tridiagonal volume = %d, want 6", plan.Volume())
	}
	if plan.MaxDegree() > 2 {
		t.Fatalf("tridiagonal max degree = %d, want <= 2", plan.MaxDegree())
	}
}

func TestCommPlanOwnership(t *testing.T) {
	a := sparse.Laplacian2D(8)
	parts := partition.ByNNZ(a, 5)
	plan, err := NewCommPlan(a, parts)
	if err != nil {
		t.Fatal(err)
	}
	for u, rows := range parts {
		for _, r := range rows {
			if plan.OwnerOf[r] != int32(u) {
				t.Fatalf("row %d owner = %d, want %d", r, plan.OwnerOf[r], u)
			}
		}
	}
	// A UE never "sends to itself".
	for u := range plan.SendIdx {
		if len(plan.SendIdx[u][u]) != 0 {
			t.Fatalf("UE %d has a self-send list", u)
		}
	}
}

func TestCommPlanValidation(t *testing.T) {
	rect := &sparse.CSR{Rows: 2, Cols: 3, Ptr: []int32{0, 0, 0}}
	if _, err := NewCommPlan(rect, partition.Parts{{0, 1}}); err == nil {
		t.Error("rectangular matrix accepted")
	}
	a := sparse.Identity(4)
	if _, err := NewCommPlan(a, partition.Parts{{0, 1}}); err == nil {
		t.Error("incomplete partition accepted")
	}
}

func TestDistRCCEMatchesSequential(t *testing.T) {
	a, x, want := fixture(31)
	for _, scheme := range []partition.Scheme{partition.SchemeByNNZ, partition.SchemeBFS, partition.SchemeCyclic} {
		for _, ues := range []int{1, 3, 8} {
			r, err := DistRCCE(a, x, ues, scheme, nil)
			if err != nil {
				t.Fatalf("%s/%d: %v", scheme, ues, err)
			}
			assertClose(t, r.Y, want, string(scheme))
		}
	}
}

func TestDistRCCEWithMapping(t *testing.T) {
	a, x, want := fixture(32)
	r, err := DistRCCE(a, x, 8, partition.SchemeByNNZ, scc.DistanceReductionMapping(8))
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, r.Y, want, "mapped")
	if r.Volume <= 0 {
		t.Fatal("no halo exchange recorded for a coupled matrix")
	}
	if r.Stats.Messages == 0 {
		t.Fatal("no messages counted")
	}
}

func TestDistRCCEValidation(t *testing.T) {
	a, _, _ := fixture(33)
	if _, err := DistRCCE(a, make([]float64, 3), 4, partition.SchemeByNNZ, nil); err == nil {
		t.Error("short x accepted")
	}
	if _, err := DistRCCE(a, make([]float64, a.Cols), 4, "nope", nil); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestBFSPartitionReducesCommVolume(t *testing.T) {
	// A shuffled band: contiguous blocks of the shuffled order touch x
	// everywhere, while BFS clustering restores near-neighbour blocks.
	band := sparse.Generate(sparse.Gen{
		Name: "band", Class: sparse.PatternBanded, N: 3000, NNZTarget: 24000,
		Bandwidth: 25, Seed: 9,
	})
	shuffled := sparse.ApplySymmetric(band, sparse.RandomPerm(3000, 17))
	const k = 8
	planContig, err := NewCommPlan(shuffled, partition.ByNNZ(shuffled, k))
	if err != nil {
		t.Fatal(err)
	}
	planBFS, err := NewCommPlan(shuffled, partition.BFSClustered(shuffled, k))
	if err != nil {
		t.Fatal(err)
	}
	if planBFS.Volume() >= planContig.Volume() {
		t.Fatalf("BFS volume %d not below contiguous %d", planBFS.Volume(), planContig.Volume())
	}
	// And it should be a substantial reduction, not noise.
	if float64(planBFS.Volume()) > 0.7*float64(planContig.Volume()) {
		t.Fatalf("BFS reduction too small: %d vs %d", planBFS.Volume(), planContig.Volume())
	}
}

func TestDistRCCESingleUE(t *testing.T) {
	a := sparse.Laplacian2D(10)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	r, err := DistRCCE(a, x, 1, partition.SchemeByNNZ, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Volume != 0 {
		t.Fatalf("single UE exchanged %d entries", r.Volume)
	}
	want := make([]float64, a.Rows)
	a.MulVec(want, x)
	for i := range want {
		if math.Abs(r.Y[i]-want[i]) > 1e-12 {
			t.Fatal("single-UE product wrong")
		}
	}
}

func TestExchangeCostScalesWithVolumeAndDistance(t *testing.T) {
	band := sparse.Generate(sparse.Gen{
		Name: "b", Class: sparse.PatternBanded, N: 2000, NNZTarget: 16000,
		Bandwidth: 20, Seed: 4,
	})
	shuffled := sparse.ApplySymmetric(band, sparse.RandomPerm(2000, 5))
	const k = 8
	planSmall, err := NewCommPlan(shuffled, partition.BFSClustered(shuffled, k))
	if err != nil {
		t.Fatal(err)
	}
	planBig, err := NewCommPlan(shuffled, partition.ByNNZ(shuffled, k))
	if err != nil {
		t.Fatal(err)
	}
	mapping := scc.DistanceReductionMapping(k)
	cSmall, err := ExchangeCost(planSmall, mapping, scc.Conf0)
	if err != nil {
		t.Fatal(err)
	}
	cBig, err := ExchangeCost(planBig, mapping, scc.Conf0)
	if err != nil {
		t.Fatal(err)
	}
	if cSmall <= 0 || cBig <= 0 {
		t.Fatal("non-positive exchange cost")
	}
	if cSmall >= cBig {
		t.Fatalf("smaller halo not cheaper: %.2e vs %.2e", cSmall, cBig)
	}
	// A faster mesh (conf1) must shrink the cost.
	cFast, err := ExchangeCost(planBig, mapping, scc.Conf1)
	if err != nil {
		t.Fatal(err)
	}
	if cFast >= cBig {
		t.Fatal("faster clocks did not shrink the exchange")
	}
}

func TestExchangeCostValidation(t *testing.T) {
	a := sparse.Identity(8)
	plan, err := NewCommPlan(a, partition.ByNNZ(a, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExchangeCost(plan, scc.Mapping{0, 1}, scc.Conf0); err == nil {
		t.Error("short mapping accepted")
	}
	if _, err := ExchangeCost(plan, scc.Mapping{0, 0, 1, 2}, scc.Conf0); err == nil {
		t.Error("duplicate mapping accepted")
	}
	// No communication: zero cost.
	c, err := ExchangeCost(plan, scc.StandardMapping(4), scc.Conf0)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Fatalf("identity exchange cost %v, want 0", c)
	}
}

func TestExchangeFraction(t *testing.T) {
	if ExchangeFraction(0, 1) != 0 {
		t.Fatal("zero comm fraction")
	}
	if got := ExchangeFraction(1, 3); got != 0.25 {
		t.Fatalf("fraction = %v, want 0.25", got)
	}
}
