package spmv

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// Additional iterative solvers around the SpMV kernel: BiCGSTAB for general
// (unsymmetric) systems - most of the paper's testbed is unsymmetric - and
// a Jacobi-preconditioned CG for ill-conditioned SPD systems. Both are
// SpMV-dominated, like every workload the paper's introduction motivates.

// BiCGSTABResult reports a BiCGSTAB solve.
type BiCGSTABResult struct {
	X          []float64
	Iterations int
	Residual   float64
	Converged  bool
}

// BiCGSTAB solves A·x = b for a general square matrix using the
// stabilised bi-conjugate gradient method. It stops when the relative
// residual drops below tol or after maxIter steps; it returns an error on
// a true breakdown (rho or omega collapsing to zero).
func BiCGSTAB(a *sparse.CSR, b []float64, tol float64, maxIter int) (*BiCGSTABResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("spmv: BiCGSTAB needs a square matrix, have %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("spmv: len(b)=%d != %d", len(b), a.Rows)
	}
	if tol <= 0 || maxIter <= 0 {
		return nil, fmt.Errorf("spmv: BiCGSTAB needs tol > 0 and maxIter > 0")
	}
	n := a.Rows
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	rHat := append([]float64(nil), b...) // shadow residual
	v := make([]float64, n)
	p := make([]float64, n)
	s := make([]float64, n)
	tv := make([]float64, n)

	bNorm := norm2(b)
	if bNorm == 0 {
		return &BiCGSTABResult{X: x, Converged: true}, nil
	}
	rho, alpha, omega := 1.0, 1.0, 1.0
	res := &BiCGSTABResult{X: x}
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		if norm2(r)/bNorm < tol {
			res.Converged = true
			break
		}
		rhoNew := dot(rHat, r)
		if math.Abs(rhoNew) < 1e-300 {
			return nil, fmt.Errorf("spmv: BiCGSTAB breakdown (rho = %g) at iteration %d", rhoNew, res.Iterations)
		}
		beta := (rhoNew / rho) * (alpha / omega)
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		a.MulVec(v, p)
		alpha = rhoNew / dot(rHat, v)
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if norm2(s)/bNorm < tol {
			for i := range x {
				x[i] += alpha * p[i]
			}
			copy(r, s)
			res.Iterations++
			res.Converged = true
			break
		}
		a.MulVec(tv, s)
		tt := dot(tv, tv)
		if tt == 0 {
			return nil, fmt.Errorf("spmv: BiCGSTAB breakdown (t = 0) at iteration %d", res.Iterations)
		}
		omega = dot(tv, s) / tt
		if math.Abs(omega) < 1e-300 {
			return nil, fmt.Errorf("spmv: BiCGSTAB breakdown (omega = %g) at iteration %d", omega, res.Iterations)
		}
		for i := range x {
			x[i] += alpha*p[i] + omega*s[i]
			r[i] = s[i] - omega*tv[i]
		}
		rho = rhoNew
	}
	res.Residual = norm2(r) / bNorm
	if res.Residual < tol {
		res.Converged = true
	}
	return res, nil
}

// PCGJacobi solves A·x = b with CG preconditioned by the diagonal (Jacobi)
// preconditioner: M = diag(A). A must be SPD with a positive diagonal.
func PCGJacobi(a *sparse.CSR, b []float64, tol float64, maxIter int) (*CGResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("spmv: PCGJacobi needs a square matrix")
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("spmv: len(b)=%d != %d", len(b), a.Rows)
	}
	if tol <= 0 || maxIter <= 0 {
		return nil, fmt.Errorf("spmv: PCGJacobi needs tol > 0 and maxIter > 0")
	}
	n := a.Rows
	invDiag := make([]float64, n)
	for i := 0; i < n; i++ {
		d := a.At(i, i)
		if d <= 0 {
			return nil, fmt.Errorf("spmv: non-positive diagonal %g at row %d", d, i)
		}
		invDiag[i] = 1 / d
	}

	x := make([]float64, n)
	r := append([]float64(nil), b...)
	z := make([]float64, n)
	for i := range z {
		z[i] = invDiag[i] * r[i]
	}
	p := append([]float64(nil), z...)
	ap := make([]float64, n)

	bNorm := norm2(b)
	if bNorm == 0 {
		return &CGResult{X: x, Converged: true}, nil
	}
	rz := dot(r, z)
	res := &CGResult{X: x}
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		if norm2(r)/bNorm < tol {
			res.Converged = true
			break
		}
		a.MulVec(ap, p)
		pap := dot(p, ap)
		if pap <= 0 {
			return nil, ErrNotSPD
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		for i := range z {
			z[i] = invDiag[i] * r[i]
		}
		rzNew := dot(r, z)
		beta := rzNew / rz
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		rz = rzNew
	}
	res.Residual = norm2(r) / bNorm
	if res.Residual < tol {
		res.Converged = true
	}
	return res, nil
}

// MulMat computes Y = A·X for K dense right-hand sides stored column-major
// in x (K vectors of length Cols back to back) - the SpMM kernel that
// amortises the irregular index stream over several vectors.
func MulMat(a *sparse.CSR, y, x []float64, k int) error {
	if k <= 0 {
		return fmt.Errorf("spmv: MulMat needs k > 0")
	}
	if len(x) != k*a.Cols || len(y) != k*a.Rows {
		return fmt.Errorf("spmv: MulMat buffers: len(x)=%d want %d, len(y)=%d want %d",
			len(x), k*a.Cols, len(y), k*a.Rows)
	}
	for i := 0; i < a.Rows; i++ {
		for v := 0; v < k; v++ {
			y[v*a.Rows+i] = 0
		}
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			col := int(a.Index[p])
			val := a.Val[p]
			for v := 0; v < k; v++ {
				y[v*a.Rows+i] += val * x[v*a.Cols+col]
			}
		}
	}
	return nil
}
