package spmv

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/partition"
	"repro/internal/rcce"
	"repro/internal/scc"
	"repro/internal/sparse"
)

// Distributed-memory SpMV. The paper's SCC code keeps x in shared memory;
// scaling beyond one chip (or avoiding the shared-memory region entirely)
// requires the classic distributed formulation: each UE owns a block of x
// and the matrix rows of its partition, and before computing it exchanges
// exactly the x entries its rows reference from other owners ("halo
// exchange"). CommPlan precomputes who needs what; DistRCCE executes the
// exchange with non-blocking sends over the RCCE runtime.

// CommPlan is the symbolic phase of a distributed SpMV: for a fixed
// partition of rows (and the matching ownership of x blocks) it records,
// per UE pair, the x indices that must travel.
type CommPlan struct {
	// Parts is the row partition the plan was built for. x ownership
	// follows rows: UE u owns x[j] iff it owns row j.
	Parts partition.Parts
	// OwnerOf maps each x index to its owning UE.
	OwnerOf []int32
	// SendIdx[u][v] lists the x indices UE u must send to UE v,
	// ascending; RecvIdx[v][u] is identical by construction (the
	// receiving side's view).
	SendIdx [][][]int32
}

// NewCommPlan builds the plan for matrix a under the given row partition.
// The matrix must be square (x ownership mirrors row ownership).
func NewCommPlan(a *sparse.CSR, parts partition.Parts) (*CommPlan, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("spmv: distributed SpMV needs a square matrix")
	}
	if err := parts.Validate(a.Rows); err != nil {
		return nil, err
	}
	k := len(parts)
	owner := make([]int32, a.Cols)
	for u, rows := range parts {
		for _, r := range rows {
			owner[r] = int32(u)
		}
	}
	// For each UE u, find the foreign x indices its rows touch.
	needed := make([]map[int32]bool, k)
	for u := range needed {
		needed[u] = map[int32]bool{}
	}
	for u, rows := range parts {
		for _, r := range rows {
			for p := a.Ptr[r]; p < a.Ptr[r+1]; p++ {
				c := a.Index[p]
				if owner[c] != int32(u) {
					needed[u][c] = true
				}
			}
		}
	}
	// Invert into send lists: owner(v) sends to requester(u).
	send := make([][][]int32, k)
	for u := range send {
		send[u] = make([][]int32, k)
	}
	for u := 0; u < k; u++ {
		for c := range needed[u] {
			v := owner[c]
			send[v][u] = append(send[v][u], c)
		}
	}
	for u := 0; u < k; u++ {
		for v := 0; v < k; v++ {
			sort.Slice(send[u][v], func(i, j int) bool { return send[u][v][i] < send[u][v][j] })
		}
	}
	return &CommPlan{Parts: parts, OwnerOf: owner, SendIdx: send}, nil
}

// Volume returns the total number of x entries exchanged per SpMV.
func (p *CommPlan) Volume() int {
	total := 0
	for _, row := range p.SendIdx {
		for _, idx := range row {
			total += len(idx)
		}
	}
	return total
}

// MaxDegree returns the largest number of distinct peers any UE talks to
// (sends plus receives, counting each peer once).
func (p *CommPlan) MaxDegree() int {
	k := len(p.Parts)
	best := 0
	for u := 0; u < k; u++ {
		peers := map[int]bool{}
		for v := 0; v < k; v++ {
			if len(p.SendIdx[u][v]) > 0 {
				peers[v] = true
			}
			if len(p.SendIdx[v][u]) > 0 {
				peers[v] = true
			}
		}
		if len(peers) > best {
			best = len(peers)
		}
	}
	return best
}

// DistResult is the outcome of a distributed SpMV.
type DistResult struct {
	// Y is the assembled product.
	Y []float64
	// Volume is the number of x entries exchanged.
	Volume int
	// Stats is the runtime's communication accounting.
	Stats rcce.Stats
}

// DistRCCE runs y = A·x with a fully distributed x: UE u holds only its
// block of x, exchanges halo entries per the plan using non-blocking
// sends, computes its rows and returns the product gathered at rank 0.
// The scheme picks the row partitioner (and with it the x distribution).
func DistRCCE(a *sparse.CSR, x []float64, ues int, scheme partition.Scheme, mapping scc.Mapping) (*DistResult, error) {
	if len(x) != a.Cols {
		return nil, fmt.Errorf("spmv: len(x)=%d, matrix has %d columns", len(x), a.Cols)
	}
	parts, err := partition.Split(scheme, a, ues)
	if err != nil {
		return nil, err
	}
	plan, err := NewCommPlan(a, parts)
	if err != nil {
		return nil, err
	}

	out := &DistResult{Y: make([]float64, a.Rows), Volume: plan.Volume()}
	err = rcce.Run(ues, mapping, scc.Uniform(scc.Conf0), func(u *rcce.UE) error {
		me := u.Rank()
		// Local x fragment: a map from global index to value, seeded
		// with the owned block (each UE gets only its own x values).
		local := map[int32]float64{}
		for _, r := range parts[me] {
			local[r] = x[r]
		}

		// Halo exchange: non-blocking sends of every outgoing fragment,
		// then blocking receives, then drain the sends.
		var sends []*rcce.Request
		for v := 0; v < ues; v++ {
			idx := plan.SendIdx[me][v]
			if len(idx) == 0 {
				continue
			}
			payload := make([]float64, len(idx))
			for i, c := range idx {
				payload[i] = local[c]
			}
			buf := float64sPayload(payload)
			sends = append(sends, u.Isend(buf, v))
		}
		for v := 0; v < ues; v++ {
			idx := plan.SendIdx[v][me] // what v sends me
			if len(idx) == 0 {
				continue
			}
			buf := make([]byte, 8*len(idx))
			if err := u.Recv(buf, v); err != nil {
				return err
			}
			vals := payloadFloat64s(buf)
			for i, c := range idx {
				local[c] = vals[i]
			}
		}
		if err := rcce.WaitAll(sends...); err != nil {
			return err
		}

		// Compute owned rows from the (now complete) local fragment.
		rows := parts[me]
		part := make([]float64, len(rows))
		for i, r := range rows {
			var t float64
			for p := a.Ptr[r]; p < a.Ptr[r+1]; p++ {
				t += a.Val[p] * local[a.Index[p]]
			}
			part[i] = t
		}

		// Gather at rank 0 (row lists are deterministic, so rank 0 can
		// scatter the blocks back into place).
		if me == 0 {
			for i, r := range rows {
				out.Y[r] = part[i]
			}
			for v := 1; v < ues; v++ {
				peer := parts[v]
				if len(peer) == 0 {
					continue
				}
				buf := make([]float64, len(peer))
				if err := u.RecvFloat64s(buf, v); err != nil {
					return err
				}
				for i, r := range peer {
					out.Y[r] = buf[i]
				}
			}
			out.Stats = u.Stats()
			return nil
		}
		if len(part) == 0 {
			return nil
		}
		return u.SendFloat64s(part, 0)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// float64sPayload and payloadFloat64s encode float64 slices as little-
// endian byte payloads for Isend/Recv.
func float64sPayload(vals []float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

func payloadFloat64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
