package spmv

import (
	"math"
	"testing"

	"repro/internal/sparse"
)

// unsymmetricSystem builds a well-conditioned unsymmetric test system with
// a known solution.
func unsymmetricSystem(n int, seed int64) (*sparse.CSR, []float64, []float64) {
	a := sparse.Generate(sparse.Gen{
		Name: "unsym", Class: sparse.PatternBanded, N: n, NNZTarget: 6 * n,
		Bandwidth: 10, Seed: seed,
	})
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(float64(i) * 0.2)
	}
	b := make([]float64, n)
	a.MulVec(b, want)
	return a, b, want
}

func TestBiCGSTABSolvesUnsymmetric(t *testing.T) {
	a, b, want := unsymmetricSystem(400, 11)
	res, err := BiCGSTAB(a, b, 1e-10, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: residual %v after %d iters", res.Residual, res.Iterations)
	}
	// Verify via the residual of the returned x (the solution itself may
	// differ from `want` if A is near-singular, so check A·x = b).
	ax := make([]float64, a.Rows)
	a.MulVec(ax, res.X)
	var num, den float64
	for i := range b {
		d := ax[i] - b[i]
		num += d * d
		den += b[i] * b[i]
	}
	if math.Sqrt(num/den) > 1e-8 {
		t.Fatalf("residual check failed: %v", math.Sqrt(num/den))
	}
	_ = want
}

func TestBiCGSTABSolvesSPDToo(t *testing.T) {
	a := sparse.Laplacian2D(12)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	res, err := BiCGSTAB(a, b, 1e-10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("BiCGSTAB failed on the Laplacian: %v", res.Residual)
	}
}

func TestBiCGSTABZeroRHS(t *testing.T) {
	a := sparse.Laplacian2D(4)
	res, err := BiCGSTAB(a, make([]float64, a.Rows), 1e-8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero RHS: %+v", res)
	}
}

func TestBiCGSTABValidation(t *testing.T) {
	a := sparse.Laplacian2D(4)
	b := make([]float64, a.Rows)
	if _, err := BiCGSTAB(a, b[:2], 1e-8, 10); err == nil {
		t.Error("short b accepted")
	}
	if _, err := BiCGSTAB(a, b, 0, 10); err == nil {
		t.Error("tol=0 accepted")
	}
	if _, err := BiCGSTAB(a, b, 1e-8, 0); err == nil {
		t.Error("maxIter=0 accepted")
	}
	rect := &sparse.CSR{Rows: 2, Cols: 3, Ptr: []int32{0, 0, 0}}
	if _, err := BiCGSTAB(rect, b[:2], 1e-8, 10); err == nil {
		t.Error("rectangular accepted")
	}
}

func TestPCGJacobiConvergesFasterOnScaledSystem(t *testing.T) {
	// Badly row-scaled SPD system: D*L*D with a wild diagonal D. Jacobi
	// preconditioning should cut the iteration count well below plain CG.
	lap := sparse.Laplacian2D(16)
	n := lap.Rows
	scaled := lap.Clone()
	d := make([]float64, n)
	for i := range d {
		d[i] = math.Pow(10, float64(i%5)-2) // 1e-2 .. 1e2
	}
	for i := 0; i < n; i++ {
		for k := scaled.Ptr[i]; k < scaled.Ptr[i+1]; k++ {
			scaled.Val[k] *= d[i] * d[scaled.Index[k]]
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = d[i] // keep the RHS scale compatible
	}
	plain, err := CG(scaled, b, 1e-9, 20000)
	if err != nil {
		t.Fatal(err)
	}
	pcg, err := PCGJacobi(scaled, b, 1e-9, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if !pcg.Converged {
		t.Fatalf("PCG did not converge: %v", pcg.Residual)
	}
	if plain.Converged && pcg.Iterations >= plain.Iterations {
		t.Fatalf("Jacobi PCG (%d iters) not faster than CG (%d) on a scaled system",
			pcg.Iterations, plain.Iterations)
	}
}

func TestPCGJacobiRejectsBadDiagonal(t *testing.T) {
	coo := sparse.NewCOO(2, 2, 2)
	coo.Append(0, 0, 1)
	coo.Append(1, 0, 1) // zero diagonal at (1,1)
	a := coo.ToCSR()
	b := []float64{1, 1}
	if _, err := PCGJacobi(a, b, 1e-8, 10); err == nil {
		t.Fatal("zero diagonal accepted")
	}
}

func TestPCGJacobiValidation(t *testing.T) {
	a := sparse.Laplacian2D(4)
	b := make([]float64, a.Rows)
	if _, err := PCGJacobi(a, b[:3], 1e-8, 10); err == nil {
		t.Error("short b accepted")
	}
	if _, err := PCGJacobi(a, b, -1, 10); err == nil {
		t.Error("negative tol accepted")
	}
	res, err := PCGJacobi(a, b, 1e-8, 10) // zero RHS fast path
	if err != nil || !res.Converged {
		t.Fatal("zero RHS should converge instantly")
	}
}

func TestMulMatMatchesRepeatedMulVec(t *testing.T) {
	a := sparse.Generate(sparse.Gen{Name: "m", Class: sparse.PatternRandom, N: 120, NNZTarget: 1400, Seed: 5})
	const k = 3
	x := make([]float64, k*a.Cols)
	for i := range x {
		x[i] = math.Cos(float64(i) * 0.3)
	}
	y := make([]float64, k*a.Rows)
	if err := MulMat(a, y, x, k); err != nil {
		t.Fatal(err)
	}
	single := make([]float64, a.Rows)
	for v := 0; v < k; v++ {
		a.MulVec(single, x[v*a.Cols:(v+1)*a.Cols])
		for i := range single {
			if math.Abs(y[v*a.Rows+i]-single[i]) > 1e-12*(1+math.Abs(single[i])) {
				t.Fatalf("vector %d row %d: %v != %v", v, i, y[v*a.Rows+i], single[i])
			}
		}
	}
}

func TestMulMatValidation(t *testing.T) {
	a := sparse.Identity(4)
	if err := MulMat(a, make([]float64, 4), make([]float64, 4), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if err := MulMat(a, make([]float64, 4), make([]float64, 7), 2); err == nil {
		t.Error("wrong x size accepted")
	}
	if err := MulMat(a, make([]float64, 7), make([]float64, 8), 2); err == nil {
		t.Error("wrong y size accepted")
	}
}
