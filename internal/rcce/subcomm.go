package rcce

import (
	"fmt"
	"sort"
	"sync"
)

// Subcommunicators in the style of RCCE_comm_split (itself modelled on
// MPI_Comm_split): UEs calling Split with the same color form a group; each
// gets a rank within the group ordered by key (ties broken by global rank).
// Collectives on a SubComm span only its members.

// SubComm is a group of UEs with local ranks.
type SubComm struct {
	u *UE
	// members maps local rank -> global rank, ascending local rank.
	members []int
	// local is this UE's rank within the group.
	local int
	// barrier synchronises only the group.
	barrier commBarrier
}

// splitState coordinates one collective Split call across all UEs.
type splitState struct {
	mu      sync.Mutex
	entries map[int][2]int // global rank -> (color, key)
	done    commBarrier
	groups  map[int][]int // color -> ordered global ranks
	bars    map[int]commBarrier
}

// Split partitions the program's UEs into subcommunicators. EVERY UE must
// call Split exactly once per `tag` (a caller-chosen label distinguishing
// independent splits); UEs passing the same color land in the same group,
// ordered by key then global rank. A negative color returns nil (the UE
// opts out), mirroring MPI_UNDEFINED.
func (u *UE) Split(tag string, color, key int) (*SubComm, error) {
	c := u.comm
	c.shmMu.Lock()
	if c.splits == nil {
		c.splits = map[string]*splitState{}
	}
	st, ok := c.splits[tag]
	if !ok {
		st = &splitState{
			entries: map[int][2]int{},
			done:    c.newBarrier(c.n),
		}
		c.splits[tag] = st
	}
	c.shmMu.Unlock()

	st.mu.Lock()
	if _, dup := st.entries[u.rank]; dup {
		st.mu.Unlock()
		return nil, fmt.Errorf("rcce: UE %d called Split(%q) twice", u.rank, tag)
	}
	st.entries[u.rank] = [2]int{color, key}
	st.mu.Unlock()

	// Wait for every UE to contribute, then (once) build the groups.
	err := st.done.wait(u, "split", func() {
		st.groups = map[int][]int{}
		st.bars = map[int]commBarrier{}
		for rank, ck := range st.entries {
			if ck[0] < 0 {
				continue
			}
			st.groups[ck[0]] = append(st.groups[ck[0]], rank)
		}
		for color, ranks := range st.groups {
			entries := st.entries
			sort.Slice(ranks, func(a, b int) bool {
				ka, kb := entries[ranks[a]][1], entries[ranks[b]][1]
				if ka != kb {
					return ka < kb
				}
				return ranks[a] < ranks[b]
			})
			st.bars[color] = c.newBarrier(len(ranks))
		}
	})
	if err != nil {
		return nil, err
	}

	color = st.entries[u.rank][0]
	if color < 0 {
		return nil, nil
	}
	ranks := st.groups[color]
	local := -1
	for i, r := range ranks {
		if r == u.rank {
			local = i
		}
	}
	return &SubComm{u: u, members: ranks, local: local, barrier: st.bars[color]}, nil
}

// Rank returns this UE's rank within the group.
func (s *SubComm) Rank() int { return s.local }

// Size returns the group size.
func (s *SubComm) Size() int { return len(s.members) }

// GlobalRank translates a group rank to the program-wide rank.
func (s *SubComm) GlobalRank(local int) int { return s.members[local] }

// Barrier blocks until every group member arrives. It returns non-nil only
// when the robustness layer aborts the program.
func (s *SubComm) Barrier() error { return s.u.barrierOn(s.barrier, "subcomm-barrier", nil) }

// Send transmits to a group rank.
func (s *SubComm) Send(data []byte, dstLocal int) error {
	if dstLocal < 0 || dstLocal >= len(s.members) {
		return fmt.Errorf("rcce: subcomm send to invalid rank %d", dstLocal)
	}
	return s.u.Send(data, s.members[dstLocal])
}

// Recv receives from a group rank.
func (s *SubComm) Recv(buf []byte, srcLocal int) error {
	if srcLocal < 0 || srcLocal >= len(s.members) {
		return fmt.Errorf("rcce: subcomm recv from invalid rank %d", srcLocal)
	}
	return s.u.Recv(buf, s.members[srcLocal])
}

// Allreduce combines vals elementwise across the group with op, leaving the
// result in out on every member (linear reduce at group rank 0 + fan-out).
func (s *SubComm) Allreduce(op ReduceOp, vals, out []float64) error {
	if len(out) != len(vals) {
		return fmt.Errorf("rcce: subcomm allreduce length mismatch")
	}
	if s.local == 0 {
		copy(out, vals)
		tmp := make([]float64, len(vals))
		for r := 1; r < len(s.members); r++ {
			if err := s.u.RecvFloat64s(tmp, s.members[r]); err != nil {
				return err
			}
			for i := range out {
				out[i] = op.apply(out[i], tmp[i])
			}
		}
		for r := 1; r < len(s.members); r++ {
			if err := s.u.SendFloat64s(out, s.members[r]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := s.u.SendFloat64s(vals, s.members[0]); err != nil {
		return err
	}
	return s.u.RecvFloat64s(out, s.members[0])
}
