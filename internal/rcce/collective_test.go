package rcce

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/scc"
)

func TestBcast(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5}
	run(t, 6, func(u *UE) error {
		buf := make([]byte, len(payload))
		if u.Rank() == 2 {
			copy(buf, payload)
		}
		if err := u.Bcast(buf, 2); err != nil {
			return err
		}
		for i := range payload {
			if buf[i] != payload[i] {
				return fmt.Errorf("rank %d: buf = %v", u.Rank(), buf)
			}
		}
		return nil
	})
}

func TestBcastSingleUE(t *testing.T) {
	run(t, 1, func(u *UE) error {
		return u.Bcast([]byte{9}, 0)
	})
}

func TestBcastInvalidRoot(t *testing.T) {
	run(t, 2, func(u *UE) error {
		if err := u.Bcast([]byte{1}, 7); err == nil {
			return errors.New("invalid root accepted")
		}
		return nil
	})
}

func TestReduceSum(t *testing.T) {
	const n = 7
	run(t, n, func(u *UE) error {
		vals := []float64{float64(u.Rank()), 1}
		var out []float64
		if u.Rank() == 0 {
			out = make([]float64, 2)
		}
		if err := u.Reduce(OpSum, vals, out, 0); err != nil {
			return err
		}
		if u.Rank() == 0 {
			wantSum := float64(n * (n - 1) / 2)
			if out[0] != wantSum || out[1] != n {
				return fmt.Errorf("reduce = %v, want [%v %v]", out, wantSum, float64(n))
			}
		}
		return nil
	})
}

func TestReduceMaxMin(t *testing.T) {
	run(t, 5, func(u *UE) error {
		vals := []float64{float64(u.Rank())}
		out := make([]float64, 1)
		if err := u.Allreduce(OpMax, vals, out); err != nil {
			return err
		}
		if out[0] != 4 {
			return fmt.Errorf("allreduce max = %v", out[0])
		}
		if err := u.Allreduce(OpMin, vals, out); err != nil {
			return err
		}
		if out[0] != 0 {
			return fmt.Errorf("allreduce min = %v", out[0])
		}
		return nil
	})
}

func TestAllreduceEveryoneGetsResult(t *testing.T) {
	const n = 9
	run(t, n, func(u *UE) error {
		vals := []float64{1}
		out := make([]float64, 1)
		if err := u.Allreduce(OpSum, vals, out); err != nil {
			return err
		}
		if out[0] != n {
			return fmt.Errorf("rank %d: allreduce sum = %v, want %d", u.Rank(), out[0], n)
		}
		return nil
	})
}

func TestAllreduceLengthMismatch(t *testing.T) {
	run(t, 1, func(u *UE) error {
		if err := u.Allreduce(OpSum, []float64{1, 2}, make([]float64, 1)); err == nil {
			return errors.New("length mismatch accepted")
		}
		return nil
	})
}

func TestGather(t *testing.T) {
	const n = 4
	run(t, n, func(u *UE) error {
		vals := []float64{float64(u.Rank()), float64(u.Rank() * 10)}
		var out []float64
		if u.Rank() == 1 {
			out = make([]float64, n*2)
		}
		if err := u.Gather(vals, out, 1); err != nil {
			return err
		}
		if u.Rank() == 1 {
			for r := 0; r < n; r++ {
				if out[2*r] != float64(r) || out[2*r+1] != float64(r*10) {
					return fmt.Errorf("gather = %v", out)
				}
			}
		}
		return nil
	})
}

func TestSendRecvFloat64s(t *testing.T) {
	vals := []float64{math.Pi, -1.5, 0, math.Inf(1)}
	run(t, 2, func(u *UE) error {
		if u.Rank() == 0 {
			return u.SendFloat64s(vals, 1)
		}
		out := make([]float64, len(vals))
		if err := u.RecvFloat64s(out, 0); err != nil {
			return err
		}
		for i := range vals {
			if out[i] != vals[i] {
				return fmt.Errorf("out = %v", out)
			}
		}
		return nil
	})
}

func TestReduceOpPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown op did not panic")
		}
	}()
	ReduceOp(99).apply(1, 2)
}

func TestShmallocShared(t *testing.T) {
	run(t, 4, func(u *UE) error {
		s, err := u.Shmalloc("x", 4)
		if err != nil {
			return err
		}
		s[u.Rank()] = float64(u.Rank() + 1)
		u.Barrier()
		for i := 0; i < 4; i++ {
			if s[i] != float64(i+1) {
				return fmt.Errorf("rank %d sees shm %v", u.Rank(), s)
			}
		}
		u.Barrier()
		// Size conflict must error.
		if _, err := u.Shmalloc("x", 8); err == nil {
			return errors.New("conflicting shmalloc accepted")
		}
		if _, err := u.Shmalloc("neg", -1); err == nil {
			return errors.New("negative shmalloc accepted")
		}
		return nil
	})
}

func TestShmFree(t *testing.T) {
	run(t, 1, func(u *UE) error {
		if _, err := u.Shmalloc("tmp", 2); err != nil {
			return err
		}
		u.ShmFree("tmp")
		// After free, a different size is fine.
		if _, err := u.Shmalloc("tmp", 8); err != nil {
			return err
		}
		return nil
	})
}

func TestPowerAPI(t *testing.T) {
	// Ranks on different tiles (cores 0 and 46) so the clock change by
	// rank 0 must not leak into rank 1's tile.
	err := Run(2, scc.Mapping{0, 46}, scc.Uniform(scc.Conf0), func(u *UE) error {
		if u.TileMHz() != 533 {
			return fmt.Errorf("initial tile clock %d", u.TileMHz())
		}
		before := u.SystemPower()
		u.Barrier() // everyone has read the initial state
		if u.Rank() == 0 {
			if err := u.SetTileMHz(800); err != nil {
				return err
			}
			if u.TileMHz() != 800 {
				return errors.New("tile clock not applied")
			}
			after := u.SystemPower()
			if after <= before {
				return errors.New("raising tile clock did not raise power")
			}
			if err := u.SetTileMHz(99); err == nil {
				return errors.New("99 MHz accepted")
			}
		}
		u.Barrier() // rank 0's change is visible chip-wide
		if u.Rank() == 1 {
			if u.TileMHz() != 533 {
				return errors.New("rank 0's tile change leaked into another tile")
			}
			if u.Domains().TileMHz[0] != 800 {
				return errors.New("rank 1 cannot see rank 0's tile change")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRCCEParallelSpMV runs the paper's actual communication pattern: x in
// shared memory, row-partitioned SpMV, gather of y at rank 0 - verifying
// the runtime supports the kernel end to end.
func TestRCCEParallelSpMV(t *testing.T) {
	const n, ues = 64, 4
	// A small deterministic matrix (dense rows to keep it simple).
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = float64((i*j)%7) - 3
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%5) + 0.5
	}
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want[i] += a[i][j] * x[j]
		}
	}

	got := make([]float64, n)
	err := Run(ues, nil, scc.Uniform(scc.Conf0), func(u *UE) error {
		shx, err := u.Shmalloc("x", n)
		if err != nil {
			return err
		}
		if u.Rank() == 0 {
			copy(shx, x)
		}
		u.Barrier()
		lo := u.Rank() * n / ues
		hi := (u.Rank() + 1) * n / ues
		part := make([]float64, hi-lo)
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				part[i-lo] += a[i][j] * shx[j]
			}
		}
		if u.Rank() == 0 {
			copy(got[lo:hi], part)
			tmp := make([]float64, n/ues)
			for r := 1; r < ues; r++ {
				if err := u.RecvFloat64s(tmp, r); err != nil {
					return err
				}
				copy(got[r*n/ues:], tmp)
			}
			return nil
		}
		return u.SendFloat64s(part, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScatter(t *testing.T) {
	const n = 4
	run(t, n, func(u *UE) error {
		var vals []float64
		if u.Rank() == 1 {
			vals = make([]float64, 2*n)
			for i := range vals {
				vals[i] = float64(i)
			}
		}
		out := make([]float64, 2)
		if err := u.Scatter(vals, out, 1); err != nil {
			return err
		}
		if out[0] != float64(2*u.Rank()) || out[1] != float64(2*u.Rank()+1) {
			return fmt.Errorf("rank %d scatter = %v", u.Rank(), out)
		}
		return nil
	})
}

func TestScatterValidation(t *testing.T) {
	run(t, 2, func(u *UE) error {
		if u.Rank() != 0 {
			// Pair the root's doomed validation calls: nothing sent.
			return nil
		}
		if err := u.Scatter(nil, make([]float64, 1), 9); err == nil {
			return errors.New("invalid root accepted")
		}
		if err := u.Scatter(make([]float64, 3), make([]float64, 2), 0); err == nil {
			return errors.New("length mismatch accepted")
		}
		return nil
	})
}
