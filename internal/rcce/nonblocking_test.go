package rcce

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestIsendIrecvRoundTrip(t *testing.T) {
	payload := []byte("async hello")
	run(t, 2, func(u *UE) error {
		if u.Rank() == 0 {
			req := u.Isend(payload, 1)
			return req.Wait()
		}
		buf := make([]byte, len(payload))
		req := u.Irecv(buf, 0)
		if err := req.Wait(); err != nil {
			return err
		}
		if !bytes.Equal(buf, payload) {
			return fmt.Errorf("got %q", buf)
		}
		return nil
	})
}

func TestIsendCopiesData(t *testing.T) {
	run(t, 2, func(u *UE) error {
		if u.Rank() == 0 {
			data := []byte{1, 2, 3}
			req := u.Isend(data, 1)
			data[0] = 99 // must not affect the in-flight payload
			return req.Wait()
		}
		buf := make([]byte, 3)
		if err := u.Recv(buf, 0); err != nil {
			return err
		}
		if buf[0] != 1 {
			return errors.New("isend did not snapshot the payload")
		}
		return nil
	})
}

func TestIsendInvalidDestination(t *testing.T) {
	run(t, 2, func(u *UE) error {
		if u.Rank() != 0 {
			return nil
		}
		if err := u.Isend([]byte{1}, 9).Wait(); err == nil {
			return errors.New("isend to rank 9 accepted")
		}
		if err := u.Isend([]byte{1}, 0).Wait(); err == nil {
			return errors.New("isend to self accepted")
		}
		if err := u.Irecv(make([]byte, 1), -1).Wait(); err == nil {
			return errors.New("irecv from -1 accepted")
		}
		if err := u.Irecv(make([]byte, 1), 0).Wait(); err == nil {
			return errors.New("irecv from self accepted")
		}
		return nil
	})
}

func TestRequestTest(t *testing.T) {
	run(t, 2, func(u *UE) error {
		if u.Rank() == 0 {
			// No receiver yet: the request must report not-done.
			req := u.Isend(make([]byte, 8), 1)
			if done, _ := req.Test(); done {
				// It could race to done only after the receiver posts;
				// the receiver waits for our barrier below, so done here
				// is a genuine bug.
				return errors.New("isend completed with no receiver")
			}
			u.Barrier()
			return req.Wait()
		}
		u.Barrier() // now post the receive
		buf := make([]byte, 8)
		if err := u.Recv(buf, 0); err != nil {
			return err
		}
		return nil
	})
}

func TestWaitAll(t *testing.T) {
	run(t, 3, func(u *UE) error {
		switch u.Rank() {
		case 0:
			a := u.Isend([]byte{1}, 1)
			b := u.Isend([]byte{2}, 2)
			return WaitAll(a, b)
		default:
			buf := make([]byte, 1)
			if err := u.Recv(buf, 0); err != nil {
				return err
			}
			if buf[0] != byte(u.Rank()) {
				return fmt.Errorf("rank %d received %d", u.Rank(), buf[0])
			}
			return nil
		}
	})
}

func TestWaitAllPropagatesError(t *testing.T) {
	run(t, 2, func(u *UE) error {
		if u.Rank() != 0 {
			return nil
		}
		bad := u.Isend([]byte{1}, 7)
		if err := WaitAll(bad); err == nil {
			return errors.New("WaitAll swallowed the error")
		}
		return nil
	})
}

func TestSendRecvExchangeNoDeadlock(t *testing.T) {
	// Every rank exchanges with a partner simultaneously - a blocking
	// Send/Send would deadlock; SendRecv must not.
	const n = 8
	run(t, n, func(u *UE) error {
		partner := u.Rank() ^ 1 // pairs (0,1), (2,3), ...
		out := []byte{byte(u.Rank())}
		in := make([]byte, 1)
		if err := u.SendRecv(out, in, partner); err != nil {
			return err
		}
		if in[0] != byte(partner) {
			return fmt.Errorf("rank %d got %d from partner %d", u.Rank(), in[0], partner)
		}
		return nil
	})
}

func TestSendRecvRing(t *testing.T) {
	// A full ring shift: rank r sends to r+1 and receives from r-1.
	// With symmetric blocking sends this deadlocks; Isend breaks it.
	const n = 6
	run(t, n, func(u *UE) error {
		next := (u.Rank() + 1) % n
		prev := (u.Rank() + n - 1) % n
		s := u.Isend([]byte{byte(u.Rank())}, next)
		in := make([]byte, 1)
		if err := u.Recv(in, prev); err != nil {
			return err
		}
		if err := s.Wait(); err != nil {
			return err
		}
		if in[0] != byte(prev) {
			return fmt.Errorf("rank %d got %d, want %d", u.Rank(), in[0], prev)
		}
		return nil
	})
}

func TestRequestDoubleWaitIsSafe(t *testing.T) {
	run(t, 2, func(u *UE) error {
		if u.Rank() == 0 {
			req := u.Isend([]byte{5}, 1)
			if err := req.Wait(); err != nil {
				return err
			}
			return req.Wait() // second wait returns the same result
		}
		return u.Recv(make([]byte, 1), 0)
	})
}
