package rcce

import (
	"fmt"
	"time"
)

// Backend selects the concurrency engine behind a Comm.
type Backend int

const (
	// BackendGoroutine is the default engine and the semantic oracle:
	// one live goroutine per UE, unbuffered channels for the synchronous
	// rendezvous, a wall-clock watchdog. Misordered programs really
	// deadlock, the race detector sees every interleaving, and Wtime is
	// wall time.
	BackendGoroutine Backend = iota
	// BackendDES is the discrete-event engine: a single-threaded
	// virtual-time scheduler that runs exactly one UE at a time and
	// advances a virtual clock instead of sleeping. It produces
	// bit-identical results to the goroutine backend (pinned by tests),
	// detects deadlocks exactly instead of by timeout, and simulates
	// thousands of UEs at full host speed because injected delays cost
	// nothing in wall time.
	BackendDES
)

// String renders the backend in the form ParseBackend accepts.
func (b Backend) String() string {
	switch b {
	case BackendGoroutine:
		return "goroutine"
	case BackendDES:
		return "des"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// ParseBackend parses a -engine flag value. The empty string means the
// default goroutine backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "goroutine":
		return BackendGoroutine, nil
	case "des":
		return BackendDES, nil
	default:
		return 0, fmt.Errorf("rcce: unknown engine %q (want goroutine or des)", s)
	}
}

// engine is the concurrency substrate behind a Comm: how UEs run, how a
// rendezvous blocks and wakes, what the clock reads, and how a wedged
// program is converted into a DeadlockError. Comm and the public API
// above it (Send/Recv/collectives/subcomms/Shmalloc) are engine-free;
// everything that blocks goes through these hooks.
type engine interface {
	// run launches one task per rank executing body and joins them all,
	// combining their errors like errors.Join.
	run(body func(*UE) error) error
	// newBarrier returns a counting barrier for n participants wired to
	// this engine's blocking and abort machinery.
	newBarrier(n int) commBarrier
	// sendChunk and recvChunk perform one synchronous rendezvous on the
	// ordered pair: a send blocks until the matching receive takes the
	// chunk, and vice versa.
	sendChunk(u *UE, dst int, chunk []byte) error
	recvChunk(u *UE, src int) ([]byte, error)
	// delay blocks u for d (an injected message latency) as a
	// watchdog-visible "delay" op: the deadline applies to it and an
	// abort interrupts it, exactly like a rendezvous.
	delay(u *UE, peer int, d time.Duration) error
	// park blocks u indefinitely (an injected wedge); only a watchdog
	// abort releases it.
	park(u *UE, op string, peer int) error
	// wtime is the engine's clock reading in seconds since the program
	// started: monotonic-safe wall time for the goroutine backend,
	// virtual time for DES.
	wtime() float64
	// isend and irecv start the asynchronous transfers behind iRCCE
	// Requests; buf ownership follows Isend/Irecv's documented rules.
	isend(u *UE, buf []byte, dst int) *Request
	irecv(u *UE, buf []byte, src int) *Request
}

// commBarrier is a reusable counting barrier owned by an engine. A
// poisoned barrier (watchdog fired) stops admitting waiters and wakes
// the blocked ones with the poison error; a phase that completed
// normally before the poison landed still reports success.
type commBarrier interface {
	// wait blocks u until all participants arrive or the program aborts.
	// The last arrival runs onRelease (may be nil) before waking the
	// others, so side effects ordered by the barrier are visible to
	// every participant on exit. op names the wait in deadlock reports.
	wait(u *UE, op string, onRelease func()) error
	// poisonWith aborts the barrier for current and future waiters; the
	// first poison wins.
	poisonWith(err error)
}
