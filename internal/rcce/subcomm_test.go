package rcce

import (
	"errors"
	"fmt"
	"testing"
)

func TestSplitByParity(t *testing.T) {
	const n = 8
	run(t, n, func(u *UE) error {
		sc, err := u.Split("parity", u.Rank()%2, u.Rank())
		if err != nil {
			return err
		}
		if sc == nil {
			return errors.New("nil subcomm for non-negative color")
		}
		if sc.Size() != n/2 {
			return fmt.Errorf("group size %d", sc.Size())
		}
		// Local ranks ordered by key = global rank.
		if sc.GlobalRank(sc.Rank()) != u.Rank() {
			return fmt.Errorf("rank mapping broken: local %d -> global %d, me %d",
				sc.Rank(), sc.GlobalRank(sc.Rank()), u.Rank())
		}
		// Group-local allreduce: sum of members' global ranks.
		out := make([]float64, 1)
		if err := sc.Allreduce(OpSum, []float64{float64(u.Rank())}, out); err != nil {
			return err
		}
		want := 0.0
		for r := u.Rank() % 2; r < n; r += 2 {
			want += float64(r)
		}
		if out[0] != want {
			return fmt.Errorf("group sum = %v, want %v", out[0], want)
		}
		sc.Barrier()
		return nil
	})
}

func TestSplitKeyOrdersRanks(t *testing.T) {
	const n = 4
	run(t, n, func(u *UE) error {
		// Reverse key order: highest global rank becomes local rank 0.
		sc, err := u.Split("rev", 0, -u.Rank())
		if err != nil {
			return err
		}
		if sc.GlobalRank(0) != n-1 {
			return fmt.Errorf("local 0 = global %d, want %d", sc.GlobalRank(0), n-1)
		}
		if sc.Rank() != n-1-u.Rank() {
			return fmt.Errorf("rank %d local %d", u.Rank(), sc.Rank())
		}
		return nil
	})
}

func TestSplitOptOut(t *testing.T) {
	const n = 6
	run(t, n, func(u *UE) error {
		color := 0
		if u.Rank() >= 4 {
			color = -1 // opt out
		}
		sc, err := u.Split("optout", color, 0)
		if err != nil {
			return err
		}
		if u.Rank() >= 4 {
			if sc != nil {
				return errors.New("opted-out UE received a subcomm")
			}
			return nil
		}
		if sc.Size() != 4 {
			return fmt.Errorf("group size %d, want 4", sc.Size())
		}
		sc.Barrier() // only the 4 members participate
		return nil
	})
}

func TestSubCommSendRecv(t *testing.T) {
	run(t, 4, func(u *UE) error {
		sc, err := u.Split("p2p", u.Rank()/2, u.Rank())
		if err != nil {
			return err
		}
		// Each pair: local 0 sends to local 1.
		if sc.Rank() == 0 {
			return sc.Send([]byte{byte(u.Rank())}, 1)
		}
		buf := make([]byte, 1)
		if err := sc.Recv(buf, 0); err != nil {
			return err
		}
		if int(buf[0]) != sc.GlobalRank(0) {
			return fmt.Errorf("got %d from local 0 (global %d)", buf[0], sc.GlobalRank(0))
		}
		return nil
	})
}

func TestSubCommValidation(t *testing.T) {
	run(t, 2, func(u *UE) error {
		sc, err := u.Split("v", 0, 0)
		if err != nil {
			return err
		}
		if err := sc.Send([]byte{1}, 5); err == nil {
			return errors.New("send to invalid local rank accepted")
		}
		if err := sc.Recv(make([]byte, 1), -1); err == nil {
			return errors.New("recv from invalid local rank accepted")
		}
		if err := sc.Allreduce(OpSum, []float64{1}, make([]float64, 2)); err == nil {
			return errors.New("length mismatch accepted")
		}
		// Double split on the same tag is an error.
		if _, err := u.Split("v", 0, 0); err == nil {
			return errors.New("second Split on the same tag accepted")
		}
		return nil
	})
}

func TestSplitIndependentTags(t *testing.T) {
	run(t, 4, func(u *UE) error {
		rows, err := u.Split("rows", u.Rank()/2, 0)
		if err != nil {
			return err
		}
		cols, err := u.Split("cols", u.Rank()%2, 0)
		if err != nil {
			return err
		}
		if rows.Size() != 2 || cols.Size() != 2 {
			return fmt.Errorf("sizes %d/%d", rows.Size(), cols.Size())
		}
		// 2D reduction: sum over row group then over column group
		// yields the global sum - the classic grid pattern.
		rowSum := make([]float64, 1)
		if err := rows.Allreduce(OpSum, []float64{float64(u.Rank())}, rowSum); err != nil {
			return err
		}
		total := make([]float64, 1)
		if err := cols.Allreduce(OpSum, rowSum, total); err != nil {
			return err
		}
		if total[0] != 6 { // 0+1+2+3
			return fmt.Errorf("2D reduction = %v, want 6", total[0])
		}
		return nil
	})
}
