// Package rcce is a functional workalike of Intel's RCCE ("rocky") light-
// weight message-passing library for the SCC, built on goroutines. It
// reproduces the programming model the paper's SpMV uses: a fixed set of
// units of execution (UEs) addressed by rank, mapped onto physical cores by
// a configurable mapping, synchronous point-to-point messages that move
// through an 8 KB-per-core message passing buffer in line-sized chunks,
// barriers, simple collectives, shared-memory allocation and the wall-clock
// and power-management entry points.
//
// The package is *functionally* real - messages actually move between
// goroutines and a misordered program really deadlocks - while performance
// figures come from the separate timing simulator in internal/sim.
//
// Robustness: RunWith arms a per-operation deadline watchdog that converts
// a wedged program into a structured DeadlockError naming the blocked
// ranks and operations, and accepts a fault.Plan that deterministically
// wedges or fails a rank mid-iteration and drops or delays individual
// messages (the chaos-test harness). Run, without options, keeps RCCE's
// original block-forever semantics.
package rcce

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/scc"
)

// ChunkBytes is the unit in which point-to-point payloads move through the
// message passing buffer: one UE's MPB share.
const ChunkBytes = scc.MPBBytesPerCore

// Options configures a Run beyond the paper's defaults.
type Options struct {
	// Deadline bounds every blocking communication rendezvous (send and
	// receive chunks, barriers, the collectives built on them). When any
	// single rendezvous stays blocked past the deadline, a watchdog
	// aborts the whole program with a DeadlockError naming the blocked
	// ranks and ops. 0 keeps RCCE's block-forever semantics.
	Deadline time.Duration
	// Fault is the deterministic fault-injection plan consulted at every
	// communication operation (nil injects nothing). A wedged rank only
	// terminates if Deadline is also set - exactly like real hung
	// hardware under a watchdog.
	Fault *fault.Plan
	// Recorder receives flight-recorder events (injected wedges/fails,
	// dropped messages, watchdog ticks, the deadlock verdict) on track
	// "rcce". Nil records nothing; the recorder is write-only, so arming
	// it cannot change what the program computes.
	Recorder *obs.Recorder
}

// Comm is one parallel program instance: the state shared by its UEs.
//
// Concurrency audit (sccvet atomic-consistency pass): n, mapping, deadline,
// plan, watch and started are written once before Run launches the UE
// goroutines and are read-only afterwards (the go statement is the
// happens-before edge); the channel table and per-pair message counters are
// guarded by chansMu, the shared-memory and split tables by shmMu, the
// barrier registry by barMu, the mutable frequency-domain record by domMu,
// and the traffic/op counters are typed atomics, which the analyzer prefers
// because a plain access to them cannot compile.
type Comm struct {
	n       int
	mapping scc.Mapping

	// deadline/plan/watch/rec are the robustness layer: per-op deadline,
	// fault-injection plan, the watchdog converting wedges into
	// DeadlockErrors, and the flight recorder events land on (all nil
	// when unarmed; rec is written once before the UEs launch).
	deadline time.Duration
	plan     *fault.Plan
	watch    *watchdog
	rec      *obs.Recorder

	// domains is the mutable per-tile clock record behind SetTileMHz /
	// TileMHz / Domains; domMu guards it (it previously borrowed
	// chansMu, which coupled power management to the channel table).
	domains scc.FreqDomains
	domMu   sync.Mutex

	chans map[pairKey]chan []byte
	// msgSeq counts Send calls per (src, dst) pair - the sequence
	// numbers fault.Plan message matches use.
	msgSeq  map[pairKey]int
	chansMu sync.Mutex

	barrier *barrier
	// barriers registers every barrier of the program (the global one,
	// split-coordination barriers, subcomm barriers) so the watchdog can
	// poison them all when it fires; barMu guards the slice.
	barMu    sync.Mutex
	barriers []*barrier

	shmMu   sync.Mutex
	shm     map[string][]float64
	splits  map[string]*splitState
	started time.Time

	// opSeq counts each rank's communication operations (sends,
	// receives, barriers), the per-rank program order fault.Plan rank
	// faults key on.
	opSeq []atomic.Int64

	// statistics
	msgs  atomic.Uint64
	bytes atomic.Uint64
	bars  atomic.Uint64
}

type pairKey struct{ src, dst int }

// UE is the handle each unit of execution receives; it is only valid inside
// the body function passed to Run.
type UE struct {
	comm *Comm
	rank int
}

// Run starts n units of execution mapped onto cores by mapping (nil means
// the RCCE default, rank r on core r) and runs body concurrently in each.
// It returns after every UE finishes, joining any errors. The domains
// argument fixes the chip clocks the power API reports and manipulates.
func Run(n int, mapping scc.Mapping, domains scc.FreqDomains, body func(*UE) error) error {
	return RunWith(Options{}, n, mapping, domains, body)
}

// RunWith is Run with a deadline watchdog and/or fault-injection plan
// armed (see Options). With a zero Options it is exactly Run.
func RunWith(opts Options, n int, mapping scc.Mapping, domains scc.FreqDomains, body func(*UE) error) error {
	if n <= 0 || n > scc.NumCores {
		return fmt.Errorf("rcce: cannot run %d UEs on %d cores", n, scc.NumCores)
	}
	if mapping == nil {
		mapping = scc.StandardMapping(n)
	}
	if len(mapping) != n {
		return fmt.Errorf("rcce: mapping size %d != %d UEs", len(mapping), n)
	}
	if err := mapping.Validate(); err != nil {
		return err
	}
	if opts.Deadline < 0 {
		return fmt.Errorf("rcce: negative deadline %v", opts.Deadline)
	}
	c := &Comm{
		n:        n,
		mapping:  mapping,
		deadline: opts.Deadline,
		plan:     opts.Fault,
		rec:      opts.Recorder,
		domains:  domains,
		chans:    make(map[pairKey]chan []byte),
		msgSeq:   make(map[pairKey]int),
		shm:      make(map[string][]float64),
		opSeq:    make([]atomic.Int64, n),
		started:  time.Now(),
	}
	c.barrier = c.newBarrier(n)
	if opts.Deadline > 0 {
		c.watch = newWatchdog(c, opts.Deadline)
		// The watchdog is a supervisor, not a worker: it must keep
		// scanning while every UE goroutine is blocked, which is exactly
		// the situation a pool-dispatched task could not observe.
		go c.watch.run() //sccvet:allow bare-goroutine deadline watchdog must run outside the pool it supervises; it only reads the blocked-op table and never touches results
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		// UEs *are* the simulated cores of the RCCE thread model: their
		// concurrency is the semantics under test, not host fan-out.
		go func(rank int) { //sccvet:allow bare-goroutine UEs are the RCCE thread model itself, not host work distribution; Run joins them all before returning
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("rcce: UE %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = body(&UE{comm: c, rank: rank})
		}(r)
	}
	wg.Wait()
	if c.watch != nil {
		c.watch.halt()
	}
	return errors.Join(errs...)
}

// newBarrier creates a barrier registered for watchdog poisoning.
func (c *Comm) newBarrier(n int) *barrier {
	b := newBarrier(n)
	c.barMu.Lock()
	c.barriers = append(c.barriers, b)
	c.barMu.Unlock()
	return b
}

// poisonBarriers aborts every registered barrier with err (watchdog fire).
func (c *Comm) poisonBarriers(err error) {
	c.barMu.Lock()
	bars := append([]*barrier(nil), c.barriers...)
	c.barMu.Unlock()
	for _, b := range bars {
		b.poisonWith(err)
	}
}

// Rank returns the UE's rank (0..NumUEs-1).
func (u *UE) Rank() int { return u.rank }

// NumUEs returns the number of units of execution in the program.
func (u *UE) NumUEs() int { return u.comm.n }

// Core returns the physical core this rank is mapped to.
func (u *UE) Core() scc.CoreID { return u.comm.mapping[u.rank] }

// Hops returns this UE's core-to-memory-controller distance.
func (u *UE) Hops() int { return scc.HopsToMC(u.Core()) }

// Wtime returns elapsed wall-clock seconds since the program started,
// mirroring RCCE_wtime(), which the paper uses because the SCC cores lack a
// frequency-invariant clock.
func (u *UE) Wtime() float64 { return time.Since(u.comm.started).Seconds() }

// preOp counts this rank's communication operation and applies any
// injected rank fault: ActFail returns ErrInjected-wrapped failure,
// ActWedge parks the rank until the watchdog aborts the program (forever
// when no deadline is armed, like real hung hardware).
func (u *UE) preOp(op string, peer int) error {
	c := u.comm
	seq := int(c.opSeq[u.rank].Add(1)) - 1
	switch c.plan.OnRankOp(u.rank, seq) {
	case fault.ActFail:
		c.rec.Recordf(rcceTrack, "fault_fail", "injected fail",
			"rank %d failed at %s op %d", u.rank, op, seq)
		return fmt.Errorf("rcce: UE %d %s op %d: %w", u.rank, op, seq, fault.ErrInjected)
	case fault.ActWedge:
		c.rec.Recordf(rcceTrack, "fault_wedge", "injected wedge",
			"rank %d wedged at %s op %d", u.rank, op, seq)
		return c.park(u.rank, "wedged:"+op, peer)
	}
	return nil
}

// rcceTrack is the flight-recorder timeline row for runtime events.
const rcceTrack = "rcce"

// park blocks the rank as a wedged op. With a watchdog it returns the
// DeadlockError once the deadline fires; without one it blocks forever.
func (c *Comm) park(rank int, op string, peer int) error {
	if c.watch == nil {
		select {} // wedged with no watchdog: hung hardware, hung program
	}
	c.watch.enter(rank, op, peer)
	defer c.watch.leave(rank)
	<-c.watch.aborted
	return c.watch.err()
}

// channel returns the rendezvous channel for the ordered pair (src, dst).
// Channels are unbuffered: a send blocks until the receiver arrives, which
// is RCCE's synchronous point-to-point semantics.
func (c *Comm) channel(src, dst int) chan []byte {
	c.chansMu.Lock()
	defer c.chansMu.Unlock()
	return c.channelLocked(src, dst)
}

func (c *Comm) channelLocked(src, dst int) chan []byte {
	k := pairKey{src, dst}
	ch, ok := c.chans[k]
	if !ok {
		ch = make(chan []byte)
		c.chans[k] = ch
	}
	return ch
}

// sendChannel returns the pair channel plus this Send's per-pair sequence
// number (the identity fault.Plan message matches use).
func (c *Comm) sendChannel(src, dst int) (chan []byte, int) {
	c.chansMu.Lock()
	defer c.chansMu.Unlock()
	k := pairKey{src, dst}
	seq := c.msgSeq[k]
	c.msgSeq[k] = seq + 1
	return c.channelLocked(src, dst), seq
}

// sendChunk moves one chunk through the pair channel, honouring the
// watchdog deadline when one is armed.
func (u *UE) sendChunk(ch chan []byte, chunk []byte, dst int) error {
	w := u.comm.watch
	if w == nil {
		ch <- chunk
		return nil
	}
	w.enter(u.rank, "send", dst)
	defer w.leave(u.rank)
	select {
	case ch <- chunk:
		return nil
	case <-w.aborted:
		return w.err()
	}
}

// recvChunk receives one chunk from the pair channel, honouring the
// watchdog deadline when one is armed.
func (u *UE) recvChunk(ch chan []byte, src int) ([]byte, error) {
	w := u.comm.watch
	if w == nil {
		return <-ch, nil
	}
	w.enter(u.rank, "recv", src)
	defer w.leave(u.rank)
	select {
	case chunk := <-ch:
		return chunk, nil
	case <-w.aborted:
		return nil, w.err()
	}
}

// Send transmits data to the UE with the given rank, blocking until the
// receiver has accepted all of it. Payloads move in ChunkBytes pieces, as
// through the MPB. Sending to oneself or to an invalid rank is an error.
func (u *UE) Send(data []byte, dst int) error {
	if dst < 0 || dst >= u.comm.n {
		return fmt.Errorf("rcce: send to invalid rank %d (have %d UEs)", dst, u.comm.n)
	}
	if dst == u.rank {
		return fmt.Errorf("rcce: UE %d sending to itself", u.rank)
	}
	if err := u.preOp("send", dst); err != nil {
		return err
	}
	ch, seq := u.comm.sendChannel(u.rank, dst)
	if drop, delay := u.comm.plan.OnMessage(u.rank, dst, seq); drop {
		// The message vanishes after the send "completes": the receiver
		// stays blocked, which the watchdog converts into a structured
		// DeadlockError naming it.
		u.comm.rec.Recordf(rcceTrack, "fault_drop", "dropped message",
			"message %d->%d seq %d dropped", u.rank, dst, seq)
		u.comm.msgs.Add(1)
		return nil
	} else if delay > 0 {
		time.Sleep(delay)
	}
	// An empty message still performs one rendezvous.
	if len(data) == 0 {
		if err := u.sendChunk(ch, nil, dst); err != nil {
			return err
		}
		u.comm.msgs.Add(1)
		return nil
	}
	for off := 0; off < len(data); off += ChunkBytes {
		end := off + ChunkBytes
		if end > len(data) {
			end = len(data)
		}
		chunk := make([]byte, end-off)
		copy(chunk, data[off:end])
		if err := u.sendChunk(ch, chunk, dst); err != nil {
			return err
		}
	}
	u.comm.msgs.Add(1)
	u.comm.bytes.Add(uint64(len(data)))
	return nil
}

// Recv receives exactly len(buf) bytes from rank src, blocking until the
// matching Send completes. The sizes on both sides must agree, as in RCCE.
func (u *UE) Recv(buf []byte, src int) error {
	if src < 0 || src >= u.comm.n {
		return fmt.Errorf("rcce: recv from invalid rank %d (have %d UEs)", src, u.comm.n)
	}
	if src == u.rank {
		return fmt.Errorf("rcce: UE %d receiving from itself", u.rank)
	}
	if err := u.preOp("recv", src); err != nil {
		return err
	}
	ch := u.comm.channel(src, u.rank)
	if len(buf) == 0 {
		_, err := u.recvChunk(ch, src)
		return err
	}
	off := 0
	for off < len(buf) {
		chunk, err := u.recvChunk(ch, src)
		if err != nil {
			return err
		}
		if len(chunk) > len(buf)-off {
			return fmt.Errorf("rcce: UE %d received %d-byte chunk into %d-byte window: size mismatch with sender %d",
				u.rank, len(chunk), len(buf)-off, src)
		}
		copy(buf[off:], chunk)
		off += len(chunk)
	}
	return nil
}

// Stats reports the communication volume of the program so far.
type Stats struct {
	Messages, Bytes, Barriers uint64
}

// Stats returns a snapshot of the program's communication counters.
func (u *UE) Stats() Stats {
	return Stats{
		Messages: u.comm.msgs.Load(),
		Bytes:    u.comm.bytes.Load(),
		Barriers: u.comm.bars.Load(),
	}
}
