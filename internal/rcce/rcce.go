// Package rcce is a functional workalike of Intel's RCCE ("rocky") light-
// weight message-passing library for the SCC. It reproduces the
// programming model the paper's SpMV uses: a fixed set of units of
// execution (UEs) addressed by rank, mapped onto physical cores by a
// configurable mapping, synchronous point-to-point messages that move
// through an 8 KB-per-core message passing buffer in line-sized chunks,
// barriers, simple collectives, shared-memory allocation and the wall-clock
// and power-management entry points.
//
// The package is *functionally* real - messages actually move between
// tasks and a misordered program really deadlocks - while performance
// figures come from the separate timing simulator in internal/sim.
//
// Two engines implement the runtime behind a common seam (Options.Backend):
// the default goroutine backend (one live goroutine per UE, unbuffered
// channels, a wall-clock watchdog - the semantic oracle), and a
// discrete-event backend (BackendDES) that schedules every UE on one host
// thread in virtual time, unlocking deterministic runs, exact deadlock
// detection, free injected latencies and mesh sizes far beyond the real
// chip's 48 cores (Options.Geometry).
//
// Robustness: RunWith arms a per-operation deadline watchdog that converts
// a wedged program into a structured DeadlockError naming the blocked
// ranks and operations, and accepts a fault.Plan that deterministically
// wedges or fails a rank mid-iteration and drops or delays individual
// messages (the chaos-test harness). Run, without options, keeps RCCE's
// original block-forever semantics.
package rcce

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/scc"
)

// ChunkBytes is the unit in which point-to-point payloads move through the
// message passing buffer: one UE's MPB share.
const ChunkBytes = scc.MPBBytesPerCore

// Options configures a Run beyond the paper's defaults.
type Options struct {
	// Deadline bounds every blocking communication rendezvous (send and
	// receive chunks, barriers, the collectives built on them, injected
	// delays). When any single rendezvous stays blocked past the
	// deadline, a watchdog aborts the whole program with a DeadlockError
	// naming the blocked ranks and ops. 0 keeps RCCE's block-forever
	// semantics on the goroutine backend; the DES backend additionally
	// reports genuine deadlocks exactly even without a deadline, because
	// its event model proves when no progress is possible.
	Deadline time.Duration
	// Fault is the deterministic fault-injection plan consulted at every
	// communication operation (nil injects nothing). A wedged rank only
	// terminates if Deadline is also set - exactly like real hung
	// hardware under a watchdog (goroutine backend; DES reports it at
	// quiescence regardless).
	Fault *fault.Plan
	// Recorder receives flight-recorder events (injected wedges/fails,
	// dropped messages, watchdog ticks, the deadlock verdict) on track
	// "rcce". Nil records nothing; the recorder is write-only, so arming
	// it cannot change what the program computes.
	Recorder *obs.Recorder
	// Backend selects the concurrency engine (see Backend). The zero
	// value is the goroutine backend, the paper-era default.
	Backend Backend
	// Geometry sets the simulated chip's mesh dimensions. The zero value
	// is the real SCC (6x4 tiles, 2 cores per tile, 48 cores); custom
	// geometries lift the UE cap for beyond-the-hardware scaling runs
	// (e.g. 32x32x1 = 1024 UEs). The power API models the real chip, so
	// on custom geometries tiles beyond the real tile count start at the
	// first tile's clock.
	Geometry scc.Geometry
}

// Comm is one parallel program instance: the state shared by its UEs.
//
// Concurrency audit (sccvet atomic-consistency pass): n, mapping, geom,
// deadline, plan, eng, rec and started are written once before the engine
// launches the UE tasks and are read-only afterwards; the per-pair message
// counters are guarded by seqMu, the shared-memory and split tables by
// shmMu, the barrier registry by barMu, the mutable frequency-domain
// record by domMu, and the traffic/op counters are typed atomics, which
// the analyzer prefers because a plain access to them cannot compile.
// Engine-internal state (channel tables, the event queue) lives in the
// engine, under its own discipline.
type Comm struct {
	n       int
	mapping scc.Mapping
	geom    scc.Geometry

	// deadline/plan/rec are the robustness layer: per-op deadline,
	// fault-injection plan and the flight recorder events land on (nil
	// when unarmed). eng is the concurrency engine everything blocking
	// routes through.
	deadline time.Duration
	plan     *fault.Plan
	rec      *obs.Recorder
	eng      engine

	// tileMHz is the mutable per-tile clock record behind SetTileMHz /
	// TileMHz / Domains, sized to the geometry; domMu guards it along
	// with the chip-wide mesh/memory clocks.
	tileMHz []int
	meshMHz int
	memMHz  int
	domMu   sync.Mutex

	// msgSeq counts Send calls per (src, dst) pair - the sequence
	// numbers fault.Plan message matches use; seqMu guards the table.
	msgSeq map[pairKey]int
	seqMu  sync.Mutex

	barrier commBarrier
	// barriers registers every barrier of the program (the global one,
	// split-coordination barriers, subcomm barriers) so the watchdog can
	// poison them all when it fires; barMu guards the slice.
	barMu    sync.Mutex
	barriers []commBarrier

	shmMu   sync.Mutex
	shm     map[string][]float64
	splits  map[string]*splitState
	started time.Time

	// opSeq counts each rank's communication operations (sends,
	// receives, barriers), the per-rank program order fault.Plan rank
	// faults key on.
	opSeq []atomic.Int64

	// statistics
	msgs  atomic.Uint64
	bytes atomic.Uint64
	bars  atomic.Uint64
}

type pairKey struct{ src, dst int }

// UE is the handle each unit of execution receives; it is only valid inside
// the body function passed to Run.
type UE struct {
	comm *Comm
	rank int
}

// Run starts n units of execution mapped onto cores by mapping (nil means
// the RCCE default, rank r on core r) and runs body concurrently in each.
// It returns after every UE finishes, joining any errors. The domains
// argument fixes the chip clocks the power API reports and manipulates.
func Run(n int, mapping scc.Mapping, domains scc.FreqDomains, body func(*UE) error) error {
	return RunWith(Options{}, n, mapping, domains, body)
}

// RunWith is Run with a deadline watchdog, fault-injection plan, engine
// selection and/or custom mesh geometry armed (see Options). With a zero
// Options it is exactly Run.
func RunWith(opts Options, n int, mapping scc.Mapping, domains scc.FreqDomains, body func(*UE) error) error {
	geom := opts.Geometry.OrDefault()
	if err := geom.Validate(); err != nil {
		return err
	}
	if n <= 0 || n > geom.NumCores() {
		return fmt.Errorf("rcce: cannot run %d UEs on %d cores", n, geom.NumCores())
	}
	if mapping == nil {
		mapping = geom.StandardMapping(n)
	}
	if len(mapping) != n {
		return fmt.Errorf("rcce: mapping size %d != %d UEs", len(mapping), n)
	}
	if err := geom.ValidateMapping(mapping); err != nil {
		return err
	}
	if opts.Deadline < 0 {
		return fmt.Errorf("rcce: negative deadline %v", opts.Deadline)
	}
	c := &Comm{
		n:        n,
		mapping:  mapping,
		geom:     geom,
		deadline: opts.Deadline,
		plan:     opts.Fault,
		rec:      opts.Recorder,
		tileMHz:  tileClocks(geom, domains),
		meshMHz:  domains.MeshMHz,
		memMHz:   domains.MemMHz,
		msgSeq:   make(map[pairKey]int),
		shm:      make(map[string][]float64),
		opSeq:    make([]atomic.Int64, n),
		started:  time.Now(),
	}
	switch opts.Backend {
	case BackendGoroutine:
		c.eng = newGoroutineEngine(c)
	case BackendDES:
		c.eng = newDESEngine(c)
	default:
		return fmt.Errorf("rcce: unknown backend %v", opts.Backend)
	}
	c.barrier = c.newBarrier(n)
	return c.eng.run(body)
}

// tileClocks spreads the FreqDomains record over the geometry's tiles:
// real tiles take their configured clock, tiles beyond the real chip
// (custom geometries only) start at tile 0's clock.
func tileClocks(geom scc.Geometry, domains scc.FreqDomains) []int {
	clocks := make([]int, geom.NumTiles())
	for t := range clocks {
		if t < scc.NumTiles {
			clocks[t] = domains.TileMHz[t]
		} else {
			clocks[t] = domains.TileMHz[0]
		}
	}
	return clocks
}

// newBarrier creates a barrier registered for watchdog poisoning.
func (c *Comm) newBarrier(n int) commBarrier {
	b := c.eng.newBarrier(n)
	c.barMu.Lock()
	c.barriers = append(c.barriers, b)
	c.barMu.Unlock()
	return b
}

// poisonBarriers aborts every registered barrier with err (watchdog fire).
func (c *Comm) poisonBarriers(err error) {
	c.barMu.Lock()
	bars := append([]commBarrier(nil), c.barriers...)
	c.barMu.Unlock()
	for _, b := range bars {
		b.poisonWith(err)
	}
}

// nextMsgSeq returns this Send's per-pair sequence number (the identity
// fault.Plan message matches use).
func (c *Comm) nextMsgSeq(src, dst int) int {
	c.seqMu.Lock()
	defer c.seqMu.Unlock()
	k := pairKey{src, dst}
	seq := c.msgSeq[k]
	c.msgSeq[k] = seq + 1
	return seq
}

// Rank returns the UE's rank (0..NumUEs-1).
func (u *UE) Rank() int { return u.rank }

// NumUEs returns the number of units of execution in the program.
func (u *UE) NumUEs() int { return u.comm.n }

// Core returns the physical core this rank is mapped to.
func (u *UE) Core() scc.CoreID { return u.comm.mapping[u.rank] }

// Hops returns this UE's core-to-memory-controller distance.
func (u *UE) Hops() int { return u.comm.geom.HopsToMC(u.Core()) }

// Geometry returns the mesh geometry the program runs on.
func (u *UE) Geometry() scc.Geometry { return u.comm.geom }

// Wtime returns elapsed seconds since the program started, mirroring
// RCCE_wtime(), which the paper uses because the SCC cores lack a
// frequency-invariant clock. The goroutine backend reads monotonic-safe
// wall time through the obs clock seam (a stepped wall clock can never
// yield a negative reading); the DES backend reads the virtual clock.
func (u *UE) Wtime() float64 { return u.comm.eng.wtime() }

// preOp counts this rank's communication operation and applies any
// injected rank fault: ActFail returns ErrInjected-wrapped failure,
// ActWedge parks the rank until the watchdog aborts the program (forever
// when no deadline is armed, like real hung hardware).
func (u *UE) preOp(op string, peer int) error {
	c := u.comm
	seq := int(c.opSeq[u.rank].Add(1)) - 1
	switch c.plan.OnRankOp(u.rank, seq) {
	case fault.ActFail:
		c.rec.Recordf(rcceTrack, "fault_fail", "injected fail",
			"rank %d failed at %s op %d", u.rank, op, seq)
		return fmt.Errorf("rcce: UE %d %s op %d: %w", u.rank, op, seq, fault.ErrInjected)
	case fault.ActWedge:
		c.rec.Recordf(rcceTrack, "fault_wedge", "injected wedge",
			"rank %d wedged at %s op %d", u.rank, op, seq)
		return c.eng.park(u, "wedged:"+op, peer)
	}
	return nil
}

// rcceTrack is the flight-recorder timeline row for runtime events.
const rcceTrack = "rcce"

// Send transmits data to the UE with the given rank, blocking until the
// receiver has accepted all of it. Payloads move in ChunkBytes pieces, as
// through the MPB. Sending to oneself or to an invalid rank is an error.
func (u *UE) Send(data []byte, dst int) error {
	if dst < 0 || dst >= u.comm.n {
		return fmt.Errorf("rcce: send to invalid rank %d (have %d UEs)", dst, u.comm.n)
	}
	if dst == u.rank {
		return fmt.Errorf("rcce: UE %d sending to itself", u.rank)
	}
	if err := u.preOp("send", dst); err != nil {
		return err
	}
	seq := u.comm.nextMsgSeq(u.rank, dst)
	if drop, delay := u.comm.plan.OnMessage(u.rank, dst, seq); drop {
		// The message vanishes after the send "completes": the receiver
		// stays blocked, which the watchdog converts into a structured
		// DeadlockError naming it.
		u.comm.rec.Recordf(rcceTrack, "fault_drop", "dropped message",
			"message %d->%d seq %d dropped", u.rank, dst, seq)
		u.comm.msgs.Add(1)
		return nil
	} else if delay > 0 {
		// The injected latency is a blocked "delay" op like any other
		// rendezvous: the watchdog observes it and an abort interrupts
		// it (a bare sleep here used to survive a watchdog fire and
		// then still perform its rendezvous).
		if err := u.comm.eng.delay(u, dst, delay); err != nil {
			return err
		}
	}
	// An empty message still performs one rendezvous.
	if len(data) == 0 {
		if err := u.comm.eng.sendChunk(u, dst, nil); err != nil {
			return err
		}
		u.comm.msgs.Add(1)
		return nil
	}
	for off := 0; off < len(data); off += ChunkBytes {
		end := off + ChunkBytes
		if end > len(data) {
			end = len(data)
		}
		chunk := make([]byte, end-off)
		copy(chunk, data[off:end])
		if err := u.comm.eng.sendChunk(u, dst, chunk); err != nil {
			return err
		}
	}
	u.comm.msgs.Add(1)
	u.comm.bytes.Add(uint64(len(data)))
	return nil
}

// Recv receives exactly len(buf) bytes from rank src, blocking until the
// matching Send completes. The sizes on both sides must agree, as in RCCE.
func (u *UE) Recv(buf []byte, src int) error {
	if src < 0 || src >= u.comm.n {
		return fmt.Errorf("rcce: recv from invalid rank %d (have %d UEs)", src, u.comm.n)
	}
	if src == u.rank {
		return fmt.Errorf("rcce: UE %d receiving from itself", u.rank)
	}
	if err := u.preOp("recv", src); err != nil {
		return err
	}
	if len(buf) == 0 {
		// A zero-length receive still meets its sender for one
		// rendezvous, but only a zero-length chunk may arrive: silently
		// swallowing a data chunk here used to corrupt the remainder of
		// a longer transfer.
		chunk, err := u.comm.eng.recvChunk(u, src)
		if err != nil {
			return err
		}
		if len(chunk) != 0 {
			return fmt.Errorf("rcce: UE %d received %d-byte chunk into 0-byte window: size mismatch with sender %d",
				u.rank, len(chunk), src)
		}
		return nil
	}
	off := 0
	for off < len(buf) {
		chunk, err := u.comm.eng.recvChunk(u, src)
		if err != nil {
			return err
		}
		if len(chunk) > len(buf)-off {
			return fmt.Errorf("rcce: UE %d received %d-byte chunk into %d-byte window: size mismatch with sender %d",
				u.rank, len(chunk), len(buf)-off, src)
		}
		copy(buf[off:], chunk)
		off += len(chunk)
	}
	return nil
}

// Stats reports the communication volume of the program so far.
type Stats struct {
	Messages, Bytes, Barriers uint64
}

// Stats returns a snapshot of the program's communication counters.
func (u *UE) Stats() Stats {
	return Stats{
		Messages: u.comm.msgs.Load(),
		Bytes:    u.comm.bytes.Load(),
		Barriers: u.comm.bars.Load(),
	}
}
