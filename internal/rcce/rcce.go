// Package rcce is a functional workalike of Intel's RCCE ("rocky") light-
// weight message-passing library for the SCC, built on goroutines. It
// reproduces the programming model the paper's SpMV uses: a fixed set of
// units of execution (UEs) addressed by rank, mapped onto physical cores by
// a configurable mapping, synchronous point-to-point messages that move
// through an 8 KB-per-core message passing buffer in line-sized chunks,
// barriers, simple collectives, shared-memory allocation and the wall-clock
// and power-management entry points.
//
// The package is *functionally* real - messages actually move between
// goroutines and a misordered program really deadlocks - while performance
// figures come from the separate timing simulator in internal/sim.
package rcce

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/scc"
)

// ChunkBytes is the unit in which point-to-point payloads move through the
// message passing buffer: one UE's MPB share.
const ChunkBytes = scc.MPBBytesPerCore

// Comm is one parallel program instance: the state shared by its UEs.
//
// Concurrency audit (sccvet atomic-consistency pass): n, mapping and
// started are written once before Run launches the UE goroutines and are
// read-only afterwards (the go statement is the happens-before edge); the
// channel table is guarded by chansMu, the shared-memory and split tables
// by shmMu, the mutable frequency-domain record by domMu, and the traffic
// counters are typed atomics, which the analyzer prefers because a plain
// access to them cannot compile.
type Comm struct {
	n       int
	mapping scc.Mapping

	// domains is the mutable per-tile clock record behind SetTileMHz /
	// TileMHz / Domains; domMu guards it (it previously borrowed
	// chansMu, which coupled power management to the channel table).
	domains scc.FreqDomains
	domMu   sync.Mutex

	chans   map[pairKey]chan []byte
	chansMu sync.Mutex

	barrier *barrier

	shmMu   sync.Mutex
	shm     map[string][]float64
	splits  map[string]*splitState
	started time.Time

	// statistics
	msgs  atomic.Uint64
	bytes atomic.Uint64
	bars  atomic.Uint64
}

type pairKey struct{ src, dst int }

// UE is the handle each unit of execution receives; it is only valid inside
// the body function passed to Run.
type UE struct {
	comm *Comm
	rank int
}

// Run starts n units of execution mapped onto cores by mapping (nil means
// the RCCE default, rank r on core r) and runs body concurrently in each.
// It returns after every UE finishes, joining any errors. The domains
// argument fixes the chip clocks the power API reports and manipulates.
func Run(n int, mapping scc.Mapping, domains scc.FreqDomains, body func(*UE) error) error {
	if n <= 0 || n > scc.NumCores {
		return fmt.Errorf("rcce: cannot run %d UEs on %d cores", n, scc.NumCores)
	}
	if mapping == nil {
		mapping = scc.StandardMapping(n)
	}
	if len(mapping) != n {
		return fmt.Errorf("rcce: mapping size %d != %d UEs", len(mapping), n)
	}
	if err := mapping.Validate(); err != nil {
		return err
	}
	c := &Comm{
		n:       n,
		mapping: mapping,
		domains: domains,
		chans:   make(map[pairKey]chan []byte),
		barrier: newBarrier(n),
		shm:     make(map[string][]float64),
		started: time.Now(),
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("rcce: UE %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = body(&UE{comm: c, rank: rank})
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Rank returns the UE's rank (0..NumUEs-1).
func (u *UE) Rank() int { return u.rank }

// NumUEs returns the number of units of execution in the program.
func (u *UE) NumUEs() int { return u.comm.n }

// Core returns the physical core this rank is mapped to.
func (u *UE) Core() scc.CoreID { return u.comm.mapping[u.rank] }

// Hops returns this UE's core-to-memory-controller distance.
func (u *UE) Hops() int { return scc.HopsToMC(u.Core()) }

// Wtime returns elapsed wall-clock seconds since the program started,
// mirroring RCCE_wtime(), which the paper uses because the SCC cores lack a
// frequency-invariant clock.
func (u *UE) Wtime() float64 { return time.Since(u.comm.started).Seconds() }

// channel returns the rendezvous channel for the ordered pair (src, dst).
// Channels are unbuffered: a send blocks until the receiver arrives, which
// is RCCE's synchronous point-to-point semantics.
func (c *Comm) channel(src, dst int) chan []byte {
	c.chansMu.Lock()
	defer c.chansMu.Unlock()
	k := pairKey{src, dst}
	ch, ok := c.chans[k]
	if !ok {
		ch = make(chan []byte)
		c.chans[k] = ch
	}
	return ch
}

// Send transmits data to the UE with the given rank, blocking until the
// receiver has accepted all of it. Payloads move in ChunkBytes pieces, as
// through the MPB. Sending to oneself or to an invalid rank is an error.
func (u *UE) Send(data []byte, dst int) error {
	if dst < 0 || dst >= u.comm.n {
		return fmt.Errorf("rcce: send to invalid rank %d (have %d UEs)", dst, u.comm.n)
	}
	if dst == u.rank {
		return fmt.Errorf("rcce: UE %d sending to itself", u.rank)
	}
	ch := u.comm.channel(u.rank, dst)
	// An empty message still performs one rendezvous.
	if len(data) == 0 {
		ch <- nil
		u.comm.msgs.Add(1)
		return nil
	}
	for off := 0; off < len(data); off += ChunkBytes {
		end := off + ChunkBytes
		if end > len(data) {
			end = len(data)
		}
		chunk := make([]byte, end-off)
		copy(chunk, data[off:end])
		ch <- chunk
	}
	u.comm.msgs.Add(1)
	u.comm.bytes.Add(uint64(len(data)))
	return nil
}

// Recv receives exactly len(buf) bytes from rank src, blocking until the
// matching Send completes. The sizes on both sides must agree, as in RCCE.
func (u *UE) Recv(buf []byte, src int) error {
	if src < 0 || src >= u.comm.n {
		return fmt.Errorf("rcce: recv from invalid rank %d (have %d UEs)", src, u.comm.n)
	}
	if src == u.rank {
		return fmt.Errorf("rcce: UE %d receiving from itself", u.rank)
	}
	ch := u.comm.channel(src, u.rank)
	if len(buf) == 0 {
		<-ch
		return nil
	}
	off := 0
	for off < len(buf) {
		chunk := <-ch
		if len(chunk) > len(buf)-off {
			return fmt.Errorf("rcce: UE %d received %d-byte chunk into %d-byte window: size mismatch with sender %d",
				u.rank, len(chunk), len(buf)-off, src)
		}
		copy(buf[off:], chunk)
		off += len(chunk)
	}
	return nil
}

// Stats reports the communication volume of the program so far.
type Stats struct {
	Messages, Bytes, Barriers uint64
}

// Stats returns a snapshot of the program's communication counters.
func (u *UE) Stats() Stats {
	return Stats{
		Messages: u.comm.msgs.Load(),
		Bytes:    u.comm.bytes.Load(),
		Barriers: u.comm.bars.Load(),
	}
}
