package rcce

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"time"
)

// desEngine is the discrete-event RCCE substrate: a single-threaded
// cooperative scheduler that runs exactly one task at a time and keys
// everything that waits - rendezvous, barriers, injected delays and
// wedges, the deadlock watchdog - on a virtual clock instead of real
// timers.
//
// Tasks (UE bodies and the auxiliary transfers behind Isend/Irecv) each
// live on a host goroutine, but strictly one is runnable at any moment:
// the scheduler hands a task the baton through its resume channel and
// waits on the shared yielded channel until the task blocks or exits.
// Because only the baton holder ever touches engine state, the engine
// needs no locks, and because the ready queue is FIFO and the timer
// heap breaks ties by push order, every run of the same program is the
// same interleaving - the scheduler is deterministic by construction.
//
// The virtual clock advances only when the ready queue drains and the
// earliest timer pops, so a one-hour injected latency costs nothing in
// wall time and Wtime reads the simulated hour. Deadlock detection is
// exact rather than timed: when every live task is blocked and no timer
// can wake one, the program can never progress, and the engine raises a
// DeadlockError immediately - even with no deadline armed, where the
// goroutine oracle would block forever (the one documented divergence:
// a hung single-threaded simulation reports instead of hanging).
type desEngine struct {
	c        *Comm
	deadline time.Duration

	// now is the virtual clock; seq numbers tasks and timers so FIFO
	// and heap ordering are deterministic.
	now time.Duration
	seq int

	cur     *desTask
	yielded chan struct{}

	ready  []*desTask
	timers desTimerHeap

	// pairs holds the per-ordered-pair rendezvous queues: a blocked
	// sender parks in sendq with its chunk, a blocked receiver in recvq.
	pairs map[pairKey]*desPair

	// blocked tracks every parked task for the deadlock report; liveUEs
	// counts unfinished rank tasks (aux transfers don't keep the
	// scheduler alive, mirroring how Run only joins UE goroutines).
	blocked map[*desTask]struct{}
	liveUEs int

	// abort is the DeadlockError once the virtual watchdog fired; every
	// subsequent blocking op returns it immediately, mirroring the
	// goroutine backend's closed abort channel.
	abort error
}

type desTask struct {
	id   int
	rank int
	// kind is "ue" for rank tasks, "isend"/"irecv" for aux transfers.
	kind   string
	resume chan struct{}

	// op/peer/since describe the block the task is inside (deadlock
	// reporting); gen invalidates stale timers across block episodes.
	op    string
	peer  int
	since time.Duration
	gen   int

	// chunk carries the rendezvous payload: a parked sender's offered
	// chunk, or the chunk handed to a woken receiver.
	chunk []byte
	// err is the verdict delivered on wake (nil = woken normally).
	err error

	// done/derr/joiners implement completion: reqWait blocks the caller
	// as a joiner until the task finishes.
	done    bool
	derr    error
	joiners []*desTask
}

type desPair struct {
	sendq []*desTask
	recvq []*desTask
}

// desTimer is one virtual-time event: a delay wakeup or a watchdog
// deadline check for a specific block episode of a task.
type desTimer struct {
	at   time.Duration
	seq  int
	task *desTask
	gen  int
	// watch marks a deadline check (fires the deadlock verdict if the
	// task is still inside the same block episode).
	watch bool
}

type desTimerHeap []desTimer

func (h desTimerHeap) Len() int { return len(h) }
func (h desTimerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h desTimerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *desTimerHeap) Push(x any)   { *h = append(*h, x.(desTimer)) }
func (h *desTimerHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func newDESEngine(c *Comm) *desEngine {
	return &desEngine{
		c:        c,
		deadline: c.deadline,
		yielded:  make(chan struct{}),
		pairs:    make(map[pairKey]*desPair),
		blocked:  make(map[*desTask]struct{}),
	}
}

func (e *desEngine) nextSeq() int {
	e.seq++
	return e.seq
}

func (e *desEngine) run(body func(*UE) error) error {
	c := e.c
	errs := make([]error, c.n)
	for r := 0; r < c.n; r++ {
		rank := r
		t := e.newTask(rank, "ue")
		e.liveUEs++
		e.start(t, func() error { return body(&UE{comm: c, rank: rank}) }, func(err error) { errs[rank] = err })
	}
	e.loop()
	return errors.Join(errs...)
}

func (e *desEngine) newTask(rank int, kind string) *desTask {
	return &desTask{id: e.nextSeq(), rank: rank, kind: kind, resume: make(chan struct{})}
}

// start enqueues the task and launches its host goroutine, parked on
// the resume baton until the scheduler picks it. record (may be nil)
// receives the task's final error before completion is published.
func (e *desEngine) start(t *desTask, fn func() error, record func(error)) {
	e.ready = append(e.ready, t)
	// DES tasks are cooperatively scheduled entities, not host fan-out:
	// exactly one runs at a time (baton passing through resume/yielded),
	// and the scheduler loop observes every completion before run returns.
	go func() { //sccvet:allow bare-goroutine DES scheduler entity: one runnable at a time via baton passing, joined by the scheduler loop
		<-t.resume
		err := runDESTask(t, fn)
		if record != nil {
			record(err)
		}
		e.finish(t, err)
	}()
}

func runDESTask(t *desTask, fn func() error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("rcce: UE %d panicked: %v", t.rank, p)
		}
	}()
	return fn()
}

// finish publishes the task's completion (run on the task's goroutine,
// still holding the baton), wakes its joiners and hands the baton back.
func (e *desEngine) finish(t *desTask, err error) {
	t.done = true
	t.derr = err
	for _, j := range t.joiners {
		j.err = nil
		e.makeReady(j)
	}
	t.joiners = nil
	if t.kind == "ue" {
		e.liveUEs--
	}
	e.yielded <- struct{}{}
}

// loop is the scheduler: drain the ready queue, then advance the
// virtual clock to the earliest timer; if neither can make progress
// while UEs are still live, the program is deadlocked - exactly.
func (e *desEngine) loop() {
	for e.liveUEs > 0 {
		if len(e.ready) > 0 {
			t := e.ready[0]
			e.ready = e.ready[1:]
			e.cur = t
			t.resume <- struct{}{}
			<-e.yielded
			e.cur = nil
			continue
		}
		if e.timers.Len() > 0 {
			tm := heap.Pop(&e.timers).(desTimer)
			if tm.at > e.now {
				e.now = tm.at
			}
			t := tm.task
			if t.done || tm.gen != t.gen {
				continue // stale: the block episode this timer belonged to ended
			}
			if _, isBlocked := e.blocked[t]; !isBlocked {
				continue
			}
			if tm.watch {
				if e.abort == nil {
					e.fireDeadlock()
				}
				continue
			}
			// Delay wakeup: the virtual sleep elapsed.
			t.err = nil
			e.makeReady(t)
			continue
		}
		if e.abort != nil || len(e.blocked) == 0 {
			// Unreachable by construction: an abort wakes every blocked
			// task, and a live UE is always ready, running, blocked or
			// finished. Fail loudly rather than hang the scheduler.
			panic("rcce: internal: DES scheduler quiescent with live UEs and nothing to wake")
		}
		// Global quiescence with live UEs and no timer that could wake
		// anyone: a genuine deadlock, detected exactly (no deadline
		// needed - the event model proves no progress is possible).
		e.fireDeadlock()
	}
}

// fireDeadlock converts the blocked-task table into a DeadlockError,
// poisons every barrier and wakes every parked task with the verdict -
// the virtual-time equivalent of the wall watchdog's abort.
func (e *desEngine) fireDeadlock() {
	derr := &DeadlockError{Deadline: e.deadline}
	stuck := make([]*desTask, 0, len(e.blocked))
	for t := range e.blocked {
		stuck = append(stuck, t)
	}
	// Task ids give a deterministic order independent of map iteration.
	sort.Slice(stuck, func(i, j int) bool { return stuck[i].id < stuck[j].id })
	for _, t := range stuck {
		derr.Blocked = append(derr.Blocked, BlockedOp{Rank: t.rank, Op: t.op, Peer: t.peer, For: e.now - t.since})
	}
	sort.SliceStable(derr.Blocked, func(i, j int) bool { return derr.Blocked[i].Rank < derr.Blocked[j].Rank })
	e.abort = derr
	e.c.rec.Record(rcceTrack, "deadlock", "virtual watchdog fired", derr.Error())
	e.c.poisonBarriers(derr)
	for _, t := range stuck {
		t.err = derr
		t.gen++ // invalidate any pending timers for this episode
		e.makeReady(t)
	}
}

func (e *desEngine) makeReady(t *desTask) {
	delete(e.blocked, t)
	e.ready = append(e.ready, t)
}

// parkTask records the current block episode; the caller then yields.
func (e *desEngine) parkTask(t *desTask, op string, peer int) {
	t.op, t.peer, t.since = op, peer, e.now
	t.gen++
	e.blocked[t] = struct{}{}
}

func (e *desEngine) armWatch(t *desTask) {
	if e.deadline > 0 {
		heap.Push(&e.timers, desTimer{at: e.now + e.deadline, seq: e.nextSeq(), task: t, gen: t.gen, watch: true})
	}
}

// yieldCurrent hands the baton to the scheduler and parks until woken;
// the wake verdict arrives in t.err.
func (e *desEngine) yieldCurrent(t *desTask) error {
	e.yielded <- struct{}{}
	<-t.resume
	return t.err
}

// block parks the current task inside op until a peer, the watchdog or
// the quiescence check wakes it.
func (e *desEngine) block(t *desTask, op string, peer int) error {
	e.parkTask(t, op, peer)
	e.armWatch(t)
	return e.yieldCurrent(t)
}

func (e *desEngine) pairOf(k pairKey) *desPair {
	p, ok := e.pairs[k]
	if !ok {
		p = &desPair{}
		e.pairs[k] = p
	}
	return p
}

func (e *desEngine) sendChunk(u *UE, dst int, chunk []byte) error {
	if e.abort != nil {
		return e.abort
	}
	t := e.cur
	p := e.pairOf(pairKey{u.rank, dst})
	if len(p.recvq) > 0 {
		// A receiver is already parked: hand over the chunk and wake it.
		// Both sides complete at the same virtual instant - RCCE's
		// synchronous rendezvous.
		r := p.recvq[0]
		p.recvq = p.recvq[1:]
		r.chunk = chunk
		r.err = nil
		e.makeReady(r)
		return nil
	}
	t.chunk = chunk
	p.sendq = append(p.sendq, t)
	if err := e.block(t, "send", dst); err != nil {
		return err
	}
	return nil
}

func (e *desEngine) recvChunk(u *UE, src int) ([]byte, error) {
	if e.abort != nil {
		return nil, e.abort
	}
	t := e.cur
	p := e.pairOf(pairKey{src, u.rank})
	if len(p.sendq) > 0 {
		s := p.sendq[0]
		p.sendq = p.sendq[1:]
		chunk := s.chunk
		s.chunk = nil
		s.err = nil
		e.makeReady(s)
		return chunk, nil
	}
	p.recvq = append(p.recvq, t)
	if err := e.block(t, "recv", src); err != nil {
		return nil, err
	}
	chunk := t.chunk
	t.chunk = nil
	return chunk, nil
}

// delay advances the task past d of virtual time: it parks as a
// watchdog-visible "delay" op with a wake timer, so a latency longer
// than the deadline trips the deadlock verdict exactly like a stuck
// rendezvous - but costs nothing in wall time.
func (e *desEngine) delay(u *UE, peer int, d time.Duration) error {
	if e.abort != nil {
		return e.abort
	}
	t := e.cur
	e.parkTask(t, "delay", peer)
	// The wake timer is pushed before the watch timer, so an exactly
	// deadline-long delay wakes rather than fires (FIFO tie-break).
	heap.Push(&e.timers, desTimer{at: e.now + d, seq: e.nextSeq(), task: t, gen: t.gen})
	e.armWatch(t)
	return e.yieldCurrent(t)
}

func (e *desEngine) park(u *UE, op string, peer int) error {
	if e.abort != nil {
		return e.abort
	}
	return e.block(e.cur, op, peer)
}

// wtime reads the virtual clock: seconds of simulated time, however
// little wall time the run actually took.
func (e *desEngine) wtime() float64 {
	return e.now.Seconds()
}

func (e *desEngine) isend(u *UE, buf []byte, dst int) *Request {
	t := e.newTask(u.rank, "isend")
	e.start(t, func() error { return u.Send(buf, dst) }, nil)
	return &Request{kind: "isend", eng: e, task: t}
}

func (e *desEngine) irecv(u *UE, buf []byte, src int) *Request {
	t := e.newTask(u.rank, "irecv")
	e.start(t, func() error { return u.Recv(buf, src) }, nil)
	return &Request{kind: "irecv", eng: e, task: t}
}

// reqWait joins an aux transfer task: the caller parks until the
// transfer finishes (or the program aborts) and gets the transfer's
// error, like Request.Wait on the goroutine backend.
func (e *desEngine) reqWait(r *Request) error {
	t := e.cur
	a := r.task
	if !a.done {
		a.joiners = append(a.joiners, t)
		if err := e.block(t, "wait-"+a.kind, a.rank); err != nil {
			return err
		}
	}
	return a.derr
}

// reqTest polls an aux transfer. Under run-to-completion scheduling the
// transfer can only have progressed if the caller yielded (blocked)
// since issuing it, so a spin on Test without an intervening blocking
// op never completes - callers must Wait (the same discipline real
// iRCCE polling loops need against a progress engine that only runs
// when the caller enters the library).
func (e *desEngine) reqTest(r *Request) (bool, error) {
	if !r.task.done {
		return false, nil
	}
	return true, r.task.derr
}

func (e *desEngine) newBarrier(n int) commBarrier {
	return &desBarrier{e: e, n: n}
}

// desBarrier is the DES backend's counting barrier: waiters park in
// arrival order and the last arrival releases them all at the same
// virtual instant.
type desBarrier struct {
	e       *desEngine
	n       int
	count   int
	waiters []*desTask
	poison  error
}

func (b *desBarrier) wait(u *UE, op string, onRelease func()) error {
	e := b.e
	if e.abort != nil {
		return e.abort
	}
	if b.poison != nil {
		return b.poison
	}
	if b.count+1 == b.n {
		// Last arrival: release the phase without blocking.
		b.count = 0
		if onRelease != nil {
			onRelease()
		}
		ws := b.waiters
		b.waiters = nil
		for _, w := range ws {
			w.err = nil
			e.makeReady(w)
		}
		return nil
	}
	b.count++
	t := e.cur
	b.waiters = append(b.waiters, t)
	return e.block(t, op, -1)
}

// poisonWith marks the barrier aborted for future waiters; the engine's
// deadlock sweep wakes the currently parked ones (poisonWith is only
// called from fireDeadlock, which holds the baton).
func (b *desBarrier) poisonWith(err error) {
	if b.poison == nil {
		b.poison = err
	}
}
