package rcce

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/scc"
)

// backends lists the two engines for table-driven mirror tests; the
// goroutine backend is the semantic oracle the DES results must match.
var backends = []struct {
	name string
	b    Backend
}{
	{"goroutine", BackendGoroutine},
	{"des", BackendDES},
}

// meshProgram is a traffic-heavy program exercising every blocking
// primitive: barrier, chunked point-to-point, collectives, split,
// non-blocking ops. It returns rank 0's gathered vector and final stats.
func meshProgram(opts Options, n int) ([]float64, Stats, error) {
	var out []float64
	var st Stats
	err := RunWith(opts, n, nil, scc.Uniform(scc.Conf0), func(u *UE) error {
		if err := u.Barrier(); err != nil {
			return err
		}
		// Pairwise halo exchange with a payload spanning several MPB
		// chunks (n must be even so every rank has a partner).
		partner := u.Rank() ^ 1
		payload := make([]byte, 2*ChunkBytes+17)
		for i := range payload {
			payload[i] = byte(u.Rank() + i)
		}
		got := make([]byte, len(payload))
		if err := u.SendRecv(payload, got, partner); err != nil {
			return err
		}
		if got[0] != byte(partner) {
			return fmt.Errorf("rank %d exchanged %d, want %d", u.Rank(), got[0], partner)
		}
		// Ring pass: even ranks send first - deadlock-free.
		next := (u.Rank() + 1) % u.NumUEs()
		prev := (u.Rank() + u.NumUEs() - 1) % u.NumUEs()
		ring := make([]byte, len(payload))
		if u.Rank()%2 == 0 {
			if err := u.Send(payload, next); err != nil {
				return err
			}
			if err := u.Recv(ring, prev); err != nil {
				return err
			}
		} else {
			if err := u.Recv(ring, prev); err != nil {
				return err
			}
			if err := u.Send(payload, next); err != nil {
				return err
			}
		}
		// Collectives.
		vals := []float64{float64(u.Rank()), 1}
		sum := make([]float64, 2)
		if err := u.Allreduce(OpSum, vals, sum); err != nil {
			return err
		}
		if sum[1] != float64(u.NumUEs()) {
			return fmt.Errorf("rank %d allreduce count %v", u.Rank(), sum[1])
		}
		// Subcommunicator by parity.
		sc, err := u.Split("parity", u.Rank()%2, u.Rank())
		if err != nil {
			return err
		}
		if err := sc.Barrier(); err != nil {
			return err
		}
		// Gather everything at rank 0.
		mine := []float64{sum[0] + float64(u.Rank())}
		all := make([]float64, u.NumUEs())
		if u.Rank() == 0 {
			if err := u.Gather(mine, all, 0); err != nil {
				return err
			}
		} else {
			if err := u.Gather(mine, nil, 0); err != nil {
				return err
			}
		}
		if err := u.Barrier(); err != nil {
			return err
		}
		if u.Rank() == 0 {
			out = all
			st = u.Stats()
		}
		return nil
	})
	return out, st, err
}

func TestDESMirrorsGoroutineEngine(t *testing.T) {
	// The same program must compute the same vector and the same traffic
	// counters on both engines: the goroutine backend is the oracle.
	refOut, refSt, err := meshProgram(Options{Backend: BackendGoroutine}, 8)
	if err != nil {
		t.Fatalf("goroutine run failed: %v", err)
	}
	desOut, desSt, err := meshProgram(Options{Backend: BackendDES}, 8)
	if err != nil {
		t.Fatalf("des run failed: %v", err)
	}
	if len(refOut) != len(desOut) {
		t.Fatalf("gather lengths differ: %d vs %d", len(refOut), len(desOut))
	}
	for i := range refOut {
		if refOut[i] != desOut[i] {
			t.Errorf("gathered[%d]: goroutine %v, des %v", i, refOut[i], desOut[i])
		}
	}
	if refSt != desSt {
		t.Errorf("stats differ: goroutine %+v, des %+v", refSt, desSt)
	}
}

func TestDESChaosMirrorsGoroutine(t *testing.T) {
	// The chaos scenarios from chaos_test.go, replayed on the DES engine.
	t.Run("wedge", func(t *testing.T) {
		err := pingPong(t, Options{
			Backend:  BackendDES,
			Deadline: 50 * time.Millisecond,
			Fault:    &fault.Plan{Wedge: &fault.RankFault{Rank: 2, AfterOps: 0}},
		})
		var derr *DeadlockError
		if !errors.As(err, &derr) {
			t.Fatalf("wedged rank returned %v, want a *DeadlockError", err)
		}
		found := false
		for _, r := range derr.BlockedRanks() {
			if r == 2 {
				found = true
			}
		}
		if !found {
			t.Errorf("DeadlockError %v does not name the wedged rank 2", derr)
		}
	})
	t.Run("drop", func(t *testing.T) {
		err := pingPong(t, Options{
			Backend:  BackendDES,
			Deadline: 50 * time.Millisecond,
			Fault:    &fault.Plan{Drop: []fault.Message{{Src: 0, Dst: 1, Seq: 0}}},
		})
		var derr *DeadlockError
		if !errors.As(err, &derr) {
			t.Fatalf("dropped message returned %v, want a *DeadlockError", err)
		}
	})
	t.Run("delay-under-deadline", func(t *testing.T) {
		err := pingPong(t, Options{
			Backend:  BackendDES,
			Deadline: 2 * time.Second,
			Fault: &fault.Plan{Slow: []fault.Delay{
				{Message: fault.Message{Src: 0, Dst: 1, Seq: 0}, By: 10 * time.Millisecond},
			}},
		})
		if err != nil {
			t.Fatalf("delayed run failed: %v", err)
		}
	})
	t.Run("fail", func(t *testing.T) {
		err := pingPong(t, Options{
			Backend:  BackendDES,
			Deadline: 50 * time.Millisecond,
			Fault:    &fault.Plan{Fail: &fault.RankFault{Rank: 3, AfterOps: 0}},
		})
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("error %v does not wrap fault.ErrInjected", err)
		}
	})
}

func TestDESVirtualTimeIsFree(t *testing.T) {
	// An injected hour of latency costs no wall-clock time on the DES
	// engine: the scheduler jumps the virtual clock. Wtime must report
	// the virtual hour.
	start := time.Now()
	var wtime float64
	err := RunWith(Options{
		Backend:  BackendDES,
		Deadline: 2 * time.Hour,
		Fault: &fault.Plan{Slow: []fault.Delay{
			{Message: fault.Message{Src: 0, Dst: 1, Seq: 0}, By: time.Hour},
		}},
	}, 2, nil, scc.Uniform(scc.Conf0), func(u *UE) error {
		if u.Rank() == 0 {
			if err := u.Send([]byte{1}, 1); err != nil {
				return err
			}
		} else {
			if err := u.Recv(make([]byte, 1), 0); err != nil {
				return err
			}
		}
		if err := u.Barrier(); err != nil {
			return err
		}
		if u.Rank() == 0 {
			wtime = u.Wtime()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("virtual-hour run failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("virtual hour took %v of wall clock", elapsed)
	}
	if wtime < 3600 {
		t.Errorf("Wtime after a 1h injected delay = %v s, want >= 3600", wtime)
	}
}

func TestDESExactDeadlockWithoutDeadline(t *testing.T) {
	// Two ranks both receiving is a genuine deadlock. The goroutine
	// backend blocks forever without a deadline; the DES engine proves
	// quiescence and reports the deadlock exactly, with no deadline armed.
	err := RunWith(Options{Backend: BackendDES}, 2, nil, scc.Uniform(scc.Conf0),
		func(u *UE) error {
			return u.Recv(make([]byte, 1), 1-u.Rank())
		})
	var derr *DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("deadlocked program returned %v, want a *DeadlockError", err)
	}
	if got := derr.BlockedRanks(); len(got) != 2 {
		t.Errorf("BlockedRanks = %v, want both ranks", got)
	}
}

func TestDESDeterministicSchedule(t *testing.T) {
	// Two identical DES runs must produce the identical observable event
	// order, not just the same final values: the scheduler is
	// deterministic by construction.
	trace := func() []string {
		var mu sync.Mutex
		var log []string
		err := RunWith(Options{
			Backend: BackendDES,
			Fault: &fault.Plan{Slow: []fault.Delay{
				{Message: fault.Message{Src: 1, Dst: 2, Seq: 0}, By: time.Millisecond},
			}},
		}, 4, nil, scc.Uniform(scc.Conf0), func(u *UE) error {
			note := func(what string) {
				mu.Lock()
				log = append(log, fmt.Sprintf("%d:%s@%.6f", u.Rank(), what, u.Wtime()))
				mu.Unlock()
			}
			note("start")
			if err := u.Barrier(); err != nil {
				return err
			}
			note("barrier")
			next := (u.Rank() + 1) % u.NumUEs()
			prev := (u.Rank() + u.NumUEs() - 1) % u.NumUEs()
			if u.Rank()%2 == 0 {
				if err := u.Send([]byte{byte(u.Rank())}, next); err != nil {
					return err
				}
				if err := u.Recv(make([]byte, 1), prev); err != nil {
					return err
				}
			} else {
				if err := u.Recv(make([]byte, 1), prev); err != nil {
					return err
				}
				if err := u.Send([]byte{byte(u.Rank())}, next); err != nil {
					return err
				}
			}
			note("ring")
			return u.Barrier()
		})
		if err != nil {
			t.Fatalf("traced run failed: %v", err)
		}
		return log
	}
	a, b := trace(), trace()
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Errorf("two identical DES runs diverged:\nrun 1:\n%s\nrun 2:\n%s",
			strings.Join(a, "\n"), strings.Join(b, "\n"))
	}
}

func TestDESLargeMesh1024UEs(t *testing.T) {
	// Beyond-the-chip scaling: a 32x32 mesh of single-core tiles runs
	// 1024 UEs on one host thread. Every rank contributes to a global
	// reduction and exchanges with its ring neighbours.
	geom := scc.Geometry{TilesX: 32, TilesY: 32, CoresPerTile: 1}
	err := RunWith(Options{Backend: BackendDES, Geometry: geom}, 1024, nil,
		scc.Uniform(scc.Conf0), func(u *UE) error {
			if err := u.Barrier(); err != nil {
				return err
			}
			next := (u.Rank() + 1) % u.NumUEs()
			prev := (u.Rank() + u.NumUEs() - 1) % u.NumUEs()
			if u.Rank()%2 == 0 {
				if err := u.Send([]byte{1}, next); err != nil {
					return err
				}
				if err := u.Recv(make([]byte, 1), prev); err != nil {
					return err
				}
			} else {
				if err := u.Recv(make([]byte, 1), prev); err != nil {
					return err
				}
				if err := u.Send([]byte{1}, next); err != nil {
					return err
				}
			}
			sum := make([]float64, 1)
			if err := u.Allreduce(OpSum, []float64{1}, sum); err != nil {
				return err
			}
			if sum[0] != 1024 {
				return fmt.Errorf("rank %d allreduce sum %v, want 1024", u.Rank(), sum[0])
			}
			return u.Barrier()
		})
	if err != nil {
		t.Fatalf("1024-UE DES run failed: %v", err)
	}
}

func TestDESNonblockingOps(t *testing.T) {
	// Isend/Irecv and SendRecv on the DES engine: the transfers run as
	// auxiliary scheduler tasks joined by Wait.
	err := RunWith(Options{Backend: BackendDES}, 2, nil, scc.Uniform(scc.Conf0),
		func(u *UE) error {
			partner := 1 - u.Rank()
			sendBuf := []byte{byte(10 + u.Rank())}
			recvBuf := make([]byte, 1)
			if err := u.SendRecv(sendBuf, recvBuf, partner); err != nil {
				return err
			}
			if recvBuf[0] != byte(10+partner) {
				return fmt.Errorf("rank %d exchanged %d, want %d", u.Rank(), recvBuf[0], 10+partner)
			}
			req := u.Isend([]byte{byte(u.Rank())}, partner)
			got := make([]byte, 1)
			if err := u.Recv(got, partner); err != nil {
				return err
			}
			return req.Wait()
		})
	if err != nil {
		t.Fatalf("DES non-blocking run failed: %v", err)
	}
}

// --- regression tests for the timing-semantics bugfix sweep ---

func TestDelayedMessageAbortsWithinDeadline(t *testing.T) {
	// Regression: an injected delay longer than the deadline used to be a
	// bare time.Sleep - invisible to the watchdog and uninterruptible, so
	// an aborted program stayed alive for the full injected latency. The
	// delay is now a blocked "delay" op: the watchdog sees it, fires, and
	// the abort interrupts the sleep immediately.
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			start := time.Now()
			err := RunWith(Options{
				Backend:  be.b,
				Deadline: 50 * time.Millisecond,
				Fault: &fault.Plan{Slow: []fault.Delay{
					{Message: fault.Message{Src: 0, Dst: 1, Seq: 0}, By: time.Hour},
				}},
			}, 2, nil, scc.Uniform(scc.Conf0), func(u *UE) error {
				if u.Rank() == 0 {
					return u.Send([]byte{1}, 1)
				}
				return u.Recv(make([]byte, 1), 0)
			})
			elapsed := time.Since(start)
			var derr *DeadlockError
			if !errors.As(err, &derr) {
				t.Fatalf("over-deadline delay returned %v, want a *DeadlockError", err)
			}
			if elapsed > 5*time.Second {
				t.Fatalf("abort took %v: the injected hour was not interrupted", elapsed)
			}
			foundDelay := false
			for _, op := range derr.Blocked {
				if op.Op == "delay" {
					foundDelay = true
				}
			}
			if !foundDelay {
				t.Errorf("DeadlockError %v does not show the rank blocked in its delay", derr)
			}
		})
	}
}

func TestRecvZeroLengthSizeMismatch(t *testing.T) {
	// Regression: a zero-length Recv matched against a data-carrying Send
	// used to silently consume the first chunk and return nil, corrupting
	// the rest of the transfer. It must error on a non-empty chunk.
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			var recvErr error
			err := RunWith(Options{Backend: be.b, Deadline: 5 * time.Second}, 2, nil,
				scc.Uniform(scc.Conf0), func(u *UE) error {
					if u.Rank() == 0 {
						// The mismatch surfaces at the receiver; the sender's
						// remaining chunks die with the aborted program.
						_ = u.Send(make([]byte, 100), 1) //sccvet:allow error-discard the test asserts on the receiver's mismatch error; the sender is expected to be aborted mid-transfer
						return nil
					}
					recvErr = u.Recv(nil, 0)
					return nil
				})
			_ = err
			if recvErr == nil {
				t.Fatal("zero-length Recv of a 100-byte Send returned nil")
			}
			if !strings.Contains(recvErr.Error(), "size mismatch") {
				t.Errorf("error %q does not name the size mismatch", recvErr)
			}
		})
	}
}

func TestWtimeMonotonicUnderSteppedClock(t *testing.T) {
	// Regression: Wtime read time.Since directly, bypassing the obs clock
	// seam, so a wall clock stepped backwards (NTP) could yield a negative
	// elapsed time. Through the seam a start stamp in the future clamps
	// to zero instead of going negative.
	c := &Comm{n: 1, started: time.Now().Add(time.Hour)}
	c.eng = newGoroutineEngine(c)
	u := &UE{comm: c, rank: 0}
	if w := u.Wtime(); w != 0 {
		t.Errorf("Wtime under a stepped clock = %v, want 0", w)
	}
}

func TestParseBackend(t *testing.T) {
	cases := []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"", BackendGoroutine, true},
		{"goroutine", BackendGoroutine, true},
		{"des", BackendDES, true},
		{"threads", 0, false},
	}
	for _, c := range cases {
		got, err := ParseBackend(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseBackend(%q) accepted", c.in)
		}
	}
}
