package rcce

import (
	"fmt"
	"sync"
)

// Non-blocking point-to-point operations in the style of iRCCE, the
// asynchronous extension library Intel shipped alongside RCCE. An Isend or
// Irecv returns a *Request immediately; the transfer progresses on a helper
// task (standing in for iRCCE's progress engine) and Wait/Test complete it.
// Mixing blocking and non-blocking operations on the same (source,
// destination) pair is ordered: both go through the pair's rendezvous.

// Request tracks an in-flight non-blocking operation.
type Request struct {
	// kind is "isend" or "irecv" (for error messages).
	kind string

	// done/once/err complete goroutine-backend requests (and requests
	// that fail validation before reaching any engine).
	done chan struct{}
	once sync.Once
	err  error

	// eng/task complete DES-backend requests: the transfer runs as an
	// auxiliary scheduler task and Wait joins it.
	eng  *desEngine
	task *desTask
}

func newRequest(kind string) *Request {
	return &Request{done: make(chan struct{}), kind: kind}
}

func (r *Request) finish(err error) {
	r.once.Do(func() {
		r.err = err
		close(r.done)
	})
}

// Wait blocks until the operation completes and returns its error.
func (r *Request) Wait() error {
	if r.task != nil {
		return r.eng.reqWait(r)
	}
	<-r.done
	return r.err
}

// Test reports whether the operation has completed, without blocking.
// The error is only meaningful when done is true. Under the DES backend
// a transfer only progresses while the issuing UE is blocked, so poll
// loops must interleave a blocking op (or just Wait).
func (r *Request) Test() (done bool, err error) {
	if r.task != nil {
		return r.eng.reqTest(r)
	}
	select {
	case <-r.done:
		return true, r.err
	default:
		return false, nil
	}
}

// Isend starts a non-blocking send of data to dst and returns immediately.
// The data slice is copied before Isend returns, so the caller may reuse it.
// Completion (Wait/Test) follows RCCE's synchronous semantics: the send is
// done when the receiver has accepted the whole payload.
func (u *UE) Isend(data []byte, dst int) *Request {
	req := newRequest("isend")
	if dst < 0 || dst >= u.comm.n {
		req.finish(fmt.Errorf("rcce: isend to invalid rank %d", dst))
		return req
	}
	if dst == u.rank {
		req.finish(fmt.Errorf("rcce: UE %d isend to itself", u.rank))
		return req
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	return u.comm.eng.isend(u, buf, dst)
}

// Irecv starts a non-blocking receive of exactly len(buf) bytes from src.
// The caller must not touch buf until the request completes.
func (u *UE) Irecv(buf []byte, src int) *Request {
	req := newRequest("irecv")
	if src < 0 || src >= u.comm.n {
		req.finish(fmt.Errorf("rcce: irecv from invalid rank %d", src))
		return req
	}
	if src == u.rank {
		req.finish(fmt.Errorf("rcce: UE %d irecv from itself", u.rank))
		return req
	}
	return u.comm.eng.irecv(u, buf, src)
}

// WaitAll waits for every request and returns the first error encountered.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SendRecv exchanges equal-sized payloads with a partner rank without
// deadlock regardless of rank ordering: the send runs non-blocking while
// the receive progresses - the canonical halo-exchange building block.
func (u *UE) SendRecv(sendBuf []byte, recvBuf []byte, partner int) error {
	s := u.Isend(sendBuf, partner)
	if err := u.Recv(recvBuf, partner); err != nil {
		// Drain the send before reporting so the goroutine cannot leak
		// into a later operation on the same pair.
		_ = s.Wait() //sccvet:allow error-discard the Recv error is already being returned; this Wait only drains the paired send
		return err
	}
	return s.Wait()
}
