package rcce

import (
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/scc"
)

// pingPong is a 4-rank program with a barrier and a ring of point-to-point
// messages - enough traffic that every fault class below has something to
// hit. Returns rank 0's received value for sanity checks.
func pingPong(t *testing.T, opts Options) error {
	t.Helper()
	return RunWith(opts, 4, nil, scc.Uniform(scc.Conf0), func(u *UE) error {
		if err := u.Barrier(); err != nil {
			return err
		}
		next := (u.Rank() + 1) % u.NumUEs()
		prev := (u.Rank() + u.NumUEs() - 1) % u.NumUEs()
		msg := []byte{byte(u.Rank())}
		got := make([]byte, 1)
		// Even ranks send first; odd ranks receive first - deadlock-free.
		if u.Rank()%2 == 0 {
			if err := u.Send(msg, next); err != nil {
				return err
			}
			if err := u.Recv(got, prev); err != nil {
				return err
			}
		} else {
			if err := u.Recv(got, prev); err != nil {
				return err
			}
			if err := u.Send(msg, next); err != nil {
				return err
			}
		}
		if got[0] != byte(prev) {
			t.Errorf("rank %d received %d, want %d", u.Rank(), got[0], prev)
		}
		return u.Barrier()
	})
}

func TestChaosNoFaultUnderDeadline(t *testing.T) {
	// A generous deadline and an empty plan must change nothing.
	if err := pingPong(t, Options{Deadline: 5 * time.Second, Fault: &fault.Plan{}}); err != nil {
		t.Fatalf("fault-free run under deadline failed: %v", err)
	}
}

func TestChaosWedgedRankBecomesDeadlockError(t *testing.T) {
	// Rank 2 wedges at its very first op (the opening barrier): everyone
	// else blocks in that barrier and the watchdog must name them all.
	start := time.Now()
	err := pingPong(t, Options{
		Deadline: 50 * time.Millisecond,
		Fault:    &fault.Plan{Wedge: &fault.RankFault{Rank: 2, AfterOps: 0}},
	})
	elapsed := time.Since(start)
	var derr *DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("wedged rank returned %v, want a *DeadlockError", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadlock detection took %v with a 50ms deadline", elapsed)
	}
	ranks := derr.BlockedRanks()
	if len(ranks) == 0 {
		t.Fatal("DeadlockError names no blocked ranks")
	}
	seen := map[int]bool{}
	for _, r := range ranks {
		seen[r] = true
	}
	if !seen[2] {
		t.Errorf("DeadlockError %v does not name the wedged rank 2", derr)
	}
	for i := 1; i < len(ranks); i++ {
		if ranks[i-1] > ranks[i] {
			t.Errorf("BlockedRanks not sorted: %v", ranks)
		}
	}
	if derr.Error() == "" || derr.Deadline != 50*time.Millisecond {
		t.Errorf("malformed DeadlockError: %v", derr)
	}
}

func TestChaosDroppedMessageBecomesDeadlockError(t *testing.T) {
	// Drop rank 0's first message to rank 1: rank 1 blocks in Recv forever
	// and the watchdog must name it with the peer it waited on.
	err := pingPong(t, Options{
		Deadline: 50 * time.Millisecond,
		Fault:    &fault.Plan{Drop: []fault.Message{{Src: 0, Dst: 1, Seq: 0}}},
	})
	var derr *DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("dropped message returned %v, want a *DeadlockError", err)
	}
	foundRecv := false
	for _, op := range derr.Blocked {
		if op.Rank == 1 && op.Op == "recv" && op.Peer == 0 {
			foundRecv = true
		}
	}
	if !foundRecv {
		t.Errorf("DeadlockError %v does not show rank 1 blocked receiving from rank 0", derr)
	}
}

func TestChaosDelayedMessageStillCompletes(t *testing.T) {
	// A delay well under the deadline must not fail the run.
	err := pingPong(t, Options{
		Deadline: 2 * time.Second,
		Fault: &fault.Plan{Slow: []fault.Delay{
			{Message: fault.Message{Src: 0, Dst: 1, Seq: 0}, By: 10 * time.Millisecond},
		}},
	})
	if err != nil {
		t.Fatalf("delayed run failed: %v", err)
	}
}

func TestChaosFailedRankPropagatesInjectedError(t *testing.T) {
	// Rank 3 fails at its first op; the program must end (not hang: its
	// peers' rendezvous are freed by the watchdog) and the joined error
	// must carry the injected marker.
	err := pingPong(t, Options{
		Deadline: 50 * time.Millisecond,
		Fault:    &fault.Plan{Fail: &fault.RankFault{Rank: 3, AfterOps: 0}},
	})
	if err == nil {
		t.Fatal("failed rank produced no error")
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error %v does not wrap fault.ErrInjected", err)
	}
}

func TestChaosSubcommBarrierPoisoned(t *testing.T) {
	// Wedge a rank inside a subcommunicator barrier: the watchdog must
	// poison the group barrier too, not just the global one.
	err := RunWith(Options{
		Deadline: 50 * time.Millisecond,
		// Split's coordination barrier is not a counted rank op, so the
		// subcomm barrier is rank 1's op 0.
		Fault: &fault.Plan{Wedge: &fault.RankFault{Rank: 1, AfterOps: 0}},
	}, 4, nil, scc.Uniform(scc.Conf0), func(u *UE) error {
		sc, err := u.Split("half", u.Rank()%2, u.Rank())
		if err != nil {
			return err
		}
		return sc.Barrier()
	})
	var derr *DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("wedged subcomm returned %v, want a *DeadlockError", err)
	}
}

func TestRunWithRejectsNegativeDeadline(t *testing.T) {
	err := RunWith(Options{Deadline: -time.Second}, 2, nil, scc.Uniform(scc.Conf0),
		func(u *UE) error { return nil })
	if err == nil {
		t.Fatal("negative deadline accepted")
	}
}
