package rcce

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// BlockedOp describes one rank's communication operation that was still
// blocked when the deadline watchdog fired.
type BlockedOp struct {
	// Rank is the blocked UE and Op the operation it was inside
	// ("send", "recv", "barrier", "wedged:send", ...).
	Rank int
	Op   string
	// Peer is the counterpart rank of a point-to-point op; -1 for
	// barriers and collectives with no single peer.
	Peer int
	// For is how long the op had been blocked when the watchdog fired.
	For time.Duration
}

func (b BlockedOp) String() string {
	if b.Peer >= 0 {
		return fmt.Sprintf("rank %d %s(peer %d) blocked %v", b.Rank, b.Op, b.Peer, b.For.Round(time.Millisecond))
	}
	return fmt.Sprintf("rank %d %s blocked %v", b.Rank, b.Op, b.For.Round(time.Millisecond))
}

// DeadlockError is the structured error the watchdog converts a wedged
// program into: every operation still blocked past the deadline, named by
// rank and op, so a hung sweep reports *who* stopped the run instead of
// hanging it.
type DeadlockError struct {
	// Deadline is the per-operation bound that was exceeded.
	Deadline time.Duration
	// Blocked lists the stuck operations, sorted by rank.
	Blocked []BlockedOp
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rcce: deadlock: %d op(s) blocked past the %v deadline", len(e.Blocked), e.Deadline)
	for _, op := range e.Blocked {
		b.WriteString("; ")
		b.WriteString(op.String())
	}
	return b.String()
}

// BlockedRanks returns the sorted ranks named by the error.
func (e *DeadlockError) BlockedRanks() []int {
	ranks := make([]int, len(e.Blocked))
	for i, op := range e.Blocked {
		ranks[i] = op.Rank
	}
	return ranks
}

// watchdog observes the goroutine backend's blocked communication
// operations and aborts the whole program when any single op stays
// blocked past the deadline. Channel waiters observe the abort by
// selecting on `aborted`; barrier waiters are woken by poisoning every
// registered barrier (the poison callback). The DES backend has no
// watchdog goroutine: its deadline checks are virtual-time events.
type watchdog struct {
	deadline time.Duration
	rec      *obs.Recorder
	poison   func(error)

	mu      sync.Mutex
	blocked map[int]*blockedEntry // rank -> the op it is inside
	derr    *DeadlockError

	aborted chan struct{} // closed exactly once, when the deadline fires
	stop    chan struct{} // closed by halt() when Run finishes first
}

type blockedEntry struct {
	op    string
	peer  int
	since time.Time
}

func newWatchdog(deadline time.Duration, rec *obs.Recorder, poison func(error)) *watchdog {
	return &watchdog{
		deadline: deadline,
		rec:      rec,
		poison:   poison,
		blocked:  map[int]*blockedEntry{},
		aborted:  make(chan struct{}),
		stop:     make(chan struct{}),
	}
}

// enter registers the rank as blocked inside op. A rank runs one
// goroutine, so it has at most one blocked op at a time; re-entering
// (e.g. per chunk of a long message) refreshes the block timestamp, which
// makes the deadline a per-rendezvous bound rather than a per-message one.
func (w *watchdog) enter(rank int, op string, peer int) {
	w.mu.Lock()
	w.blocked[rank] = &blockedEntry{op: op, peer: peer, since: time.Now()}
	w.mu.Unlock()
}

// leave clears the rank's blocked record.
func (w *watchdog) leave(rank int) {
	w.mu.Lock()
	delete(w.blocked, rank)
	w.mu.Unlock()
}

// err returns the DeadlockError after the watchdog fired (nil before).
func (w *watchdog) err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.derr == nil {
		return nil
	}
	return w.derr
}

// halt stops the scan loop; called when Run's UEs all returned.
func (w *watchdog) halt() { close(w.stop) }

// run is the scan loop. It polls at a fraction of the deadline so a wedge
// is detected within ~1.25x the configured bound.
func (w *watchdog) run() {
	tick := w.deadline / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			if w.scan() {
				return
			}
		}
	}
}

// scan fires the abort if any op has been blocked past the deadline,
// returning true when the watchdog's job is done.
func (w *watchdog) scan() bool {
	now := time.Now()
	w.mu.Lock()
	blocked := len(w.blocked)
	overdue := false
	for _, e := range w.blocked {
		if now.Sub(e.since) >= w.deadline {
			overdue = true
			break
		}
	}
	if !overdue {
		w.mu.Unlock()
		if blocked > 0 {
			w.rec.Recordf(rcceTrack, "watchdog_tick", "watchdog tick",
				"%d op(s) blocked, none past the %v deadline", blocked, w.deadline)
		}
		return false
	}
	derr := &DeadlockError{Deadline: w.deadline}
	for rank, e := range w.blocked {
		derr.Blocked = append(derr.Blocked, BlockedOp{Rank: rank, Op: e.op, Peer: e.peer, For: now.Sub(e.since)})
	}
	sort.Slice(derr.Blocked, func(i, j int) bool { return derr.Blocked[i].Rank < derr.Blocked[j].Rank })
	w.derr = derr
	w.mu.Unlock()

	// Wake every waiter: channel ops select on aborted, barrier waiters
	// are poisoned and broadcast.
	w.rec.Record(rcceTrack, "deadlock", "watchdog fired", derr.Error())
	close(w.aborted)
	w.poison(derr)
	return true
}
