package rcce

import (
	"fmt"

	"repro/internal/scc"
)

// Shared memory. A part of the SCC's main memory is mapped into every
// core; RCCE exposes it through RCCE_shmalloc. Because the chip has no
// cache coherence, programs must take care to flush/synchronise around
// shared accesses - here a Barrier is the synchronisation point, and the
// slices returned by Shmalloc are plain Go memory shared by all UEs (the
// Go memory model makes the barrier a happens-before edge, mirroring the
// flush-then-synchronise discipline SCC code needs).

// Shmalloc returns the shared float64 slice registered under name, with n
// elements, allocating it on first use. Every UE calling Shmalloc with the
// same name receives the same slice; a size disagreement is an error.
// Callers must synchronise access with Barrier, like real SCC software
// coherence.
func (u *UE) Shmalloc(name string, n int) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("rcce: shmalloc of negative size %d", n)
	}
	c := u.comm
	c.shmMu.Lock()
	defer c.shmMu.Unlock()
	if s, ok := c.shm[name]; ok {
		if len(s) != n {
			return nil, fmt.Errorf("rcce: shmalloc %q size %d conflicts with existing %d", name, n, len(s))
		}
		return s, nil
	}
	s := make([]float64, n)
	c.shm[name] = s
	return s, nil
}

// ShmFree releases the shared allocation registered under name.
func (u *UE) ShmFree(name string) {
	c := u.comm
	c.shmMu.Lock()
	defer c.shmMu.Unlock()
	delete(c.shm, name)
}

// Power management. RCCE exposes the voltage/frequency controller; the
// paper's Section IV-D uses it to step tiles between 100 and 800 MHz.
// These methods adjust the Comm's frequency-domain record, which the power
// model (scc.FullSystemPower) and the timing simulator consume.

// SetTileMHz sets this UE's tile clock, affecting every core on the tile.
func (u *UE) SetTileMHz(mhz int) error {
	if mhz < 100 || mhz > 800 {
		return fmt.Errorf("rcce: tile clock %d MHz outside [100, 800]", mhz)
	}
	tile := u.comm.geom.TileOf(u.Core())
	u.comm.domMu.Lock()
	u.comm.tileMHz[tile] = mhz
	u.comm.domMu.Unlock()
	return nil
}

// TileMHz returns this UE's current tile clock.
func (u *UE) TileMHz() int {
	tile := u.comm.geom.TileOf(u.Core())
	u.comm.domMu.Lock()
	defer u.comm.domMu.Unlock()
	return u.comm.tileMHz[tile]
}

// Domains returns a snapshot of the chip's frequency domains. The record
// describes the real chip's 24 tiles: on the default geometry it is a
// faithful round-trip of the clocks Run was given plus any SetTileMHz
// adjustments; on custom geometries only the first 24 tiles are reported
// (the power model below is anchored to the real chip's measurements).
func (u *UE) Domains() scc.FreqDomains {
	u.comm.domMu.Lock()
	defer u.comm.domMu.Unlock()
	d := scc.FreqDomains{MeshMHz: u.comm.meshMHz, MemMHz: u.comm.memMHz}
	for t := range d.TileMHz {
		if t < len(u.comm.tileMHz) {
			d.TileMHz[t] = u.comm.tileMHz[t]
		} else {
			d.TileMHz[t] = u.comm.tileMHz[0]
		}
	}
	return d
}

// SystemPower returns the modelled full-system power under the current
// frequency domains.
func (u *UE) SystemPower() float64 {
	return scc.FullSystemPower(u.Domains())
}
