package rcce

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/scc"
)

func run(t *testing.T, n int, body func(*UE) error) {
	t.Helper()
	if err := Run(n, nil, scc.Uniform(scc.Conf0), body); err != nil {
		t.Fatal(err)
	}
}

func TestRunBasics(t *testing.T) {
	var count atomic.Int32
	run(t, 8, func(u *UE) error {
		count.Add(1)
		if u.Rank() < 0 || u.Rank() >= 8 {
			return fmt.Errorf("bad rank %d", u.Rank())
		}
		if u.NumUEs() != 8 {
			return fmt.Errorf("NumUEs = %d", u.NumUEs())
		}
		if u.Core() != scc.CoreID(u.Rank()) {
			return fmt.Errorf("default mapping rank %d -> core %d", u.Rank(), u.Core())
		}
		return nil
	})
	if count.Load() != 8 {
		t.Fatalf("%d UEs ran, want 8", count.Load())
	}
}

func TestRunValidatesArguments(t *testing.T) {
	body := func(*UE) error { return nil }
	if err := Run(0, nil, scc.Uniform(scc.Conf0), body); err == nil {
		t.Error("n=0 accepted")
	}
	if err := Run(49, nil, scc.Uniform(scc.Conf0), body); err == nil {
		t.Error("n=49 accepted")
	}
	if err := Run(4, scc.Mapping{0, 1}, scc.Uniform(scc.Conf0), body); err == nil {
		t.Error("short mapping accepted")
	}
	if err := Run(2, scc.Mapping{0, 0}, scc.Uniform(scc.Conf0), body); err == nil {
		t.Error("duplicate mapping accepted")
	}
}

func TestRunCollectsErrors(t *testing.T) {
	sentinel := errors.New("rank failure")
	err := Run(4, nil, scc.Uniform(scc.Conf0), func(u *UE) error {
		if u.Rank() == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	err := Run(2, nil, scc.Uniform(scc.Conf0), func(u *UE) error {
		if u.Rank() == 1 {
			panic("boom")
		}
		// Rank 0 must not block forever on a dead peer; do no comms.
		return nil
	})
	if err == nil {
		t.Fatal("panic not surfaced as error")
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	payload := []byte("hello from rank 0")
	run(t, 2, func(u *UE) error {
		if u.Rank() == 0 {
			return u.Send(payload, 1)
		}
		buf := make([]byte, len(payload))
		if err := u.Recv(buf, 0); err != nil {
			return err
		}
		if !bytes.Equal(buf, payload) {
			return fmt.Errorf("got %q", buf)
		}
		return nil
	})
}

func TestSendRecvLargePayloadChunks(t *testing.T) {
	// 3.5 MPB chunks force the chunked path.
	n := ChunkBytes*3 + ChunkBytes/2
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i * 31)
	}
	run(t, 2, func(u *UE) error {
		if u.Rank() == 0 {
			return u.Send(data, 1)
		}
		buf := make([]byte, n)
		if err := u.Recv(buf, 0); err != nil {
			return err
		}
		if !bytes.Equal(buf, data) {
			return errors.New("payload corrupted in chunked transfer")
		}
		return nil
	})
}

func TestSendRecvZeroLength(t *testing.T) {
	run(t, 2, func(u *UE) error {
		if u.Rank() == 0 {
			return u.Send(nil, 1)
		}
		return u.Recv(nil, 0)
	})
}

func TestSendRecvValidation(t *testing.T) {
	run(t, 2, func(u *UE) error {
		if u.Rank() != 0 {
			return nil
		}
		if err := u.Send([]byte("x"), 5); err == nil {
			return errors.New("send to rank 5 accepted")
		}
		if err := u.Send([]byte("x"), 0); err == nil {
			return errors.New("self-send accepted")
		}
		if err := u.Recv(make([]byte, 1), -1); err == nil {
			return errors.New("recv from -1 accepted")
		}
		if err := u.Recv(make([]byte, 1), 0); err == nil {
			return errors.New("self-recv accepted")
		}
		return nil
	})
}

func TestPingPongOrdering(t *testing.T) {
	// Messages between a pair preserve order.
	const k = 20
	run(t, 2, func(u *UE) error {
		if u.Rank() == 0 {
			for i := 0; i < k; i++ {
				if err := u.Send([]byte{byte(i)}, 1); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < k; i++ {
			b := make([]byte, 1)
			if err := u.Recv(b, 0); err != nil {
				return err
			}
			if b[0] != byte(i) {
				return fmt.Errorf("message %d arrived as %d", i, b[0])
			}
		}
		return nil
	})
}

func TestBarrierSynchronises(t *testing.T) {
	// Classic flag test: all UEs set a flag before the barrier; after
	// the barrier every UE must observe every flag.
	const n = 8
	flags := make([]atomic.Bool, n)
	run(t, n, func(u *UE) error {
		flags[u.Rank()].Store(true)
		u.Barrier()
		for i := 0; i < n; i++ {
			if !flags[i].Load() {
				return fmt.Errorf("rank %d missing flag %d after barrier", u.Rank(), i)
			}
		}
		return nil
	})
}

func TestBarrierReusable(t *testing.T) {
	const n, rounds = 6, 5
	counters := make([]atomic.Int32, rounds)
	run(t, n, func(u *UE) error {
		for r := 0; r < rounds; r++ {
			counters[r].Add(1)
			u.Barrier()
			if got := counters[r].Load(); got != n {
				return fmt.Errorf("round %d: %d arrivals visible after barrier", r, got)
			}
		}
		return nil
	})
}

func TestStatsCount(t *testing.T) {
	run(t, 2, func(u *UE) error {
		if u.Rank() == 0 {
			if err := u.Send(make([]byte, 100), 1); err != nil {
				return err
			}
		} else {
			if err := u.Recv(make([]byte, 100), 0); err != nil {
				return err
			}
		}
		u.Barrier()
		s := u.Stats()
		if s.Messages != 1 || s.Bytes != 100 || s.Barriers != 1 {
			return fmt.Errorf("stats = %+v", s)
		}
		return nil
	})
}

func TestWtimeAdvances(t *testing.T) {
	run(t, 1, func(u *UE) error {
		a := u.Wtime()
		for i := 0; i < 1000; i++ {
			_ = math.Sqrt(float64(i))
		}
		b := u.Wtime()
		if b < a {
			return errors.New("wtime went backwards")
		}
		return nil
	})
}

func TestCustomMapping(t *testing.T) {
	m := scc.DistanceReductionMapping(4)
	err := Run(4, m, scc.Uniform(scc.Conf0), func(u *UE) error {
		if u.Core() != m[u.Rank()] {
			return fmt.Errorf("rank %d on core %d, want %d", u.Rank(), u.Core(), m[u.Rank()])
		}
		if u.Hops() != 0 {
			return fmt.Errorf("distance-reduced rank %d has %d hops", u.Rank(), u.Hops())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
