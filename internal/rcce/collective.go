package rcce

import (
	"encoding/binary"
	"fmt"
	"math"
)

// barrierOn is the full-treatment barrier entry: fault-plan op accounting
// plus the engine's blocking/abort machinery (watchdog observation on the
// goroutine backend, virtual-time deadline checks on DES).
func (u *UE) barrierOn(b commBarrier, op string, onRelease func()) error {
	if err := u.preOp(op, -1); err != nil {
		return err
	}
	return b.wait(u, op, onRelease)
}

// Barrier blocks until every UE in the program has entered it, mirroring
// RCCE_barrier over the global communicator. It returns non-nil only when
// the robustness layer aborts the program (deadline watchdog fired or an
// injected rank fault hit this UE).
func (u *UE) Barrier() error {
	return u.barrierOn(u.comm.barrier, "barrier", func() { u.comm.bars.Add(1) })
}

// ReduceOp names a reduction operator.
type ReduceOp int

const (
	// OpSum adds the contributions.
	OpSum ReduceOp = iota
	// OpMax takes the maximum.
	OpMax
	// OpMin takes the minimum.
	OpMin
)

func (op ReduceOp) apply(a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	default:
		panic(fmt.Sprintf("rcce: unknown reduce op %d", op))
	}
}

// Bcast distributes root's buf to every UE (linear fan-out from the root,
// like RCCE_bcast's reference implementation). All UEs must pass buffers of
// the same length.
func (u *UE) Bcast(buf []byte, root int) error {
	if root < 0 || root >= u.comm.n {
		return fmt.Errorf("rcce: bcast with invalid root %d", root)
	}
	if u.comm.n == 1 {
		return nil
	}
	if u.rank == root {
		for r := 0; r < u.comm.n; r++ {
			if r == root {
				continue
			}
			if err := u.Send(buf, r); err != nil {
				return err
			}
		}
		return nil
	}
	return u.Recv(buf, root)
}

// Reduce combines every UE's vals elementwise with op into out at the root.
// Non-root UEs may pass out == nil. All vals slices must share a length.
func (u *UE) Reduce(op ReduceOp, vals []float64, out []float64, root int) error {
	if root < 0 || root >= u.comm.n {
		return fmt.Errorf("rcce: reduce with invalid root %d", root)
	}
	if u.rank != root {
		return u.Send(float64sToBytes(vals), root)
	}
	if len(out) != len(vals) {
		return fmt.Errorf("rcce: reduce root out length %d != vals length %d", len(out), len(vals))
	}
	copy(out, vals)
	tmp := make([]byte, 8*len(vals))
	for r := 0; r < u.comm.n; r++ {
		if r == root {
			continue
		}
		if err := u.Recv(tmp, r); err != nil {
			return err
		}
		other := bytesToFloat64s(tmp)
		for i := range out {
			out[i] = op.apply(out[i], other[i])
		}
	}
	return nil
}

// Allreduce performs Reduce at rank 0 followed by a broadcast, leaving the
// combined result in out on every UE.
func (u *UE) Allreduce(op ReduceOp, vals []float64, out []float64) error {
	if len(out) != len(vals) {
		return fmt.Errorf("rcce: allreduce out length %d != vals length %d", len(out), len(vals))
	}
	if u.rank == 0 {
		if err := u.Reduce(op, vals, out, 0); err != nil {
			return err
		}
	} else {
		if err := u.Reduce(op, vals, nil, 0); err != nil {
			return err
		}
	}
	buf := float64sToBytes(out)
	if err := u.Bcast(buf, 0); err != nil {
		return err
	}
	copy(out, bytesToFloat64s(buf))
	return nil
}

// Gather collects each UE's equal-sized vals into out at the root, ordered
// by rank. out must hold NumUEs*len(vals) elements at the root; other ranks
// may pass nil.
func (u *UE) Gather(vals []float64, out []float64, root int) error {
	if root < 0 || root >= u.comm.n {
		return fmt.Errorf("rcce: gather with invalid root %d", root)
	}
	if u.rank != root {
		return u.Send(float64sToBytes(vals), root)
	}
	if len(out) != u.comm.n*len(vals) {
		return fmt.Errorf("rcce: gather root out length %d != %d", len(out), u.comm.n*len(vals))
	}
	copy(out[root*len(vals):], vals)
	tmp := make([]byte, 8*len(vals))
	for r := 0; r < u.comm.n; r++ {
		if r == root {
			continue
		}
		if err := u.Recv(tmp, r); err != nil {
			return err
		}
		copy(out[r*len(vals):], bytesToFloat64s(tmp))
	}
	return nil
}

// SendFloat64s sends a float64 slice to dst.
func (u *UE) SendFloat64s(vals []float64, dst int) error {
	return u.Send(float64sToBytes(vals), dst)
}

// RecvFloat64s receives exactly len(out) float64s from src.
func (u *UE) RecvFloat64s(out []float64, src int) error {
	buf := make([]byte, 8*len(out))
	if err := u.Recv(buf, src); err != nil {
		return err
	}
	copy(out, bytesToFloat64s(buf))
	return nil
}

func float64sToBytes(vals []float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

func bytesToFloat64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// Scatter distributes equal-sized chunks of root's vals to every UE by
// rank order: UE r receives vals[r*len(out) : (r+1)*len(out)] into out.
// Non-root UEs may pass vals == nil.
func (u *UE) Scatter(vals []float64, out []float64, root int) error {
	if root < 0 || root >= u.comm.n {
		return fmt.Errorf("rcce: scatter with invalid root %d", root)
	}
	if u.rank != root {
		return u.RecvFloat64s(out, root)
	}
	if len(vals) != u.comm.n*len(out) {
		return fmt.Errorf("rcce: scatter root vals length %d != %d", len(vals), u.comm.n*len(out))
	}
	copy(out, vals[root*len(out):(root+1)*len(out)])
	for r := 0; r < u.comm.n; r++ {
		if r == root {
			continue
		}
		if err := u.SendFloat64s(vals[r*len(out):(r+1)*len(out)], r); err != nil {
			return err
		}
	}
	return nil
}
