package rcce

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// goroutineEngine is the original RCCE substrate and the semantic
// oracle the DES backend is tested against: one live goroutine per UE,
// unbuffered per-pair channels for the synchronous rendezvous, and a
// wall-clock watchdog polling the blocked-op table.
type goroutineEngine struct {
	c *Comm

	// chans holds the per-ordered-pair rendezvous channels; chansMu
	// guards the table (channels are created lazily on first use).
	chans   map[pairKey]chan []byte
	chansMu sync.Mutex

	// watch is the deadline watchdog (nil when no deadline is armed).
	watch *watchdog
}

func newGoroutineEngine(c *Comm) *goroutineEngine {
	e := &goroutineEngine{c: c, chans: make(map[pairKey]chan []byte)}
	if c.deadline > 0 {
		e.watch = newWatchdog(c.deadline, c.rec, c.poisonBarriers)
	}
	return e
}

func (e *goroutineEngine) run(body func(*UE) error) error {
	c := e.c
	if e.watch != nil {
		// The watchdog is a supervisor, not a worker: it must keep
		// scanning while every UE goroutine is blocked, which is exactly
		// the situation a pool-dispatched task could not observe.
		go e.watch.run() //sccvet:allow bare-goroutine deadline watchdog must run outside the pool it supervises; it only reads the blocked-op table and never touches results
	}
	errs := make([]error, c.n)
	var wg sync.WaitGroup
	for r := 0; r < c.n; r++ {
		wg.Add(1)
		// UEs *are* the simulated cores of the RCCE thread model: their
		// concurrency is the semantics under test, not host fan-out.
		go func(rank int) { //sccvet:allow bare-goroutine UEs are the RCCE thread model itself, not host work distribution; Run joins them all before returning
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("rcce: UE %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = body(&UE{comm: c, rank: rank})
		}(r)
	}
	wg.Wait()
	if e.watch != nil {
		e.watch.halt()
	}
	return errors.Join(errs...)
}

// channel returns the rendezvous channel for the ordered pair (src, dst).
// Channels are unbuffered: a send blocks until the receiver arrives, which
// is RCCE's synchronous point-to-point semantics.
func (e *goroutineEngine) channel(src, dst int) chan []byte {
	e.chansMu.Lock()
	defer e.chansMu.Unlock()
	k := pairKey{src, dst}
	ch, ok := e.chans[k]
	if !ok {
		ch = make(chan []byte)
		e.chans[k] = ch
	}
	return ch
}

// sendChunk moves one chunk through the pair channel, honouring the
// watchdog deadline when one is armed.
func (e *goroutineEngine) sendChunk(u *UE, dst int, chunk []byte) error {
	ch := e.channel(u.rank, dst)
	w := e.watch
	if w == nil {
		ch <- chunk
		return nil
	}
	w.enter(u.rank, "send", dst)
	defer w.leave(u.rank)
	select {
	case ch <- chunk:
		return nil
	case <-w.aborted:
		return w.err()
	}
}

// recvChunk receives one chunk from the pair channel, honouring the
// watchdog deadline when one is armed.
func (e *goroutineEngine) recvChunk(u *UE, src int) ([]byte, error) {
	ch := e.channel(src, u.rank)
	w := e.watch
	if w == nil {
		return <-ch, nil
	}
	w.enter(u.rank, "recv", src)
	defer w.leave(u.rank)
	select {
	case chunk := <-ch:
		return chunk, nil
	case <-w.aborted:
		return nil, w.err()
	}
}

// delay blocks the rank for an injected message latency. It is a
// watchdog-visible "delay" op: the deadline applies to the sleep and an
// abort interrupts it (a bare time.Sleep here used to survive a
// watchdog fire and then still perform its rendezvous).
func (e *goroutineEngine) delay(u *UE, peer int, d time.Duration) error {
	w := e.watch
	if w == nil {
		// No watchdog armed: block-forever semantics, nothing can abort
		// the program, so an uninterruptible sleep is faithful.
		time.Sleep(d) //sccvet:allow lock-across-blocking no watchdog armed: nothing exists to interrupt the injected latency, matching block-forever semantics
		return nil
	}
	w.enter(u.rank, "delay", peer)
	defer w.leave(u.rank)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-w.aborted:
		return w.err()
	}
}

// park blocks the rank as a wedged op. With a watchdog it returns the
// DeadlockError once the deadline fires; without one it blocks forever.
func (e *goroutineEngine) park(u *UE, op string, peer int) error {
	w := e.watch
	if w == nil {
		select {} // wedged with no watchdog: hung hardware, hung program
	}
	w.enter(u.rank, op, peer)
	defer w.leave(u.rank)
	<-w.aborted
	return w.err()
}

// wtime is monotonic-safe wall time since the program started: the
// clamped obs clock seam keeps a stepped wall clock from producing a
// negative RCCE_wtime reading.
func (e *goroutineEngine) wtime() float64 {
	return obs.Since(e.c.started).Seconds()
}

func (e *goroutineEngine) isend(u *UE, buf []byte, dst int) *Request {
	req := newRequest("isend")
	// The progress goroutine stands in for iRCCE's asynchronous engine; it
	// must block on the rendezvous independently of the issuing UE, which a
	// pool task (one of finitely many workers) cannot.
	go func() { //sccvet:allow bare-goroutine iRCCE progress engine: completion is joined through Request.Wait/Test, never left dangling
		req.finish(u.Send(buf, dst))
	}()
	return req
}

func (e *goroutineEngine) irecv(u *UE, buf []byte, src int) *Request {
	req := newRequest("irecv")
	go func() { //sccvet:allow bare-goroutine iRCCE progress engine: completion is joined through Request.Wait/Test, never left dangling
		req.finish(u.Recv(buf, src))
	}()
	return req
}

// newBarrier returns the goroutine backend's cond-based counting
// barrier, with the watchdog observing every blocked participant.
func (e *goroutineEngine) newBarrier(n int) commBarrier {
	b := &gBarrier{e: e, n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// gBarrier is a reusable counting barrier for the goroutine backend.
type gBarrier struct {
	e      *goroutineEngine
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	phase  uint64
	poison error
}

func (b *gBarrier) wait(u *UE, op string, onRelease func()) error {
	if w := b.e.watch; w != nil {
		w.enter(u.rank, op, -1)
		defer w.leave(u.rank)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poison != nil {
		return b.poison
	}
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		if onRelease != nil {
			onRelease()
		}
		b.cond.Broadcast()
		return nil
	}
	for b.phase == phase && b.poison == nil {
		b.cond.Wait()
	}
	if b.phase == phase {
		return b.poison
	}
	return nil
}

func (b *gBarrier) poisonWith(err error) {
	b.mu.Lock()
	if b.poison == nil {
		b.poison = err
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}
