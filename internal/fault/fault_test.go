package fault

import (
	"errors"
	"testing"
	"time"
)

func TestNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	if a := p.OnRankOp(0, 0); a != ActNone {
		t.Fatalf("nil plan rank action = %v", a)
	}
	if drop, delay := p.OnMessage(0, 1, 0); drop || delay != 0 {
		t.Fatalf("nil plan message action = %v %v", drop, delay)
	}
	if err := p.MatrixError(1001, "m"); err != nil {
		t.Fatalf("nil plan matrix error = %v", err)
	}
	if err := p.CellError("m", 0); err != nil {
		t.Fatalf("nil plan cell error = %v", err)
	}
	zero := &Plan{}
	if a := zero.OnRankOp(0, 0); a != ActNone {
		t.Fatalf("zero plan rank action = %v", a)
	}
}

func TestRankFaultMatching(t *testing.T) {
	p := &Plan{
		Wedge: &RankFault{Rank: 2, AfterOps: 3},
		Fail:  &RankFault{Rank: 1, AfterOps: 0},
	}
	if a := p.OnRankOp(2, 3); a != ActWedge {
		t.Fatalf("wedge not matched: %v", a)
	}
	if a := p.OnRankOp(1, 0); a != ActFail {
		t.Fatalf("fail not matched: %v", a)
	}
	for _, c := range [][2]int{{2, 2}, {2, 4}, {0, 3}, {1, 1}} {
		if a := p.OnRankOp(c[0], c[1]); a != ActNone {
			t.Fatalf("rank %d seq %d matched spuriously: %v", c[0], c[1], a)
		}
	}
}

func TestMessageMatching(t *testing.T) {
	p := &Plan{
		Drop: []Message{{Src: 0, Dst: 1, Seq: 2}},
		Slow: []Delay{{Message: Message{Src: 3, Dst: 0, Seq: 0}, By: 5 * time.Millisecond}},
	}
	if drop, _ := p.OnMessage(0, 1, 2); !drop {
		t.Fatal("drop not matched")
	}
	if drop, delay := p.OnMessage(3, 0, 0); drop || delay != 5*time.Millisecond {
		t.Fatalf("delay not matched: %v %v", drop, delay)
	}
	if drop, delay := p.OnMessage(1, 0, 2); drop || delay != 0 {
		t.Fatal("reversed pair matched spuriously")
	}
	// Drop wins when both match the same message.
	both := &Plan{
		Drop: []Message{{Src: 0, Dst: 1, Seq: 0}},
		Slow: []Delay{{Message: Message{Src: 0, Dst: 1, Seq: 0}, By: time.Second}},
	}
	if drop, delay := both.OnMessage(0, 1, 0); !drop || delay != 0 {
		t.Fatalf("drop should win over delay: %v %v", drop, delay)
	}
}

func TestMatrixAndCellErrors(t *testing.T) {
	p := &Plan{MatrixSeed: 1005, Cell: &Cell{MatrixPrefix: "gupta3", Index: 2}}
	if err := p.MatrixError(1005, "gupta3@0.25"); !errors.Is(err, ErrInjected) {
		t.Fatalf("matrix fault = %v", err)
	}
	if err := p.MatrixError(1004, "other"); err != nil {
		t.Fatalf("wrong seed matched: %v", err)
	}
	if err := p.CellError("gupta3@0.25", 2); !errors.Is(err, ErrInjected) {
		t.Fatalf("cell fault = %v", err)
	}
	if err := p.CellError("gupta3@0.25", 1); err != nil {
		t.Fatalf("wrong cell matched: %v", err)
	}
	if err := p.CellError("F1@0.25", 2); err != nil {
		t.Fatalf("wrong matrix matched: %v", err)
	}
	anyCell := &Plan{Cell: &Cell{Index: -1}}
	if err := anyCell.CellError("anything", 7); !errors.Is(err, ErrInjected) {
		t.Fatalf("wildcard cell did not match: %v", err)
	}
}
