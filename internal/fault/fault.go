// Package fault is the deterministic fault-injection harness behind the
// chaos tests: a Plan describes exactly which communication operation,
// message, matrix generation or simulation cell fails, and the RCCE
// runtime (internal/rcce) and experiment engine (internal/experiments)
// consult it at well-defined points. A nil or zero-value Plan injects
// nothing, so production paths pay one nil check.
//
// Plans are immutable once handed to a runtime: all matching state (op
// sequence numbers, per-pair message counters) lives in the consumer, so
// the same Plan can drive repeated runs and every run sees the same
// faults at the same points.
package fault

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// ErrInjected marks every failure this package fabricates, so tests and
// error tables can tell injected faults from genuine engine errors with
// errors.Is.
var ErrInjected = errors.New("injected fault")

// RankFault pins a fault to one RCCE rank's AfterOps-th communication
// operation. Sends, receives and barriers all count, in the rank's own
// program order, starting at 0.
type RankFault struct {
	Rank     int
	AfterOps int
}

// Message identifies one point-to-point message by its (src, dst) pair
// and per-pair sequence number: Seq 0 is the pair's first Send call.
type Message struct {
	Src, Dst, Seq int
}

// Delay matches a message like Message and delivers it late by By.
type Delay struct {
	Message
	By time.Duration
}

// Cell pins a fault to one (matrix, grid-cell) simulation cell of an
// experiment sweep.
type Cell struct {
	// MatrixPrefix matches generated matrix names by prefix, so "gupta3"
	// also matches the scaled "gupta3@0.25". Empty matches every matrix.
	MatrixPrefix string
	// Index is the cell index within the experiment grid; a negative
	// index matches every cell of the matched matrix.
	Index int
}

// RankAction is what a rank must do at one of its operations.
type RankAction int

const (
	// ActNone proceeds normally.
	ActNone RankAction = iota
	// ActWedge blocks the rank forever, simulating hung hardware; only a
	// deadline watchdog can convert it into a structured DeadlockError.
	ActWedge
	// ActFail makes the operation return ErrInjected mid-iteration.
	ActFail
)

// Plan is a deterministic fault-injection schedule. The zero value (and a
// nil *Plan) injects nothing; every field arms one fault class.
type Plan struct {
	// Wedge blocks the matched rank forever at the matched op.
	Wedge *RankFault
	// Fail makes the matched rank's op return ErrInjected.
	Fail *RankFault
	// Drop lists messages that silently vanish: the Send completes but
	// nothing is delivered, so the receiver blocks (and, under a
	// deadline, surfaces in the watchdog's DeadlockError).
	Drop []Message
	// Slow lists messages delivered late by their Delay.
	Slow []Delay
	// MatrixSeed errors the generation of the testbed entry carrying
	// that deterministic generator seed (0 = none; see
	// sparse.TestbedEntry.Seed).
	MatrixSeed int64
	// Cell errors one simulation cell of an experiment grid.
	Cell *Cell
	// WedgeCell deadlocks the matched cell: instead of erroring cleanly
	// the cell runs a communication program whose peer rank hangs, so
	// the failure the job surfaces is a genuine watchdog DeadlockError -
	// the scenario the flight recorder exists for.
	WedgeCell *Cell
}

// matches reports whether the (matrix, cell) pair is pinned by c.
func (c *Cell) matches(matrix string, cell int) bool {
	if c == nil {
		return false
	}
	if c.MatrixPrefix != "" && !strings.HasPrefix(matrix, c.MatrixPrefix) {
		return false
	}
	return c.Index < 0 || c.Index == cell
}

// OnRankOp reports what the rank must do at its seq-th communication
// operation. Nil-safe.
func (p *Plan) OnRankOp(rank, seq int) RankAction {
	if p == nil {
		return ActNone
	}
	if p.Wedge != nil && p.Wedge.Rank == rank && p.Wedge.AfterOps == seq {
		return ActWedge
	}
	if p.Fail != nil && p.Fail.Rank == rank && p.Fail.AfterOps == seq {
		return ActFail
	}
	return ActNone
}

// OnMessage reports whether the seq-th message from src to dst is dropped
// and by how much it is delayed (at most one applies; drop wins). Nil-safe.
func (p *Plan) OnMessage(src, dst, seq int) (drop bool, delay time.Duration) {
	if p == nil {
		return false, 0
	}
	for _, m := range p.Drop {
		if m.Src == src && m.Dst == dst && m.Seq == seq {
			return true, 0
		}
	}
	for _, d := range p.Slow {
		if d.Src == src && d.Dst == dst && d.Seq == seq {
			return false, d.By
		}
	}
	return false, 0
}

// MatrixError returns the injected generation error for the testbed entry
// with the given seed, or nil. Nil-safe.
func (p *Plan) MatrixError(seed int64, name string) error {
	if p == nil || p.MatrixSeed == 0 || p.MatrixSeed != seed {
		return nil
	}
	return fmt.Errorf("fault: matrix %s (seed %d): %w", name, seed, ErrInjected)
}

// CellError returns the injected error for grid cell index `cell` running
// on the named (possibly scale-suffixed) matrix, or nil. Nil-safe.
func (p *Plan) CellError(matrix string, cell int) error {
	if p == nil || !p.Cell.matches(matrix, cell) {
		return nil
	}
	return fmt.Errorf("fault: cell %d on matrix %s: %w", cell, matrix, ErrInjected)
}

// CellWedged reports whether the matched cell must deadlock instead of
// computing (see Plan.WedgeCell). Nil-safe.
func (p *Plan) CellWedged(matrix string, cell int) bool {
	return p != nil && p.WedgeCell.matches(matrix, cell)
}
