// Package tune is an offline autotuner built on the simulator: for a given
// matrix and core count it evaluates the storage formats and partitioning
// schemes the library implements and recommends the fastest combination.
// It operationalises the paper's concluding "guidelines for understanding
// and optimisation of the SpMV kernel on this architecture".
package tune

import (
	"fmt"
	"sort"

	"repro/internal/partition"
	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/sparse"
)

// Candidate is one evaluated configuration.
type Candidate struct {
	// Format names the storage format ("csr", "ell", "bcsr2x2").
	Format string
	// Scheme is the partitioning scheme (CSR only; fixed splits
	// otherwise).
	Scheme partition.Scheme
	// MFLOPS is the simulated throughput (useful flops).
	MFLOPS float64
	// Note carries disqualification or normalisation remarks.
	Note string
}

// Result is the autotuner's report.
type Result struct {
	Matrix string
	Cores  int
	// Best is the winning candidate.
	Best Candidate
	// Candidates lists every evaluated configuration, fastest first.
	Candidates []Candidate
	// MappingGain is the distance-reduction speedup over the standard
	// mapping for the winning format.
	MappingGain float64
	// XBound reports whether the no-x-miss probe ran >=25% faster -
	// the paper's signal that locality optimisation (reordering,
	// blocking) is where the time is.
	XBound bool
}

// Tune evaluates the candidate space for a matrix at the given core count
// on the machine configuration cc.
func Tune(a *sparse.CSR, cores int, cc scc.ClockConfig) (*Result, error) {
	if cores <= 0 || cores > scc.NumCores {
		return nil, fmt.Errorf("tune: %d cores outside [1, %d]", cores, scc.NumCores)
	}
	m := sim.NewMachine(cc)
	mapping := scc.DistanceReductionMapping(cores)
	res := &Result{Matrix: a.Name, Cores: cores}

	// CSR with each partitioning scheme.
	for _, s := range []partition.Scheme{partition.SchemeByNNZ, partition.SchemeByRows, partition.SchemeCyclic} {
		r, err := m.RunSpMV(a, nil, sim.Options{Mapping: mapping, Scheme: s})
		if err != nil {
			return nil, err
		}
		res.Candidates = append(res.Candidates, Candidate{
			Format: "csr", Scheme: s, MFLOPS: r.MFLOPS,
		})
	}

	// ELLPACK, when padding is tolerable.
	if ell, err := sparse.ToELL(a, 3); err == nil {
		r, err := m.RunELL(ell, cores)
		if err != nil {
			return nil, err
		}
		res.Candidates = append(res.Candidates, Candidate{
			Format: "ell", Scheme: partition.SchemeByRows, MFLOPS: r.MFLOPS,
		})
	} else {
		res.Candidates = append(res.Candidates, Candidate{
			Format: "ell", Scheme: partition.SchemeByRows,
			Note: "disqualified: " + err.Error(),
		})
	}

	// DIA, when the diagonal count is tolerable.
	if d, err := sparse.ToDIA(a, 512); err == nil {
		r, err := m.RunDIA(d, cores)
		if err != nil {
			return nil, err
		}
		res.Candidates = append(res.Candidates, Candidate{
			Format: "dia", Scheme: partition.SchemeByRows, MFLOPS: r.MFLOPS,
			Note: fmt.Sprintf("%d diagonals", len(d.Offsets)),
		})
	} else {
		res.Candidates = append(res.Candidates, Candidate{
			Format: "dia", Scheme: partition.SchemeByRows,
			Note: "disqualified: " + err.Error(),
		})
	}

	// HYB at the 2/3 quantile.
	if hyb, err := sparse.ToHYB(a, 0.66); err == nil {
		r, err := m.RunHYB(hyb, cores)
		if err != nil {
			return nil, err
		}
		res.Candidates = append(res.Candidates, Candidate{
			Format: "hyb", Scheme: partition.SchemeByRows, MFLOPS: r.MFLOPS,
			Note: fmt.Sprintf("tail %.0f%%", 100*hyb.TailFraction()),
		})
	}

	// Blocked CSR 2x2, normalised to useful flops.
	b := sparse.ToBCSR(a, 2, 2)
	rb, err := m.RunBCSR(b, cores)
	if err != nil {
		return nil, err
	}
	fill := b.FillRatio(a.NNZ())
	res.Candidates = append(res.Candidates, Candidate{
		Format: "bcsr2x2", Scheme: partition.SchemeByRows,
		MFLOPS: rb.MFLOPS / fill,
		Note:   fmt.Sprintf("fill %.2f", fill),
	})

	sort.Slice(res.Candidates, func(i, j int) bool {
		return res.Candidates[i].MFLOPS > res.Candidates[j].MFLOPS
	})
	res.Best = res.Candidates[0]
	if res.Best.MFLOPS == 0 {
		return nil, fmt.Errorf("tune: no viable candidate for %s", a.Name)
	}

	// Diagnostics: mapping gain and x-boundedness.
	std, err := m.RunSpMV(a, nil, sim.Options{Mapping: scc.StandardMapping(cores)})
	if err != nil {
		return nil, err
	}
	dr, err := m.RunSpMV(a, nil, sim.Options{Mapping: mapping})
	if err != nil {
		return nil, err
	}
	res.MappingGain = dr.MFLOPS / std.MFLOPS
	nox, err := m.RunSpMV(a, nil, sim.Options{Mapping: mapping, Variant: sim.KernelNoXMiss})
	if err != nil {
		return nil, err
	}
	res.XBound = nox.MFLOPS >= 1.25*dr.MFLOPS
	return res, nil
}

// Guidelines renders the paper-style advice derived from a tuning result.
func (r *Result) Guidelines() []string {
	var out []string
	out = append(out, fmt.Sprintf("use %s storage with the %s partition (%.0f MFLOPS at %d cores)",
		r.Best.Format, r.Best.Scheme, r.Best.MFLOPS, r.Cores))
	if r.MappingGain > 1.02 {
		out = append(out, fmt.Sprintf("map UEs to cores near their memory controller (%.0f%% gain)",
			100*(r.MappingGain-1)))
	} else {
		out = append(out, "placement is not critical for this matrix at this scale")
	}
	if r.XBound {
		out = append(out, "the kernel is bound by irregular x accesses: consider reordering (RCM) or cache blocking")
	} else {
		out = append(out, "x accesses are not the bottleneck; bandwidth/loop overheads dominate")
	}
	return out
}
