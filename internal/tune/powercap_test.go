package tune

import (
	"testing"

	"repro/internal/scc"
	"repro/internal/sparse"
)

func sweepFixture(t *testing.T) []ConfigPoint {
	t.Helper()
	a := sparse.Generate(sparse.Gen{
		Name: "pc", Class: sparse.PatternStencil3D, N: 8000, NNZTarget: 160000, Seed: 30,
	})
	points, err := SweepConfigs(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	return points
}

func TestSweepConfigsCoversGrid(t *testing.T) {
	points := sweepFixture(t)
	if len(points) != len(tileClockGrid)*4 {
		t.Fatalf("points = %d, want %d", len(points), len(tileClockGrid)*4)
	}
	// Sorted by watts; all positive.
	prev := 0.0
	for _, p := range points {
		if p.Watts < prev {
			t.Fatal("points not sorted by watts")
		}
		if p.MFLOPS <= 0 || p.Watts <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
		prev = p.Watts
	}
}

func TestSweepConfigsValidation(t *testing.T) {
	a := sparse.Identity(16)
	if _, err := SweepConfigs(a, 0); err == nil {
		t.Error("0 cores accepted")
	}
	if _, err := SweepConfigs(a, 49); err == nil {
		t.Error("49 cores accepted")
	}
}

func TestBestUnderBudget(t *testing.T) {
	points := sweepFixture(t)
	// A generous budget admits the fastest configuration overall.
	best, err := BestUnderBudget(points, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.MFLOPS > best.MFLOPS {
			t.Fatalf("budget 1000 W should admit the global best (%+v beats %+v)", p, best)
		}
	}
	// A tight budget forces a slower configuration.
	tight, err := BestUnderBudget(points, points[0].Watts+1)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Watts > points[0].Watts+1 {
		t.Fatalf("budget violated: %+v", tight)
	}
	if tight.MFLOPS > best.MFLOPS {
		t.Fatal("tight budget cannot beat the unconstrained best")
	}
	// An impossible budget errors.
	if _, err := BestUnderBudget(points, 1); err == nil {
		t.Fatal("1 W budget accepted")
	}
}

func TestBudgetMonotonicity(t *testing.T) {
	points := sweepFixture(t)
	prev := -1.0
	for _, budget := range []float64{65, 75, 85, 95, 105, 120} {
		best, err := BestUnderBudget(points, budget)
		if err != nil {
			continue // below the floor
		}
		if best.MFLOPS < prev {
			t.Fatalf("more budget, less performance at %.0f W", budget)
		}
		prev = best.MFLOPS
	}
	if prev < 0 {
		t.Fatal("no budget admitted any configuration")
	}
}

func TestParetoFrontier(t *testing.T) {
	points := sweepFixture(t)
	front := ParetoFrontier(points)
	if len(front) == 0 || len(front) > len(points) {
		t.Fatalf("frontier size %d", len(front))
	}
	// Strictly increasing in both axes.
	for i := 1; i < len(front); i++ {
		if front[i].Watts < front[i-1].Watts || front[i].MFLOPS <= front[i-1].MFLOPS {
			t.Fatalf("frontier not monotone at %d: %+v after %+v", i, front[i], front[i-1])
		}
	}
	// No point dominates a frontier point.
	for _, f := range front {
		for _, p := range points {
			if p.Watts <= f.Watts && p.MFLOPS > f.MFLOPS {
				t.Fatalf("%+v dominates frontier point %+v", p, f)
			}
		}
	}
}

func TestConfigPointEfficiency(t *testing.T) {
	p := ConfigPoint{MFLOPS: 500, Watts: 100}
	if p.EfficiencyMFLOPSPerWatt() != 5 {
		t.Fatal("efficiency arithmetic")
	}
	if (ConfigPoint{}).EfficiencyMFLOPSPerWatt() != 0 {
		t.Fatal("zero watts must not divide")
	}
}

func TestPaperConfigsOnTheFrontierNeighborhood(t *testing.T) {
	// conf0's clocks must be within the sweep's wattage span, and the
	// frontier must include a point at or above conf1's performance for
	// conf1-level power.
	points := sweepFixture(t)
	p0 := scc.ConfigPower(scc.Conf0)
	if p0 < points[0].Watts || p0 > points[len(points)-1].Watts {
		t.Fatalf("conf0 power %.1f outside sweep span [%.1f, %.1f]",
			p0, points[0].Watts, points[len(points)-1].Watts)
	}
}
