package tune

import (
	"strings"
	"testing"

	"repro/internal/partition"
	"repro/internal/scc"
	"repro/internal/sparse"
)

func TestTuneRegularMatrix(t *testing.T) {
	a := sparse.Generate(sparse.Gen{Name: "reg", Class: sparse.PatternStencil2D, N: 6000, NNZTarget: 60000, Seed: 1})
	r, err := Tune(a, 8, scc.Conf0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Best.MFLOPS <= 0 {
		t.Fatal("no winner")
	}
	// Candidates sorted descending.
	for i := 1; i < len(r.Candidates); i++ {
		if r.Candidates[i].MFLOPS > r.Candidates[i-1].MFLOPS {
			t.Fatal("candidates not sorted")
		}
	}
	// CSR bynnz must be among the evaluated candidates.
	found := false
	for _, c := range r.Candidates {
		if c.Format == "csr" && c.Scheme == partition.SchemeByNNZ {
			found = true
		}
	}
	if !found {
		t.Fatal("csr/bynnz missing from the candidate list")
	}
	if r.MappingGain < 0.9 {
		t.Fatalf("mapping gain %.2f nonsensical", r.MappingGain)
	}
}

func TestTuneIrregularMatrixIsXBound(t *testing.T) {
	a := sparse.Generate(sparse.Gen{Name: "irr", Class: sparse.PatternRandom, N: 20000, NNZTarget: 500000, Seed: 2})
	r, err := Tune(a, 8, scc.Conf0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.XBound {
		t.Fatal("random matrix not flagged as x-bound")
	}
	g := r.Guidelines()
	joined := strings.Join(g, "\n")
	if !strings.Contains(joined, "reordering") {
		t.Fatalf("guidelines missing locality advice:\n%s", joined)
	}
}

func TestTuneLocalMatrixNotXBound(t *testing.T) {
	a := sparse.Generate(sparse.Gen{Name: "loc", Class: sparse.PatternBanded, N: 6000, NNZTarget: 90000, Bandwidth: 32, Seed: 3})
	r, err := Tune(a, 8, scc.Conf0)
	if err != nil {
		t.Fatal(err)
	}
	if r.XBound {
		t.Fatal("banded matrix flagged as x-bound")
	}
	joined := strings.Join(r.Guidelines(), "\n")
	if !strings.Contains(joined, "not the bottleneck") {
		t.Fatalf("guidelines wrong:\n%s", joined)
	}
}

func TestTuneDisqualifiesELLOnHeavyTail(t *testing.T) {
	a := sparse.Generate(sparse.Gen{Name: "pl", Class: sparse.PatternPowerLaw, N: 8000, NNZTarget: 60000, Seed: 4})
	st := sparse.ComputeStats(a)
	if float64(st.MaxRow) < 3*st.NNZPerRow {
		t.Skip("no heavy tail at this size")
	}
	r, err := Tune(a, 8, scc.Conf0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Candidates {
		if c.Format == "ell" && c.MFLOPS == 0 && !strings.Contains(c.Note, "disqualified") {
			t.Fatalf("ELL zero-score without disqualification note: %+v", c)
		}
	}
}

func TestTuneValidation(t *testing.T) {
	a := sparse.Identity(8)
	if _, err := Tune(a, 0, scc.Conf0); err == nil {
		t.Error("0 cores accepted")
	}
	if _, err := Tune(a, 49, scc.Conf0); err == nil {
		t.Error("49 cores accepted")
	}
}

func TestGuidelinesAlwaysThreeLines(t *testing.T) {
	a := sparse.Laplacian2D(60)
	r, err := Tune(a, 4, scc.Conf1)
	if err != nil {
		t.Fatal(err)
	}
	if g := r.Guidelines(); len(g) != 3 {
		t.Fatalf("guidelines = %d lines: %v", len(g), g)
	}
}
