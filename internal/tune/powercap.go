package tune

import (
	"fmt"
	"sort"

	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/sparse"
)

// Power capping: the natural extension of the paper's Section IV-D. Given a
// watt budget, pick the chip configuration (tile clock x mesh clock x
// memory clock) that maximises SpMV throughput without exceeding the
// budget, and expose the whole performance/power Pareto frontier.

// ConfigPoint is one evaluated chip configuration.
type ConfigPoint struct {
	Config scc.ClockConfig
	// MFLOPS is the simulated throughput of the workload.
	MFLOPS float64
	// Watts is the modelled full-system power.
	Watts float64
}

// EfficiencyMFLOPSPerWatt returns the point's MFLOPS/W.
func (p ConfigPoint) EfficiencyMFLOPSPerWatt() float64 {
	if p.Watts <= 0 {
		return 0
	}
	return p.MFLOPS / p.Watts
}

// tileClockGrid is the evaluated subset of the SCC's 100-800 MHz range.
var tileClockGrid = []int{100, 200, 320, 400, 533, 640, 800}

// SweepConfigs simulates the workload (matrix at the given core count)
// under every combination of tile clock grid x {800,1600} mesh x
// {800,1066} memory and returns the points sorted by watts ascending.
func SweepConfigs(a *sparse.CSR, cores int) ([]ConfigPoint, error) {
	if cores <= 0 || cores > scc.NumCores {
		return nil, fmt.Errorf("tune: %d cores outside [1, %d]", cores, scc.NumCores)
	}
	mapping := scc.DistanceReductionMapping(cores)
	var points []ConfigPoint
	for _, coreMHz := range tileClockGrid {
		for _, meshMHz := range []int{800, 1600} {
			for _, memMHz := range []int{800, 1066} {
				cc := scc.ClockConfig{CoreMHz: coreMHz, MeshMHz: meshMHz, MemMHz: memMHz}
				m := sim.NewMachine(cc)
				r, err := m.RunSpMV(a, nil, sim.Options{Mapping: mapping})
				if err != nil {
					return nil, err
				}
				points = append(points, ConfigPoint{
					Config: cc,
					MFLOPS: r.MFLOPS,
					Watts:  scc.ConfigPower(cc),
				})
			}
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Watts < points[j].Watts })
	return points, nil
}

// BestUnderBudget returns the highest-throughput configuration whose
// modelled power stays within budgetWatts, or an error when even the
// slowest configuration exceeds it.
func BestUnderBudget(points []ConfigPoint, budgetWatts float64) (ConfigPoint, error) {
	best := ConfigPoint{}
	found := false
	for _, p := range points {
		if p.Watts > budgetWatts {
			continue
		}
		if !found || p.MFLOPS > best.MFLOPS {
			best = p
			found = true
		}
	}
	if !found {
		return ConfigPoint{}, fmt.Errorf("tune: no configuration fits %.1f W (minimum is %.1f W)",
			budgetWatts, minWatts(points))
	}
	return best, nil
}

// ParetoFrontier filters the points to the performance/power frontier:
// a point survives when no other point is both cheaper (or equal) and
// faster. The result is sorted by watts ascending, MFLOPS strictly
// increasing.
func ParetoFrontier(points []ConfigPoint) []ConfigPoint {
	sorted := append([]ConfigPoint(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Watts != sorted[j].Watts {
			return sorted[i].Watts < sorted[j].Watts
		}
		return sorted[i].MFLOPS > sorted[j].MFLOPS
	})
	var out []ConfigPoint
	bestSoFar := -1.0
	for _, p := range sorted {
		if p.MFLOPS > bestSoFar {
			out = append(out, p)
			bestSoFar = p.MFLOPS
		}
	}
	return out
}

func minWatts(points []ConfigPoint) float64 {
	m := -1.0
	for _, p := range points {
		if m < 0 || p.Watts < m {
			m = p.Watts
		}
	}
	return m
}
