package scc

import "fmt"

// ClockConfig selects the three SCC clock domains. Tiles (pairs of cores)
// can be clocked from 100 to 800 MHz; the mesh runs at 800 MHz or 1.6 GHz
// and the memory controllers at 800 or 1066 MHz, both fixed at chip
// initialisation (Section II of the paper).
type ClockConfig struct {
	// CoreMHz is the tile/core clock (uniform across tiles; use
	// FreqDomains for per-tile control).
	CoreMHz int
	// MeshMHz is the mesh network clock.
	MeshMHz int
	// MemMHz is the memory controller clock.
	MemMHz int
}

// The three configurations evaluated in Section IV-D.
var (
	// Conf0 is the default configuration: cores 533, mesh 800,
	// memory 800 MHz.
	Conf0 = ClockConfig{CoreMHz: 533, MeshMHz: 800, MemMHz: 800}
	// Conf1 is the fastest available configuration: 800/1600/1066.
	Conf1 = ClockConfig{CoreMHz: 800, MeshMHz: 1600, MemMHz: 1066}
	// Conf2 raises cores and mesh but keeps memory at the default:
	// 800/1600/800.
	Conf2 = ClockConfig{CoreMHz: 800, MeshMHz: 1600, MemMHz: 800}
)

// NamedConfigs returns the paper's three configurations keyed by the names
// used in Figure 9.
func NamedConfigs() map[string]ClockConfig {
	return map[string]ClockConfig{"conf0": Conf0, "conf1": Conf1, "conf2": Conf2}
}

// Validate checks the configuration against the chip's documented limits.
func (c ClockConfig) Validate() error {
	if c.CoreMHz < 100 || c.CoreMHz > 800 {
		return fmt.Errorf("scc: core clock %d MHz outside [100, 800]", c.CoreMHz)
	}
	if c.MeshMHz != 800 && c.MeshMHz != 1600 {
		return fmt.Errorf("scc: mesh clock %d MHz not one of 800, 1600", c.MeshMHz)
	}
	if c.MemMHz != 800 && c.MemMHz != 1066 {
		return fmt.Errorf("scc: memory clock %d MHz not one of 800, 1066", c.MemMHz)
	}
	return nil
}

// String implements fmt.Stringer ("533/800/800").
func (c ClockConfig) String() string {
	return fmt.Sprintf("%d/%d/%d", c.CoreMHz, c.MeshMHz, c.MemMHz)
}

// Cycle periods are returned as float64 seconds rather than time.Duration:
// a 533 MHz cycle is 1.876 ns, which Duration's 1 ns resolution would
// truncate by 47%.

// CoreCycleSec returns the period of one core clock cycle in seconds.
func (c ClockConfig) CoreCycleSec() float64 { return mhzCycleSec(c.CoreMHz) }

// MeshCycleSec returns the period of one mesh clock cycle in seconds.
func (c ClockConfig) MeshCycleSec() float64 { return mhzCycleSec(c.MeshMHz) }

// MemCycleSec returns the period of one memory clock cycle in seconds.
func (c ClockConfig) MemCycleSec() float64 { return mhzCycleSec(c.MemMHz) }

func mhzCycleSec(mhz int) float64 {
	if mhz <= 0 {
		panic(fmt.Sprintf("scc: non-positive clock %d MHz", mhz))
	}
	return 1 / (float64(mhz) * 1e6)
}

// FreqDomains carries a per-tile core clock, exposing the SCC's 24
// independent tile frequency domains. Mesh and memory clocks stay chip-wide.
type FreqDomains struct {
	// TileMHz holds one core clock per tile.
	TileMHz [NumTiles]int
	// MeshMHz and MemMHz are chip-wide.
	MeshMHz, MemMHz int
}

// Uniform builds per-tile domains from a uniform configuration.
func Uniform(c ClockConfig) FreqDomains {
	var d FreqDomains
	for t := range d.TileMHz {
		d.TileMHz[t] = c.CoreMHz
	}
	d.MeshMHz = c.MeshMHz
	d.MemMHz = c.MemMHz
	return d
}

// Validate checks every domain against the chip limits.
func (d FreqDomains) Validate() error {
	for t, f := range d.TileMHz {
		if f < 100 || f > 800 {
			return fmt.Errorf("scc: tile %d clock %d MHz outside [100, 800]", t, f)
		}
	}
	return ClockConfig{CoreMHz: d.TileMHz[0], MeshMHz: d.MeshMHz, MemMHz: d.MemMHz}.Validate()
}

// CoreMHzOf returns the clock of the tile hosting core c.
func (d FreqDomains) CoreMHzOf(c CoreID) int { return d.TileMHz[c.Tile()] }

// ConfigFor returns the effective uniform-style config seen by core c.
func (d FreqDomains) ConfigFor(c CoreID) ClockConfig {
	return ClockConfig{CoreMHz: d.CoreMHzOf(c), MeshMHz: d.MeshMHz, MemMHz: d.MemMHz}
}
