package scc

import (
	"testing"
)

// The zero/default Geometry must agree with the package-level fixed-chip
// functions on every core: same controllers, same hop counts, same
// mappings. This is the contract that lets callers pass a Geometry
// everywhere without changing the paper's results.
func TestDefaultGeometryMatchesFixedChip(t *testing.T) {
	g := Geometry{}.OrDefault()
	if err := g.Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	if g.NumTiles() != NumTiles || g.NumCores() != NumCores {
		t.Fatalf("default geometry %s has %d tiles / %d cores, want %d / %d",
			g, g.NumTiles(), g.NumCores(), NumTiles, NumCores)
	}
	if g.Controllers() != Controllers() {
		t.Fatalf("controllers differ: %v vs %v", g.Controllers(), Controllers())
	}
	for c := CoreID(0); c < NumCores; c++ {
		if got, want := g.TileOf(c), int(c.Tile()); got != want {
			t.Fatalf("core %d: tile %d, want %d", c, got, want)
		}
		if got, want := g.CoreCoord(c), c.Coord(); got != want {
			t.Fatalf("core %d: coord %v, want %v", c, got, want)
		}
		if got, want := g.ControllerFor(c), ControllerFor(c); got != want {
			t.Fatalf("core %d: controller %v, want %v", c, got, want)
		}
		if got, want := g.HopsToMC(c), HopsToMC(c); got != want {
			t.Fatalf("core %d: hops %d, want %d", c, got, want)
		}
	}
	if got := g.MaxPossibleHops(); got != 3 {
		t.Fatalf("default max hops %d, want 3", got)
	}
	for n := 1; n <= NumCores; n++ {
		std, fixed := g.StandardMapping(n), StandardMapping(n)
		dr, fixedDR := g.DistanceReductionMapping(n), DistanceReductionMapping(n)
		for i := 0; i < n; i++ {
			if std[i] != fixed[i] {
				t.Fatalf("standard mapping n=%d rank %d: %d vs %d", n, i, std[i], fixed[i])
			}
			if dr[i] != fixedDR[i] {
				t.Fatalf("distance mapping n=%d rank %d: %d vs %d", n, i, dr[i], fixedDR[i])
			}
		}
		if err := g.ValidateMapping(dr); err != nil {
			t.Fatalf("distance mapping n=%d invalid: %v", n, err)
		}
		if got, want := g.MeanHops(dr), dr.MeanHops(); got != want {
			t.Fatalf("mean hops n=%d: %v vs %v", n, got, want)
		}
	}
}

func TestCustomGeometry(t *testing.T) {
	g := Geometry{TilesX: 32, TilesY: 32, CoresPerTile: 1}
	if err := g.Validate(); err != nil {
		t.Fatalf("32x32x1 invalid: %v", err)
	}
	if g.NumCores() != 1024 {
		t.Fatalf("32x32x1 has %d cores, want 1024", g.NumCores())
	}
	// Every core lands on a valid controller and the hop distance is
	// bounded by the quadrant diagonal.
	maxSeen := 0
	counts := map[int]int{}
	for c := CoreID(0); int(c) < g.NumCores(); c++ {
		mc := g.ControllerFor(c)
		if mc.ID < 0 || mc.ID >= NumControllers {
			t.Fatalf("core %d: controller %d out of range", c, mc.ID)
		}
		counts[mc.ID]++
		if h := g.HopsToMC(c); h > maxSeen {
			maxSeen = h
		}
	}
	if maxSeen != g.MaxPossibleHops() {
		t.Fatalf("max observed hops %d != MaxPossibleHops %d", maxSeen, g.MaxPossibleHops())
	}
	for id := 0; id < NumControllers; id++ {
		if counts[id] != g.NumCores()/NumControllers {
			t.Fatalf("controller %d serves %d cores, want %d", id, counts[id], g.NumCores()/NumControllers)
		}
	}
	// The distance mapping must be a valid permutation prefix with mean
	// hops no worse than the standard mapping.
	for _, n := range []int{1, 7, 64, 1024} {
		dr := g.DistanceReductionMapping(n)
		if len(dr) != n {
			t.Fatalf("distance mapping n=%d has %d entries", n, len(dr))
		}
		if err := g.ValidateMapping(dr); err != nil {
			t.Fatalf("distance mapping n=%d invalid: %v", n, err)
		}
		if g.MeanHops(dr) > g.MeanHops(g.StandardMapping(n)) {
			t.Fatalf("distance mapping n=%d has worse mean hops than standard", n)
		}
	}
}

func TestParseGeometry(t *testing.T) {
	cases := []struct {
		in   string
		want Geometry
		ok   bool
	}{
		{"", Geometry{}, true},
		{"6x4x2", Geometry{6, 4, 2}, true},
		{"32x32x1", Geometry{32, 32, 1}, true},
		{"8x8x2", Geometry{8, 8, 2}, true},
		{"6x4", Geometry{}, false},
		{"ax4x2", Geometry{}, false},
		{"1x4x2", Geometry{}, false},     // needs >= 2x2 tiles
		{"6x4x0", Geometry{}, false},     // needs >= 1 core per tile
		{"300x300x2", Geometry{}, false}, // above the core-count bound
	}
	for _, c := range cases {
		got, err := ParseGeometry(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Fatalf("ParseGeometry(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Fatalf("ParseGeometry(%q) accepted, want error", c.in)
		}
	}
	if got := (Geometry{16, 16, 2}).String(); got != "16x16x2" {
		t.Fatalf("String() = %q", got)
	}
}
