package scc

import (
	"fmt"
	"strings"
)

// RenderChip draws the SCC floorplan as ASCII art in the orientation of the
// paper's Figure 1: the 6x4 tile grid with per-tile core numbers and the
// four memory controllers on the periphery. Rows print top (y=3) to bottom
// (y=0).
func RenderChip() string {
	return renderWith(func(t TileID) string {
		c := t.Cores()
		return fmt.Sprintf("%2d,%-2d", int(c[0]), int(c[1]))
	})
}

// RenderMapping draws the floorplan with each tile annotated by the ranks
// mapped onto its cores ("--" for an unused core) - the presentation of the
// paper's Figure 4.
func RenderMapping(m Mapping) string {
	rankOf := map[CoreID]int{}
	for rank, core := range m {
		rankOf[core] = rank
	}
	return renderWith(func(t TileID) string {
		var parts [CoresPerTile]string
		for i, core := range t.Cores() {
			if r, ok := rankOf[core]; ok {
				parts[i] = fmt.Sprintf("%2d", r)
			} else {
				parts[i] = "--"
			}
		}
		return parts[0] + "," + parts[1]
	})
}

// renderWith draws the grid, labelling each tile with label(tile).
func renderWith(label func(TileID) string) string {
	cell := 0
	labels := make([]string, NumTiles)
	for t := TileID(0); t < NumTiles; t++ {
		labels[t] = label(t)
		if len(labels[t]) > cell {
			cell = len(labels[t])
		}
	}
	var b strings.Builder
	mcAt := map[int]map[int]int{} // y -> x -> mc id for edge annotation
	for _, mc := range Controllers() {
		if mcAt[mc.Coord.Y] == nil {
			mcAt[mc.Coord.Y] = map[int]int{}
		}
		mcAt[mc.Coord.Y][mc.Coord.X] = mc.ID
	}
	border := "+" + strings.Repeat(strings.Repeat("-", cell+2)+"+", TilesX)
	for y := TilesY - 1; y >= 0; y-- {
		b.WriteString("      " + border + "\n")
		// MC annotation on the left/right margin for this row.
		left, right := "      ", ""
		if mcs, ok := mcAt[y]; ok {
			if id, ok := mcs[0]; ok {
				left = fmt.Sprintf("MC%d ->", id)
			}
			if id, ok := mcs[TilesX-1]; ok {
				right = fmt.Sprintf(" <- MC%d", id)
			}
		}
		b.WriteString(left + "|")
		for x := 0; x < TilesX; x++ {
			t := TileAt(meshCoord(x, y))
			fmt.Fprintf(&b, " %-*s |", cell, labels[t])
		}
		b.WriteString(right + "\n")
	}
	b.WriteString("      " + border + "\n")
	return b.String()
}
