package scc

// Memory latency model. The SCC documentation (and Section IV-A of the
// paper) gives the round-trip time of a private-memory request as
//
//	40·C_core + 4·n·2·C_mesh + 46·C_mem
//
// where C_core, C_mesh and C_mem are the respective clock periods and n is
// the number of mesh hops between the requesting core's router and the
// memory controller's router. The constants are fixed chip properties:
const (
	// LatCoreCycles is the core-cycle component (cache-miss handling in
	// the core and mesh interface unit).
	LatCoreCycles = 40
	// LatMeshCyclesPerHop is charged per hop in each direction: 4 mesh
	// cycles per router traversal, doubled for the round trip.
	LatMeshCyclesPerHop = 4 * 2
	// LatMemCycles is the DDR3 access component at the controller.
	LatMemCycles = 46
)

// MemoryLatencySec returns the round-trip latency in seconds of one
// private-memory access from a core whose router is hops away from its
// memory controller, under the given clocks.
func MemoryLatencySec(hops int, c ClockConfig) float64 {
	if hops < 0 {
		panic("scc: negative hop count")
	}
	return LatCoreCycles*c.CoreCycleSec() +
		float64(LatMeshCyclesPerHop*hops)*c.MeshCycleSec() +
		LatMemCycles*c.MemCycleSec()
}

// MemoryLatencyCoreCycles converts MemoryLatencySec into equivalent cycles
// of the requesting core's clock - the unit the timing simulation
// accumulates.
func MemoryLatencyCoreCycles(hops int, c ClockConfig) float64 {
	return MemoryLatencySec(hops, c) / c.CoreCycleSec()
}

// CoreLatencyTable returns MemoryLatencySec for every hop distance 0..3
// (the distances present under the default quadrant assignment).
func CoreLatencyTable(c ClockConfig) [4]float64 {
	var t [4]float64
	for h := range t {
		t[h] = MemoryLatencySec(h, c)
	}
	return t
}

// L2HitCoreCycles is the load-to-use latency of the per-core 256 KB L2 in
// core cycles. The P54C-era L2 on the SCC runs at core clock; 18 cycles is
// the commonly reported value for the SCC's L2 pipeline.
const L2HitCoreCycles = 18
