package scc

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/mesh"
)

// Geometry parameterises the chip layout the runtime simulates: an
// TilesX x TilesY mesh of tiles with CoresPerTile cores each and four
// memory controllers on the periphery, generalising the real SCC's fixed
// 6x4x2 arrangement. The zero value means "the real chip" everywhere a
// Geometry is accepted, so existing callers keep the paper's hardware
// without writing anything.
//
// The package-level constants and functions (TilesX, Controllers,
// HopsToMC, StandardMapping, ...) stay the authority for the real chip;
// Geometry reproduces them exactly when it equals DefaultGeometry (a
// property pinned by tests). Custom geometries exist for the
// discrete-event RCCE backend's beyond-the-hardware scaling studies
// (8x8, 16x16, 32x32 meshes), where the mesh distances still follow the
// SCC's quadrant rules but the chip never existed.
type Geometry struct {
	// TilesX and TilesY are the mesh dimensions in tiles.
	TilesX, TilesY int
	// CoresPerTile is the number of cores sharing each tile router.
	CoresPerTile int
}

// DefaultGeometry returns the real SCC: 6x4 tiles, 2 cores per tile.
func DefaultGeometry() Geometry {
	return Geometry{TilesX: TilesX, TilesY: TilesY, CoresPerTile: CoresPerTile}
}

// IsZero reports whether g is the zero value (meaning "default chip").
func (g Geometry) IsZero() bool { return g == Geometry{} }

// OrDefault returns g, or the real chip's geometry when g is zero.
func (g Geometry) OrDefault() Geometry {
	if g.IsZero() {
		return DefaultGeometry()
	}
	return g
}

// maxGeometryCores bounds custom geometries so a typo'd mesh cannot ask
// the runtime for millions of UEs.
const maxGeometryCores = 1 << 16

// Validate checks that the mesh is well formed: at least 2x2 tiles (the
// four quadrant memory controllers need distinct corners), at least one
// core per tile, and a bounded total core count.
func (g Geometry) Validate() error {
	if g.TilesX < 2 || g.TilesY < 2 {
		return fmt.Errorf("scc: geometry %s needs at least a 2x2 tile mesh", g)
	}
	if g.CoresPerTile < 1 {
		return fmt.Errorf("scc: geometry %s needs at least one core per tile", g)
	}
	if n := g.NumCores(); n > maxGeometryCores {
		return fmt.Errorf("scc: geometry %s has %d cores, above the %d limit", g, n, maxGeometryCores)
	}
	return nil
}

// NumTiles returns the tile count.
func (g Geometry) NumTiles() int { return g.TilesX * g.TilesY }

// NumCores returns the total core count.
func (g Geometry) NumCores() int { return g.NumTiles() * g.CoresPerTile }

// TileOf returns the tile index hosting the core (cores are numbered
// consecutively within a tile, like the SCC's default numbering).
func (g Geometry) TileOf(c CoreID) int { return int(c) / g.CoresPerTile }

// TileCoord returns a tile's mesh coordinate (row-major from the
// bottom-left corner, like TileID.Coord on the real chip).
func (g Geometry) TileCoord(tile int) mesh.Coord {
	return mesh.Coord{X: tile % g.TilesX, Y: tile / g.TilesX}
}

// CoreCoord returns the mesh coordinate of the core's tile router.
func (g Geometry) CoreCoord(c CoreID) mesh.Coord { return g.TileCoord(g.TileOf(c)) }

// Controllers returns the four memory controllers in ID order, placed
// like the real chip's: on the left and right mesh edges, at row 0 and
// row TilesY/2 (MC0 bottom-left, MC1 bottom-right, MC2 upper-left, MC3
// upper-right). For the default geometry this is exactly Controllers().
func (g Geometry) Controllers() [NumControllers]MemController {
	return [NumControllers]MemController{
		{ID: 0, Coord: mesh.Coord{X: 0, Y: 0}},
		{ID: 1, Coord: mesh.Coord{X: g.TilesX - 1, Y: 0}},
		{ID: 2, Coord: mesh.Coord{X: 0, Y: g.TilesY / 2}},
		{ID: 3, Coord: mesh.Coord{X: g.TilesX - 1, Y: g.TilesY / 2}},
	}
}

// ControllerFor returns the controller serving the core's private memory
// under the quadrant assignment the real chip uses: the mesh splits into
// four quadrants at TilesX/2 and TilesY/2, each served by its corner
// controller.
func (g Geometry) ControllerFor(c CoreID) MemController {
	if int(c) < 0 || int(c) >= g.NumCores() {
		panic(fmt.Sprintf("scc: invalid core %d for geometry %s", c, g))
	}
	pos := g.CoreCoord(c)
	idx := 0
	if pos.X >= g.TilesX/2 {
		idx++
	}
	if pos.Y >= g.TilesY/2 {
		idx += 2
	}
	return g.Controllers()[idx]
}

// HopsToMC returns the mesh hop count between the core's router and its
// quadrant memory controller's router.
func (g Geometry) HopsToMC(c CoreID) int {
	mc := g.ControllerFor(c)
	pos := g.CoreCoord(c)
	return abs(pos.X-mc.Coord.X) + abs(pos.Y-mc.Coord.Y)
}

// MaxPossibleHops returns the largest core-to-controller distance any
// core of the mesh can have (the deepest corner of a quadrant).
func (g Geometry) MaxPossibleHops() int {
	best := 0
	for c := 0; c < g.NumCores(); c += g.CoresPerTile {
		if h := g.HopsToMC(CoreID(c)); h > best {
			best = h
		}
	}
	return best
}

// StandardMapping is the RCCE default on this geometry: ranks 0..n-1 on
// cores 0..n-1.
func (g Geometry) StandardMapping(n int) Mapping {
	m := make(Mapping, n)
	for i := range m {
		m[i] = CoreID(i)
	}
	return m
}

// DistanceReductionMapping generalises the paper's placement policy to
// this geometry: fill distance level by distance level, round-robining
// the four controllers within a level (one tile's worth of cores at a
// time) and taking cores in ascending id order within a controller. On
// the default geometry it reproduces DistanceReductionMapping exactly.
func (g Geometry) DistanceReductionMapping(n int) Mapping {
	levels := g.MaxPossibleHops() + 1
	perMC := make([][][]CoreID, NumControllers) // [mc][hops][]cores
	for mc := 0; mc < NumControllers; mc++ {
		perMC[mc] = make([][]CoreID, levels)
	}
	for c := CoreID(0); int(c) < g.NumCores(); c++ {
		mc := g.ControllerFor(c).ID
		h := g.HopsToMC(c)
		perMC[mc][h] = append(perMC[mc][h], c)
	}
	m := make(Mapping, 0, n)
	for h := 0; h < levels && len(m) < n; h++ {
		idx := [NumControllers]int{}
		for len(m) < n {
			progressed := false
			for mc := 0; mc < NumControllers && len(m) < n; mc++ {
				for take := 0; take < g.CoresPerTile && idx[mc] < len(perMC[mc][h]) && len(m) < n; take++ {
					m = append(m, perMC[mc][h][idx[mc]])
					idx[mc]++
					progressed = true
				}
			}
			if !progressed {
				break // level exhausted
			}
		}
	}
	return m
}

// ValidateMapping checks that the mapping uses valid, distinct cores of
// this geometry (the geometry-aware form of Mapping.Validate).
func (g Geometry) ValidateMapping(m Mapping) error {
	if len(m) == 0 || len(m) > g.NumCores() {
		return fmt.Errorf("scc: mapping size %d outside [1, %d] for geometry %s", len(m), g.NumCores(), g)
	}
	seen := map[CoreID]bool{}
	for rank, c := range m {
		if int(c) < 0 || int(c) >= g.NumCores() {
			return fmt.Errorf("scc: rank %d mapped to invalid core %d for geometry %s", rank, c, g)
		}
		if seen[c] {
			return fmt.Errorf("scc: core %d mapped twice", c)
		}
		seen[c] = true
	}
	return nil
}

// MeanHops returns the average core-to-controller distance of the
// mapping under this geometry.
func (g Geometry) MeanHops(m Mapping) float64 {
	if len(m) == 0 {
		return 0
	}
	s := 0
	for _, c := range m {
		s += g.HopsToMC(c)
	}
	return float64(s) / float64(len(m))
}

// String renders the geometry as "TilesXxTilesYxCoresPerTile", the form
// ParseGeometry accepts (e.g. "6x4x2", "32x32x1").
func (g Geometry) String() string {
	return fmt.Sprintf("%dx%dx%d", g.TilesX, g.TilesY, g.CoresPerTile)
}

// ParseGeometry parses "XxYxC" (e.g. "16x16x2") into a validated
// Geometry. An empty string returns the zero Geometry, meaning "the
// real chip" to every consumer.
func ParseGeometry(s string) (Geometry, error) {
	if s == "" {
		return Geometry{}, nil
	}
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return Geometry{}, fmt.Errorf("scc: geometry %q is not of the form XxYxC (e.g. 6x4x2)", s)
	}
	dims := make([]int, 3)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return Geometry{}, fmt.Errorf("scc: geometry %q is not of the form XxYxC (e.g. 6x4x2)", s)
		}
		dims[i] = v
	}
	g := Geometry{TilesX: dims[0], TilesY: dims[1], CoresPerTile: dims[2]}
	if err := g.Validate(); err != nil {
		return Geometry{}, err
	}
	return g, nil
}
