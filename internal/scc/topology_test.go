package scc

import (
	"testing"

	"repro/internal/mesh"
)

func TestGeometryConstants(t *testing.T) {
	if NumTiles != 24 || NumCores != 48 || NumControllers != 4 {
		t.Fatalf("geometry: %d tiles, %d cores, %d MCs", NumTiles, NumCores, NumControllers)
	}
}

func TestCoreTileRelationship(t *testing.T) {
	// The paper's Figure 1: cores 2t and 2t+1 live on tile t.
	for c := CoreID(0); c < NumCores; c++ {
		if !c.Valid() {
			t.Fatalf("core %d invalid", c)
		}
		tile := c.Tile()
		cores := tile.Cores()
		if cores[0] != CoreID(tile)*2 || cores[1] != CoreID(tile)*2+1 {
			t.Fatalf("tile %d cores = %v", tile, cores)
		}
		found := false
		for _, cc := range cores {
			if cc == c {
				found = true
			}
		}
		if !found {
			t.Fatalf("core %d not among its tile's cores %v", c, cores)
		}
	}
	if CoreID(-1).Valid() || CoreID(48).Valid() {
		t.Fatal("out-of-range cores accepted")
	}
}

func TestTileCoordRoundTrip(t *testing.T) {
	for tile := TileID(0); tile < NumTiles; tile++ {
		c := tile.Coord()
		if TileAt(c) != tile {
			t.Fatalf("TileAt(%v) = %d, want %d", c, TileAt(c), tile)
		}
	}
	// Row-major from bottom-left: tile 0 at (0,0), tile 5 at (5,0),
	// tile 6 at (0,1), tile 23 at (5,3).
	if (TileID(0).Coord() != mesh.Coord{X: 0, Y: 0}) {
		t.Fatal("tile 0 coord")
	}
	if (TileID(5).Coord() != mesh.Coord{X: 5, Y: 0}) {
		t.Fatal("tile 5 coord")
	}
	if (TileID(6).Coord() != mesh.Coord{X: 0, Y: 1}) {
		t.Fatal("tile 6 coord")
	}
	if (TileID(23).Coord() != mesh.Coord{X: 5, Y: 3}) {
		t.Fatal("tile 23 coord")
	}
}

func TestTileAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TileAt out of range did not panic")
		}
	}()
	TileAt(mesh.Coord{X: 6, Y: 0})
}

func TestControllersPlacement(t *testing.T) {
	mcs := Controllers()
	want := []mesh.Coord{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 0, Y: 2}, {X: 5, Y: 2}}
	for i, mc := range mcs {
		if mc.ID != i || mc.Coord != want[i] {
			t.Fatalf("controller %d = %+v, want coord %v", i, mc, want[i])
		}
	}
}

func TestQuadrantAssignmentMatchesPaperExample(t *testing.T) {
	// "the lower left quadrant contains cores 0-5 and 12-17 ... accessed
	// through the memory controller MC0" (Section IV-A).
	want := map[CoreID]bool{}
	for c := CoreID(0); c <= 5; c++ {
		want[c] = true
	}
	for c := CoreID(12); c <= 17; c++ {
		want[c] = true
	}
	got := QuadrantCores(0)
	if len(got) != 12 {
		t.Fatalf("MC0 serves %d cores, want 12", len(got))
	}
	for _, c := range got {
		if !want[c] {
			t.Fatalf("core %d wrongly assigned to MC0 (got %v)", c, got)
		}
	}
}

func TestEveryControllerServes12Cores(t *testing.T) {
	total := 0
	for mc := 0; mc < NumControllers; mc++ {
		n := len(QuadrantCores(mc))
		if n != 12 {
			t.Errorf("MC%d serves %d cores, want 12", mc, n)
		}
		total += n
	}
	if total != NumCores {
		t.Fatalf("controllers serve %d cores total", total)
	}
}

func TestQuadrantCoresPanicsOnBadID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("QuadrantCores(4) did not panic")
		}
	}()
	QuadrantCores(4)
}

func TestHopsToMCRange(t *testing.T) {
	// Under the default quadrant layout all distances 0..3 occur and
	// nothing else (Section IV-A: "covers all the possible distances").
	counts := map[int]int{}
	for c := CoreID(0); c < NumCores; c++ {
		counts[HopsToMC(c)]++
	}
	for h := 0; h <= 3; h++ {
		if counts[h] == 0 {
			t.Errorf("no cores at %d hops", h)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("hop distances present: %v, want exactly 0..3", counts)
	}
	// Each quadrant is a 3x2 tile block: distances 0,1,1,2,2,3 per
	// quadrant, i.e. per-chip counts 8,16,16,8 cores.
	if counts[0] != 8 || counts[1] != 16 || counts[2] != 16 || counts[3] != 8 {
		t.Fatalf("hop histogram %v, want 8/16/16/8", counts)
	}
}

func TestCoresWithHops(t *testing.T) {
	zero := CoresWithHops(0)
	want := []CoreID{0, 1, 10, 11, 24, 25, 34, 35}
	if len(zero) != len(want) {
		t.Fatalf("0-hop cores = %v", zero)
	}
	for i, c := range want {
		if zero[i] != c {
			t.Fatalf("0-hop cores = %v, want %v", zero, want)
		}
	}
	if len(CoresWithHops(4)) != 0 {
		t.Fatal("4-hop cores exist under the default layout")
	}
}

func TestControllerForPanicsOnInvalidCore(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ControllerFor(-1) did not panic")
		}
	}()
	ControllerFor(-1)
}
