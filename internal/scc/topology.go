// Package scc models the Intel Single-chip Cloud Computer's architecture:
// 48 P54C cores on 24 tiles arranged in a 6x4 mesh, four DDR3 memory
// controllers at the mesh periphery, per-tile core frequency domains,
// chip-wide mesh and memory clock domains, the documented memory latency
// formula, unit-of-execution-to-core mapping policies, and a power model
// anchored to the paper's measurements.
package scc

import (
	"fmt"

	"repro/internal/mesh"
)

// Chip geometry constants (SCC External Architecture Specification).
const (
	// TilesX and TilesY are the mesh dimensions.
	TilesX = 6
	TilesY = 4
	// NumTiles is the tile count.
	NumTiles = TilesX * TilesY
	// CoresPerTile is two P54C cores per tile.
	CoresPerTile = 2
	// NumCores is the total core count.
	NumCores = NumTiles * CoresPerTile
	// NumControllers is the number of DDR3 memory controllers.
	NumControllers = 4
	// MPBBytesPerCore is each core's share of the tile's 16 KB message
	// passing buffer.
	MPBBytesPerCore = 8 << 10
	// CacheLineBytes is the L1/L2/MPB line size.
	CacheLineBytes = 32
	// PrivateMemPerCoreBytes is each core's private DRAM domain in the
	// 32 GB configuration the paper uses (64 MB per core).
	PrivateMemPerCoreBytes = 64 << 20
)

// CoreID identifies one of the 48 cores (0..47). Cores 2t and 2t+1 live on
// tile t, matching the SCC's default numbering (Figure 1 of the paper).
type CoreID int

// TileID identifies one of the 24 tiles (0..23), numbered row-major from
// the bottom-left corner of the mesh.
type TileID int

// Valid reports whether the core id is in range.
func (c CoreID) Valid() bool { return c >= 0 && c < NumCores }

// Tile returns the tile hosting the core.
func (c CoreID) Tile() TileID { return TileID(c / CoresPerTile) }

// Valid reports whether the tile id is in range.
func (t TileID) Valid() bool { return t >= 0 && t < NumTiles }

// Coord returns the tile's mesh coordinate.
func (t TileID) Coord() mesh.Coord {
	return mesh.Coord{X: int(t) % TilesX, Y: int(t) / TilesX}
}

// Cores returns the two cores on the tile.
func (t TileID) Cores() [CoresPerTile]CoreID {
	return [CoresPerTile]CoreID{CoreID(t) * CoresPerTile, CoreID(t)*CoresPerTile + 1}
}

// TileAt returns the tile at a mesh coordinate.
func TileAt(c mesh.Coord) TileID {
	if c.X < 0 || c.X >= TilesX || c.Y < 0 || c.Y >= TilesY {
		panic(fmt.Sprintf("scc: coordinate %v outside the %dx%d mesh", c, TilesX, TilesY))
	}
	return TileID(c.Y*TilesX + c.X)
}

// Coord returns the mesh coordinate of the core's tile router.
func (c CoreID) Coord() mesh.Coord { return c.Tile().Coord() }

// MemController is one of the four DDR3 controllers. Each hangs off the
// router of a peripheral tile: the left and right edge tiles of mesh rows
// 0 and 2.
type MemController struct {
	// ID is the controller index 0..3 (MC0..MC3).
	ID int
	// Coord is the router the controller attaches to.
	Coord mesh.Coord
}

// Controllers returns the four memory controllers in ID order:
// MC0 bottom-left (0,0), MC1 bottom-right (5,0), MC2 top-left (0,2),
// MC3 top-right (5,2).
func Controllers() [NumControllers]MemController {
	return [NumControllers]MemController{
		{ID: 0, Coord: mesh.Coord{X: 0, Y: 0}},
		{ID: 1, Coord: mesh.Coord{X: 5, Y: 0}},
		{ID: 2, Coord: mesh.Coord{X: 0, Y: 2}},
		{ID: 3, Coord: mesh.Coord{X: 5, Y: 2}},
	}
}

// ControllerFor returns the controller serving the core's private memory
// under the default quadrant assignment: six tiles (12 cores) share each
// controller. The bottom-left quadrant (tiles with X<=2, Y<=1) maps to MC0,
// bottom-right to MC1, top-left to MC2 and top-right to MC3; the paper's
// example (cores 0-5 and 12-17 behind MC0) corresponds to this layout.
func ControllerFor(c CoreID) MemController {
	if !c.Valid() {
		panic(fmt.Sprintf("scc: invalid core %d", c))
	}
	pos := c.Coord()
	idx := 0
	if pos.X >= TilesX/2 {
		idx++
	}
	if pos.Y >= TilesY/2 {
		idx += 2
	}
	return Controllers()[idx]
}

// HopsToMC returns the number of mesh hops between the core's router and
// its default memory controller's router. On the default quadrant layout
// the possible values are 0 through 3 (all distances the paper measures in
// Figure 3).
func HopsToMC(c CoreID) int {
	mc := ControllerFor(c)
	pos := c.Coord()
	return abs(pos.X-mc.Coord.X) + abs(pos.Y-mc.Coord.Y)
}

// CoresWithHops returns, in ascending core order, the cores whose distance
// to their memory controller is exactly h.
func CoresWithHops(h int) []CoreID {
	var out []CoreID
	for c := CoreID(0); c < NumCores; c++ {
		if HopsToMC(c) == h {
			out = append(out, c)
		}
	}
	return out
}

// QuadrantCores returns the 12 cores served by controller mcID in ascending
// core order.
func QuadrantCores(mcID int) []CoreID {
	if mcID < 0 || mcID >= NumControllers {
		panic(fmt.Sprintf("scc: invalid controller %d", mcID))
	}
	var out []CoreID
	for c := CoreID(0); c < NumCores; c++ {
		if ControllerFor(c).ID == mcID {
			out = append(out, c)
		}
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// meshCoord builds a mesh coordinate (small helper for rendering).
func meshCoord(x, y int) mesh.Coord { return mesh.Coord{X: x, Y: y} }
