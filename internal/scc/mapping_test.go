package scc

import (
	"testing"
	"testing/quick"
)

func TestStandardMapping(t *testing.T) {
	m := StandardMapping(4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for rank, c := range m {
		if int(c) != rank {
			t.Fatalf("standard mapping rank %d -> core %d", rank, c)
		}
	}
}

func TestDistanceReductionPaperExample(t *testing.T) {
	// Section IV-A: with 4 UEs the distance-reduction configuration uses
	// cores 0, 1, 10 and 11.
	m := DistanceReductionMapping(4)
	want := []CoreID{0, 1, 10, 11}
	if len(m) != 4 {
		t.Fatalf("mapping = %v", m)
	}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("mapping = %v, want %v", m, want)
		}
	}
}

func TestDistanceReductionFillsByDistance(t *testing.T) {
	// The first 8 ranks must land on the 8 zero-hop cores.
	m := DistanceReductionMapping(8)
	for _, c := range m {
		if HopsToMC(c) != 0 {
			t.Fatalf("rank on core %d with %d hops; want 0-hop cores first", c, HopsToMC(c))
		}
	}
	// Ranks 9..24 must use 1-hop cores.
	m = DistanceReductionMapping(24)
	for i, c := range m {
		h := HopsToMC(c)
		switch {
		case i < 8 && h != 0:
			t.Fatalf("rank %d at %d hops, want 0", i, h)
		case i >= 8 && h != 1:
			t.Fatalf("rank %d at %d hops, want 1", i, h)
		}
	}
}

func TestDistanceReductionFull48(t *testing.T) {
	m := DistanceReductionMapping(48)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m) != 48 {
		t.Fatalf("len = %d", len(m))
	}
	// All cores used exactly once; MaxHops is 3 like the standard mapping.
	if m.MaxHops() != 3 {
		t.Fatalf("max hops = %d", m.MaxHops())
	}
}

func TestDistanceReductionBeatsStandardOnMeanHops(t *testing.T) {
	for _, n := range []int{4, 8, 16, 24, 32} {
		dr := DistanceReductionMapping(n)
		std := StandardMapping(n)
		if dr.MeanHops() >= std.MeanHops() {
			t.Errorf("n=%d: distance reduction mean hops %.2f >= standard %.2f",
				n, dr.MeanHops(), std.MeanHops())
		}
	}
	// At 48 cores both use the whole chip: identical mean.
	if DistanceReductionMapping(48).MeanHops() != StandardMapping(48).MeanHops() {
		t.Error("full-chip mappings should have equal mean hops")
	}
}

func TestDistanceReductionBalancesControllers(t *testing.T) {
	m := DistanceReductionMapping(16)
	perMC := map[int]int{}
	for _, c := range m {
		perMC[ControllerFor(c).ID]++
	}
	for mc, n := range perMC {
		if n != 4 {
			t.Errorf("MC%d got %d ranks, want 4 (balanced)", mc, n)
		}
	}
}

func TestRandomMappingValidAndSeeded(t *testing.T) {
	a := RandomMapping(10, 1)
	b := RandomMapping(10, 1)
	c := RandomMapping(10, 2)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if !same {
		t.Fatal("same seed produced different mappings")
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical mappings")
	}
}

func TestMapDispatch(t *testing.T) {
	for _, p := range []MappingPolicy{MapStandard, MapDistanceReduction, MapRandom} {
		m, err := Map(p, 6, 3)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
	if _, err := Map("bogus", 4, 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := Map(MapStandard, 0, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Map(MapStandard, 49, 0); err == nil {
		t.Fatal("n=49 accepted")
	}
}

func TestMappingValidateRejectsBad(t *testing.T) {
	if err := (Mapping{0, 0}).Validate(); err == nil {
		t.Error("duplicate core accepted")
	}
	if err := (Mapping{99}).Validate(); err == nil {
		t.Error("invalid core accepted")
	}
	if err := (Mapping{}).Validate(); err == nil {
		t.Error("empty mapping accepted")
	}
}

// Property: for every n, both policies produce valid mappings of size n and
// the distance-reduction mean hops never exceeds standard's.
func TestQuickMappingsValid(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw)%NumCores + 1
		dr := DistanceReductionMapping(n)
		std := StandardMapping(n)
		if dr.Validate() != nil || std.Validate() != nil {
			return false
		}
		if len(dr) != n || len(std) != n {
			return false
		}
		return dr.MeanHops() <= std.MeanHops()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
