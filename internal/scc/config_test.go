package scc

import (
	"math"
	"testing"
)

func TestPaperConfigurations(t *testing.T) {
	if (Conf0 != ClockConfig{533, 800, 800}) {
		t.Fatalf("Conf0 = %v", Conf0)
	}
	if (Conf1 != ClockConfig{800, 1600, 1066}) {
		t.Fatalf("Conf1 = %v", Conf1)
	}
	if (Conf2 != ClockConfig{800, 1600, 800}) {
		t.Fatalf("Conf2 = %v", Conf2)
	}
	for name, c := range NamedConfigs() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestConfigValidateLimits(t *testing.T) {
	bad := []ClockConfig{
		{CoreMHz: 99, MeshMHz: 800, MemMHz: 800},
		{CoreMHz: 801, MeshMHz: 800, MemMHz: 800},
		{CoreMHz: 533, MeshMHz: 1000, MemMHz: 800},
		{CoreMHz: 533, MeshMHz: 800, MemMHz: 900},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%v) accepted bad config", c)
		}
	}
	good := ClockConfig{CoreMHz: 100, MeshMHz: 1600, MemMHz: 1066}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(%v) = %v", good, err)
	}
}

func TestCycleDurations(t *testing.T) {
	c := ClockConfig{CoreMHz: 500, MeshMHz: 800, MemMHz: 800}
	if got := c.CoreCycleSec(); math.Abs(got-2e-9) > 1e-15 {
		t.Fatalf("500 MHz cycle = %v s, want 2ns", got)
	}
	if got := Conf0.MeshCycleSec(); math.Abs(got-1.25e-9) > 1e-15 {
		t.Fatalf("800 MHz cycle = %v s, want 1.25ns", got)
	}
	// 533 MHz must not be truncated: 1.876... ns.
	if got := Conf0.CoreCycleSec(); math.Abs(got-1/(533e6)) > 1e-18 {
		t.Fatalf("533 MHz cycle = %v", got)
	}
	if got := Conf1.MemCycleSec(); math.Abs(got-1/(1066e6)) > 1e-18 {
		t.Fatalf("1066 MHz cycle = %v", got)
	}
}

func TestConfigString(t *testing.T) {
	if Conf0.String() != "533/800/800" {
		t.Fatalf("String = %q", Conf0.String())
	}
}

func TestFreqDomains(t *testing.T) {
	d := Uniform(Conf0)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for c := CoreID(0); c < NumCores; c++ {
		if d.CoreMHzOf(c) != 533 {
			t.Fatalf("core %d at %d MHz", c, d.CoreMHzOf(c))
		}
	}
	// Per-tile control: slow down tile 3 only.
	d.TileMHz[3] = 100
	if d.CoreMHzOf(6) != 100 || d.CoreMHzOf(7) != 100 {
		t.Fatal("tile 3 cores did not change frequency")
	}
	if d.CoreMHzOf(8) != 533 {
		t.Fatal("tile 4 affected by tile 3 change")
	}
	cfg := d.ConfigFor(6)
	if cfg.CoreMHz != 100 || cfg.MeshMHz != 800 {
		t.Fatalf("ConfigFor = %v", cfg)
	}
	d.TileMHz[0] = 99
	if err := d.Validate(); err == nil {
		t.Fatal("Validate accepted 99 MHz tile")
	}
}

func TestMemoryLatencyFormula(t *testing.T) {
	// 40·C_core + 8·hops·C_mesh + 46·C_mem; conf0 in microseconds:
	lat0 := MemoryLatencySec(0, Conf0) * 1e6
	want0 := 40.0/533 + 46.0/800
	if math.Abs(lat0-want0) > 1e-9 {
		t.Fatalf("0-hop latency = %vµs, want %v", lat0, want0)
	}
	// Each hop adds 8 mesh cycles = 10ns at 800 MHz.
	perHop := (MemoryLatencySec(1, Conf0) - MemoryLatencySec(0, Conf0)) * 1e9
	if math.Abs(perHop-10) > 1e-6 {
		t.Fatalf("per-hop increment = %vns, want 10ns", perHop)
	}
}

func TestMemoryLatencyMonotonicInHops(t *testing.T) {
	tab := CoreLatencyTable(Conf0)
	for h := 1; h < 4; h++ {
		if tab[h] <= tab[h-1] {
			t.Fatalf("latency not increasing: %v", tab)
		}
	}
}

func TestMemoryLatencyFasterClocksFaster(t *testing.T) {
	for h := 0; h < 4; h++ {
		if MemoryLatencySec(h, Conf1) >= MemoryLatencySec(h, Conf0) {
			t.Fatalf("conf1 not faster at %d hops", h)
		}
		if MemoryLatencySec(h, Conf2) >= MemoryLatencySec(h, Conf0) {
			t.Fatalf("conf2 not faster at %d hops", h)
		}
		// conf1 beats conf2 purely via the memory clock.
		if MemoryLatencySec(h, Conf1) >= MemoryLatencySec(h, Conf2) {
			t.Fatalf("conf1 not faster than conf2 at %d hops", h)
		}
	}
}

func TestMemoryLatencyCoreCycles(t *testing.T) {
	// At 0 hops the core-cycle equivalent must exceed the raw 40-cycle
	// core component (the memory part adds more).
	cc := MemoryLatencyCoreCycles(0, Conf0)
	if cc <= LatCoreCycles {
		t.Fatalf("latency %v core cycles <= %d", cc, LatCoreCycles)
	}
	// And 3 hops adds 24 mesh cycles = 24·(533/800) core cycles.
	d := MemoryLatencyCoreCycles(3, Conf0) - MemoryLatencyCoreCycles(0, Conf0)
	want := 24.0 * 533 / 800
	if math.Abs(d-want) > 0.5 {
		t.Fatalf("3-hop delta = %v core cycles, want ~%v", d, want)
	}
}

func TestMemoryLatencyPanicsOnNegativeHops(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative hops did not panic")
		}
	}()
	MemoryLatencySec(-1, Conf0)
}

func TestPowerAnchors(t *testing.T) {
	// The paper: 83.3 W at conf0 with 48 cores; 107.4 W at conf1.
	p0 := ConfigPower(Conf0)
	if math.Abs(p0-83.3) > 0.5 {
		t.Fatalf("conf0 power = %.2f W, want ~83.3", p0)
	}
	p1 := ConfigPower(Conf1)
	if math.Abs(p1-107.4) > 0.5 {
		t.Fatalf("conf1 power = %.2f W, want ~107.4", p1)
	}
	p2 := ConfigPower(Conf2)
	if p2 <= p0 || p2 >= p1 {
		t.Fatalf("conf2 power %.2f not between conf0 %.2f and conf1 %.2f", p2, p0, p1)
	}
	// "about 30%" increase for conf1 over conf0.
	if r := p1 / p0; r < 1.25 || r > 1.35 {
		t.Fatalf("conf1/conf0 power ratio = %.3f, want ~1.29", r)
	}
}

func TestPowerScalesWithTileFrequency(t *testing.T) {
	d := Uniform(Conf0)
	base := FullSystemPower(d)
	d.TileMHz[0] = 800
	if FullSystemPower(d) <= base {
		t.Fatal("raising one tile's clock did not raise power")
	}
	d2 := Uniform(Conf0)
	d2.TileMHz[0] = 100
	if FullSystemPower(d2) >= base {
		t.Fatal("lowering one tile's clock did not lower power")
	}
}

func TestVoltageRail(t *testing.T) {
	if v := Voltage(800); math.Abs(v-1.1) > 1e-9 {
		t.Fatalf("V(800) = %v, want 1.1", v)
	}
	if Voltage(100) >= Voltage(800) {
		t.Fatal("voltage not increasing with frequency")
	}
}

func TestMFLOPSPerWatt(t *testing.T) {
	if got := MFLOPSPerWatt(1.0, 100); got != 10 {
		t.Fatalf("1 GFLOPS at 100 W = %v MFLOPS/W, want 10", got)
	}
	if MFLOPSPerWatt(1, 0) != 0 {
		t.Fatal("zero watts must not divide")
	}
}

func TestVoltageIslandLayout(t *testing.T) {
	// 6 islands of 4 tiles; every tile in exactly one island.
	count := map[int]int{}
	for tile := TileID(0); tile < NumTiles; tile++ {
		isl := IslandOf(tile)
		if isl < 0 || isl >= VoltageIslands {
			t.Fatalf("tile %d island %d", tile, isl)
		}
		count[isl]++
	}
	for i := 0; i < VoltageIslands; i++ {
		if count[i] != 4 {
			t.Fatalf("island %d has %d tiles", i, count[i])
		}
		tiles := IslandTiles(i)
		if len(tiles) != 4 {
			t.Fatalf("IslandTiles(%d) = %v", i, tiles)
		}
		for _, tl := range tiles {
			if IslandOf(tl) != i {
				t.Fatalf("tile %d not mapped back to island %d", tl, i)
			}
		}
	}
	// Tiles 0,1 (bottom-left 2x2 block) share island 0 with tiles 6,7.
	if IslandOf(0) != 0 || IslandOf(1) != 0 || IslandOf(6) != 0 || IslandOf(7) != 0 {
		t.Fatal("bottom-left island membership wrong")
	}
	if IslandOf(2) == 0 {
		t.Fatal("tile 2 should start island 1")
	}
}

func TestVoltageIslandPanics(t *testing.T) {
	for _, f := range []func(){
		func() { IslandOf(-1) },
		func() { IslandTiles(6) },
		func() { IslandTiles(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestIslandVoltageFollowsFastestTile(t *testing.T) {
	d := Uniform(Conf0)
	base := IslandVoltage(d, 0)
	if math.Abs(base-Voltage(533)) > 1e-12 {
		t.Fatalf("uniform island voltage %v", base)
	}
	// Raise one tile in island 0: the whole island's rail rises.
	d.TileMHz[0] = 800
	if got := IslandVoltage(d, 0); math.Abs(got-Voltage(800)) > 1e-12 {
		t.Fatalf("island voltage %v after raising one tile", got)
	}
	// A different island is unaffected.
	if got := IslandVoltage(d, 5); math.Abs(got-Voltage(533)) > 1e-12 {
		t.Fatalf("unrelated island voltage %v", got)
	}
}

func TestIslandSharingCostsPower(t *testing.T) {
	// Slowing a single tile saves less power than slowing its whole
	// island, because the shared rail stays at the fast tiles' voltage.
	uniform := Uniform(Conf0)
	base := FullSystemPower(uniform)

	oneSlow := Uniform(Conf0)
	oneSlow.TileMHz[0] = 100
	pOne := FullSystemPower(oneSlow)

	islandSlow := Uniform(Conf0)
	for _, tl := range IslandTiles(0) {
		islandSlow.TileMHz[tl] = 100
	}
	pIsland := FullSystemPower(islandSlow)

	if !(pIsland < pOne && pOne < base) {
		t.Fatalf("power ordering broken: island %.2f, one %.2f, base %.2f", pIsland, pOne, base)
	}
	// Savings per tile: the island-wide slowdown must save more than 4x
	// the single-tile savings (voltage drops only in the island case).
	if (base - pIsland) <= 4*(base-pOne) {
		t.Fatalf("voltage sharing not visible: island saves %.3f, single saves %.3f",
			base-pIsland, base-pOne)
	}
}
