package scc

import (
	"fmt"

	"repro/internal/mesh"
)

// Power model. The paper reports the SCC's measured full-system average
// power while running SpMV: 83.3 W under the default configuration and
// 107.4 W under conf1 (all 48 cores), with conf2 sitting in between such
// that its MFLOPS/W roughly matches conf0's. We model
//
//	P = P_static + sum_tiles 2·k_core·f·V(f)^2 + k_mesh·f_mesh + k_mem·f_mem
//
// with a linear voltage/frequency rail V(f) = 0.7 + 0.4·(f/800 MHz) (the
// SCC scales tile voltage with the requested tile clock), and the three
// coefficients anchored so the model reproduces the paper's 83.3 W and
// 107.4 W measurements and a conf2 power near 100 W.
const (
	// staticWatts is frequency-independent chip + board power.
	staticWatts = 43.83
	// kCoreWattsPerMHzV2 converts f·V² (MHz·V²) to watts per core.
	kCoreWattsPerMHzV2 = 0.000386
	// kMeshWattsPerMHz is the mesh domain coefficient.
	kMeshWattsPerMHz = 0.010
	// kMemWattsPerMHz is the aggregate memory-controller coefficient.
	kMemWattsPerMHz = 0.0278
)

// Voltage returns the minimum supply voltage for a core clock in MHz.
func Voltage(coreMHz int) float64 {
	return 0.7 + 0.4*float64(coreMHz)/800
}

// Voltage islands. The SCC's voltage regulator controls six islands of
// four tiles (2x2 tile blocks); every tile in an island shares a rail, so
// the island runs at the voltage its fastest tile requires. Frequency is
// per tile, voltage per island - which is why mixed-clock configurations
// save less power than a pure per-tile voltage model would suggest.
const (
	// VoltageIslands is the number of 2x2-tile voltage domains.
	VoltageIslands = 6
	islandCols     = TilesX / 2 // 3 islands across
)

// IslandOf returns the voltage island (0..5) containing the tile.
func IslandOf(t TileID) int {
	if !t.Valid() {
		panic(fmt.Sprintf("scc: invalid tile %d", t))
	}
	c := t.Coord()
	return (c.X / 2) + islandCols*(c.Y/2)
}

// IslandTiles returns the four tiles of a voltage island.
func IslandTiles(island int) []TileID {
	if island < 0 || island >= VoltageIslands {
		panic(fmt.Sprintf("scc: invalid voltage island %d", island))
	}
	x0 := (island % islandCols) * 2
	y0 := (island / islandCols) * 2
	var out []TileID
	for dy := 0; dy < 2; dy++ {
		for dx := 0; dx < 2; dx++ {
			out = append(out, TileAt(mesh.Coord{X: x0 + dx, Y: y0 + dy}))
		}
	}
	return out
}

// IslandVoltage returns the rail voltage of an island under the given
// domains: the voltage demanded by its fastest tile.
func IslandVoltage(d FreqDomains, island int) float64 {
	maxF := 0
	for _, t := range IslandTiles(island) {
		if f := d.TileMHz[t]; f > maxF {
			maxF = f
		}
	}
	return Voltage(maxF)
}

// FullSystemPower returns the modelled chip power in watts with every tile
// clocked per the domains (all 48 cores active, the configuration in which
// the paper reports power). Each tile's dynamic power uses its own clock
// but its island's shared rail voltage.
func FullSystemPower(d FreqDomains) float64 {
	p := staticWatts
	var islandV [VoltageIslands]float64
	for i := range islandV {
		islandV[i] = IslandVoltage(d, i)
	}
	for t, f := range d.TileMHz {
		v := islandV[IslandOf(TileID(t))]
		p += CoresPerTile * kCoreWattsPerMHzV2 * float64(f) * v * v
	}
	p += kMeshWattsPerMHz * float64(d.MeshMHz)
	p += kMemWattsPerMHz * float64(d.MemMHz)
	return p
}

// ConfigPower returns the full-system power of a uniform configuration.
func ConfigPower(c ClockConfig) float64 { return FullSystemPower(Uniform(c)) }

// MFLOPSPerWatt is the paper's power-efficiency metric: full-system
// MFLOPS/s divided by full-system watts.
func MFLOPSPerWatt(gflops, watts float64) float64 {
	if watts <= 0 {
		return 0
	}
	return gflops * 1000 / watts
}
