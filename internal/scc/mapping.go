package scc

import (
	"fmt"
	"math/rand"
	"sort"
)

// Mapping assigns RCCE units of execution (ranks) to physical cores:
// Mapping[rank] = core. The paper's Section IV-A shows the choice matters:
// its "distance reduction" policy beats the default by up to 1.23x.
type Mapping []CoreID

// Validate checks that the mapping uses valid, distinct cores.
func (m Mapping) Validate() error {
	if len(m) == 0 || len(m) > NumCores {
		return fmt.Errorf("scc: mapping size %d outside [1, %d]", len(m), NumCores)
	}
	seen := map[CoreID]bool{}
	for rank, c := range m {
		if !c.Valid() {
			return fmt.Errorf("scc: rank %d mapped to invalid core %d", rank, c)
		}
		if seen[c] {
			return fmt.Errorf("scc: core %d mapped twice", c)
		}
		seen[c] = true
	}
	return nil
}

// MaxHops returns the largest core-to-controller distance in the mapping.
func (m Mapping) MaxHops() int {
	best := 0
	for _, c := range m {
		if h := HopsToMC(c); h > best {
			best = h
		}
	}
	return best
}

// MeanHops returns the average core-to-controller distance.
func (m Mapping) MeanHops() float64 {
	if len(m) == 0 {
		return 0
	}
	s := 0
	for _, c := range m {
		s += HopsToMC(c)
	}
	return float64(s) / float64(len(m))
}

// MappingPolicy names a UE-to-core placement strategy.
type MappingPolicy string

const (
	// MapStandard is the RCCE default: rank r runs on core r
	// (Figure 4(a)). It ignores memory distance entirely.
	MapStandard MappingPolicy = "standard"
	// MapDistanceReduction places ranks on the available cores with the
	// fewest hops to their memory controller (Figure 4(b)), balancing
	// across the four controllers at each distance level.
	MapDistanceReduction MappingPolicy = "distance"
	// MapRandom places ranks on uniformly random distinct cores; a
	// baseline for the mapping study.
	MapRandom MappingPolicy = "random"
)

// Map builds a mapping of n ranks under the policy. seed is used only by
// MapRandom.
func Map(policy MappingPolicy, n int, seed int64) (Mapping, error) {
	if n <= 0 || n > NumCores {
		return nil, fmt.Errorf("scc: cannot map %d units onto %d cores", n, NumCores)
	}
	switch policy {
	case MapStandard:
		return StandardMapping(n), nil
	case MapDistanceReduction:
		return DistanceReductionMapping(n), nil
	case MapRandom:
		return RandomMapping(n, seed), nil
	default:
		return nil, fmt.Errorf("scc: unknown mapping policy %q", policy)
	}
}

// StandardMapping is the RCCE default: ranks 0..n-1 on cores 0..n-1.
func StandardMapping(n int) Mapping {
	m := make(Mapping, n)
	for i := range m {
		m[i] = CoreID(i)
	}
	return m
}

// DistanceReductionMapping selects the n cores with the lowest hop count to
// their memory controller, filling distance level by distance level. Within
// a level it round-robins across the four controllers so memory load stays
// balanced, and within a controller it takes cores in ascending id order.
// With n=4 this yields cores 0, 1, 10 and 11 - the two 0-hop tiles of the
// bottom quadrants - matching the paper's worked example exactly.
func DistanceReductionMapping(n int) Mapping {
	// Group 0-hop..3-hop cores per controller.
	perMC := make([][][]CoreID, NumControllers) // [mc][hops][]cores
	for mc := 0; mc < NumControllers; mc++ {
		perMC[mc] = make([][]CoreID, 4)
	}
	for c := CoreID(0); c < NumCores; c++ {
		mc := ControllerFor(c).ID
		h := HopsToMC(c)
		perMC[mc][h] = append(perMC[mc][h], c)
	}
	m := make(Mapping, 0, n)
	for h := 0; h < 4 && len(m) < n; h++ {
		// Round-robin controllers, two cores (one tile) at a time so
		// tile pairs stay together like the paper's example.
		idx := [NumControllers]int{}
		for len(m) < n {
			progressed := false
			for mc := 0; mc < NumControllers && len(m) < n; mc++ {
				for take := 0; take < CoresPerTile && idx[mc] < len(perMC[mc][h]) && len(m) < n; take++ {
					m = append(m, perMC[mc][h][idx[mc]])
					idx[mc]++
					progressed = true
				}
			}
			if !progressed {
				break // level exhausted
			}
		}
	}
	return m
}

// RandomMapping places n ranks on distinct uniformly random cores.
func RandomMapping(n int, seed int64) Mapping {
	perm := rand.New(rand.NewSource(seed)).Perm(NumCores)
	m := make(Mapping, n)
	for i := 0; i < n; i++ {
		m[i] = CoreID(perm[i])
	}
	sort.Slice(m, func(a, b int) bool { return m[a] < m[b] })
	return m
}
