package scc

import (
	"strings"
	"testing"
)

func TestRenderChipShowsAllCoresAndControllers(t *testing.T) {
	out := RenderChip()
	// Corner tiles' core pairs must appear.
	for _, want := range []string{" 0,1 ", "10,11", "36,37", "46,47"} {
		if !strings.Contains(out, want) {
			t.Errorf("chip map missing %q:\n%s", want, out)
		}
	}
	for _, mc := range []string{"MC0 ->", " <- MC1", "MC2 ->", " <- MC3"} {
		if !strings.Contains(out, mc) {
			t.Errorf("chip map missing controller label %q:\n%s", mc, out)
		}
	}
	// 4 tile rows + 5 borders = at least 9 lines.
	if n := strings.Count(out, "\n"); n < 9 {
		t.Fatalf("chip map has %d lines:\n%s", n, out)
	}
}

func TestRenderMappingMarksUsedCores(t *testing.T) {
	out := RenderMapping(DistanceReductionMapping(4)) // cores 0,1,10,11
	if !strings.Contains(out, " 0, 1") {
		t.Errorf("ranks 0,1 not on tile 0:\n%s", out)
	}
	if !strings.Contains(out, " 2, 3") {
		t.Errorf("ranks 2,3 not on tile 5:\n%s", out)
	}
	if !strings.Contains(out, "--,--") {
		t.Errorf("unused cores not marked:\n%s", out)
	}
}

func TestRenderMappingFullChipHasNoGaps(t *testing.T) {
	out := RenderMapping(StandardMapping(48))
	if strings.Contains(out, "--,") || strings.Contains(out, ",--") {
		t.Fatalf("full mapping shows unused cores:\n%s", out)
	}
}
