package serve

import (
	"fmt"
	"testing"
)

func storeResult(hash string, bytes int) *Result {
	return &Result{Hash: hash, Experiment: "fig3", Title: "t", Text: make([]byte, bytes)}
}

func TestStoreLRUEviction(t *testing.T) {
	one := storeResult("a", 0).sizeBytes()
	s := NewResultStore(3 * one)
	s.Put(storeResult("a", 0))
	s.Put(storeResult("b", 0))
	s.Put(storeResult("c", 0))
	if _, ok := s.Get("a"); !ok { // refresh a: b is now LRU
		t.Fatal("a missing before any eviction")
	}
	s.Put(storeResult("d", 0))
	if _, ok := s.Get("b"); ok {
		t.Error("b survived; LRU order ignored the Get refresh")
	}
	for _, h := range []string{"a", "c", "d"} {
		if _, ok := s.Get(h); !ok {
			t.Errorf("%s evicted, want resident", h)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Resident != 3 {
		t.Errorf("stats = %+v, want 1 eviction, 3 resident", st)
	}
}

func TestStoreOversizeAndDuplicate(t *testing.T) {
	s := NewResultStore(1 << 10)
	s.Put(storeResult("big", 2<<10))
	if _, ok := s.Get("big"); ok {
		t.Error("result larger than the whole budget was retained")
	}

	first := storeResult("x", 8)
	s.Put(first)
	dup := storeResult("x", 8)
	s.Put(dup)
	got, ok := s.Get("x")
	if !ok || got != first {
		t.Error("duplicate Put replaced the first copy; first-copy-wins is the contract")
	}
	if st := s.Stats(); st.Resident != 1 {
		t.Errorf("resident = %d after duplicate Put, want 1", st.Resident)
	}
}

func TestStoreZeroBudgetRetainsNothing(t *testing.T) {
	s := NewResultStore(0)
	s.Put(storeResult("a", 0))
	if _, ok := s.Get("a"); ok {
		t.Error("zero-budget store retained a result")
	}
}

// TestStorePeekLeavesAccountingAlone pins the status-polling contract:
// peek must neither count as a hit/miss nor refresh recency, or every
// progress poll would distort cache-effectiveness metrics and pin jobs
// being watched.
func TestStorePeekLeavesAccountingAlone(t *testing.T) {
	one := storeResult("a", 0).sizeBytes()
	s := NewResultStore(2 * one)
	s.Put(storeResult("a", 0))
	s.Put(storeResult("b", 0))
	for i := 0; i < 10; i++ { // heavy polling of the LRU entry
		if _, ok := s.peek("a"); !ok {
			t.Fatal("peek lost a resident result")
		}
		if _, ok := s.peek("missing"); ok {
			t.Fatal("peek invented a result")
		}
	}
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("peek moved the counters: %+v", st)
	}
	s.Put(storeResult("c", 0)) // must evict a (oldest Put), not b
	if _, ok := s.peek("a"); ok {
		t.Error("peek refreshed recency: a survived eviction")
	}
	if _, ok := s.peek("b"); !ok {
		t.Error("b evicted instead of the peeked-but-older a")
	}
}

func TestStoreBudgetRespected(t *testing.T) {
	s := NewResultStore(4 << 10)
	for i := 0; i < 64; i++ {
		s.Put(storeResult(fmt.Sprintf("h%02d", i), 256))
	}
	st := s.Stats()
	if st.UsedBytes > st.BudgetBytes {
		t.Errorf("used %d exceeds budget %d", st.UsedBytes, st.BudgetBytes)
	}
	if st.Evictions == 0 {
		t.Error("64 oversubscribed puts evicted nothing")
	}
}
