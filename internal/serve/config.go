// Package serve is the simulation-as-a-service layer: a long-running
// HTTP/JSON daemon (cmd/sccsimd) that wraps the deterministic experiment
// harness (internal/experiments) behind a job API. Clients POST job
// configurations, receive job IDs, poll or stream progress (fed by the
// internal/obs span tree and counter scopes), and fetch the rendered
// tables when done.
//
// Determinism is the service's lever: every (experiment, scale, machine,
// pricing) cell has exactly one answer, so finished results land in a
// content-addressed store keyed by a canonical hash of the normalized job
// configuration. Resubmitting an identical job is a cache hit served with
// bit-identical bytes and zero simulation work, and duplicate submissions
// that arrive while the first is still queued or running coalesce onto
// that one execution (single-flight).
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/experiments"
	"repro/internal/rcce"
	"repro/internal/sim"
)

// JobConfig is the wire form of one simulation request. The zero value
// of every optional field selects the server-side default, mirroring
// cmd/sccsim's flags.
type JobConfig struct {
	// Experiment is the registry id to run (e.g. "fig5"; required).
	Experiment string `json:"experiment"`
	// Scale shrinks every testbed matrix, in (0, 1]. 0 means the
	// standard quarter scale.
	Scale float64 `json:"scale,omitempty"`
	// Stride keeps only every Stride-th testbed entry (0 or 1 = all).
	Stride int `json:"stride,omitempty"`
	// MaxMatrices truncates the selected testbed (0 = all).
	MaxMatrices int `json:"max_matrices,omitempty"`
	// Pricing selects the cache-pricing backend: "exact", "analytic" or
	// "" / "auto" (analytic only where provably bit-identical).
	Pricing string `json:"pricing,omitempty"`
	// FailFast aborts the job at the first failing cell instead of
	// isolating it into an error row.
	FailFast bool `json:"fail_fast,omitempty"`
	// Parallelism bounds the host worker pool of THIS job's engine
	// (0 = GOMAXPROCS). An engine knob, not a result knob: the engine is
	// bit-deterministic at every worker count, so Parallelism is
	// excluded from the result hash.
	Parallelism int `json:"parallelism,omitempty"`
	// Engine selects the RCCE backend for executable-runtime experiments:
	// "goroutine" (or "", the default) or "des" (the virtual-time
	// scheduler). An engine knob like Parallelism, not a result knob: the
	// cross-engine determinism tests prove both backends render
	// bit-identical tables, so Engine is excluded from the result hash
	// and identical jobs on different engines share one cached result.
	Engine string `json:"engine,omitempty"`
	// DeadlineSec bounds the job's execution (0 = the server default).
	// Also excluded from the result hash: a deadline changes whether a
	// result is produced, never which bytes it holds.
	DeadlineSec float64 `json:"deadline_sec,omitempty"`
}

// Canonical validates the config and fills every defaulted field,
// returning the normalized form that Key and Hash are defined over.
// Two requests that normalize identically ARE the same job.
func (c JobConfig) Canonical() (JobConfig, error) {
	if c.Experiment == "" {
		return c, fmt.Errorf("serve: job config needs an experiment id")
	}
	if _, ok := experiments.ByID(c.Experiment); !ok {
		return c, fmt.Errorf("serve: unknown experiment %q", c.Experiment)
	}
	if c.Scale == 0 {
		c.Scale = 0.25
	}
	if c.Scale <= 0 || c.Scale > 1 {
		return c, fmt.Errorf("serve: scale %v outside (0, 1]", c.Scale)
	}
	if c.Stride == 0 {
		c.Stride = 1
	}
	if c.Stride < 1 {
		return c, fmt.Errorf("serve: stride %d invalid: need >= 1", c.Stride)
	}
	if c.MaxMatrices < 0 {
		return c, fmt.Errorf("serve: max_matrices %d invalid: need >= 0", c.MaxMatrices)
	}
	p, err := sim.ParsePricing(c.Pricing)
	if err != nil {
		return c, fmt.Errorf("serve: %w", err)
	}
	c.Pricing = p.String()
	b, err := rcce.ParseBackend(c.Engine)
	if err != nil {
		return c, fmt.Errorf("serve: %w", err)
	}
	c.Engine = b.String()
	if c.Parallelism < 0 {
		return c, fmt.Errorf("serve: parallelism %d invalid: need >= 0", c.Parallelism)
	}
	if c.DeadlineSec < 0 {
		return c, fmt.Errorf("serve: deadline_sec %v invalid: need >= 0", c.DeadlineSec)
	}
	return c, nil
}

// Key is the canonical content identity of the job's RESULT: every
// normalized field that shapes the rendered bytes, and nothing else.
// Parallelism, DeadlineSec and Engine are deliberately absent - the
// engine's determinism tests prove worker count never changes a byte, a
// deadline only decides whether bytes are produced at all, and the
// goroutine and DES backends render bit-identical tables (the
// cross-engine determinism tests). Callers must pass a
// Canonical()-normalized config.
func (c JobConfig) Key() string {
	return fmt.Sprintf("sccsimd-job/v1|exp=%s|scale=%g|stride=%d|max=%d|pricing=%s|failfast=%t",
		c.Experiment, c.Scale, c.Stride, c.MaxMatrices, c.Pricing, c.FailFast)
}

// Hash is the content address of the job's result: the hex SHA-256 of
// Key. It keys the result store and single-flight coalescing.
func (c JobConfig) Hash() string {
	sum := sha256.Sum256([]byte(c.Key()))
	return hex.EncodeToString(sum[:])
}

// pricing resolves the normalized pricing string (Canonical validated it).
func (c JobConfig) pricing() sim.Pricing {
	p, _ := sim.ParsePricing(c.Pricing)
	return p
}

// engine resolves the normalized engine string (Canonical validated it).
func (c JobConfig) engine() rcce.Backend {
	b, _ := rcce.ParseBackend(c.Engine) //sccvet:allow error-discard Canonical already validated and normalized the engine string; this re-parse cannot fail
	return b
}
