package serve

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// Result-store observability (internal/obs, write-only).
var (
	storeHits      = obs.Default.Counter("serve.store.hits")
	storeMisses    = obs.Default.Counter("serve.store.misses")
	storeEvictions = obs.Default.Counter("serve.store.evictions")
	storeUsed      = obs.Default.Gauge("serve.store.used_bytes")
	storeResident  = obs.Default.Gauge("serve.store.resident")
)

// Result is one finished experiment execution in its cacheable form:
// the exact bytes any client fetching this content address receives.
// Results are immutable once stored - the determinism contract makes a
// regenerated result bit-identical, so there is never a reason to
// replace one.
type Result struct {
	// Hash is the content address (JobConfig.Hash).
	Hash string `json:"hash"`
	// Experiment and Title identify what ran.
	Experiment string `json:"experiment"`
	Title      string `json:"title"`
	// Tables counts the rendered tables (including a trailing failed-
	// cells table when units were isolated); Failed the isolated units.
	Tables int `json:"tables"`
	Failed int `json:"failed_cells"`
	// Text and CSV are the rendered artefacts (experiments.RunOutput).
	Text []byte `json:"-"`
	CSV  []byte `json:"-"`
}

func (r *Result) sizeBytes() int64 {
	return int64(len(r.Text) + len(r.CSV) + len(r.Hash) + len(r.Experiment) + len(r.Title) + 64)
}

// ResultStore is the content-addressed cache of finished results: a
// byte-budgeted LRU keyed by config hash, the same shape as the matrix
// cache but for rendered artefacts. A non-positive budget disables
// retention (every lookup misses; the daemon then recomputes - correct,
// just slow).
type ResultStore struct {
	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List // front = most recently used; values are *storeEntry
	byHash map[string]*list.Element

	hits, misses, evictions uint64
}

type storeEntry struct {
	hash string
	res  *Result
}

// NewResultStore builds a store keeping at most budgetBytes of rendered
// results resident.
func NewResultStore(budgetBytes int64) *ResultStore {
	return &ResultStore{
		budget: budgetBytes,
		lru:    list.New(),
		byHash: make(map[string]*list.Element),
	}
}

// Get returns the result stored under the content address, refreshing
// its LRU position.
func (s *ResultStore) Get(hash string) (*Result, bool) {
	s.mu.Lock()
	if el, ok := s.byHash[hash]; ok {
		s.lru.MoveToFront(el)
		s.hits++
		r := el.Value.(*storeEntry).res
		s.mu.Unlock()
		storeHits.Add(1)
		return r, true
	}
	s.misses++
	s.mu.Unlock()
	storeMisses.Add(1)
	return nil, false
}

// peek returns the result without touching the LRU order or the
// hit/miss counters - status polling must not skew cache-effectiveness
// accounting or keep entries artificially hot.
func (s *ResultStore) peek(hash string) (*Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byHash[hash]; ok {
		return el.Value.(*storeEntry).res, true
	}
	return nil, false
}

// Put stores a result under its content address, evicting LRU results
// to respect the byte budget. The first copy wins on a duplicate hash
// (bit-identical by the determinism contract, so nothing is lost).
// Results larger than the whole budget are not retained.
func (s *ResultStore) Put(r *Result) {
	size := r.sizeBytes()
	s.mu.Lock()
	if el, ok := s.byHash[r.Hash]; ok {
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	if size > s.budget {
		s.mu.Unlock()
		return
	}
	var evicted uint64
	for s.used+size > s.budget {
		back := s.lru.Back()
		ent := back.Value.(*storeEntry)
		s.lru.Remove(back)
		delete(s.byHash, ent.hash)
		s.used -= ent.res.sizeBytes()
		s.evictions++
		evicted++
	}
	s.byHash[r.Hash] = s.lru.PushFront(&storeEntry{hash: r.Hash, res: r})
	s.used += size
	used, resident := s.used, s.lru.Len()
	s.mu.Unlock()
	storeEvictions.Add(evicted)
	storeUsed.Set(used)
	storeResident.Set(int64(resident))
}

// StoreStats is a point-in-time snapshot of store effectiveness.
type StoreStats struct {
	Hits, Misses, Evictions uint64
	Resident                int
	UsedBytes, BudgetBytes  int64
}

// Stats returns a snapshot of the store counters.
func (s *ResultStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Hits:        s.hits,
		Misses:      s.misses,
		Evictions:   s.evictions,
		Resident:    s.lru.Len(),
		UsedBytes:   s.used,
		BudgetBytes: s.budget,
	}
}
