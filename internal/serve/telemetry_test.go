package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
)

// getBody fetches a URL raw, failing the test on transport errors or a
// non-200 status, and returns body plus Content-Type.
func getBody(t *testing.T, url string) ([]byte, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	return body, resp.Header.Get("Content-Type")
}

// TestServeMetricsPrometheus: /metrics must serve a lint-clean
// Prometheus text exposition with the job-latency histogram ladders in
// it after a job ran.
func TestServeMetricsPrometheus(t *testing.T) {
	_, base := startDaemon(t, ServerConfig{Workers: 1})
	st, _, _ := postJob(t, base, tinyJob())
	if done := waitTerminal(t, base, st.ID); done.State != StateDone {
		t.Fatalf("job ended %s (%s)", done.State, done.Error)
	}

	body, ctype := getBody(t, base+"/metrics")
	if ctype != obs.PromContentType {
		t.Errorf("content type %q, want %q", ctype, obs.PromContentType)
	}
	if err := obs.LintPrometheus(body, nil); err != nil {
		t.Fatalf("/metrics failed the prometheus lint: %v", err)
	}
	text := string(body)
	for _, want := range []string{
		"serve_jobs_exec_seconds_bucket{le=",
		"serve_jobs_queue_wait_seconds_bucket{le=",
		"serve_jobs_completed_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics misses %q", want)
		}
	}
}

// TestServeTraceEndpoint: a done job's /trace must be lint-clean Chrome
// trace-event JSON whose tracks include the job lifecycle row and at
// least one pool worker row.
func TestServeTraceEndpoint(t *testing.T) {
	_, base := startDaemon(t, ServerConfig{Workers: 1})
	st, _, _ := postJob(t, base, tinyJob())
	if done := waitTerminal(t, base, st.ID); done.State != StateDone {
		t.Fatalf("job ended %s (%s)", done.State, done.Error)
	}

	body, ctype := getBody(t, base+"/api/v1/jobs/"+st.ID+"/trace")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("content type %q, want application/json", ctype)
	}
	if err := obs.LintTrace(body); err != nil {
		t.Fatalf("trace failed the lint: %v", err)
	}
	tracks, err := obs.TraceTrackNames(body)
	if err != nil {
		t.Fatal(err)
	}
	var lifecycle, worker bool
	for _, tr := range tracks {
		if tr == "serve.job" {
			lifecycle = true
		}
		if strings.Contains(tr, "/w") {
			worker = true
		}
	}
	if !lifecycle {
		t.Errorf("trace misses the serve.job lifecycle track (tracks: %v)", tracks)
	}
	if !worker {
		t.Errorf("trace misses every pool worker track (tracks: %v)", tracks)
	}
}

// TestServeDoneJobShipsNoFlight: a successful job's status payload must
// not carry a flight tail - recorders are post-mortem only.
func TestServeDoneJobShipsNoFlight(t *testing.T) {
	_, base := startDaemon(t, ServerConfig{Workers: 1})
	st, _, _ := postJob(t, base, tinyJob())
	done := waitTerminal(t, base, st.ID)
	if done.State != StateDone {
		t.Fatalf("job ended %s (%s)", done.State, done.Error)
	}
	if done.Flight != nil {
		t.Errorf("done job shipped a flight tail with %d events", len(done.Flight.Events))
	}
}

// TestChaosServeWedgedJobCarriesFlightTail is the flight recorder's
// acceptance scenario: a WedgeCell fault makes the first cell run a
// communication program whose peer rank hangs, the watchdog converts
// the hang into a DeadlockError, and the failed job's status payload
// must arrive with a non-empty flight tail that names the wedged rank
// and ends at the terminal transition.
func TestChaosServeWedgedJobCarriesFlightTail(t *testing.T) {
	_, base := startDaemon(t, ServerConfig{
		Workers: 1,
		Fault:   &fault.Plan{WedgeCell: &fault.Cell{Index: 0}},
	})
	st, _, _ := postJob(t, base, JobConfig{
		Experiment: "fig3", Scale: 0.05, Stride: 16, MaxMatrices: 1, FailFast: true,
	})
	done := waitTerminal(t, base, st.ID)
	if done.State != StateFailed {
		t.Fatalf("wedged job ended %s (%s), want failed", done.State, done.Error)
	}
	if !strings.Contains(done.Error, "deadlock") {
		t.Errorf("wedged job's error is not a deadlock: %q", done.Error)
	}
	if done.Flight == nil || len(done.Flight.Events) == 0 {
		t.Fatal("wedged job carries no flight-recorder tail")
	}
	events := done.Flight.Events
	if last := events[len(events)-1]; last.Kind != "state" || last.Name != string(StateFailed) {
		t.Errorf("flight tail ends at %s/%s, want the failed state transition", last.Kind, last.Name)
	}
	var verdict, wedged bool
	for _, e := range events {
		if e.Kind == "deadlock" && strings.Contains(e.Detail, "rank") {
			verdict = true
		}
		if e.Kind == "fault_wedge" {
			wedged = true
		}
	}
	if !verdict {
		t.Error("flight tail has no watchdog deadlock verdict naming the wedged rank")
	}
	if !wedged {
		t.Error("flight tail has no fault_wedge event for the wedged cell")
	}
	// Seq must be strictly increasing: the tail is a coherent timeline.
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("flight events out of order: seq %d after %d", events[i].Seq, events[i-1].Seq)
		}
	}

	// The daemon-wide post-mortem view lists the wreck too.
	body, _ := getBody(t, base+"/debug/flight")
	var wrecks []struct {
		ID     string              `json:"id"`
		State  JobState            `json:"state"`
		Flight *obs.FlightSnapshot `json:"flight"`
	}
	if err := json.Unmarshal(body, &wrecks); err != nil {
		t.Fatalf("decoding /debug/flight: %v", err)
	}
	var listed bool
	for _, w := range wrecks {
		if w.ID == st.ID {
			listed = true
			if w.Flight == nil || len(w.Flight.Events) == 0 {
				t.Error("/debug/flight lists the wreck without its events")
			}
		}
	}
	if !listed {
		t.Errorf("/debug/flight does not list wedged job %s", st.ID)
	}

	// The wedged job's trace must still export and lint: the flight
	// tracks (rcce, lifecycle) become timeline rows.
	trace, _ := getBody(t, base+"/api/v1/jobs/"+st.ID+"/trace")
	if err := obs.LintTrace(trace); err != nil {
		t.Fatalf("wedged job's trace failed the lint: %v", err)
	}
	tracks, err := obs.TraceTrackNames(trace)
	if err != nil {
		t.Fatal(err)
	}
	var rcceTrack bool
	for _, tr := range tracks {
		if tr == "rcce" {
			rcceTrack = true
		}
	}
	if !rcceTrack {
		t.Errorf("wedged job's trace misses the rcce track (tracks: %v)", tracks)
	}
}
