package serve

import (
	"strings"
	"testing"
)

func mustCanonical(t *testing.T, cfg JobConfig) JobConfig {
	t.Helper()
	c, err := cfg.Canonical()
	if err != nil {
		t.Fatalf("Canonical(%+v): %v", cfg, err)
	}
	return c
}

func TestCanonicalFillsDefaults(t *testing.T) {
	c := mustCanonical(t, JobConfig{Experiment: "fig3"})
	if c.Scale != 0.25 {
		t.Errorf("default scale = %v, want 0.25", c.Scale)
	}
	if c.Stride != 1 {
		t.Errorf("default stride = %d, want 1", c.Stride)
	}
	if c.Pricing != "auto" {
		t.Errorf("default pricing = %q, want auto", c.Pricing)
	}
	// Normalization is idempotent: canonicalizing a canonical config is
	// the identity, so defaulted and explicit requests share one hash.
	again := mustCanonical(t, c)
	if again != c {
		t.Errorf("Canonical is not idempotent: %+v vs %+v", c, again)
	}
	explicit := mustCanonical(t, JobConfig{Experiment: "fig3", Scale: 0.25, Stride: 1, Pricing: "auto"})
	if explicit.Hash() != c.Hash() {
		t.Error("defaulted and explicitly-spelled configs hash differently")
	}
}

func TestCanonicalRejectsInvalid(t *testing.T) {
	bad := []struct {
		name string
		cfg  JobConfig
	}{
		{"no experiment", JobConfig{}},
		{"unknown experiment", JobConfig{Experiment: "nope"}},
		{"scale too big", JobConfig{Experiment: "fig3", Scale: 1.5}},
		{"negative scale", JobConfig{Experiment: "fig3", Scale: -0.1}},
		{"negative stride", JobConfig{Experiment: "fig3", Stride: -1}},
		{"negative max", JobConfig{Experiment: "fig3", MaxMatrices: -1}},
		{"bad pricing", JobConfig{Experiment: "fig3", Pricing: "psychic"}},
		{"negative parallelism", JobConfig{Experiment: "fig3", Parallelism: -1}},
		{"negative deadline", JobConfig{Experiment: "fig3", DeadlineSec: -1}},
	}
	for _, tc := range bad {
		if _, err := tc.cfg.Canonical(); err == nil {
			t.Errorf("%s: Canonical accepted %+v", tc.name, tc.cfg)
		}
	}
}

// TestHashExcludesEngineKnobs pins the content-address contract:
// Parallelism and DeadlineSec shape execution, never the result bytes,
// so they must not split the cache.
func TestHashExcludesEngineKnobs(t *testing.T) {
	base := mustCanonical(t, JobConfig{Experiment: "fig3", Scale: 0.05, Stride: 16})
	par := mustCanonical(t, JobConfig{Experiment: "fig3", Scale: 0.05, Stride: 16, Parallelism: 7, DeadlineSec: 3})
	if base.Hash() != par.Hash() {
		t.Errorf("parallelism/deadline changed the hash:\n%s\n%s", base.Key(), par.Key())
	}

	// Every result-shaping knob must split it.
	variants := []JobConfig{
		{Experiment: "fig5", Scale: 0.05, Stride: 16},
		{Experiment: "fig3", Scale: 0.1, Stride: 16},
		{Experiment: "fig3", Scale: 0.05, Stride: 8},
		{Experiment: "fig3", Scale: 0.05, Stride: 16, MaxMatrices: 1},
		{Experiment: "fig3", Scale: 0.05, Stride: 16, Pricing: "exact"},
		{Experiment: "fig3", Scale: 0.05, Stride: 16, FailFast: true},
	}
	seen := map[string]string{base.Hash(): base.Key()}
	for _, v := range variants {
		c := mustCanonical(t, v)
		if prev, dup := seen[c.Hash()]; dup {
			t.Errorf("distinct configs collide:\n%s\n%s", prev, c.Key())
		}
		seen[c.Hash()] = c.Key()
	}
}

func TestKeyIsVersioned(t *testing.T) {
	c := mustCanonical(t, JobConfig{Experiment: "fig3"})
	if !strings.HasPrefix(c.Key(), "sccsimd-job/v1|") {
		t.Errorf("key %q lacks the schema-version prefix", c.Key())
	}
}
