package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// Job-daemon observability (internal/obs, write-only). The running and
// queued gauges track live occupancy; everything else is monotone.
var (
	jobsSubmitted = obs.Default.Counter("serve.jobs.submitted")
	jobsCacheHits = obs.Default.Counter("serve.jobs.cache_hits")
	jobsCoalesced = obs.Default.Counter("serve.jobs.coalesced")
	jobsCompleted = obs.Default.Counter("serve.jobs.completed")
	jobsFailed    = obs.Default.Counter("serve.jobs.failed")
	jobsCancelled = obs.Default.Counter("serve.jobs.cancelled")
	jobsRejected  = obs.Default.Counter("serve.jobs.rejected")
	jobsRunning   = obs.Default.Gauge("serve.jobs.running")
	jobsQueued    = obs.Default.Gauge("serve.jobs.queued")
	// Latency histograms: how long jobs sat in the queue and how long
	// they executed (mergeable log buckets; exported with quantiles on
	// the JSON snapshot and as a cumulative ladder on /metrics).
	jobsQueueWait = obs.Default.Histogram("serve.jobs.queue_wait_seconds")
	jobsExecTime  = obs.Default.Histogram("serve.jobs.exec_seconds")
	// workerPool instruments the bounded job executors: serve.worker.tasks
	// counts worker lifetimes, not jobs - per-job metrics live above.
	workerPool = obs.Default.Pool("serve.worker")
	// runPool fans the daemon's long-lived tasks (HTTP serving, shutdown
	// supervision, workers) out without bare goroutines.
	runPool = obs.Default.Pool("serve.run")
)

// ServerConfig sizes the daemon.
type ServerConfig struct {
	// Workers bounds the pool executing jobs (0 = GOMAXPROCS). Each job
	// additionally fans its own cells over the engine pool, so the
	// effective host load is Workers x per-job Parallelism.
	Workers int
	// QueueDepth bounds accepted-but-unstarted jobs; submissions beyond
	// it are rejected with 503 (0 = 64).
	QueueDepth int
	// DefaultDeadline bounds jobs that do not set their own DeadlineSec
	// (0 = 15 minutes).
	DefaultDeadline time.Duration
	// MatrixCacheBytes budgets the shared generated-matrix cache all
	// jobs draw from (0 = experiments.DefaultMatrixCacheBytes).
	MatrixCacheBytes int64
	// ResultStoreBytes budgets the content-addressed result cache
	// (0 = 256 MiB).
	ResultStoreBytes int64
	// MaxJobs bounds retained finished job records; the oldest finished
	// jobs are pruned beyond it (0 = 4096). Queued and running jobs are
	// never pruned.
	MaxJobs int
	// Fault arms a deterministic fault-injection plan on every job's
	// engine (chaos tests; nil injects nothing).
	Fault *fault.Plan
	// FlightEvents bounds each job's flight-recorder ring - the last N
	// structured events retained for post-mortems (0 = 1024).
	FlightEvents int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 15 * time.Minute
	}
	if c.MatrixCacheBytes <= 0 {
		c.MatrixCacheBytes = experiments.DefaultMatrixCacheBytes
	}
	if c.ResultStoreBytes <= 0 {
		c.ResultStoreBytes = 256 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.FlightEvents <= 0 {
		c.FlightEvents = 1024
	}
	return c
}

// Server is the sccsimd daemon: job intake, single-flight coalescing,
// the bounded worker pool, and the content-addressed result store.
type Server struct {
	cfg      ServerConfig
	store    *ResultStore
	matrices *sparse.MatrixCache
	queue    chan *Job

	mu       sync.Mutex
	jobs     map[string]*Job // by job ID
	order    []string        // submission order, for pruning
	inflight map[string]*Job // hash -> queued/running job (single-flight)
	nextID   uint64
}

// NewServer builds a daemon from the configuration (zero fields take
// defaults).
func NewServer(cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		store:    NewResultStore(cfg.ResultStoreBytes),
		matrices: sparse.NewMatrixCache(cfg.MatrixCacheBytes),
		queue:    make(chan *Job, cfg.QueueDepth),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
}

// Store exposes the result store (selfcheck and tests).
func (s *Server) Store() *ResultStore { return s.store }

// SubmitOutcome reports how a submission was absorbed.
type SubmitOutcome struct {
	// Status is the submitted (or coalesced-onto) job's state snapshot.
	Status JobStatus
	// Cached: the result was already in the content-addressed store;
	// the job is born done and fetchable without any simulation.
	Cached bool
	// Coalesced: an identical job was already queued or running; Status
	// describes THAT job and no new execution was scheduled.
	Coalesced bool
}

// Submit normalizes and enqueues one job configuration, implementing
// the cache/coalesce ladder: result-store hit -> born-done job;
// identical job in flight -> coalesce onto it; otherwise queue a fresh
// execution (rejected with an error when the queue is full).
func (s *Server) Submit(cfg JobConfig) (SubmitOutcome, error) {
	canon, err := cfg.Canonical()
	if err != nil {
		return SubmitOutcome{}, err
	}
	hash := canon.Hash()
	jobsSubmitted.Add(1)

	s.mu.Lock()
	if j, ok := s.inflight[hash]; ok {
		j.mu.Lock()
		j.coalesce++
		j.mu.Unlock()
		s.mu.Unlock()
		jobsCoalesced.Add(1)
		return SubmitOutcome{Status: j.status(s.store), Coalesced: true}, nil
	}
	if _, ok := s.store.Get(hash); ok {
		j := s.newJobLocked(canon)
		j.state = StateDone
		j.cached = true
		j.finished = j.created
		close(j.done)
		s.mu.Unlock()
		jobsCacheHits.Add(1)
		jobsCompleted.Add(1)
		return SubmitOutcome{Status: j.status(s.store), Cached: true}, nil
	}
	j := s.newJobLocked(canon)
	select {
	case s.queue <- j:
		s.inflight[hash] = j
		jobsQueued.Set(int64(len(s.queue)))
		s.mu.Unlock()
		return SubmitOutcome{Status: j.status(s.store)}, nil
	default:
		// Queue full: drop the record again and reject.
		delete(s.jobs, j.ID)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		jobsRejected.Add(1)
		return SubmitOutcome{}, fmt.Errorf("serve: job queue full (%d queued); retry later", s.cfg.QueueDepth)
	}
}

// newJobLocked mints a job record and registers it; callers hold s.mu.
func (s *Server) newJobLocked(cfg JobConfig) *Job {
	s.nextID++
	id := fmt.Sprintf("job-%06d", s.nextID)
	j := newJob(id, cfg, s.cfg.FlightEvents)
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.pruneLocked()
	return j
}

// pruneLocked drops the oldest finished job records beyond MaxJobs;
// callers hold s.mu. Queued/running jobs (still in flight) survive.
func (s *Server) pruneLocked() {
	excess := len(s.jobs) - s.cfg.MaxJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && j.State().Terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job looks a job record up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job. Reports whether the job exists
// and the request took effect (terminal jobs return false).
func (s *Server) Cancel(id string) (bool, bool) {
	j, ok := s.Job(id)
	if !ok {
		return false, false
	}
	return true, j.requestCancel()
}

// RunWorkers executes queued jobs on the bounded worker pool until ctx
// is cancelled (blocking; the daemon's Run composes it with the HTTP
// listener, tests drive it directly). In-flight jobs observe the
// cancellation through their own derived contexts.
func (s *Server) RunWorkers(ctx context.Context) {
	n := s.cfg.Workers
	// The pool error is ctx.Err() by construction; the workers observe the
	// same context, so there is nothing extra to report.
	_ = workerPool.ForEachCtx(ctx, n, n, func(int) { s.workerLoop(ctx) })
}

// workerLoop drains the queue until the context ends.
func (s *Server) workerLoop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case j := <-s.queue:
			jobsQueued.Set(int64(len(s.queue)))
			s.execute(ctx, j)
		}
	}
}

// execute runs one job through the experiment harness and lands the
// result in the content-addressed store.
func (s *Server) execute(ctx context.Context, j *Job) {
	deadline := s.cfg.DefaultDeadline
	if j.Config.DeadlineSec > 0 {
		deadline = time.Duration(j.Config.DeadlineSec * float64(time.Second))
	}

	j.mu.Lock()
	if j.cancelme {
		j.mu.Unlock()
		s.finishJob(j, StateCancelled, "cancelled before execution")
		return
	}
	jctx, cancel := context.WithTimeout(ctx, deadline)
	j.cancel = cancel
	j.state = StateRunning
	j.started = time.Now()
	j.span = obs.Default.StartDetachedSpan("job:" + j.ID)
	j.scope = obs.Default.ScopeCounters()
	span := j.span
	wait := obs.ClampDuration(j.started.Sub(j.created))
	j.mu.Unlock()
	defer cancel()
	jobsQueueWait.ObserveDuration(wait)
	j.rec.Recordf(jobTrack, "state", string(StateRunning),
		"picked up after %v queued", wait.Round(time.Microsecond))
	jobsRunning.Add(1)
	defer jobsRunning.Add(-1)

	// Arm the job's flight recorder on the execution context (pool
	// workers, the rcce bridge and the harness read it back out) and on
	// the shared matrix cache (best-effort attribution; CAS-cleared so a
	// finishing job cannot strip a successor's recorder).
	jctx = obs.WithRecorder(jctx, j.rec)
	s.matrices.SetRecorder(j.rec)
	defer s.matrices.ClearRecorder(j.rec)

	cfg := experiments.Config{
		Scale:       j.Config.Scale,
		Stride:      j.Config.Stride,
		MaxMatrices: j.Config.MaxMatrices,
		Parallelism: j.Config.Parallelism,
		Pricing:     j.Config.pricing(),
		Engine:      j.Config.engine(),
		FailFast:    j.Config.FailFast,
		MatrixCache: s.matrices,
		Ctx:         jctx,
		Span:        span,
		Fault:       s.cfg.Fault,
	}
	out, err := experiments.ExecuteByID(j.Config.Experiment, cfg)
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			s.finishJob(j, StateCancelled, err.Error())
		case errors.Is(err, context.DeadlineExceeded):
			s.finishJob(j, StateFailed, fmt.Sprintf("job deadline (%s) exceeded: %v", deadline, err))
		default:
			s.finishJob(j, StateFailed, err.Error())
		}
		return
	}
	s.store.Put(&Result{
		Hash:       j.Hash,
		Experiment: out.ID,
		Title:      out.Title,
		Tables:     len(out.Tables),
		Failed:     out.Failed,
		Text:       []byte(out.Text),
		CSV:        []byte(out.CSV),
	})
	s.finishJob(j, StateDone, "")
}

// finishJob moves a job to a terminal state, releases its single-flight
// slot and bumps the outcome counters.
func (s *Server) finishJob(j *Job, state JobState, errMsg string) {
	s.mu.Lock()
	if s.inflight[j.Hash] == j {
		delete(s.inflight, j.Hash)
	}
	s.mu.Unlock()
	j.finish(state, errMsg)
	j.mu.Lock()
	started, finished := j.started, j.finished
	j.mu.Unlock()
	if !started.IsZero() {
		// Observe already clamps negatives, so a stepped wall clock
		// cannot push a negative execution time into the histogram.
		jobsExecTime.ObserveDuration(finished.Sub(started))
	}
	switch state {
	case StateDone:
		jobsCompleted.Add(1)
	case StateFailed:
		jobsFailed.Add(1)
	case StateCancelled:
		jobsCancelled.Add(1)
	}
}

// Run serves the HTTP API on l and executes jobs until ctx is
// cancelled, then shuts the listener down gracefully (bounded by
// shutdownGrace) and drains the workers. It returns the first listener
// error, if any.
func (s *Server) Run(ctx context.Context, l net.Listener) error {
	hs := &http.Server{
		Handler: s.Handler(),
		// Request contexts inherit the run context so streaming handlers
		// (progress, wait) end promptly at shutdown.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	var serveErr error
	n := s.cfg.Workers + 2
	// Every slot must start even if ctx is already cancelled - slot 1 is
	// the shutdown watcher that unblocks slot 0's Serve - so the dispatch
	// context derives from ctx without its cancellation.
	_ = runPool.ForEachCtx(context.WithoutCancel(ctx), n, n, func(i int) {
		switch i {
		case 0:
			serveErr = hs.Serve(l)
		case 1:
			<-ctx.Done()
			// Shutdown runs precisely because ctx ended; its grace window
			// must therefore survive that cancellation (values intact).
			sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), shutdownGrace)
			defer cancel()
			if err := hs.Shutdown(sctx); err != nil {
				hs.Close()
			}
		default:
			s.workerLoop(ctx)
		}
	})
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return nil
}

// shutdownGrace bounds how long Run waits for in-flight HTTP requests
// at shutdown before closing connections hard.
const shutdownGrace = 5 * time.Second

// httpError writes a JSON error payload.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Handler returns the daemon's HTTP API:
//
//	POST   /api/v1/jobs                submit a JobConfig, get a JobStatus
//	GET    /api/v1/jobs                list job statuses (newest last)
//	GET    /api/v1/jobs/{id}           poll one job's status
//	GET    /api/v1/jobs/{id}/wait      long-poll until terminal (?timeout=30s)
//	GET    /api/v1/jobs/{id}/progress  NDJSON status stream until terminal
//	GET    /api/v1/jobs/{id}/result    fetch rendered tables (?format=text|csv)
//	GET    /api/v1/jobs/{id}/trace     Chrome trace-event JSON (Perfetto)
//	DELETE /api/v1/jobs/{id}           cancel a queued/running job
//	GET    /api/v1/results/{hash}      content-addressed result fetch
//	GET    /api/v1/experiments         list runnable experiments
//	GET    /api/v1/metrics             obs registry snapshot (JSON)
//	GET    /metrics                    Prometheus text exposition
//	GET    /debug/flight               flight recorders of wrecked jobs
//	GET    /healthz                    liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/wait", s.handleWait)
	mux.HandleFunc("GET /api/v1/jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/results/{hash}", s.handleResultByHash)
	mux.HandleFunc("GET /api/v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /api/v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics", s.handlePrometheus)
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var cfg JobConfig
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		httpError(w, http.StatusBadRequest, "decoding job config: %v", err)
		return
	}
	out, err := s.Submit(cfg)
	if err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "queue full") {
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, "%v", err)
		return
	}
	resp := struct {
		JobStatus
		CacheHit  bool `json:"cache_hit"`
		Coalesced bool `json:"coalesced_submit"`
	}{out.Status, out.Cached, out.Coalesced}
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	statuses := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.Job(id); ok {
			statuses = append(statuses, j.status(s.store))
		}
	}
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status(s.store))
}

// handleWait long-polls until the job is terminal or the timeout (or
// client) gives up, then reports the status as of that moment.
func (s *Server) handleWait(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	timeout := 30 * time.Second
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, "bad timeout %q", v)
			return
		}
		timeout = d
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-j.Done():
	case <-t.C:
	case <-r.Context().Done():
		return
	}
	writeJSON(w, http.StatusOK, j.status(s.store))
}

// handleProgress streams NDJSON status snapshots (span tree + per-job
// counter deltas included) every interval until the job is terminal or
// the client disconnects - the streaming face of the obs feed.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	interval := time.Second
	if v := r.URL.Query().Get("interval"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 10*time.Millisecond {
			httpError(w, http.StatusBadRequest, "bad interval %q (>= 10ms)", v)
			return
		}
		interval = d
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		if err := enc.Encode(j.status(s.store)); err != nil {
			return // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
		if j.State().Terminal() {
			return
		}
		select {
		case <-j.Done():
			// loop once more for the terminal snapshot
		case <-tick.C:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	switch st := j.State(); st {
	case StateDone:
	case StateFailed, StateCancelled:
		j.mu.Lock()
		msg := j.err
		j.mu.Unlock()
		httpError(w, http.StatusConflict, "job %s %s: %s", j.ID, st, msg)
		return
	default:
		httpError(w, http.StatusConflict, "job %s still %s; poll /wait first", j.ID, st)
		return
	}
	s.serveResult(w, r, j.Hash)
}

func (s *Server) handleResultByHash(w http.ResponseWriter, r *http.Request) {
	s.serveResult(w, r, r.PathValue("hash"))
}

// serveResult writes the stored artefact bytes for one content address.
func (s *Server) serveResult(w http.ResponseWriter, r *http.Request, hash string) {
	res, ok := s.store.Get(hash)
	if !ok {
		httpError(w, http.StatusNotFound, "no result for hash %q (evicted or never computed)", hash)
		return
	}
	var body []byte
	switch f := r.URL.Query().Get("format"); f {
	case "", "text":
		body = res.Text
	case "csv":
		body = res.CSV
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want text or csv)", f)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Sccsimd-Hash", res.Hash)
	w.Write(body)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	found, cancelled := s.Cancel(r.PathValue("id"))
	if !found {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	j, _ := s.Job(r.PathValue("id"))
	writeJSON(w, http.StatusOK, map[string]any{
		"id":        j.ID,
		"cancelled": cancelled,
		"state":     j.State(),
	})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var out []entry
	for _, e := range experiments.All() {
		out = append(out, entry{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	blob, err := obs.Default.SnapshotJSON()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "metrics snapshot: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(blob)
}

// handlePrometheus serves the registry in Prometheus text exposition
// format (0.0.4) - the scrape face of the same snapshot /api/v1/metrics
// serves as JSON.
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	blob, err := obs.Default.PrometheusText()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "prometheus exposition: %v", err)
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	w.Write(blob)
}

// handleTrace serves the job's Chrome trace-event JSON: the span tree
// as async slices plus the flight recorder's tracks (pool workers,
// cache, rcce, lifecycle). Load it at ui.perfetto.dev or
// chrome://tracing.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	span, flight := j.traceFeed()
	var spans []*obs.SpanSnapshot
	if span != nil {
		spans = append(spans, span)
	}
	blob, err := obs.TraceJSON(spans, flight)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "trace export: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", j.ID+"-trace.json"))
	w.Write(blob)
}

// handleFlight dumps the flight recorders of every wrecked (failed or
// cancelled) retained job, newest last - the daemon-wide post-mortem
// view. Done jobs drop their tails; queued/running ones are still
// flying.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	type wreck struct {
		ID     string              `json:"id"`
		State  JobState            `json:"state"`
		Error  string              `json:"error,omitempty"`
		Flight *obs.FlightSnapshot `json:"flight"`
	}
	out := []wreck{}
	for _, id := range ids {
		j, ok := s.Job(id)
		if !ok {
			continue
		}
		j.mu.Lock()
		state, errMsg := j.state, j.err
		j.mu.Unlock()
		if state != StateFailed && state != StateCancelled {
			continue
		}
		out = append(out, wreck{ID: j.ID, State: state, Error: errMsg, Flight: j.rec.Snapshot()})
	}
	writeJSON(w, http.StatusOK, out)
}
