package serve

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
)

// JobState is the lifecycle of one submitted job.
type JobState string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: executing on a worker.
	StateRunning JobState = "running"
	// StateDone: finished; the result is fetchable (possibly served
	// straight from the result cache without any execution).
	StateDone JobState = "done"
	// StateFailed: the run errored (engine error or deadline).
	StateFailed JobState = "failed"
	// StateCancelled: cancelled by the client or server shutdown before
	// producing a result.
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state can no longer change.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// jobTrack is the flight-recorder timeline row job lifecycle
// transitions land on.
const jobTrack = "serve.job"

// Job is one submission's record. Every submission gets its own job -
// cache hits included - so clients always have a pollable ID; in-flight
// duplicates are the exception, they share the executing job's ID.
type Job struct {
	// ID is the server-assigned identifier; Hash the content address of
	// the result (JobConfig.Hash).
	ID   string
	Hash string
	// Config is the Canonical()-normalized configuration.
	Config JobConfig

	mu       sync.Mutex
	state    JobState
	err      string
	cached   bool // served from the result store without executing
	coalesce int  // duplicate submissions that attached to this job
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc
	cancelme bool // cancel requested before a worker picked the job up
	// span is the job's detached per-job trace (nil until running);
	// scope the counter baseline taken when execution started.
	span  *obs.Span
	scope *obs.CounterScope
	// rec is the job's flight recorder: a bounded ring of structured
	// events kept for post-mortems. Allocated at submission so queued
	// state transitions are captured too; surfaced on the status payload
	// only when the job fails or is cancelled.
	rec *obs.Recorder
	// done closes when the job reaches a terminal state (long-poll wait).
	done chan struct{}
}

// JobStatus is the wire form of a job's state - the poll and progress
// payload. Counters are the per-job deltas of the process counter scope
// (exact while one job runs at a time, an upper bound when jobs
// overlap); Spans is the live per-job span tree.
type JobStatus struct {
	ID         string    `json:"id"`
	Hash       string    `json:"hash"`
	Config     JobConfig `json:"config"`
	State      JobState  `json:"state"`
	Error      string    `json:"error,omitempty"`
	Cached     bool      `json:"cached,omitempty"`
	Coalesced  int       `json:"coalesced,omitempty"`
	ElapsedSec float64   `json:"elapsed_sec"`
	// Result summarises the fetchable artefact for done jobs.
	Result *Result `json:"result,omitempty"`
	// Counters and Spans are the job's obs feed (running and terminal
	// jobs; empty for queued ones).
	Counters map[string]uint64 `json:"counters,omitempty"`
	Spans    *obs.SpanSnapshot `json:"spans,omitempty"`
	// Flight is the flight-recorder tail, attached only when the job
	// failed or was cancelled: the last events before the wreck, ending
	// at whatever wedged, errored or timed out.
	Flight *obs.FlightSnapshot `json:"flight,omitempty"`
}

func newJob(id string, cfg JobConfig, flightEvents int) *Job {
	j := &Job{
		ID:      id,
		Hash:    cfg.Hash(),
		Config:  cfg,
		state:   StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
		rec:     obs.NewRecorder(flightEvents),
	}
	j.rec.Record(jobTrack, "state", string(StateQueued), "job "+id+" accepted")
	return j
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state JobState, errMsg string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.err = errMsg
	j.finished = time.Now()
	j.span.End()
	j.rec.Record(jobTrack, "state", string(state), errMsg)
	j.mu.Unlock()
	close(j.done)
}

// Done exposes the terminal-state channel (closed when the job can no
// longer change).
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// requestCancel asks the job to stop: a queued job is marked so the
// worker skips it, a running one has its context cancelled. Terminal
// jobs ignore the request. Reports whether the request took effect.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.cancelme = true
	if j.cancel != nil {
		j.cancel()
	}
	return true
}

// traceFeed snapshots the job's span tree (nil if the job never
// started) and flight tail for the trace exporter.
func (j *Job) traceFeed() (*obs.SpanSnapshot, *obs.FlightSnapshot) {
	j.mu.Lock()
	span, rec := j.span, j.rec
	j.mu.Unlock()
	var ss *obs.SpanSnapshot
	if span != nil {
		ss = span.Snapshot()
	}
	return ss, rec.Snapshot()
}

// status snapshots the job for the wire, resolving the result (for done
// jobs) through the store.
func (j *Job) status(store *ResultStore) JobStatus {
	j.mu.Lock()
	st := JobStatus{
		ID:        j.ID,
		Hash:      j.Hash,
		Config:    j.Config,
		State:     j.state,
		Error:     j.err,
		Cached:    j.cached,
		Coalesced: j.coalesce,
	}
	switch {
	case j.state.Terminal() && !j.started.IsZero():
		// Clamped: finished/started are wall stamps, and a stepped wall
		// clock must not surface as a negative elapsed time on the wire.
		st.ElapsedSec = obs.ClampDuration(j.finished.Sub(j.started)).Seconds()
	case j.state == StateRunning:
		st.ElapsedSec = obs.Since(j.started).Seconds()
	}
	span, scope, rec := j.span, j.scope, j.rec
	wrecked := j.state == StateFailed || j.state == StateCancelled
	j.mu.Unlock()

	// The obs feed and the store lookup run outside the job lock: the
	// span snapshot, counter deltas and flight tail take their own locks.
	if scope != nil {
		st.Counters = scope.Deltas()
	}
	if span != nil {
		st.Spans = span.Snapshot()
	}
	if wrecked {
		// Post-mortem only: successful jobs drop their recorder tail, the
		// status payload of a failed or cancelled one carries it.
		st.Flight = rec.Snapshot()
	}
	if st.State == StateDone {
		if res, ok := store.peek(st.Hash); ok {
			st.Result = res
		}
	}
	return st
}
