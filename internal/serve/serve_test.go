package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// tinyJob is the cheapest full-pipeline configuration: fig3 at 5% scale
// with a wide stride simulates two generated matrices in well under a
// second.
func tinyJob() JobConfig {
	return JobConfig{Experiment: "fig3", Scale: 0.05, Stride: 16}
}

// startDaemon runs a server's HTTP face (httptest) and its worker pool
// (background goroutine; _test.go files are exempt from the sccvet
// bare-goroutine rule) until the test ends.
func startDaemon(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.RunWorkers(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		wg.Wait()
		ts.Close()
	})
	return s, ts.URL
}

func postJob(t *testing.T, base string, cfg JobConfig) (JobStatus, bool, bool) {
	t.Helper()
	blob, _ := json.Marshal(cfg)
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	var out struct {
		JobStatus
		CacheHit  bool `json:"cache_hit"`
		Coalesced bool `json:"coalesced_submit"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("submit: decoding %s: %v", body, err)
	}
	return out.JobStatus, out.CacheHit, out.Coalesced
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: decoding %s: %v", url, body, err)
	}
}

func waitTerminal(t *testing.T, base, id string) JobStatus {
	t.Helper()
	var st JobStatus
	getJSON(t, base+"/api/v1/jobs/"+id+"/wait?timeout=60s", &st)
	if !st.State.Terminal() {
		t.Fatalf("job %s still %s after 60s", id, st.State)
	}
	return st
}

func fetchResult(t *testing.T, base, id, format string) []byte {
	t.Helper()
	url := base + "/api/v1/jobs/" + id + "/result"
	if format != "" {
		url += "?format=" + format
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	return body
}

func counter(name string) uint64 {
	return obs.Default.Snapshot().Counters[name]
}

// TestServeSubmitWaitFetch is the end-to-end happy path over real HTTP:
// submit, long-poll to completion, fetch both renderings, and round-trip
// the content-addressed fetch.
func TestServeSubmitWaitFetch(t *testing.T) {
	_, base := startDaemon(t, ServerConfig{Workers: 2})

	st, cached, coalesced := postJob(t, base, tinyJob())
	if cached || coalesced {
		t.Fatalf("fresh submission reported cached=%t coalesced=%t", cached, coalesced)
	}
	if st.ID == "" || st.Hash == "" {
		t.Fatalf("submission lacks id/hash: %+v", st)
	}

	done := waitTerminal(t, base, st.ID)
	if done.State != StateDone {
		t.Fatalf("job ended %s (%s), want done", done.State, done.Error)
	}
	if done.Result == nil || done.Result.Tables == 0 {
		t.Fatalf("done status lacks a result summary: %+v", done.Result)
	}
	if done.Counters["experiments.cell.tasks"] == 0 {
		t.Error("per-job counters missing experiments.cell.tasks; the obs feed is dark")
	}
	if done.Spans == nil {
		t.Error("done status lacks the per-job span tree")
	}

	text := fetchResult(t, base, st.ID, "")
	csv := fetchResult(t, base, st.ID, "csv")
	if len(text) == 0 || len(csv) == 0 {
		t.Fatal("empty rendering")
	}
	if bytes.Equal(text, csv) {
		t.Error("text and csv renderings are identical; format selection is dead")
	}

	// The content-addressed endpoint serves the same bytes.
	resp, err := http.Get(base + "/api/v1/results/" + st.Hash)
	if err != nil {
		t.Fatal(err)
	}
	byHash, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(byHash, text) {
		t.Error("/results/{hash} bytes differ from /jobs/{id}/result")
	}

	var exps []struct {
		ID string `json:"id"`
	}
	getJSON(t, base+"/api/v1/experiments", &exps)
	if len(exps) == 0 {
		t.Error("experiment listing is empty")
	}
	var metrics struct {
		Counters map[string]uint64 `json:"counters"`
	}
	getJSON(t, base+"/api/v1/metrics", &metrics)
	if metrics.Counters["serve.jobs.submitted"] == 0 {
		t.Error("metrics endpoint does not expose serve.jobs.submitted")
	}
}

// TestServeResubmitHitsCacheWithoutRerunning is the issue's acceptance
// criterion: an identical resubmission must return bit-identical bytes
// from the result store, increment serve.jobs.cache_hits, and schedule
// zero new simulation work (experiments.cell.tasks frozen).
func TestServeResubmitHitsCacheWithoutRerunning(t *testing.T) {
	_, base := startDaemon(t, ServerConfig{Workers: 2})

	first, _, _ := postJob(t, base, tinyJob())
	if st := waitTerminal(t, base, first.ID); st.State != StateDone {
		t.Fatalf("first run ended %s (%s)", st.State, st.Error)
	}
	text1 := fetchResult(t, base, first.ID, "")
	csv1 := fetchResult(t, base, first.ID, "csv")

	hitsBefore := counter("serve.jobs.cache_hits")
	cellsBefore := counter("experiments.cell.tasks")

	second, cached, _ := postJob(t, base, tinyJob())
	if !cached {
		t.Fatal("identical resubmission was not served from cache")
	}
	if second.ID == first.ID {
		t.Error("resubmission reused the first job id; every submission gets its own record")
	}
	if second.State != StateDone || !second.Cached {
		t.Errorf("cached job born %s cached=%t, want done/true", second.State, second.Cached)
	}
	if !bytes.Equal(fetchResult(t, base, second.ID, ""), text1) {
		t.Error("cached text differs from the original run")
	}
	if !bytes.Equal(fetchResult(t, base, second.ID, "csv"), csv1) {
		t.Error("cached csv differs from the original run")
	}

	if d := counter("serve.jobs.cache_hits") - hitsBefore; d != 1 {
		t.Errorf("serve.jobs.cache_hits advanced by %d, want 1", d)
	}
	if d := counter("experiments.cell.tasks") - cellsBefore; d != 0 {
		t.Errorf("resubmission simulated %d cells, want 0 (cache must not re-run)", d)
	}
}

// TestServeInFlightDuplicatesCoalesce pins single-flight: a duplicate
// arriving while the first is still queued attaches to the SAME job -
// one execution, one job id, two satisfied clients.
func TestServeInFlightDuplicatesCoalesce(t *testing.T) {
	// No workers yet: the first submission is pinned in the queue, so the
	// duplicate deterministically arrives in flight.
	s := NewServer(ServerConfig{Workers: 1})

	coalescedBefore := counter("serve.jobs.coalesced")
	first, err := s.Submit(tinyJob())
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Coalesced {
		t.Fatalf("first submission cached=%t coalesced=%t", first.Cached, first.Coalesced)
	}
	dup, err := s.Submit(tinyJob())
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Coalesced {
		t.Fatal("in-flight duplicate did not coalesce")
	}
	if dup.Status.ID != first.Status.ID {
		t.Errorf("duplicate got its own job %s, want the in-flight %s", dup.Status.ID, first.Status.ID)
	}
	if d := counter("serve.jobs.coalesced") - coalescedBefore; d != 1 {
		t.Errorf("serve.jobs.coalesced advanced by %d, want 1", d)
	}

	cellsBefore := counter("experiments.cell.tasks")
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.RunWorkers(ctx)
	}()
	j, ok := s.Job(first.Status.ID)
	if !ok {
		t.Fatal("job record vanished")
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("coalesced job never finished")
	}
	cancel()
	wg.Wait()

	st := j.status(s.Store())
	if st.State != StateDone {
		t.Fatalf("job ended %s (%s)", st.State, st.Error)
	}
	if st.Coalesced != 1 {
		t.Errorf("job records %d coalesced submissions, want 1", st.Coalesced)
	}
	cellsOnce := counter("experiments.cell.tasks") - cellsBefore
	if cellsOnce == 0 {
		t.Fatal("coalesced job simulated nothing")
	}
	// A third, post-completion submission is a plain cache hit: still no
	// new simulation.
	third, err := s.Submit(tinyJob())
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached {
		t.Error("post-completion resubmission missed the result store")
	}
	if d := counter("experiments.cell.tasks") - cellsBefore; d != cellsOnce {
		t.Errorf("cells advanced to %d after the cache hit, want frozen at %d", d, cellsOnce)
	}
}

// TestServeQueueFullRejects pins backpressure: beyond QueueDepth the
// daemon sheds load with an explicit error instead of buffering
// unboundedly, and the rejected job leaves no record behind.
func TestServeQueueFullRejects(t *testing.T) {
	s := NewServer(ServerConfig{Workers: 1, QueueDepth: 1}) // workers never started

	if _, err := s.Submit(tinyJob()); err != nil {
		t.Fatal(err)
	}
	other := tinyJob()
	other.Stride = 8 // distinct hash: must not coalesce
	rejectedBefore := counter("serve.jobs.rejected")
	_, err := s.Submit(other)
	if err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("oversubscribed submit returned %v, want queue-full", err)
	}
	if d := counter("serve.jobs.rejected") - rejectedBefore; d != 1 {
		t.Errorf("serve.jobs.rejected advanced by %d, want 1", d)
	}
	s.mu.Lock()
	records, inflight := len(s.jobs), len(s.inflight)
	s.mu.Unlock()
	if records != 1 || inflight != 1 {
		t.Errorf("rejected submission left state behind: %d records, %d inflight (want 1, 1)", records, inflight)
	}
}

func TestServeBadRequests(t *testing.T) {
	_, base := startDaemon(t, ServerConfig{Workers: 1})
	cases := []struct {
		body string
		code int
	}{
		{`{"experiment": "nope"}`, http.StatusBadRequest},
		{`{"experiment": "fig3", "scale": 7}`, http.StatusBadRequest},
		{`{"experiment": "fig3", "bogus_field": 1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("submit %q: status %d, want %d", tc.body, resp.StatusCode, tc.code)
		}
	}
	for _, url := range []string{
		base + "/api/v1/jobs/job-999999",
		base + "/api/v1/jobs/job-999999/result",
		base + "/api/v1/results/deadbeef",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", url, resp.StatusCode)
		}
	}
}

// TestServeProgressStreamsToTerminal reads the NDJSON progress stream
// end to end: at least one snapshot, the last one terminal.
func TestServeProgressStreamsToTerminal(t *testing.T) {
	_, base := startDaemon(t, ServerConfig{Workers: 1})
	st, _, _ := postJob(t, base, tinyJob())

	resp, err := http.Get(base + "/api/v1/jobs/" + st.ID + "/progress?interval=20ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("progress content type %q", ct)
	}
	var lines int
	var last JobStatus
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("line %d is not a JobStatus: %v", lines, err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream error after %d lines: %v", lines, err)
	}
	if lines == 0 {
		t.Fatal("progress stream emitted nothing")
	}
	if !last.State.Terminal() {
		t.Errorf("stream ended on non-terminal state %s", last.State)
	}
	if last.State != StateDone {
		t.Errorf("job ended %s (%s), want done", last.State, last.Error)
	}
}

// TestChaosServeFaultPlanIsolatedIntoResult arms a deterministic cell
// fault on the daemon: the job must still complete, with the failed
// cell isolated into the trailing error table instead of killing the
// job (PR 4 semantics surviving the service boundary).
func TestChaosServeFaultPlanIsolatedIntoResult(t *testing.T) {
	_, base := startDaemon(t, ServerConfig{
		Workers: 2,
		Fault:   &fault.Plan{Cell: &fault.Cell{MatrixPrefix: "TSOPF_FS_b300_c3", Index: 0}},
	})
	// fig5 with the chaos subset (stride 9 from 5% scale) selects
	// TSOPF_FS_b300_c3 as its first matrix - the fault target.
	st, _, _ := postJob(t, base, JobConfig{Experiment: "fig5", Scale: 0.05, Stride: 9})
	done := waitTerminal(t, base, st.ID)
	if done.State != StateDone {
		t.Fatalf("faulted job ended %s (%s), want done with degradation", done.State, done.Error)
	}
	if done.Result == nil || done.Result.Failed != 1 {
		t.Fatalf("result records %+v failed cells, want exactly 1", done.Result)
	}
	text := fetchResult(t, base, st.ID, "")
	if !strings.Contains(string(text), "injected fault") {
		t.Error("rendered tables lack the failed-cells error row")
	}
}

// TestChaosServeFailFastFaultFailsJob: the same fault under fail_fast
// must fail the whole job with the injected error surfaced.
func TestChaosServeFailFastFaultFailsJob(t *testing.T) {
	_, base := startDaemon(t, ServerConfig{
		Workers: 1,
		Fault:   &fault.Plan{Cell: &fault.Cell{MatrixPrefix: "TSOPF_FS_b300_c3", Index: 0}},
	})
	st, _, _ := postJob(t, base, JobConfig{Experiment: "fig5", Scale: 0.05, Stride: 9, FailFast: true})
	done := waitTerminal(t, base, st.ID)
	if done.State != StateFailed {
		t.Fatalf("fail-fast faulted job ended %s, want failed", done.State)
	}
	if !strings.Contains(done.Error, "injected fault") {
		t.Errorf("job error %q does not surface the injected fault", done.Error)
	}
	failuresAfter := counter("serve.jobs.failed")
	if failuresAfter == 0 {
		t.Error("serve.jobs.failed never advanced")
	}
	// A failed job must NOT poison the result store: resubmitting without
	// fail_fast... would be a different hash anyway; instead assert the
	// failed hash has no stored result.
	resp, err := http.Get(base + "/api/v1/results/" + done.Hash)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("failed job left a result in the store (status %d)", resp.StatusCode)
	}
}

// TestChaosServeJobDeadlineFailsJob: a job-level deadline must cancel
// the run at an engine boundary and report a deadline failure, leaving
// the daemon healthy.
func TestChaosServeJobDeadlineFailsJob(t *testing.T) {
	_, base := startDaemon(t, ServerConfig{Workers: 1})
	st, _, _ := postJob(t, base, JobConfig{Experiment: "fig5", Scale: 0.05, Stride: 9, DeadlineSec: 0.001})
	done := waitTerminal(t, base, st.ID)
	if done.State != StateFailed {
		t.Fatalf("deadlined job ended %s (%s), want failed", done.State, done.Error)
	}
	if !strings.Contains(done.Error, "deadline") {
		t.Errorf("job error %q does not mention the deadline", done.Error)
	}
	// The daemon survives: the same config with a sane deadline runs fine
	// (different engine knob, SAME hash - the failed run stored nothing,
	// so this executes).
	ok, _, _ := postJob(t, base, JobConfig{Experiment: "fig3", Scale: 0.05, Stride: 16, DeadlineSec: 60})
	if st := waitTerminal(t, base, ok.ID); st.State != StateDone {
		t.Fatalf("post-deadline job ended %s (%s)", st.State, st.Error)
	}
}

// TestChaosServeCancelQueuedJob: DELETE on a queued job marks it so the
// worker skips it without simulating anything.
func TestChaosServeCancelQueuedJob(t *testing.T) {
	s := NewServer(ServerConfig{Workers: 1}) // workers not running yet
	out, err := s.Submit(tinyJob())
	if err != nil {
		t.Fatal(err)
	}
	found, cancelled := s.Cancel(out.Status.ID)
	if !found || !cancelled {
		t.Fatalf("Cancel(%s) = (%t, %t), want (true, true)", out.Status.ID, found, cancelled)
	}

	cellsBefore := counter("experiments.cell.tasks")
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.RunWorkers(ctx)
	}()
	j, _ := s.Job(out.Status.ID)
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled job never reached a terminal state")
	}
	cancel()
	wg.Wait()
	if st := j.State(); st != StateCancelled {
		t.Fatalf("job ended %s, want cancelled", st)
	}
	if d := counter("experiments.cell.tasks") - cellsBefore; d != 0 {
		t.Errorf("cancelled-while-queued job still simulated %d cells", d)
	}
	// Cancelling a terminal job is a no-op.
	if _, again := s.Cancel(out.Status.ID); again {
		t.Error("Cancel took effect on a terminal job")
	}
}

// TestChaosServeClientDisconnect: a client abandoning its progress
// stream must not wedge the daemon or the job.
func TestChaosServeClientDisconnect(t *testing.T) {
	_, base := startDaemon(t, ServerConfig{Workers: 2})
	st, _, _ := postJob(t, base, tinyJob())

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/api/v1/jobs/"+st.ID+"/progress?interval=20ms", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("reading first progress byte: %v", err)
	}
	cancel() // drop the stream mid-flight
	resp.Body.Close()

	// The job still completes and the daemon still answers.
	done := waitTerminal(t, base, st.ID)
	if done.State != StateDone {
		t.Fatalf("job ended %s (%s) after client disconnect", done.State, done.Error)
	}
	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("healthz %d after disconnect", hr.StatusCode)
	}
}

// TestServeRunShutsDownGracefully drives the daemon through Run (the
// real entrypoint: listener + workers + shutdown supervisor on one
// pool) and cancels it mid-service.
func TestServeRunShutsDownGracefully(t *testing.T) {
	s := NewServer(ServerConfig{Workers: 1})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + l.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx, l) }()

	st, _, _ := postJob(t, base, tinyJob())
	done := waitTerminal(t, base, st.ID)
	if done.State != StateDone {
		t.Fatalf("job under Run ended %s (%s)", done.State, done.Error)
	}
	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run returned %v after graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

// TestServeJobPruning pins the retention cap: finished jobs beyond
// MaxJobs are pruned oldest-first, live ones never.
func TestServeJobPruning(t *testing.T) {
	s := NewServer(ServerConfig{Workers: 1, MaxJobs: 3})
	// Seed the store so submissions are born-done (no workers needed).
	canon, err := tinyJob().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	s.Store().Put(&Result{Hash: canon.Hash(), Experiment: "fig3", Title: "t", Tables: 1, Text: []byte("x"), CSV: []byte("y")})

	var ids []string
	for i := 0; i < 6; i++ {
		out, err := s.Submit(tinyJob())
		if err != nil {
			t.Fatal(err)
		}
		if !out.Cached {
			t.Fatal("seeded submission was not a cache hit")
		}
		ids = append(ids, out.Status.ID)
	}
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n > 3 {
		t.Errorf("%d job records retained, cap is 3", n)
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Error("oldest finished job survived pruning")
	}
	if _, ok := s.Job(ids[len(ids)-1]); !ok {
		t.Error("newest job was pruned")
	}
}
