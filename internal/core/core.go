// Package core is the library facade: the one import a downstream user
// needs to run the paper's workload. It wires the substrates together -
// testbed generation (sparse), machine configuration (scc/sim), kernels and
// experiment execution - behind a small, stable surface:
//
//	study, err := core.NewStudy(core.StudyConfig{Cores: 24})
//	res, err := study.Run(core.MatrixSpec{Testbed: "sparsine", Scale: 0.25})
//	fmt.Println(res.MFLOPS)
//
// Everything the facade returns is produced by the same engine that
// regenerates the paper's figures (internal/sim, internal/experiments).
package core

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/stats"
)

// StudyConfig selects the machine and run parameters for a Study.
type StudyConfig struct {
	// Config names the clock configuration: "conf0" (default), "conf1"
	// or "conf2".
	Config string
	// Cores is the number of units of execution (default 48).
	Cores int
	// Mapping names the placement policy: "distance" (default),
	// "standard" or "random".
	Mapping string
	// DisableL2 boots the machine without the per-core L2 caches.
	DisableL2 bool
	// NoXMiss runs the Section IV-C diagnostic kernel variant.
	NoXMiss bool
	// Seed feeds the random mapping.
	Seed int64
}

// Study is a configured SCC ready to run SpMV workloads.
type Study struct {
	machine *sim.Machine
	mapping scc.Mapping
	variant sim.Variant
	clock   scc.ClockConfig
}

// NewStudy validates the configuration and builds a Study.
func NewStudy(cfg StudyConfig) (*Study, error) {
	if cfg.Config == "" {
		cfg.Config = "conf0"
	}
	clock, ok := scc.NamedConfigs()[cfg.Config]
	if !ok {
		return nil, fmt.Errorf("core: unknown clock configuration %q", cfg.Config)
	}
	if cfg.Cores == 0 {
		cfg.Cores = scc.NumCores
	}
	if cfg.Mapping == "" {
		cfg.Mapping = string(scc.MapDistanceReduction)
	}
	mapping, err := scc.Map(scc.MappingPolicy(cfg.Mapping), cfg.Cores, cfg.Seed)
	if err != nil {
		return nil, err
	}
	m := sim.NewMachine(clock)
	m.WithL2 = !cfg.DisableL2
	variant := sim.KernelStandard
	if cfg.NoXMiss {
		variant = sim.KernelNoXMiss
	}
	return &Study{machine: m, mapping: mapping, variant: variant, clock: clock}, nil
}

// MatrixSpec names a matrix to run: either a Table I testbed entry (with a
// scale factor) or an explicit CSR matrix.
type MatrixSpec struct {
	// Testbed is the UFL matrix name from Table I.
	Testbed string
	// Scale shrinks the testbed entry (default 1.0 = paper size).
	Scale float64
	// Matrix supplies an explicit matrix instead of a testbed name.
	Matrix *sparse.CSR
}

func (s MatrixSpec) materialize() (*sparse.CSR, error) {
	if s.Matrix != nil {
		return s.Matrix, nil
	}
	if s.Testbed == "" {
		return nil, fmt.Errorf("core: MatrixSpec needs a Testbed name or a Matrix")
	}
	e, ok := sparse.TestbedEntryByName(s.Testbed)
	if !ok {
		return nil, fmt.Errorf("core: unknown testbed matrix %q", s.Testbed)
	}
	scale := s.Scale
	if scale == 0 {
		scale = 1
	}
	return e.GenerateScaled(scale), nil
}

// Run simulates one SpMV (x = all ones) and returns the full result.
func (s *Study) Run(spec MatrixSpec) (*sim.Result, error) {
	return s.RunVec(spec, nil)
}

// RunVec simulates y = A·x for a caller-supplied x (nil = all ones).
func (s *Study) RunVec(spec MatrixSpec, x []float64) (*sim.Result, error) {
	a, err := spec.materialize()
	if err != nil {
		return nil, err
	}
	return s.machine.RunSpMV(a, x, sim.Options{
		Mapping: s.mapping,
		Variant: s.variant,
	})
}

// Power returns the modelled full-system wattage of the Study's machine.
func (s *Study) Power() float64 {
	return scc.FullSystemPower(s.machine.Domains)
}

// Clock returns the Study's clock configuration.
func (s *Study) Clock() scc.ClockConfig { return s.clock }

// Mapping returns a copy of the Study's rank-to-core mapping.
func (s *Study) Mapping() scc.Mapping {
	return append(scc.Mapping(nil), s.mapping...)
}

// Reproduce regenerates a paper artefact by id ("table1", "fig1".."fig10",
// "latency", or an ablation id) at the given testbed scale, returning the
// rendered tables. Use Experiments for the list of ids.
func Reproduce(id string, scale float64) ([]*stats.Table, error) {
	e, ok := experiments.ByID(id)
	if !ok {
		return nil, fmt.Errorf("core: unknown experiment %q", id)
	}
	return e.Run(experiments.Config{Scale: scale})
}

// Experiments lists the regenerable paper artefacts as id -> title.
func Experiments() map[string]string {
	out := map[string]string{}
	for _, e := range experiments.All() {
		out[e.ID] = e.Title
	}
	return out
}

// Testbed exposes the Table I suite.
func Testbed() []sparse.TestbedEntry { return sparse.Testbed() }
