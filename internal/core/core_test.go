package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/scc"
	"repro/internal/sparse"
)

func TestNewStudyDefaults(t *testing.T) {
	s, err := NewStudy(StudyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Clock() != scc.Conf0 {
		t.Fatalf("default clock %v", s.Clock())
	}
	if len(s.Mapping()) != 48 {
		t.Fatalf("default mapping size %d", len(s.Mapping()))
	}
	if math.Abs(s.Power()-83.3) > 0.5 {
		t.Fatalf("default power %.1f", s.Power())
	}
}

func TestNewStudyValidation(t *testing.T) {
	if _, err := NewStudy(StudyConfig{Config: "conf9"}); err == nil {
		t.Error("bad config accepted")
	}
	if _, err := NewStudy(StudyConfig{Cores: 99}); err == nil {
		t.Error("99 cores accepted")
	}
	if _, err := NewStudy(StudyConfig{Mapping: "bogus"}); err == nil {
		t.Error("bad mapping accepted")
	}
}

func TestStudyRunTestbedEntry(t *testing.T) {
	s, err := NewStudy(StudyConfig{Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(MatrixSpec{Testbed: "lhr04", Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if r.MFLOPS <= 0 || r.TimeSec <= 0 {
		t.Fatalf("degenerate result %+v", r)
	}
	if r.UEs != 8 {
		t.Fatalf("UEs = %d", r.UEs)
	}
}

func TestStudyRunExplicitMatrixAndVector(t *testing.T) {
	s, err := NewStudy(StudyConfig{Cores: 4, Config: "conf1"})
	if err != nil {
		t.Fatal(err)
	}
	a := sparse.Laplacian2D(40)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i % 3)
	}
	r, err := s.RunVec(MatrixSpec{Matrix: a}, x)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, a.Rows)
	a.MulVec(want, x)
	for i := range want {
		if math.Abs(r.Y[i]-want[i]) > 1e-9 {
			t.Fatalf("y[%d] mismatch", i)
		}
	}
}

func TestStudyMatrixSpecValidation(t *testing.T) {
	s, _ := NewStudy(StudyConfig{Cores: 2})
	if _, err := s.Run(MatrixSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := s.Run(MatrixSpec{Testbed: "missing"}); err == nil {
		t.Error("unknown testbed name accepted")
	}
}

func TestStudyVariantsAndL2(t *testing.T) {
	spec := MatrixSpec{Testbed: "psmigr_1", Scale: 0.3}
	std, err := NewStudy(StudyConfig{Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	rStd, err := std.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	noL2, err := NewStudy(StudyConfig{Cores: 8, DisableL2: true})
	if err != nil {
		t.Fatal(err)
	}
	rNoL2, err := noL2.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rNoL2.MFLOPS >= rStd.MFLOPS {
		t.Fatal("disabling L2 did not hurt")
	}
	noX, err := NewStudy(StudyConfig{Cores: 8, NoXMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	rNoX, err := noX.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// psmigr_1 is a random-pattern matrix: removing x misses must help.
	if rNoX.MFLOPS <= rStd.MFLOPS {
		t.Fatal("no-x-miss variant did not help an irregular matrix")
	}
}

func TestReproduceFacade(t *testing.T) {
	tables, err := Reproduce("latency", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].Rows() != 4 {
		t.Fatalf("latency tables = %d", len(tables))
	}
	if !strings.Contains(tables[0].String(), "hops") {
		t.Fatal("unexpected table content")
	}
	if _, err := Reproduce("nope", 0.1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentsListing(t *testing.T) {
	m := Experiments()
	for _, id := range []string{"table1", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} {
		if m[id] == "" {
			t.Errorf("experiment %s missing from facade listing", id)
		}
	}
}

func TestTestbedFacade(t *testing.T) {
	if len(Testbed()) != 32 {
		t.Fatalf("testbed size %d", len(Testbed()))
	}
}
