package cache

// Hierarchy chains a private L1 in front of an optional private L2, the way
// each SCC core sees memory. It classifies every access into L1 hit, L2 hit
// or memory access, and tracks the memory traffic (line fills and dirty
// write-backs) the core generates - the quantities the timing model and the
// memory-controller contention model consume.
type Hierarchy struct {
	L1 *Cache
	// L2 may be nil: the SCC can boot with L2 disabled, which the
	// paper's Figure 7 experiment exploits.
	L2 *Cache
	// NextLinePrefetch enables a simple sequential prefetcher: every
	// miss that reaches memory also fills the following line into the
	// L2 (or L1 when the L2 is disabled). The stock SCC has no
	// prefetcher; this models the software-prefetch optimisation of
	// Williams et al. that the paper's related work discusses.
	NextLinePrefetch bool

	events HierarchyStats
}

// HierarchyStats aggregates the outcome of every access.
type HierarchyStats struct {
	// Accesses counts calls to Access.
	Accesses uint64
	// L1Hits, L2Hits, MemAccesses partition Accesses.
	L1Hits, L2Hits, MemAccesses uint64
	// MemLineFills counts lines fetched from memory (= MemAccesses).
	MemLineFills uint64
	// MemWriteBacks counts dirty lines written to memory.
	MemWriteBacks uint64
	// MemWriteThroughs counts write-through stores that reach memory
	// (L2 disabled and a write-through L1).
	MemWriteThroughs uint64
	// Prefetches counts next-line fills issued by the prefetcher; they
	// add memory traffic (MemLineFills) but no demand stalls.
	Prefetches uint64
}

// MemReadBytes returns bytes read from memory given the line size.
func (s HierarchyStats) MemReadBytes(lineBytes int) uint64 {
	return s.MemLineFills * uint64(lineBytes)
}

// MemWriteBytes returns bytes written to memory given the line size.
// Write-throughs are counted as single words (8 bytes), line write-backs as
// full lines.
func (s HierarchyStats) MemWriteBytes(lineBytes int) uint64 {
	return s.MemWriteBacks*uint64(lineBytes) + s.MemWriteThroughs*8
}

// NewHierarchy builds a hierarchy; l2 may be nil to disable the second level.
func NewHierarchy(l1, l2 *Cache) *Hierarchy {
	if l1 == nil {
		panic("cache: hierarchy requires an L1")
	}
	return &Hierarchy{L1: l1, L2: l2}
}

// NewSCCHierarchy builds the default SCC per-core hierarchy.
// withL2=false models the L2-disabled boot configuration.
func NewSCCHierarchy(withL2 bool) *Hierarchy {
	var l2 *Cache
	if withL2 {
		l2 = New(SCCL2())
	}
	return NewHierarchy(New(SCCL1()), l2)
}

// Level identifies where an access was satisfied.
type Level int

const (
	// LevelL1 means the L1 held the line.
	LevelL1 Level = iota
	// LevelL2 means the L1 missed and the L2 held the line.
	LevelL2
	// LevelMemory means both levels missed (or the L2 is disabled).
	LevelMemory
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMemory:
		return "memory"
	default:
		return "invalid"
	}
}

// Access simulates one load or store and returns the level that satisfied it.
func (h *Hierarchy) Access(addr uint64, write bool) Level {
	h.events.Accesses++
	r1 := h.L1.Access(addr, write)

	// With a write-back L1 a dirty victim line flows to the next level.
	if r1.WroteBack {
		h.storeBelow(r1.VictimAddr)
	}

	if r1.Hit {
		h.events.L1Hits++
		// A write-through L1 forwards every store below even on a hit.
		if r1.WroteThrough {
			h.storeBelow(addr)
		}
		return LevelL1
	}

	// L1 miss: one access to the level below brings the line in. When the
	// L1 is write-through, the store itself is also forwarded, so the
	// below access is a store (the L2 absorbs the dirty data); with a
	// write-back L1 the fill is a clean read.
	forwardStore := write && r1.WroteThrough
	if h.L2 == nil {
		h.events.MemAccesses++
		h.events.MemLineFills++
		if forwardStore {
			h.events.MemWriteThroughs++
		}
		h.prefetch(addr)
		return LevelMemory
	}
	r2 := h.L2.Access(addr, forwardStore)
	if r2.WroteBack {
		h.events.MemWriteBacks++
	}
	if r2.Hit {
		h.events.L2Hits++
		return LevelL2
	}
	h.events.MemAccesses++
	h.events.MemLineFills++
	h.prefetch(addr)
	return LevelMemory
}

// prefetch fills the line after addr into the cache below the L1 (demand
// misses beyond it still count; the fill itself only adds traffic).
func (h *Hierarchy) prefetch(addr uint64) {
	if !h.NextLinePrefetch {
		return
	}
	next := (addr + uint64(h.LineBytes())) &^ uint64(h.LineBytes()-1)
	target := h.L2
	if target == nil {
		target = h.L1
	}
	if target.Contains(next) {
		return
	}
	r := target.Access(next, false)
	if r.WroteBack {
		h.events.MemWriteBacks++
	}
	h.events.MemLineFills++
	h.events.Prefetches++
}

// storeBelow forwards a store (write-through or victim write-back) to the
// level below the L1, updating memory-traffic accounting.
func (h *Hierarchy) storeBelow(addr uint64) {
	if h.L2 == nil {
		h.events.MemWriteThroughs++
		return
	}
	r2 := h.L2.Access(addr, true)
	if !r2.Hit {
		h.events.MemLineFills++ // write-allocate fill from memory
	}
	if r2.WroteBack {
		h.events.MemWriteBacks++
	}
}

// Stats returns the accumulated hierarchy statistics.
func (h *Hierarchy) Stats() HierarchyStats { return h.events }

// ResetStats clears hierarchy and per-level counters, leaving contents.
func (h *Hierarchy) ResetStats() {
	h.events = HierarchyStats{}
	h.L1.ResetStats()
	if h.L2 != nil {
		h.L2.ResetStats()
	}
}

// Flush flushes both levels (dirty data reaches memory) and returns the
// number of dirty lines that reached memory.
func (h *Hierarchy) Flush() int {
	h.L1.Flush() // L1 is write-through in the SCC model: nothing dirty
	if h.L2 == nil {
		return 0
	}
	wb := h.L2.Flush()
	h.events.MemWriteBacks += uint64(wb)
	return wb
}

// LineBytes returns the hierarchy's line size (L1's; levels share it).
func (h *Hierarchy) LineBytes() int { return h.L1.cfg.LineBytes }
