package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHierarchyLevels(t *testing.T) {
	h := NewSCCHierarchy(true)
	if lvl := h.Access(0, false); lvl != LevelMemory {
		t.Fatalf("cold access satisfied at %v", lvl)
	}
	if lvl := h.Access(0, false); lvl != LevelL1 {
		t.Fatalf("warm access satisfied at %v", lvl)
	}
	// Evict from L1 (16KB, 128 sets): access 5 conflicting lines with a
	// 4 KB stride, then return to the first. It should be an L2 hit.
	stride := uint64(16 << 10 / 4) // one L1 way span = sets*line = 4 KB
	for i := 1; i <= 5; i++ {
		h.Access(uint64(i)*stride*64, false)
	}
	// The original line 0 may or may not be evicted depending on set
	// mapping; force eviction by walking its exact set.
	h2 := NewSCCHierarchy(true)
	h2.Access(0, false)
	for i := 1; i <= 4; i++ {
		h2.Access(uint64(i)*4096, false) // same L1 set (4 KB apart), 4 ways
	}
	if lvl := h2.Access(0, false); lvl != LevelL2 {
		t.Fatalf("L1-evicted line satisfied at %v, want L2", lvl)
	}
}

func TestHierarchyWithoutL2(t *testing.T) {
	h := NewSCCHierarchy(false)
	if h.L2 != nil {
		t.Fatal("L2 present in disabled configuration")
	}
	if lvl := h.Access(0, false); lvl != LevelMemory {
		t.Fatalf("cold = %v", lvl)
	}
	if lvl := h.Access(0, false); lvl != LevelL1 {
		t.Fatalf("warm = %v", lvl)
	}
	// Evict from L1; next access must go to memory, not L2.
	for i := 1; i <= 4; i++ {
		h.Access(uint64(i)*4096, false)
	}
	if lvl := h.Access(0, false); lvl != LevelMemory {
		t.Fatalf("evicted = %v, want memory", lvl)
	}
}

func TestHierarchyStatsPartition(t *testing.T) {
	h := NewSCCHierarchy(true)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		h.Access(uint64(rng.Intn(1<<20)), rng.Intn(4) == 0)
	}
	s := h.Stats()
	if s.Accesses != 20000 {
		t.Fatalf("accesses = %d", s.Accesses)
	}
	if s.L1Hits+s.L2Hits+s.MemAccesses != s.Accesses {
		t.Fatalf("levels don't partition accesses: %+v", s)
	}
	if s.MemLineFills != s.MemAccesses && s.MemLineFills < s.MemAccesses {
		t.Fatalf("line fills %d < memory accesses %d", s.MemLineFills, s.MemAccesses)
	}
}

func TestHierarchyWriteThroughStoreReachesL2(t *testing.T) {
	h := NewSCCHierarchy(true)
	h.Access(0, true) // store miss: L2 filled and dirtied
	// The line is now in both levels; evicting it from L2 must write back.
	if !h.L2.Contains(0) {
		t.Fatal("store did not allocate in L2")
	}
	// Walk the L2 set of address 0: stride = sets*line = 64 KB.
	for i := 1; i <= 4; i++ {
		h.L2.Access(uint64(i)*65536, false)
	}
	if h.L2.Stats().WriteBacks != 1 {
		t.Fatalf("L2 write-backs = %d, want 1 (dirty line from write-through store)", h.L2.Stats().WriteBacks)
	}
}

func TestHierarchyMemWriteTraffic(t *testing.T) {
	h := NewSCCHierarchy(false) // no L2: write-through goes to memory
	h.Access(0, true)
	h.Access(0, true)
	s := h.Stats()
	if s.MemWriteThroughs != 2 {
		t.Fatalf("write-throughs to memory = %d, want 2", s.MemWriteThroughs)
	}
	if s.MemWriteBytes(32) != 16 { // 2 stores x 8 bytes
		t.Fatalf("write bytes = %d, want 16", s.MemWriteBytes(32))
	}
	if s.MemReadBytes(32) != 32 { // 1 line fill
		t.Fatalf("read bytes = %d, want 32", s.MemReadBytes(32))
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := NewSCCHierarchy(true)
	h.Access(0, true)
	h.Access(64, true)
	wb := h.Flush()
	if wb != 2 {
		t.Fatalf("flush wrote back %d lines, want 2", wb)
	}
	if h.Stats().MemWriteBacks != 2 {
		t.Fatalf("flush write-backs not counted: %+v", h.Stats())
	}
	if lvl := h.Access(0, false); lvl != LevelMemory {
		t.Fatalf("post-flush access = %v, want memory", lvl)
	}
}

func TestHierarchyResetStats(t *testing.T) {
	h := NewSCCHierarchy(true)
	h.Access(0, false)
	h.ResetStats()
	if h.Stats() != (HierarchyStats{}) {
		t.Fatal("stats survive reset")
	}
	if lvl := h.Access(0, false); lvl != LevelL1 {
		t.Fatal("contents lost on reset")
	}
}

func TestHierarchyRequiresL1(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHierarchy(nil, ...) did not panic")
		}
	}()
	NewHierarchy(nil, nil)
}

func TestLevelString(t *testing.T) {
	cases := map[Level]string{LevelL1: "L1", LevelL2: "L2", LevelMemory: "memory", Level(9): "invalid"}
	for l, want := range cases {
		if l.String() != want {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), want)
		}
	}
}

// Property: for any access sequence, level counts partition total accesses
// and valid lines never exceed capacity.
func TestQuickHierarchyInvariants(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		h := NewSCCHierarchy(true)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(n); i++ {
			h.Access(uint64(rng.Intn(1<<22)), rng.Intn(3) == 0)
		}
		s := h.Stats()
		if s.L1Hits+s.L2Hits+s.MemAccesses != s.Accesses {
			return false
		}
		l1Cap := h.L1.Config().SizeBytes / h.L1.Config().LineBytes
		l2Cap := h.L2.Config().SizeBytes / h.L2.Config().LineBytes
		return h.L1.LinesValid() <= l1Cap && h.L2.LinesValid() <= l2Cap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: repeating the exact same access twice in a row always hits L1
// the second time.
func TestQuickImmediateRehit(t *testing.T) {
	f := func(addr uint32, write bool) bool {
		h := NewSCCHierarchy(true)
		h.Access(uint64(addr), write)
		return h.Access(uint64(addr), false) == LevelL1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNextLinePrefetchTurnsStreamMissesIntoL2Hits(t *testing.T) {
	plain := NewSCCHierarchy(true)
	pf := NewSCCHierarchy(true)
	pf.NextLinePrefetch = true
	// A pure forward stream over 512 lines.
	for i := 0; i < 512; i++ {
		plain.Access(uint64(i*32), false)
		pf.Access(uint64(i*32), false)
	}
	sp, sf := plain.Stats(), pf.Stats()
	if sp.MemAccesses != 512 {
		t.Fatalf("plain stream demand misses = %d, want 512", sp.MemAccesses)
	}
	// With next-line prefetch roughly every other access is an L2 hit.
	if sf.L2Hits < 200 {
		t.Fatalf("prefetch stream L2 hits = %d, want ~256", sf.L2Hits)
	}
	if sf.Prefetches == 0 {
		t.Fatal("no prefetches recorded")
	}
	// Prefetch traffic is accounted: fills >= demand misses.
	if sf.MemLineFills < sf.MemAccesses {
		t.Fatalf("fills %d < demand misses %d", sf.MemLineFills, sf.MemAccesses)
	}
}

func TestPrefetchWithoutL2FillsL1(t *testing.T) {
	h := NewSCCHierarchy(false)
	h.NextLinePrefetch = true
	h.Access(0, false)
	if !h.L1.Contains(32) {
		t.Fatal("next line not prefetched into L1")
	}
}

func TestPrefetchSkipsResidentLines(t *testing.T) {
	h := NewSCCHierarchy(true)
	h.NextLinePrefetch = true
	h.Access(32, false) // line 1 resident in both levels
	h.Access(0, false)  // miss; next line (1) already present below
	before := h.Stats().Prefetches
	h.Access(4096*17, false) // unrelated miss; its next line absent
	if h.Stats().Prefetches != before+1 {
		t.Fatalf("prefetch count = %d, want %d", h.Stats().Prefetches, before+1)
	}
}
