// Package cache implements an address-accurate set-associative cache
// simulator modelled on the SCC's P54C cores: 16 KB L1 and 256 KB L2, 4-way
// set associative, 32-byte lines, tree pseudo-LRU replacement, write-back
// with write-allocate. The SCC offers no hardware coherence, so caches are
// strictly private and expose an explicit Flush, mirroring the software
// coherence model RCCE programs use.
package cache

import (
	"fmt"
	"math/bits"
)

// Replacement selects the victim-selection policy of a cache level.
type Replacement int

const (
	// TreePLRU is the SCC's tree pseudo-LRU policy (the default; the
	// zero value keeps existing configurations unchanged).
	TreePLRU Replacement = iota
	// TrueLRU evicts the genuinely least-recently-used way. It is not
	// what the P54C implements, but it is the policy under which a
	// stack-distance (reuse-distance) model predicts hits exactly, so it
	// serves as the oracle for the analytic pricing fast path
	// (internal/sim, internal/trace).
	TrueLRU
)

// String implements fmt.Stringer.
func (r Replacement) String() string {
	switch r {
	case TreePLRU:
		return "plru"
	case TrueLRU:
		return "lru"
	default:
		return "invalid"
	}
}

// Config describes one cache level.
type Config struct {
	// SizeBytes is the total capacity; must be Ways*LineBytes*Sets with
	// power-of-two sets.
	SizeBytes int
	// LineBytes is the line size (32 on the SCC's P54C cores).
	LineBytes int
	// Ways is the associativity (4 on the SCC).
	Ways int
	// WriteBack selects write-back (true, SCC L2) or write-through
	// (false, modelling the P54C L1's default behaviour).
	WriteBack bool
	// Replacement selects the victim policy: TreePLRU (the SCC default)
	// or TrueLRU (the stack-algorithm oracle for analytic pricing).
	Replacement Replacement
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible by ways*line = %d", c.SizeBytes, c.LineBytes*c.Ways)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	if c.Replacement == TreePLRU && c.Ways&(c.Ways-1) != 0 {
		return fmt.Errorf("cache: associativity %d not a power of two (tree PLRU requires it)", c.Ways)
	}
	if c.Replacement != TreePLRU && c.Replacement != TrueLRU {
		return fmt.Errorf("cache: unknown replacement policy %d", c.Replacement)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// SCCL1 returns the SCC per-core L1 data cache geometry: 16 KB, 4-way,
// 32 B lines, write-through.
func SCCL1() Config {
	return Config{SizeBytes: 16 << 10, LineBytes: 32, Ways: 4, WriteBack: false}
}

// SCCL2 returns the SCC per-core L2 geometry: 256 KB, 4-way, 32 B lines,
// write-back (the paper notes the L2 is write-back only).
func SCCL2() Config {
	return Config{SizeBytes: 256 << 10, LineBytes: 32, Ways: 4, WriteBack: true}
}

// Stats counts cache events.
type Stats struct {
	Hits, Misses uint64
	// Evictions counts replaced valid lines; WriteBacks counts how many
	// of those were dirty (write-back caches only).
	Evictions, WriteBacks uint64
	// WriteThroughs counts writes forwarded below by a write-through
	// cache (every write when WriteBack is false).
	WriteThroughs uint64
}

// MissRatio returns Misses / (Hits + Misses), or 0 with no accesses.
func (s Stats) MissRatio() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

// Cache is a single-level set-associative cache with tree pseudo-LRU.
// It is not safe for concurrent use; simulated cores own private instances.
type Cache struct {
	cfg       Config
	sets      int
	setShift  uint // log2(LineBytes)
	setMask   uint64
	tags      []uint64 // sets*ways; tag 0 is valid only when valid bit set
	valid     []bool
	dirty     []bool
	plru      []uint32 // one tree per set, bit-packed (ways-1 bits used)
	stamp     []uint64 // per-line recency stamps (TrueLRU only)
	tick      uint64   // monotonic access clock (TrueLRU only)
	ways      int
	treeDepth int
	stats     Stats
}

// New builds a cache from cfg; it panics on an invalid configuration
// (construction happens at simulator setup where a panic is a programming
// error, not a runtime condition).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:       cfg,
		sets:      sets,
		setShift:  uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, sets*cfg.Ways),
		valid:     make([]bool, sets*cfg.Ways),
		dirty:     make([]bool, sets*cfg.Ways),
		plru:      make([]uint32, sets),
		ways:      cfg.Ways,
		treeDepth: bits.TrailingZeros(uint(cfg.Ways)),
	}
	if cfg.Replacement == TrueLRU {
		c.stamp = make([]uint64, sets*cfg.Ways)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated event counts.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Result reports what a single access did.
type Result struct {
	// Hit is true when the line was present.
	Hit bool
	// WroteBack is true when the access evicted a dirty line (the line
	// must be written to the next level / memory).
	WroteBack bool
	// VictimAddr is the base address of the evicted dirty line, valid
	// only when WroteBack is true.
	VictimAddr uint64
	// WroteThrough is true when a write-through cache forwarded the
	// write below.
	WroteThrough bool
}

// Access simulates one load (write=false) or store (write=true) of the byte
// at addr. A miss allocates the line (write-allocate policy for both reads
// and writes).
func (c *Cache) Access(addr uint64, write bool) Result {
	line := addr >> c.setShift
	set := int(line & c.setMask)
	tag := line >> uint(bits.TrailingZeros(uint(c.sets)))
	base := set * c.ways

	// Probe.
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.stats.Hits++
			c.touch(set, w)
			var r Result
			r.Hit = true
			if write {
				if c.cfg.WriteBack {
					c.dirty[base+w] = true
				} else {
					c.stats.WriteThroughs++
					r.WroteThrough = true
				}
			}
			return r
		}
	}

	// Miss: find victim (invalid way first, else PLRU).
	c.stats.Misses++
	victim := -1
	for w := 0; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
	}
	var r Result
	if victim < 0 {
		victim = c.victim(set)
		c.stats.Evictions++
		if c.dirty[base+victim] {
			c.stats.WriteBacks++
			r.WroteBack = true
			r.VictimAddr = (c.tags[base+victim]<<uint(bits.TrailingZeros(uint(c.sets))) | uint64(set)) << c.setShift
		}
	}
	c.tags[base+victim] = tag
	c.valid[base+victim] = true
	c.dirty[base+victim] = write && c.cfg.WriteBack
	if write && !c.cfg.WriteBack {
		c.stats.WriteThroughs++
		r.WroteThrough = true
	}
	c.touch(set, victim)
	return r
}

// Contains reports whether the line holding addr is present (no side
// effects; does not update PLRU or stats).
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.setShift
	set := int(line & c.setMask)
	tag := line >> uint(bits.TrailingZeros(uint(c.sets)))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Flush writes back every dirty line and invalidates the whole cache,
// returning the number of dirty lines written back. This is the software
// coherence operation SCC programs issue around communication phases.
func (c *Cache) Flush() (writeBacks int) {
	for i := range c.valid {
		if c.valid[i] && c.dirty[i] {
			writeBacks++
		}
		c.valid[i] = false
		c.dirty[i] = false
	}
	for i := range c.plru {
		c.plru[i] = 0
	}
	return writeBacks
}

// LinesValid returns the number of currently valid lines (test/debug aid).
func (c *Cache) LinesValid() int {
	n := 0
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}

// victim picks the way to evict from a full set under the configured
// replacement policy.
func (c *Cache) victim(set int) int {
	if c.cfg.Replacement == TrueLRU {
		base := set * c.ways
		v, best := 0, c.stamp[base]
		for w := 1; w < c.ways; w++ {
			if c.stamp[base+w] < best {
				best, v = c.stamp[base+w], w
			}
		}
		return v
	}
	return c.plruVictim(set)
}

// touch makes way w the most recently used of its set: a recency stamp
// under TrueLRU, or pointing every PLRU tree node on the path to w away
// from it.
func (c *Cache) touch(set, w int) {
	if c.cfg.Replacement == TrueLRU {
		c.tick++
		c.stamp[set*c.ways+w] = c.tick
		return
	}
	if c.ways == 1 {
		return
	}
	tree := c.plru[set]
	node := 0 // root at index 0; children of node i are 2i+1, 2i+2
	for level := c.treeDepth - 1; level >= 0; level-- {
		bit := (w >> uint(level)) & 1
		// Point the node to the opposite half of where w lives.
		if bit == 0 {
			tree |= 1 << uint(node) // 1 = "victim on the right"... see plruVictim
		} else {
			tree &^= 1 << uint(node)
		}
		node = 2*node + 1 + bit
	}
	c.plru[set] = tree
}

// plruVictim walks the PLRU tree toward the pseudo-least-recently-used way.
func (c *Cache) plruVictim(set int) int {
	if c.ways == 1 {
		return 0
	}
	tree := c.plru[set]
	node := 0
	w := 0
	for level := 0; level < c.treeDepth; level++ {
		bit := int((tree >> uint(node)) & 1)
		w = w<<1 | bit
		node = 2*node + 1 + bit
	}
	return w
}
