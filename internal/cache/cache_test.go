package cache

import (
	"testing"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{
		SCCL1(), SCCL2(),
		{SizeBytes: 1024, LineBytes: 64, Ways: 2},
		{SizeBytes: 64, LineBytes: 64, Ways: 1},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", c, err)
		}
	}
	bad := []Config{
		{},
		{SizeBytes: 100, LineBytes: 32, Ways: 4}, // not divisible
		{SizeBytes: 1024, LineBytes: 48, Ways: 4}, // line not pow2
		{SizeBytes: 96 * 3, LineBytes: 32, Ways: 3},
		{SizeBytes: -1, LineBytes: 32, Ways: 4},
		{SizeBytes: 1536, LineBytes: 32, Ways: 4}, // 12 sets, not pow2
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted bad config", c)
		}
	}
}

func TestSCCGeometries(t *testing.T) {
	l1 := SCCL1()
	if l1.SizeBytes != 16<<10 || l1.Ways != 4 || l1.LineBytes != 32 || l1.WriteBack {
		t.Fatalf("SCCL1 = %+v", l1)
	}
	if l1.Sets() != 128 {
		t.Fatalf("SCCL1 sets = %d, want 128", l1.Sets())
	}
	l2 := SCCL2()
	if l2.SizeBytes != 256<<10 || !l2.WriteBack {
		t.Fatalf("SCCL2 = %+v", l2)
	}
	if l2.Sets() != 2048 {
		t.Fatalf("SCCL2 sets = %d, want 2048", l2.Sets())
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(bad) did not panic")
		}
	}()
	New(Config{SizeBytes: 100, LineBytes: 32, Ways: 4})
}

func TestColdMissThenHit(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 32, Ways: 2})
	if r := c.Access(0x40, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(0x40, false); !r.Hit {
		t.Fatal("second access missed")
	}
	if r := c.Access(0x41, false); !r.Hit {
		t.Fatal("same-line access missed")
	}
	if r := c.Access(0x40+32, false); r.Hit {
		t.Fatal("next line hit without being loaded")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses", s)
	}
}

func TestCapacityEviction(t *testing.T) {
	// 4 sets x 2 ways x 32B = 256 bytes. Walk 3 lines mapping to set 0.
	c := New(Config{SizeBytes: 256, LineBytes: 32, Ways: 2})
	sets := c.cfg.Sets() // 4
	stride := uint64(32 * sets)
	c.Access(0, false)
	c.Access(stride, false)
	c.Access(2*stride, false) // evicts one of the first two
	if c.LinesValid() != 2 {
		t.Fatalf("set holds %d lines, want 2", c.LinesValid())
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestPLRUDivergesFromTrueLRU(t *testing.T) {
	// The canonical tree-PLRU sequence: touch A,B,C,D then A,B,C and
	// insert E. True LRU would evict D; tree PLRU evicts A, because
	// touching C flips the root toward the A/B half whose node still
	// points at A. This pins down that we model the SCC's pseudo-LRU,
	// not exact LRU.
	c := New(Config{SizeBytes: 4 * 32, LineBytes: 32, Ways: 4}) // one set
	addr := func(i int) uint64 { return uint64(i) * 32 }
	for i := 0; i < 4; i++ {
		c.Access(addr(i), false)
	}
	for i := 0; i < 3; i++ {
		c.Access(addr(i), false)
	}
	c.Access(addr(4), false) // insert E
	if c.Contains(addr(0)) {
		t.Fatal("tree PLRU should have evicted A")
	}
	for _, i := range []int{1, 2, 3, 4} {
		if !c.Contains(addr(i)) {
			t.Fatalf("line %d unexpectedly evicted", i)
		}
	}
}

func TestPLRUEvictsUntouchedPairUnderAlternation(t *testing.T) {
	// Where PLRU does agree with LRU: alternate between A and B only;
	// a new insertion must land in the C/D half every time.
	c := New(Config{SizeBytes: 4 * 32, LineBytes: 32, Ways: 4})
	addr := func(i int) uint64 { return uint64(i) * 32 }
	for i := 0; i < 4; i++ {
		c.Access(addr(i), false)
	}
	for k := 0; k < 6; k++ {
		c.Access(addr(k%2), false)
	}
	c.Access(addr(10), false)
	if !c.Contains(addr(0)) || !c.Contains(addr(1)) {
		t.Fatal("hot pair A/B was evicted despite constant reuse")
	}
}

func TestPLRUNeverEvictsMostRecentlyUsed(t *testing.T) {
	c := New(Config{SizeBytes: 4 * 32, LineBytes: 32, Ways: 4})
	addr := func(i int) uint64 { return uint64(i) * 32 }
	for i := 0; i < 4; i++ {
		c.Access(addr(i), false)
	}
	// Repeatedly insert new lines; the immediately preceding insertion
	// must survive each time (tree PLRU guarantees the MRU is safe).
	for i := 4; i < 40; i++ {
		c.Access(addr(i), false)
		if !c.Contains(addr(i)) {
			t.Fatalf("line %d missing right after insertion", i)
		}
		if i > 4 && !c.Contains(addr(i-1)) {
			t.Fatalf("MRU line %d evicted by insertion of %d", i-1, i)
		}
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	c := New(Config{SizeBytes: 2 * 32, LineBytes: 32, Ways: 2, WriteBack: true}) // 1 set, 2 ways
	c.Access(0, true)                                                            // dirty A
	c.Access(32, false)                                                          // clean B
	r := c.Access(64, false)                                                     // evicts A or B
	// Insert another to guarantee the dirty line eventually leaves.
	r2 := c.Access(96, false)
	if !r.WroteBack && !r2.WroteBack {
		t.Fatal("dirty line evicted without write-back")
	}
	wb := c.Stats().WriteBacks
	if wb != 1 {
		t.Fatalf("write-backs = %d, want 1", wb)
	}
	// The reported victim address must be line A's base (0) exactly once.
	if r.WroteBack && r.VictimAddr != 0 {
		t.Fatalf("victim addr = %#x, want 0", r.VictimAddr)
	}
	if r2.WroteBack && r2.VictimAddr != 0 {
		t.Fatalf("victim addr = %#x, want 0", r2.VictimAddr)
	}
}

func TestWriteThroughForwardsEveryStore(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 32, Ways: 4, WriteBack: false})
	c.Access(0, true)
	c.Access(0, true)
	c.Access(0, false)
	s := c.Stats()
	if s.WriteThroughs != 2 {
		t.Fatalf("write-throughs = %d, want 2", s.WriteThroughs)
	}
	if s.WriteBacks != 0 {
		t.Fatalf("write-through cache produced write-backs: %+v", s)
	}
}

func TestVictimAddrReconstruction(t *testing.T) {
	// Direct-mapped-ish: 1 way, several sets; dirty lines evicted by
	// conflicting lines must report the original address.
	c := New(Config{SizeBytes: 4 * 32, LineBytes: 32, Ways: 1, WriteBack: true})
	base := uint64(0x1000) // set 0 with 4 sets
	c.Access(base, true)
	r := c.Access(base+4*32, true) // same set, different tag
	if !r.WroteBack {
		t.Fatal("conflicting store did not evict dirty line")
	}
	if r.VictimAddr != base {
		t.Fatalf("victim addr = %#x, want %#x", r.VictimAddr, base)
	}
}

func TestFlushWritesBackAndInvalidates(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 32, Ways: 4, WriteBack: true})
	c.Access(0, true)
	c.Access(64, true)
	c.Access(128, false)
	if got := c.Flush(); got != 2 {
		t.Fatalf("Flush wrote back %d lines, want 2", got)
	}
	if c.LinesValid() != 0 {
		t.Fatal("lines survive a flush")
	}
	if r := c.Access(0, false); r.Hit {
		t.Fatal("hit after flush")
	}
	if got := c.Flush(); got != 0 {
		t.Fatalf("second flush wrote back %d lines", got)
	}
}

func TestContainsHasNoSideEffects(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 32, Ways: 4})
	c.Access(0, false)
	before := c.Stats()
	if !c.Contains(0) || c.Contains(4096) {
		t.Fatal("Contains wrong")
	}
	if c.Stats() != before {
		t.Fatal("Contains changed stats")
	}
}

func TestMissRatio(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 {
		t.Fatal("empty stats miss ratio != 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.MissRatio() != 0.25 {
		t.Fatalf("miss ratio = %v, want 0.25", s.MissRatio())
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 32, Ways: 4})
	c.Access(0, false)
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Fatal("stats survive reset")
	}
	if r := c.Access(0, false); !r.Hit {
		t.Fatal("contents lost on stats reset")
	}
}

func TestSingleWayCache(t *testing.T) {
	c := New(Config{SizeBytes: 64, LineBytes: 32, Ways: 1})
	c.Access(0, false)
	c.Access(64, false) // same set (2 sets): set = line&1; line0 set0, line2 set0
	if c.Contains(0) {
		t.Fatal("direct-mapped conflict did not evict")
	}
	if !c.Contains(64) {
		t.Fatal("new line absent")
	}
}

// TestSequentialWorkingSetFits verifies a working set equal to capacity
// stays resident under repeated sequential sweeps (no pathological PLRU
// thrashing for a power-of-two-aligned stream).
func TestSequentialWorkingSetFits(t *testing.T) {
	cfg := Config{SizeBytes: 8 << 10, LineBytes: 32, Ways: 4}
	c := New(cfg)
	lines := cfg.SizeBytes / cfg.LineBytes
	for i := 0; i < lines; i++ {
		c.Access(uint64(i*32), false)
	}
	c.ResetStats()
	for sweep := 0; sweep < 3; sweep++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i*32), false)
		}
	}
	if mr := c.Stats().MissRatio(); mr != 0 {
		t.Fatalf("resident sweep miss ratio = %v, want 0", mr)
	}
}

// TestOverCapacityStreamsMiss verifies a working set twice the capacity
// misses heavily under LRU-style replacement (the capacity-miss regime the
// paper's Figure 6 analysis hinges on).
func TestOverCapacityStreamsMiss(t *testing.T) {
	cfg := Config{SizeBytes: 8 << 10, LineBytes: 32, Ways: 4}
	c := New(cfg)
	lines := 2 * cfg.SizeBytes / cfg.LineBytes
	for sweep := 0; sweep < 2; sweep++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i*32), false)
		}
	}
	// Second sweep of a 2x working set under (P)LRU must still miss a lot.
	if mr := c.Stats().MissRatio(); mr < 0.9 {
		t.Fatalf("over-capacity miss ratio = %v, want >= 0.9", mr)
	}
}

// TestTrueLRUEvictsLeastRecent pins the TrueLRU policy: in a 4-way set,
// touching A B C D then re-touching A and missing on E must evict B (the
// genuinely least-recently-used line), which tree PLRU does not guarantee.
func TestTrueLRUEvictsLeastRecent(t *testing.T) {
	cfg := Config{SizeBytes: 128, LineBytes: 32, Ways: 4, Replacement: TrueLRU}
	c := New(cfg) // a single set
	addr := func(i int) uint64 { return uint64(i) * uint64(cfg.SizeBytes) }
	for i := 0; i < 4; i++ {
		c.Access(addr(i), false) // A B C D
	}
	c.Access(addr(0), false) // A again: B is now LRU
	c.Access(addr(4), false) // E evicts B
	for i, want := range []bool{true, false, true, true, true} {
		if got := c.Contains(addr(i)); got != want {
			t.Fatalf("after eviction, Contains(%d) = %v, want %v", i, got, want)
		}
	}
}

// TestTrueLRUStackProperty verifies the LRU inclusion property the analytic
// pricing model rests on: an access whose per-set stack distance is d hits
// exactly when d < ways.
func TestTrueLRUStackProperty(t *testing.T) {
	for _, ways := range []int{1, 2, 4, 8} {
		cfg := Config{SizeBytes: 32 * ways, LineBytes: 32, Ways: ways, Replacement: TrueLRU}
		c := New(cfg) // one set of `ways` lines
		// Touch lines 0..ways (ways+1 distinct), then re-access line 0:
		// its stack distance is `ways`, so it must miss; line 1 at
		// distance ways-1 ... after the re-fill of 0 evicted 1? Walk
		// carefully: after 0..ways, line 0 has distance ways -> miss.
		for i := 0; i <= ways; i++ {
			c.Access(uint64(i)*32, false)
		}
		c.ResetStats()
		c.Access(0, false)
		if h := c.Stats().Hits; h != 0 {
			t.Fatalf("ways=%d: distance-%d access hit", ways, ways)
		}
		// Immediately repeated access: distance 0 < ways, must hit.
		c.Access(0, false)
		if m := c.Stats().Misses; m != 1 {
			t.Fatalf("ways=%d: distance-0 access missed", ways)
		}
	}
}

// TestLRUAllowsNonPowerOfTwoWays: tree PLRU needs power-of-two ways, true
// LRU does not.
func TestLRUAllowsNonPowerOfTwoWays(t *testing.T) {
	cfg := Config{SizeBytes: 3 * 32, LineBytes: 32, Ways: 3, Replacement: TrueLRU}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("3-way LRU rejected: %v", err)
	}
	cfg.Replacement = TreePLRU
	if err := cfg.Validate(); err == nil {
		t.Fatal("3-way tree PLRU accepted")
	}
	cfg.Replacement = Replacement(7)
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown replacement policy accepted")
	}
}

// TestReplacementString covers the policy names.
func TestReplacementString(t *testing.T) {
	if TreePLRU.String() != "plru" || TrueLRU.String() != "lru" || Replacement(9).String() != "invalid" {
		t.Fatal("replacement names")
	}
}
