package sparse

import (
	"math"
	"testing"
)

func TestGenerateAllClassesValid(t *testing.T) {
	for _, class := range []PatternClass{
		PatternStencil2D, PatternStencil3D, PatternBanded,
		PatternRandom, PatternPowerLaw, PatternBlock,
	} {
		t.Run(string(class), func(t *testing.T) {
			m := Generate(Gen{Name: string(class), Class: class, N: 500, NNZTarget: 5000, Seed: 1})
			if err := m.Validate(); err != nil {
				t.Fatalf("invalid: %v", err)
			}
			if m.Rows != 500 || m.Cols != 500 {
				t.Fatalf("dims %dx%d, want 500x500", m.Rows, m.Cols)
			}
			if m.NNZ() == 0 {
				t.Fatal("no nonzeros generated")
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := Gen{Name: "d", Class: PatternPowerLaw, N: 300, NNZTarget: 3000, Seed: 77}
	a, b := Generate(g), Generate(g)
	if !a.Equal(b) {
		t.Fatal("same seed produced different matrices")
	}
	g2 := g
	g2.Seed = 78
	c := Generate(g2)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestGenerateNNZNearTarget(t *testing.T) {
	// Classes should land within a factor-of-2 band of the target; the
	// point is matching the testbed's ws ordering, not exact counts.
	for _, class := range []PatternClass{
		PatternStencil2D, PatternStencil3D, PatternBanded,
		PatternRandom, PatternBlock,
	} {
		m := Generate(Gen{Name: "n", Class: class, N: 1000, NNZTarget: 20000, Seed: 3})
		ratio := float64(m.NNZ()) / 20000
		if ratio < 0.4 || ratio > 2.0 {
			t.Errorf("%s: nnz %d is %.2fx the target", class, m.NNZ(), ratio)
		}
	}
}

func TestStencil2DLocality(t *testing.T) {
	m := Generate(Gen{Name: "s", Class: PatternStencil2D, N: 1024, NNZTarget: 5120, Seed: 1})
	st := ComputeStats(m)
	// A grid stencil's column span per row is bounded by a few grid rows.
	if st.AvgColSpan > 5*math.Sqrt(1024) {
		t.Errorf("stencil2d avg col span %v too wide", st.AvgColSpan)
	}
	if st.StdRow > 2 {
		t.Errorf("stencil2d row-length std %v; want near-constant rows", st.StdRow)
	}
}

func TestRandomIsWiderThanBanded(t *testing.T) {
	n, nnz := 2000, 20000
	rnd := Generate(Gen{Name: "r", Class: PatternRandom, N: n, NNZTarget: nnz, Seed: 4})
	band := Generate(Gen{Name: "b", Class: PatternBanded, N: n, NNZTarget: nnz, Bandwidth: 50, Seed: 4})
	sr, sb := ComputeStats(rnd), ComputeStats(band)
	if sr.AvgColSpan <= sb.AvgColSpan {
		t.Errorf("random span %v should exceed banded span %v", sr.AvgColSpan, sb.AvgColSpan)
	}
	if sb.Bandwidth > 50 {
		t.Errorf("banded bandwidth %d exceeds requested 50", sb.Bandwidth)
	}
}

func TestPowerLawHasHeavyTail(t *testing.T) {
	m := Generate(Gen{Name: "p", Class: PatternPowerLaw, N: 5000, NNZTarget: 50000, Seed: 6})
	st := ComputeStats(m)
	if float64(st.MaxRow) < 4*st.NNZPerRow {
		t.Errorf("power law max row %d vs mean %.1f: no heavy tail", st.MaxRow, st.NNZPerRow)
	}
}

func TestBlockHasDenseDiagonalBlocks(t *testing.T) {
	m := Generate(Gen{Name: "blk", Class: PatternBlock, N: 512, NNZTarget: 16384, BlockSize: 32, Seed: 7})
	st := ComputeStats(m)
	if st.DiagFraction < 0.5 {
		t.Errorf("block matrix near-diagonal fraction %v; want most mass in blocks", st.DiagFraction)
	}
}

func TestGenerateDiagonalAlwaysPresent(t *testing.T) {
	for _, class := range []PatternClass{PatternStencil2D, PatternBanded, PatternRandom, PatternBlock} {
		m := Generate(Gen{Name: "d", Class: class, N: 100, NNZTarget: 600, Seed: 2})
		for i := 0; i < m.Rows; i++ {
			if m.At(i, i) == 0 {
				t.Fatalf("%s: missing diagonal at row %d", class, i)
			}
		}
	}
}

func TestGeneratePanicsOnBadInput(t *testing.T) {
	for name, g := range map[string]Gen{
		"zero n":        {Class: PatternRandom, N: 0, NNZTarget: 10},
		"unknown class": {Class: "nope", N: 10, NNZTarget: 10},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Generate did not panic", name)
				}
			}()
			Generate(g)
		}()
	}
}

func TestGenerateTinySizes(t *testing.T) {
	for _, class := range []PatternClass{
		PatternStencil2D, PatternStencil3D, PatternBanded,
		PatternRandom, PatternPowerLaw, PatternBlock,
	} {
		m := Generate(Gen{Name: "tiny", Class: class, N: 3, NNZTarget: 3, Seed: 1})
		if err := m.Validate(); err != nil {
			t.Errorf("%s at N=3: %v", class, err)
		}
	}
}
