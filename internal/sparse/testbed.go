package sparse

import (
	"fmt"
	"math"
)

// TestbedEntry describes one matrix of the paper's Table I benchmark suite.
// The UFL collection is not reachable offline, so N and NNZ are reconstructed
// from the collection's published statistics for the named matrices, and
// Class assigns the synthetic pattern family that matches each matrix's
// provenance (FEM/structural -> stencils, optimisation/circuit -> power law,
// dense substructures -> block, etc.). See DESIGN.md section 1.
type TestbedEntry struct {
	// ID is the 1-based index used throughout the paper's figures.
	ID int
	// Name is the UFL matrix name.
	Name string
	// Class is the synthetic pattern family used to reconstruct it.
	Class PatternClass
	// N is the number of rows/columns (all testbed matrices are square).
	N int
	// NNZ is the nonzero count.
	NNZ int
}

// NNZPerRow returns the average row length.
func (e TestbedEntry) NNZPerRow() float64 { return float64(e.NNZ) / float64(e.N) }

// WorkingSetBytes applies the paper's working-set formula to the entry.
func (e TestbedEntry) WorkingSetBytes() int64 {
	n, nnz := int64(e.N), int64(e.NNZ)
	return 4*((n+1)+nnz) + 8*(nnz+2*n)
}

// WorkingSetMB returns the working set in binary megabytes.
func (e TestbedEntry) WorkingSetMB() float64 {
	return float64(e.WorkingSetBytes()) / (1 << 20)
}

// Seed is the deterministic generator seed of the entry's synthetic
// reconstruction - the stable identity fault injection keys on.
func (e TestbedEntry) Seed() int64 { return int64(1000 + e.ID) }

// Generate builds the synthetic reconstruction of the entry at scale 1.
func (e TestbedEntry) Generate() *CSR { return e.GenerateScaled(1) }

// GenerateScaled builds the entry with both N and NNZ scaled by f in (0, 1],
// preserving the average row length and pattern class. Scaling shrinks the
// working set proportionally, which keeps experiment run times manageable
// while preserving the relative ws ordering across the suite.
func (e TestbedEntry) GenerateScaled(f float64) *CSR {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("sparse: scale %v outside (0,1]", f))
	}
	n := int(math.Max(64, math.Round(float64(e.N)*f)))
	nnz := int(math.Max(float64(n), math.Round(float64(e.NNZ)*f)))
	name := e.Name
	if f != 1 {
		name = fmt.Sprintf("%s@%.3g", e.Name, f)
	}
	m := Generate(Gen{
		Name:      name,
		Class:     e.Class,
		N:         n,
		NNZTarget: nnz,
		Seed:      e.Seed(), // deterministic per entry
	})
	return m
}

// Testbed returns the paper's 32-matrix suite (Table I) in paper order.
// The slice is freshly allocated on each call; callers may modify it.
func Testbed() []TestbedEntry {
	return []TestbedEntry{
		{1, "TSOPF_FS_b300_c3", PatternBlock, 84414, 13135930},
		{2, "F1", PatternStencil3D, 343791, 26837113},
		{3, "ship_003", PatternStencil3D, 121728, 8086034},
		{4, "thread", PatternBlock, 29736, 4444880},
		{5, "gupta3", PatternPowerLaw, 16783, 9323427},
		{6, "nd3k", PatternStencil3D, 9000, 3279690},
		{7, "sme3Dc", PatternStencil3D, 42930, 3148656},
		{8, "pct20stif", PatternStencil3D, 52329, 2698463},
		{9, "tsyl201", PatternBanded, 20685, 2454957},
		{10, "exdata_1", PatternBlock, 6001, 2269500},
		{11, "mixtank_new", PatternStencil3D, 29957, 1995041},
		{12, "crystk03", PatternStencil3D, 24696, 1751178},
		{13, "av41092", PatternRandom, 41092, 1683902},
		{14, "sparsine", PatternRandom, 50000, 1548988},
		{15, "nc5", PatternBanded, 19652, 1499816},
		{16, "syn12000a", PatternBlock, 12000, 1436806},
		{17, "li", PatternStencil3D, 22695, 1350309},
		{18, "msc23052", PatternStencil3D, 23052, 1154814},
		{19, "gyro_k", PatternStencil3D, 17361, 1021159},
		{20, "sme3Da", PatternStencil3D, 12504, 874887},
		{21, "fp", PatternPowerLaw, 7548, 848553},
		{22, "e40r0100", PatternStencil2D, 17281, 553562},
		{23, "psmigr_1", PatternRandom, 3140, 543162},
		{24, "rajat01", PatternPowerLaw, 30202, 130303},
		{25, "ncvxbqp1", PatternBanded, 50000, 349968},
		{26, "nmos3", PatternStencil2D, 18588, 386594},
		{27, "net25", PatternPowerLaw, 9520, 401200},
		{28, "garon2", PatternStencil2D, 13535, 373235},
		{29, "bcsstm36", PatternBanded, 23052, 320606},
		{30, "Na5", PatternStencil3D, 5832, 305630},
		{31, "tandem_vtx", PatternStencil2D, 18454, 253350},
		{32, "lhr04", PatternPowerLaw, 4101, 81057},
	}
}

// TestbedEntryByName returns the entry with the given UFL name.
func TestbedEntryByName(name string) (TestbedEntry, bool) {
	for _, e := range Testbed() {
		if e.Name == name {
			return e, true
		}
	}
	return TestbedEntry{}, false
}

// ShortRowEntries returns the testbed IDs the paper singles out for very
// short rows (small nnz/n): matrices 24 and 25, which suffer inner-loop
// overhead instead of benefiting from small working sets (Section IV-B).
func ShortRowEntries() []int { return []int{24, 25} }
