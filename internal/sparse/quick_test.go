package sparse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genSpec is a reduced, always-valid generator description for testing/quick.
type genSpec struct {
	ClassIdx uint8
	N        uint16
	PerRow   uint8
	Seed     int64
}

var quickClasses = []PatternClass{
	PatternStencil2D, PatternStencil3D, PatternBanded,
	PatternRandom, PatternPowerLaw, PatternBlock,
}

func (genSpec) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genSpec{
		ClassIdx: uint8(r.Intn(len(quickClasses))),
		N:        uint16(8 + r.Intn(300)),
		PerRow:   uint8(1 + r.Intn(12)),
		Seed:     r.Int63(),
	})
}

func (s genSpec) build(name string) *CSR {
	n := int(s.N)
	return Generate(Gen{
		Name:      name,
		Class:     quickClasses[s.ClassIdx],
		N:         n,
		NNZTarget: n * int(s.PerRow),
		Seed:      s.Seed,
	})
}

var quickCfg = &quick.Config{MaxCount: 40}

// Property: every generated matrix satisfies the CSR structural invariants.
func TestQuickGeneratedMatricesValid(t *testing.T) {
	f := func(s genSpec) bool {
		return s.build("q").Validate() == nil
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution for any generated matrix.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(s genSpec) bool {
		m := s.build("q")
		return m.Equal(m.Transpose().Transpose())
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: CSR -> COO -> CSR is the identity.
func TestQuickCOORoundTrip(t *testing.T) {
	f := func(s genSpec) bool {
		m := s.build("q")
		back := FromCSR(m).ToCSR()
		back.Name = m.Name
		return m.Equal(back)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: MulVec is linear: A(ax + by) = a·Ax + b·Ay.
func TestQuickMulVecLinear(t *testing.T) {
	f := func(s genSpec, a, b int8) bool {
		m := s.build("q")
		n := m.Rows
		rng := rand.New(rand.NewSource(s.Seed + 1))
		x1 := make([]float64, n)
		x2 := make([]float64, n)
		for i := range x1 {
			x1[i] = rng.NormFloat64()
			x2[i] = rng.NormFloat64()
		}
		af, bf := float64(a), float64(b)
		comb := make([]float64, n)
		for i := range comb {
			comb[i] = af*x1[i] + bf*x2[i]
		}
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		yc := make([]float64, n)
		m.MulVec(y1, x1)
		m.MulVec(y2, x2)
		m.MulVec(yc, comb)
		for i := range yc {
			want := af*y1[i] + bf*y2[i]
			if math.Abs(yc[i]-want) > 1e-8*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: A^T satisfies <Ax, y> = <x, A^T y>.
func TestQuickTransposeAdjoint(t *testing.T) {
	f := func(s genSpec) bool {
		m := s.build("q")
		tr := m.Transpose()
		n := m.Rows
		rng := rand.New(rand.NewSource(s.Seed + 2))
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		ax := make([]float64, n)
		aty := make([]float64, n)
		m.MulVec(ax, x)
		tr.MulVec(aty, y)
		var lhs, rhs float64
		for i := range x {
			lhs += ax[i] * y[i]
			rhs += x[i] * aty[i]
		}
		return math.Abs(lhs-rhs) <= 1e-7*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: random permutations validate and invert correctly.
func TestQuickPermutationInverse(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		size := int(n)%200 + 1
		p := RandomPerm(size, seed)
		if p.Validate() != nil {
			return false
		}
		inv := p.Inverse()
		for i := range p {
			if inv[p[i]] != int32(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Property: symmetric permutation preserves nnz, validity, and the multiset
// of row lengths is preserved under relabeling.
func TestQuickApplySymmetricPreservesStructure(t *testing.T) {
	f := func(s genSpec, seed int64) bool {
		m := s.build("q")
		p := RandomPerm(m.Rows, seed)
		pm := ApplySymmetric(m, p)
		if pm.Validate() != nil || pm.NNZ() != m.NNZ() {
			return false
		}
		for i := 0; i < m.Rows; i++ {
			if pm.RowNNZ(int(p[i])) != m.RowNNZ(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: stats are internally consistent for any generated matrix.
func TestQuickStatsConsistent(t *testing.T) {
	f := func(s genSpec) bool {
		m := s.build("q")
		st := ComputeStats(m)
		if st.NNZ != m.NNZ() || st.Rows != m.Rows {
			return false
		}
		if st.MinRow > st.MaxRow {
			return false
		}
		if st.NNZPerRow < float64(st.MinRow) || st.NNZPerRow > float64(st.MaxRow) {
			return false
		}
		if st.Bandwidth < 0 || st.Bandwidth >= m.Rows && m.Rows > 0 && st.Bandwidth != 0 && st.Bandwidth > m.Rows-1 {
			return false
		}
		return st.DiagFraction >= 0 && st.DiagFraction <= 1
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}
