package sparse

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// This file provides deterministic synthetic pattern generators. The paper
// runs on 32 matrices from the University of Florida collection; those files
// are not available offline, so the testbed (testbed.go) reconstructs each
// matrix from its published statistics using one of the pattern classes
// below. The classes capture the structural properties the paper's analysis
// depends on: locality of the column pattern (x-access reuse), row-length
// distribution (loop overhead) and total working-set size.

// PatternClass names a generator family.
type PatternClass string

const (
	// PatternStencil2D is a 5-point (or wider) finite-difference grid:
	// highly local column pattern, near-constant row length.
	PatternStencil2D PatternClass = "stencil2d"
	// PatternStencil3D is a 3D grid stencil: local but with three
	// diagonal bands spaced a plane apart.
	PatternStencil3D PatternClass = "stencil3d"
	// PatternBanded scatters entries uniformly inside a fixed band
	// around the diagonal: moderate locality.
	PatternBanded PatternClass = "banded"
	// PatternRandom scatters entries uniformly over the whole row:
	// worst-case locality for x accesses.
	PatternRandom PatternClass = "random"
	// PatternPowerLaw draws column targets from a Zipf-like
	// distribution with heavy-tailed row lengths: scale-free graphs,
	// linear programming and circuit matrices.
	PatternPowerLaw PatternClass = "powerlaw"
	// PatternBlock places dense blocks along the diagonal with sparse
	// random coupling between blocks: multi-body / FEM substructures.
	PatternBlock PatternClass = "block"
)

// Gen describes a synthetic matrix to generate.
type Gen struct {
	Name  string
	Class PatternClass
	// N is the matrix dimension (square matrices, like the testbed).
	N int
	// NNZTarget is the approximate number of nonzeros to produce. The
	// generators land within a few percent; exact counts depend on the
	// class (stencil boundaries, duplicate suppression).
	NNZTarget int
	// Bandwidth bounds |i-j| for PatternBanded (0 means N/8).
	Bandwidth int
	// BlockSize is the dense block edge for PatternBlock (0 means 64).
	BlockSize int
	// Seed makes generation deterministic.
	Seed int64
}

// Generate builds the matrix described by g.
func Generate(g Gen) *CSR {
	if g.N <= 0 {
		panic("sparse: Generate requires N > 0")
	}
	rng := rand.New(rand.NewSource(g.Seed))
	var m *CSR
	switch g.Class {
	case PatternStencil2D:
		m = genStencil2D(g, rng)
	case PatternStencil3D:
		m = genStencil3D(g, rng)
	case PatternBanded:
		m = genBanded(g, rng)
	case PatternRandom:
		m = genRandom(g, rng)
	case PatternPowerLaw:
		m = genPowerLaw(g, rng)
	case PatternBlock:
		m = genBlock(g, rng)
	default:
		panic(fmt.Sprintf("sparse: unknown pattern class %q", g.Class))
	}
	m.Name = g.Name
	return m
}

// rowBuilder accumulates one row's columns, deduplicates and emits CSR.
type rowBuilder struct {
	m    *CSR
	cols []int32
	rng  *rand.Rand
}

func newRowBuilder(n, capHint int, rng *rand.Rand) *rowBuilder {
	return &rowBuilder{
		m: &CSR{
			Rows: n, Cols: n,
			Ptr:   make([]int32, 1, n+1),
			Index: make([]int32, 0, capHint),
			Val:   make([]float64, 0, capHint),
		},
		rng: rng,
	}
}

// flushRow sorts, deduplicates and appends the pending columns as the next
// row, assigning values: a dominant diagonal (when present) and random
// off-diagonal weights, so the matrices are usable in iterative solvers.
func (b *rowBuilder) flushRow(row int) {
	sort.Slice(b.cols, func(i, j int) bool { return b.cols[i] < b.cols[j] })
	prev := int32(-1)
	start := len(b.m.Val)
	for _, c := range b.cols {
		if c == prev {
			continue
		}
		prev = c
		v := b.rng.Float64()*2 - 1 // uniform in (-1, 1)
		b.m.Index = append(b.m.Index, c)
		b.m.Val = append(b.m.Val, v)
	}
	// Make the diagonal dominant when the row contains it: keeps the
	// testbed matrices positive-definite-ish for the CG example.
	for k := start; k < len(b.m.Val); k++ {
		if int(b.m.Index[k]) == row {
			b.m.Val[k] = float64(len(b.m.Val)-start) + 1
		}
	}
	b.m.Ptr = append(b.m.Ptr, int32(len(b.m.Val)))
	b.cols = b.cols[:0]
}

func (b *rowBuilder) add(col int) {
	if col >= 0 && col < b.m.Cols {
		b.cols = append(b.cols, int32(col))
	}
}

// genStencil2D lays the rows of a sqrt(N) x sqrt(N) grid. The stencil width
// grows until the nnz target is met: 5-point, 9-point, 13-point, ...
func genStencil2D(g Gen, rng *rand.Rand) *CSR {
	side := int(math.Round(math.Sqrt(float64(g.N))))
	if side < 1 {
		side = 1
	}
	n := g.N
	want := float64(g.NNZTarget) / float64(n) // target row length
	// Ring radius r gives roughly 1 + 4r points (von Neumann ring sum).
	radius := int(math.Max(1, math.Round((want-1)/4)))
	b := newRowBuilder(n, g.NNZTarget+n, rng)
	for i := 0; i < n; i++ {
		x, y := i%side, i/side
		b.add(i)
		for r := 1; r <= radius; r++ {
			if x-r >= 0 {
				b.add(i - r)
			}
			if x+r < side {
				b.add(i + r)
			}
			b.add(i - r*side)
			b.add(i + r*side)
		}
		_ = y
		b.flushRow(i)
	}
	return b.m
}

// genStencil3D lays the rows of a cbrt(N)^3 grid with a cross stencil in
// three dimensions, widened to meet the nnz target.
func genStencil3D(g Gen, rng *rand.Rand) *CSR {
	side := int(math.Round(math.Cbrt(float64(g.N))))
	if side < 1 {
		side = 1
	}
	plane := side * side
	n := g.N
	want := float64(g.NNZTarget) / float64(n)
	radius := int(math.Max(1, math.Round((want-1)/6)))
	b := newRowBuilder(n, g.NNZTarget+n, rng)
	for i := 0; i < n; i++ {
		x := i % side
		b.add(i)
		for r := 1; r <= radius; r++ {
			if x-r >= 0 {
				b.add(i - r)
			}
			if x+r < side {
				b.add(i + r)
			}
			b.add(i - r*side)
			b.add(i + r*side)
			b.add(i - r*plane)
			b.add(i + r*plane)
		}
		b.flushRow(i)
	}
	return b.m
}

// genBanded scatters row entries uniformly within the band plus the diagonal.
func genBanded(g Gen, rng *rand.Rand) *CSR {
	n := g.N
	bw := g.Bandwidth
	if bw <= 0 {
		bw = n / 8
	}
	if bw < 1 {
		bw = 1
	}
	perRow := g.NNZTarget / n
	if perRow < 1 {
		perRow = 1
	}
	b := newRowBuilder(n, g.NNZTarget+n, rng)
	for i := 0; i < n; i++ {
		b.add(i)
		lo, hi := i-bw, i+bw
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		span := hi - lo + 1
		for k := 0; k < perRow-1; k++ {
			b.add(lo + rng.Intn(span))
		}
		b.flushRow(i)
	}
	return b.m
}

// genRandom scatters entries uniformly over the entire row.
func genRandom(g Gen, rng *rand.Rand) *CSR {
	n := g.N
	perRow := g.NNZTarget / n
	if perRow < 1 {
		perRow = 1
	}
	b := newRowBuilder(n, g.NNZTarget+n, rng)
	for i := 0; i < n; i++ {
		b.add(i)
		for k := 0; k < perRow-1; k++ {
			b.add(rng.Intn(n))
		}
		b.flushRow(i)
	}
	return b.m
}

// genPowerLaw draws both row lengths and column targets from heavy-tailed
// distributions, producing scale-free connectivity.
func genPowerLaw(g Gen, rng *rand.Rand) *CSR {
	n := g.N
	mean := float64(g.NNZTarget) / float64(n)
	// Row length ~ Pareto with the requested mean; clamp to [1, n].
	alpha := 2.2
	xm := mean * (alpha - 2) / (alpha - 1) // mean of Pareto(alpha, xm) is xm*a/(a-1)... see note
	// For alpha=2.2 the mean is xm*alpha/(alpha-1); solve xm = mean*(alpha-1)/alpha.
	xm = mean * (alpha - 1) / alpha
	if xm < 1 {
		xm = 1
	}
	b := newRowBuilder(n, g.NNZTarget+n, rng)
	for i := 0; i < n; i++ {
		u := rng.Float64()
		l := int(xm / math.Pow(1-u, 1/alpha))
		if l < 1 {
			l = 1
		}
		if l > n {
			l = n
		}
		b.add(i)
		for k := 0; k < l-1; k++ {
			// Zipf-like hub preference: square the uniform draw to
			// bias toward low-numbered columns (the hubs).
			u := rng.Float64()
			b.add(int(u * u * float64(n)))
		}
		b.flushRow(i)
	}
	return b.m
}

// genBlock places dense blocks along the diagonal plus sparse random
// inter-block coupling (roughly 10% of the nonzeros).
func genBlock(g Gen, rng *rand.Rand) *CSR {
	n := g.N
	bs := g.BlockSize
	if bs <= 0 {
		bs = 64
	}
	if bs > n {
		bs = n
	}
	// Dense diagonal blocks contribute about n*bs entries; shrink the
	// block fill to hit the target when that overshoots.
	fill := 0.9 * float64(g.NNZTarget) / (float64(n) * float64(bs))
	if fill > 1 {
		fill = 1
	}
	coupling := g.NNZTarget / 10
	perRowCoupling := coupling / n
	b := newRowBuilder(n, g.NNZTarget+n, rng)
	for i := 0; i < n; i++ {
		blk := i / bs
		lo := blk * bs
		hi := lo + bs
		if hi > n {
			hi = n
		}
		b.add(i)
		for j := lo; j < hi; j++ {
			if j != i && rng.Float64() < fill {
				b.add(j)
			}
		}
		for k := 0; k < perRowCoupling; k++ {
			b.add(rng.Intn(n))
		}
		b.flushRow(i)
	}
	return b.m
}

// Dense returns an n x n matrix with every entry stored - small helper for
// tests and examples that need a fully populated pattern.
func Dense(n int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	m := &CSR{
		Name: fmt.Sprintf("dense%d", n),
		Rows: n, Cols: n,
		Ptr:   make([]int32, n+1),
		Index: make([]int32, 0, n*n),
		Val:   make([]float64, 0, n*n),
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Index = append(m.Index, int32(j))
			m.Val = append(m.Val, rng.Float64())
		}
		m.Ptr[i+1] = int32((i + 1) * n)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *CSR {
	m := &CSR{
		Name: fmt.Sprintf("eye%d", n),
		Rows: n, Cols: n,
		Ptr:   make([]int32, n+1),
		Index: make([]int32, n),
		Val:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		m.Ptr[i+1] = int32(i + 1)
		m.Index[i] = int32(i)
		m.Val[i] = 1
	}
	return m
}

// Laplacian2D returns the standard 5-point Laplacian on a side x side grid:
// the canonical symmetric positive definite test matrix for the CG example.
func Laplacian2D(side int) *CSR {
	n := side * side
	m := &CSR{
		Name: fmt.Sprintf("laplace2d_%d", side),
		Rows: n, Cols: n,
		Ptr: make([]int32, 1, n+1),
	}
	for i := 0; i < n; i++ {
		x, y := i%side, i/side
		type e struct {
			c int32
			v float64
		}
		var row []e
		if y > 0 {
			row = append(row, e{int32(i - side), -1})
		}
		if x > 0 {
			row = append(row, e{int32(i - 1), -1})
		}
		row = append(row, e{int32(i), 4})
		if x < side-1 {
			row = append(row, e{int32(i + 1), -1})
		}
		if y < side-1 {
			row = append(row, e{int32(i + side), -1})
		}
		for _, en := range row {
			m.Index = append(m.Index, en.c)
			m.Val = append(m.Val, en.v)
		}
		m.Ptr = append(m.Ptr, int32(len(m.Val)))
	}
	return m
}
