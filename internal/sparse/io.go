package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the subset of the MatrixMarket exchange format the
// UFL collection distributes: "coordinate real general" and
// "coordinate real symmetric" headers, with pattern matrices mapped to
// unit values. It lets users run the harness on real downloaded matrices
// when a copy is available, and round-trips the synthetic testbed.

// WriteMatrixMarket writes m in MatrixMarket coordinate/real/general form.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if m.Name != "" {
		if _, err := fmt.Fprintf(bw, "%% name: %s\n", m.Name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.Ptr[i]; k < m.Ptr[i+1]; k++ {
			// MatrixMarket is 1-based.
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.Index[k]+1, m.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate file into CSR.
// Supported qualifiers: real/integer/pattern x general/symmetric.
// Symmetric inputs are expanded to full storage (off-diagonals mirrored),
// matching how the paper's working-set formula counts nonzeros.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("sparse: bad MatrixMarket header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported storage %q (only coordinate)", header[2])
	}
	field, symm := header[3], header[4]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: unsupported field type %q", field)
	}
	switch symm {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("sparse: unsupported symmetry %q", symm)
	}

	// Skip comments; first non-comment line is the size line.
	var rows, cols, nnz int
	name := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "%") {
			if rest, ok := strings.CutPrefix(line, "% name:"); ok {
				name = strings.TrimSpace(rest)
			}
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %v", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: bad dimensions %dx%d nnz=%d", rows, cols, nnz)
	}

	coo := NewCOO(rows, cols, nnz)
	coo.Name = name
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %v", f[0], err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad column index %q: %v", f[1], err)
		}
		v := 1.0
		if field != "pattern" {
			if len(f) < 3 {
				return nil, fmt.Errorf("sparse: missing value on line %q", line)
			}
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q: %v", f[2], err)
			}
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", i, j, rows, cols)
		}
		coo.Append(i-1, j-1, v)
		if symm == "symmetric" && i != j {
			coo.Append(j-1, i-1, v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read != nnz {
		return nil, fmt.Errorf("sparse: expected %d entries, found %d", nnz, read)
	}
	return coo.ToCSR(), nil
}
