package sparse

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddMatchesDense(t *testing.T) {
	a := Generate(Gen{Name: "a", Class: PatternRandom, N: 60, NNZTarget: 400, Seed: 41})
	b := Generate(Gen{Name: "b", Class: PatternBanded, N: 60, NNZTarget: 400, Seed: 42})
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		for j := 0; j < 60; j++ {
			want := a.At(i, j) + b.At(i, j)
			if got := sum.At(i, j); math.Abs(got-want) > 1e-12 {
				t.Fatalf("(%d,%d): %v != %v", i, j, got, want)
			}
		}
	}
}

func TestAddDimensionMismatch(t *testing.T) {
	if _, err := Add(Identity(3), Identity(4)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestScaleValues(t *testing.T) {
	m := Identity(4)
	m.ScaleValues(2.5)
	for i := 0; i < 4; i++ {
		if m.At(i, i) != 2.5 {
			t.Fatal("scaling broken")
		}
	}
}

func TestDiagonal(t *testing.T) {
	m := Laplacian2D(5)
	d, err := m.Diagonal()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range d {
		if v != 4 {
			t.Fatalf("diag[%d] = %v, want 4", i, v)
		}
	}
	rect := &CSR{Rows: 2, Cols: 3, Ptr: []int32{0, 0, 0}}
	if _, err := rect.Diagonal(); err == nil {
		t.Fatal("rectangular diagonal accepted")
	}
}

func TestAddDiagonalShiftsSpectrumAnchor(t *testing.T) {
	m := Laplacian2D(4)
	shifted, err := AddDiagonal(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := shifted.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shifted.Rows; i++ {
		if got := shifted.At(i, i); got != 7 {
			t.Fatalf("diag[%d] = %v, want 7", i, got)
		}
	}
	// Off-diagonals untouched.
	if shifted.At(0, 1) != -1 {
		t.Fatal("off-diagonal changed")
	}
	rect := &CSR{Rows: 2, Cols: 3, Ptr: []int32{0, 0, 0}}
	if _, err := AddDiagonal(rect, 1); err == nil {
		t.Fatal("rectangular AddDiagonal accepted")
	}
}

func TestNorms(t *testing.T) {
	// [[3, -4], [0, 2]]: Frobenius sqrt(29), inf-norm 7, 1-norm 6.
	coo := NewCOO(2, 2, 3)
	coo.Append(0, 0, 3)
	coo.Append(0, 1, -4)
	coo.Append(1, 1, 2)
	m := coo.ToCSR()
	if got := m.NormFrobenius(); math.Abs(got-math.Sqrt(29)) > 1e-12 {
		t.Fatalf("frobenius = %v", got)
	}
	if got := m.NormInf(); got != 7 {
		t.Fatalf("inf norm = %v", got)
	}
	if got := m.Norm1(); got != 6 {
		t.Fatalf("1-norm = %v", got)
	}
}

func TestNorm1EqualsInfOfTranspose(t *testing.T) {
	m := Generate(Gen{Name: "n", Class: PatternRandom, N: 80, NNZTarget: 600, Seed: 43})
	if got, want := m.Norm1(), m.Transpose().NormInf(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("norm1 %v != norminf(T) %v", got, want)
	}
}

func TestDropZeros(t *testing.T) {
	coo := NewCOO(3, 3, 4)
	coo.Append(0, 0, 1)
	coo.Append(0, 1, 0) // explicit zero
	coo.Append(1, 1, 2)
	coo.Append(2, 2, 0) // explicit zero
	m := coo.ToCSR()
	d := m.DropZeros()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NNZ() != 2 {
		t.Fatalf("dropped nnz = %d, want 2", d.NNZ())
	}
	if d.At(0, 0) != 1 || d.At(1, 1) != 2 {
		t.Fatal("surviving entries wrong")
	}
}

// Property: (A + B)·x == A·x + B·x.
func TestQuickAddDistributes(t *testing.T) {
	f := func(seed int64) bool {
		a := Generate(Gen{Name: "a", Class: PatternRandom, N: 50, NNZTarget: 300, Seed: seed})
		b := Generate(Gen{Name: "b", Class: PatternBanded, N: 50, NNZTarget: 300, Seed: seed + 1})
		sum, err := Add(a, b)
		if err != nil {
			return false
		}
		x := make([]float64, 50)
		for i := range x {
			x[i] = float64(i%11) - 5
		}
		ya := make([]float64, 50)
		yb := make([]float64, 50)
		ys := make([]float64, 50)
		a.MulVec(ya, x)
		b.MulVec(yb, x)
		sum.MulVec(ys, x)
		for i := range ys {
			if math.Abs(ys[i]-(ya[i]+yb[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
