package sparse

import "math"

// Stats summarises the structural properties of a matrix that drive SpMV
// performance in the paper's analysis: size, row-length distribution (loop
// overhead) and column locality (irregular x accesses).
type Stats struct {
	Name       string
	Rows, Cols int
	NNZ        int
	NNZPerRow  float64
	// MinRow/MaxRow are the extreme row lengths; StdRow is the standard
	// deviation of the row-length distribution.
	MinRow, MaxRow int
	StdRow         float64
	// EmptyRows counts rows with no stored entries.
	EmptyRows int
	// Bandwidth is max |i - j| over stored entries.
	Bandwidth int
	// AvgColSpan is the mean over rows of (max col - min col), the
	// footprint each row touches in x; a direct locality proxy.
	AvgColSpan float64
	// DiagFraction is the fraction of entries within |i-j| <= 8 lines
	// worth of columns (32 columns), a near-diagonal locality measure.
	DiagFraction float64
	// WorkingSetMB is the paper's working-set formula in MB.
	WorkingSetMB float64
}

// ComputeStats scans the matrix once and fills a Stats record.
func ComputeStats(m *CSR) Stats {
	s := Stats{
		Name: m.Name,
		Rows: m.Rows, Cols: m.Cols,
		NNZ:          m.NNZ(),
		NNZPerRow:    m.NNZPerRow(),
		MinRow:       math.MaxInt,
		WorkingSetMB: m.WorkingSetMB(),
	}
	if m.Rows == 0 {
		s.MinRow = 0
		return s
	}
	var sumSq float64
	var spanSum float64
	nearDiag := 0
	for i := 0; i < m.Rows; i++ {
		l := m.RowNNZ(i)
		if l < s.MinRow {
			s.MinRow = l
		}
		if l > s.MaxRow {
			s.MaxRow = l
		}
		if l == 0 {
			s.EmptyRows++
		}
		d := float64(l) - s.NNZPerRow
		sumSq += d * d
		lo, hi := m.Ptr[i], m.Ptr[i+1]
		if lo < hi {
			first, last := int(m.Index[lo]), int(m.Index[hi-1])
			spanSum += float64(last - first)
			for k := lo; k < hi; k++ {
				if abs(int(m.Index[k])-i) <= 32 {
					nearDiag++
				}
				if d := abs(int(m.Index[k]) - i); d > s.Bandwidth {
					s.Bandwidth = d
				}
			}
		}
	}
	s.StdRow = math.Sqrt(sumSq / float64(m.Rows))
	s.AvgColSpan = spanSum / float64(m.Rows)
	if s.NNZ > 0 {
		s.DiagFraction = float64(nearDiag) / float64(s.NNZ)
	}
	return s
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
