package sparse

import "fmt"

// Cache blocking (column banding) - the last of the Williams et al. SpMV
// optimisations the paper's related work lists. The matrix is split into
// vertical bands of bandCols columns; processing one band at a time keeps
// the active window of x inside the cache at the cost of touching y (and
// the row pointers) once per band.

// ColumnBands splits a into vertical bands of at most bandCols columns.
// Band k holds the entries with column in [k*bandCols, (k+1)*bandCols).
// Empty bands are kept so band index maps directly to column range.
func ColumnBands(a *CSR, bandCols int) []*CSR {
	if bandCols <= 0 {
		panic("sparse: ColumnBands requires bandCols > 0")
	}
	nBands := (a.Cols + bandCols - 1) / bandCols
	if nBands == 0 {
		nBands = 1
	}
	bands := make([]*CSR, nBands)
	counts := make([][]int32, nBands)
	for b := range bands {
		bands[b] = &CSR{
			Name: fmt.Sprintf("%s[band %d]", a.Name, b),
			Rows: a.Rows, Cols: a.Cols,
			Ptr: make([]int32, a.Rows+1),
		}
		counts[b] = make([]int32, a.Rows)
	}
	// Count entries per (band, row).
	for i := 0; i < a.Rows; i++ {
		for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
			counts[int(a.Index[k])/bandCols][i]++
		}
	}
	for b := range bands {
		for i := 0; i < a.Rows; i++ {
			bands[b].Ptr[i+1] = bands[b].Ptr[i] + counts[b][i]
		}
		nnz := int(bands[b].Ptr[a.Rows])
		bands[b].Index = make([]int32, nnz)
		bands[b].Val = make([]float64, nnz)
	}
	next := make([]int32, nBands)
	for i := 0; i < a.Rows; i++ {
		for b := range next {
			next[b] = bands[b].Ptr[i]
		}
		for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
			b := int(a.Index[k]) / bandCols
			p := next[b]
			bands[b].Index[p] = a.Index[k]
			bands[b].Val[p] = a.Val[k]
			next[b] = p + 1
		}
	}
	return bands
}

// MulVecBanded computes y = A·x over column bands, accumulating into y
// band by band (the cache-blocked traversal order).
func MulVecBanded(bands []*CSR, y, x []float64) {
	if len(bands) == 0 {
		return
	}
	if len(y) != bands[0].Rows || len(x) != bands[0].Cols {
		panic("sparse: MulVecBanded dimension mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	for _, b := range bands {
		for i := 0; i < b.Rows; i++ {
			var t float64
			for k := b.Ptr[i]; k < b.Ptr[i+1]; k++ {
				t += b.Val[k] * x[b.Index[k]]
			}
			y[i] += t
		}
	}
}
