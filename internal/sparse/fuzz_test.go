package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket hardens the parser against malformed input: it must
// never panic, and anything it accepts must be a valid CSR matrix that
// round-trips through the writer.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 2.0\n2 1 -1.0\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 9999\n1 1 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ReadMatrixMarket(strings.NewReader(in))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid matrix: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			t.Fatalf("writer failed on accepted matrix: %v", err)
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		back.Name = m.Name
		if !m.Equal(back) {
			t.Fatal("round trip changed the matrix")
		}
	})
}
