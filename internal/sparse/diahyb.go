package sparse

import (
	"fmt"
	"sort"
)

// DIA and HYB complete the format family of Bell & Garland's CUDA SpMV
// library, which the paper uses for its Tesla C1060/M2050 measurements.
// DIA stores dense diagonals (banded matrices); HYB splits a matrix into an
// ELL part for the typical row prefix plus a COO tail for the overflow,
// which is how GPUs handle heavy-tailed row distributions.

// DIA is the diagonal format: each stored diagonal k (column - row offset)
// is a dense column of length Rows with zero padding where the diagonal
// leaves the matrix.
type DIA struct {
	Name       string
	Rows, Cols int
	// Offsets lists the stored diagonals in ascending order.
	Offsets []int32
	// Val holds len(Offsets) x Rows entries; diagonal d's element for
	// row i sits at d*Rows + i.
	Val []float64
}

// ToDIA converts a CSR matrix to DIA. It fails when the number of occupied
// diagonals exceeds maxDiags (the format explodes on unstructured
// patterns - exactly why GPUs reserve it for banded matrices).
func ToDIA(m *CSR, maxDiags int) (*DIA, error) {
	seen := map[int32]bool{}
	for i := 0; i < m.Rows; i++ {
		for k := m.Ptr[i]; k < m.Ptr[i+1]; k++ {
			seen[m.Index[k]-int32(i)] = true
		}
	}
	if len(seen) > maxDiags {
		return nil, fmt.Errorf("sparse: DIA needs %d diagonals, limit %d", len(seen), maxDiags)
	}
	offsets := make([]int32, 0, len(seen))
	//sccvet:allow nondeterminism keys are unique and sorted immediately below, erasing map iteration order
	for o := range seen {
		offsets = append(offsets, o)
	}
	sort.Slice(offsets, func(a, b int) bool { return offsets[a] < offsets[b] })
	pos := make(map[int32]int, len(offsets))
	for p, o := range offsets {
		pos[o] = p
	}
	d := &DIA{
		Name: m.Name, Rows: m.Rows, Cols: m.Cols,
		Offsets: offsets,
		Val:     make([]float64, len(offsets)*m.Rows),
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.Ptr[i]; k < m.Ptr[i+1]; k++ {
			off := m.Index[k] - int32(i)
			d.Val[pos[off]*m.Rows+i] = m.Val[k]
		}
	}
	return d, nil
}

// NNZ returns the number of stored non-padding entries (nonzero values).
func (d *DIA) NNZ() int {
	n := 0
	for _, v := range d.Val {
		if v != 0 {
			n++
		}
	}
	return n
}

// PaddingRatio returns stored slots (including padding) per nonzero.
func (d *DIA) PaddingRatio() float64 {
	nnz := d.NNZ()
	if nnz == 0 {
		return 0
	}
	return float64(len(d.Val)) / float64(nnz)
}

// MulVec computes y = A·x diagonal by diagonal.
func (d *DIA) MulVec(y, x []float64) {
	if len(x) != d.Cols || len(y) != d.Rows {
		panic("sparse: DIA MulVec dimension mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	for p, off := range d.Offsets {
		base := p * d.Rows
		lo, hi := 0, d.Rows
		if off < 0 {
			lo = int(-off)
		}
		if over := d.Rows + int(off) - d.Cols; over > 0 {
			hi -= over
		}
		for i := lo; i < hi; i++ {
			y[i] += d.Val[base+i] * x[i+int(off)]
		}
	}
}

// HYB is the hybrid format: an ELL slab of width K covering the common row
// prefix plus a COO tail holding the overflow entries of long rows.
type HYB struct {
	Name       string
	Rows, Cols int
	ELL        *ELL
	Tail       *COO
}

// ToHYB converts a CSR matrix to HYB, choosing K as the given quantile of
// the row-length distribution (Bell & Garland use roughly the 2/3 point;
// quantile in (0, 1]).
func ToHYB(m *CSR, quantile float64) (*HYB, error) {
	if quantile <= 0 || quantile > 1 {
		return nil, fmt.Errorf("sparse: HYB quantile %v outside (0, 1]", quantile)
	}
	lengths := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		lengths[i] = m.RowNNZ(i)
	}
	sorted := append([]int(nil), lengths...)
	sort.Ints(sorted)
	k := 0
	if m.Rows > 0 {
		idx := int(quantile*float64(m.Rows)) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= m.Rows {
			idx = m.Rows - 1
		}
		k = sorted[idx]
	}
	if k == 0 {
		k = 1
	}

	e := &ELL{
		Name: m.Name, Rows: m.Rows, Cols: m.Cols, K: k,
		Index: make([]int32, m.Rows*k),
		Val:   make([]float64, m.Rows*k),
	}
	for i := range e.Index {
		e.Index[i] = -1
	}
	tail := NewCOO(m.Rows, m.Cols, 0)
	tail.Name = m.Name + "+tail"
	for i := 0; i < m.Rows; i++ {
		base := i * k
		s := 0
		for p := m.Ptr[i]; p < m.Ptr[i+1]; p++ {
			if s < k {
				e.Index[base+s] = m.Index[p]
				e.Val[base+s] = m.Val[p]
				s++
			} else {
				tail.Append(i, int(m.Index[p]), m.Val[p])
			}
		}
	}
	return &HYB{Name: m.Name, Rows: m.Rows, Cols: m.Cols, ELL: e, Tail: tail}, nil
}

// NNZ returns the total stored entries across both parts.
func (h *HYB) NNZ() int { return h.ELL.NNZ() + h.Tail.NNZ() }

// TailFraction returns the share of entries in the COO tail.
func (h *HYB) TailFraction() float64 {
	total := h.NNZ()
	if total == 0 {
		return 0
	}
	return float64(h.Tail.NNZ()) / float64(total)
}

// MulVec computes y = A·x: the ELL slab then the scattered tail.
func (h *HYB) MulVec(y, x []float64) {
	if len(x) != h.Cols || len(y) != h.Rows {
		panic("sparse: HYB MulVec dimension mismatch")
	}
	h.ELL.MulVec(y, x)
	for t := range h.Tail.V {
		y[h.Tail.I[t]] += h.Tail.V[t] * x[h.Tail.J[t]]
	}
}
