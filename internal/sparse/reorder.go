package sparse

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file implements row/column reordering, used by the locality ablation
// (DESIGN.md, abl-reord). The paper attributes much of the SpMV slowdown on
// the SCC to irregular x accesses; bandwidth-reducing permutations such as
// reverse Cuthill-McKee compact the column footprint of each row and are the
// classic remedy (and the first author's own line of prior work).

// Permutation is a bijection on [0, n): NewIndex = perm[OldIndex].
type Permutation []int32

// Validate checks that p is a bijection on [0, len(p)).
func (p Permutation) Validate() error {
	seen := make([]bool, len(p))
	for i, v := range p {
		if v < 0 || int(v) >= len(p) {
			return fmt.Errorf("sparse: permutation entry %d out of range: %d", i, v)
		}
		if seen[v] {
			return fmt.Errorf("sparse: permutation value %d repeated", v)
		}
		seen[v] = true
	}
	return nil
}

// Inverse returns the inverse permutation.
func (p Permutation) Inverse() Permutation {
	inv := make(Permutation, len(p))
	for i, v := range p {
		inv[v] = int32(i)
	}
	return inv
}

// IdentityPerm returns the identity permutation on [0, n).
func IdentityPerm(n int) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = int32(i)
	}
	return p
}

// RandomPerm returns a seeded uniform random permutation on [0, n).
func RandomPerm(n int, seed int64) Permutation {
	p := IdentityPerm(n)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// ApplySymmetric returns P·A·Pᵀ: row i of the result is row inv(i) of A with
// every column c renamed to perm[c]. Symmetric application preserves the
// diagonal and is the right transform for y = A·x under x' = P·x.
func ApplySymmetric(m *CSR, perm Permutation) *CSR {
	if len(perm) != m.Rows || m.Rows != m.Cols {
		panic("sparse: ApplySymmetric needs a square matrix and a matching permutation")
	}
	inv := perm.Inverse()
	out := &CSR{
		Name: m.Name + "+perm",
		Rows: m.Rows, Cols: m.Cols,
		Ptr:   make([]int32, m.Rows+1),
		Index: make([]int32, m.NNZ()),
		Val:   make([]float64, m.NNZ()),
	}
	// Row lengths of the permuted matrix.
	for newI := 0; newI < m.Rows; newI++ {
		oldI := inv[newI]
		out.Ptr[newI+1] = out.Ptr[newI] + (m.Ptr[oldI+1] - m.Ptr[oldI])
	}
	type ent struct {
		c int32
		v float64
	}
	var row []ent
	for newI := 0; newI < m.Rows; newI++ {
		oldI := inv[newI]
		row = row[:0]
		for k := m.Ptr[oldI]; k < m.Ptr[oldI+1]; k++ {
			row = append(row, ent{perm[m.Index[k]], m.Val[k]})
		}
		sort.Slice(row, func(a, b int) bool { return row[a].c < row[b].c })
		base := out.Ptr[newI]
		for t, e := range row {
			out.Index[int(base)+t] = e.c
			out.Val[int(base)+t] = e.v
		}
	}
	return out
}

// RCM computes a reverse Cuthill-McKee ordering of the symmetrised pattern
// of m and returns it as a Permutation (NewIndex = perm[OldIndex]).
// Disconnected components are processed in order of their lowest-degree
// unvisited vertex, so the result always covers every row.
func RCM(m *CSR) Permutation {
	if m.Rows != m.Cols {
		panic("sparse: RCM needs a square matrix")
	}
	n := m.Rows
	// Build the symmetrised adjacency once (pattern of A + A^T, diagonal
	// dropped) so BFS neighbours are correct for unsymmetric inputs.
	adj := symmetrizedAdjacency(m)

	degree := make([]int32, n)
	for i := 0; i < n; i++ {
		degree[i] = adj.Ptr[i+1] - adj.Ptr[i]
	}

	visited := make([]bool, n)
	order := make([]int32, 0, n) // Cuthill-McKee order (to be reversed)
	queue := make([]int32, 0, n)

	// byDegree yields vertices sorted by degree for start selection.
	byDegree := make([]int32, n)
	for i := range byDegree {
		byDegree[i] = int32(i)
	}
	sort.Slice(byDegree, func(a, b int) bool {
		if degree[byDegree[a]] != degree[byDegree[b]] {
			return degree[byDegree[a]] < degree[byDegree[b]]
		}
		return byDegree[a] < byDegree[b]
	})

	var nbr []int32
	for _, start := range byDegree {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			nbr = nbr[:0]
			for k := adj.Ptr[v]; k < adj.Ptr[v+1]; k++ {
				c := adj.Index[k]
				if !visited[c] {
					visited[c] = true
					nbr = append(nbr, c)
				}
			}
			sort.Slice(nbr, func(a, b int) bool {
				if degree[nbr[a]] != degree[nbr[b]] {
					return degree[nbr[a]] < degree[nbr[b]]
				}
				return nbr[a] < nbr[b]
			})
			queue = append(queue, nbr...)
		}
	}

	// Reverse to get RCM; produce NewIndex = perm[OldIndex].
	perm := make(Permutation, n)
	for pos, v := range order {
		perm[v] = int32(n - 1 - pos)
	}
	return perm
}

// symmetrizedAdjacency returns the pattern of A + A^T without the diagonal
// and without values (Val is left nil; only Ptr/Index are populated).
func symmetrizedAdjacency(m *CSR) *CSR {
	n := m.Rows
	t := m.Transpose()
	counts := make([]int32, n+1)
	// First pass: merged row lengths.
	for i := 0; i < n; i++ {
		counts[i+1] = int32(mergedRowLen(m, t, i))
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	adj := &CSR{
		Rows: n, Cols: n,
		Ptr:   counts,
		Index: make([]int32, counts[n]),
	}
	for i := 0; i < n; i++ {
		p := adj.Ptr[i]
		a, aEnd := m.Ptr[i], m.Ptr[i+1]
		b, bEnd := t.Ptr[i], t.Ptr[i+1]
		for a < aEnd || b < bEnd {
			var c int32
			switch {
			case a >= aEnd:
				c = t.Index[b]
				b++
			case b >= bEnd:
				c = m.Index[a]
				a++
			case m.Index[a] < t.Index[b]:
				c = m.Index[a]
				a++
			case m.Index[a] > t.Index[b]:
				c = t.Index[b]
				b++
			default:
				c = m.Index[a]
				a++
				b++
			}
			if int(c) == i {
				continue
			}
			adj.Index[p] = c
			p++
		}
		// Rows may be shorter than counted when duplicates collapse;
		// mergedRowLen already accounts for that, so p must match.
		if p != adj.Ptr[i+1] {
			panic("sparse: symmetrizedAdjacency row length mismatch")
		}
	}
	return adj
}

// mergedRowLen counts distinct off-diagonal columns in the union of row i of
// m and row i of t.
func mergedRowLen(m, t *CSR, i int) int {
	a, aEnd := m.Ptr[i], m.Ptr[i+1]
	b, bEnd := t.Ptr[i], t.Ptr[i+1]
	count := 0
	for a < aEnd || b < bEnd {
		var c int32
		switch {
		case a >= aEnd:
			c = t.Index[b]
			b++
		case b >= bEnd:
			c = m.Index[a]
			a++
		case m.Index[a] < t.Index[b]:
			c = m.Index[a]
			a++
		case m.Index[a] > t.Index[b]:
			c = t.Index[b]
			b++
		default:
			c = m.Index[a]
			a++
			b++
		}
		if int(c) != i {
			count++
		}
	}
	return count
}
