package sparse

import (
	"bytes"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	m := Generate(Gen{Name: "roundtrip", Class: PatternBanded, N: 60, NNZTarget: 400, Seed: 12})
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "roundtrip" {
		t.Errorf("name %q lost in round trip", back.Name)
	}
	if !m.Equal(back) {
		t.Fatal("round trip changed the matrix")
	}
}

func TestReadMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% a 3x3 symmetric matrix, lower triangle stored
3 3 4
1 1 2.0
2 1 -1.0
2 2 2.0
3 3 2.0
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 5 { // 4 stored + 1 mirrored off-diagonal
		t.Fatalf("nnz = %d, want 5 after symmetric expansion", m.NNZ())
	}
	if m.At(0, 1) != -1 || m.At(1, 0) != -1 {
		t.Fatal("off-diagonal not mirrored")
	}
	if m.At(0, 0) != 2 {
		t.Fatal("diagonal wrong")
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 3
1 1
1 2
2 2
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", m.NNZ())
	}
	for i := 0; i < 2; i++ {
		for k := m.Ptr[i]; k < m.Ptr[i+1]; k++ {
			if m.Val[k] != 1 {
				t.Fatal("pattern entries must read as 1.0")
			}
		}
	}
}

func TestReadMatrixMarketIntegerField(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate integer general\n2 2 1\n2 2 7\n"
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 1) != 7 {
		t.Fatalf("At(1,1) = %v, want 7", m.At(1, 1))
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad header":       "%%NotMatrixMarket matrix coordinate real general\n1 1 0\n",
		"array storage":    "%%MatrixMarket matrix array real general\n1 1\n1.0\n",
		"complex field":    "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"skew symmetry":    "%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 0\n",
		"bad size line":    "%%MatrixMarket matrix coordinate real general\nfoo bar baz\n",
		"out of range":     "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
		"missing value":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"truncated":        "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n",
		"bad row index":    "%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1.0\n",
		"bad column index": "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 x 1.0\n",
		"bad value":        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zz\n",
		"zero rows":        "%%MatrixMarket matrix coordinate real general\n0 2 0\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestWriteMatrixMarketOneBased(t *testing.T) {
	m := Identity(2)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "\n1 1 1\n") || !strings.Contains(out, "\n2 2 1\n") {
		t.Fatalf("output not 1-based:\n%s", out)
	}
}
