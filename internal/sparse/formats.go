package sparse

import "fmt"

// This file holds the alternative storage formats used by the format
// ablation (DESIGN.md, abl-fmt): ELLPACK, blocked CSR and CSC. The paper
// itself evaluates plain CSR; these formats quantify how much of its
// conclusions are format-specific.

// ELL is the ELLPACK format: every row is padded to the same width K and the
// columns/values are stored in row-major KxRows rectangles. It trades padding
// waste for a regular access pattern (the format GPUs favour; cf. the
// Bell & Garland kernels the paper uses for its Tesla numbers).
type ELL struct {
	Name       string
	Rows, Cols int
	// K is the padded row width (max nonzeros in any row).
	K int
	// Index and Val are Rows*K entries; slot (i, s) lives at i*K+s.
	// Padding slots have Index = -1 and Val = 0.
	Index []int32
	Val   []float64
}

// ToELL converts a CSR matrix to ELLPACK. It returns an error when the
// padding would exceed maxExpand times the original nonzero count, which is
// how callers detect power-law matrices for which ELL is hopeless.
func ToELL(m *CSR, maxExpand float64) (*ELL, error) {
	k := 0
	for i := 0; i < m.Rows; i++ {
		if w := m.RowNNZ(i); w > k {
			k = w
		}
	}
	padded := float64(k) * float64(m.Rows)
	if nnz := float64(m.NNZ()); nnz > 0 && padded > maxExpand*nnz {
		return nil, fmt.Errorf("sparse: ELL padding %.0f exceeds %.1fx nnz=%.0f", padded, maxExpand, nnz)
	}
	e := &ELL{
		Name:  m.Name,
		Rows:  m.Rows,
		Cols:  m.Cols,
		K:     k,
		Index: make([]int32, m.Rows*k),
		Val:   make([]float64, m.Rows*k),
	}
	for i := range e.Index {
		e.Index[i] = -1
	}
	for i := 0; i < m.Rows; i++ {
		base := i * k
		for s, p := 0, m.Ptr[i]; p < m.Ptr[i+1]; s, p = s+1, p+1 {
			e.Index[base+s] = m.Index[p]
			e.Val[base+s] = m.Val[p]
		}
	}
	return e, nil
}

// NNZ returns the number of non-padding entries.
func (e *ELL) NNZ() int {
	n := 0
	for _, c := range e.Index {
		if c >= 0 {
			n++
		}
	}
	return n
}

// MulVec computes y = A·x over the padded storage.
func (e *ELL) MulVec(y, x []float64) {
	if len(x) != e.Cols || len(y) != e.Rows {
		panic("sparse: ELL MulVec dimension mismatch")
	}
	for i := 0; i < e.Rows; i++ {
		var t float64
		base := i * e.K
		for s := 0; s < e.K; s++ {
			c := e.Index[base+s]
			if c < 0 {
				break // rows are packed left-to-right; first pad ends the row
			}
			t += e.Val[base+s] * x[c]
		}
		y[i] = t
	}
}

// BCSR is a blocked CSR matrix with fixed R x C dense blocks. Register
// blocking is one of the Williams et al. optimisations the paper's related
// work discusses; the ablation measures whether it pays off on the SCC model.
type BCSR struct {
	Name       string
	Rows, Cols int
	R, C       int
	// BRows is the number of block rows: ceil(Rows/R).
	BRows int
	// Ptr has BRows+1 entries delimiting the block rows.
	Ptr []int32
	// BIndex holds the block-column index of each stored block.
	BIndex []int32
	// Val holds R*C values per block, row-major within the block.
	Val []float64
}

// ToBCSR converts a CSR matrix to BCSR with r x c blocks, filling explicit
// zeros inside partially populated blocks.
func ToBCSR(m *CSR, r, c int) *BCSR {
	if r <= 0 || c <= 0 {
		panic("sparse: ToBCSR requires positive block dimensions")
	}
	bRows := (m.Rows + r - 1) / r
	bCols := (m.Cols + c - 1) / c
	b := &BCSR{
		Name: m.Name, Rows: m.Rows, Cols: m.Cols,
		R: r, C: c, BRows: bRows,
		Ptr: make([]int32, bRows+1),
	}
	// Per block row: find the set of populated block columns, then fill.
	seen := make([]int32, bCols) // generation-stamped presence marks
	gen := int32(0)
	cols := make([]int32, 0, 64)
	for br := 0; br < bRows; br++ {
		gen++
		cols = cols[:0]
		rowLo, rowHi := br*r, min(br*r+r, m.Rows)
		for i := rowLo; i < rowHi; i++ {
			for k := m.Ptr[i]; k < m.Ptr[i+1]; k++ {
				bc := m.Index[k] / int32(c)
				if seen[bc] != gen {
					seen[bc] = gen
					cols = append(cols, bc)
				}
			}
		}
		// CSR columns ascend within a row but block columns can interleave
		// across the rows of the block; sort for deterministic layout.
		insertionSortInt32(cols)
		base := len(b.BIndex)
		b.BIndex = append(b.BIndex, cols...)
		b.Val = append(b.Val, make([]float64, len(cols)*r*c)...)
		// Position of each block column within this block row.
		pos := make(map[int32]int, len(cols))
		for p, bc := range cols {
			pos[bc] = base + p
		}
		for i := rowLo; i < rowHi; i++ {
			ri := i - rowLo
			for k := m.Ptr[i]; k < m.Ptr[i+1]; k++ {
				col := m.Index[k]
				blk := pos[col/int32(c)]
				cj := int(col) % c
				b.Val[blk*r*c+ri*c+cj] = m.Val[k]
			}
		}
		b.Ptr[br+1] = b.Ptr[br] + int32(len(cols))
	}
	return b
}

// Blocks returns the number of stored blocks.
func (b *BCSR) Blocks() int { return len(b.BIndex) }

// FillRatio returns stored values (including explicit zeros) divided by the
// original nonzero count - the register-blocking expansion factor.
func (b *BCSR) FillRatio(origNNZ int) float64 {
	if origNNZ == 0 {
		return 0
	}
	return float64(len(b.Val)) / float64(origNNZ)
}

// MulVec computes y = A·x block by block.
func (b *BCSR) MulVec(y, x []float64) {
	if len(x) != b.Cols || len(y) != b.Rows {
		panic("sparse: BCSR MulVec dimension mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	rc := b.R * b.C
	for br := 0; br < b.BRows; br++ {
		rowLo := br * b.R
		for p := b.Ptr[br]; p < b.Ptr[br+1]; p++ {
			colLo := int(b.BIndex[p]) * b.C
			blk := b.Val[int(p)*rc : int(p)*rc+rc]
			for ri := 0; ri < b.R; ri++ {
				i := rowLo + ri
				if i >= b.Rows {
					break
				}
				t := y[i]
				for cj := 0; cj < b.C; cj++ {
					j := colLo + cj
					if j >= b.Cols {
						break
					}
					t += blk[ri*b.C+cj] * x[j]
				}
				y[i] = t
			}
		}
	}
}

// CSC is the compressed-sparse-column format; it is the CSR of the transpose
// and is provided for completeness (column-major algorithms, A^T·x).
type CSC struct {
	Name       string
	Rows, Cols int
	Ptr        []int32 // Cols+1 entries
	Index      []int32 // row index of each entry
	Val        []float64
}

// ToCSC converts a CSR matrix to CSC.
func ToCSC(m *CSR) *CSC {
	t := m.Transpose()
	return &CSC{
		Name: m.Name, Rows: m.Rows, Cols: m.Cols,
		Ptr: t.Ptr, Index: t.Index, Val: t.Val,
	}
}

// MulVec computes y = A·x by scattering columns; y is zeroed first.
func (c *CSC) MulVec(y, x []float64) {
	if len(x) != c.Cols || len(y) != c.Rows {
		panic("sparse: CSC MulVec dimension mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < c.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for k := c.Ptr[j]; k < c.Ptr[j+1]; k++ {
			y[c.Index[k]] += c.Val[k] * xj
		}
	}
}

func insertionSortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
