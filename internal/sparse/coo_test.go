package sparse

import (
	"math"
	"testing"
)

func TestCOOToCSRSortsAndSums(t *testing.T) {
	coo := NewCOO(3, 3, 8)
	// Insert out of order with a duplicate (1,1).
	coo.Append(2, 0, 5)
	coo.Append(0, 2, 1)
	coo.Append(1, 1, 2)
	coo.Append(1, 1, 3) // duplicate: summed to 5
	coo.Append(0, 0, 7)
	m := coo.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatalf("ToCSR produced invalid matrix: %v", err)
	}
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4 (duplicate summed)", m.NNZ())
	}
	if got := m.At(1, 1); got != 5 {
		t.Fatalf("duplicate (1,1) = %v, want 5", got)
	}
	if m.At(0, 0) != 7 || m.At(0, 2) != 1 || m.At(2, 0) != 5 {
		t.Fatal("entries misplaced after conversion")
	}
}

func TestCOOAppendBoundsPanic(t *testing.T) {
	coo := NewCOO(2, 2, 1)
	for _, c := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Append(%d,%d) did not panic", c[0], c[1])
				}
			}()
			coo.Append(c[0], c[1], 1)
		}()
	}
}

func TestCOOMulVecMatchesCSR(t *testing.T) {
	m := Generate(Gen{Name: "g", Class: PatternRandom, N: 90, NNZTarget: 900, Seed: 11})
	coo := FromCSR(m)
	if coo.NNZ() != m.NNZ() {
		t.Fatalf("FromCSR lost entries: %d vs %d", coo.NNZ(), m.NNZ())
	}
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	y1 := make([]float64, m.Rows)
	y2 := make([]float64, m.Rows)
	m.MulVec(y1, x)
	coo.MulVec(y2, x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-9*math.Max(1, math.Abs(y1[i])) {
			t.Fatalf("COO/CSR disagree at %d: %v vs %v", i, y2[i], y1[i])
		}
	}
}

func TestCOORoundTrip(t *testing.T) {
	m := Generate(Gen{Name: "rt", Class: PatternStencil2D, N: 100, NNZTarget: 500, Seed: 2})
	back := FromCSR(m).ToCSR()
	back.Name = m.Name
	if !m.Equal(back) {
		t.Fatal("CSR -> COO -> CSR round trip changed the matrix")
	}
}

func TestCOOEmpty(t *testing.T) {
	coo := NewCOO(4, 4, 0)
	m := coo.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatalf("empty conversion invalid: %v", err)
	}
	if m.Rows != 4 || m.NNZ() != 0 {
		t.Fatal("empty conversion wrong shape")
	}
}
