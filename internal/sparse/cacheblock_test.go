package sparse

import (
	"math"
	"testing"
)

func TestColumnBandsPartitionEntries(t *testing.T) {
	a := Generate(Gen{Name: "cb", Class: PatternRandom, N: 300, NNZTarget: 3000, Seed: 15})
	bands := ColumnBands(a, 64)
	want := (a.Cols + 63) / 64
	if len(bands) != want {
		t.Fatalf("bands = %d, want %d", len(bands), want)
	}
	total := 0
	for bi, b := range bands {
		if err := b.Validate(); err != nil {
			t.Fatalf("band %d invalid: %v", bi, err)
		}
		total += b.NNZ()
		lo, hi := int32(bi*64), int32((bi+1)*64)
		for _, c := range b.Index {
			if c < lo || c >= hi {
				t.Fatalf("band %d holds column %d outside [%d,%d)", bi, c, lo, hi)
			}
		}
	}
	if total != a.NNZ() {
		t.Fatalf("bands hold %d entries, want %d", total, a.NNZ())
	}
}

func TestMulVecBandedMatchesCSR(t *testing.T) {
	a := Generate(Gen{Name: "cb", Class: PatternPowerLaw, N: 250, NNZTarget: 2500, Seed: 16})
	for _, bw := range []int{16, 64, 250, 1000} {
		bands := ColumnBands(a, bw)
		x, _ := testVectors(a.Cols)
		want := make([]float64, a.Rows)
		got := make([]float64, a.Rows)
		a.MulVec(want, x)
		MulVecBanded(bands, got, x)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("bw=%d row %d: %v != %v", bw, i, got[i], want[i])
			}
		}
	}
}

func TestColumnBandsEdgeCases(t *testing.T) {
	// Single band covering everything equals the original pattern.
	a := Generate(Gen{Name: "cb", Class: PatternBanded, N: 50, NNZTarget: 300, Seed: 17})
	bands := ColumnBands(a, a.Cols)
	if len(bands) != 1 || bands[0].NNZ() != a.NNZ() {
		t.Fatalf("single band wrong: %d bands, %d nnz", len(bands), bands[0].NNZ())
	}
	MulVecBanded(nil, nil, nil) // no bands: no-op
	defer func() {
		if recover() == nil {
			t.Fatal("bandCols=0 did not panic")
		}
	}()
	ColumnBands(a, 0)
}
