package sparse

import (
	"math"
	"testing"
)

func TestPermutationValidate(t *testing.T) {
	if err := IdentityPerm(10).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := RandomPerm(50, 1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Permutation{0, 0, 2}
	if err := bad.Validate(); err == nil {
		t.Error("accepted repeated value")
	}
	bad = Permutation{0, 3, 1}
	if err := bad.Validate(); err == nil {
		t.Error("accepted out-of-range value")
	}
}

func TestPermutationInverse(t *testing.T) {
	p := RandomPerm(100, 9)
	inv := p.Inverse()
	for i := range p {
		if inv[p[i]] != int32(i) {
			t.Fatalf("inverse broken at %d", i)
		}
	}
}

func TestApplySymmetricPreservesSpectrum(t *testing.T) {
	// P·A·Pᵀ acting on x' = P·x must give y' = P·y.
	m := Generate(Gen{Name: "s", Class: PatternRandom, N: 80, NNZTarget: 800, Seed: 14})
	p := RandomPerm(80, 2)
	pm := ApplySymmetric(m, p)
	if err := pm.Validate(); err != nil {
		t.Fatalf("permuted matrix invalid: %v", err)
	}
	if pm.NNZ() != m.NNZ() {
		t.Fatalf("permutation changed nnz: %d -> %d", m.NNZ(), pm.NNZ())
	}

	x := make([]float64, 80)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	y := make([]float64, 80)
	m.MulVec(y, x)

	px := make([]float64, 80)
	for i := range x {
		px[p[i]] = x[i]
	}
	py := make([]float64, 80)
	pm.MulVec(py, px)

	for i := range y {
		if math.Abs(py[p[i]]-y[i]) > 1e-9*math.Max(1, math.Abs(y[i])) {
			t.Fatalf("permuted product mismatch at %d: %v vs %v", i, py[p[i]], y[i])
		}
	}
}

func TestApplySymmetricIdentityIsNoop(t *testing.T) {
	m := Generate(Gen{Name: "id", Class: PatternBanded, N: 50, NNZTarget: 300, Seed: 4})
	pm := ApplySymmetric(m, IdentityPerm(50))
	pm.Name = m.Name
	if !m.Equal(pm) {
		t.Fatal("identity permutation changed the matrix")
	}
}

func TestRCMIsValidPermutation(t *testing.T) {
	for _, class := range []PatternClass{PatternStencil2D, PatternRandom, PatternPowerLaw} {
		m := Generate(Gen{Name: "r", Class: class, N: 200, NNZTarget: 1400, Seed: 6})
		p := RCM(m)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: RCM not a permutation: %v", class, err)
		}
	}
}

func TestRCMReducesBandwidthOfShuffledGrid(t *testing.T) {
	// Start from a grid Laplacian (narrow band), destroy the ordering
	// with a random permutation, then check RCM restores a narrow band.
	lap := Laplacian2D(20) // n=400, bandwidth 20
	shuffled := ApplySymmetric(lap, RandomPerm(400, 33))
	before := ComputeStats(shuffled).Bandwidth
	rcm := RCM(shuffled)
	after := ComputeStats(ApplySymmetric(shuffled, rcm)).Bandwidth
	if after >= before/2 {
		t.Fatalf("RCM bandwidth %d not substantially below shuffled %d", after, before)
	}
}

func TestRCMHandlesDisconnectedComponents(t *testing.T) {
	// Block-diagonal with two components: identity blocks joined by
	// nothing. RCM must still order every vertex exactly once.
	coo := NewCOO(6, 6, 6)
	for i := 0; i < 6; i++ {
		coo.Append(i, i, 1)
	}
	coo.Append(0, 1, 1)
	coo.Append(1, 0, 1)
	coo.Append(4, 5, 1)
	coo.Append(5, 4, 1)
	m := coo.ToCSR()
	p := RCM(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRCMDeterministic(t *testing.T) {
	m := Generate(Gen{Name: "d", Class: PatternRandom, N: 150, NNZTarget: 900, Seed: 5})
	a, b := RCM(m), RCM(m)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RCM not deterministic")
		}
	}
}

func TestRCMUnsymmetricInput(t *testing.T) {
	// RCM symmetrises internally; an upper-triangular pattern must work.
	coo := NewCOO(5, 5, 5)
	for i := 0; i < 5; i++ {
		coo.Append(i, i, 1)
	}
	coo.Append(0, 4, 1) // only (0,4), not (4,0)
	m := coo.ToCSR()
	p := RCM(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
