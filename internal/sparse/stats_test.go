package sparse

import (
	"math"
	"testing"
)

func TestComputeStatsKnownMatrix(t *testing.T) {
	// Tridiagonal 5x5: rows have lengths 2,3,3,3,2; bandwidth 1.
	coo := NewCOO(5, 5, 13)
	for i := 0; i < 5; i++ {
		coo.Append(i, i, 2)
		if i > 0 {
			coo.Append(i, i-1, -1)
		}
		if i < 4 {
			coo.Append(i, i+1, -1)
		}
	}
	st := ComputeStats(coo.ToCSR())
	if st.NNZ != 13 {
		t.Fatalf("nnz = %d, want 13", st.NNZ)
	}
	if st.MinRow != 2 || st.MaxRow != 3 {
		t.Fatalf("row lengths [%d,%d], want [2,3]", st.MinRow, st.MaxRow)
	}
	if st.Bandwidth != 1 {
		t.Fatalf("bandwidth = %d, want 1", st.Bandwidth)
	}
	if st.EmptyRows != 0 {
		t.Fatalf("empty rows = %d, want 0", st.EmptyRows)
	}
	if st.DiagFraction != 1 {
		t.Fatalf("diag fraction = %v, want 1 (all entries near diagonal)", st.DiagFraction)
	}
	if math.Abs(st.NNZPerRow-2.6) > 1e-12 {
		t.Fatalf("nnz/row = %v, want 2.6", st.NNZPerRow)
	}
}

func TestComputeStatsEmptyRows(t *testing.T) {
	m := &CSR{Rows: 3, Cols: 3, Ptr: []int32{0, 1, 1, 2},
		Index: []int32{0, 2}, Val: []float64{1, 1}}
	st := ComputeStats(m)
	if st.EmptyRows != 1 {
		t.Fatalf("empty rows = %d, want 1", st.EmptyRows)
	}
	if st.MinRow != 0 {
		t.Fatalf("min row = %d, want 0", st.MinRow)
	}
}

func TestComputeStatsZeroMatrix(t *testing.T) {
	st := ComputeStats(&CSR{Ptr: []int32{0}})
	if st.NNZ != 0 || st.MinRow != 0 {
		t.Fatalf("zero-matrix stats wrong: %+v", st)
	}
}

func TestComputeStatsFarOffDiagonal(t *testing.T) {
	m := &CSR{Rows: 100, Cols: 100, Ptr: make([]int32, 101),
		Index: []int32{99}, Val: []float64{1}}
	for i := 1; i <= 100; i++ {
		m.Ptr[i] = 1
	}
	st := ComputeStats(m)
	if st.Bandwidth != 99 {
		t.Fatalf("bandwidth = %d, want 99", st.Bandwidth)
	}
	if st.DiagFraction != 0 {
		t.Fatalf("diag fraction = %v, want 0", st.DiagFraction)
	}
}
