package sparse

import (
	"math"
	"testing"
)

func TestDIAMatchesCSROnBanded(t *testing.T) {
	m := Generate(Gen{Name: "b", Class: PatternBanded, N: 300, NNZTarget: 3000, Bandwidth: 20, Seed: 3})
	d, err := ToDIA(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := testVectors(m.Cols)
	want := make([]float64, m.Rows)
	got := make([]float64, m.Rows)
	m.MulVec(want, x)
	d.MulVec(got, x)
	vecApproxEqual(t, got, want, "dia")
}

func TestDIALaplacianExactDiagonals(t *testing.T) {
	m := Laplacian2D(10) // diagonals at -10, -1, 0, 1, 10
	d, err := ToDIA(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Offsets) != 5 {
		t.Fatalf("offsets = %v", d.Offsets)
	}
	want := []int32{-10, -1, 0, 1, 10}
	for i, o := range want {
		if d.Offsets[i] != o {
			t.Fatalf("offsets = %v, want %v", d.Offsets, want)
		}
	}
	x, _ := testVectors(m.Cols)
	wantY := make([]float64, m.Rows)
	gotY := make([]float64, m.Rows)
	m.MulVec(wantY, x)
	d.MulVec(gotY, x)
	vecApproxEqual(t, gotY, wantY, "dia-laplacian")
}

func TestDIARejectsUnstructured(t *testing.T) {
	m := Generate(Gen{Name: "r", Class: PatternRandom, N: 500, NNZTarget: 5000, Seed: 4})
	if _, err := ToDIA(m, 50); err == nil {
		t.Fatal("random matrix accepted with a 50-diagonal budget")
	}
}

func TestDIAPaddingRatio(t *testing.T) {
	m := Laplacian2D(8)
	d, err := ToDIA(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.NNZ() != m.NNZ() {
		t.Fatalf("DIA nnz %d != CSR %d", d.NNZ(), m.NNZ())
	}
	if pr := d.PaddingRatio(); pr < 1 {
		t.Fatalf("padding ratio %v < 1", pr)
	}
}

func TestDIAEmptyAndMismatch(t *testing.T) {
	d := &DIA{Rows: 2, Cols: 2}
	if d.PaddingRatio() != 0 {
		t.Fatal("empty DIA padding ratio != 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	d.MulVec(make([]float64, 1), make([]float64, 2))
}

func TestHYBMatchesCSR(t *testing.T) {
	for _, class := range []PatternClass{PatternPowerLaw, PatternRandom, PatternStencil2D} {
		m := Generate(Gen{Name: string(class), Class: class, N: 400, NNZTarget: 4000, Seed: 6})
		h, err := ToHYB(m, 0.66)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if h.NNZ() != m.NNZ() {
			t.Fatalf("%s: HYB nnz %d != CSR %d", class, h.NNZ(), m.NNZ())
		}
		x, _ := testVectors(m.Cols)
		want := make([]float64, m.Rows)
		got := make([]float64, m.Rows)
		m.MulVec(want, x)
		h.MulVec(got, x)
		vecApproxEqual(t, got, want, string(class))
	}
}

func TestHYBTailAbsorbsHeavyRows(t *testing.T) {
	m := Generate(Gen{Name: "pl", Class: PatternPowerLaw, N: 2000, NNZTarget: 20000, Seed: 7})
	h, err := ToHYB(m, 0.66)
	if err != nil {
		t.Fatal(err)
	}
	tf := h.TailFraction()
	if tf <= 0 {
		t.Fatal("power-law matrix produced no COO tail")
	}
	if tf > 0.6 {
		t.Fatalf("tail fraction %.2f too large; K selection broken", tf)
	}
	// A constant-row-length matrix needs almost no tail.
	uniform := Laplacian2D(40)
	hu, err := ToHYB(uniform, 0.66)
	if err != nil {
		t.Fatal(err)
	}
	if hu.TailFraction() > 0.45 {
		t.Fatalf("uniform matrix tail fraction %.2f", hu.TailFraction())
	}
}

func TestHYBQuantileValidation(t *testing.T) {
	m := Identity(4)
	for _, q := range []float64{0, -0.5, 1.5} {
		if _, err := ToHYB(m, q); err == nil {
			t.Errorf("quantile %v accepted", q)
		}
	}
	if _, err := ToHYB(m, 1); err != nil {
		t.Fatal(err)
	}
}

func TestHYBFullQuantileHasEmptyTail(t *testing.T) {
	m := Generate(Gen{Name: "g", Class: PatternRandom, N: 100, NNZTarget: 800, Seed: 8})
	h, err := ToHYB(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Tail.NNZ() != 0 {
		t.Fatalf("quantile 1 left %d tail entries", h.Tail.NNZ())
	}
}

func TestDIAHYBOnIdentity(t *testing.T) {
	m := Identity(16)
	d, err := ToDIA(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ToHYB(m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 16)
	for i := range x {
		x[i] = float64(i)
	}
	y := make([]float64, 16)
	d.MulVec(y, x)
	for i := range x {
		if math.Abs(y[i]-x[i]) > 1e-15 {
			t.Fatal("DIA identity broken")
		}
	}
	h.MulVec(y, x)
	for i := range x {
		if math.Abs(y[i]-x[i]) > 1e-15 {
			t.Fatal("HYB identity broken")
		}
	}
}
