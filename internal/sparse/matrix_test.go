package sparse

import (
	"math"
	"testing"
)

// paperExample is the 5x5 matrix from Figure 2 of the paper's CSR example
// shape: a small unsymmetric pattern covering empty-ish rows and scattered
// columns.
func paperExample() *CSR {
	coo := NewCOO(5, 5, 10)
	coo.Name = "fig2"
	coo.Append(0, 0, 1)
	coo.Append(0, 2, 2)
	coo.Append(1, 1, 3)
	coo.Append(2, 0, 4)
	coo.Append(2, 3, 5)
	coo.Append(2, 4, 6)
	coo.Append(3, 3, 7)
	coo.Append(4, 1, 8)
	coo.Append(4, 4, 9)
	return coo.ToCSR()
}

func TestCSRBasicAccessors(t *testing.T) {
	m := paperExample()
	if m.Rows != 5 || m.Cols != 5 {
		t.Fatalf("dims = %dx%d, want 5x5", m.Rows, m.Cols)
	}
	if m.NNZ() != 9 {
		t.Fatalf("NNZ = %d, want 9", m.NNZ())
	}
	if got := m.NNZPerRow(); math.Abs(got-1.8) > 1e-12 {
		t.Fatalf("NNZPerRow = %v, want 1.8", got)
	}
	if got := m.RowNNZ(2); got != 3 {
		t.Fatalf("RowNNZ(2) = %d, want 3", got)
	}
	idx, val := m.Row(2)
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 3 || idx[2] != 4 {
		t.Fatalf("Row(2) indices = %v", idx)
	}
	if val[1] != 5 {
		t.Fatalf("Row(2) values = %v", val)
	}
}

func TestCSRAt(t *testing.T) {
	m := paperExample()
	cases := []struct {
		i, j int
		want float64
	}{
		{0, 0, 1}, {0, 2, 2}, {0, 1, 0}, {2, 4, 6}, {4, 4, 9},
		{3, 0, 0}, {-1, 0, 0}, {0, -1, 0}, {5, 0, 0}, {0, 5, 0},
	}
	for _, c := range cases {
		if got := m.At(c.i, c.j); got != c.want {
			t.Errorf("At(%d,%d) = %v, want %v", c.i, c.j, got, c.want)
		}
	}
}

func TestMulVecAgainstDenseComputation(t *testing.T) {
	m := paperExample()
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, 5)
	m.MulVec(y, x)
	// Dense reference.
	want := make([]float64, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want[i] += m.At(i, j) * x[j]
		}
	}
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestMulVecDimensionPanics(t *testing.T) {
	m := paperExample()
	for _, c := range []struct {
		nx, ny int
	}{{4, 5}, {5, 4}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MulVec with len(x)=%d len(y)=%d did not panic", c.nx, c.ny)
				}
			}()
			m.MulVec(make([]float64, c.ny), make([]float64, c.nx))
		}()
	}
}

func TestMulVecRowsMatchesFull(t *testing.T) {
	m := Generate(Gen{Name: "t", Class: PatternBanded, N: 200, NNZTarget: 2000, Seed: 7})
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	full := make([]float64, m.Rows)
	m.MulVec(full, x)
	part := make([]float64, m.Rows)
	bounds := []int{0, 37, 85, 130, 200}
	for b := 0; b+1 < len(bounds); b++ {
		m.MulVecRows(part, x, bounds[b], bounds[b+1])
	}
	for i := range full {
		if full[i] != part[i] {
			t.Fatalf("row %d: piecewise %v != full %v", i, part[i], full[i])
		}
	}
}

func TestMulVecNoXUsesOnlyX0(t *testing.T) {
	m := paperExample()
	x := []float64{2, 99, -4, 17, 0.5}
	y := make([]float64, 5)
	m.MulVecNoX(y, x)
	// Every row sum should be (sum of row values) * x[0].
	for i := 0; i < m.Rows; i++ {
		var want float64
		for k := m.Ptr[i]; k < m.Ptr[i+1]; k++ {
			want += m.Val[k] * x[0]
		}
		if math.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("NoX y[%d] = %v, want %v", i, y[i], want)
		}
	}
}

func TestWorkingSetFormula(t *testing.T) {
	// The paper's formula: 4*((n+1)+nnz) + 8*(nnz+2n).
	m := paperExample() // n=5, nnz=9
	want := int64(4*((5+1)+9) + 8*(9+2*5))
	if got := m.WorkingSetBytes(); got != want {
		t.Fatalf("WorkingSetBytes = %d, want %d", got, want)
	}
	if got := m.WorkingSetMB(); math.Abs(got-float64(want)/(1<<20)) > 1e-15 {
		t.Fatalf("WorkingSetMB = %v", got)
	}
}

func TestValidateAcceptsGoodMatrix(t *testing.T) {
	if err := paperExample().Validate(); err != nil {
		t.Fatalf("Validate(good) = %v", err)
	}
	if err := Identity(10).Validate(); err != nil {
		t.Fatalf("Validate(identity) = %v", err)
	}
}

func TestValidateRejectsCorruption(t *testing.T) {
	mk := func() *CSR { return paperExample() }

	m := mk()
	m.Ptr[0] = 1
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted Ptr[0] != 0")
	}

	m = mk()
	m.Ptr[2], m.Ptr[3] = m.Ptr[3], m.Ptr[2] // non-monotone
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted non-monotone Ptr")
	}

	m = mk()
	m.Index[0] = 99
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted out-of-range column")
	}

	m = mk()
	m.Index[1] = m.Index[0] // duplicate column in row 0
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted duplicate column")
	}

	m = mk()
	m.Val[3] = math.NaN()
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted NaN value")
	}

	m = mk()
	m.Ptr = m.Ptr[:len(m.Ptr)-1]
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted short Ptr")
	}

	m = mk()
	m.Val = m.Val[:len(m.Val)-1]
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted len(Index) != len(Val)")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := paperExample()
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Val[0] = 123
	c.Index[0] = 4
	c.Ptr[1] = 0
	if m.Val[0] == 123 || m.Index[0] == 4 || m.Ptr[1] == 0 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := Generate(Gen{Name: "t", Class: PatternRandom, N: 120, NNZTarget: 1500, Seed: 3})
	tt := m.Transpose().Transpose()
	if !m.Equal(tt) {
		t.Fatal("transpose twice != original")
	}
}

func TestTransposeEntries(t *testing.T) {
	m := paperExample()
	tr := m.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatalf("transpose invalid: %v", err)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("At(%d,%d)=%v but transpose At(%d,%d)=%v", i, j, m.At(i, j), j, i, tr.At(j, i))
			}
		}
	}
}

func TestSymmetricPattern(t *testing.T) {
	if !Laplacian2D(8).SymmetricPattern() {
		t.Error("Laplacian2D should have a symmetric pattern")
	}
	if paperExample().SymmetricPattern() {
		t.Error("paper example pattern is not symmetric")
	}
	rect := &CSR{Rows: 2, Cols: 3, Ptr: []int32{0, 0, 0}}
	if rect.SymmetricPattern() {
		t.Error("rectangular matrix cannot be symmetric")
	}
}

func TestEqual(t *testing.T) {
	a := paperExample()
	if !a.Equal(a.Clone()) {
		t.Fatal("matrix not equal to its clone")
	}
	b := a.Clone()
	b.Val[2] += 1
	if a.Equal(b) {
		t.Fatal("Equal ignored a value difference")
	}
	c := a.Clone()
	c.Index[2]++
	if a.Equal(c) {
		t.Fatal("Equal ignored a pattern difference")
	}
	if a.Equal(Identity(5)) {
		t.Fatal("Equal confused different matrices")
	}
	if a.Equal(Identity(4)) {
		t.Fatal("Equal ignored dimension difference")
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := &CSR{Ptr: []int32{0}}
	if err := m.Validate(); err != nil {
		t.Fatalf("empty matrix invalid: %v", err)
	}
	if m.NNZ() != 0 || m.NNZPerRow() != 0 {
		t.Fatal("empty matrix has nonzeros")
	}
	m.MulVec(nil, nil) // 0x0: must not panic
}

func TestIdentityMulVec(t *testing.T) {
	m := Identity(17)
	x := make([]float64, 17)
	for i := range x {
		x[i] = float64(i) * 1.5
	}
	y := make([]float64, 17)
	m.MulVec(y, x)
	for i := range y {
		if y[i] != x[i] {
			t.Fatalf("identity changed x at %d: %v != %v", i, y[i], x[i])
		}
	}
}

func TestLaplacian2DProperties(t *testing.T) {
	m := Laplacian2D(6)
	if err := m.Validate(); err != nil {
		t.Fatalf("laplacian invalid: %v", err)
	}
	if m.Rows != 36 {
		t.Fatalf("rows = %d, want 36", m.Rows)
	}
	// Row sums: interior rows sum to 0, boundary rows are positive.
	for i := 0; i < m.Rows; i++ {
		var s float64
		for k := m.Ptr[i]; k < m.Ptr[i+1]; k++ {
			s += m.Val[k]
		}
		if s < 0 {
			t.Fatalf("row %d sum %v < 0; not diagonally dominant", i, s)
		}
	}
	if m.At(0, 0) != 4 || m.At(0, 1) != -1 {
		t.Fatal("unexpected Laplacian coefficients")
	}
}
