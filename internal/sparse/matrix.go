// Package sparse provides sparse-matrix storage formats, synthetic pattern
// generators, the paper's 32-matrix testbed, MatrixMarket-style I/O and
// reordering utilities.
//
// The central type is CSR, the Compressed-Sparse-Row format the paper's SpMV
// kernel operates on: the nonzeros of an n-row matrix are stored row-major in
// Val, Index holds each nonzero's column, and Ptr[i]..Ptr[i+1] delimits row i.
// Indices are 32-bit to match the paper's working-set accounting
// (4·((n+1)+nnz) + 8·(nnz+2n) bytes with 32-bit indexing and float64 data).
package sparse

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// CSR is a sparse matrix in Compressed-Sparse-Row format.
// The zero value is an empty 0x0 matrix.
type CSR struct {
	// Name identifies the matrix (testbed name or generator description).
	Name string
	// Rows and Cols are the matrix dimensions.
	Rows, Cols int
	// Ptr has Rows+1 entries; row i occupies Val[Ptr[i]:Ptr[i+1]].
	Ptr []int32
	// Index holds the column of each stored entry, ascending within a row.
	Index []int32
	// Val holds the stored values.
	Val []float64

	// contentKey memoises ContentKey: hashing every nonzero is O(nnz) and
	// geometry sweeps ask for the key once per cell. CSR values are shared
	// by pointer and treated as immutable once built, so the first computed
	// key stays valid for the matrix's lifetime.
	contentKey atomic.Pointer[string]
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// NNZPerRow returns the average number of stored entries per row.
func (m *CSR) NNZPerRow() float64 {
	if m.Rows == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(m.Rows)
}

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return int(m.Ptr[i+1] - m.Ptr[i]) }

// Row returns the column indices and values of row i. The slices alias the
// matrix storage and must not be modified.
func (m *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := m.Ptr[i], m.Ptr[i+1]
	return m.Index[lo:hi], m.Val[lo:hi]
}

// SizeBytes returns the in-memory footprint of the CSR arrays (Ptr, Index,
// Val). Unlike WorkingSetBytes it excludes the dense x and y vectors: it
// prices what a matrix cache must keep resident.
func (m *CSR) SizeBytes() int64 {
	return 4*int64(len(m.Ptr)) + 4*int64(len(m.Index)) + 8*int64(len(m.Val))
}

// ContentKey returns a content-addressed identity of the matrix: an
// FNV-1a hash over the dimensions and the Ptr/Index/Val arrays, rendered
// as a fixed-width hex string. Two structurally identical matrices share a
// key regardless of Name; any pattern or value difference changes it. It
// is the cache key the analytic-pricing profile store (internal/sim) uses
// to bind persisted stream profiles to exact matrix content. The first
// call hashes the arrays; later calls return the memoised key, relying on
// the convention that a CSR is immutable once handed out.
func (m *CSR) ContentKey() string {
	if k := m.contentKey.Load(); k != nil {
		return *k
	}
	k := m.hashContent()
	m.contentKey.Store(&k)
	return k
}

func (m *CSR) hashContent() string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(m.Rows))
	mix(uint64(m.Cols))
	mix(uint64(m.NNZ()))
	for _, p := range m.Ptr {
		mix(uint64(uint32(p)))
	}
	for _, ix := range m.Index {
		mix(uint64(uint32(ix)))
	}
	for _, v := range m.Val {
		mix(math.Float64bits(v))
	}
	return fmt.Sprintf("%016x", h)
}

// WorkingSetBytes returns the SpMV working set in bytes exactly as the paper
// computes it: 4·((n+1)+nnz) + 8·(nnz+2·n), i.e. 32-bit Ptr and Index arrays,
// float64 values, and the dense x and y vectors.
func (m *CSR) WorkingSetBytes() int64 {
	n := int64(m.Rows)
	nnz := int64(m.NNZ())
	return 4*((n+1)+nnz) + 8*(nnz+2*n)
}

// WorkingSetMB returns the working set in binary megabytes.
func (m *CSR) WorkingSetMB() float64 {
	return float64(m.WorkingSetBytes()) / (1 << 20)
}

// At returns the value at (i, j), or zero when (i, j) is not stored.
// It binary-searches the row and runs in O(log nnz(i)).
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		return 0
	}
	lo, hi := int(m.Ptr[i]), int(m.Ptr[i+1])
	for lo < hi {
		mid := (lo + hi) / 2
		switch c := int(m.Index[mid]); {
		case c == j:
			return m.Val[mid]
		case c < j:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0
}

// MulVec computes y = A·x with the paper's reference CSR kernel
// (Figure 2 of the paper). len(x) must be Cols and len(y) must be Rows.
func (m *CSR) MulVec(y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: matrix %dx%d, len(x)=%d, len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		var t float64
		for k := m.Ptr[i]; k < m.Ptr[i+1]; k++ {
			t += m.Val[k] * x[m.Index[k]]
		}
		y[i] = t
	}
}

// MulVecRows computes y[lo:hi] = (A·x)[lo:hi] for the row range [lo, hi).
// It is the building block the row-partitioned parallel kernels use.
func (m *CSR) MulVecRows(y, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var t float64
		for k := m.Ptr[i]; k < m.Ptr[i+1]; k++ {
			t += m.Val[k] * x[m.Index[k]]
		}
		y[i] = t
	}
}

// MulVecNoX computes the paper's "no x misses" kernel variant (Section IV-C):
// every reference to x reads x[0], eliminating the irregular access pattern
// while keeping the same flop count and the same traffic on Ptr, Index, Val
// and y. The numerical result is meaningless by design; the variant exists
// purely to isolate the cost of irregular accesses.
func (m *CSR) MulVecNoX(y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("sparse: MulVecNoX dimension mismatch")
	}
	x0 := x[0]
	for i := 0; i < m.Rows; i++ {
		var t float64
		for k := m.Ptr[i]; k < m.Ptr[i+1]; k++ {
			t += m.Val[k] * x0
		}
		y[i] = t
	}
}

// Validate checks the structural invariants of the CSR format: monotone Ptr
// covering Val/Index exactly, in-range ascending column indices per row, and
// finite values. It returns a descriptive error for the first violation.
func (m *CSR) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("sparse: negative dimension %dx%d", m.Rows, m.Cols)
	}
	if len(m.Ptr) != m.Rows+1 {
		return fmt.Errorf("sparse: len(Ptr)=%d, want Rows+1=%d", len(m.Ptr), m.Rows+1)
	}
	if len(m.Index) != len(m.Val) {
		return fmt.Errorf("sparse: len(Index)=%d != len(Val)=%d", len(m.Index), len(m.Val))
	}
	if m.Ptr[0] != 0 {
		return fmt.Errorf("sparse: Ptr[0]=%d, want 0", m.Ptr[0])
	}
	if int(m.Ptr[m.Rows]) != len(m.Val) {
		return fmt.Errorf("sparse: Ptr[Rows]=%d, want nnz=%d", m.Ptr[m.Rows], len(m.Val))
	}
	for i := 0; i < m.Rows; i++ {
		if m.Ptr[i] > m.Ptr[i+1] {
			return fmt.Errorf("sparse: Ptr not monotone at row %d: %d > %d", i, m.Ptr[i], m.Ptr[i+1])
		}
		prev := int32(-1)
		for k := m.Ptr[i]; k < m.Ptr[i+1]; k++ {
			c := m.Index[k]
			if c < 0 || int(c) >= m.Cols {
				return fmt.Errorf("sparse: row %d has out-of-range column %d (Cols=%d)", i, c, m.Cols)
			}
			if c <= prev {
				return fmt.Errorf("sparse: row %d columns not strictly ascending at k=%d (%d after %d)", i, k, c, prev)
			}
			prev = c
			if math.IsNaN(m.Val[k]) || math.IsInf(m.Val[k], 0) {
				return fmt.Errorf("sparse: row %d col %d holds non-finite value %v", i, c, m.Val[k])
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the matrix.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		Name:  m.Name,
		Rows:  m.Rows,
		Cols:  m.Cols,
		Ptr:   make([]int32, len(m.Ptr)),
		Index: make([]int32, len(m.Index)),
		Val:   make([]float64, len(m.Val)),
	}
	copy(c.Ptr, m.Ptr)
	copy(c.Index, m.Index)
	copy(c.Val, m.Val)
	return c
}

// Transpose returns the transpose of the matrix, also in CSR.
// It runs in O(nnz + Rows + Cols) using a counting pass.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		Name:  m.Name + "^T",
		Rows:  m.Cols,
		Cols:  m.Rows,
		Ptr:   make([]int32, m.Cols+1),
		Index: make([]int32, m.NNZ()),
		Val:   make([]float64, m.NNZ()),
	}
	for _, c := range m.Index {
		t.Ptr[c+1]++
	}
	for j := 0; j < m.Cols; j++ {
		t.Ptr[j+1] += t.Ptr[j]
	}
	next := make([]int32, m.Cols)
	copy(next, t.Ptr[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		for k := m.Ptr[i]; k < m.Ptr[i+1]; k++ {
			c := m.Index[k]
			p := next[c]
			t.Index[p] = int32(i)
			t.Val[p] = m.Val[k]
			next[c] = p + 1
		}
	}
	return t
}

// SymmetricPattern reports whether the nonzero pattern is structurally
// symmetric (a stored (i,j) implies a stored (j,i); values are not compared).
func (m *CSR) SymmetricPattern() bool {
	if m.Rows != m.Cols {
		return false
	}
	t := m.Transpose()
	for i := range m.Index {
		if m.Index[i] != t.Index[i] {
			return false
		}
	}
	for i := range m.Ptr {
		if m.Ptr[i] != t.Ptr[i] {
			return false
		}
	}
	return true
}

// Equal reports whether two matrices have identical dimensions, pattern and
// values (exact float comparison).
func (m *CSR) Equal(o *CSR) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols || m.NNZ() != o.NNZ() {
		return false
	}
	for i := range m.Ptr {
		if m.Ptr[i] != o.Ptr[i] {
			return false
		}
	}
	for k := range m.Val {
		if m.Index[k] != o.Index[k] || m.Val[k] != o.Val[k] {
			return false
		}
	}
	return true
}

// ErrDimension reports incompatible dimensions in a matrix operation.
var ErrDimension = errors.New("sparse: dimension mismatch")
