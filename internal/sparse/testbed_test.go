package sparse

import (
	"math"
	"testing"
)

func TestTestbedHas32OrderedEntries(t *testing.T) {
	tb := Testbed()
	if len(tb) != 32 {
		t.Fatalf("testbed has %d entries, want 32", len(tb))
	}
	for i, e := range tb {
		if e.ID != i+1 {
			t.Errorf("entry %d has ID %d", i, e.ID)
		}
		if e.N <= 0 || e.NNZ <= 0 {
			t.Errorf("%s: non-positive dimensions", e.Name)
		}
		if e.Name == "" {
			t.Errorf("entry %d unnamed", i)
		}
	}
}

func TestTestbedNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Testbed() {
		if seen[e.Name] {
			t.Errorf("duplicate name %q", e.Name)
		}
		seen[e.Name] = true
	}
}

func TestTestbedEntryByName(t *testing.T) {
	e, ok := TestbedEntryByName("F1")
	if !ok || e.ID != 2 {
		t.Fatalf("F1 lookup = %+v, %v", e, ok)
	}
	if _, ok := TestbedEntryByName("nonexistent"); ok {
		t.Fatal("lookup of missing name succeeded")
	}
}

func TestShortRowEntriesMatchPaper(t *testing.T) {
	// The paper singles out matrices 24 and 25 for tiny nnz/n.
	ids := ShortRowEntries()
	if len(ids) != 2 || ids[0] != 24 || ids[1] != 25 {
		t.Fatalf("ShortRowEntries = %v, want [24 25]", ids)
	}
	tb := Testbed()
	for _, id := range ids {
		e := tb[id-1]
		if e.NNZPerRow() > 8 {
			t.Errorf("%s (id %d): nnz/n = %.1f, want short rows (<8)", e.Name, id, e.NNZPerRow())
		}
	}
	// And they must be among the smaller working sets (the paper's point:
	// small ws yet slow). Check they are below the suite median ws.
	var wss []float64
	for _, e := range tb {
		wss = append(wss, e.WorkingSetMB())
	}
	median := medianOf(wss)
	for _, id := range ids {
		if tb[id-1].WorkingSetMB() >= median {
			t.Errorf("entry %d ws %.1f MB not below median %.1f", id, tb[id-1].WorkingSetMB(), median)
		}
	}
}

func medianOf(v []float64) float64 {
	c := append([]float64(nil), v...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	return c[len(c)/2]
}

func TestTestbedWorkingSetRangeStraddlesL2(t *testing.T) {
	// Figure 6 requires matrices on both sides of the aggregate L2
	// capacity at 24 and 48 cores (256 KB per core).
	for _, cores := range []int{24, 48} {
		agg := float64(cores) * 256 / 1024 // MB
		below, above := 0, 0
		for _, e := range Testbed() {
			if e.WorkingSetMB() < agg {
				below++
			} else {
				above++
			}
		}
		if below < 4 || above < 4 {
			t.Errorf("at %d cores (agg %.1f MB): %d below, %d above; need both sides populated",
				cores, agg, below, above)
		}
	}
	// And at 8 cores (2 MB aggregate) essentially nothing should fit,
	// matching the paper's "no relation at 8 cores" observation.
	fits := 0
	for _, e := range Testbed() {
		if e.WorkingSetMB() < 8*256.0/1024 {
			fits++
		}
	}
	if fits > 2 {
		t.Errorf("%d matrices fit in 8-core aggregate L2; paper says none do", fits)
	}
}

func TestGenerateScaledPreservesShape(t *testing.T) {
	e := Testbed()[21] // e40r0100, mid-sized
	m := e.GenerateScaled(0.1)
	if err := m.Validate(); err != nil {
		t.Fatalf("scaled matrix invalid: %v", err)
	}
	wantN := int(math.Round(float64(e.N) * 0.1))
	if m.Rows != wantN {
		t.Fatalf("scaled rows %d, want %d", m.Rows, wantN)
	}
	// Average row length should be roughly preserved.
	if r := m.NNZPerRow() / e.NNZPerRow(); r < 0.4 || r > 2.5 {
		t.Errorf("scaled nnz/row ratio %.2f; want near 1", r)
	}
}

func TestGenerateScaledBounds(t *testing.T) {
	e := Testbed()[0]
	for _, bad := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GenerateScaled(%v) did not panic", bad)
				}
			}()
			e.GenerateScaled(bad)
		}()
	}
}

func TestTestbedGenerationSmallScaleAllEntries(t *testing.T) {
	if testing.Short() {
		t.Skip("generating 32 matrices")
	}
	for _, e := range Testbed() {
		m := e.GenerateScaled(0.02)
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
	}
}

func TestTestbedEntryWorkingSetFormula(t *testing.T) {
	e := TestbedEntry{ID: 1, Name: "x", N: 1000, NNZ: 10000}
	want := int64(4*(1001+10000) + 8*(10000+2000))
	if got := e.WorkingSetBytes(); got != want {
		t.Fatalf("WorkingSetBytes = %d, want %d", got, want)
	}
}
