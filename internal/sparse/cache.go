package sparse

import (
	"container/list"
	"sync"
)

// MatrixCache memoises generated testbed matrices keyed by (entry name,
// scale) behind a byte-budgeted LRU. Experiment sweeps revisit the same
// matrices once per configuration (core count, clock config, kernel
// variant, ...); regenerating them dominated sweep wall clock, but the
// full-scale testbed (~1.2 GB of CSR data) cannot simply live in memory
// all at once. The budget bounds resident bytes and least-recently-used
// matrices are dropped first, preserving the release-before-next contract
// of Config.forEachMatrix in internal/experiments.
//
// Generation is deterministic (each entry carries a fixed seed), so a
// cached matrix is identical to a freshly generated one.
type MatrixCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List // front = most recently used; values are *matrixEntry
	byKey  map[matrixKey]*list.Element

	hits, misses, evictions uint64
}

type matrixKey struct {
	name  string
	scale float64
}

type matrixEntry struct {
	key  matrixKey
	m    *CSR
	size int64
}

// NewMatrixCache builds a cache that keeps at most budgetBytes of CSR data
// resident. A non-positive budget disables retention entirely: Get still
// works but always regenerates (the determinism/debugging oracle).
func NewMatrixCache(budgetBytes int64) *MatrixCache {
	return &MatrixCache{
		budget: budgetBytes,
		lru:    list.New(),
		byKey:  make(map[matrixKey]*list.Element),
	}
}

// Get returns the entry's matrix at the given scale, generating it on a
// miss. The returned matrix is shared across callers and must be treated
// as read-only; reordering and format conversions in this package already
// copy. A nil cache is valid and always generates.
func (c *MatrixCache) Get(e TestbedEntry, scale float64) *CSR {
	if c == nil {
		return e.GenerateScaled(scale)
	}
	k := matrixKey{name: e.Name, scale: scale}
	c.mu.Lock()
	if el, ok := c.byKey[k]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		m := el.Value.(*matrixEntry).m
		c.mu.Unlock()
		return m
	}
	c.misses++
	c.mu.Unlock()

	// Generate outside the lock so concurrent misses on different keys
	// do not serialise on the expensive part.
	m := e.GenerateScaled(scale)
	size := m.SizeBytes()

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		// Another goroutine generated the same key while we did; keep the
		// resident copy so every caller shares one instance.
		c.lru.MoveToFront(el)
		return el.Value.(*matrixEntry).m
	}
	if size > c.budget {
		return m // larger than the whole budget: hand out uncached
	}
	for c.used+size > c.budget {
		back := c.lru.Back()
		ent := back.Value.(*matrixEntry)
		c.lru.Remove(back)
		delete(c.byKey, ent.key)
		c.used -= ent.size
		c.evictions++
	}
	c.byKey[k] = c.lru.PushFront(&matrixEntry{key: k, m: m, size: size})
	c.used += size
	return m
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Resident                int
	UsedBytes, BudgetBytes  int64
}

// Stats returns a snapshot of the cache counters. Safe on a nil cache.
func (c *MatrixCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Resident:    c.lru.Len(),
		UsedBytes:   c.used,
		BudgetBytes: c.budget,
	}
}
