package sparse

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// Process-wide matrix-cache effectiveness metrics (internal/obs). Every
// MatrixCache in the process feeds the same counters (in practice one
// cache serves a run); the gauges track the most recently updated
// cache's resident set. Write-only observability: never read back.
var (
	cacheHits       = obs.Default.Counter("sparse.matrix_cache.hits")
	cacheMisses     = obs.Default.Counter("sparse.matrix_cache.misses")
	cacheEvictions  = obs.Default.Counter("sparse.matrix_cache.evictions")
	cacheDupGens    = obs.Default.Counter("sparse.matrix_cache.duplicate_generations")
	cacheDupBytes   = obs.Default.Counter("sparse.matrix_cache.duplicate_bytes_wasted")
	cacheUsedGauge  = obs.Default.Gauge("sparse.matrix_cache.used_bytes")
	cacheResidGauge = obs.Default.Gauge("sparse.matrix_cache.resident")
)

// MatrixCache memoises generated testbed matrices keyed by (entry name,
// scale) behind a byte-budgeted LRU. Experiment sweeps revisit the same
// matrices once per configuration (core count, clock config, kernel
// variant, ...); regenerating them dominated sweep wall clock, but the
// full-scale testbed (~1.2 GB of CSR data) cannot simply live in memory
// all at once. The budget bounds resident bytes and least-recently-used
// matrices are dropped first, preserving the release-before-next contract
// of Config.forEachMatrix in internal/experiments.
//
// Generation is deterministic (each entry carries a fixed seed), so a
// cached matrix is identical to a freshly generated one.
type MatrixCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List // front = most recently used; values are *matrixEntry
	byKey  map[matrixKey]*list.Element

	hits, misses, evictions uint64
	// dupGens counts generations that lost a concurrent-miss race on the
	// same key (the work was done, the result discarded in favour of the
	// resident copy); dupBytes is the size of those discarded matrices.
	dupGens  uint64
	dupBytes uint64

	// gen overrides matrix generation (test seam for orchestrating
	// concurrent duplicate misses deterministically); nil uses
	// TestbedEntry.GenerateScaled.
	gen func(TestbedEntry, float64) *CSR
}

type matrixKey struct {
	name  string
	scale float64
}

type matrixEntry struct {
	key  matrixKey
	m    *CSR
	size int64
}

// NewMatrixCache builds a cache that keeps at most budgetBytes of CSR data
// resident. A non-positive budget disables retention entirely: Get still
// works but always regenerates (the determinism/debugging oracle).
func NewMatrixCache(budgetBytes int64) *MatrixCache {
	return &MatrixCache{
		budget: budgetBytes,
		lru:    list.New(),
		byKey:  make(map[matrixKey]*list.Element),
	}
}

// generate resolves the generation function.
func (c *MatrixCache) generate(e TestbedEntry, scale float64) *CSR {
	if c != nil && c.gen != nil {
		return c.gen(e, scale)
	}
	return e.GenerateScaled(scale)
}

// Get returns the entry's matrix at the given scale, generating it on a
// miss. The returned matrix is shared across callers and must be treated
// as read-only; reordering and format conversions in this package already
// copy. A nil cache is valid and always generates.
func (c *MatrixCache) Get(e TestbedEntry, scale float64) *CSR {
	if c == nil {
		return e.GenerateScaled(scale)
	}
	k := matrixKey{name: e.Name, scale: scale}
	c.mu.Lock()
	if el, ok := c.byKey[k]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		m := el.Value.(*matrixEntry).m
		c.mu.Unlock()
		cacheHits.Add(1)
		return m
	}
	c.misses++
	c.mu.Unlock()
	cacheMisses.Add(1)

	// Generate outside the lock so concurrent misses on different keys
	// do not serialise on the expensive part.
	m := c.generate(e, scale)
	size := m.SizeBytes()

	c.mu.Lock()
	if el, ok := c.byKey[k]; ok {
		// Another goroutine generated the same key while we did. Keep the
		// resident copy so every caller shares one instance; this return
		// is served from the cache, so it counts as a hit, and the
		// discarded generation is accounted as duplicated, wasted work.
		c.lru.MoveToFront(el)
		c.hits++
		c.dupGens++
		c.dupBytes += uint64(size)
		res := el.Value.(*matrixEntry).m
		c.mu.Unlock()
		cacheHits.Add(1)
		cacheDupGens.Add(1)
		cacheDupBytes.Add(uint64(size))
		return res
	}
	if size > c.budget {
		c.mu.Unlock()
		return m // larger than the whole budget: hand out uncached
	}
	evicted := uint64(0)
	for c.used+size > c.budget {
		back := c.lru.Back()
		ent := back.Value.(*matrixEntry)
		c.lru.Remove(back)
		delete(c.byKey, ent.key)
		c.used -= ent.size
		c.evictions++
		evicted++
	}
	c.byKey[k] = c.lru.PushFront(&matrixEntry{key: k, m: m, size: size})
	c.used += size
	used, resident := c.used, c.lru.Len()
	c.mu.Unlock()
	cacheEvictions.Add(evicted)
	cacheUsedGauge.Set(used)
	cacheResidGauge.Set(int64(resident))
	return m
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	// DuplicateGenerations counts generations discarded after losing a
	// concurrent-miss race (each also counted one miss at entry and one
	// hit when the resident copy was returned); WastedBytes is the total
	// size of those discarded matrices.
	DuplicateGenerations   uint64
	WastedBytes            uint64
	Resident               int
	UsedBytes, BudgetBytes int64
}

// Stats returns a snapshot of the cache counters. Safe on a nil cache.
func (c *MatrixCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:                 c.hits,
		Misses:               c.misses,
		Evictions:            c.evictions,
		DuplicateGenerations: c.dupGens,
		WastedBytes:          c.dupBytes,
		Resident:             c.lru.Len(),
		UsedBytes:            c.used,
		BudgetBytes:          c.budget,
	}
}
