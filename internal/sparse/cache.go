package sparse

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Process-wide matrix-cache effectiveness metrics (internal/obs). Every
// MatrixCache in the process feeds the same counters (in practice one
// cache serves a run); the gauges track the most recently updated
// cache's resident set. Write-only observability: never read back.
var (
	cacheHits       = obs.Default.Counter("sparse.matrix_cache.hits")
	cacheMisses     = obs.Default.Counter("sparse.matrix_cache.misses")
	cacheEvictions  = obs.Default.Counter("sparse.matrix_cache.evictions")
	cacheDupGens    = obs.Default.Counter("sparse.matrix_cache.duplicate_generations")
	cacheDupBytes   = obs.Default.Counter("sparse.matrix_cache.duplicate_bytes_wasted")
	cacheUsedGauge  = obs.Default.Gauge("sparse.matrix_cache.used_bytes")
	cacheResidGauge = obs.Default.Gauge("sparse.matrix_cache.resident")
	// Profile (blob side-store) effectiveness: persisted stream profiles
	// the analytic pricing path (internal/sim) keys by matrix content.
	profHits       = obs.Default.Counter("sparse.matrix_cache.profile_hits")
	profMisses     = obs.Default.Counter("sparse.matrix_cache.profile_misses")
	profEvictions  = obs.Default.Counter("sparse.matrix_cache.profile_evictions")
	profUsedGauge  = obs.Default.Gauge("sparse.matrix_cache.profile_used_bytes")
	profResidGauge = obs.Default.Gauge("sparse.matrix_cache.profile_resident")
)

// MatrixCache memoises generated testbed matrices keyed by (entry name,
// scale) behind a byte-budgeted LRU. Experiment sweeps revisit the same
// matrices once per configuration (core count, clock config, kernel
// variant, ...); regenerating them dominated sweep wall clock, but the
// full-scale testbed (~1.2 GB of CSR data) cannot simply live in memory
// all at once. The budget bounds resident bytes and least-recently-used
// matrices are dropped first, preserving the release-before-next contract
// of Config.forEachMatrix in internal/experiments.
//
// Generation is deterministic (each entry carries a fixed seed), so a
// cached matrix is identical to a freshly generated one.
//
// Besides matrices the cache keeps opaque side blobs (GetBlob/PutBlob):
// content-addressed stream profiles the analytic pricing fast path
// persists alongside the matrices they were traced from. Blobs live in
// the SAME LRU list and byte budget as matrices - one resident-bytes
// bound governs both - but their hit/miss/eviction traffic is accounted
// separately (profile_* counters, CacheStats.Profile* fields), and
// their total resident bytes are additionally capped by a blob budget
// (a quarter of the byte budget by default, see SetBlobBudget): at
// -scale 1.0 a single cell profile runs to hundreds of megabytes, and
// without the cap a geometry sweep's profiles would evict every
// resident matrix and thrash the cache it is supposed to accelerate.
// Inserting a blob therefore evicts least-recently-used BLOBS first
// until the blob side fits its own budget, and only then competes with
// matrices for the shared bound.
type MatrixCache struct {
	mu         sync.Mutex
	budget     int64
	blobBudget int64
	used       int64
	lru        *list.List // front = most recently used; values are *cacheEntry
	byKey      map[any]*list.Element

	hits, misses, evictions uint64
	// dupGens counts generations that lost a concurrent-miss race on the
	// same key (the work was done, the result discarded in favour of the
	// resident copy); dupBytes is the size of those discarded matrices.
	dupGens  uint64
	dupBytes uint64

	// Blob (profile) accounting, kept apart from matrix traffic.
	profHits, profMisses, profEvictions uint64
	profUsed                            int64
	profResident                        int

	// gen overrides matrix generation (test seam for orchestrating
	// concurrent duplicate misses deterministically); nil uses
	// TestbedEntry.GenerateScaled.
	gen func(TestbedEntry, float64) *CSR

	// rec is the flight recorder of the job currently attributed with
	// this cache's traffic (see SetRecorder). Kept outside the mutex so
	// arming/clearing never contends with Get.
	rec atomic.Pointer[obs.Recorder]
}

// flightTrack is the timeline row cache events land on.
const flightTrack = "sparse.matrix_cache"

// SetRecorder attributes subsequent hit/miss/eviction events to rec's
// flight recorder. A daemon shares one cache across jobs, so like
// CounterScope deltas the attribution is exact when one job runs at a
// time and best-effort (events may belong to a concurrent job) when
// scopes overlap - acceptable for a post-mortem timeline, and the
// recorder is write-only so it can never change what the cache returns.
func (c *MatrixCache) SetRecorder(rec *obs.Recorder) {
	if c != nil {
		c.rec.Store(rec)
	}
}

// ClearRecorder detaches rec if (and only if) it is still the attached
// recorder, so a finishing job cannot clear a successor's attribution.
func (c *MatrixCache) ClearRecorder(rec *obs.Recorder) {
	if c != nil {
		c.rec.CompareAndSwap(rec, nil)
	}
}

func (c *MatrixCache) recorder() *obs.Recorder {
	if c == nil {
		return nil
	}
	return c.rec.Load()
}

type matrixKey struct {
	name  string
	scale float64
}

// blobKey wraps blob keys so they can never collide with matrixKey in the
// shared byKey map.
type blobKey string

type cacheEntry struct {
	key  any // matrixKey or blobKey
	m    *CSR
	blob any
	size int64
}

func (e *cacheEntry) isBlob() bool {
	_, ok := e.key.(blobKey)
	return ok
}

// NewMatrixCache builds a cache that keeps at most budgetBytes of CSR data
// resident. A non-positive budget disables retention entirely: Get still
// works but always regenerates (the determinism/debugging oracle). Side
// blobs (profiles) are additionally capped at a quarter of the budget;
// SetBlobBudget tunes that.
func NewMatrixCache(budgetBytes int64) *MatrixCache {
	return &MatrixCache{
		budget:     budgetBytes,
		blobBudget: budgetBytes / 4,
		lru:        list.New(),
		byKey:      make(map[any]*list.Element),
	}
}

// SetBlobBudget caps the total resident bytes of side blobs (profiles)
// at b, clamped to the overall byte budget. 0 disables blob retention
// while leaving matrix memoisation intact. Lowering the budget below
// the current blob usage takes effect lazily at the next PutBlob.
func (c *MatrixCache) SetBlobBudget(b int64) {
	c.mu.Lock()
	if b > c.budget {
		b = c.budget
	}
	if b < 0 {
		b = 0
	}
	c.blobBudget = b
	c.mu.Unlock()
}

// RetainsBlobs reports whether PutBlob can retain anything at all: both
// the overall byte budget and the blob budget must be positive. Safe on
// a nil cache (false). The analytic pricing path (internal/sim) uses
// this to decide whether a profile store is worth tracing for: against
// a non-retaining store, auto mode stays exact instead of silently
// rebuilding the reuse profile for every sweep cell.
func (c *MatrixCache) RetainsBlobs() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budget > 0 && c.blobBudget > 0
}

// generate resolves the generation function.
func (c *MatrixCache) generate(e TestbedEntry, scale float64) *CSR {
	if c != nil && c.gen != nil {
		return c.gen(e, scale)
	}
	return e.GenerateScaled(scale)
}

// evictUntil drops LRU entries (of either kind) until size more bytes fit
// the budget; callers hold the lock. It returns the per-kind eviction
// counts of this pass.
func (c *MatrixCache) evictUntil(size int64) (mat, blob uint64) {
	for c.used+size > c.budget {
		back := c.lru.Back()
		ent := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.byKey, ent.key)
		c.used -= ent.size
		if ent.isBlob() {
			c.profEvictions++
			c.profUsed -= ent.size
			c.profResident--
			blob++
		} else {
			c.evictions++
			mat++
		}
	}
	return mat, blob
}

// Get returns the entry's matrix at the given scale, generating it on a
// miss. The returned matrix is shared across callers and must be treated
// as read-only; reordering and format conversions in this package already
// copy. A nil cache is valid and always generates.
func (c *MatrixCache) Get(e TestbedEntry, scale float64) *CSR {
	if c == nil {
		return e.GenerateScaled(scale)
	}
	k := matrixKey{name: e.Name, scale: scale}
	c.mu.Lock()
	if el, ok := c.byKey[k]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		m := el.Value.(*cacheEntry).m
		c.mu.Unlock()
		cacheHits.Add(1)
		c.recorder().Record(flightTrack, "cache_hit", e.Name, "")
		return m
	}
	c.misses++
	c.mu.Unlock()
	cacheMisses.Add(1)
	c.recorder().Record(flightTrack, "cache_miss", e.Name, "")

	// Generate outside the lock so concurrent misses on different keys
	// do not serialise on the expensive part.
	m := c.generate(e, scale)
	size := m.SizeBytes()

	c.mu.Lock()
	if el, ok := c.byKey[k]; ok {
		// Another goroutine generated the same key while we did. Keep the
		// resident copy so every caller shares one instance; this return
		// is served from the cache, so it counts as a hit, and the
		// discarded generation is accounted as duplicated, wasted work.
		c.lru.MoveToFront(el)
		c.hits++
		c.dupGens++
		c.dupBytes += uint64(size)
		res := el.Value.(*cacheEntry).m
		c.mu.Unlock()
		cacheHits.Add(1)
		cacheDupGens.Add(1)
		cacheDupBytes.Add(uint64(size))
		return res
	}
	if size > c.budget {
		c.mu.Unlock()
		return m // larger than the whole budget: hand out uncached
	}
	evicted, evictedBlobs := c.evictUntil(size)
	c.byKey[k] = c.lru.PushFront(&cacheEntry{key: k, m: m, size: size})
	c.used += size
	used, resident := c.used, c.lru.Len()-c.profResident
	c.mu.Unlock()
	cacheEvictions.Add(evicted)
	profEvictions.Add(evictedBlobs)
	cacheUsedGauge.Set(used)
	cacheResidGauge.Set(int64(resident))
	if evicted+evictedBlobs > 0 {
		c.recorder().Recordf(flightTrack, "cache_evict", "evict",
			"inserting %s evicted %d matrices, %d blobs", e.Name, evicted, evictedBlobs)
	}
	return m
}

// GetBlob returns the side blob stored under key, refreshing its LRU
// position. Safe on a nil cache (always a miss).
func (c *MatrixCache) GetBlob(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.byKey[blobKey(key)]; ok {
		c.lru.MoveToFront(el)
		c.profHits++
		v := el.Value.(*cacheEntry).blob
		c.mu.Unlock()
		profHits.Add(1)
		return v, true
	}
	c.profMisses++
	c.mu.Unlock()
	profMisses.Add(1)
	return nil, false
}

// evictBlobsUntil drops least-recently-used BLOB entries (skipping
// matrices) until size more blob bytes fit the blob budget; callers
// hold the lock. Returns the number of blobs evicted.
func (c *MatrixCache) evictBlobsUntil(size int64) (blob uint64) {
	for el := c.lru.Back(); el != nil && c.profUsed+size > c.blobBudget; {
		prev := el.Prev()
		ent := el.Value.(*cacheEntry)
		if ent.isBlob() {
			c.lru.Remove(el)
			delete(c.byKey, ent.key)
			c.used -= ent.size
			c.profEvictions++
			c.profUsed -= ent.size
			c.profResident--
			blob++
		}
		el = prev
	}
	return blob
}

// PutBlob stores a side blob of the given size under key. Capacity is
// blob-aware: least-recently-used blobs are evicted first until the
// blob side fits its own budget (SetBlobBudget; a quarter of the byte
// budget by default), then LRU entries of either kind go until the
// shared byte budget holds. Blobs can therefore never occupy more than
// the blob budget in aggregate - a flood of large profiles cannot evict
// every resident matrix. When the key is already resident - e.g. two
// cells of a geometry sweep built the same profile concurrently - the
// first copy wins so every caller shares one instance. Blobs larger
// than the blob budget (or any blob when either budget is
// non-positive) are not retained. Safe on a nil cache (no-op).
func (c *MatrixCache) PutBlob(key string, v any, size int64) {
	if c == nil || v == nil {
		return
	}
	if size < 0 {
		size = 0
	}
	k := blobKey(key)
	c.mu.Lock()
	if el, ok := c.byKey[k]; ok {
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	if size > c.budget || size > c.blobBudget {
		c.mu.Unlock()
		return
	}
	evictedBlobsFirst := c.evictBlobsUntil(size)
	evicted, evictedBlobs := c.evictUntil(size)
	evictedBlobs += evictedBlobsFirst
	c.byKey[k] = c.lru.PushFront(&cacheEntry{key: k, blob: v, size: size})
	c.used += size
	c.profUsed += size
	c.profResident++
	used, profUsed := c.used, c.profUsed
	matResident := c.lru.Len() - c.profResident
	profResident := c.profResident
	c.mu.Unlock()
	cacheEvictions.Add(evicted)
	profEvictions.Add(evictedBlobs)
	cacheUsedGauge.Set(used)
	cacheResidGauge.Set(int64(matResident))
	profUsedGauge.Set(profUsed)
	profResidGauge.Set(int64(profResident))
	if evicted+evictedBlobs > 0 {
		c.recorder().Recordf(flightTrack, "cache_evict", "evict",
			"storing blob evicted %d matrices, %d blobs", evicted, evictedBlobs)
	}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	// DuplicateGenerations counts generations discarded after losing a
	// concurrent-miss race (each also counted one miss at entry and one
	// hit when the resident copy was returned); WastedBytes is the total
	// size of those discarded matrices.
	DuplicateGenerations   uint64
	WastedBytes            uint64
	Resident               int
	UsedBytes, BudgetBytes int64
	// Profile (blob side-store) traffic, disjoint from the matrix
	// counters above. ProfileUsedBytes is included in UsedBytes: one
	// budget governs both kinds, but blobs are additionally capped at
	// ProfileBudgetBytes in aggregate.
	ProfileHits, ProfileMisses, ProfileEvictions uint64
	ProfileResident                              int
	ProfileUsedBytes                             int64
	ProfileBudgetBytes                           int64
}

// Stats returns a snapshot of the cache counters. Safe on a nil cache.
func (c *MatrixCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:                 c.hits,
		Misses:               c.misses,
		Evictions:            c.evictions,
		DuplicateGenerations: c.dupGens,
		WastedBytes:          c.dupBytes,
		Resident:             c.lru.Len() - c.profResident,
		UsedBytes:            c.used,
		BudgetBytes:          c.budget,
		ProfileHits:          c.profHits,
		ProfileMisses:        c.profMisses,
		ProfileEvictions:     c.profEvictions,
		ProfileResident:      c.profResident,
		ProfileUsedBytes:     c.profUsed,
		ProfileBudgetBytes:   c.blobBudget,
	}
}
