package sparse

import (
	"math"
	"testing"
)

func vecApproxEqual(t *testing.T, got, want []float64, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", context, len(got), len(want))
	}
	for i := range got {
		tol := 1e-9 * math.Max(1, math.Abs(want[i]))
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s: element %d: %v != %v", context, i, got[i], want[i])
		}
	}
}

func testVectors(n int) (x, want []float64) {
	x = make([]float64, n)
	for i := range x {
		x[i] = math.Cos(float64(i) * 0.7)
	}
	return x, make([]float64, n)
}

func TestELLMatchesCSR(t *testing.T) {
	for _, class := range []PatternClass{PatternStencil2D, PatternBanded, PatternBlock} {
		m := Generate(Gen{Name: string(class), Class: class, N: 150, NNZTarget: 1800, Seed: 5})
		e, err := ToELL(m, 10)
		if err != nil {
			t.Fatalf("%s: ToELL: %v", class, err)
		}
		if e.NNZ() != m.NNZ() {
			t.Fatalf("%s: ELL NNZ %d != CSR %d", class, e.NNZ(), m.NNZ())
		}
		x, _ := testVectors(m.Cols)
		want := make([]float64, m.Rows)
		got := make([]float64, m.Rows)
		m.MulVec(want, x)
		e.MulVec(got, x)
		vecApproxEqual(t, got, want, string(class))
	}
}

func TestELLRejectsHeavyPadding(t *testing.T) {
	// Power-law: one huge row forces K ~ max row length.
	m := Generate(Gen{Name: "pl", Class: PatternPowerLaw, N: 2000, NNZTarget: 10000, Seed: 9})
	st := ComputeStats(m)
	if float64(st.MaxRow) < 3*st.NNZPerRow {
		t.Skip("power-law generator did not produce a heavy tail at this size")
	}
	if _, err := ToELL(m, 1.5); err == nil {
		t.Error("ToELL accepted a matrix whose padding exceeds the bound")
	}
}

func TestBCSRMatchesCSR(t *testing.T) {
	for _, blk := range []struct{ r, c int }{{1, 1}, {2, 2}, {4, 4}, {2, 3}, {3, 2}} {
		m := Generate(Gen{Name: "b", Class: PatternStencil2D, N: 123, NNZTarget: 1000, Seed: 17})
		b := ToBCSR(m, blk.r, blk.c)
		x, _ := testVectors(m.Cols)
		want := make([]float64, m.Rows)
		got := make([]float64, m.Rows)
		m.MulVec(want, x)
		b.MulVec(got, x)
		vecApproxEqual(t, got, want, "bcsr")
		if fr := b.FillRatio(m.NNZ()); fr < 1 {
			t.Fatalf("fill ratio %v < 1 for %dx%d blocks", fr, blk.r, blk.c)
		}
	}
}

func TestBCSR1x1IsExactlyCSR(t *testing.T) {
	m := Generate(Gen{Name: "b", Class: PatternRandom, N: 64, NNZTarget: 400, Seed: 21})
	b := ToBCSR(m, 1, 1)
	if b.Blocks() != m.NNZ() {
		t.Fatalf("1x1 BCSR blocks %d != nnz %d", b.Blocks(), m.NNZ())
	}
	if fr := b.FillRatio(m.NNZ()); fr != 1 {
		t.Fatalf("1x1 fill ratio %v != 1", fr)
	}
}

func TestBCSRPanicsOnBadBlocks(t *testing.T) {
	m := Identity(4)
	defer func() {
		if recover() == nil {
			t.Error("ToBCSR(0,0) did not panic")
		}
	}()
	ToBCSR(m, 0, 0)
}

func TestCSCMatchesCSR(t *testing.T) {
	m := Generate(Gen{Name: "c", Class: PatternBanded, N: 140, NNZTarget: 1600, Seed: 8})
	c := ToCSC(m)
	x, _ := testVectors(m.Cols)
	want := make([]float64, m.Rows)
	got := make([]float64, m.Rows)
	m.MulVec(want, x)
	c.MulVec(got, x)
	vecApproxEqual(t, got, want, "csc")
}

func TestCSCSkipsZeroXEntries(t *testing.T) {
	m := Dense(8, 1)
	c := ToCSC(m)
	x := make([]float64, 8) // all zero
	y := make([]float64, 8)
	for i := range y {
		y[i] = 99 // must be overwritten with zeros
	}
	c.MulVec(y, x)
	for i, v := range y {
		if v != 0 {
			t.Fatalf("y[%d] = %v, want 0", i, v)
		}
	}
}

func TestDenseHelper(t *testing.T) {
	m := Dense(6, 42)
	if m.NNZ() != 36 {
		t.Fatalf("Dense(6) nnz = %d, want 36", m.NNZ())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
