package sparse

import "fmt"

// SYM stores a structurally symmetric matrix by its lower triangle
// (diagonal included): every off-diagonal entry is stored once and applied
// twice during SpMV (y[i] += v·x[j] and y[j] += v·x[i]). The format halves
// the index/value stream traffic - attractive on a bandwidth-starved part
// like the SCC - at the price of scattered updates to y, which also makes
// the kernel harder to parallelise by rows (both i and j are written).
type SYM struct {
	Name string
	// N is the dimension (square by construction).
	N int
	// Lower is the lower triangle in CSR (Index[k] <= row for all k).
	Lower *CSR
}

// ToSYM converts a CSR matrix to symmetric storage. It fails unless the
// matrix is square and numerically symmetric (A[i][j] == A[j][i] for every
// stored entry).
func ToSYM(m *CSR) (*SYM, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("sparse: ToSYM needs a square matrix, have %dx%d", m.Rows, m.Cols)
	}
	t := m.Transpose()
	if m.NNZ() != t.NNZ() {
		return nil, fmt.Errorf("sparse: matrix %s is not structurally symmetric", m.Name)
	}
	// A == A^T exactly when their CSR encodings coincide entrywise.
	for i := range m.Ptr {
		if m.Ptr[i] != t.Ptr[i] {
			return nil, fmt.Errorf("sparse: matrix %s is not structurally symmetric", m.Name)
		}
	}
	for k := range m.Val {
		if m.Index[k] != t.Index[k] {
			return nil, fmt.Errorf("sparse: matrix %s is not structurally symmetric", m.Name)
		}
		if m.Val[k] != t.Val[k] {
			return nil, fmt.Errorf("sparse: matrix %s is not numerically symmetric", m.Name)
		}
	}

	lower := &CSR{
		Name: m.Name + "(L)",
		Rows: m.Rows, Cols: m.Cols,
		Ptr: make([]int32, m.Rows+1),
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.Ptr[i]; k < m.Ptr[i+1]; k++ {
			if int(m.Index[k]) <= i {
				lower.Index = append(lower.Index, m.Index[k])
				lower.Val = append(lower.Val, m.Val[k])
			}
		}
		lower.Ptr[i+1] = int32(len(lower.Val))
	}
	return &SYM{Name: m.Name, N: m.Rows, Lower: lower}, nil
}

// StoredNNZ returns the number of stored entries (the lower triangle).
func (s *SYM) StoredNNZ() int { return s.Lower.NNZ() }

// LogicalNNZ returns the nonzero count of the full matrix the storage
// represents: off-diagonals count twice.
func (s *SYM) LogicalNNZ() int {
	diag := 0
	for i := 0; i < s.N; i++ {
		for k := s.Lower.Ptr[i]; k < s.Lower.Ptr[i+1]; k++ {
			if int(s.Lower.Index[k]) == i {
				diag++
			}
		}
	}
	return 2*s.Lower.NNZ() - diag
}

// MulVec computes y = A·x from the lower triangle.
func (s *SYM) MulVec(y, x []float64) {
	if len(x) != s.N || len(y) != s.N {
		panic("sparse: SYM MulVec dimension mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	for i := 0; i < s.N; i++ {
		for k := s.Lower.Ptr[i]; k < s.Lower.Ptr[i+1]; k++ {
			j := int(s.Lower.Index[k])
			v := s.Lower.Val[k]
			y[i] += v * x[j]
			if j != i {
				y[j] += v * x[i]
			}
		}
	}
}

// CompressionRatio returns stored entries over logical entries (0.5 means
// a perfect halving; higher values mean a heavy diagonal).
func (s *SYM) CompressionRatio() float64 {
	l := s.LogicalNNZ()
	if l == 0 {
		return 0
	}
	return float64(s.StoredNNZ()) / float64(l)
}
