package sparse

import (
	"fmt"
	"math"
)

// Matrix algebra utilities used by the solvers and examples: addition,
// scaling, diagonal extraction and the standard norms.

// Add returns a + b (same dimensions; patterns merged, coincident entries
// summed).
func Add(a, b *CSR) (*CSR, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("sparse: Add dimension mismatch: %dx%d vs %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := &CSR{
		Name: a.Name + "+" + b.Name,
		Rows: a.Rows, Cols: a.Cols,
		Ptr: make([]int32, a.Rows+1),
	}
	for i := 0; i < a.Rows; i++ {
		ka, kaEnd := a.Ptr[i], a.Ptr[i+1]
		kb, kbEnd := b.Ptr[i], b.Ptr[i+1]
		for ka < kaEnd || kb < kbEnd {
			switch {
			case kb >= kbEnd || (ka < kaEnd && a.Index[ka] < b.Index[kb]):
				out.Index = append(out.Index, a.Index[ka])
				out.Val = append(out.Val, a.Val[ka])
				ka++
			case ka >= kaEnd || b.Index[kb] < a.Index[ka]:
				out.Index = append(out.Index, b.Index[kb])
				out.Val = append(out.Val, b.Val[kb])
				kb++
			default: // equal columns
				out.Index = append(out.Index, a.Index[ka])
				out.Val = append(out.Val, a.Val[ka]+b.Val[kb])
				ka++
				kb++
			}
		}
		out.Ptr[i+1] = int32(len(out.Val))
	}
	return out, nil
}

// ScaleValues multiplies every stored value by s in place.
func (m *CSR) ScaleValues(s float64) {
	for k := range m.Val {
		m.Val[k] *= s
	}
}

// Diagonal returns the main diagonal as a dense vector (zeros where the
// diagonal is not stored). The matrix must be square.
func (m *CSR) Diagonal() ([]float64, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("sparse: Diagonal of a %dx%d matrix", m.Rows, m.Cols)
	}
	d := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		d[i] = m.At(i, i)
	}
	return d, nil
}

// AddDiagonal returns m + s·I (square matrices), inserting diagonal entries
// where absent.
func AddDiagonal(m *CSR, s float64) (*CSR, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("sparse: AddDiagonal of a %dx%d matrix", m.Rows, m.Cols)
	}
	eye := Identity(m.Rows)
	eye.ScaleValues(s)
	out, err := Add(m, eye)
	if err != nil {
		return nil, err
	}
	out.Name = fmt.Sprintf("%s+%gI", m.Name, s)
	return out, nil
}

// NormFrobenius returns sqrt(sum of squared stored values).
func (m *CSR) NormFrobenius() float64 {
	s := 0.0
	for _, v := range m.Val {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute row sum.
func (m *CSR) NormInf() float64 {
	best := 0.0
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for k := m.Ptr[i]; k < m.Ptr[i+1]; k++ {
			s += math.Abs(m.Val[k])
		}
		if s > best {
			best = s
		}
	}
	return best
}

// Norm1 returns the maximum absolute column sum.
func (m *CSR) Norm1() float64 {
	sums := make([]float64, m.Cols)
	for k := range m.Val {
		sums[m.Index[k]] += math.Abs(m.Val[k])
	}
	best := 0.0
	for _, s := range sums {
		if s > best {
			best = s
		}
	}
	return best
}

// DropZeros returns a copy with explicitly stored zero values removed.
func (m *CSR) DropZeros() *CSR {
	out := &CSR{
		Name: m.Name,
		Rows: m.Rows, Cols: m.Cols,
		Ptr: make([]int32, m.Rows+1),
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.Ptr[i]; k < m.Ptr[i+1]; k++ {
			if m.Val[k] != 0 {
				out.Index = append(out.Index, m.Index[k])
				out.Val = append(out.Val, m.Val[k])
			}
		}
		out.Ptr[i+1] = int32(len(out.Val))
	}
	return out
}
