package sparse

import (
	"reflect"
	"sync"
	"testing"
)

func testEntry(t *testing.T, name string) TestbedEntry {
	t.Helper()
	e, ok := TestbedEntryByName(name)
	if !ok {
		t.Fatalf("testbed entry %q missing", name)
	}
	return e
}

func TestMatrixCacheHitReturnsSameInstance(t *testing.T) {
	c := NewMatrixCache(1 << 30)
	e := testEntry(t, "lhr04")
	a := c.Get(e, 0.1)
	b := c.Get(e, 0.1)
	if a != b {
		t.Fatal("second Get did not return the cached instance")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if st.UsedBytes != a.SizeBytes() {
		t.Fatalf("used %d bytes, matrix is %d", st.UsedBytes, a.SizeBytes())
	}
}

func TestMatrixCacheScaleIsPartOfTheKey(t *testing.T) {
	c := NewMatrixCache(1 << 30)
	e := testEntry(t, "lhr04")
	a := c.Get(e, 0.1)
	b := c.Get(e, 0.2)
	if a == b || a.Rows == b.Rows {
		t.Fatal("different scales must generate different matrices")
	}
	if c.Stats().Misses != 2 {
		t.Fatalf("expected two misses, got %+v", c.Stats())
	}
}

func TestMatrixCacheMatchesFreshGeneration(t *testing.T) {
	c := NewMatrixCache(1 << 30)
	e := testEntry(t, "psmigr_1")
	cached := c.Get(e, 0.1)
	fresh := e.GenerateScaled(0.1)
	if !reflect.DeepEqual(cached, fresh) {
		t.Fatal("cached matrix differs from a fresh generation")
	}
}

func TestMatrixCacheEvictsLRUWithinBudget(t *testing.T) {
	e1 := testEntry(t, "lhr04")
	e2 := testEntry(t, "rajat01")
	e3 := testEntry(t, "psmigr_1")
	s1 := e1.GenerateScaled(0.1).SizeBytes()
	s2 := e2.GenerateScaled(0.1).SizeBytes()
	s3 := e3.GenerateScaled(0.1).SizeBytes()

	if s1 >= s2 || s2 >= s3 {
		t.Fatalf("fixture sizes not ascending: %d %d %d", s1, s2, s3)
	}
	// Budget fits any pair (the largest is s2+s3) but not all three.
	c := NewMatrixCache(s2 + s3)
	c.Get(e1, 0.1)
	c.Get(e2, 0.1)
	c.Get(e1, 0.1) // e2 is now the least recently used
	c.Get(e3, 0.1) // must evict e2 (and possibly e1) but never overflow
	st := c.Stats()
	if st.UsedBytes > st.BudgetBytes {
		t.Fatalf("cache over budget: %d > %d", st.UsedBytes, st.BudgetBytes)
	}
	if st.Evictions == 0 {
		t.Fatal("expected at least one eviction")
	}
	// e1 was touched more recently than e2: it must still be resident.
	before := c.Stats().Hits
	c.Get(e1, 0.1)
	if c.Stats().Hits != before+1 {
		t.Fatal("LRU evicted the most recently used entry")
	}
}

func TestMatrixCacheOversizedEntryBypasses(t *testing.T) {
	e := testEntry(t, "psmigr_1")
	c := NewMatrixCache(16) // far smaller than any matrix
	a := c.Get(e, 0.1)
	if a == nil || a.NNZ() == 0 {
		t.Fatal("oversized entry not generated")
	}
	st := c.Stats()
	if st.Resident != 0 || st.UsedBytes != 0 {
		t.Fatalf("oversized entry retained: %+v", st)
	}
}

func TestMatrixCacheNilAndDisabled(t *testing.T) {
	var nilCache *MatrixCache
	e := testEntry(t, "lhr04")
	if nilCache.Get(e, 0.1) == nil {
		t.Fatal("nil cache must still generate")
	}
	if s := nilCache.Stats(); s != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", s)
	}
	off := NewMatrixCache(0)
	a, b := off.Get(e, 0.1), off.Get(e, 0.1)
	if a == b {
		t.Fatal("zero-budget cache must not retain")
	}
}

func TestMatrixCacheConcurrentAccess(t *testing.T) {
	c := NewMatrixCache(1 << 30)
	entries := []TestbedEntry{
		testEntry(t, "lhr04"),
		testEntry(t, "rajat01"),
		testEntry(t, "psmigr_1"),
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				e := entries[(g+i)%len(entries)]
				if m := c.Get(e, 0.1); m.NNZ() == 0 {
					t.Error("empty matrix from cache")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	// Concurrent first touches of the same key may race to generate (both
	// count a miss; one instance is kept), so only the lower bound and the
	// resident set are exact.
	if st.Misses < uint64(len(entries)) || st.Resident != len(entries) {
		t.Fatalf("expected %d resident entries, got %+v", len(entries), st)
	}
}
