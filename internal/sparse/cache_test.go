package sparse

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func testEntry(t *testing.T, name string) TestbedEntry {
	t.Helper()
	e, ok := TestbedEntryByName(name)
	if !ok {
		t.Fatalf("testbed entry %q missing", name)
	}
	return e
}

func TestMatrixCacheHitReturnsSameInstance(t *testing.T) {
	c := NewMatrixCache(1 << 30)
	e := testEntry(t, "lhr04")
	a := c.Get(e, 0.1)
	b := c.Get(e, 0.1)
	if a != b {
		t.Fatal("second Get did not return the cached instance")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if st.UsedBytes != a.SizeBytes() {
		t.Fatalf("used %d bytes, matrix is %d", st.UsedBytes, a.SizeBytes())
	}
}

func TestMatrixCacheScaleIsPartOfTheKey(t *testing.T) {
	c := NewMatrixCache(1 << 30)
	e := testEntry(t, "lhr04")
	a := c.Get(e, 0.1)
	b := c.Get(e, 0.2)
	if a == b || a.Rows == b.Rows {
		t.Fatal("different scales must generate different matrices")
	}
	if c.Stats().Misses != 2 {
		t.Fatalf("expected two misses, got %+v", c.Stats())
	}
}

func TestMatrixCacheMatchesFreshGeneration(t *testing.T) {
	c := NewMatrixCache(1 << 30)
	e := testEntry(t, "psmigr_1")
	cached := c.Get(e, 0.1)
	fresh := e.GenerateScaled(0.1)
	if !reflect.DeepEqual(cached, fresh) {
		t.Fatal("cached matrix differs from a fresh generation")
	}
}

func TestMatrixCacheEvictsLRUWithinBudget(t *testing.T) {
	e1 := testEntry(t, "lhr04")
	e2 := testEntry(t, "rajat01")
	e3 := testEntry(t, "psmigr_1")
	s1 := e1.GenerateScaled(0.1).SizeBytes()
	s2 := e2.GenerateScaled(0.1).SizeBytes()
	s3 := e3.GenerateScaled(0.1).SizeBytes()

	if s1 >= s2 || s2 >= s3 {
		t.Fatalf("fixture sizes not ascending: %d %d %d", s1, s2, s3)
	}
	// Budget fits any pair (the largest is s2+s3) but not all three.
	c := NewMatrixCache(s2 + s3)
	c.Get(e1, 0.1)
	c.Get(e2, 0.1)
	c.Get(e1, 0.1) // e2 is now the least recently used
	c.Get(e3, 0.1) // must evict e2 (and possibly e1) but never overflow
	st := c.Stats()
	if st.UsedBytes > st.BudgetBytes {
		t.Fatalf("cache over budget: %d > %d", st.UsedBytes, st.BudgetBytes)
	}
	if st.Evictions == 0 {
		t.Fatal("expected at least one eviction")
	}
	// e1 was touched more recently than e2: it must still be resident.
	before := c.Stats().Hits
	c.Get(e1, 0.1)
	if c.Stats().Hits != before+1 {
		t.Fatal("LRU evicted the most recently used entry")
	}
}

func TestMatrixCacheOversizedEntryBypasses(t *testing.T) {
	e := testEntry(t, "psmigr_1")
	c := NewMatrixCache(16) // far smaller than any matrix
	a := c.Get(e, 0.1)
	if a == nil || a.NNZ() == 0 {
		t.Fatal("oversized entry not generated")
	}
	st := c.Stats()
	if st.Resident != 0 || st.UsedBytes != 0 {
		t.Fatalf("oversized entry retained: %+v", st)
	}
}

func TestMatrixCacheNilAndDisabled(t *testing.T) {
	var nilCache *MatrixCache
	e := testEntry(t, "lhr04")
	if nilCache.Get(e, 0.1) == nil {
		t.Fatal("nil cache must still generate")
	}
	if s := nilCache.Stats(); s != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", s)
	}
	off := NewMatrixCache(0)
	a, b := off.Get(e, 0.1), off.Get(e, 0.1)
	if a == b {
		t.Fatal("zero-budget cache must not retain")
	}
}

// Two goroutines missing on the same key race to generate; the loser
// must discard its copy, count the resident-copy return as a hit, and
// account the duplicated generation and its wasted bytes. The gen seam
// blocks both goroutines inside generation so the race is deterministic.
func TestMatrixCacheConcurrentDuplicateMissAccounting(t *testing.T) {
	e := testEntry(t, "lhr04")
	c := NewMatrixCache(1 << 30)
	bothGenerating := make(chan struct{})
	release := make(chan struct{})
	entered := make(chan struct{}, 2)
	c.gen = func(ge TestbedEntry, scale float64) *CSR {
		entered <- struct{}{}
		<-release
		return ge.GenerateScaled(scale)
	}
	go func() {
		<-entered
		<-entered // both goroutines are past the miss count, inside generation
		close(bothGenerating)
		close(release)
	}()

	results := make([]*CSR, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Get(e, 0.1)
		}(i)
	}
	wg.Wait()
	<-bothGenerating

	if results[0] != results[1] {
		t.Fatal("duplicate-miss losers must be served the resident copy")
	}
	st := c.Stats()
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (both goroutines missed)", st.Misses)
	}
	if st.Hits != 1 {
		t.Fatalf("hits = %d, want 1 (the loser was served from the cache)", st.Hits)
	}
	if st.DuplicateGenerations != 1 {
		t.Fatalf("duplicate generations = %d, want 1", st.DuplicateGenerations)
	}
	if want := uint64(results[0].SizeBytes()); st.WastedBytes != want {
		t.Fatalf("wasted bytes = %d, want %d (one discarded copy)", st.WastedBytes, want)
	}
	if st.Resident != 1 || st.UsedBytes != results[0].SizeBytes() {
		t.Fatalf("resident set wrong after duplicate race: %+v", st)
	}
}

// residentSizes walks the LRU and sums the entries' recorded sizes -
// the invariant oracle for used-bytes accounting.
func residentSizes(c *MatrixCache) (int64, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum int64
	n := 0
	for el := c.lru.Front(); el != nil; el = el.Next() {
		sum += el.Value.(*cacheEntry).size
		n++
	}
	return sum, n
}

// After an arbitrary Get/evict sequence, used must equal the sum of the
// resident entries' sizes and never exceed the budget.
func TestMatrixCacheUsedMatchesResidentSizes(t *testing.T) {
	entries := []TestbedEntry{
		testEntry(t, "lhr04"),
		testEntry(t, "rajat01"),
		testEntry(t, "psmigr_1"),
	}
	scales := []float64{0.05, 0.1, 0.15}
	// Budget sized so some (entry, scale) pairs fit, some evict, and the
	// largest bypass: every code path participates in the sequence.
	budget := entries[1].GenerateScaled(0.1).SizeBytes() + entries[0].GenerateScaled(0.15).SizeBytes()
	c := NewMatrixCache(budget)
	// Deterministic pseudo-random walk over the (entry, scale) grid.
	state := uint64(1)
	for i := 0; i < 60; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		e := entries[(state>>33)%uint64(len(entries))]
		s := scales[(state>>13)%uint64(len(scales))]
		c.Get(e, s)

		sum, n := residentSizes(c)
		st := c.Stats()
		if st.UsedBytes != sum {
			t.Fatalf("step %d: used %d != sum of resident sizes %d", i, st.UsedBytes, sum)
		}
		if st.Resident != n {
			t.Fatalf("step %d: resident %d != lru length %d", i, st.Resident, n)
		}
		if st.UsedBytes > st.BudgetBytes {
			t.Fatalf("step %d: over budget: %d > %d", i, st.UsedBytes, st.BudgetBytes)
		}
	}
	if st := c.Stats(); st.Evictions == 0 || st.Hits == 0 {
		t.Fatalf("walk did not exercise evictions and hits: %+v", st)
	}
}

// Zero- and negative-budget caches must never retain anything.
func TestMatrixCacheNonPositiveBudgetNeverRetains(t *testing.T) {
	e := testEntry(t, "lhr04")
	for _, budget := range []int64{0, -1, -1 << 30} {
		c := NewMatrixCache(budget)
		a, b := c.Get(e, 0.1), c.Get(e, 0.1)
		if a == nil || b == nil || a == b {
			t.Fatalf("budget %d: cache retained or failed to generate", budget)
		}
		st := c.Stats()
		if st.Resident != 0 || st.UsedBytes != 0 {
			t.Fatalf("budget %d: retained entries: %+v", budget, st)
		}
		if st.Misses != 2 || st.Hits != 0 {
			t.Fatalf("budget %d: stats = %+v, want 2 misses / 0 hits", budget, st)
		}
	}
}

// An entry larger than the whole budget must bypass the cache without
// evicting the resident set.
func TestMatrixCacheOversizedBypassKeepsResidents(t *testing.T) {
	small1 := testEntry(t, "lhr04")
	small2 := testEntry(t, "rajat01")
	big := testEntry(t, "psmigr_1")
	s1 := small1.GenerateScaled(0.05).SizeBytes()
	s2 := small2.GenerateScaled(0.05).SizeBytes()
	bigSize := big.GenerateScaled(0.3).SizeBytes()
	if bigSize <= s1+s2 {
		t.Fatalf("fixture not oversized: big %d <= residents %d", bigSize, s1+s2)
	}
	c := NewMatrixCache(s1 + s2)
	c.Get(small1, 0.05)
	c.Get(small2, 0.05)
	before := c.Stats()
	if before.Resident != 2 {
		t.Fatalf("setup failed: %+v", before)
	}

	if m := c.Get(big, 0.3); m == nil || m.NNZ() == 0 {
		t.Fatal("oversized entry not generated")
	}
	st := c.Stats()
	if st.Resident != 2 || st.UsedBytes != before.UsedBytes {
		t.Fatalf("oversized bypass disturbed residents: before %+v after %+v", before, st)
	}
	if st.Evictions != before.Evictions {
		t.Fatalf("oversized bypass evicted: %+v", st)
	}
	// Both small entries must still be served from cache.
	c.Get(small1, 0.05)
	c.Get(small2, 0.05)
	if got := c.Stats().Hits; got != before.Hits+2 {
		t.Fatalf("residents lost after bypass: hits %d, want %d", got, before.Hits+2)
	}
}

func TestMatrixCacheConcurrentAccess(t *testing.T) {
	c := NewMatrixCache(1 << 30)
	entries := []TestbedEntry{
		testEntry(t, "lhr04"),
		testEntry(t, "rajat01"),
		testEntry(t, "psmigr_1"),
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				e := entries[(g+i)%len(entries)]
				if m := c.Get(e, 0.1); m.NNZ() == 0 {
					t.Error("empty matrix from cache")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	// Concurrent first touches of the same key may race to generate (both
	// count a miss; one instance is kept), so only the lower bound and the
	// resident set are exact.
	if st.Misses < uint64(len(entries)) || st.Resident != len(entries) {
		t.Fatalf("expected %d resident entries, got %+v", len(entries), st)
	}
}

// residentKinds walks the LRU front-to-back returning each entry's kind
// ("m" or "b") - the oracle for cross-kind eviction-order tests.
func residentKinds(c *MatrixCache) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if el.Value.(*cacheEntry).isBlob() {
			out = append(out, "b")
		} else {
			out = append(out, "m")
		}
	}
	return out
}

func TestProfileBlobRoundTripAndAccounting(t *testing.T) {
	c := NewMatrixCache(1 << 20)
	if _, ok := c.GetBlob("p1"); ok {
		t.Fatal("empty cache returned a blob")
	}
	v := []uint64{1, 2, 3}
	c.PutBlob("p1", v, 1000)
	got, ok := c.GetBlob("p1")
	if !ok || &got.([]uint64)[0] != &v[0] {
		t.Fatal("blob round trip failed")
	}
	st := c.Stats()
	if st.ProfileHits != 1 || st.ProfileMisses != 1 {
		t.Fatalf("profile traffic = %+v", st)
	}
	if st.ProfileResident != 1 || st.ProfileUsedBytes != 1000 || st.UsedBytes != 1000 {
		t.Fatalf("profile accounting = %+v", st)
	}
	// Matrix counters must be untouched by blob traffic.
	if st.Hits != 0 || st.Misses != 0 || st.Resident != 0 {
		t.Fatalf("blob traffic leaked into matrix counters: %+v", st)
	}
}

// Profile entries share the byte budget with matrices: inserting blobs
// must evict in strict LRU order across both kinds and never overflow.
// (The blob budget is raised to the full byte budget so this test pins
// the shared-LRU ordering, not the blob cap - see
// TestProfileBlobBudgetCapsEvictionOfMatrices for the cap.)
func TestProfileBlobBudgetAndEvictionOrder(t *testing.T) {
	c := NewMatrixCache(1000)
	c.SetBlobBudget(1000)
	c.PutBlob("a", "A", 400)
	c.PutBlob("b", "B", 400)
	c.GetBlob("a") // b is now LRU
	c.PutBlob("c", "C", 400)
	st := c.Stats()
	if st.UsedBytes > st.BudgetBytes {
		t.Fatalf("over budget: %+v", st)
	}
	if st.ProfileEvictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.ProfileEvictions)
	}
	if _, ok := c.GetBlob("b"); ok {
		t.Fatal("LRU blob b survived eviction")
	}
	if _, ok := c.GetBlob("a"); !ok {
		t.Fatal("recently used blob a was evicted out of order")
	}
	sum := st.ProfileUsedBytes
	if sum != 800 || st.ProfileResident != 2 {
		t.Fatalf("resident blob accounting = %+v", st)
	}
}

// Blobs and matrices evict each other in shared LRU order.
func TestProfileBlobEvictsAcrossKinds(t *testing.T) {
	e1 := testEntry(t, "lhr04")
	m1 := e1.GenerateScaled(0.1)
	budget := m1.SizeBytes() + 500
	c := NewMatrixCache(budget)
	c.SetBlobBudget(budget)
	c.Get(e1, 0.1)
	c.PutBlob("p", "P", 400)
	if kinds := residentKinds(c); len(kinds) != 2 || kinds[0] != "b" || kinds[1] != "m" {
		t.Fatalf("resident order = %v, want [b m]", kinds)
	}
	// A blob that only fits by evicting the (LRU) matrix must do exactly that.
	c.PutBlob("q", "Q", m1.SizeBytes())
	st := c.Stats()
	if st.UsedBytes > st.BudgetBytes {
		t.Fatalf("over budget: %+v", st)
	}
	if st.Evictions != 1 {
		t.Fatalf("matrix evictions = %d, want 1 (matrix was LRU)", st.Evictions)
	}
	if _, ok := c.GetBlob("p"); !ok {
		t.Fatal("newer blob p evicted before the older matrix")
	}
	// And a matrix insertion can evict blobs.
	c.PutBlob("big", "BIG", budget-100)
	before := c.Stats()
	c.Get(e1, 0.1)
	st = c.Stats()
	if st.UsedBytes > st.BudgetBytes {
		t.Fatalf("over budget after matrix insert: %+v", st)
	}
	if st.ProfileEvictions <= before.ProfileEvictions {
		t.Fatal("matrix insertion did not evict the blocking blob")
	}
}

func TestProfileBlobOversizeAndDisabled(t *testing.T) {
	c := NewMatrixCache(100)
	c.PutBlob("huge", "H", 101)
	if st := c.Stats(); st.ProfileResident != 0 || st.UsedBytes != 0 {
		t.Fatalf("oversized blob retained: %+v", st)
	}
	off := NewMatrixCache(0)
	off.PutBlob("p", "P", 1)
	if _, ok := off.GetBlob("p"); ok {
		t.Fatal("zero-budget cache retained a blob")
	}
	var nilCache *MatrixCache
	nilCache.PutBlob("p", "P", 1)
	if _, ok := nilCache.GetBlob("p"); ok {
		t.Fatal("nil cache returned a blob")
	}
}

// The blob budget caps aggregate profile bytes at a fraction of the
// byte budget (a quarter by default): a flood of large profiles - the
// -scale 1.0 failure mode, where one cell profile runs to hundreds of
// megabytes - must never evict every resident matrix.
func TestProfileBlobBudgetCapsEvictionOfMatrices(t *testing.T) {
	e1, e2 := testEntry(t, "lhr04"), testEntry(t, "nc5")
	m1, m2 := e1.GenerateScaled(0.1), e2.GenerateScaled(0.1)
	budget := 2 * (m1.SizeBytes() + m2.SizeBytes())
	c := NewMatrixCache(budget)
	c.Get(e1, 0.1)
	c.Get(e2, 0.1)

	// A single profile bigger than the blob budget is not retained at all
	// (before the fix it was, evicting matrices to make room).
	c.PutBlob("huge", "H", budget/4+1)
	st := c.Stats()
	if st.ProfileResident != 0 {
		t.Fatalf("blob above the blob budget was retained: %+v", st)
	}
	if st.Resident != 2 {
		t.Fatalf("oversized blob evicted matrices: %+v", st)
	}

	// A stream of budget-respecting profiles displaces older PROFILES,
	// not the resident matrices: aggregate blob bytes stay under the blob
	// budget and both matrices survive.
	blobSize := budget / 8
	for i := 0; i < 10; i++ {
		c.PutBlob(fmt.Sprintf("p%d", i), "P", blobSize)
	}
	st = c.Stats()
	if st.ProfileUsedBytes > st.ProfileBudgetBytes {
		t.Fatalf("blob bytes exceed the blob budget: %+v", st)
	}
	if st.Resident != 2 {
		t.Fatalf("profile flood evicted matrices (%d resident, want 2): %+v", st.Resident, st)
	}
	if st.ProfileEvictions == 0 {
		t.Fatalf("expected older profiles to be evicted for newer ones: %+v", st)
	}
	// SetBlobBudget(0) disables blob retention without touching matrices.
	c.SetBlobBudget(0)
	c.PutBlob("post", "P", 1)
	if _, ok := c.GetBlob("post"); ok {
		t.Fatal("zero blob budget retained a blob")
	}
	if c.RetainsBlobs() {
		t.Fatal("RetainsBlobs must be false at zero blob budget")
	}
	if NewMatrixCache(0).RetainsBlobs() {
		t.Fatal("zero-budget cache claims to retain blobs")
	}
	if !NewMatrixCache(1 << 20).RetainsBlobs() {
		t.Fatal("budgeted cache must retain blobs")
	}
}

// A duplicate PutBlob (two sweep cells racing to persist one profile)
// keeps the first copy so all callers share one instance.
func TestProfileBlobDuplicatePutKeepsFirst(t *testing.T) {
	c := NewMatrixCache(1 << 20)
	first := []int{1}
	c.PutBlob("p", first, 100)
	c.PutBlob("p", []int{2}, 100)
	got, ok := c.GetBlob("p")
	if !ok || &got.([]int)[0] != &first[0] {
		t.Fatal("duplicate put replaced the resident blob")
	}
	if st := c.Stats(); st.ProfileResident != 1 || st.ProfileUsedBytes != 100 {
		t.Fatalf("duplicate put double-counted: %+v", st)
	}
}
