package sparse

import (
	"math"
	"testing"
)

func symmetricFixture(seed int64) *CSR {
	// Build A + A^T from a random pattern: numerically symmetric.
	g := Generate(Gen{Name: "s", Class: PatternRandom, N: 200, NNZTarget: 1600, Seed: seed})
	t := g.Transpose()
	coo := NewCOO(200, 200, 2*g.NNZ())
	for i := 0; i < g.Rows; i++ {
		for k := g.Ptr[i]; k < g.Ptr[i+1]; k++ {
			coo.Append(i, int(g.Index[k]), g.Val[k])
		}
		for k := t.Ptr[i]; k < t.Ptr[i+1]; k++ {
			coo.Append(i, int(t.Index[k]), t.Val[k])
		}
	}
	m := coo.ToCSR()
	m.Name = "sym"
	return m
}

func TestToSYMRoundTripProduct(t *testing.T) {
	m := symmetricFixture(1)
	s, err := ToSYM(m)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := testVectors(m.Cols)
	want := make([]float64, m.Rows)
	got := make([]float64, m.Rows)
	m.MulVec(want, x)
	s.MulVec(got, x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("row %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestToSYMCompression(t *testing.T) {
	m := Laplacian2D(20)
	s, err := ToSYM(m)
	if err != nil {
		t.Fatal(err)
	}
	if s.LogicalNNZ() != m.NNZ() {
		t.Fatalf("logical nnz %d != %d", s.LogicalNNZ(), m.NNZ())
	}
	cr := s.CompressionRatio()
	if cr <= 0.5 || cr > 0.65 {
		t.Fatalf("compression ratio %v; Laplacian should be slightly above 0.5 (diagonal)", cr)
	}
	// Stored entries = (nnz + n) / 2 for a full-diagonal symmetric matrix.
	want := (m.NNZ() + m.Rows) / 2
	if s.StoredNNZ() != want {
		t.Fatalf("stored nnz %d, want %d", s.StoredNNZ(), want)
	}
}

func TestToSYMRejectsUnsymmetric(t *testing.T) {
	m := Generate(Gen{Name: "u", Class: PatternRandom, N: 50, NNZTarget: 400, Seed: 2})
	if _, err := ToSYM(m); err == nil {
		t.Fatal("random unsymmetric matrix accepted")
	}
	rect := &CSR{Rows: 2, Cols: 3, Ptr: []int32{0, 0, 0}}
	if _, err := ToSYM(rect); err == nil {
		t.Fatal("rectangular matrix accepted")
	}
	// Structurally symmetric but numerically not.
	coo := NewCOO(2, 2, 4)
	coo.Append(0, 0, 1)
	coo.Append(0, 1, 2)
	coo.Append(1, 0, 3) // != 2
	coo.Append(1, 1, 1)
	if _, err := ToSYM(coo.ToCSR()); err == nil {
		t.Fatal("numerically unsymmetric matrix accepted")
	}
}

func TestSYMIdentity(t *testing.T) {
	s, err := ToSYM(Identity(9))
	if err != nil {
		t.Fatal(err)
	}
	if s.StoredNNZ() != 9 || s.LogicalNNZ() != 9 {
		t.Fatalf("identity SYM: stored %d logical %d", s.StoredNNZ(), s.LogicalNNZ())
	}
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	y := make([]float64, 9)
	s.MulVec(y, x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatal("identity product wrong")
		}
	}
}
