package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format (triplet) sparse matrix. It is the natural
// assembly format: entries may be appended in any order and duplicates are
// summed when converting to CSR, mirroring finite-element assembly.
type COO struct {
	Name       string
	Rows, Cols int
	I, J       []int32
	V          []float64
}

// NewCOO returns an empty COO matrix of the given dimensions with capacity
// for capHint entries.
func NewCOO(rows, cols, capHint int) *COO {
	return &COO{
		Rows: rows,
		Cols: cols,
		I:    make([]int32, 0, capHint),
		J:    make([]int32, 0, capHint),
		V:    make([]float64, 0, capHint),
	}
}

// NNZ returns the number of stored triplets (duplicates counted separately).
func (c *COO) NNZ() int { return len(c.V) }

// Append adds the entry (i, j, v). It panics when (i, j) is out of range so
// assembly bugs surface at the insertion site rather than at conversion.
func (c *COO) Append(i, j int, v float64) {
	if i < 0 || i >= c.Rows || j < 0 || j >= c.Cols {
		panic(fmt.Sprintf("sparse: COO entry (%d,%d) outside %dx%d", i, j, c.Rows, c.Cols))
	}
	c.I = append(c.I, int32(i))
	c.J = append(c.J, int32(j))
	c.V = append(c.V, v)
}

// MulVec computes y = A·x directly from the triplets. y is zeroed first.
func (c *COO) MulVec(y, x []float64) {
	if len(x) != c.Cols || len(y) != c.Rows {
		panic("sparse: COO MulVec dimension mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	for k := range c.V {
		y[c.I[k]] += c.V[k] * x[c.J[k]]
	}
}

// ToCSR converts to CSR, sorting entries into row-major order and summing
// duplicate coordinates. The receiver is not modified.
func (c *COO) ToCSR() *CSR {
	type ent struct {
		i, j int32
		v    float64
	}
	ents := make([]ent, len(c.V))
	for k := range c.V {
		ents[k] = ent{c.I[k], c.J[k], c.V[k]}
	}
	sort.Slice(ents, func(a, b int) bool {
		if ents[a].i != ents[b].i {
			return ents[a].i < ents[b].i
		}
		return ents[a].j < ents[b].j
	})

	m := &CSR{
		Name: c.Name,
		Rows: c.Rows,
		Cols: c.Cols,
		Ptr:  make([]int32, c.Rows+1),
	}
	m.Index = make([]int32, 0, len(ents))
	m.Val = make([]float64, 0, len(ents))
	for k := 0; k < len(ents); {
		e := ents[k]
		v := e.v
		k++
		for k < len(ents) && ents[k].i == e.i && ents[k].j == e.j {
			v += ents[k].v
			k++
		}
		m.Index = append(m.Index, e.j)
		m.Val = append(m.Val, v)
		m.Ptr[e.i+1]++
	}
	for i := 0; i < c.Rows; i++ {
		m.Ptr[i+1] += m.Ptr[i]
	}
	return m
}

// FromCSR expands a CSR matrix back into triplets in row-major order.
func FromCSR(m *CSR) *COO {
	c := NewCOO(m.Rows, m.Cols, m.NNZ())
	c.Name = m.Name
	for i := 0; i < m.Rows; i++ {
		for k := m.Ptr[i]; k < m.Ptr[i+1]; k++ {
			c.I = append(c.I, int32(i))
			c.J = append(c.J, m.Index[k])
			c.V = append(c.V, m.Val[k])
		}
	}
	return c
}
