package trace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func TestTouchColdAndImmediate(t *testing.T) {
	r := NewReuseAnalyzer(8)
	if d := r.Touch(100); d != Infinite {
		t.Fatalf("first touch distance = %d, want Infinite", d)
	}
	if d := r.Touch(100); d != 0 {
		t.Fatalf("immediate re-touch distance = %d, want 0", d)
	}
	if d := r.Touch(200); d != Infinite {
		t.Fatalf("new key distance = %d, want Infinite", d)
	}
	if d := r.Touch(100); d != 1 {
		t.Fatalf("one-intervening distance = %d, want 1", d)
	}
}

func TestTouchCyclicPattern(t *testing.T) {
	// Cycling through k distinct keys gives distance k-1 after warmup.
	const k = 5
	r := NewReuseAnalyzer(64)
	for round := 0; round < 4; round++ {
		for key := uint64(0); key < k; key++ {
			d := r.Touch(key)
			if round == 0 {
				if d != Infinite {
					t.Fatalf("round 0 key %d: distance %d", key, d)
				}
			} else if d != k-1 {
				t.Fatalf("round %d key %d: distance %d, want %d", round, key, d, k-1)
			}
		}
	}
}

func TestTouchRepeatedIntervening(t *testing.T) {
	// Distance counts *distinct* intervening keys, not accesses.
	r := NewReuseAnalyzer(16)
	r.Touch(1)
	r.Touch(2)
	r.Touch(2)
	r.Touch(2)
	if d := r.Touch(1); d != 1 {
		t.Fatalf("distance = %d, want 1 (key 2 repeated)", d)
	}
}

func TestAnalyzerGrowth(t *testing.T) {
	// Start tiny and force several growth cycles; the distances of a
	// cyclic pattern must stay exact.
	r := NewReuseAnalyzer(1)
	const k = 7
	for round := 0; round < 30; round++ {
		for key := uint64(0); key < k; key++ {
			d := r.Touch(key)
			if round > 0 && d != k-1 {
				t.Fatalf("round %d: distance %d, want %d", round, d, k-1)
			}
		}
	}
	p := r.Profile()
	if p.Accesses != 30*k || p.Cold != k {
		t.Fatalf("profile = %+v", p)
	}
}

func TestProfileCounts(t *testing.T) {
	r := NewReuseAnalyzer(16)
	r.Touch(1)
	r.Touch(2)
	r.Touch(1) // distance 1
	r.Touch(1) // distance 0
	p := r.Profile()
	if p.Accesses != 4 || p.Cold != 2 || p.DistinctKeys != 2 {
		t.Fatalf("profile = %+v", p)
	}
	if p.Hist[0] != 1 || p.Hist[1] != 1 {
		t.Fatalf("hist = %v", p.Hist[:4])
	}
	if p.MaxDistance != 1 {
		t.Fatalf("max distance = %d", p.MaxDistance)
	}
	if p.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestHitRatioAtCapacity(t *testing.T) {
	// Cyclic over 8 keys: all re-accesses have distance 7. A capacity-8
	// LRU hits them all; capacity 4 misses them all.
	r := NewReuseAnalyzer(128)
	for round := 0; round < 10; round++ {
		for key := uint64(0); key < 8; key++ {
			r.Touch(key)
		}
	}
	p := r.Profile()
	reaccess := float64(p.Accesses-p.Cold) / float64(p.Accesses)
	if got := p.HitRatioAtCapacity(8); got < reaccess-0.01 {
		t.Fatalf("capacity-8 hit ratio %.3f, want ~%.3f", got, reaccess)
	}
	if got := p.HitRatioAtCapacity(4); got > 0.35*reaccess {
		t.Fatalf("capacity-4 hit ratio %.3f, want near 0", got)
	}
	if p.HitRatioAtCapacity(0) != 0 {
		t.Fatal("zero capacity must miss everything")
	}
	if (Profile{}).HitRatioAtCapacity(8) != 0 {
		t.Fatal("empty profile hit ratio != 0")
	}
}

func TestHitRatioMonotoneInCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewReuseAnalyzer(4096)
	for i := 0; i < 4096; i++ {
		r.Touch(uint64(rng.Intn(300)))
	}
	p := r.Profile()
	prev := -1.0
	for _, c := range []int64{1, 2, 4, 16, 64, 256, 1024} {
		h := p.HitRatioAtCapacity(c)
		if h < prev-1e-12 {
			t.Fatalf("hit ratio not monotone at capacity %d: %v < %v", c, h, prev)
		}
		if h < 0 || h > 1 {
			t.Fatalf("hit ratio %v outside [0,1]", h)
		}
		prev = h
	}
}

func TestXLineTraceLocalVsRandom(t *testing.T) {
	local := sparse.Generate(sparse.Gen{Name: "l", Class: sparse.PatternBanded, N: 4000, NNZTarget: 40000, Bandwidth: 64, Seed: 1})
	random := sparse.Generate(sparse.Gen{Name: "r", Class: sparse.PatternRandom, N: 4000, NNZTarget: 40000, Seed: 1})
	pl := XLineTrace(local, 32)
	pr := XLineTrace(random, 32)
	// At an L1-like capacity (512 lines) the banded matrix's x accesses
	// must hit far more often than the random one's.
	hl, hr := pl.HitRatioAtCapacity(512), pr.HitRatioAtCapacity(512)
	if hl <= hr {
		t.Fatalf("banded x hit ratio %.3f not above random %.3f", hl, hr)
	}
	if hl < 0.5 {
		t.Fatalf("banded x hit ratio %.3f suspiciously low", hl)
	}
}

func TestStreamLineTraceHasLineReuseOnly(t *testing.T) {
	a := sparse.Generate(sparse.Gen{Name: "s", Class: sparse.PatternBanded, N: 1000, NNZTarget: 8000, Seed: 2})
	p := StreamLineTrace(a, 32)
	// A pure stream revisits each line only while inside it: every
	// finite distance must be 0.
	for b := 1; b < len(p.Hist); b++ {
		if p.Hist[b] != 0 {
			t.Fatalf("stream trace has distance bucket %d populated", b)
		}
	}
	if p.Cold == 0 || p.Hist[0] == 0 {
		t.Fatalf("stream profile degenerate: %+v", p)
	}
}

func TestTracePanicsOnBadLine(t *testing.T) {
	a := sparse.Identity(4)
	for _, f := range []func(){
		func() { XLineTrace(a, 0) },
		func() { StreamLineTrace(a, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad line size did not panic")
				}
			}()
			f()
		}()
	}
}

// TestExactVsBucketedDivergence pins the bucketing error of the log2
// histogram at a non-power-of-two capacity: all re-accesses in the stream
// have distance 2 (bucket 2 spans distances 2..3), so a capacity-3 LRU
// hits every one of them. The bucketed estimate splits the straddled
// bucket 50/50 and reports only half the hits; the exact histogram must
// report them all.
func TestExactVsBucketedDivergence(t *testing.T) {
	mk := func(exactBound int) Profile {
		r := NewReuseAnalyzerExact(64, exactBound)
		// Cycle over 3 keys: after warmup every access has distance 2.
		for round := 0; round < 100; round++ {
			for key := uint64(0); key < 3; key++ {
				r.Touch(key)
			}
		}
		return r.Profile()
	}

	exact := mk(8)
	bucketed := mk(0) // no exact histogram: falls back to log2 buckets

	reaccess := float64(exact.Accesses-exact.Cold) / float64(exact.Accesses)
	if got := exact.HitRatioAtCapacity(3); got != reaccess {
		t.Fatalf("exact capacity-3 hit ratio = %v, want %v", got, reaccess)
	}
	got := bucketed.HitRatioAtCapacity(3)
	want := reaccess / 2 // proportional split of bucket [2,3]
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("bucketed capacity-3 hit ratio = %v, want %v (half the bucket)", got, want)
	}
	// The divergence is the full half-bucket mass — this is the error the
	// HitRatioAtCapacity godoc documents.
	if div := exact.HitRatioAtCapacity(3) - got; div < 0.45 {
		t.Fatalf("exact-vs-bucketed divergence %v, want ~%v", div, reaccess/2)
	}
	// At bucket boundaries (power-of-two capacities) the two must agree.
	for _, c := range []int64{1, 2, 4, 8} {
		e, b := exact.HitRatioAtCapacity(c), bucketed.HitRatioAtCapacity(c)
		if d := e - b; d > 1e-12 || d < -1e-12 {
			t.Fatalf("capacity %d: exact %v != bucketed %v at bucket boundary", c, e, b)
		}
	}
	// Beyond the exact bound the exact profile falls back to buckets too.
	if e, b := exact.HitRatioAtCapacity(9), bucketed.HitRatioAtCapacity(9); e != b {
		t.Fatalf("above bound: exact-profile ratio %v != bucketed %v", e, b)
	}
}

// Property: distances computed by the Fenwick analyzer match a brute-force
// LRU stack simulation.
func TestQuickReuseMatchesBruteForce(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		r := NewReuseAnalyzer(4)
		var stack []uint64 // most recent first
		for i := 0; i < n; i++ {
			key := uint64(rng.Intn(20))
			got := r.Touch(key)
			// Brute force: position in stack = distance.
			want := Infinite
			for pos, k := range stack {
				if k == key {
					want = int64(pos)
					stack = append(stack[:pos], stack[pos+1:]...)
					break
				}
			}
			stack = append([]uint64{key}, stack...)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
