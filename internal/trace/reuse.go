// Package trace provides memory-trace analysis: LRU reuse-distance (stack
// distance) profiles of access streams, and generators for the access
// streams of the CSR SpMV kernel. The paper attributes the SCC's SpMV
// behaviour to the locality of the irregular x accesses; reuse-distance
// profiles quantify exactly that, independent of any particular cache
// geometry: an access with stack distance d hits in a fully-associative LRU
// cache of capacity > d and misses in a smaller one.
package trace

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// Infinite is the reuse distance of a cold (first) access.
const Infinite = int64(math.MaxInt64)

// ReuseAnalyzer computes LRU stack distances online in O(log n) per access
// using a Fenwick tree over access timestamps.
type ReuseAnalyzer struct {
	bit      []int64
	lastTime map[uint64]int
	now      int
	// hist[d] counts accesses with floor(log2(distance+1)) == d;
	// cold accesses are counted separately.
	hist [64]uint64
	cold uint64
	n    uint64
	// maxCap tracks the largest finite distance seen.
	maxDist int64
	// exact, when non-nil, counts distances d < len(exact) individually
	// (no log2 bucketing); distances at or beyond the bound still land in
	// the log2 histogram only.
	exact []uint64
}

// NewReuseAnalyzer returns an analyzer sized for about capHint accesses
// (it grows as needed).
func NewReuseAnalyzer(capHint int) *ReuseAnalyzer {
	if capHint < 16 {
		capHint = 16
	}
	return &ReuseAnalyzer{
		bit:      make([]int64, capHint+1),
		lastTime: make(map[uint64]int, capHint/4),
	}
}

// NewReuseAnalyzerExact returns an analyzer that additionally keeps an
// exact (per-distance) histogram for distances below bound. Capacities up
// to the bound can then be priced without the factor-of-two bucketing
// error of the log2 histogram; memory cost is 8*bound bytes.
func NewReuseAnalyzerExact(capHint, bound int) *ReuseAnalyzer {
	r := NewReuseAnalyzer(capHint)
	if bound > 0 {
		r.exact = make([]uint64, bound)
	}
	return r
}

// Touch records an access to the given key (typically a cache-line address)
// and returns its LRU stack distance: the number of distinct keys accessed
// since this key's previous access, or Infinite for a cold access.
func (r *ReuseAnalyzer) Touch(key uint64) int64 {
	r.now++
	if r.now >= len(r.bit) {
		grown := make([]int64, 2*len(r.bit))
		// Rebuild the Fenwick tree from the raw marks.
		marks := make([]bool, len(r.bit))
		for t := 1; t < len(r.bit); t++ {
			marks[t] = r.rangeSum(t, t) == 1
		}
		r.bit = grown
		for t := 1; t < len(marks); t++ {
			if marks[t] {
				r.add(t, 1)
			}
		}
	}
	dist := Infinite
	if prev, ok := r.lastTime[key]; ok {
		dist = r.rangeSum(prev+1, r.now-1)
		r.add(prev, -1)
	}
	r.add(r.now, 1)
	r.lastTime[key] = r.now

	r.n++
	if dist == Infinite {
		r.cold++
	} else {
		r.hist[log2bucket(dist)]++
		if dist < int64(len(r.exact)) {
			r.exact[dist]++
		}
		if dist > r.maxDist {
			r.maxDist = dist
		}
	}
	return dist
}

func log2bucket(d int64) int {
	b := 0
	for v := d; v > 0; v >>= 1 {
		b++
	}
	return b // distance 0 -> bucket 0, 1 -> 1, 2..3 -> 2, ...
}

// fenwick add/query (1-indexed).
func (r *ReuseAnalyzer) add(i int, v int64) {
	for ; i < len(r.bit); i += i & (-i) {
		r.bit[i] += v
	}
}

func (r *ReuseAnalyzer) prefix(i int) int64 {
	var s int64
	for ; i > 0; i -= i & (-i) {
		s += r.bit[i]
	}
	return s
}

func (r *ReuseAnalyzer) rangeSum(lo, hi int) int64 {
	if lo > hi {
		return 0
	}
	return r.prefix(hi) - r.prefix(lo-1)
}

// Profile summarises the distances seen so far.
type Profile struct {
	// Accesses and Cold count total and first-touch accesses.
	Accesses, Cold uint64
	// Hist buckets finite distances by floor(log2): Hist[0] is distance
	// 0, Hist[1] is 1, Hist[2] is 2-3, Hist[3] is 4-7, ...
	Hist [64]uint64
	// MaxDistance is the largest finite distance.
	MaxDistance int64
	// DistinctKeys is the number of distinct keys touched.
	DistinctKeys int
	// Exact, when non-nil, counts each distance d < ExactBound
	// individually (see NewReuseAnalyzerExact); Exact[d] accesses had
	// stack distance exactly d. Distances >= ExactBound appear only in
	// the bucketed Hist.
	Exact      []uint64
	ExactBound int64
}

// Profile returns a snapshot of the accumulated distance profile.
func (r *ReuseAnalyzer) Profile() Profile {
	return Profile{
		Accesses:     r.n,
		Cold:         r.cold,
		Hist:         r.hist,
		MaxDistance:  r.maxDist,
		DistinctKeys: len(r.lastTime),
		Exact:        append([]uint64(nil), r.exact...),
		ExactBound:   int64(len(r.exact)),
	}
}

// HitRatioAtCapacity estimates the hit ratio of a fully-associative LRU
// cache holding capacity keys: the fraction of accesses with distance <
// capacity.
//
// When the profile carries an exact histogram (NewReuseAnalyzerExact) and
// capacity <= ExactBound, the result is exact. Otherwise the log2-bucketed
// histogram is used and the bucket straddling the capacity is split
// proportionally, assuming distances are uniform within the bucket. The
// true distances in bucket b all lie in [2^(b-1), 2^b - 1], so a capacity
// cutting through a bucket can be misattributed by up to that bucket's
// whole population: the estimate is only guaranteed to agree with the
// exact ratio at power-of-two capacities (bucket boundaries), and
// in-between it can err by the mass of one factor-of-two band (see
// TestExactVsBucketedDivergence for a stream where the divergence reaches
// the full bucket fraction).
func (p Profile) HitRatioAtCapacity(capacity int64) float64 {
	if p.Accesses == 0 || capacity <= 0 {
		return 0
	}
	if capacity <= p.ExactBound {
		var hits uint64
		for _, c := range p.Exact[:capacity] {
			hits += c
		}
		return float64(hits) / float64(p.Accesses)
	}
	var hits float64
	for b, c := range p.Hist {
		if c == 0 {
			continue
		}
		lo, hi := bucketRange(b)
		switch {
		case hi < capacity:
			hits += float64(c)
		case lo >= capacity:
			// all misses
		default:
			frac := float64(capacity-lo) / float64(hi-lo+1)
			hits += float64(c) * frac
		}
	}
	return hits / float64(p.Accesses)
}

// bucketRange returns the inclusive distance range of histogram bucket b.
func bucketRange(b int) (lo, hi int64) {
	if b == 0 {
		return 0, 0
	}
	return int64(1) << (b - 1), int64(1)<<b - 1
}

// String implements fmt.Stringer with a compact profile summary.
func (p Profile) String() string {
	return fmt.Sprintf("accesses=%d cold=%d distinct=%d max=%d",
		p.Accesses, p.Cold, p.DistinctKeys, p.MaxDistance)
}

// XLineTrace feeds the analyzer the cache-line trace of the SpMV x-vector
// accesses for the given matrix and line size: the exact irregular stream
// the paper's Section IV-C isolates. It returns the resulting profile.
func XLineTrace(a *sparse.CSR, lineBytes int) Profile {
	if lineBytes <= 0 {
		panic("trace: non-positive line size")
	}
	r := NewReuseAnalyzer(a.NNZ())
	for i := 0; i < a.Rows; i++ {
		for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
			addr := uint64(a.Index[k]) * 8 // float64 x entries
			r.Touch(addr / uint64(lineBytes))
		}
	}
	return r.Profile()
}

// StreamLineTrace profiles the unit-stride val/index streams (mostly for
// contrast with XLineTrace: streams have no reuse beyond the line).
func StreamLineTrace(a *sparse.CSR, lineBytes int) Profile {
	if lineBytes <= 0 {
		panic("trace: non-positive line size")
	}
	r := NewReuseAnalyzer(a.NNZ())
	for k := 0; k < a.NNZ(); k++ {
		r.Touch(uint64(k) * 8 / uint64(lineBytes)) // val stream
	}
	return r.Profile()
}
