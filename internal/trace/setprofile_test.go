package trace

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
)

// access is one step of a synthetic line stream.
type access struct {
	line  uint64
	kind  AccessKind
	store bool
}

func randomStream(seed int64, n, lines int) []access {
	rng := rand.New(rand.NewSource(seed))
	out := make([]access, n)
	for i := range out {
		k := DemandRead
		switch rng.Intn(5) {
		case 0:
			k = DemandStore
		case 1:
			k = ForwardedStore
		}
		out[i] = access{
			line:  uint64(rng.Intn(lines)),
			kind:  k,
			store: k != DemandRead,
		}
	}
	return out
}

// TestSetProfileMatchesTrueLRUCache is the core oracle of the analytic
// pricing path: for every covered (sets, ways) geometry, the counts priced
// from one SetAnalyzer pass must equal an actual TrueLRU cache simulation
// of the same stream - hits, misses and dirty write-backs.
func TestSetProfileMatchesTrueLRUCache(t *testing.T) {
	const lineBytes = 32
	cfg := SetConfig{MinSetsLog2: 0, MaxSetsLog2: 5, MaxWays: 6}
	for _, seed := range []int64{1, 2, 3} {
		stream := randomStream(seed, 4000, 300)
		a := NewSetAnalyzer(cfg)
		for _, ac := range stream {
			a.Touch(ac.line, ac.kind)
		}
		p := a.Profile()

		for s := cfg.MinSetsLog2; s <= cfg.MaxSetsLog2; s++ {
			for ways := 1; ways <= cfg.MaxWays; ways++ {
				c := cache.New(cache.Config{
					SizeBytes:   (1 << uint(s)) * ways * lineBytes,
					LineBytes:   lineBytes,
					Ways:        ways,
					WriteBack:   true,
					Replacement: cache.TrueLRU,
				})
				var wantHits, wantMisses uint64
				for _, ac := range stream {
					r := c.Access(ac.line*lineBytes, ac.store)
					if r.Hit {
						wantHits++
					} else {
						wantMisses++
					}
				}
				got, ok := p.Price(s, ways)
				if !ok {
					t.Fatalf("seed %d: profile does not cover sets=2^%d ways=%d", seed, s, ways)
				}
				if hits := got.DemandHits + got.FwdHits; hits != wantHits {
					t.Fatalf("seed %d sets=2^%d ways=%d: priced hits %d, cache %d", seed, s, ways, hits, wantHits)
				}
				if misses := got.DemandMisses + got.FwdMisses; misses != wantMisses {
					t.Fatalf("seed %d sets=2^%d ways=%d: priced misses %d, cache %d", seed, s, ways, misses, wantMisses)
				}
				if wb := c.Stats().WriteBacks; got.WriteBacks != wb {
					t.Fatalf("seed %d sets=2^%d ways=%d: priced write-backs %d, cache %d", seed, s, ways, got.WriteBacks, wb)
				}
			}
		}
	}
}

// TestSetProfileWarmupSplit mirrors the simulator's two-pass protocol:
// stack state advances through a non-recording warm-up, counts cover only
// the recorded pass, and they equal a real cache run with ResetStats at
// the pass boundary.
func TestSetProfileWarmupSplit(t *testing.T) {
	const lineBytes = 32
	cfg := SetConfig{MinSetsLog2: 1, MaxSetsLog2: 3, MaxWays: 4}
	stream := randomStream(7, 2000, 120)

	a := NewSetAnalyzer(cfg)
	a.SetRecording(false)
	for _, ac := range stream {
		a.Touch(ac.line, ac.kind)
	}
	a.SetRecording(true)
	for _, ac := range stream {
		a.Touch(ac.line, ac.kind)
	}
	p := a.Profile()

	for s := cfg.MinSetsLog2; s <= cfg.MaxSetsLog2; s++ {
		for ways := 1; ways <= cfg.MaxWays; ways++ {
			c := cache.New(cache.Config{
				SizeBytes:   (1 << uint(s)) * ways * lineBytes,
				LineBytes:   lineBytes,
				Ways:        ways,
				WriteBack:   true,
				Replacement: cache.TrueLRU,
			})
			for _, ac := range stream {
				c.Access(ac.line*lineBytes, ac.store)
			}
			c.ResetStats()
			for _, ac := range stream {
				c.Access(ac.line*lineBytes, ac.store)
			}
			got, _ := p.Price(s, ways)
			st := c.Stats()
			if hits := got.DemandHits + got.FwdHits; hits != st.Hits {
				t.Fatalf("sets=2^%d ways=%d: warmed hits %d, cache %d", s, ways, hits, st.Hits)
			}
			if got.WriteBacks != st.WriteBacks {
				t.Fatalf("sets=2^%d ways=%d: warmed write-backs %d, cache %d", s, ways, got.WriteBacks, st.WriteBacks)
			}
		}
	}
}

// TestSetProfileKindSplit checks the demand/forwarded split: a stream of
// forwarded stores only must land entirely in FwdHist.
func TestSetProfileKindSplit(t *testing.T) {
	a := NewSetAnalyzer(SetConfig{MinSetsLog2: 0, MaxSetsLog2: 0, MaxWays: 2})
	a.Touch(1, ForwardedStore)
	a.Touch(1, ForwardedStore)
	a.Touch(2, DemandRead)
	p := a.Profile()
	got, _ := p.Price(0, 2)
	if got.FwdHits != 1 || got.FwdMisses != 1 {
		t.Fatalf("fwd split = %+v", got)
	}
	if got.DemandHits != 0 || got.DemandMisses != 1 {
		t.Fatalf("demand split = %+v", got)
	}
}

// TestSetProfileCoverage pins the Covers/Price bounds behaviour.
func TestSetProfileCoverage(t *testing.T) {
	a := NewSetAnalyzer(SetConfig{MinSetsLog2: 2, MaxSetsLog2: 4, MaxWays: 8})
	p := a.Profile()
	for _, bad := range [][2]int{{1, 4}, {5, 4}, {3, 0}, {3, 9}} {
		if _, ok := p.Price(bad[0], bad[1]); ok {
			t.Fatalf("Price(%d, %d) unexpectedly covered", bad[0], bad[1])
		}
	}
	if _, ok := p.Price(3, 8); !ok {
		t.Fatal("Price(3, 8) not covered")
	}
	if p.SizeBytes() <= 0 {
		t.Fatal("non-positive profile size")
	}
	if err := (SetConfig{MinSetsLog2: 3, MaxSetsLog2: 2, MaxWays: 4}).Validate(); err == nil {
		t.Fatal("inverted set range validated")
	}
	if err := (SetConfig{MinSetsLog2: 0, MaxSetsLog2: 2, MaxWays: 0}).Validate(); err == nil {
		t.Fatal("zero MaxWays validated")
	}
}
