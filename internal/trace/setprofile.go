package trace

import "fmt"

// This file implements the "trace-once, price-many" profile: a write-aware
// LRU stack-distance analysis of a cache-line access stream carried out at
// several set counts simultaneously. Because LRU is a stack algorithm, a
// set-associative LRU cache with 2^s sets holds, in every set, exactly the
// MaxWays most recently used lines of that set; an access whose per-set
// stack distance is d hits every cache with 2^s sets and more than d ways.
// One pass over the stream therefore yields exact hit, miss and write-back
// counts for EVERY geometry (sets = 2^s within the configured range, ways
// <= MaxWays) - the Hill & Smith all-associativity method extended with
// per-way write-back accounting.
//
// Write-backs use a per-entry clean-below threshold tau: a line is dirty in
// the W-way cache iff W > tau. A store makes the line dirty everywhere
// (tau = 0); a read at stack distance d refetches the line cleanly into
// every cache that missed (tau = max(tau, d)); and an entry shifting from
// stack position W-1 to W is, at that moment, the line the W-way cache
// evicts, so it contributes a write-back to the W-way geometry iff tau < W.
//
// The write-back bookkeeping is deferred for speed: tau is constant between
// two touches of an entry, so the dirty crossings of its whole descent - a
// contiguous associativity span (max(tau, base), d] - are settled in O(1)
// against a per-level difference array when the entry is next touched,
// evicted, or snapshotted, instead of per position during every shift. The
// base field excludes descent that happened while recording was off.

// AccessKind classifies one access of the profiled (L1-to-L2) stream. The
// distinction mirrors internal/cache.Hierarchy accounting: demand accesses
// are L1 misses (their L2 misses become demand memory accesses), forwarded
// stores are write-through L1 store hits passed below (their L2 misses add
// a write-allocate line fill but no demand memory access).
type AccessKind int

const (
	// DemandRead is an L1 read miss probing the L2.
	DemandRead AccessKind = iota
	// DemandStore is an L1 store miss forwarded to the L2 as a store
	// (write-through L1: the miss carries the dirty data down).
	DemandStore
	// ForwardedStore is a write-through L1 store hit forwarded below.
	ForwardedStore
)

// SetConfig bounds the geometries a SetAnalyzer can price: set counts
// 2^MinSetsLog2 .. 2^MaxSetsLog2 and associativities 1..MaxWays.
type SetConfig struct {
	MinSetsLog2, MaxSetsLog2 int
	MaxWays                  int
}

// Validate checks the bounds. MaxSetsLog2 is capped at 20 because every
// level allocates a dense per-set index (2^s slice headers).
func (c SetConfig) Validate() error {
	if c.MinSetsLog2 < 0 || c.MaxSetsLog2 < c.MinSetsLog2 || c.MaxSetsLog2 > 20 {
		return fmt.Errorf("trace: bad set range [%d, %d]", c.MinSetsLog2, c.MaxSetsLog2)
	}
	if c.MaxWays < 1 || c.MaxWays > 64 {
		return fmt.Errorf("trace: MaxWays %d outside 1..64", c.MaxWays)
	}
	return nil
}

// Covers reports whether a (sets = 2^setsLog2, ways) geometry is priceable.
func (c SetConfig) Covers(setsLog2, ways int) bool {
	return setsLog2 >= c.MinSetsLog2 && setsLog2 <= c.MaxSetsLog2 &&
		ways >= 1 && ways <= c.MaxWays
}

// Each resident line is one packed uint64: the line number in the high
// bits, below it tau (the clean-below threshold: the line is dirty in a
// W-way cache iff W > tau) and base (the floor of the entry's accountable
// descent: dirty crossings at associativities <= base happened while
// recording was off, or were already settled, and must not be charged;
// it is the entry's stack position at the most recent recording flip,
// 0 otherwise). Packing keeps a whole 8-way set in one 64-byte host
// cache line, which matters because the profile build is bound by the
// scattered per-level state it touches per access, not by arithmetic.
const (
	entryMetaBits = 14 // tau and base, 7 bits each (ways <= 64)
	entryTauShift = 7
	entryFieldMax = 1 << 7

	// MaxLine is the largest cache-line number a SetAnalyzer accepts:
	// lines share their packed entry with the metadata fields above.
	MaxLine = 1<<(64-entryMetaBits) - 1
)

func packEntry(line uint64, tau, base int32) uint64 {
	return line<<entryMetaBits | uint64(tau)<<entryTauShift | uint64(base)
}

func entryLine(e uint64) uint64 { return e >> entryMetaBits }
func entryTau(e uint64) int32   { return int32(e >> entryTauShift & (entryFieldMax - 1)) }
func entryBase(e uint64) int32  { return int32(e & (entryFieldMax - 1)) }

// setLevel tracks one set count: per-set LRU stacks truncated at ways
// entries plus the per-distance histograms and deferred write-back spans.
// The stacks live in one flat array: set s occupies the ways-sized chunk
// at s*ways as a circular buffer whose MRU slot is heads[s], so a miss -
// the dominant case of an L1-filtered stream - inserts in O(1) by
// rotating the head instead of shifting the whole stack. This layout
// plus the deferred write-back accounting is worth several x on the
// build over the map-of-slices it replaced.
type setLevel struct {
	mask  uint64
	ways  int
	ents  []uint64
	heads []uint8
	lens  []uint8
	// demandHist[d] / fwdHist[d] count accesses at per-set stack distance
	// exactly d for d < ways; index ways pools distances >= ways and cold
	// accesses (a miss at every priceable associativity).
	demandHist []uint64
	fwdHist    []uint64
	// wbDiff accumulates dirty-crossing spans as a difference array over
	// associativity: a descent span (a, b] adds +1 at a+1 and -1 at b+1;
	// writeBacks[W] is the prefix sum 1..W, materialised by Profile.
	wbDiff []int64
}

// settle charges an entry's pending dirty crossings - the associativity
// span (max(tau, base), pos] - against a difference array.
func settle(diff []int64, e uint64, pos int32) {
	a := entryTau(e)
	if b := entryBase(e); b > a {
		a = b
	}
	if a < pos {
		diff[a+1]++
		diff[pos+1]--
	}
}

// touch records one access at this level and returns the per-set stack
// distance (ways meaning "missed everywhere"). from is a proven lower
// bound on the distance (a finer level's result; 0 when unknown), letting
// the scan skip positions the entry cannot occupy. Stack state always
// advances; histograms and write-back spans accumulate only while
// recording (the timed pass), matching the warm-up/ResetStats split of
// the exact simulator.
func (l *setLevel) touch(line uint64, store, recording bool, from int) int {
	ways := l.ways
	set := line & l.mask
	b := int(set) * ways
	head := int(l.heads[set])
	n := int(l.lens[set])
	// Distance-0 fast path: an MRU re-touch moves nothing and has no
	// pending descent span to settle ((max(tau, base), 0] is empty).
	if from == 0 && n > 0 && entryLine(l.ents[b+head]) == line {
		if store {
			l.ents[b+head] = packEntry(line, 0, entryBase(l.ents[b+head]))
		}
		return 0
	}
	if from < 1 {
		from = 1
	}
	for j := from; j < n; j++ {
		p := head + j
		if p >= ways {
			p -= ways
		}
		e := l.ents[b+p]
		if entryLine(e) != line {
			continue
		}
		if recording {
			// The hit settles this entry's own descent; the entries above
			// it merely slide down one position each, which their own next
			// settle covers.
			settle(l.wbDiff, e, int32(j))
		}
		tau := entryTau(e)
		if store {
			tau = 0
		} else if int32(j) > tau {
			tau = int32(j)
		}
		// Move to front: slide logical 0..j-1 down one slot, then
		// reinsert at the head.
		dst := p
		for k := j - 1; k >= 0; k-- {
			src := head + k
			if src >= ways {
				src -= ways
			}
			l.ents[b+dst] = l.ents[b+src]
			dst = src
		}
		l.ents[b+head] = packEntry(line, tau, 0)
		return j
	}
	l.insertMiss(line, store, recording)
	return ways
}

// insertMiss records an access known to miss the truncated stack (either
// touch scanned and failed, or a finer level already missed): rotate the
// head back one slot and claim it.
func (l *setLevel) insertMiss(line uint64, store, recording bool) {
	ways := l.ways
	set := line & l.mask
	b := int(set) * ways
	n := int(l.lens[set])
	tau := int32(ways)
	if store {
		tau = 0
	}
	head := int(l.heads[set]) - 1
	if head < 0 {
		head += ways
	}
	if n < ways {
		// The claimed slot was vacant; the stack just grows.
		l.lens[set] = uint8(n + 1)
	} else if recording {
		// The claimed slot held the LRU entry: it has by now crossed
		// every boundary up to the ways-way eviction.
		settle(l.wbDiff, l.ents[b+head], int32(ways))
	}
	l.heads[set] = uint8(head)
	l.ents[b+head] = packEntry(line, tau, 0)
}

// SetAnalyzer runs the multi-geometry analysis online over a cache-line
// stream. It is not safe for concurrent use; each simulated UE owns one.
type SetAnalyzer struct {
	cfg       SetConfig
	levels    []setLevel
	recording bool
}

// NewSetAnalyzer builds an analyzer for the given geometry bounds; it
// panics on an invalid configuration (analyzers are constructed at
// simulator setup, where that is a programming error).
func NewSetAnalyzer(cfg SetConfig) *SetAnalyzer {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	a := &SetAnalyzer{cfg: cfg, recording: true}
	for s := cfg.MinSetsLog2; s <= cfg.MaxSetsLog2; s++ {
		sets := 1 << uint(s)
		a.levels = append(a.levels, setLevel{
			mask:       uint64(sets) - 1,
			ways:       cfg.MaxWays,
			ents:       make([]uint64, sets*cfg.MaxWays),
			heads:      make([]uint8, sets),
			lens:       make([]uint8, sets),
			demandHist: make([]uint64, cfg.MaxWays+1),
			fwdHist:    make([]uint64, cfg.MaxWays+1),
			wbDiff:     make([]int64, cfg.MaxWays+2),
		})
	}
	return a
}

// SetRecording gates histogram and write-back accumulation: stack state
// always advances so a warm-up pass (recording off) leaves the analyzer
// warmed exactly like the exact simulator's untimed pass leaves its caches.
// A flip re-bases every resident entry: turning recording on discards the
// unrecorded part of each descent; turning it off settles the recorded part
// before further unrecorded movement can blur it.
func (a *SetAnalyzer) SetRecording(on bool) {
	if on == a.recording {
		return
	}
	for i := range a.levels {
		l := &a.levels[i]
		for set, n := range l.lens {
			b, head := set*l.ways, int(l.heads[set])
			for j := 0; j < int(n); j++ {
				p := head + j
				if p >= l.ways {
					p -= l.ways
				}
				e := l.ents[b+p]
				if !on {
					settle(l.wbDiff, e, int32(j))
				}
				l.ents[b+p] = packEntry(entryLine(e), entryTau(e), int32(j))
			}
		}
	}
	a.recording = on
}

// Touch records one access to a cache-line number (not a byte address).
//
// Levels are walked finest (most sets) to coarsest: per-set stack
// distance is non-increasing in the set count (a finer set's residents
// are a subsequence of its coarser superset's), so each level's distance
// lower-bounds the next coarser one. The bound skips scan prefixes, and
// once any level misses its truncated stack the access has distance >=
// MaxWays everywhere coarser and takes the O(1) no-scan miss insert. On
// an L1-filtered stream - cold fills and far reuse - that is the
// dominant case.
func (a *SetAnalyzer) Touch(line uint64, kind AccessKind) {
	if line > MaxLine {
		panic(fmt.Sprintf("trace: line %#x exceeds MaxLine %#x", line, uint64(MaxLine)))
	}
	store := kind != DemandRead
	bound := 0
	for i := len(a.levels) - 1; i >= 0; i-- {
		l := &a.levels[i]
		if bound == a.cfg.MaxWays {
			l.insertMiss(line, store, a.recording)
			a.record(i, a.cfg.MaxWays, kind)
			continue
		}
		d := l.touch(line, store, a.recording, bound)
		a.record(i, d, kind)
		bound = d
	}
}

func (a *SetAnalyzer) record(level, d int, kind AccessKind) {
	if !a.recording {
		return
	}
	if kind == ForwardedStore {
		a.levels[level].fwdHist[d]++
	} else {
		a.levels[level].demandHist[d]++
	}
}

// SetLevelProfile is the recorded outcome at one set count.
type SetLevelProfile struct {
	SetsLog2 int
	// DemandHist and FwdHist index per-set stack distance; the last slot
	// pools distances >= MaxWays and cold accesses. WriteBacks indexes
	// associativity W (slot 0 unused).
	DemandHist, FwdHist []uint64
	WriteBacks          []uint64
}

// SetProfile is an immutable snapshot of a SetAnalyzer: everything needed
// to price any covered geometry in O(ways).
type SetProfile struct {
	Config SetConfig
	Levels []SetLevelProfile
}

// Profile snapshots the recorded histograms (the analyzer may keep going).
// Deferred write-back spans of still-resident entries are flushed into the
// snapshot without disturbing the live difference array.
func (a *SetAnalyzer) Profile() SetProfile {
	p := SetProfile{Config: a.cfg}
	for i := range a.levels {
		l := &a.levels[i]
		diff := append([]int64(nil), l.wbDiff...)
		if a.recording {
			for set, n := range l.lens {
				b, head := set*l.ways, int(l.heads[set])
				for j := 0; j < int(n); j++ {
					p := head + j
					if p >= l.ways {
						p -= l.ways
					}
					settle(diff, l.ents[b+p], int32(j))
				}
			}
		}
		wb := make([]uint64, a.cfg.MaxWays+1)
		var run int64
		for w := 1; w <= a.cfg.MaxWays; w++ {
			run += diff[w]
			wb[w] = uint64(run)
		}
		p.Levels = append(p.Levels, SetLevelProfile{
			SetsLog2:   a.cfg.MinSetsLog2 + i,
			DemandHist: append([]uint64(nil), l.demandHist...),
			FwdHist:    append([]uint64(nil), l.fwdHist...),
			WriteBacks: wb,
		})
	}
	return p
}

// SetPrice is the exact outcome of one LRU geometry over the recorded
// stream: hit/miss splits per access kind and the dirty write-back count.
type SetPrice struct {
	DemandHits, DemandMisses uint64
	FwdHits, FwdMisses       uint64
	WriteBacks               uint64
}

// Price returns the exact LRU counts for a (sets = 2^setsLog2, ways)
// geometry, or ok=false when the profile does not cover it.
func (p *SetProfile) Price(setsLog2, ways int) (SetPrice, bool) {
	if !p.Config.Covers(setsLog2, ways) {
		return SetPrice{}, false
	}
	l := &p.Levels[setsLog2-p.Config.MinSetsLog2]
	var out SetPrice
	for d, c := range l.DemandHist {
		if d < ways {
			out.DemandHits += c
		} else {
			out.DemandMisses += c
		}
	}
	for d, c := range l.FwdHist {
		if d < ways {
			out.FwdHits += c
		} else {
			out.FwdMisses += c
		}
	}
	out.WriteBacks = l.WriteBacks[ways]
	return out, true
}

// SizeBytes estimates the snapshot's memory footprint (cache accounting).
func (p *SetProfile) SizeBytes() int64 {
	var n int64 = 64
	for i := range p.Levels {
		l := &p.Levels[i]
		n += 32 + 8*int64(len(l.DemandHist)+len(l.FwdHist)+len(l.WriteBacks))
	}
	return n
}
