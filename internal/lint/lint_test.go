package lint

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// corpusLoader loads packages from testdata/src under the synthetic
// module path "corpus", so testdata/src/nondet becomes corpus/nondet.
func corpusLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return NewLoader(root, "corpus")
}

// wantRe extracts `...`- or "..."-quoted regexes from a trailing
// `// want` assertion, analysistest-style.
var (
	wantRe = regexp.MustCompile("want((?:\\s+(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"))+)")
	tokRe  = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// parseWants indexes every file's want assertions by (file, line).
func parseWants(t *testing.T, pkg *Package) map[string]map[int][]*expectation {
	t.Helper()
	wants := map[string]map[int][]*expectation{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, tok := range tokRe.FindAllString(m[1], -1) {
					var src string
					if strings.HasPrefix(tok, "`") {
						src = strings.Trim(tok, "`")
					} else {
						var err error
						src, err = strconv.Unquote(tok)
						if err != nil {
							t.Fatalf("%s: bad want token %s: %v", pos, tok, err)
						}
					}
					re, err := regexp.Compile(src)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, src, err)
					}
					if wants[pos.Filename] == nil {
						wants[pos.Filename] = map[int][]*expectation{}
					}
					wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], &expectation{re: re})
				}
			}
		}
	}
	return wants
}

// runCorpus loads one corpus package and checks its findings against the
// want assertions: every finding needs a matching want on its line, every
// want must be consumed exactly once.
func runCorpus(t *testing.T, dir string, conf Config) {
	t.Helper()
	pkg, err := corpusLoader(t).Load(dir)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}
	wants := parseWants(t, pkg)
	for _, f := range RunPackage(conf, pkg) {
		exps := wants[f.Pos.Filename][f.Pos.Line]
		consumed := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(f.Message) {
				e.matched = true
				consumed = true
				break
			}
		}
		if !consumed {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for file, byLine := range wants {
		for line, exps := range byLine {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: no finding matched want %q", file, line, e.re)
				}
			}
		}
	}
}

// runCorpusExpectClean asserts the package yields zero findings under the
// config, ignoring any want comments (used for exemption configs).
func runCorpusExpectClean(t *testing.T, dir string, conf Config) {
	t.Helper()
	pkg, err := corpusLoader(t).Load(dir)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}
	for _, f := range RunPackage(conf, pkg) {
		t.Errorf("unexpected finding under exemption config: %s", f)
	}
}

func TestNondeterminismCorpus(t *testing.T) {
	runCorpus(t, "nondet", Config{SimPackages: []string{"corpus/nondet"}})
}

func TestNondeterminismExemptPackage(t *testing.T) {
	// A package outside Config.SimPackages is not subject to the
	// determinism invariants (the goroutine analyzer is scoped off too).
	runCorpusExpectClean(t, "nondet", Config{GoroutineAllowed: []string{"corpus/nondet"}})
}

func TestGoroutineCorpus(t *testing.T) {
	runCorpus(t, "goroutine", Config{})
}

func TestGoroutineExemptPackage(t *testing.T) {
	runCorpusExpectClean(t, "goroutine", Config{GoroutineAllowed: []string{"corpus/goroutine"}})
}

func TestGeometryCorpus(t *testing.T) {
	runCorpus(t, "geometry", Config{GeometryPackages: []string{"corpus/geometry"}})
}

func TestGeometryExemptPackage(t *testing.T) {
	runCorpusExpectClean(t, "geometry", Config{})
}

func TestAtomicConsistencyCorpus(t *testing.T) {
	runCorpus(t, "atomicuse", Config{})
}

func TestResultAliasingCorpus(t *testing.T) {
	runCorpus(t, "aliasing", Config{})
}

func TestDirectiveCorpus(t *testing.T) {
	runCorpus(t, "directive", Config{SimPackages: []string{"corpus/directive"}})
}

func TestHashCoverageCorpus(t *testing.T) {
	runCorpus(t, "hashcov", Config{
		Run: []string{"hash-coverage"},
		HashContracts: []HashContract{{
			Package: "corpus/hashcov",
			Struct:  "Cfg",
			Funcs:   []string{"Canonical", "Key"},
		}},
	})
}

func TestHashCoverageOutOfScopePackage(t *testing.T) {
	// Without a contract naming this package the analyzer never runs, and
	// its //sccvet:allow directive is dormant rather than stale.
	runCorpusExpectClean(t, "hashcov", Config{Run: []string{"hash-coverage"}})
}

func TestCtxPropagationCorpus(t *testing.T) {
	runCorpus(t, "ctxprop", Config{Run: []string{"ctx-propagation"}})
}

func TestErrorDiscardCorpus(t *testing.T) {
	runCorpus(t, "errdiscard", Config{
		Run:                 []string{"error-discard"},
		ErrCriticalPackages: []string{"corpus/errdiscard/fakercce"},
	})
}

func TestErrorDiscardOutOfScopePackage(t *testing.T) {
	runCorpusExpectClean(t, "errdiscard", Config{Run: []string{"error-discard"}})
}

func TestCounterDriftCorpus(t *testing.T) {
	runCorpus(t, "counterdrift", Config{
		Run:            []string{"counter-drift"},
		MetricsPackage: "corpus/counterdrift/fakeobs",
		MetricNames: map[string]string{
			"engine.cells":        "counter",
			"engine.depth":        "gauge",
			"engine.walk":         "pool",
			"engine.wait_seconds": "histogram",
		},
	})
}

func TestCounterDriftOutOfScopePackage(t *testing.T) {
	runCorpusExpectClean(t, "counterdrift", Config{Run: []string{"counter-drift"}})
}

func TestLockAcrossBlockingCorpus(t *testing.T) {
	runCorpus(t, "lockblock", Config{
		Run: []string{"lock-across-blocking"},
		BlockingFuncs: map[string][]string{
			"corpus/lockblock/fakepool": {"Drain"},
		},
		SleepBanPackages: []string{"corpus/lockblock"},
	})
}

func TestAnalyzerNamesAreUniqueAndDocumented(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 10 {
		t.Errorf("expected the 10 analyzers of the suite, have %d", len(seen))
	}
}
