package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// analyzerNondeterminism enforces the engine's bit-identical-results
// contract inside the simulation packages (Config.SimPackages): no
// wall-clock reads, no global math/rand source, and no map-range loops
// that write into slices that outlive the loop (Go randomises map order,
// so such writes can depend on iteration order). Wall-clock reads that
// feed write-only instrumentation carry a //sccvet:allow directive.
var analyzerNondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "flags time.Now/Since, global math/rand and map-order-dependent slice writes in simulation packages",
	Applies: func(conf Config, pkg *Package) bool {
		return contains(conf.SimPackages, pkg.Path)
	},
	Run: runNondeterminism,
}

// randConstructors are the math/rand functions that build an explicitly
// seeded source; everything else package-level draws from the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runNondeterminism(p *Pass) {
	if !contains(p.Conf.SimPackages, p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				path, name, ok := pkgFunc(p.Info, x)
				if !ok {
					return true
				}
				switch {
				case path == "time" && (name == "Now" || name == "Since"):
					p.Reportf(x.Pos(),
						"call to time.%s in simulation package %s: results must not depend on the wall clock (route instrumentation through internal/obs or annotate //sccvet:allow nondeterminism <reason>)",
						name, p.Path)
				case (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name]:
					p.Reportf(x.Pos(),
						"math/rand.%s draws from the global source: seed explicitly with rand.New(rand.NewSource(seed)) so runs are reproducible",
						name)
				}
			case *ast.RangeStmt:
				checkMapRange(p, x)
			}
			return true
		})
	}
}

// checkMapRange flags map-range bodies that write into slices declared
// outside the loop: the write order then follows Go's randomised map
// iteration order, which is exactly the nondeterminism the sweep tables
// must never absorb.
func checkMapRange(p *Pass, rs *ast.RangeStmt) {
	t := p.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	var written []string
	seen := map[string]bool{}
	note := func(id *ast.Ident) {
		if id == nil || seen[id.Name] {
			return
		}
		seen[id.Name] = true
		written = append(written, id.Name)
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			note(outerSliceWrite(p, rs, lhs))
		}
		// x = append(x, ...) growing an outer slice is order-dependent too.
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			id := rootIdent(as.Lhs[i])
			if id == nil || id.Name == "_" {
				continue
			}
			lt := p.Info.TypeOf(as.Lhs[i])
			if lt == nil {
				continue
			}
			if _, isSlice := lt.Underlying().(*types.Slice); !isSlice {
				continue
			}
			if declaredOutside(p.Info, id, rs.Pos(), rs.End()) {
				note(id)
			}
		}
		return true
	})
	if len(written) > 0 {
		sort.Strings(written)
		p.Reportf(rs.Pos(),
			"range over map writes into slice %s declared outside the loop: map iteration order is randomised; iterate a sorted key list or a dense index instead",
			strings.Join(written, ", "))
	}
}

// outerSliceWrite reports the base identifier when the assignment target
// reaches through an index expression into a slice declared outside the
// range statement (s[i] = v, res.Cells[i].Field = v, ...).
func outerSliceWrite(p *Pass, rs *ast.RangeStmt, lhs ast.Expr) *ast.Ident {
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			if t := p.Info.TypeOf(x.X); t != nil {
				if _, isSlice := t.Underlying().(*types.Slice); isSlice {
					if id := rootIdent(x.X); id != nil && declaredOutside(p.Info, id, rs.Pos(), rs.End()) {
						return id
					}
				}
			}
			e = x.X
		default:
			return nil
		}
	}
}
