package lint

import (
	"go/ast"
	"go/types"
)

// analyzerErrDiscard flags dropped error results from the error-critical
// packages: the RCCE communication layer and the fault-injection paths.
// PR 7 made every collective and point-to-point op return an error
// precisely so deadline expiry and injected faults surface at the call
// site; an ignored Barrier error silently desynchronises the mesh and
// the run "hangs" somewhere else entirely. Three discard shapes are
// reported:
//
//   - a bare expression statement (ue.Barrier());
//   - a blank assignment (_ = s.Wait()), including multi-value forms
//     where the error position is blank;
//   - go/defer statements whose called function returns an error the
//     spawned call cannot deliver anywhere.
//
// A deliberate drain carries //sccvet:allow error-discard <reason>.
var analyzerErrDiscard = &Analyzer{
	Name: "error-discard",
	Doc:  "flags dropped error results from RCCE communication and fault-injection calls",
	Applies: func(conf Config, pkg *Package) bool {
		return len(conf.ErrCriticalPackages) > 0
	},
	Run: runErrDiscard,
}

func runErrDiscard(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					reportDiscardedCall(p, call, "result discarded")
				}
			case *ast.GoStmt:
				reportDiscardedCall(p, st.Call, "error lost in go statement")
			case *ast.DeferStmt:
				reportDiscardedCall(p, st.Call, "error lost in defer")
			case *ast.AssignStmt:
				checkBlankErrAssign(p, st)
			}
			return true
		})
	}
}

// reportDiscardedCall reports the call if it is an error-critical call
// whose error result the surrounding statement cannot observe.
func reportDiscardedCall(p *Pass, call *ast.CallExpr, how string) {
	name, idx := errCriticalCall(p, call)
	if name == "" || idx < 0 {
		return
	}
	p.Reportf(call.Pos(),
		"%s returns an error that signals deadline expiry or an injected fault, but the %s: handle it, or annotate //sccvet:allow error-discard <reason>",
		name, how)
}

// checkBlankErrAssign reports error-critical calls whose error result
// lands in the blank identifier.
func checkBlankErrAssign(p *Pass, as *ast.AssignStmt) {
	// Single call on the RHS: r1, ..., rn (or just r) destructured.
	if len(as.Rhs) == 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		name, idx := errCriticalCall(p, call)
		if name == "" || idx < 0 {
			return
		}
		pos := idx
		if len(as.Lhs) == 1 {
			pos = 0 // single-value context: the lone LHS receives the error
		}
		if pos < len(as.Lhs) && isBlank(as.Lhs[pos]) {
			p.Reportf(call.Pos(),
				"%s error assigned to _: deadline expiry and injected faults vanish here; handle the error, or annotate //sccvet:allow error-discard <reason>",
				name)
		}
		return
	}
	// Parallel assignment: each RHS pairs with one LHS.
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
			continue
		}
		name, idx := errCriticalCall(p, call)
		if name == "" || idx < 0 {
			continue
		}
		p.Reportf(call.Pos(),
			"%s error assigned to _: deadline expiry and injected faults vanish here; handle the error, or annotate //sccvet:allow error-discard <reason>",
			name)
	}
}

// errCriticalCall reports whether the call targets an error-critical
// package (Config.ErrCriticalPackages) and returns a display name plus
// the index of the error result in the callee's results (-1 when the
// callee returns no error, or is out of scope).
func errCriticalCall(p *Pass, call *ast.CallExpr) (string, int) {
	callee := calleeOf(p.Info, call)
	if callee == nil || callee.Pkg() == nil {
		return "", -1
	}
	if !contains(p.Conf.ErrCriticalPackages, callee.Pkg().Path()) {
		return "", -1
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return "", -1
	}
	idx := errorResultIndex(sig)
	if idx < 0 {
		return "", -1
	}
	name := callee.Name()
	if recv := sig.Recv(); recv != nil {
		if named := namedOf(recv.Type()); named != nil {
			name = named.Obj().Name() + "." + name
		}
	} else {
		name = callee.Pkg().Name() + "." + name
	}
	return name, idx
}

// errorResultIndex returns the index of the last error-typed result of
// the signature, or -1.
func errorResultIndex(sig *types.Signature) int {
	res := sig.Results()
	for i := res.Len() - 1; i >= 0; i-- {
		if isErrorType(res.At(i).Type()) {
			return i
		}
	}
	return -1
}

var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorIface)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
