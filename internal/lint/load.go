package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path (Module + "/" + dir relative to Root).
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Fset positions every file in the loader's shared file set.
	Fset  *token.FileSet
	Types *types.Package
	Info  *types.Info
	Files []*ast.File
}

// Loader parses and type-checks packages with the standard library only:
// module-local import paths are resolved recursively against Root, and
// everything else is delegated to the source importer over GOROOT. This
// keeps sccvet free of module dependencies (no golang.org/x/tools).
type Loader struct {
	// Root is the directory containing the package tree.
	Root string
	// Module is the import-path prefix mapping onto Root (e.g. "repro").
	Module string
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader for the package tree rooted at root with the
// given module path.
func NewLoader(root, module string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		Module:  module,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer over the composite resolution scheme.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path != l.Module && !strings.HasPrefix(path, l.Module+"/") {
		return l.std.Import(path)
	}
	p, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

// dirFor maps an import path onto a directory under Root.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// pathFor maps a directory under Root onto its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// Load type-checks the package in the directory (absolute or relative to
// Root) and caches it by import path.
func (l *Loader) Load(dir string) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.Root, dir)
	}
	path, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path)
}

func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Types: tpkg, Info: info, Files: files}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses every non-test .go file in dir, in name order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadAll walks the subtree rooted at sub (relative to Root; "" or "."
// means the whole tree), loading every directory holding non-test Go
// files. testdata and hidden directories are skipped.
func (l *Loader) LoadAll(sub string) ([]*Package, error) {
	start := l.Root
	if sub != "" && sub != "." {
		start = filepath.Join(l.Root, filepath.FromSlash(sub))
	}
	var dirs []string
	err := filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			n := d.Name()
			if n == "testdata" || (strings.HasPrefix(n, ".") && path != start) {
				return filepath.SkipDir
			}
			return nil
		}
		n := d.Name()
		if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	seen := map[string]bool{}
	for _, d := range dirs {
		if seen[d] {
			continue
		}
		seen[d] = true
		p, err := l.Load(d)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
