package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// analyzerLockBlock flags mutexes held across blocking operations. The
// serve daemon and the RCCE mesh both follow the same discipline: a
// sync.Mutex protects in-memory state and nothing else; channel sends,
// Barrier(), and pool dispatch happen outside the critical section. A
// violation is a whole-process stall waiting to happen - a blocked send
// under the job-table lock freezes every Submit and status probe, and a
// Barrier under a lock deadlocks the mesh the first time two UEs arrive
// holding different locks.
//
// The scan is a linear walk of each function body tracking the set of
// held locks (Lock/RLock add, Unlock/RUnlock remove, deferred unlocks
// keep the lock held to the end). Branch bodies are analyzed with a copy
// of the state, so a conditional Unlock never "unlocks" the main path.
// Blocking operations are: channel sends, channel receives, ranging over
// a channel, select without a default case, calls to the configured
// blocking functions (Config.BlockingFuncs - the RCCE ops and the obs
// pool dispatchers), and calls to same-package functions that
// transitively perform any of those (flow.go call graph). Goroutine and
// function-literal bodies run on their own stacks and are skipped.
//
// In Config.SleepBanPackages the analyzer additionally flags every direct
// time.Sleep call, lock held or not. Those are the watchdog-supervised
// packages (the RCCE op paths): a bare sleep there is a stall the
// watchdog cannot see as a blocked op and the abort path cannot
// interrupt - a UE sleeping through an injected hour of latency keeps an
// aborted program alive for that hour. Waits must instead be registered
// with the engine (delay/park) and select on the abort channel, or run
// on the DES virtual clock.
var analyzerLockBlock = &Analyzer{
	Name: "lock-across-blocking",
	Doc:  "flags sync.Mutex/RWMutex locks held across channel operations, RCCE calls, or pool dispatch; bans bare time.Sleep in watchdog-supervised packages",
	Run:  runLockBlock,
}

func runLockBlock(p *Pass) {
	s := &lockScan{p: p, blocking: transitivelyBlocking(p)}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s.stmts(fd.Body.List, lockState{})
		}
	}
	if contains(p.Conf.SleepBanPackages, p.Path) {
		reportBareSleeps(p)
	}
}

// reportBareSleeps flags every direct time.Sleep call in the package,
// including calls inside goroutine and function-literal bodies: the stall
// is invisible to the watchdog no matter which stack sleeps.
func reportBareSleeps(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isTimeSleep(p.Info, call) {
				return true
			}
			p.Reportf(call.Pos(),
				"bare time.Sleep in a watchdog-supervised package: the stall is not registered as a blocked op, so the watchdog cannot observe it and an abort cannot interrupt it; route the wait through the engine (delay/park, selecting on the abort channel), or annotate //sccvet:allow lock-across-blocking <reason>")
			return true
		})
	}
}

// isTimeSleep reports whether the call is time.Sleep from the stdlib.
func isTimeSleep(info *types.Info, call *ast.CallExpr) bool {
	callee := calleeOf(info, call)
	return callee != nil && callee.Pkg() != nil &&
		callee.Pkg().Path() == "time" && callee.Name() == "Sleep"
}

// lockState maps a lock's display key (the receiver expression, e.g.
// "s.mu") to true while it is held on the path being scanned.
type lockState map[string]bool

func (ls lockState) clone() lockState {
	c := make(lockState, len(ls))
	for k := range ls {
		c[k] = true
	}
	return c
}

func (ls lockState) any() (string, bool) {
	for k := range ls {
		return k, true
	}
	return "", false
}

type lockScan struct {
	p *Pass
	// blocking holds the same-package functions that transitively perform
	// a blocking operation.
	blocking map[*types.Func]bool
}

// stmts scans a statement list in order, mutating held.
func (s *lockScan) stmts(list []ast.Stmt, held lockState) {
	for _, st := range list {
		s.stmt(st, held)
	}
}

func (s *lockScan) stmt(st ast.Stmt, held lockState) {
	switch x := st.(type) {
	case *ast.ExprStmt:
		s.expr(x.X, held)
	case *ast.SendStmt:
		s.expr(x.Value, held)
		s.reportIfHeld(x.Pos(), "a channel send", held)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			s.expr(e, held)
		}
		for _, e := range x.Lhs {
			s.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.expr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			s.expr(e, held)
		}
	case *ast.BlockStmt:
		s.stmts(x.List, held)
	case *ast.IfStmt:
		if x.Init != nil {
			s.stmt(x.Init, held)
		}
		s.expr(x.Cond, held)
		s.stmts(x.Body.List, held.clone())
		if x.Else != nil {
			s.stmt(x.Else, held.clone())
		}
	case *ast.ForStmt:
		if x.Init != nil {
			s.stmt(x.Init, held)
		}
		if x.Cond != nil {
			s.expr(x.Cond, held)
		}
		s.stmts(x.Body.List, held.clone())
	case *ast.RangeStmt:
		s.expr(x.X, held)
		if t, ok := s.p.Info.Types[x.X]; ok {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				s.reportIfHeld(x.Pos(), "ranging over a channel", held)
			}
		}
		s.stmts(x.Body.List, held.clone())
	case *ast.SwitchStmt:
		if x.Init != nil {
			s.stmt(x.Init, held)
		}
		if x.Tag != nil {
			s.expr(x.Tag, held)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.stmts(cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.stmts(cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		if !selectHasDefault(x) {
			s.reportIfHeld(x.Pos(), "a select with no default case", held)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				branch := held.clone()
				// With a default present every comm clause is a
				// non-blocking attempt; its body still runs under the lock.
				s.stmts(cc.Body, branch)
			}
		}
	case *ast.LabeledStmt:
		s.stmt(x.Stmt, held)
	case *ast.GoStmt:
		// The spawned goroutine does not run under this stack's locks.
	case *ast.DeferStmt:
		// Deferred calls run at return; a deferred Unlock means the lock
		// stays held for the remainder of the scan, which is exactly the
		// default, so no state change either way.
	}
}

// expr scans an expression for receives, blocking calls and lock state
// transitions. Function literals are skipped: their bodies execute on a
// different activation, typically a different goroutine.
func (s *lockScan) expr(e ast.Expr, held lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				s.reportIfHeld(x.Pos(), "a channel receive", held)
			}
		case *ast.CallExpr:
			if key, op := syncLockOp(s.p.Info, x); op != "" {
				switch op {
				case "lock":
					held[key] = true
				case "unlock":
					delete(held, key)
				}
				return true
			}
			if desc, ok := s.blockingCall(x); ok {
				s.reportIfHeld(x.Pos(), desc, held)
			}
		}
		return true
	})
}

func (s *lockScan) reportIfHeld(pos token.Pos, what string, held lockState) {
	key, ok := held.any()
	if !ok {
		return
	}
	s.p.Reportf(pos,
		"%s is held across %s: anything waiting on that operation now also waits on every other critical section of %s; move the blocking work outside the lock, or annotate //sccvet:allow lock-across-blocking <reason>",
		key, what, key)
}

// blockingCall reports whether the call is a blocking operation: a
// configured blocking function (RCCE ops, pool dispatch) or a
// same-package function that transitively blocks.
func (s *lockScan) blockingCall(call *ast.CallExpr) (string, bool) {
	callee := calleeOf(s.p.Info, call)
	if callee == nil {
		return "", false
	}
	if configuredBlocking(s.p.Conf, callee) {
		return "a call to " + callee.Name() + " (blocking)", true
	}
	if s.blocking[callee] {
		return "a call to " + callee.Name() + ", which blocks transitively", true
	}
	return "", false
}

func configuredBlocking(conf Config, fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	return contains(conf.BlockingFuncs[fn.Pkg().Path()], fn.Name())
}

// transitivelyBlocking computes, by fixpoint over the package call
// graph, the declared functions that perform a blocking operation
// directly or through same-package calls.
func transitivelyBlocking(p *Pass) map[*types.Func]bool {
	g := p.Flow()
	blocking := map[*types.Func]bool{}
	for fn, fd := range g.decls {
		if directlyBlocks(p, fd) {
			blocking[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn := range g.decls {
			if blocking[fn] {
				continue
			}
			for _, callee := range g.callees[fn] {
				if blocking[callee] {
					blocking[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return blocking
}

// directlyBlocks reports whether the function body itself contains a
// blocking operation (outside goroutine and function-literal bodies).
func directlyBlocks(p *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t, ok := p.Info.Types[x.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.SelectStmt:
			if !selectHasDefault(x) {
				found = true
			}
		case *ast.CallExpr:
			if callee := calleeOf(p.Info, x); callee != nil && configuredBlocking(p.Conf, callee) {
				found = true
			}
		}
		return !found
	})
	return found
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// syncLockOp recognises mutex state transitions: a call to
// Lock/RLock/Unlock/RUnlock on a sync.Mutex or sync.RWMutex. The
// returned key is the receiver expression as written (e.g. "s.mu"),
// which is how the held-set distinguishes locks.
func syncLockOp(info *types.Info, call *ast.CallExpr) (key, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	named := namedOf(sig.Recv().Type())
	if named == nil {
		return "", ""
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", ""
	}
	return types.ExprString(sel.X), op
}
