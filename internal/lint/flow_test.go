package lint

import (
	"go/ast"
	"go/types"
	"testing"
)

func flowPass(t *testing.T) *Pass {
	t.Helper()
	pkg, err := corpusLoader(t).Load("flowgraph")
	if err != nil {
		t.Fatalf("loading flowgraph corpus: %v", err)
	}
	return &Pass{
		Conf:  Config{},
		Fset:  pkg.Fset,
		Path:  pkg.Path,
		Pkg:   pkg.Types,
		Info:  pkg.Info,
		Files: pkg.Files,
	}
}

func lookupFunc(t *testing.T, p *Pass, name string) *types.Func {
	t.Helper()
	if fn, ok := p.Pkg.Scope().Lookup(name).(*types.Func); ok {
		return fn
	}
	t.Fatalf("function %s not found in %s", name, p.Path)
	return nil
}

func TestFlowGraphCallees(t *testing.T) {
	p := flowPass(t)
	g := p.Flow()
	if g != p.Flow() {
		t.Error("Flow() should build once and return the cached graph")
	}

	a := lookupFunc(t, p, "A")
	names := map[string]int{}
	for _, callee := range g.callees[a] {
		names[callee.Name()]++
	}
	if names["B"] != 1 || names["C"] != 1 {
		t.Errorf("A's callees = %v, want B and C once each", names)
	}

	iso := lookupFunc(t, p, "Isolated")
	if len(g.callees[iso]) != 0 {
		t.Errorf("Isolated should call nothing, got %v", g.callees[iso])
	}

	// Calls through function values cannot be resolved statically.
	ind := lookupFunc(t, p, "Indirect")
	if len(g.callees[ind]) != 0 {
		t.Errorf("Indirect's dynamic call should not resolve, got %v", g.callees[ind])
	}
}

func TestFlowGraphMethodsAndReachability(t *testing.T) {
	p := flowPass(t)
	g := p.Flow()

	tn := p.Pkg.Scope().Lookup("T").(*types.TypeName)
	m := lookupMethod(tn.Type().(*types.Named), "M")
	if m == nil {
		t.Fatal("method M not found")
	}
	reach := g.reachable(m)
	if !reach[m] {
		t.Error("roots should be reachable from themselves")
	}
	helper := lookupMethod(tn.Type().(*types.Named), "helper")
	if !reach[helper] {
		t.Error("M should reach helper through the method call")
	}

	reach = g.reachable(lookupFunc(t, p, "A"))
	for _, name := range []string{"A", "B", "C"} {
		if !reach[lookupFunc(t, p, name)] {
			t.Errorf("A should reach %s", name)
		}
	}
	if reach[lookupFunc(t, p, "Isolated")] {
		t.Error("A must not reach Isolated")
	}
}

func TestAliasSet(t *testing.T) {
	p := flowPass(t)
	var chain *ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "Chain" {
				chain = fd
			}
		}
	}
	if chain == nil {
		t.Fatal("Chain not found")
	}
	fn := p.Info.Defs[chain.Name].(*types.Func)
	param := fn.Type().(*types.Signature).Params().At(0)

	set := aliasSet(p.Info, chain.Body, map[types.Object]bool{param: true})
	got := map[string]bool{}
	for obj := range set {
		got[obj.Name()] = true
	}
	for _, name := range []string{"a", "b", "c", "e"} {
		if !got[name] {
			t.Errorf("alias set should contain %s (have %v)", name, got)
		}
	}
	if got["d"] {
		t.Error("d copies a field, not the whole value; it must not alias the parameter")
	}
}
