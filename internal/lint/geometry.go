package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
)

// analyzerGeometry rejects magic cache-line and chip-topology constants in
// address arithmetic. The SCC's geometry lives in internal/scc
// (CacheLineBytes=32, NumCores=48, NumTiles=24); spelling those numbers
// inline (addr>>5, line&31, i*32, core%48) silently decouples the code
// from the named constants - the exact bug PR 2 fixed in the stream
// batcher, where a hardcoded >>5 would have survived a line-size change.
// Named constants (even ones ultimately equal to 5 or 32) are always
// fine: the analyzer only fires on integer literals.
var analyzerGeometry = &Analyzer{
	Name: "geometry-literal",
	Doc:  "flags magic cache-line/topology constants (>>5, &31, *32, %48, ...) in address arithmetic",
	Applies: func(conf Config, pkg *Package) bool {
		return contains(conf.GeometryPackages, pkg.Path)
	},
	Run: runGeometry,
}

// geometryHint gates the check to operands that look like address or
// topology arithmetic, so `n * 32` over plain element counts stays legal.
var geometryHint = regexp.MustCompile(`(?i)(addr|line|tile|core|rank|hop|byte|off|block|lane|mc|ctl|mesh|way|bank)`)

// geometryMagic maps an operator to the literal values that encode chip
// geometry under it.
func geometryMagic(op token.Token, v int64) bool {
	switch op {
	case token.SHL, token.SHR:
		return v == 5 // log2(scc.CacheLineBytes)
	case token.AND, token.AND_ASSIGN:
		return v == 31 // scc.CacheLineBytes - 1
	case token.MUL, token.QUO, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return v == 32 // scc.CacheLineBytes
	case token.REM, token.REM_ASSIGN:
		return v == 32 || v == 48 || v == 24 // line bytes, NumCores, NumTiles
	case token.SHL_ASSIGN, token.SHR_ASSIGN:
		return v == 5
	}
	return false
}

func runGeometry(p *Pass) {
	if !contains(p.Conf.GeometryPackages, p.Path) {
		return
	}
	check := func(op token.Token, a, b ast.Expr, at token.Pos) {
		lit, other := literalOperand(a, b)
		if lit == nil {
			return
		}
		v, ok := intValue(lit)
		if !ok || !geometryMagic(op, v) {
			return
		}
		if !addressLike(p, other) {
			return
		}
		p.Reportf(at,
			"magic geometry constant %s in %q arithmetic on %s: derive it from scc.CacheLineBytes / scc.NumCores / scc.NumTiles (internal/scc/topology.go) so the geometry has one source of truth",
			lit.Value, op, types.ExprString(other))
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				check(x.Op, x.X, x.Y, x.OpPos)
			case *ast.AssignStmt:
				if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
					switch x.Tok {
					case token.SHL_ASSIGN, token.SHR_ASSIGN, token.AND_ASSIGN,
						token.MUL_ASSIGN, token.QUO_ASSIGN, token.REM_ASSIGN:
						check(x.Tok, x.Lhs[0], x.Rhs[0], x.TokPos)
					}
				}
			}
			return true
		})
	}
}

// literalOperand returns the integer literal among (a, b), if exactly one
// side is a literal, together with the other operand.
func literalOperand(a, b ast.Expr) (lit *ast.BasicLit, other ast.Expr) {
	la, oka := asIntLit(a)
	lb, okb := asIntLit(b)
	switch {
	case oka && !okb:
		return la, b
	case okb && !oka:
		return lb, a
	}
	return nil, nil
}

func asIntLit(e ast.Expr) (*ast.BasicLit, bool) {
	for {
		if pe, ok := e.(*ast.ParenExpr); ok {
			e = pe.X
			continue
		}
		break
	}
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind != token.INT {
		return nil, false
	}
	return bl, true
}

func intValue(bl *ast.BasicLit) (int64, bool) {
	v, err := strconv.ParseInt(bl.Value, 0, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// addressLike reports whether the non-literal operand plausibly carries an
// address or topology coordinate: either its spelling mentions one
// (addr, line, tile, core, ...) or its type is an unsigned machine word,
// the representation the simulator uses for byte addresses.
func addressLike(p *Pass, e ast.Expr) bool {
	if geometryHint.MatchString(types.ExprString(e)) {
		return true
	}
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Uint64, types.Uintptr:
			return true
		}
	}
	return false
}
