package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// analyzerCounterDrift pins every metric registration site to the
// declared name table (internal/obs/names.go). The obs registry is
// stringly keyed: Registry.Counter("serve.jobs.complete") and
// Registry.Counter("serve.jobs.completed") are two different metrics,
// and the dashboard quietly reads zero from the one nobody increments.
// The same table drives cmd/metricscheck, so a name that passes vet here
// is also the name the metrics-smoke gate expects at runtime.
//
// Any Counter/Gauge/Timer/Sample/Pool call on the metrics package's
// Registry whose name argument is a compile-time constant must resolve
// to a declared name of the matching kind. Non-constant names cannot be
// checked statically and are reported too: the namespace is closed by
// design, so dynamic names belong in the table as a pool family instead.
var analyzerCounterDrift = &Analyzer{
	Name: "counter-drift",
	Doc:  "flags metric registration sites whose name is absent from, or mis-kinded in, the declared metrics schema",
	Applies: func(conf Config, pkg *Package) bool {
		// The metrics package itself derives names internally (Pool
		// registers <prefix>.tasks and friends); everything else is fair
		// game.
		return conf.MetricsPackage != "" && pkg.Path != conf.MetricsPackage
	},
	Run: runCounterDrift,
}

// registryKinds maps obs.Registry method names onto the schema kind the
// registered metric must carry.
var registryKinds = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"Timer":     "timer",
	"Sample":    "sample",
	"Histogram": "histogram",
	"Pool":      "pool",
}

func runCounterDrift(p *Pass) {
	if p.Conf.MetricsPackage == "" || p.Path == p.Conf.MetricsPackage {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			callee := calleeOf(p.Info, call)
			if callee == nil || callee.Pkg() == nil ||
				callee.Pkg().Path() != p.Conf.MetricsPackage {
				return true
			}
			kind, ok := registryKinds[callee.Name()]
			if !ok || !isRegistryMethod(callee) {
				return true
			}
			checkMetricName(p, call, callee.Name(), kind)
			return true
		})
	}
}

// isRegistryMethod reports whether fn is a method on the metrics
// package's Registry type.
func isRegistryMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	return named != nil && named.Obj().Name() == "Registry"
}

func checkMetricName(p *Pass, call *ast.CallExpr, method, kind string) {
	arg := call.Args[0]
	tv, ok := p.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		p.Reportf(arg.Pos(),
			"Registry.%s called with a non-constant name: the metrics namespace is declared in the schema table, so dynamic families belong there as a pool prefix; use a declared constant name, or annotate //sccvet:allow counter-drift <reason>",
			method)
		return
	}
	name := constant.StringVal(tv.Value)
	declared, ok := p.Conf.MetricNames[name]
	if !ok {
		p.Reportf(arg.Pos(),
			"metric %q is not in the declared schema (internal/obs/names.go): an undeclared name forks the namespace and cmd/metricscheck will reject the snapshot; add it to the table, or annotate //sccvet:allow counter-drift <reason>",
			name)
		return
	}
	if declared != kind {
		p.Reportf(arg.Pos(),
			"metric %q is declared as a %s but registered here via Registry.%s: the two consumers of the schema now disagree about its kind; fix the table or the call",
			name, declared, method)
	}
}
