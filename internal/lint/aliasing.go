package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// analyzerAliasing guards the engine's results-own-their-memory contract:
// an exported function must not hand callers a slice that aliases one of
// its parameters or an internal scratch buffer. RunSpMVSweep once
// returned Results whose Y aliased the sweep's shared scratch vector, so
// mutating one result silently corrupted the others; PR 2 fixed it by
// copying. The analyzer flags two shapes:
//
//   - returning a parameter (or a subslice of one) of slice type, and
//   - returning a receiver/parameter struct field (or a subslice of one)
//     whose name marks it as scratch storage (buf, scratch, tmp, work).
//
// Getters returning stable data fields are not flagged - aliasing a
// matrix's own Val array is the accessor's documented contract, while
// aliasing a reused scratch buffer never is.
var analyzerAliasing = &Analyzer{
	Name: "result-aliasing",
	Doc:  "flags exported functions returning parameter- or scratch-backed slices without copying",
	Run:  runAliasing,
}

// scratchName marks struct fields that are reused working storage rather
// than owned results.
var scratchName = regexp.MustCompile(`(?i)(scratch|buf|tmp|temp|work)`)

func runAliasing(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if sig.Results() == nil {
				continue
			}
			checkFuncAliasing(p, fd, sig)
		}
	}
}

func checkFuncAliasing(p *Pass, fd *ast.FuncDecl, sig *types.Signature) {
	owned := map[types.Object]string{} // param/receiver object -> role
	for i := 0; i < sig.Params().Len(); i++ {
		owned[sig.Params().At(i)] = "parameter"
	}
	if r := sig.Recv(); r != nil {
		owned[r] = "receiver"
	}
	results := sig.Results()

	// Walk the body without descending into function literals: their
	// return statements return from the literal, not from fd.
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok && m != n {
				return false
			}
			rs, ok := m.(*ast.ReturnStmt)
			if !ok || len(rs.Results) != results.Len() {
				return true
			}
			for i, expr := range rs.Results {
				if _, ok := results.At(i).Type().Underlying().(*types.Slice); !ok {
					continue
				}
				checkReturnExpr(p, fd, owned, expr)
			}
			return true
		})
	}
	walk(fd.Body)
}

// checkReturnExpr flags a returned slice expression that aliases a
// parameter or a scratch field reachable from the receiver/parameters.
func checkReturnExpr(p *Pass, fd *ast.FuncDecl, owned map[types.Object]string, expr ast.Expr) {
	e := ast.Unparen(expr)
	for {
		se, ok := e.(*ast.SliceExpr)
		if !ok {
			break
		}
		e = ast.Unparen(se.X)
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := p.Info.ObjectOf(x)
		if role, ok := owned[obj]; ok {
			if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
				p.Reportf(expr.Pos(),
					"exported %s returns %s %s (or a subslice) without copying: the caller and this package now share one backing array; return append([]T(nil), s...) or annotate //sccvet:allow result-aliasing <reason>",
					fd.Name.Name, role, x.Name)
			}
		}
	case *ast.SelectorExpr:
		root := rootIdent(x.X)
		if root == nil {
			return
		}
		if _, ok := owned[p.Info.ObjectOf(root)]; !ok {
			return
		}
		if !scratchName.MatchString(x.Sel.Name) {
			return
		}
		if t := p.Info.TypeOf(x); t != nil {
			if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
				return
			}
		}
		p.Reportf(expr.Pos(),
			"exported %s returns scratch buffer %s.%s (or a subslice) without copying: reused working storage must never escape; copy it or annotate //sccvet:allow result-aliasing <reason>",
			fd.Name.Name, root.Name, x.Sel.Name)
	}
}
