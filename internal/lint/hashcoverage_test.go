package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyModule replicates the module's non-test Go sources and go.mod into
// dst so a test can mutate a copy of the tree without touching the repo.
func copyModule(t *testing.T, root, dst string) {
	t.Helper()
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		base := info.Name()
		if base != "go.mod" && (!strings.HasSuffix(base, ".go") || strings.HasSuffix(base, "_test.go")) {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, blob, 0o644)
	})
	if err != nil {
		t.Fatalf("copying module: %v", err)
	}
}

// TestHashCoverageCatchesNewJobConfigField pins the acceptance criterion
// for the content-hash contract: adding an exported JobConfig field that
// Canonical/Key never read must fail vet at the field's declaration. The
// test grafts a dummy field onto a scratch copy of the module and runs
// the production config against the mutated serve package.
func TestHashCoverageCatchesNewJobConfigField(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a module copy; skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	scratch := t.TempDir()
	copyModule(t, root, scratch)

	conf := DefaultConfig()
	conf.Run = []string{"hash-coverage"}

	// Control: the unmutated copy is clean, so any finding below is the
	// dummy field's and not an artifact of copying.
	pkg, err := NewLoader(scratch, "repro").Load(filepath.Join("internal", "serve"))
	if err != nil {
		t.Fatalf("loading copied serve package: %v", err)
	}
	for _, f := range RunPackage(conf, pkg) {
		t.Fatalf("copied tree not clean before mutation: %s", f)
	}

	cfgPath := filepath.Join(scratch, "internal", "serve", "config.go")
	src, err := os.ReadFile(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	const anchor = "type JobConfig struct {"
	if !strings.Contains(string(src), anchor) {
		t.Fatalf("%s no longer declares JobConfig; update this test's anchor", cfgPath)
	}
	mutated := strings.Replace(string(src), anchor,
		anchor+"\n\tDummyKnob int `json:\"dummy_knob,omitempty\"`", 1)
	if err := os.WriteFile(cfgPath, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}

	pkg, err = NewLoader(scratch, "repro").Load(filepath.Join("internal", "serve"))
	if err != nil {
		t.Fatalf("loading mutated serve package: %v", err)
	}
	var hits []Finding
	for _, f := range RunPackage(conf, pkg) {
		if f.Analyzer == "hash-coverage" && strings.Contains(f.Message, "DummyKnob") {
			hits = append(hits, f)
		} else {
			t.Errorf("unexpected finding on mutated tree: %s", f)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("want exactly one hash-coverage finding for DummyKnob, got %d", len(hits))
	}
	if !strings.Contains(hits[0].Message, "not read by Canonical/Key") {
		t.Errorf("finding should name the contract functions: %s", hits[0].Message)
	}
	if filepath.Base(hits[0].Pos.Filename) != "config.go" {
		t.Errorf("finding should anchor at the field declaration in config.go, got %s", hits[0].Pos.Filename)
	}
}
