package lint

import "go/ast"

// analyzerGoroutine steers host concurrency through the one instrumented
// fan-out primitive the engine has, (*obs.Pool).ForEach: a bare `go`
// statement anywhere else bypasses the pool's task accounting, occupancy
// sampling and the serial reference path the determinism tests pin down.
// Only the packages in Config.GoroutineAllowed (the obs pool itself) are
// exempt wholesale; goroutines that legitimately cannot be pool tasks -
// the RCCE UEs (the thread model under test), the iRCCE progress engine
// and the deadline watchdog supervising blocked UEs - each carry their own
// //sccvet:allow bare-goroutine justification at the go statement.
var analyzerGoroutine = &Analyzer{
	Name: "bare-goroutine",
	Doc:  "flags go statements outside the obs worker pool",
	Applies: func(conf Config, pkg *Package) bool {
		return !contains(conf.GoroutineAllowed, pkg.Path)
	},
	Run: runGoroutine,
}

func runGoroutine(p *Pass) {
	if contains(p.Conf.GoroutineAllowed, p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(),
					"bare goroutine outside the obs pool: fan work out through (*obs.Pool).ForEach so it is instrumented and has a serial reference path, or annotate //sccvet:allow bare-goroutine <reason>")
			}
			return true
		})
	}
}
