package lint

import "go/ast"

// analyzerGoroutine steers host concurrency through the one instrumented
// fan-out primitive the engine has, (*obs.Pool).ForEach: a bare `go`
// statement anywhere else bypasses the pool's task accounting, occupancy
// sampling and the serial reference path the determinism tests pin down.
// The packages in Config.GoroutineAllowed (the obs pool itself and the
// RCCE thread model, whose UEs *are* goroutines) are exempt.
var analyzerGoroutine = &Analyzer{
	Name: "bare-goroutine",
	Doc:  "flags go statements outside the obs worker pool and the RCCE thread model",
	Run:  runGoroutine,
}

func runGoroutine(p *Pass) {
	if contains(p.Conf.GoroutineAllowed, p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(),
					"bare goroutine outside the obs pool and the RCCE thread model: fan work out through (*obs.Pool).ForEach so it is instrumented and has a serial reference path, or annotate //sccvet:allow bare-goroutine <reason>")
			}
			return true
		})
	}
}
