// Package lint is sccvet's analysis engine: a stdlib-only (go/ast,
// go/parser, go/types) multi-analyzer vet tool encoding the repo-specific
// invariants the simulator's reproducibility rests on. The paper's
// experiments are comparable across configurations only because the engine
// is bit-identical at every host parallelism level; PRs 1-2 protected that
// property with runtime determinism tests but still had to repair three
// invariant violations by hand (a hardcoded addr>>5 line shift, a sweep
// that aliased its scratch Y into results, and a miscounted duplicate
// cache miss). The analyzers here reject those bug classes at vet time:
//
//   - nondeterminism:     wall-clock calls, global math/rand, and
//     map-order-dependent writes inside the simulation packages
//   - bare-goroutine:     goroutines outside the instrumented obs pool
//     (internal/rcce justifies each of its UE/progress/watchdog
//     goroutines with an explicit directive)
//   - geometry-literal:   magic cache-line/topology constants that must
//     be derived from internal/scc
//   - atomic-consistency: fields accessed both via sync/atomic and by
//     plain loads/stores
//   - result-aliasing:    exported functions returning parameter-backed
//     or scratch-buffer-backed slices without copying
//
// The v2 suite adds five flow-aware analyzers for the service-era
// invariants, built on a shared def-use + intra-package call-graph layer
// (flow.go):
//
//   - hash-coverage:        every exported serve.JobConfig field must be
//     read, transitively, by the content-hash functions (Canonical/Key)
//   - ctx-propagation:      contexts must thread through; Background/TODO
//     banned in library code, Ctx-variant callees must be used
//   - error-discard:        dropped errors from RCCE communication and
//     fault-injection calls
//   - counter-drift:        metric name literals must match the declared
//     schema table (internal/obs/names.go)
//   - lock-across-blocking: mutexes held across channel ops, RCCE calls
//     or pool dispatch
//
// A finding is suppressed by a directive comment on the same line or the
// line directly above:
//
//	//sccvet:allow <analyzer> <reason>
//
// The analyzer name and a non-empty reason are both mandatory; malformed
// directives are themselves findings, so every suppression in the tree
// carries a justification - and a directive that suppresses nothing while
// its analyzer is in scope is itself a finding, so suppressions cannot
// outlive the code they excused.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/obs"
)

// Config scopes the analyzers to the package sets whose invariants they
// encode. Paths are full import paths as the Loader reports them.
type Config struct {
	// SimPackages are the simulation packages whose outputs must be
	// bit-identical run to run: nondeterminism applies here.
	SimPackages []string
	// GeometryPackages are subject to the geometry-literal analyzer
	// (address/topology arithmetic must derive from internal/scc).
	GeometryPackages []string
	// GoroutineAllowed are the packages permitted to start bare
	// goroutines without per-site justification: only the instrumented
	// obs pool itself. Everything else - including the RCCE thread
	// model's UE, progress-engine and watchdog goroutines - must justify
	// each go statement with //sccvet:allow bare-goroutine <reason>.
	GoroutineAllowed []string
	// HashContracts declares the content-addressing invariants enforced
	// by hash-coverage: for each contract, every exported field of the
	// named struct must be read transitively by the named functions.
	HashContracts []HashContract
	// ErrCriticalPackages are the packages whose error results must never
	// be discarded (error-discard): the RCCE communication layer and the
	// fault-injection paths, where a dropped error is a silently
	// desynchronised mesh or a swallowed injected fault.
	ErrCriticalPackages []string
	// MetricsPackage is the import path of the obs registry package; the
	// counter-drift analyzer checks Registry.Counter/Gauge/Timer/Sample/
	// Pool name arguments everywhere outside it.
	MetricsPackage string
	// MetricNames is the declared metric schema (name -> kind) that
	// registration sites must match; in production this is
	// obs.MetricSchema(), the same table cmd/metricscheck validates
	// snapshots against.
	MetricNames map[string]string
	// BlockingFuncs maps package import paths to the function and method
	// names the lock-across-blocking analyzer treats as blocking
	// operations (in addition to channel ops and default-less selects).
	BlockingFuncs map[string][]string
	// SleepBanPackages are the packages where lock-across-blocking flags
	// every direct time.Sleep call, lock held or not. In the RCCE layer a
	// bare sleep is a stall the watchdog cannot observe and an abort
	// cannot interrupt; waits there must be registered as blocked ops and
	// select on the abort channel (or run on the DES virtual clock).
	SleepBanPackages []string
	// Run restricts the suite to the named analyzers; empty means all.
	Run []string
}

// enabled reports whether the analyzer participates under the Run filter.
func (c Config) enabled(name string) bool {
	return len(c.Run) == 0 || contains(c.Run, name)
}

// DefaultConfig returns the production configuration enforced by
// `make check` over this repository.
func DefaultConfig() Config {
	sim := []string{
		"repro/internal/sim",
		"repro/internal/cache",
		"repro/internal/mesh",
		"repro/internal/mem",
		"repro/internal/sparse",
		"repro/internal/experiments",
	}
	return Config{
		SimPackages: sim,
		GeometryPackages: append([]string{
			"repro/internal/spmv",
			"repro/internal/trace",
			"repro/internal/partition",
		}, sim...),
		GoroutineAllowed: []string{
			"repro/internal/obs",
		},
		HashContracts: []HashContract{{
			Package: "repro/internal/serve",
			Struct:  "JobConfig",
			Funcs:   []string{"Canonical", "Key"},
		}},
		ErrCriticalPackages: []string{
			"repro/internal/rcce",
			"repro/internal/fault",
		},
		MetricsPackage: "repro/internal/obs",
		MetricNames:    obs.MetricSchema(),
		BlockingFuncs: map[string][]string{
			"repro/internal/rcce": {
				"Barrier", "Send", "Recv", "SendFloat64s", "RecvFloat64s",
				"SendRecv", "Bcast", "Reduce", "Allreduce", "Gather",
				"Scatter", "Wait", "WaitAll", "Run", "RunWith",
			},
			"repro/internal/obs": {"ForEach", "ForEachCtx"},
		},
		SleepBanPackages: []string{
			"repro/internal/rcce",
		},
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the identifier used in findings and //sccvet:allow
	// directives.
	Name string
	// Doc is a one-line description for `sccvet -list`.
	Doc string
	// Applies reports whether the analyzer is in scope for the package
	// under the config; nil means it applies everywhere. Scope gates both
	// running the analyzer and the unused-directive check: a directive for
	// an out-of-scope analyzer is dormant, not stale.
	Applies func(Config, *Package) bool
	// Run inspects one type-checked package via the pass.
	Run func(*Pass)
}

// applies resolves the nil-Applies default.
func (a *Analyzer) applies(conf Config, pkg *Package) bool {
	return a.Applies == nil || a.Applies(conf, pkg)
}

// Analyzers returns the suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerNondeterminism,
		analyzerGoroutine,
		analyzerGeometry,
		analyzerAtomic,
		analyzerAliasing,
		analyzerHashCoverage,
		analyzerCtxProp,
		analyzerErrDiscard,
		analyzerCounterDrift,
		analyzerLockBlock,
	}
}

// AnalyzerNames returns the valid directive targets (the ten analyzers).
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Finding is one reported invariant violation.
type Finding struct {
	// Analyzer is the reporting analyzer's name ("sccvet" for problems
	// with directives themselves).
	Analyzer string
	// Pos locates the offending node.
	Pos token.Position
	// Message states the violation and the expected fix.
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Pass carries one type-checked package through the analyzer suite.
type Pass struct {
	Conf  Config
	Fset  *token.FileSet
	Path  string
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File

	current  string
	findings []Finding
	flow     *flowGraph
}

// Reportf records a finding for the currently running analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Analyzer: p.current,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunPackage runs the suite over one loaded package and returns the
// findings that survive //sccvet:allow suppression, sorted by position.
// Malformed directives are returned as findings themselves, and so is any
// well-formed directive that suppressed nothing while its analyzer ran
// here: stale suppressions are how the next real regression hides.
func RunPackage(conf Config, pkg *Package) []Finding {
	pass := &Pass{
		Conf:  conf,
		Fset:  pkg.Fset,
		Path:  pkg.Path,
		Pkg:   pkg.Types,
		Info:  pkg.Info,
		Files: pkg.Files,
	}
	ran := map[string]bool{}
	for _, a := range Analyzers() {
		if !conf.enabled(a.Name) || !a.applies(conf, pkg) {
			continue
		}
		ran[a.Name] = true
		pass.current = a.Name
		a.Run(pass)
	}
	dirs, bad := directives(pkg.Fset, pkg.Files)
	out := append([]Finding(nil), bad...)
	for _, f := range pass.findings {
		if !dirs.suppresses(f) {
			out = append(out, f)
		}
	}
	for _, d := range dirs.recs {
		if d.used || !ran[d.analyzer] {
			continue
		}
		out = append(out, Finding{
			Analyzer: "sccvet",
			Pos:      d.pos,
			Message: "unused //sccvet:allow " + d.analyzer +
				" directive: nothing on this line or the line below triggers " +
				d.analyzer + "; delete the stale suppression",
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// pkgFunc resolves a call to a package-level function of an imported
// package, returning the package path and function name.
func pkgFunc(info *types.Info, call *ast.CallExpr) (path, name string, ok bool) {
	sel, ok2 := call.Fun.(*ast.SelectorExpr)
	if !ok2 {
		return "", "", false
	}
	id, ok2 := sel.X.(*ast.Ident)
	if !ok2 {
		return "", "", false
	}
	pn, ok2 := info.Uses[id].(*types.PkgName)
	if !ok2 {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// rootIdent unwraps parens, index/slice expressions, selectors, stars and
// type assertions down to the base identifier of an lvalue-ish chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether the identifier's object is declared
// outside the [from, to] node span (i.e. it outlives the statement).
func declaredOutside(info *types.Info, id *ast.Ident, from, to token.Pos) bool {
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < from || obj.Pos() > to
}
