// Package fakepool stands in for the configured blocking operations
// (RCCE ops, pool dispatch) in the lock-across-blocking corpus.
package fakepool

func Drain() {}
