// Corpus for lock-across-blocking: a mutex held across a channel op, a
// default-less select, or a configured/transitively blocking call is a
// finding; releasing first, select-with-default, and goroutine bodies
// are not.
package lockblock

import (
	"sync"
	"time"

	"corpus/lockblock/fakepool"
)

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
}

func (s *S) SendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want `s\.mu is held across a channel send`
	s.mu.Unlock()
}

func (s *S) RecvUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `s\.mu is held across a channel receive`
}

func (s *S) ReleasedFirst(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

func (s *S) SelectDefaultIsFine(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
	default:
	}
}

func (s *S) SelectNoDefault(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `s\.mu is held across a select with no default case`
	case s.ch <- v:
	case <-s.ch:
	}
}

func (s *S) RangeUnderRLock() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	total := 0
	for v := range s.ch { // want `s\.rw is held across ranging over a channel`
		total += v
	}
	return total
}

func (s *S) ConfiguredBlockingCall() {
	s.mu.Lock()
	fakepool.Drain() // want `s\.mu is held across a call to Drain \(blocking\)`
	s.mu.Unlock()
}

func (s *S) TransitiveBlockingCall() {
	s.mu.Lock()
	s.flush() // want `s\.mu is held across a call to flush, which blocks transitively`
	s.mu.Unlock()
}

// flush blocks (it sends), so callers must not hold a lock across it.
func (s *S) flush() {
	s.ch <- 0
}

func (s *S) GoroutineBodyIsFine(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- v
	}()
}

func (s *S) BranchUnlockDoesNotLeak(cond bool, v int) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return
	}
	s.ch <- v // want `s\.mu is held across a channel send`
	s.mu.Unlock()
}

func (s *S) Excused(v int) {
	s.mu.Lock()
	s.ch <- v //sccvet:allow lock-across-blocking corpus fixture for a justified handoff
	s.mu.Unlock()
}

// Sleep-ban cases: with corpus/lockblock in Config.SleepBanPackages,
// every direct time.Sleep is a finding - lock held or not, goroutine
// body or not - because the stall is invisible to the watchdog.

func (s *S) BareSleep() {
	time.Sleep(time.Millisecond) // want `bare time\.Sleep in a watchdog-supervised package`
}

func (s *S) SleepInGoroutine() {
	go func() {
		time.Sleep(time.Millisecond) // want `bare time\.Sleep in a watchdog-supervised package`
	}()
}

func (s *S) SleepExcused() {
	time.Sleep(time.Millisecond) //sccvet:allow lock-across-blocking corpus fixture for a justified uninterruptible wait
}

// TimerWaitIsFine shows the sanctioned shape: an interruptible wait on a
// timer channel is a plain blocking op, not a banned sleep (the receive
// under a lock would still be a finding, but here no lock is held).
func (s *S) TimerWaitIsFine(abort chan struct{}) {
	t := time.NewTimer(time.Millisecond)
	select {
	case <-t.C:
	case <-abort:
		t.Stop()
	}
}
