// Corpus for the flow-layer unit tests (call graph + alias set); not an
// analyzer corpus, so it carries no want assertions.
package flowgraph

type T struct{ n int }

func A() int        { return B() + C() }
func B() int        { return C() }
func C() int        { return 1 }
func Isolated() int { return 2 }

func (t *T) M() int      { return t.helper() }
func (t *T) helper() int { return t.n }

// Indirect calls through function values are not statically resolved.
func Indirect(f func() int) int { return f() }

// Chain exercises the alias fixpoint: b and c alias the parameter, d
// aliases a field (not a whole-value copy), e re-derives from c.
func Chain(a *T) int {
	b := a
	c := b
	d := b.n
	e := c
	_ = d
	return e.n
}
