// Corpus for //sccvet:allow handling: well-formed directives suppress
// their analyzer on the same line or the line below; wrong-analyzer
// directives suppress nothing (and are flagged unused); malformed
// directives are findings.
package directive

import "time"

var sink float64

func SuppressedSameLine() {
	sink = float64(time.Now().UnixNano()) //sccvet:allow nondeterminism corpus fixture exercising same-line suppression
}

func SuppressedLineAbove() {
	//sccvet:allow nondeterminism corpus fixture exercising line-above suppression
	sink = float64(time.Now().UnixNano())
}

func WrongAnalyzer() {
	//sccvet:allow bare-goroutine suppressing a different analyzer does nothing // want `unused //sccvet:allow bare-goroutine`
	sink = float64(time.Now().UnixNano()) // want `call to time\.Now`
}

func TooFarAbove() {
	//sccvet:allow nondeterminism a directive two lines up is out of range // want `unused //sccvet:allow nondeterminism`

	sink = float64(time.Now().UnixNano()) // want `call to time\.Now`
}

func Unreferenced() {
	_ = sink //sccvet:allow nondeterminism nothing here is nondeterministic // want `unused //sccvet:allow nondeterminism`
}

func MissingReason() {
	_ = sink //sccvet:allow nondeterminism // want `missing its reason`
}

func UnknownAnalyzer() {
	_ = sink //sccvet:allow clock-skew because reasons // want `unknown analyzer`
}
