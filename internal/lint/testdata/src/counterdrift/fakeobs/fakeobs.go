// Package fakeobs stands in for the metrics registry in the
// counter-drift corpus.
package fakeobs

type Registry struct{}

func (r *Registry) Counter(name string) *int     { return new(int) }
func (r *Registry) Gauge(name string) *int       { return new(int) }
func (r *Registry) Timer(name string) *int       { return new(int) }
func (r *Registry) Sample(name string) *int      { return new(int) }
func (r *Registry) Pool(name string, n int) *int { return new(int) }
func (r *Registry) Histogram(name string) *int   { return new(int) }
