// Corpus for counter-drift: registration-site name literals must match
// the declared schema table, kind included.
package counterdrift

import "corpus/counterdrift/fakeobs"

const declaredName = "engine.cells"

func Register(r *fakeobs.Registry, dynamic string) {
	r.Counter("engine.cells")          // declared counter: ok
	r.Counter(declaredName)            // constant reference to a declared name: ok
	r.Gauge("engine.depth")            // declared gauge: ok
	r.Pool("engine.walk", 4)           // declared pool: ok
	r.Histogram("engine.wait_seconds") // declared histogram: ok
	r.Counter("engine.cellz")          // want `metric "engine\.cellz" is not in the declared schema`
	r.Gauge("engine.cells")            // want `metric "engine\.cells" is declared as a counter but registered here via Registry\.Gauge`
	r.Sample(dynamic)                  // want `Registry\.Sample called with a non-constant name`
	r.Timer("engine." + dynamic)       // want `Registry\.Timer called with a non-constant name`

	r.Histogram("engine.latency")  // want `metric "engine\.latency" is not in the declared schema`
	r.Histogram("engine.cells")    // want `metric "engine\.cells" is declared as a counter but registered here via Registry\.Histogram`
	r.Histogram("h13n." + dynamic) // want `Registry\.Histogram called with a non-constant name`
}

func Excused(r *fakeobs.Registry, dynamic string) {
	r.Counter(dynamic)   //sccvet:allow counter-drift corpus fixture for a migration-period dynamic name
	r.Histogram(dynamic) //sccvet:allow counter-drift corpus fixture for a migration-period dynamic histogram
}
