// Corpus for the nondeterminism analyzer: wall-clock reads, the global
// math/rand source, and map-range loops writing into outer slices must be
// flagged; seeded sources, slice ranges and loop-local writes must not.
package nondet

import (
	"math/rand"
	"time"
)

var sink float64

func Timing() {
	t0 := time.Now()                 // want `call to time\.Now`
	sink += time.Since(t0).Seconds() // want `call to time\.Since`
}

func GlobalRand() int {
	return rand.Intn(10) // want `math/rand\.Intn draws from the global source`
}

func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand\.Shuffle draws from the global source`
}

func SeededRandOK() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

func MapAppend(m map[string]int) []int {
	out := make([]int, 0, len(m))
	for _, v := range m { // want `range over map writes into slice out`
		out = append(out, v)
	}
	return out
}

func MapIndexWrite(m map[int]int, res []float64) {
	i := 0
	for k := range m { // want `range over map writes into slice res`
		res[i] = float64(k)
		i++
	}
}

type cell struct{ V int }

func MapFieldWrite(m map[int]int, cells []cell) {
	for k := range m { // want `range over map writes into slice cells`
		cells[0].V += k
	}
}

func SliceRangeOK(xs []int, out []int) {
	for i, v := range xs {
		out[i] = v
	}
}

func MapLocalWriteOK(m map[int]int) int {
	total := 0
	for _, v := range m {
		local := []int{v}
		local[0]++
		total += local[0]
	}
	return total
}

func MapScalarReduceOK(m map[int]int) int {
	max := 0
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}
