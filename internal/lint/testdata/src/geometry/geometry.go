// Corpus for the geometry-literal analyzer: magic cache-line/topology
// constants in address arithmetic are findings; named constants, non-magic
// literals and plain element counts are not.
package geometry

const lineShift = 5

func LineOf(addr uint64) uint64 {
	return addr >> 5 // want `magic geometry constant 5`
}

func OffsetOf(addr uint64) uint64 {
	return addr & 31 // want `magic geometry constant 31`
}

func LineBase(addr uint64) uint64 {
	return (addr >> 5) << 5 // want `magic geometry constant 5` `magic geometry constant 5`
}

func ByteOf(lineIdx int) int {
	return lineIdx * 32 // want `magic geometry constant 32`
}

func CoreWrap(core int) int {
	return core % 48 // want `magic geometry constant 48`
}

func TileWrap(tile int) int {
	return tile % 24 // want `magic geometry constant 24`
}

func ShiftAssign(addr uint64) uint64 {
	addr >>= 5 // want `magic geometry constant 5`
	return addr
}

func NamedConstOK(addr uint64) uint64 {
	return addr >> lineShift
}

func PlainCountOK(n int) int {
	return n * 32 // plain element count: no address hint, not an address type
}

func KibOK(n int) int {
	return n << 10
}

func HalfOK(tiles int) int {
	return tiles / 2
}
