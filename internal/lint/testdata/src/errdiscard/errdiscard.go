// Corpus for error-discard: dropped error results from the configured
// error-critical package (the RCCE stand-in) are findings.
package errdiscard

import "corpus/errdiscard/fakercce"

func Discards(u *fakercce.UE) {
	u.Barrier()           // want `UE\.Barrier returns an error .* result discarded`
	_ = u.Barrier()       // want `UE\.Barrier error assigned to _`
	go u.Barrier()        // want `UE\.Barrier returns an error .* error lost in go statement`
	defer u.Barrier()     // want `UE\.Barrier returns an error .* error lost in defer`
	fakercce.RunWith(nil) // want `fakercce\.RunWith returns an error .* result discarded`
	_, _ = u.Recv()       // want `UE\.Recv error assigned to _`
}

func Handles(u *fakercce.UE) error {
	if err := u.Barrier(); err != nil {
		return err
	}
	buf, err := u.Recv()
	if err != nil {
		return err
	}
	return u.Send(buf)
}

func DeliberateDrain(u *fakercce.UE) {
	_ = u.Barrier() //sccvet:allow error-discard draining a known-complete op during shutdown
}
