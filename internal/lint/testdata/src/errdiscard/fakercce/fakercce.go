// Package fakercce stands in for the RCCE communication layer in the
// error-discard corpus: every op returns an error the caller must see.
package fakercce

type UE struct{}

func (u *UE) Barrier() error          { return nil }
func (u *UE) Send(b []byte) error     { return nil }
func (u *UE) Recv() ([]byte, error)   { return nil, nil }
func RunWith(f func(*UE) error) error { return nil }
