// Corpus for the result-aliasing analyzer: exported functions must not
// return parameter-backed slices or scratch-named fields; copies, locals
// and stable data-field getters are fine, as is anything unexported.
package aliasing

type Table struct {
	vals    []float64
	scratch []float64
	workBuf []float64
}

func Identity(xs []float64) []float64 {
	return xs // want `returns parameter xs`
}

func Head(xs []float64, n int) []float64 {
	return xs[:n] // want `returns parameter xs`
}

func (t *Table) Scratch() []float64 {
	return t.scratch // want `returns scratch buffer t\.scratch`
}

func (t *Table) ScratchHead(n int) []float64 {
	return t.scratch[:n] // want `returns scratch buffer t\.scratch`
}

func (t *Table) Work() []float64 {
	return t.workBuf // want `returns scratch buffer t\.workBuf`
}

func CopyOK(xs []float64) []float64 {
	return append([]float64(nil), xs...)
}

func (t *Table) ValsOK() []float64 {
	return t.vals // stable data field: the accessor's documented contract
}

func internalScratch(t *Table) []float64 {
	return t.scratch // unexported: free to alias within the package
}

func MakeOK(n int) []float64 {
	return make([]float64, n)
}

func LitCallbackOK(xs []float64) func() []float64 {
	// The literal's return aliases xs, but the literal is not the
	// exported function's own return statement.
	return func() []float64 { return xs }
}
