// Corpus for the atomic-consistency analyzer: a variable reached through
// sync/atomic anywhere must be reached through sync/atomic everywhere.
// Typed atomics and plain-only fields are immune.
package atomicuse

import "sync/atomic"

type counter struct {
	n    uint64
	hits atomic.Uint64
	cold uint64
}

func (c *counter) Inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *counter) Reset() {
	c.n = 0 // want `n is accessed with sync/atomic`
}

func (c *counter) Peek() uint64 {
	return c.n // want `n is accessed with sync/atomic`
}

func (c *counter) Read() uint64 {
	return atomic.LoadUint64(&c.n)
}

func (c *counter) TypedOK() uint64 {
	c.hits.Add(1)
	return c.hits.Load()
}

func (c *counter) PlainOnlyOK() uint64 {
	c.cold++
	return c.cold
}

var global int64

func BumpGlobal() {
	atomic.AddInt64(&global, 1)
}

func PeekGlobal() int64 {
	return global // want `global is accessed with sync/atomic`
}
