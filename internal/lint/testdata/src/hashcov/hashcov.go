// Corpus for hash-coverage: every exported field of Cfg must be read,
// transitively, by Canonical or Key.
package hashcov

import "fmt"

type Cfg struct {
	Experiment string // covered: read directly by Canonical
	Scale      int    // covered: read by Key via the helper
	Stride     int    // want `exported field Cfg\.Stride is not read by Canonical/Key`
	WriteOnly  string // want `exported field Cfg\.WriteOnly is not read by Canonical/Key`
	Knob       int    //sccvet:allow hash-coverage engine knob, provably output-invariant
	hidden     int    // unexported: outside the contract
}

func (c *Cfg) Canonical() {
	if c.Experiment == "" {
		c.Experiment = "baseline"
	}
	// Storing into a field is not reading it: WriteOnly stays uncovered.
	c.WriteOnly = "normalized"
	_ = c.hidden
}

func (c *Cfg) Key() string {
	return fmt.Sprintf("%s/%d", c.Experiment, scalePart(c))
}

// scalePart is reachable from Key through the intra-package call graph,
// so the Scale read below covers the field.
func scalePart(c *Cfg) int {
	return c.Scale * 2
}
