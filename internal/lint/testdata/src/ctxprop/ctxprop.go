// Corpus for ctx-propagation: fresh root contexts are banned in library
// code, and a function holding a context must not call a ctx-ignoring
// callee when a Ctx variant exists.
package ctxprop

import "context"

func Fresh() {
	_ = context.Background() // want `context\.Background\(\) in library function Fresh`
}

func FreshTODO() {
	_ = context.TODO() // want `context\.TODO\(\) in library function FreshTODO`
}

func Detached(ctx context.Context) {
	_ = ctx
	_ = context.Background() // want `context\.Background\(\) in Detached, which already receives a context`
}

func AllowedFallback(ctx context.Context) context.Context {
	if ctx != nil {
		return ctx
	}
	return context.Background() //sccvet:allow ctx-propagation documented nil-means-Background fallback
}

type Pool struct{}

func (p *Pool) ForEach(n int, fn func(int))                               {}
func (p *Pool) ForEachCtx(ctx context.Context, n int, fn func(int)) error { return nil }

func Dispatch(ctx context.Context, p *Pool) {
	p.ForEach(4, func(int) {}) // want `Dispatch receives a context but calls ForEach, which ignores it, while ForEachCtx accepts one`
}

func DispatchCtx(ctx context.Context, p *Pool) error {
	return p.ForEachCtx(ctx, 4, func(int) {})
}

// Walk / WalkCtx exercise the package-level sibling lookup.
func Walk(n int) int                                  { return n }
func WalkCtx(ctx context.Context, n int) (int, error) { return n, nil }

func Sweep(ctx context.Context) int {
	return Walk(3) // want `Sweep receives a context but calls Walk, which ignores it, while WalkCtx accepts one`
}

// NoCtx has no context parameter, so calling ForEach is fine (rule 2
// only bites when a context is available to thread).
func NoCtx(p *Pool) {
	p.ForEach(2, func(int) {})
}
