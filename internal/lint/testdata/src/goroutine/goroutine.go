// Corpus for the bare-goroutine analyzer: every go statement in a
// non-exempt package is a finding, whatever it launches.
package goroutine

import "sync"

func Fan(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want `bare goroutine outside the obs pool`
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func Launch(f func()) {
	go f() // want `bare goroutine outside the obs pool`
}

func InlineOK(f func()) {
	f()
}
