package lint

import (
	"go/ast"
	"go/types"
)

// The flow layer is the shared substrate of the v2 analyzers: a def-use
// helper (which locals alias which seed values inside one function body)
// and an intra-package static call graph (which declared function calls
// which). Both are deliberately lightweight - stdlib go/types only, no
// SSA - because the invariants they serve are structural:
//
//   - hash-coverage follows Canonical/Key through same-package helpers to
//     prove every exported JobConfig field is read by the content hash;
//   - ctx-propagation tracks which locals are derived from a function's
//     context parameter;
//   - lock-across-blocking summarises, transitively, which functions
//     perform blocking channel/RCCE/pool operations, so a call made under
//     a mutex is judged by what it eventually does, not just its name.
//
// A flowGraph is built once per Pass (lazily) and shared by every
// analyzer that asks for it.
type flowGraph struct {
	// decls maps each function or method declared in the package to its
	// syntax.
	decls map[*types.Func]*ast.FuncDecl
	// callees lists the statically resolved same-package call targets of
	// each declared function, in source order (duplicates retained).
	callees map[*types.Func][]*types.Func
}

// Flow returns the package's flow graph, building it on first use.
func (p *Pass) Flow() *flowGraph {
	if p.flow != nil {
		return p.flow
	}
	g := &flowGraph{
		decls:   map[*types.Func]*ast.FuncDecl{},
		callees: map[*types.Func][]*types.Func{},
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[fn] = fd
		}
	}
	for fn, fd := range g.decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(p.Info, call)
			if callee == nil {
				return true
			}
			if _, local := g.decls[callee]; local {
				g.callees[fn] = append(g.callees[fn], callee)
			}
			return true
		})
	}
	p.flow = g
	return g
}

// calleeOf statically resolves the function or method a call invokes,
// returning nil for calls through function values, built-ins and
// conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	// Unwrap generic instantiation syntax (f[T](...)).
	switch x := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(x.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(x.X)
	}
	var id *ast.Ident
	switch x := fun.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// reachable walks the call graph from the roots, returning every declared
// function reachable through same-package static calls (roots included,
// when declared locally).
func (g *flowGraph) reachable(roots ...*types.Func) map[*types.Func]bool {
	seen := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if fn == nil || seen[fn] {
			return
		}
		if _, ok := g.decls[fn]; !ok {
			return
		}
		seen[fn] = true
		for _, callee := range g.callees[fn] {
			visit(callee)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}

// aliasSet computes, by def-use fixpoint over the body, the set of
// objects transitively assigned from the seeds via plain copies
// (d := c, e = d). Only whole-value copies propagate: a binding to a
// field or element of an alias is not itself an alias of the seed.
func aliasSet(info *types.Info, body *ast.BlockStmt, seeds map[types.Object]bool) map[types.Object]bool {
	set := make(map[types.Object]bool, len(seeds))
	for o := range seeds {
		set[o] = true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				src, ok := ast.Unparen(rhs).(*ast.Ident)
				if !ok || !set[info.ObjectOf(src)] {
					continue
				}
				dst, ok := as.Lhs[i].(*ast.Ident)
				if !ok || dst.Name == "_" {
					continue
				}
				obj := info.ObjectOf(dst)
				if obj != nil && !set[obj] {
					set[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return set
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// contextParamIndex returns the index of the first context.Context
// parameter of the signature, or -1.
func contextParamIndex(sig *types.Signature) int {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}
