package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression comment. The format is
//
//	//sccvet:allow <analyzer> <reason>
//
// where <analyzer> is one of the suite's analyzer names and <reason> is
// mandatory free text recorded next to the suppressed site. A directive
// suppresses findings of that analyzer on its own line and on the line
// immediately below (so it can trail the offending statement or sit on
// its own line above it).
const directivePrefix = "//sccvet:allow"

// directiveRec is one well-formed //sccvet:allow directive; used flips
// when the directive suppresses at least one finding, so RunPackage can
// flag the stale ones.
type directiveRec struct {
	pos      token.Position
	analyzer string
	used     bool
}

// suppressionSet indexes directives by (file, line, analyzer) and keeps
// the underlying records for the unused-directive check.
type suppressionSet struct {
	byKey map[suppressionKey]*directiveRec
	recs  []*directiveRec
}

type suppressionKey struct {
	file     string
	line     int
	analyzer string
}

// suppresses reports whether a directive covers the finding, marking the
// directive used.
func (s *suppressionSet) suppresses(f Finding) bool {
	rec := s.byKey[suppressionKey{f.Pos.Filename, f.Pos.Line, f.Analyzer}]
	if rec == nil {
		return false
	}
	rec.used = true
	return true
}

// directives scans every comment for //sccvet:allow lines, returning the
// suppression index plus a finding for each malformed directive (unknown
// analyzer or missing reason). Malformed directives never suppress.
func directives(fset *token.FileSet, files []*ast.File) (*suppressionSet, []Finding) {
	set := &suppressionSet{byKey: map[suppressionKey]*directiveRec{}}
	var bad []Finding
	valid := AnalyzerNames()
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				pos := fset.Position(c.Pos())
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					// e.g. //sccvet:allowed - not ours.
					continue
				}
				// Anything after an embedded "//" is commentary on the
				// directive (the corpus uses it for want assertions),
				// not part of analyzer name or reason.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Finding{
						Analyzer: "sccvet",
						Pos:      pos,
						Message:  "malformed //sccvet:allow directive: want \"//sccvet:allow <analyzer> <reason>\"",
					})
					continue
				}
				name := fields[0]
				if !contains(valid, name) {
					bad = append(bad, Finding{
						Analyzer: "sccvet",
						Pos:      pos,
						Message: "//sccvet:allow names unknown analyzer \"" + name +
							"\" (valid: " + strings.Join(valid, ", ") + ")",
					})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "sccvet",
						Pos:      pos,
						Message:  "//sccvet:allow " + name + " is missing its reason: every suppression must say why",
					})
					continue
				}
				rec := &directiveRec{pos: pos, analyzer: name}
				set.recs = append(set.recs, rec)
				set.byKey[suppressionKey{pos.Filename, pos.Line, name}] = rec
				set.byKey[suppressionKey{pos.Filename, pos.Line + 1, name}] = rec
			}
		}
	}
	return set, bad
}
