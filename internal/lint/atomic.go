package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerAtomic enforces all-or-nothing atomicity per variable: once any
// site reaches a field or package-level variable through a sync/atomic
// pointer function (atomic.AddUint64(&s.n, 1), atomic.LoadInt64(&hits),
// ...), every other load and store of that variable must be atomic too.
// A lone plain `s.n = 0` next to atomic increments is a data race the
// race detector only catches when the schedule cooperates; this analyzer
// catches it on every run. Typed atomics (atomic.Uint64 fields) are
// immune by construction and therefore preferred.
var analyzerAtomic = &Analyzer{
	Name: "atomic-consistency",
	Doc:  "flags variables accessed via sync/atomic in one place and by plain load/store elsewhere",
	Run:  runAtomic,
}

// atomicPointerFunc reports whether the sync/atomic function name takes a
// pointer to the shared word as its first argument.
func atomicPointerFunc(name string) bool {
	for _, prefix := range []string{"Add", "And", "Or", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func runAtomic(p *Pass) {
	// Pass 1: find every variable whose address feeds a sync/atomic
	// pointer function, remembering the identifiers at those call sites.
	atomicVars := map[*types.Var]string{} // var -> one atomic site (for the message)
	atomicSites := map[*ast.Ident]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFunc(p.Info, call)
			if !ok || path != "sync/atomic" || !atomicPointerFunc(name) || len(call.Args) == 0 {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch x := ast.Unparen(un.X).(type) {
			case *ast.SelectorExpr:
				id = x.Sel
			case *ast.Ident:
				id = x
			default:
				return true
			}
			if v, ok := p.Info.Uses[id].(*types.Var); ok {
				if _, seen := atomicVars[v]; !seen {
					atomicVars[v] = p.Fset.Position(id.Pos()).String()
				}
				atomicSites[id] = true
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return
	}
	// Pass 2: every other use of those variables is a plain access.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || atomicSites[id] {
				return true
			}
			v, ok := p.Info.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			site, isAtomic := atomicVars[v]
			if !isAtomic {
				return true
			}
			p.Reportf(id.Pos(),
				"%s is accessed with sync/atomic at %s but plainly here: mixing atomic and plain access is a data race; make every access atomic (or migrate the field to a typed atomic like atomic.Uint64)",
				v.Name(), site)
			return true
		})
	}
}
