package lint

import (
	"path/filepath"
	"testing"
)

// TestLiveTreeIsSccvetClean is the meta-test behind `make check`: the
// whole module must satisfy every analyzer under the production config,
// with any remaining suppression carrying a //sccvet:allow reason. A
// failure here means a determinism, concurrency or geometry invariant
// regressed - fix the code, or annotate the site with its justification.
func TestLiveTreeIsSccvetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root, "repro")
	pkgs, err := loader.LoadAll("")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages from %s; loader lost part of the tree", len(pkgs), root)
	}
	conf := DefaultConfig()
	for _, pkg := range pkgs {
		for _, f := range RunPackage(conf, pkg) {
			t.Errorf("%s", f)
		}
	}
}
