package lint

import (
	"path/filepath"
	"testing"
)

// TestLiveTreeIsSccvetClean is the meta-test behind `make check`: the
// whole module must satisfy every analyzer - the v1 determinism/
// concurrency/geometry suite and the v2 flow-aware service-era suite -
// under the production config, with any remaining suppression carrying a
// //sccvet:allow reason and actually suppressing something (stale
// directives are findings too). A failure here means an invariant
// regressed - fix the code, or annotate the site with its justification.
func TestLiveTreeIsSccvetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root, "repro")
	pkgs, err := loader.LoadAll("")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages from %s; loader lost part of the tree", len(pkgs), root)
	}
	conf := DefaultConfig()
	ran := map[string]bool{}
	for _, pkg := range pkgs {
		for _, a := range Analyzers() {
			if conf.enabled(a.Name) && a.applies(conf, pkg) {
				ran[a.Name] = true
			}
		}
		for _, f := range RunPackage(conf, pkg) {
			t.Errorf("%s", f)
		}
	}
	// The clean result must come from the full suite actually running, not
	// from scoping accidents: every analyzer must apply somewhere.
	for _, a := range Analyzers() {
		if !ran[a.Name] {
			t.Errorf("analyzer %s never applied to any live package; DefaultConfig scoping is broken", a.Name)
		}
	}
}
