package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerHashCoverage guards the content-addressed result cache's one
// structural assumption: serve.JobConfig.Hash() covers every field that
// can change a result. The hash is defined over Canonical()+Key(); a new
// config field that neither function reads is invisible to the hash, so
// two *different* jobs collide on one cache entry and the second client
// silently receives the first job's bytes - a stale-hit bug no runtime
// test catches until the exact collision occurs.
//
// For every contract in Config.HashContracts the analyzer computes, over
// the intra-package call graph (flow.go), the set of target-struct fields
// transitively read by the named functions, and reports each exported
// field outside that set at its declaration. A field that is deliberately
// excluded (an engine knob that provably never changes the bytes, like
// Parallelism) carries //sccvet:allow hash-coverage <reason> on its line.
var analyzerHashCoverage = &Analyzer{
	Name: "hash-coverage",
	Doc:  "flags exported config-struct fields not read (transitively) by the declared canonicalization/hash functions",
	Applies: func(conf Config, pkg *Package) bool {
		for _, hc := range conf.HashContracts {
			if hc.Package == pkg.Path {
				return true
			}
		}
		return false
	},
	Run: runHashCoverage,
}

// HashContract declares one content-addressing invariant: every exported
// field of Package.Struct must be read, directly or through same-package
// calls, by at least one of Funcs (methods of the struct or package-level
// functions).
type HashContract struct {
	Package string
	Struct  string
	Funcs   []string
}

func runHashCoverage(p *Pass) {
	for _, hc := range p.Conf.HashContracts {
		if hc.Package != p.Path {
			continue
		}
		checkHashContract(p, hc)
	}
}

func checkHashContract(p *Pass, hc HashContract) {
	obj := p.Pkg.Scope().Lookup(hc.Struct)
	tn, ok := obj.(*types.TypeName)
	if !ok {
		p.Reportf(p.Files[0].Package,
			"hash contract names type %s.%s, which this package does not declare",
			hc.Package, hc.Struct)
		return
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		p.Reportf(tn.Pos(), "hash contract target %s is not a struct type", hc.Struct)
		return
	}

	// The contract's fields: every exported field of the struct.
	fields := map[*types.Var]bool{}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Exported() {
			fields[f] = true
		}
	}

	// Resolve the hash functions: methods of the named type first, then
	// package-level functions.
	var roots []*types.Func
	for _, name := range hc.Funcs {
		if fn := lookupMethod(named, name); fn != nil {
			roots = append(roots, fn)
			continue
		}
		if fn, ok := p.Pkg.Scope().Lookup(name).(*types.Func); ok {
			roots = append(roots, fn)
			continue
		}
		p.Reportf(tn.Pos(),
			"hash contract for %s names %s, but the package declares no such method or function",
			hc.Struct, name)
	}
	if len(roots) == 0 {
		return
	}

	read := fieldReads(p, st, roots)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() || read[f] {
			continue
		}
		p.Reportf(f.Pos(),
			"exported field %s.%s is not read by %s: a field outside the content hash makes two different jobs collide on one cached result; read it there or annotate //sccvet:allow hash-coverage <reason>",
			hc.Struct, f.Name(), strings.Join(hc.Funcs, "/"))
	}
}

// lookupMethod finds a method by name on the named type (value or pointer
// receiver).
func lookupMethod(named *types.Named, name string) *types.Func {
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// fieldReads returns the struct fields read anywhere in the functions
// reachable from roots through the intra-package call graph. A selector
// used purely as an assignment target is a write, not a read; compound
// assignments (+=) and read-modify uses count as reads.
func fieldReads(p *Pass, st *types.Struct, roots []*types.Func) map[*types.Var]bool {
	fields := map[*types.Var]bool{}
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = true
	}
	read := map[*types.Var]bool{}
	g := p.Flow()
	for fn := range g.reachable(roots...) {
		fd := g.decls[fn]
		writes := pureWriteSelectors(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || writes[sel] {
				return true
			}
			field := selectedField(p.Info, sel)
			if field != nil && fields[field] {
				read[field] = true
			}
			return true
		})
	}
	return read
}

// selectedField resolves a selector expression to the struct field it
// reads, or nil when it is not a field selection.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok {
		if s.Kind() != types.FieldVal {
			return nil
		}
		v, _ := s.Obj().(*types.Var)
		return v
	}
	// Qualified references (pkg.Var) land in Uses, not Selections; those
	// are never struct fields.
	return nil
}

// pureWriteSelectors collects selector expressions that appear only as
// the direct target of a plain assignment (c.Scale = v): storing into a
// field does not prove the hash *reads* it.
func pureWriteSelectors(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	writes := map[*ast.SelectorExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// Compound assignments (+=, &^=, ...) read the target first.
		if as.Tok.String() != "=" && as.Tok.String() != ":=" {
			return true
		}
		for _, lhs := range as.Lhs {
			if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
				writes[sel] = true
			}
		}
		return true
	})
	return writes
}
