package lint

import (
	"go/ast"
	"go/types"
)

// analyzerCtxProp enforces the cancellation contract PR 4 threaded
// through the engine: a context that stops at a function boundary is a
// job that cannot be cancelled. Two rules:
//
//  1. context.Background() / context.TODO() are banned outside package
//     main (tests are never analyzed): library code must thread the
//     caller's context, and the deliberate nil-means-Background fallback
//     helpers carry //sccvet:allow ctx-propagation <reason>.
//  2. A function that accepts a context.Context must use it when fanning
//     out: calling a callee that ignores contexts while a context-aware
//     variant (<Name>Ctx, same receiver or package) exists drops
//     cancellation on the floor - the exact bug class where a cancelled
//     job keeps simulating because a ForEach was not a ForEachCtx.
//
// The def-use layer (flow.go aliasSet) recognises contexts derived from
// the parameter (jctx, cancel := context.WithTimeout(ctx, d)), so message
// 1 can distinguish "make a fresh context" from "you already have one".
var analyzerCtxProp = &Analyzer{
	Name: "ctx-propagation",
	Doc:  "flags context.Background/TODO in library code and ctx-ignoring calls where a Ctx variant exists",
	Run:  runCtxProp,
}

func runCtxProp(p *Pass) {
	isMain := p.Pkg.Name() == "main"
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			var sig *types.Signature
			if fn != nil {
				sig = fn.Type().(*types.Signature)
			}
			ctxObj := ctxParamObject(p, fd, sig)
			if !isMain {
				banFreshContexts(p, fd, ctxObj != nil)
			}
			if ctxObj != nil {
				checkCtxThreading(p, fd, ctxObj)
			}
		}
	}
}

// ctxParamObject returns the object of the function's context.Context
// parameter (the first one, by convention the only one), or nil.
func ctxParamObject(p *Pass, fd *ast.FuncDecl, sig *types.Signature) types.Object {
	if sig == nil {
		return nil
	}
	i := contextParamIndex(sig)
	if i < 0 {
		return nil
	}
	obj := sig.Params().At(i)
	if obj.Name() == "" || obj.Name() == "_" {
		return nil
	}
	return obj
}

// banFreshContexts reports context.Background()/TODO() calls in the
// function body. hasCtx sharpens the message when the function already
// receives a context it should thread instead.
func banFreshContexts(p *Pass, fd *ast.FuncDecl, hasCtx bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, name, ok := pkgFunc(p.Info, call)
		if !ok || path != "context" || (name != "Background" && name != "TODO") {
			return true
		}
		if hasCtx {
			p.Reportf(call.Pos(),
				"context.%s() in %s, which already receives a context: thread the parameter (or a context derived from it) so cancellation reaches this call, or annotate //sccvet:allow ctx-propagation <reason>",
				name, fd.Name.Name)
		} else {
			p.Reportf(call.Pos(),
				"context.%s() in library function %s: a fresh root context detaches this work from every caller's cancellation; accept a ctx parameter instead, or annotate //sccvet:allow ctx-propagation <reason>",
				name, fd.Name.Name)
		}
		return true
	})
}

// checkCtxThreading flags calls, inside a context-accepting function,
// to callees that take no context while a context-aware variant of the
// same name exists ("<Name>Ctx" on the same receiver type or in the same
// package).
func checkCtxThreading(p *Pass, fd *ast.FuncDecl, ctxObj types.Object) {
	derived := aliasSet(p.Info, fd.Body, map[types.Object]bool{ctxObj: true})
	_ = derived // the alias set feeds the message below; see ctxArgDerived
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		// Goroutine bodies still capture ctx lexically, so descend.
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(p.Info, call)
		if callee == nil {
			return true
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok || contextParamIndex(sig) >= 0 {
			return true
		}
		variant := ctxVariantOf(callee)
		if variant == nil {
			return true
		}
		p.Reportf(call.Pos(),
			"%s receives a context but calls %s, which ignores it, while %s accepts one: cancellation stops here; call the Ctx variant with %s (or a context derived from it), or annotate //sccvet:allow ctx-propagation <reason>",
			fd.Name.Name, callee.Name(), variant.Name(), ctxObj.Name())
		return true
	})
}

// ctxVariantOf looks for a context-accepting sibling of the callee named
// "<Name>Ctx": a method on the same receiver type, or a function in the
// same package scope.
func ctxVariantOf(callee *types.Func) *types.Func {
	want := callee.Name() + "Ctx"
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if recv := sig.Recv(); recv != nil {
		named := namedOf(recv.Type())
		if named == nil {
			return nil
		}
		m := lookupMethod(named, want)
		if m == nil {
			return nil
		}
		msig, ok := m.Type().(*types.Signature)
		if ok && contextParamIndex(msig) >= 0 {
			return m
		}
		return nil
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return nil
	}
	fn, ok := pkg.Scope().Lookup(want).(*types.Func)
	if !ok {
		return nil
	}
	fsig, ok := fn.Type().(*types.Signature)
	if ok && contextParamIndex(fsig) >= 0 {
		return fn
	}
	return nil
}

// namedOf unwraps pointers down to the named type, if any.
func namedOf(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}
