package partition

import (
	"testing"

	"repro/internal/sparse"
)

func TestBFSClusteredCovers(t *testing.T) {
	a := genMatrix(21)
	for _, k := range []int{1, 3, 8, 48} {
		p := BFSClustered(a, k)
		if len(p) != k {
			t.Fatalf("k=%d: %d parts", k, len(p))
		}
		if err := p.Validate(a.Rows); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestBFSClusteredShrinksXFootprintOnShuffledBand(t *testing.T) {
	band := sparse.Generate(sparse.Gen{
		Name: "b", Class: sparse.PatternBanded, N: 4000, NNZTarget: 40000,
		Bandwidth: 40, Seed: 5,
	})
	shuffled := sparse.ApplySymmetric(band, sparse.RandomPerm(4000, 9))
	const k = 8
	contiguous := ByNNZ(shuffled, k)
	clustered := BFSClustered(shuffled, k)

	sum := func(v []int) int {
		s := 0
		for _, x := range v {
			s += x
		}
		return s
	}
	fc := sum(XFootprint(shuffled, contiguous))
	fb := sum(XFootprint(shuffled, clustered))
	if fb >= fc {
		t.Fatalf("BFS footprint %d not below contiguous %d", fb, fc)
	}
}

func TestBFSClusteredNoopOnOrderedBand(t *testing.T) {
	// An already-ordered band gains nothing (footprints comparable).
	band := sparse.Generate(sparse.Gen{
		Name: "b", Class: sparse.PatternBanded, N: 2000, NNZTarget: 20000,
		Bandwidth: 30, Seed: 6,
	})
	const k = 4
	sum := func(v []int) int {
		s := 0
		for _, x := range v {
			s += x
		}
		return s
	}
	fc := sum(XFootprint(band, ByNNZ(band, k)))
	fb := sum(XFootprint(band, BFSClustered(band, k)))
	if float64(fb) > 1.3*float64(fc) {
		t.Fatalf("BFS hurt an ordered band: %d vs %d", fb, fc)
	}
}

func TestBFSClusteredBalance(t *testing.T) {
	a := genMatrix(22)
	p := BFSClustered(a, 8)
	if im := p.Imbalance(a); im > 2.5 {
		t.Fatalf("imbalance %.2f", im)
	}
}

func TestBFSClusteredDisconnected(t *testing.T) {
	// Block-diagonal with isolated rows.
	coo := sparse.NewCOO(10, 10, 10)
	for i := 0; i < 10; i++ {
		coo.Append(i, i, 1)
	}
	a := coo.ToCSR()
	p := BFSClustered(a, 3)
	if err := p.Validate(10); err != nil {
		t.Fatal(err)
	}
}

func TestSchemeBFSDispatch(t *testing.T) {
	a := genMatrix(23)
	p, err := Split(SchemeBFS, a, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(a.Rows); err != nil {
		t.Fatal(err)
	}
}

func TestXFootprintKnown(t *testing.T) {
	// Identity: each row references exactly its own column.
	a := sparse.Identity(6)
	p := ByRows(6, 2)
	f := XFootprint(a, p)
	if f[0] != 3 || f[1] != 3 {
		t.Fatalf("footprints = %v", f)
	}
}

func TestBFSPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	BFSClustered(sparse.Identity(3), 0)
}
