package partition

import (
	"sort"

	"repro/internal/sparse"
)

// BFSClustered is a locality-aware partitioner: it orders rows by a
// breadth-first traversal of the matrix's symmetrised adjacency graph (so
// graph-adjacent rows - which share x entries - sit in the same block) and
// then cuts the BFS order into k contiguous pieces with balanced nonzero
// counts. For matrices whose natural row order hides the structure (e.g. a
// permuted band), this shrinks each UE's x footprint and with it the
// per-core cache miss rate.
func BFSClustered(a *sparse.CSR, k int) Parts {
	if k <= 0 {
		panic("partition: k must be positive")
	}
	n := a.Rows
	order := bfsOrder(a)

	// Cut the BFS order into k pieces balanced by nonzeros.
	parts := make(Parts, k)
	total := a.NNZ()
	target := func(u int) int { return int(float64(total) * float64(u+1) / float64(k)) }
	cum := 0
	u := 0
	start := 0
	for pos, row := range order {
		cum += a.RowNNZ(int(row))
		if cum >= target(u) && u < k-1 && pos+1 < n {
			parts[u] = append([]int32(nil), order[start:pos+1]...)
			start = pos + 1
			u++
		}
	}
	parts[u] = append([]int32(nil), order[start:]...)
	// Any UEs past the last filled one keep empty (but non-nil) lists.
	for i := range parts {
		if parts[i] == nil {
			parts[i] = []int32{}
		}
	}
	return parts
}

// bfsOrder returns the rows of a in breadth-first order over the
// symmetrised pattern, visiting components in ascending first-row order.
func bfsOrder(a *sparse.CSR) []int32 {
	n := a.Rows
	t := a.Transpose()
	visited := make([]bool, n)
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	var nbr []int32
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			nbr = nbr[:0]
			for k := a.Ptr[v]; k < a.Ptr[v+1]; k++ {
				nbr = append(nbr, a.Index[k])
			}
			for k := t.Ptr[v]; k < t.Ptr[v+1]; k++ {
				nbr = append(nbr, t.Index[k])
			}
			sort.Slice(nbr, func(i, j int) bool { return nbr[i] < nbr[j] })
			prev := int32(-1)
			for _, c := range nbr {
				if c == prev || int(c) == int(v) {
					prev = c
					continue
				}
				prev = c
				if !visited[c] {
					visited[c] = true
					queue = append(queue, c)
				}
			}
		}
	}
	return order
}

// XFootprint returns, per UE, the number of distinct x entries its rows
// reference - the locality metric BFSClustered optimises.
func XFootprint(a *sparse.CSR, p Parts) []int {
	out := make([]int, len(p))
	seen := make([]int32, a.Cols) // generation marks
	gen := int32(0)
	for u, rows := range p {
		gen++
		count := 0
		for _, r := range rows {
			for k := a.Ptr[r]; k < a.Ptr[r+1]; k++ {
				c := a.Index[k]
				if seen[c] != gen {
					seen[c] = gen
					count++
				}
			}
		}
		out[u] = count
	}
	return out
}
