package partition

import (
	"testing"

	"repro/internal/sparse"
)

// degenerate CSR skeletons exercising ByNNZ's leftover-row branch
// (partition.go: "pathological Ptr"): empty rows, all mass in one row, and
// more UEs than rows. Only Ptr matters to the partitioner; Index/Val stay
// empty-but-consistent.
func skeleton(name string, ptr []int32) *sparse.CSR {
	n := len(ptr) - 1
	nnz := int(ptr[n])
	return &sparse.CSR{
		Name: name, Rows: n, Cols: n,
		Ptr:   ptr,
		Index: make([]int32, nnz),
		Val:   make([]float64, nnz),
	}
}

// TestByNNZDegeneratePtrCoversEveryRowOnce is the regression contract for
// the leftover-row branch: whatever shape Ptr takes, every row must land on
// exactly one UE.
func TestByNNZDegeneratePtrCoversEveryRowOnce(t *testing.T) {
	cases := []struct {
		name string
		ptr  []int32
	}{
		{"zero-matrix", []int32{0, 0, 0, 0, 0, 0, 0, 0, 0}},
		{"all-in-first-row", []int32{0, 100, 100, 100, 100, 100}},
		{"all-in-last-row", []int32{0, 0, 0, 0, 0, 100}},
		{"single-heavy-middle", []int32{0, 1, 1, 90, 91, 92}},
		{"single-row", []int32{0, 7}},
		{"alternating-empty", []int32{0, 5, 5, 10, 10, 15, 15, 20}},
		{"front-loaded", []int32{0, 50, 60, 61, 62, 63, 64}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a := skeleton(tc.name, tc.ptr)
			for _, k := range []int{1, 2, 3, a.Rows, a.Rows + 3, 48} {
				parts := ByNNZ(a, k)
				if len(parts) != k {
					t.Fatalf("k=%d: got %d parts", k, len(parts))
				}
				if err := parts.Validate(a.Rows); err != nil {
					t.Errorf("k=%d: %v", k, err)
				}
				// Contiguity: concatenating the blocks must walk 0..n-1 in
				// order (the CSR streams rely on it).
				next := int32(0)
				for _, rows := range parts {
					for _, r := range rows {
						if r != next {
							t.Fatalf("k=%d: rows not contiguous ascending: got %d, want %d", k, r, next)
						}
						next++
					}
				}
			}
		})
	}
}
