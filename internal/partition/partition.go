// Package partition splits the rows of a sparse matrix across units of
// execution. The paper's scheme assigns contiguous row blocks such that
// every UE receives (as nearly as possible) the same number of nonzeros;
// by-rows and cyclic splits are provided for the partitioning ablation.
package partition

import (
	"fmt"

	"repro/internal/sparse"
)

// Parts is one row assignment per UE: Parts[u] lists the rows UE u owns,
// in the order it will process them.
type Parts [][]int32

// Validate checks that parts cover [0, n) exactly once.
func (p Parts) Validate(n int) error {
	seen := make([]bool, n)
	total := 0
	for u, rows := range p {
		for _, r := range rows {
			if r < 0 || int(r) >= n {
				return fmt.Errorf("partition: UE %d owns out-of-range row %d", u, r)
			}
			if seen[r] {
				return fmt.Errorf("partition: row %d assigned twice", r)
			}
			seen[r] = true
			total++
		}
	}
	if total != n {
		return fmt.Errorf("partition: %d of %d rows assigned", total, n)
	}
	return nil
}

// NNZCounts returns the number of nonzeros each UE owns.
func (p Parts) NNZCounts(a *sparse.CSR) []int {
	out := make([]int, len(p))
	for u, rows := range p {
		for _, r := range rows {
			out[u] += a.RowNNZ(int(r))
		}
	}
	return out
}

// Imbalance returns max/mean of the per-UE nonzero counts (1 = perfect).
func (p Parts) Imbalance(a *sparse.CSR) float64 {
	counts := p.NNZCounts(a)
	maxC, sum := 0, 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
		sum += c
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(counts))
	return float64(maxC) / mean
}

// ByNNZ splits the matrix row-wise into k contiguous blocks with balanced
// nonzero counts - the paper's partitioning scheme. Every UE gets a
// (possibly empty) block; blocks are in ascending row order.
func ByNNZ(a *sparse.CSR, k int) Parts {
	if k <= 0 {
		panic("partition: k must be positive")
	}
	parts := make(Parts, k)
	nnz := a.NNZ()
	n := a.Rows
	row := 0
	for u := 0; u < k; u++ {
		// Ideal cumulative boundary after this UE.
		target := int32(float64(nnz) * float64(u+1) / float64(k))
		lo := row
		for row < n && (a.Ptr[row+1] <= target || u == k-1) {
			row++
		}
		// Guarantee progress when rows remain and UEs remain.
		if row == lo && row < n && n-row >= k-u {
			row++
		}
		rows := make([]int32, 0, row-lo)
		for r := lo; r < row; r++ {
			rows = append(rows, int32(r))
		}
		parts[u] = rows
	}
	// Any leftover rows (possible with pathological Ptr) go to the last UE.
	for r := row; r < n; r++ {
		parts[k-1] = append(parts[k-1], int32(r))
	}
	return parts
}

// ByRows splits [0, n) into k contiguous blocks with balanced row counts,
// ignoring the nonzero distribution.
func ByRows(n, k int) Parts {
	if k <= 0 {
		panic("partition: k must be positive")
	}
	parts := make(Parts, k)
	for u := 0; u < k; u++ {
		lo := n * u / k
		hi := n * (u + 1) / k
		rows := make([]int32, 0, hi-lo)
		for r := lo; r < hi; r++ {
			rows = append(rows, int32(r))
		}
		parts[u] = rows
	}
	return parts
}

// Cyclic deals rows round-robin: UE u owns rows u, u+k, u+2k, ...
// It balances heavy-tailed row distributions statistically but destroys
// the contiguity the CSR streams rely on.
func Cyclic(n, k int) Parts {
	if k <= 0 {
		panic("partition: k must be positive")
	}
	parts := make(Parts, k)
	for u := 0; u < k; u++ {
		var rows []int32
		for r := u; r < n; r += k {
			rows = append(rows, int32(r))
		}
		parts[u] = rows
	}
	return parts
}

// Scheme names a partitioning strategy for the ablation harness.
type Scheme string

const (
	// SchemeByNNZ is the paper's balanced-nonzero contiguous split.
	SchemeByNNZ Scheme = "bynnz"
	// SchemeByRows is a contiguous equal-row split.
	SchemeByRows Scheme = "byrows"
	// SchemeCyclic is a round-robin row deal.
	SchemeCyclic Scheme = "cyclic"
	// SchemeBFS clusters graph-adjacent rows before a balanced cut
	// (see BFSClustered).
	SchemeBFS Scheme = "bfs"
)

// Split applies the named scheme.
func Split(s Scheme, a *sparse.CSR, k int) (Parts, error) {
	switch s {
	case SchemeByNNZ:
		return ByNNZ(a, k), nil
	case SchemeByRows:
		return ByRows(a.Rows, k), nil
	case SchemeCyclic:
		return Cyclic(a.Rows, k), nil
	case SchemeBFS:
		return BFSClustered(a, k), nil
	default:
		return nil, fmt.Errorf("partition: unknown scheme %q", s)
	}
}
