package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func genMatrix(seed int64) *sparse.CSR {
	return sparse.Generate(sparse.Gen{
		Name: "p", Class: sparse.PatternPowerLaw, N: 500, NNZTarget: 5000, Seed: seed,
	})
}

func TestByNNZCoversAndBalances(t *testing.T) {
	a := genMatrix(1)
	for _, k := range []int{1, 2, 3, 8, 16, 48} {
		p := ByNNZ(a, k)
		if len(p) != k {
			t.Fatalf("k=%d: %d parts", k, len(p))
		}
		if err := p.Validate(a.Rows); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Balanced within a factor of 2 of the mean for this matrix
		// (heavy rows cap what any contiguous scheme can do).
		if im := p.Imbalance(a); im > 2.0 {
			t.Errorf("k=%d: nnz imbalance %.2f", k, im)
		}
	}
}

func TestByNNZContiguousAscending(t *testing.T) {
	a := genMatrix(2)
	p := ByNNZ(a, 7)
	next := int32(0)
	for u, rows := range p {
		for _, r := range rows {
			if r != next {
				t.Fatalf("UE %d: row %d out of order (want %d)", u, r, next)
			}
			next++
		}
	}
	if int(next) != a.Rows {
		t.Fatalf("covered %d of %d rows", next, a.Rows)
	}
}

func TestByNNZBeatsByRowsOnImbalance(t *testing.T) {
	// With a heavy-tailed matrix, balancing nonzeros must beat balancing
	// rows on nnz imbalance.
	a := genMatrix(3)
	k := 8
	byNNZ := ByNNZ(a, k).Imbalance(a)
	byRows := ByRows(a.Rows, k).Imbalance(a)
	if byNNZ >= byRows {
		t.Fatalf("ByNNZ imbalance %.2f >= ByRows %.2f", byNNZ, byRows)
	}
}

func TestByNNZSingleUE(t *testing.T) {
	a := genMatrix(4)
	p := ByNNZ(a, 1)
	if len(p[0]) != a.Rows {
		t.Fatalf("single UE owns %d rows, want all %d", len(p[0]), a.Rows)
	}
}

func TestByNNZMoreUEsThanRows(t *testing.T) {
	a := sparse.Identity(3)
	p := ByNNZ(a, 8)
	if err := p.Validate(3); err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, rows := range p {
		if len(rows) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 || nonEmpty > 3 {
		t.Fatalf("%d non-empty parts for 3 rows", nonEmpty)
	}
}

func TestByRows(t *testing.T) {
	p := ByRows(10, 3)
	if err := p.Validate(10); err != nil {
		t.Fatal(err)
	}
	if len(p[0])+len(p[1])+len(p[2]) != 10 || len(p[0]) < 3 || len(p[2]) < 3 {
		t.Fatalf("row counts %d/%d/%d", len(p[0]), len(p[1]), len(p[2]))
	}
}

func TestCyclic(t *testing.T) {
	p := Cyclic(10, 3)
	if err := p.Validate(10); err != nil {
		t.Fatal(err)
	}
	if p[1][0] != 1 || p[1][1] != 4 || p[1][2] != 7 {
		t.Fatalf("cyclic UE 1 rows = %v", p[1])
	}
}

func TestSplitDispatch(t *testing.T) {
	a := genMatrix(5)
	for _, s := range []Scheme{SchemeByNNZ, SchemeByRows, SchemeCyclic} {
		p, err := Split(s, a, 4)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if err := p.Validate(a.Rows); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if _, err := Split("nope", a, 4); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	if err := (Parts{{0, 1}, {1, 2}}).Validate(3); err == nil {
		t.Error("duplicate row accepted")
	}
	if err := (Parts{{0, 5}}).Validate(3); err == nil {
		t.Error("out-of-range row accepted")
	}
	if err := (Parts{{0, 1}}).Validate(3); err == nil {
		t.Error("missing row accepted")
	}
}

func TestPanicsOnNonPositiveK(t *testing.T) {
	for name, f := range map[string]func(){
		"ByNNZ":  func() { ByNNZ(sparse.Identity(2), 0) },
		"ByRows": func() { ByRows(2, 0) },
		"Cyclic": func() { Cyclic(2, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(k<=0) did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: every scheme covers every row exactly once for random shapes.
func TestQuickSchemesCover(t *testing.T) {
	f := func(seed int64, rawN, rawK uint8) bool {
		n := int(rawN)%200 + 1
		k := int(rawK)%48 + 1
		rng := rand.New(rand.NewSource(seed))
		a := sparse.Generate(sparse.Gen{
			Name: "q", Class: sparse.PatternRandom, N: n,
			NNZTarget: n * (1 + rng.Intn(8)), Seed: seed,
		})
		for _, s := range []Scheme{SchemeByNNZ, SchemeByRows, SchemeCyclic} {
			p, err := Split(s, a, k)
			if err != nil || p.Validate(n) != nil || len(p) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
