package experiments

import (
	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/stats"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "analysis-locality",
		Title: "Analysis: x-access reuse-distance profiles vs simulated performance",
		Run:   runAnalysisLocality,
	})
}

// runAnalysisLocality connects the paper's Section IV-C narrative to a
// quantitative locality metric: for every testbed matrix it computes the
// LRU reuse-distance profile of the x-vector accesses, derives the
// expected hit ratio at L1 and L2 capacities, and sets those against the
// simulated single-core performance and the measured no-x-miss speedup.
// Matrices whose x stream has poor locality (low predicted hit ratio) are
// exactly the ones the no-x-miss kernel accelerates.
func runAnalysisLocality(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := sim.NewMachine(scc.Conf0)
	core := scc.CoresWithHops(0)[0]

	l1Lines := int64((16 << 10) / scc.CacheLineBytes)
	l2Lines := int64((256 << 10) / scc.CacheLineBytes)

	t := stats.NewTable(
		"Analysis - x-access locality vs performance (single core, conf0)",
		"#", "matrix", "class", "x hit@L1", "x hit@L2", "MFLOPS", "no-x speedup",
	)
	var rows []localityRow
	err := cfg.forEachMatrix(func(mc Config, e sparse.TestbedEntry, a *sparse.CSR) error {
		prof := trace.XLineTrace(a, scc.CacheLineBytes)
		std, err := m.RunSpMV(a, nil, sim.Options{Mapping: scc.Mapping{core}})
		if err != nil {
			return err
		}
		nox, err := m.RunSpMV(a, nil, sim.Options{Mapping: scc.Mapping{core}, Variant: sim.KernelNoXMiss})
		if err != nil {
			return err
		}
		hit1 := prof.HitRatioAtCapacity(l1Lines)
		hit2 := prof.HitRatioAtCapacity(l2Lines)
		sp := nox.MFLOPS / std.MFLOPS
		rows = append(rows, localityRow{hit2, sp})
		t.AddRow(e.ID, e.Name, string(e.Class), hit1, hit2, std.MFLOPS, sp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Rank correlation between (1 - hit@L2) and the no-x speedup: the
	// paper's claim, quantified.
	corr := rankCorrelation(rows)
	t.AddNote("Spearman rank correlation between x-miss ratio and no-x speedup: %.2f (positive = locality explains the speedup)", corr)
	return []*stats.Table{t}, nil
}

// localityRow pairs one matrix's predicted x-miss locality with its
// measured no-x speedup.
type localityRow struct {
	hitL2, speedup float64
}

// rankCorrelation computes Spearman's rho between miss ratio (1-hitL2) and
// the no-x speedup over the collected rows.
func rankCorrelation(rows []localityRow) float64 {
	n := len(rows)
	if n < 2 {
		return 0
	}
	missRank := ranks(rows, func(r localityRow) float64 { return 1 - r.hitL2 })
	spRank := ranks(rows, func(r localityRow) float64 { return r.speedup })
	var d2 float64
	for i := range rows {
		d := missRank[i] - spRank[i]
		d2 += d * d
	}
	return 1 - 6*d2/float64(n*(n*n-1))
}

func ranks(rows []localityRow, key func(localityRow) float64) []float64 {
	n := len(rows)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// insertion sort by key
	for i := 1; i < n; i++ {
		for j := i; j > 0 && key(rows[idx[j]]) < key(rows[idx[j-1]]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	out := make([]float64, n)
	for r, i := range idx {
		out[i] = float64(r)
	}
	return out
}
