package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/stats"
)

// runQuick executes an experiment at test scale and returns its tables.
func runQuick(t *testing.T, id string) []*stats.Table {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	tables, err := e.Run(QuickConfig())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	return tables
}

// cell extracts a float from a rendered CSV table at (row, col), 0-indexed
// data rows (header excluded).
func cell(t *testing.T, tb *stats.Table, row, col int) float64 {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(tb.CSV()), "\n")
	if row+1 >= len(lines) {
		t.Fatalf("table has %d data rows, want row %d", len(lines)-1, row)
	}
	fields := strings.Split(lines[row+1], ",")
	if col >= len(fields) {
		t.Fatalf("row %d has %d columns, want col %d", row, len(fields), col)
	}
	v, err := strconv.ParseFloat(fields[col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, fields[col], err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation-cacheblock", "ablation-formats", "ablation-l2geom", "ablation-partition", "ablation-prefetch",
		"ablation-reorder", "ablation-warmup", "analysis-distributed", "analysis-locality", "analysis-powercap", "analysis-scaling",
		"fig1", "fig10", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"latency", "rcce-scaling", "table1",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("registry[%d] = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("%s: incomplete registration", e.ID)
		}
	}
	if _, ok := ByID("nonexistent"); ok {
		t.Fatal("ByID found a ghost")
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{{Scale: 0}, {Scale: -1}, {Scale: 2}, {Scale: 0.5, MaxMatrices: -1}} {
		if err := bad.validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	if err := DefaultConfig().validate(); err != nil {
		t.Fatal(err)
	}
	if err := QuickConfig().validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigSubsetting(t *testing.T) {
	if n := len((Config{Scale: 1}).entries()); n != 32 {
		t.Fatalf("full testbed = %d entries", n)
	}
	if n := len((Config{Scale: 1, Stride: 4}).entries()); n != 8 {
		t.Fatalf("stride-4 testbed = %d entries", n)
	}
	if n := len((Config{Scale: 1, MaxMatrices: 5}).entries()); n != 5 {
		t.Fatalf("max-5 testbed = %d entries", n)
	}
	if n := len((Config{Scale: 1, Stride: 4, MaxMatrices: 3}).entries()); n != 3 {
		t.Fatalf("combined subset = %d entries", n)
	}
}

func TestTable1(t *testing.T) {
	tb := runQuick(t, "table1")[0]
	if tb.Rows() != len(QuickConfig().entries()) {
		t.Fatalf("table1 has %d rows", tb.Rows())
	}
	// First entry is TSOPF: paper-scale nnz column (index 3) matches.
	if got := cell(t, tb, 0, 3); got != 13135930 {
		t.Fatalf("TSOPF nnz = %v", got)
	}
}

func TestLatencyTable(t *testing.T) {
	tb := runQuick(t, "latency")[0]
	if tb.Rows() != 4 {
		t.Fatalf("latency rows = %d", tb.Rows())
	}
	// conf0 monotone in hops; conf1 strictly faster than conf0.
	prev := 0.0
	for h := 0; h < 4; h++ {
		c0 := cell(t, tb, h, 1)
		c1 := cell(t, tb, h, 2)
		if c0 <= prev {
			t.Fatalf("conf0 latency not increasing at %d hops", h)
		}
		if c1 >= c0 {
			t.Fatalf("conf1 latency not below conf0 at %d hops", h)
		}
		prev = c0
	}
}

func TestFig3Shape(t *testing.T) {
	tb := runQuick(t, "fig3")[0]
	if tb.Rows() != 4 {
		t.Fatalf("fig3 rows = %d", tb.Rows())
	}
	// Performance decreases with hops; 3-hop ratio in a plausible band.
	prev := cell(t, tb, 0, 2)
	for h := 1; h < 4; h++ {
		cur := cell(t, tb, h, 2)
		if cur >= prev {
			t.Fatalf("fig3 not monotone at %d hops", h)
		}
		prev = cur
	}
	ratio3 := cell(t, tb, 3, 3)
	if ratio3 < 0.75 || ratio3 > 0.98 {
		t.Fatalf("3-hop ratio %.3f outside the paper's neighbourhood", ratio3)
	}
}

func TestFig5Shape(t *testing.T) {
	tb := runQuick(t, "fig5")[0]
	if tb.Rows() != len(CoreCounts) {
		t.Fatalf("fig5 rows = %d", tb.Rows())
	}
	// Speedup ~1.0 at 1-2 cores, >= 1.02 somewhere in the middle, and
	// distance >= standard - epsilon everywhere.
	sawGap := false
	for i := range CoreCounts {
		sp := cell(t, tb, i, 3)
		if sp < 0.97 {
			t.Fatalf("cores=%d: distance mapping lost badly (%.3f)", CoreCounts[i], sp)
		}
		if sp > 1.02 {
			sawGap = true
		}
	}
	// At quick scale most of the subset is L2-resident and generates no
	// memory traffic, which compresses the mapping gap; the full-scale
	// run reproduces the paper's up-to-1.2x (see EXPERIMENTS.md).
	if !sawGap {
		t.Fatal("distance reduction never won at all; paper sees up to 1.23x")
	}
	if sp1 := cell(t, tb, 0, 3); sp1 < 0.999 || sp1 > 1.001 {
		t.Fatalf("1-core speedup %.4f, want 1.0", sp1)
	}
}

func TestFig6Shape(t *testing.T) {
	tables := runQuick(t, "fig6")
	if len(tables) != 3 {
		t.Fatalf("fig6 produced %d tables", len(tables))
	}
	// At 48 cores (last table), the best fits-L2 matrix must beat the
	// worst non-fitting one.
	tb := tables[2]
	lines := strings.Split(strings.TrimSpace(tb.CSV()), "\n")[1:]
	bestFit, worstNoFit := 0.0, 1e18
	for _, ln := range lines {
		f := strings.Split(ln, ",")
		mflops, err := strconv.ParseFloat(f[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		if f[4] == "yes" && mflops > bestFit {
			bestFit = mflops
		}
		if f[4] == "no" && mflops < worstNoFit {
			worstNoFit = mflops
		}
	}
	if bestFit == 0 {
		t.Skip("no L2-resident matrices in the quick subset at 48 cores")
	}
	if worstNoFit < 1e18 && bestFit < worstNoFit {
		t.Fatalf("best L2-resident %.0f below worst streaming %.0f", bestFit, worstNoFit)
	}
}

func TestFig7Shape(t *testing.T) {
	tb := runQuick(t, "fig7")[0]
	// The without/with ratio must be < 1 everywhere and smaller at 48
	// cores than at 1 core.
	first := cell(t, tb, 0, 3)
	last := cell(t, tb, tb.Rows()-1, 3)
	for i := 0; i < tb.Rows(); i++ {
		if r := cell(t, tb, i, 3); r >= 1 {
			t.Fatalf("row %d: disabling L2 did not degrade (%.3f)", i, r)
		}
	}
	if last >= first {
		t.Fatalf("degradation should grow with cores: 1-core ratio %.3f, 48-core %.3f", first, last)
	}
}

func TestFig8Shape(t *testing.T) {
	tables := runQuick(t, "fig8")
	if len(tables) != 3 {
		t.Fatalf("fig8 produced %d tables", len(tables))
	}
	for _, tb := range tables {
		for i := 0; i < tb.Rows(); i++ {
			// Local matrices can dip slightly below 1.0: removing x
			// stalls raises the demand *rate*, so the contention
			// slowdown can outweigh the saved stalls by a hair.
			if sp := cell(t, tb, i, 4); sp < 0.93 {
				t.Fatalf("no-x-miss slowed a matrix down: %.3f", sp)
			}
		}
	}
	// At 24 cores at least one matrix must clear 1.5x (the paper's
	// irregular entries exceed 2x).
	tb := tables[1]
	maxSp := 0.0
	for i := 0; i < tb.Rows(); i++ {
		if sp := cell(t, tb, i, 4); sp > maxSp {
			maxSp = sp
		}
	}
	if maxSp < 1.5 {
		t.Fatalf("max no-x speedup %.2f; paper sees > 2 for irregular matrices", maxSp)
	}
}

func TestFig9Shape(t *testing.T) {
	tables := runQuick(t, "fig9")
	if len(tables) != 2 {
		t.Fatalf("fig9 produced %d tables", len(tables))
	}
	perf, power := tables[0], tables[1]
	// conf1 speedup grows toward ~1.45 at 48 cores; conf2 between.
	last := perf.Rows() - 1
	sp1 := cell(t, perf, last, 4)
	sp2 := cell(t, perf, last, 5)
	if sp1 < 1.3 || sp1 > 1.6 {
		t.Fatalf("conf1 48-core speedup %.2f, want near 1.45", sp1)
	}
	if sp2 <= 1.0 || sp2 > sp1 {
		t.Fatalf("conf2 speedup %.2f not between 1 and conf1's %.2f", sp2, sp1)
	}
	// Memory-bound rows (1 core runs the big first matrix) must show the
	// memory-clock gap between conf1 and conf2 clearly.
	if sp1c, sp2c := cell(t, perf, 0, 4), cell(t, perf, 0, 5); sp2c >= sp1c-0.02 {
		t.Fatalf("1-core conf2 speedup %.2f not clearly below conf1 %.2f", sp2c, sp1c)
	}
	// Power column: conf0 ~83.3, conf1 ~107.4; conf1 best MFLOPS/W.
	p0 := cell(t, power, 0, 3)
	p1 := cell(t, power, 1, 3)
	if p0 < 82 || p0 > 85 || p1 < 106 || p1 > 109 {
		t.Fatalf("power anchors off: conf0=%.1f conf1=%.1f", p0, p1)
	}
	e0 := cell(t, power, 0, 4)
	e1 := cell(t, power, 1, 4)
	if e1 <= e0 {
		t.Fatalf("conf1 efficiency %.2f not above conf0 %.2f", e1, e0)
	}
}

func TestFig10Shape(t *testing.T) {
	tb := runQuick(t, "fig10")[0]
	if tb.Rows() != 7 { // 5 systems + 2 SCC configs
		t.Fatalf("fig10 rows = %d", tb.Rows())
	}
	lines := strings.Split(strings.TrimSpace(tb.CSV()), "\n")[1:]
	g := map[string]float64{}
	e := map[string]float64{}
	for _, ln := range lines {
		f := strings.SplitN(ln, ",", 5)
		gf, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		name := strings.Trim(f[0], `"`)
		g[name] = gf
		ef, err := strconv.ParseFloat(f[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		e[name] = ef
	}
	// Paper's ordering: M2050 leads, SCC beats only Itanium2.
	if g["Tesla M2050"] <= g["Tesla C1060"] {
		t.Fatal("M2050 must lead the comparison")
	}
	if g["SCC conf0"] <= g["Itanium2 Montvale"] {
		t.Fatal("SCC conf0 must beat the Itanium2")
	}
	// At quick scale the SCC average is inflated by L2-resident
	// matrices (the full-scale run restores the paper's levels), so
	// only assert the scale-robust relations.
	if g["Tesla M2050"] <= g["SCC conf1"] {
		t.Fatal("M2050 should outperform even SCC conf1")
	}
	// Efficiency: M2050 leads the *model* systems (the inflated quick-
	// scale SCC rows can nominally edge past it; the full-scale run puts
	// them back near the paper's ~12-14 MFLOPS/W); SCC beats Itanium2.
	for _, name := range []string{"Itanium2 Montvale", "Xeon X5570", "Opteron 6174", "Tesla C1060"} {
		if e[name] >= e["Tesla M2050"] {
			t.Fatalf("%s efficiency %.1f >= M2050's %.1f", name, e[name], e["Tesla M2050"])
		}
	}
	if e["SCC conf0"] <= e["Itanium2 Montvale"] {
		t.Fatal("SCC conf0 must beat Itanium2 on MFLOPS/W")
	}
}

func TestFig124Render(t *testing.T) {
	for id, needle := range map[string]string{
		"fig1": "MC0 ->",
		"fig2": "Ptr   = [0 2 3 6 7 9]",
		"fig4": "distance reduction",
	} {
		tb := runQuick(t, id)[0]
		if !strings.Contains(tb.String(), needle) {
			t.Errorf("%s output missing %q:\n%s", id, needle, tb.String())
		}
	}
}

func TestAblations(t *testing.T) {
	for _, id := range []string{"ablation-formats", "ablation-reorder", "ablation-partition", "ablation-warmup", "ablation-prefetch", "ablation-cacheblock"} {
		tables := runQuick(t, id)
		for _, tb := range tables {
			if tb.Rows() == 0 && id != "ablation-cacheblock" {
				t.Errorf("%s: empty table", id)
			}
		}
	}
}

func TestAnalysisLocalityShape(t *testing.T) {
	tb := runQuick(t, "analysis-locality")[0]
	if tb.Rows() == 0 {
		t.Fatal("no rows")
	}
	// Hit ratios in [0,1]; correlation note present.
	for i := 0; i < tb.Rows(); i++ {
		h1, h2 := cell(t, tb, i, 3), cell(t, tb, i, 4)
		if h1 < 0 || h1 > 1 || h2 < 0 || h2 > 1 {
			t.Fatalf("row %d: hit ratios %.3f/%.3f outside [0,1]", i, h1, h2)
		}
		if h2 < h1-1e-9 {
			t.Fatalf("row %d: L2 hit ratio %.3f below L1 %.3f", i, h2, h1)
		}
	}
	if !strings.Contains(tb.String(), "Spearman") {
		t.Fatal("missing correlation note")
	}
}

func TestAnalysisPowercapShape(t *testing.T) {
	tables := runQuick(t, "analysis-powercap")
	if len(tables) != 2 {
		t.Fatalf("%d tables", len(tables))
	}
	front := tables[0]
	if front.Rows() == 0 {
		t.Fatal("empty frontier")
	}
	// Frontier monotone in both columns (MFLOPS col 3, W col 4).
	for i := 1; i < front.Rows(); i++ {
		if cell(t, front, i, 3) <= cell(t, front, i-1, 3) {
			t.Fatal("frontier MFLOPS not increasing")
		}
		if cell(t, front, i, 4) < cell(t, front, i-1, 4) {
			t.Fatal("frontier watts not increasing")
		}
	}
}

func TestAnalysisScalingShape(t *testing.T) {
	tb := runQuick(t, "analysis-scaling")[0]
	if tb.Rows() == 0 {
		t.Fatal("no rows")
	}
	// Efficiencies positive and bounded sanely.
	for i := 0; i < tb.Rows(); i++ {
		for col := 3; col <= 7; col++ {
			eff := cell(t, tb, i, col)
			if eff <= 0 || eff > 4 {
				t.Fatalf("row %d col %d: efficiency %v out of range", i, col, eff)
			}
		}
	}
}

func TestAnalysisDistributedShape(t *testing.T) {
	tb := runQuick(t, "analysis-distributed")[0]
	if tb.Rows() == 0 {
		t.Fatal("no rows")
	}
	// BFS clustering wins on de-ordered matrices but can lose to the
	// natural order (block matrices); assert only well-formedness here -
	// the guaranteed BFS win is covered by spmv's partition tests.
	for i := 0; i < tb.Rows(); i++ {
		volA, volB := cell(t, tb, i, 2), cell(t, tb, i, 3)
		if volA < 0 || volB < 0 {
			t.Fatalf("row %d: negative volume", i)
		}
		share := cell(t, tb, i, 7)
		if share < 0 || share >= 1 {
			t.Fatalf("row %d: comm share %v out of [0,1)", i, share)
		}
	}
}

func TestAblationWarmupShape(t *testing.T) {
	tb := runQuick(t, "ablation-warmup")[0]
	warm := cell(t, tb, 0, 1)
	cold := cell(t, tb, 1, 1)
	if warm <= cold {
		t.Fatalf("steady state %.0f not above cold %.0f", warm, cold)
	}
}

func TestAblationPartitionShape(t *testing.T) {
	tb := runQuick(t, "ablation-partition")[0]
	bynnz := cell(t, tb, 0, 1)
	cyclic := cell(t, tb, 2, 1)
	if cyclic >= bynnz {
		t.Fatalf("cyclic %.0f should trail bynnz %.0f (stream contiguity)", cyclic, bynnz)
	}
}

func TestInvalidConfigRejectedByAllExperiments(t *testing.T) {
	for _, e := range All() {
		if _, err := e.Run(Config{Scale: -1}); err == nil {
			t.Errorf("%s accepted an invalid config", e.ID)
		}
	}
}
