package experiments

import (
	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "Figure 3: single-core SpMV vs distance (hops) to the memory controller",
		Run:   runFig3,
	})
}

// runFig3 reproduces Figure 3: one unit of execution placed on cores with
// 0, 1, 2 and 3 hops to their memory controller; average MFLOPS across the
// suite, plus the degradation relative to the 0-hop core. The paper reports
// a noticeable drop, about 12% at 3 hops.
func runFig3(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := sim.NewMachine(scc.Conf0)
	t := stats.NewTable(
		"Figure 3 - single-core performance by hop distance (conf0)",
		"hops", "core", "avg MFLOPS", "vs 0 hops",
	)
	base := 0.0
	for h := 0; h < 4; h++ {
		core := scc.CoresWithHops(h)[0]
		mean, err := cfg.meanMFLOPS(m, sim.Options{Mapping: scc.Mapping{core}})
		if err != nil {
			return nil, err
		}
		if h == 0 {
			base = mean
		}
		t.AddRow(h, int(core), mean, mean/base)
	}
	t.AddNote("paper: monotone degradation, about 12%% at 3 hops")
	return []*stats.Table{t}, nil
}

// runLatency regenerates the Eq. 1 latency table that explains Figure 3.
func runLatency(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := stats.NewTable(
		"Eq. 1 - private memory round-trip latency (ns)",
		"hops", "conf0", "conf1", "conf2",
	)
	for h := 0; h < 4; h++ {
		t.AddRow(h,
			scc.MemoryLatencySec(h, scc.Conf0)*1e9,
			scc.MemoryLatencySec(h, scc.Conf1)*1e9,
			scc.MemoryLatencySec(h, scc.Conf2)*1e9,
		)
	}
	t.AddNote("40*C_core + 8*hops*C_mesh + 46*C_mem")
	return []*stats.Table{t}, nil
}
