package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/sparse"
)

// geomConfig is the tiny subset the geometry-sweep tests run: 2 matrices
// at 5% scale keep the 15-cell exact leg to seconds. The budgeted cache
// both memoises the matrices and persists the stream profiles.
func geomConfig() Config {
	return Config{Scale: 0.05, Stride: 16, MatrixCache: sparse.NewMatrixCache(1 << 30)}
}

// TestL2GeomAnalyticMatchesExact is the tentpole's experiments-layer oracle:
// the cache-geometry ablation rendered under forced-exact pricing and under
// auto (which selects the analytic fast path for every TrueLRU cell) must be
// byte-identical, and the fast path must actually have fired - profiles
// reused across the grid, cells priced analytically.
func TestL2GeomAnalyticMatchesExact(t *testing.T) {
	exactCfg := geomConfig()
	exactCfg.Pricing = sim.PricingExact
	want := renderAll(t, "ablation-l2geom", exactCfg)

	builtB, reusedB, analyticB, _ := sim.PricingCounters()
	autoCfg := geomConfig()
	got := renderAll(t, "ablation-l2geom", autoCfg)
	builtA, reusedA, analyticA, _ := sim.PricingCounters()

	if got != want {
		t.Errorf("analytic pricing changed the rendered ablation:\n--- exact ---\n%s\n--- auto ---\n%s", want, got)
	}
	matrices := autoCfg.MatrixCount()
	if built := builtA - builtB; built != uint64(matrices) {
		t.Errorf("profiles built = %d, want one per matrix (%d)", built, matrices)
	}
	if reused := reusedA - reusedB; reused != uint64(14*matrices) {
		t.Errorf("profiles reused = %d, want 14 per matrix (%d)", reused, 14*matrices)
	}
	if cells := analyticA - analyticB; cells != uint64(15*matrices) {
		t.Errorf("cells analytic = %d, want the whole grid (%d)", cells, 15*matrices)
	}
	st := autoCfg.MatrixCache.Stats()
	if st.ProfileResident != matrices || st.ProfileUsedBytes <= 0 {
		t.Errorf("profile store after sweep: %+v, want %d resident profiles", st, matrices)
	}
}

// TestChaosAnalyticCellFaultIsolated arms the fault plan on the analytic
// path: an injected cell fault inside the geometry sweep must come back as
// one isolated error row, deterministically, exactly like the exact engine.
func TestChaosAnalyticCellFaultIsolated(t *testing.T) {
	cfg := geomConfig()
	cfg.Fault = &fault.Plan{Cell: &fault.Cell{MatrixPrefix: "TSOPF_FS_b300_c3", Index: 3}}
	out, errRows := executeAll(t, "ablation-l2geom", cfg)
	if errRows != 1 {
		t.Fatalf("expected exactly 1 error row, got %d:\n%s", errRows, out)
	}
	if !strings.Contains(out, "cell 3") {
		t.Errorf("error row does not name the failed cell:\n%s", out)
	}
	again, _ := executeAll(t, "ablation-l2geom", cfg)
	if again != out {
		t.Errorf("faulted analytic run is not deterministic:\n--- first ---\n%s\n--- second ---\n%s", out, again)
	}
}

// TestDisabledMemoisationStaysExact pins the -cachemb 0 contract: with a
// zero-budget matrix cache the analytic path has no profile store that can
// retain anything, so auto pricing must fall back to the exact walk rather
// than silently re-tracing the reuse profile for every sweep cell (the
// pre-fix behavior: profiles_built climbed once per cell while profile
// hit counters never moved). Output stays bit-identical either way.
func TestDisabledMemoisationStaysExact(t *testing.T) {
	budgeted := geomConfig()
	want := renderAll(t, "ablation-l2geom", budgeted)

	builtB, _, analyticB, exactB := sim.PricingCounters()
	off := geomConfig()
	off.MatrixCache = sparse.NewMatrixCache(0) // -cachemb 0
	got := renderAll(t, "ablation-l2geom", off)
	builtA, _, analyticA, exactA := sim.PricingCounters()

	if got != want {
		t.Errorf("disabled memoisation changed the rendered ablation:\n--- budgeted ---\n%s\n--- cachemb 0 ---\n%s", want, got)
	}
	if built := builtA - builtB; built != 0 {
		t.Errorf("profiles built = %d, want 0 (nothing can retain them)", built)
	}
	if cells := analyticA - analyticB; cells != 0 {
		t.Errorf("cells analytic = %d, want 0 under a non-retaining store", cells)
	}
	wantCells := uint64(15 * off.MatrixCount())
	if cells := exactA - exactB; cells != wantCells {
		t.Errorf("cells exact = %d, want the whole grid (%d)", cells, wantCells)
	}
	st := off.MatrixCache.Stats()
	if st.ProfileMisses != 0 || st.ProfileResident != 0 || st.ProfileUsedBytes != 0 {
		t.Errorf("zero-budget store saw profile traffic: %+v", st)
	}
}

// TestChaosAnalyticPreCancelledContextAborts proves cancellation holds on
// the analytic path through the experiments layer.
func TestChaosAnalyticPreCancelledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := geomConfig()
	cfg.Ctx = ctx
	cfg.Pricing = sim.PricingAuto
	e, _ := ByID("ablation-l2geom")
	_, err := e.Execute(cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled analytic run returned %v, want context.Canceled", err)
	}
}

// TestValidateRejectsSequentialAnalytic pins the reference-engine contract:
// Sequential is the exact seed-equivalent path, so forcing analytic pricing
// on it is a contradiction the config rejects.
func TestValidateRejectsSequentialAnalytic(t *testing.T) {
	bad := Config{Scale: 0.25, Sequential: true, Pricing: sim.PricingAnalytic}
	if err := bad.validate(); err == nil {
		t.Fatal("Sequential with analytic pricing accepted")
	}
	ok := Config{Scale: 0.25, Sequential: true, Pricing: sim.PricingExact}
	if err := ok.validate(); err != nil {
		t.Fatalf("Sequential with exact pricing rejected: %v", err)
	}
}

// TestNoDirectHierarchyConstruction guards the pricing abstraction: every
// experiment must reach caches through sim.Machine (which owns the
// exact-vs-analytic decision), never by constructing cache levels or
// hierarchies itself. Config literals (e.g. Machine.L2Geom) are fine; the
// constructors are not.
func TestNoDirectHierarchyConstruction(t *testing.T) {
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	banned := []string{"cache.New(", "cache.NewHierarchy(", "cache.NewSCCHierarchy("}
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range banned {
			if strings.Contains(string(src), b) {
				t.Errorf("%s calls %s): experiments must price caches through sim.Machine, not construct hierarchies directly", f, strings.TrimSuffix(b, "("))
			}
		}
	}
}
