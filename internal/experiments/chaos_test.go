package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// chaosConfig is a tiny subset (entries 1, 10, 19, 28 of the testbed) so
// every chaos scenario runs in seconds. The first selected entry is
// TSOPF_FS_b300_c3 (ID 1, generator seed 1001) - the fault target below.
func chaosConfig() Config {
	return Config{Scale: 0.05, Stride: 9, MatrixCache: sparse.NewMatrixCache(0)}
}

// executeAll runs an experiment through Execute (degradation-aware) and
// returns its tables plus the concatenated CSV rendering.
func executeAll(t *testing.T, id string, cfg Config) (string, int) {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	tables, err := e.Execute(cfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := ""
	errRows := 0
	for _, tab := range tables {
		csv := tab.CSV()
		out += csv + "\n"
		for _, line := range strings.Split(csv, "\n") {
			if strings.Contains(line, "injected fault") {
				errRows++
			}
		}
	}
	return out, errRows
}

func TestChaosMatrixFaultIsolatedIntoErrorRow(t *testing.T) {
	before := obs.Default.Snapshot().Counters["experiments.cell.errors"]
	cfg := chaosConfig()
	cfg.Fault = &fault.Plan{MatrixSeed: 1001}
	out, errRows := executeAll(t, "fig5", cfg)
	if errRows != 1 {
		t.Fatalf("expected exactly 1 error row, got %d:\n%s", errRows, out)
	}
	if !strings.Contains(out, "TSOPF_FS_b300_c3") {
		t.Errorf("error row does not name the failed matrix:\n%s", out)
	}
	after := obs.Default.Snapshot().Counters["experiments.cell.errors"]
	if after <= before {
		t.Errorf("experiments.cell.errors did not advance: %d -> %d", before, after)
	}
	// The failed matrix must actually be excluded from the aggregates (not
	// zero-filled), so the degraded means differ from the fault-free run...
	clean, _ := executeAll(t, "fig5", chaosConfig())
	if strings.Contains(out, clean) {
		t.Error("degraded run rendered the fault-free means; failed matrix was not excluded")
	}
	// ...and degradation itself is deterministic: the same faulted run
	// renders byte-identically.
	again, _ := executeAll(t, "fig5", cfg)
	if again != out {
		t.Errorf("faulted run is not deterministic:\n--- first ---\n%s\n--- second ---\n%s", out, again)
	}
}

func TestChaosCellFaultSingleErrorRow(t *testing.T) {
	cfg := chaosConfig()
	cfg.Fault = &fault.Plan{Cell: &fault.Cell{MatrixPrefix: "TSOPF_FS_b300_c3", Index: 0}}
	out, errRows := executeAll(t, "fig5", cfg)
	if errRows != 1 {
		t.Fatalf("expected exactly 1 error row, got %d:\n%s", errRows, out)
	}
	if !strings.Contains(out, "cell 0") {
		t.Errorf("error row does not name the failed cell:\n%s", out)
	}
}

func TestChaosCellFaultFailFastAborts(t *testing.T) {
	for _, parallelism := range []int{1, 0} {
		cfg := chaosConfig()
		cfg.Parallelism = parallelism
		cfg.FailFast = true
		cfg.Fault = &fault.Plan{Cell: &fault.Cell{MatrixPrefix: "TSOPF_FS_b300_c3", Index: 0}}
		e, _ := ByID("fig5")
		_, err := e.Execute(cfg)
		if err == nil {
			t.Fatalf("parallelism=%d: failfast run completed despite cell fault", parallelism)
		}
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("parallelism=%d: error %v does not wrap the injected fault", parallelism, err)
		}
	}
}

func TestChaosPreCancelledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := chaosConfig()
	cfg.Ctx = ctx
	e, _ := ByID("fig5")
	_, err := e.Execute(cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run returned %v, want context.Canceled", err)
	}
}

// TestChaosRobustnessLayerBitIdentical is the tentpole's determinism
// criterion: with the whole robustness layer armed (explicit context,
// error log attached via Execute, a non-nil fault plan that injects
// nothing) but no fault firing and no cancellation, tables are
// byte-identical to the plain pre-robustness engine at Parallelism 1 and N.
func TestChaosRobustnessLayerBitIdentical(t *testing.T) {
	for _, id := range []string{"fig5", "fig8"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			plain := chaosConfig()
			want := renderAll(t, id, plain)

			for _, parallelism := range []int{1, 0} {
				robust := chaosConfig()
				robust.Parallelism = parallelism
				robust.Ctx = context.Background()
				robust.Fault = &fault.Plan{}
				got, errRows := executeAll(t, id, robust)
				if errRows != 0 {
					t.Fatalf("parallelism=%d: fault-free run produced error rows", parallelism)
				}
				if got != want {
					t.Errorf("parallelism=%d: robustness layer changed output:\n--- plain ---\n%s\n--- robust ---\n%s",
						parallelism, want, got)
				}
			}
		})
	}
}

func TestValidateRejectsSequentialWithParallelism(t *testing.T) {
	bad := Config{Scale: 0.25, Sequential: true, Parallelism: 4}
	if err := bad.validate(); err == nil {
		t.Fatal("Sequential with Parallelism > 1 accepted")
	}
	// Parallelism 1 is the serial pool the bench harness pins explicitly.
	ok := Config{Scale: 0.25, Sequential: true, Parallelism: 1}
	if err := ok.validate(); err != nil {
		t.Fatalf("Sequential with Parallelism 1 rejected: %v", err)
	}
}
