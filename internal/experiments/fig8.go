package experiments

import (
	"fmt"

	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Figure 8: impact of the irregular accesses on vector x",
		Run:   runFig8,
	})
}

// runFig8 reproduces Figure 8: the per-matrix speedup of the "no x misses"
// kernel (every x reference reads x[0]) over the standard kernel. The paper
// finds speedups above 1.1 for more than half the suite - far more than on
// conventional multicores - and above 2 for the short-row irregular
// matrices 24 and 25.
func runFig8(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := sim.NewMachine(scc.Conf0)
	var tables []*stats.Table
	for _, cores := range []int{8, 24, 48} {
		mapping := scc.DistanceReductionMapping(cores)
		t := stats.NewTable(
			fmt.Sprintf("Figure 8 - no-x-miss speedup, %d cores (conf0)", cores),
			"#", "matrix", "standard MFLOPS", "no-x MFLOPS", "speedup",
		)
		var speedups []float64
		err := cfg.forEachMatrix(func(e sparse.TestbedEntry, a *sparse.CSR) error {
			std, err := m.RunSpMV(a, nil, sim.Options{Mapping: mapping})
			if err != nil {
				return err
			}
			nox, err := m.RunSpMV(a, nil, sim.Options{Mapping: mapping, Variant: sim.KernelNoXMiss})
			if err != nil {
				return err
			}
			sp := nox.MFLOPS / std.MFLOPS
			speedups = append(speedups, sp)
			t.AddRow(e.ID, e.Name, std.MFLOPS, nox.MFLOPS, sp)
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.AddNote("fraction of matrices with speedup > 1.1: %.0f%% (paper: > 50%%); max %.2f",
			100*stats.FractionAbove(speedups, 1.1), stats.Max(speedups))
		tables = append(tables, t)
	}
	return tables, nil
}
