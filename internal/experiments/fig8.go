package experiments

import (
	"fmt"

	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Figure 8: impact of the irregular accesses on vector x",
		Run:   runFig8,
	})
}

// runFig8 reproduces Figure 8: the per-matrix speedup of the "no x misses"
// kernel (every x reference reads x[0]) over the standard kernel. The paper
// finds speedups above 1.1 for more than half the suite - far more than on
// conventional multicores - and above 2 for the short-row irregular
// matrices 24 and 25.
func runFig8(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := sim.NewMachine(scc.Conf0)
	counts := []int{8, 24, 48}
	tables := make([]*stats.Table, len(counts))
	speedups := make([][]float64, len(counts))
	var cells []sweepCell // cells 2i / 2i+1 are counts[i] standard / no-x
	for i, cores := range counts {
		mapping := scc.DistanceReductionMapping(cores)
		tables[i] = stats.NewTable(
			fmt.Sprintf("Figure 8 - no-x-miss speedup, %d cores (conf0)", cores),
			"#", "matrix", "standard MFLOPS", "no-x MFLOPS", "speedup",
		)
		cells = append(cells,
			oneMachine(m, sim.Options{Mapping: mapping}),
			oneMachine(m, sim.Options{Mapping: mapping, Variant: sim.KernelNoXMiss}))
	}
	// Matrix-outer: one generation per matrix, six cells on the host pool.
	err := cfg.forEachMatrix(func(mc Config, e sparse.TestbedEntry, a *sparse.CSR) error {
		rs, err := mc.runGrid(a, cells)
		if err != nil {
			return err
		}
		for i := range counts {
			std, nox := rs[2*i][0], rs[2*i+1][0]
			sp := nox.MFLOPS / std.MFLOPS
			speedups[i] = append(speedups[i], sp)
			tables[i].AddRow(e.ID, e.Name, std.MFLOPS, nox.MFLOPS, sp)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range counts {
		tables[i].AddNote("fraction of matrices with speedup > 1.1: %.0f%% (paper: > 50%%); max %.2f",
			100*stats.FractionAbove(speedups[i], 1.1), stats.Max(speedups[i]))
	}
	return tables, nil
}
