package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/stats"
)

// BenchRecord is the machine-readable perf record `sccsim -exp bench`
// emits (BENCH_<experiment>.json) so the engine's throughput trajectory
// can be tracked across commits.
type BenchRecord struct {
	// Experiment identifies the benchmarked sweep and Scale/Stride/
	// MaxMatrices its testbed subset.
	Experiment  string  `json:"experiment"`
	Scale       float64 `json:"scale"`
	Stride      int     `json:"stride,omitempty"`
	MaxMatrices int     `json:"max_matrices,omitempty"`
	// GoMaxProcs records the host parallelism available to the run and
	// Parallelism the pool bound the parallel leg used (0 = GOMAXPROCS).
	GoMaxProcs  int `json:"gomaxprocs"`
	Parallelism int `json:"parallelism"`
	// SerialSec is the wall clock of the seed-equivalent reference leg
	// (Sequential: no pools, no shared sweep walks, zero-budget matrix
	// cache); ParallelSec the wall clock of the configured engine with
	// exact pricing (worker pools + matrix cache + shared-sweep walks).
	// Speedup is their ratio.
	SerialSec   float64 `json:"serial_sec"`
	ParallelSec float64 `json:"parallel_sec"`
	Speedup     float64 `json:"speedup"`
	// AnalyticSec is the wall clock of the configured engine with the
	// reuse-distance analytic pricing path enabled (PricingAuto: cells go
	// analytic only where provably bit-identical to the exact walk);
	// AnalyticSpeedup is ParallelSec/AnalyticSec - the fast path's gain at
	// equal engine parallelism. OutputIdentical records whether the
	// analytic leg rendered byte-identical tables to the exact parallel
	// leg (it must, wherever auto selects the analytic path).
	AnalyticSec     float64 `json:"analytic_sec"`
	AnalyticSpeedup float64 `json:"analytic_speedup"`
	OutputIdentical bool    `json:"output_identical"`
	// Trace-once, price-many effectiveness during the analytic leg (see
	// internal/sim/pricing.go): stream profiles built vs reused from the
	// store, and sweep cells priced by the analytic vs exact backend.
	ProfilesBuilt  uint64 `json:"profiles_built"`
	ProfilesReused uint64 `json:"profiles_reused"`
	CellsAnalytic  uint64 `json:"cells_analytic"`
	CellsExact     uint64 `json:"cells_exact"`
	// Matrices is the subset size; MatrixVisits counts matrix fetches
	// the parallel leg performed (visits/sec measures harness
	// throughput including cache effects).
	Matrices       int     `json:"matrices"`
	MatrixVisits   uint64  `json:"matrix_visits"`
	MatricesPerSec float64 `json:"matrices_per_sec"`
	// SimulatedGFLOP is the useful simulated-kernel work the parallel
	// leg delivered (2·nnz per simulated Result, in GFLOP) and
	// SimulatedGFLOPS that work divided by wall clock - the engine's
	// headline throughput metric.
	SimulatedGFLOP  float64 `json:"simulated_gflop"`
	SimulatedGFLOPS float64 `json:"simulated_gflops"`
	// Matrix-cache effectiveness during the parallel leg.
	// CacheDuplicateGenerations counts generations that lost a
	// concurrent-miss race on one key (work done, result discarded) and
	// CacheWastedBytes the size of those discarded matrices.
	CacheHits                 uint64 `json:"cache_hits"`
	CacheMisses               uint64 `json:"cache_misses"`
	CacheEvictions            uint64 `json:"cache_evictions"`
	CacheDuplicateGenerations uint64 `json:"cache_duplicate_generations"`
	CacheWastedBytes          uint64 `json:"cache_wasted_bytes"`
	UnixTime                  int64  `json:"unix_time"`
}

// renderTables concatenates a run's rendered tables for output comparison.
func renderTables(tables []*stats.Table) string {
	var b strings.Builder
	for _, t := range tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Bench measures one experiment three times - on the serial reference
// engine, on the configured parallel engine with exact pricing, and on the
// same engine with the analytic pricing fast path enabled - and returns the
// perf record. All legs produce identical tables (the determinism tests and
// the analytic oracle tests prove it); only the wall clock differs.
func Bench(cfg Config, id string) (*BenchRecord, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e, ok := ByID(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}

	run := func(c Config) (float64, string, error) {
		start := time.Now() //sccvet:allow nondeterminism Bench measures host wall time by design; the simulated tables stay deterministic
		tables, err := e.Run(c)
		return time.Since(start).Seconds(), renderTables(tables), err //sccvet:allow nondeterminism Bench measures host wall time by design; the simulated tables stay deterministic
	}

	// Seed-equivalent reference leg: single-threaded, no shared sweep
	// walks, no matrix memoisation - what the pre-parallel engine did.
	serialCfg := cfg
	serialCfg.Sequential = true
	serialCfg.Parallelism = 1
	serialCfg.MatrixCache = sparse.NewMatrixCache(0)
	serialSec, _, err := run(serialCfg)
	if err != nil {
		return nil, err
	}

	parCfg := cfg
	parCfg.Pricing = sim.PricingExact
	if parCfg.MatrixCache == nil {
		// A private cache isolates the measured leg from earlier runs in
		// the same process.
		parCfg.MatrixCache = sparse.NewMatrixCache(DefaultMatrixCacheBytes)
	}
	cacheBefore := parCfg.MatrixCache.Stats()
	flopsBefore := sim.SimulatedFLOPs()
	parSec, parOut, err := run(parCfg)
	if err != nil {
		return nil, err
	}
	cacheAfter := parCfg.MatrixCache.Stats()
	gflop := float64(sim.SimulatedFLOPs()-flopsBefore) / 1e9
	visits := (cacheAfter.Hits - cacheBefore.Hits) + (cacheAfter.Misses - cacheBefore.Misses)

	// Analytic leg: same engine, pricing on auto so cells go analytic
	// exactly where that is provably bit-identical. A fresh matrix cache
	// keeps its profile store private to the measured leg.
	anCfg := cfg
	anCfg.Pricing = sim.PricingAuto
	anCfg.MatrixCache = sparse.NewMatrixCache(DefaultMatrixCacheBytes)
	builtB, reusedB, analyticB, exactB := sim.PricingCounters()
	anSec, anOut, err := run(anCfg)
	if err != nil {
		return nil, err
	}
	builtA, reusedA, analyticA, exactA := sim.PricingCounters()

	rec := &BenchRecord{
		Experiment:                id,
		Scale:                     cfg.Scale,
		Stride:                    cfg.Stride,
		MaxMatrices:               cfg.MaxMatrices,
		GoMaxProcs:                runtime.GOMAXPROCS(0),
		Parallelism:               cfg.Parallelism,
		SerialSec:                 serialSec,
		ParallelSec:               parSec,
		AnalyticSec:               anSec,
		OutputIdentical:           anOut == parOut,
		ProfilesBuilt:             builtA - builtB,
		ProfilesReused:            reusedA - reusedB,
		CellsAnalytic:             analyticA - analyticB,
		CellsExact:                exactA - exactB,
		Matrices:                  cfg.MatrixCount(),
		MatrixVisits:              visits,
		SimulatedGFLOP:            gflop,
		CacheHits:                 cacheAfter.Hits - cacheBefore.Hits,
		CacheMisses:               cacheAfter.Misses - cacheBefore.Misses,
		CacheEvictions:            cacheAfter.Evictions - cacheBefore.Evictions,
		CacheDuplicateGenerations: cacheAfter.DuplicateGenerations - cacheBefore.DuplicateGenerations,
		CacheWastedBytes:          cacheAfter.WastedBytes - cacheBefore.WastedBytes,
		UnixTime:                  time.Now().Unix(), //sccvet:allow nondeterminism record timestamp metadata, not a simulated quantity
	}
	if parSec > 0 {
		rec.Speedup = serialSec / parSec
		rec.MatricesPerSec = float64(visits) / parSec
		rec.SimulatedGFLOPS = gflop / parSec
	}
	if anSec > 0 {
		rec.AnalyticSpeedup = parSec / anSec
	}
	return rec, nil
}
