// Package experiments regenerates every table and figure of the paper's
// evaluation section, plus the ablations DESIGN.md calls out. Each
// experiment is a named, self-contained function from a Config to one or
// more rendered tables; cmd/sccsim and the repository benchmarks drive the
// same registry.
//
// The engine behind the experiments is host-parallel: independent
// (matrix, configuration) simulation cells fan out over a bounded worker
// pool, generated testbed matrices are memoised in a byte-budgeted LRU
// cache, and clock-configuration sweeps share one cache walk per matrix
// (sim.RunSpMVSweep). All of it is bit-deterministic; Parallelism: 1 with
// a zero-budget cache reproduces the serial reference path exactly.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rcce"
	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/stats"
)

// Experiment-harness observability (internal/obs): per-cell wall time
// and pool occupancy via cellPool, matrix fetch counts/latency via the
// matrix metrics. Snapshot consumers divide the counters by the
// snapshot's wall_seconds for cells/sec and matrices/sec. Write-only:
// the determinism tests prove tables are byte-identical with metrics
// on or off.
var (
	// cellPool fans independent (matrix, configuration) cells out and
	// records experiments.cell.tasks, experiments.cell.task_seconds and
	// experiments.cell.occupancy.
	cellPool = obs.Default.Pool("experiments.cell")
	// matrixVisits counts matrix fetches (cache hit or generation) and
	// matrixFetch times them.
	matrixVisits = obs.Default.Counter("experiments.matrix.visits")
	matrixFetch  = obs.Default.Timer("experiments.matrix.fetch_seconds")
	// cellErrors counts failed (matrix, cell) units that were isolated
	// into error rows instead of aborting a sweep (see Config.Errors).
	cellErrors = obs.Default.Counter("experiments.cell.errors")
)

// Config controls experiment scale and engine resources.
type Config struct {
	// Scale shrinks every testbed matrix (rows and nonzeros) by this
	// factor in (0, 1]. 1.0 reproduces the paper's sizes; the default
	// 0.25 keeps full sweeps to minutes on a laptop while preserving
	// the working-set ordering.
	Scale float64
	// MaxMatrices truncates the testbed to its first N entries
	// (0 = all 32). Used by quick runs and the benchmark harness.
	MaxMatrices int
	// Stride keeps only every Stride-th testbed entry (0 or 1 = all),
	// composing with MaxMatrices. It preserves the ws spread while
	// cutting cost.
	Stride int
	// Parallelism bounds the host worker pool that runs independent
	// simulation cells concurrently, and is inherited by each
	// simulation's per-UE pool: 0 uses GOMAXPROCS, 1 forces the fully
	// serial reference path. Results are identical at every setting.
	Parallelism int
	// Sequential forces the seed-equivalent reference engine: no worker
	// pools, no shared sweep walks (each machine of a sweep cell is
	// priced by its own full cache walk). Combined with a zero-budget
	// MatrixCache it reproduces exactly what the pre-parallel engine
	// computed per run - the determinism oracle and the baseline the
	// bench harness times. Output is bit-identical either way.
	Sequential bool
	// MatrixCache overrides the shared generated-matrix cache. nil uses
	// a package-wide cache with DefaultMatrixCacheBytes of budget; a
	// zero-budget cache disables memoisation.
	MatrixCache *sparse.MatrixCache
	// Span, when set, is the parent trace span (typically the
	// experiment's): matrix and cell child spans nest under it and
	// per-UE walks roll up inside each cell (internal/obs). Purely
	// observational - output is identical with or without it.
	Span *obs.Span
	// Ctx bounds the whole run: a cancelled or expired context stops the
	// engine from starting further matrices and cells and aborts in-flight
	// simulations at their pass boundaries. nil means Background (never
	// cancelled), under which output is bit-identical to the pre-context
	// engine.
	Ctx context.Context
	// FailFast aborts a sweep at the first failing cell, cancelling its
	// in-flight siblings - the engine's historical all-or-nothing
	// behaviour. Without it (and with Errors attached) a failing
	// (matrix, cell) unit is recorded as an error row and the sweep
	// continues; means then cover only the completed matrices.
	FailFast bool
	// Fault is the deterministic fault-injection plan the chaos tests
	// drive (nil injects nothing; see internal/fault).
	Fault *fault.Plan
	// Pricing selects the simulator's cache-pricing backend for every
	// cell that does not pin its own: exact per-access walks, the
	// reuse-distance analytic fast path, or (the default) automatic
	// selection that only goes analytic when provably bit-identical to
	// the exact walk (see internal/sim/pricing.go). Sequential runs
	// always price exact - they are the seed-equivalent reference - so
	// Sequential with PricingAnalytic is rejected.
	Pricing sim.Pricing
	// Errors collects isolated per-unit failures. nil (the default for a
	// direct Run call) keeps the historical abort-on-first-error
	// semantics; Experiment.Execute attaches a log and renders it as an
	// error table after the run.
	Errors *ErrorLog
	// Engine selects the RCCE backend the executable-runtime experiments
	// run on (goroutine - the default and semantic oracle - or the
	// virtual-time DES scheduler). Purely an engine knob: both backends
	// render bit-identical tables, which the cross-engine determinism
	// tests prove. Simulated (analytic) sweeps ignore it.
	Engine rcce.Backend
	// Mesh sets the simulated chip geometry for executable-runtime
	// experiments (zero value = the real 6x4x2 SCC). Custom meshes lift
	// the 48-UE cap, e.g. 16x16x1 for a 256-core scaling sweep. A result
	// knob: different meshes render different tables.
	Mesh scc.Geometry
}

// context resolves the Ctx knob (nil means Background).
func (c Config) context() context.Context {
	if c.Ctx == nil {
		return context.Background() //sccvet:allow ctx-propagation documented nil-means-Background fallback for the Config knob
	}
	return c.Ctx
}

// DefaultMatrixCacheBytes bounds the shared generated-matrix cache: large
// enough to keep the default quarter-scale testbed (~320 MB of CSR data)
// fully resident, small enough that a full-scale (Scale=1) suite, which
// would need ~1.2 GB, is held partially and streamed via LRU eviction.
const DefaultMatrixCacheBytes = 1 << 30

var sharedMatrixCache = sparse.NewMatrixCache(DefaultMatrixCacheBytes)

// DefaultConfig returns the standard configuration (quarter scale, full
// testbed).
func DefaultConfig() Config { return Config{Scale: 0.25} }

// QuickConfig returns a configuration small enough for unit tests and
// benchmarks: 10% scale, every fourth matrix. The scale is the smallest at
// which the suite still straddles the aggregate L2 capacity (so working-set
// and contention effects survive shrinking).
func QuickConfig() Config { return Config{Scale: 0.10, Stride: 4} }

func (c Config) validate() error {
	if c.Scale <= 0 || c.Scale > 1 {
		return fmt.Errorf("experiments: scale %v outside (0, 1]", c.Scale)
	}
	if c.MaxMatrices < 0 || c.Stride < 0 {
		return fmt.Errorf("experiments: negative subset parameters")
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("experiments: negative parallelism")
	}
	if c.Sequential && c.Parallelism > 1 {
		// Sequential forces the serial reference engine, so a wider pool
		// request cannot be honoured; rejecting the combination beats
		// silently ignoring it. Parallelism 1 is allowed - it *is* the
		// serial pool - because the bench harness pins both explicitly.
		return fmt.Errorf("experiments: Sequential with Parallelism %d: the sequential engine always runs serially; drop one of the two", c.Parallelism)
	}
	if c.Sequential && c.Pricing == sim.PricingAnalytic {
		return fmt.Errorf("experiments: Sequential with analytic pricing: the sequential engine is the exact reference; drop one of the two")
	}
	if err := c.Mesh.OrDefault().Validate(); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return nil
}

// entries returns the selected testbed subset.
func (c Config) entries() []sparse.TestbedEntry {
	tb := sparse.Testbed()
	stride := c.Stride
	if stride <= 1 {
		stride = 1
	}
	var out []sparse.TestbedEntry
	for i := 0; i < len(tb); i += stride {
		out = append(out, tb[i])
	}
	if c.MaxMatrices > 0 && len(out) > c.MaxMatrices {
		out = out[:c.MaxMatrices]
	}
	return out
}

// MatrixCount returns the number of testbed matrices the configuration
// selects (benchmark observability).
func (c Config) MatrixCount() int { return len(c.entries()) }

// matrixCache resolves the cache the configuration uses.
func (c Config) matrixCache() *sparse.MatrixCache {
	if c.MatrixCache != nil {
		return c.MatrixCache
	}
	return sharedMatrixCache
}

// workers resolves the Parallelism knob to a pool size.
func (c Config) workers() int {
	if c.Sequential {
		return 1
	}
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// simOptions threads the engine parallelism and pricing backend into a
// cell's sim options unless the cell pinned its own.
func (c Config) simOptions(o sim.Options) sim.Options {
	if c.Sequential {
		// Seed-equivalent reference: serial, exact, no profile store.
		o.Parallelism = 1
		o.Pricing = sim.PricingExact
		o.Profiles = nil
		return o
	}
	if o.Parallelism == 0 {
		o.Parallelism = c.Parallelism
	}
	if o.Pricing == sim.PricingAuto {
		o.Pricing = c.Pricing
	}
	if o.Profiles == nil {
		// Profiles live beside the matrices they were traced from, under
		// the same byte budget (see sparse.MatrixCache).
		o.Profiles = c.matrixCache()
	}
	return o
}

// fetchMatrix pulls one matrix through the cache under the harness's
// fetch accounting. It fails when the run's context is done or the fault
// plan errors this entry's generation.
func (c Config) fetchMatrix(e sparse.TestbedEntry) (*sparse.CSR, error) {
	if err := c.context().Err(); err != nil {
		return nil, err
	}
	if err := c.Fault.MatrixError(e.Seed(), e.Name); err != nil {
		return nil, err
	}
	start := time.Now() //sccvet:allow nondeterminism write-only fetch-time metric; never feeds experiment tables
	a := c.matrixCache().Get(e, c.Scale)
	d := time.Since(start) //sccvet:allow nondeterminism write-only fetch-time metric; never feeds experiment tables
	matrixFetch.Observe(d)
	matrixVisits.Add(1)
	obs.RecorderFrom(c.context()).RecordDur("experiments.matrix", "matrix_fetch", e.Name, "", d)
	return a, nil
}

// isolate decides whether a failed per-matrix unit of work is swallowed:
// it records the failure as an error row and returns true when graceful
// degradation is active, false when the caller must abort (FailFast, no
// error log attached, or the failure is really the run's own cancellation
// propagating). The isolation boundary is the matrix: a failing cell keeps
// its identity inside err but excludes its whole matrix from the sweep's
// aggregates, so partial rows never appear in result tables.
func (c Config) isolate(matrix string, err error) bool {
	if c.FailFast || c.Errors == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	c.Errors.record(matrix, err)
	cellErrors.Add(1)
	obs.RecorderFrom(c.context()).Record(cellTrack, "cell_error", matrix, err.Error())
	return true
}

// forEachMatrix fetches each selected matrix at the configured scale
// (generating on a cache miss), invokes fn, and lets the LRU budget decide
// what stays resident before the next one (the full-scale testbed would
// not fit in memory all at once). Matrices handed to fn are shared and
// must be treated as read-only. fn receives a copy of the configuration
// whose Span is the per-matrix child span, so runGrid calls made through
// it nest their cell spans under the matrix. A failing matrix (generation
// or fn) is isolated into an error row when Config.Errors is attached and
// FailFast is off; otherwise it aborts the walk.
func (c Config) forEachMatrix(fn func(mc Config, e sparse.TestbedEntry, a *sparse.CSR) error) error {
	for _, e := range c.entries() {
		mc := c
		mc.Span = c.Span.StartChild("matrix:" + e.Name)
		a, err := c.fetchMatrix(e)
		if err == nil {
			err = fn(mc, e, a)
		}
		mc.Span.End()
		if err != nil {
			if c.isolate(e.Name, err) {
				continue
			}
			return fmt.Errorf("experiments: matrix %s: %w", e.Name, err)
		}
	}
	return nil
}

// A sweepCell is one simulator configuration of an experiment grid: a set
// of machines differing only in clock domains (simulated with one shared
// cache walk) and the run options. Most cells sweep a single machine.
type sweepCell struct {
	machines []*sim.Machine
	opts     sim.Options
}

func oneMachine(m *sim.Machine, opts sim.Options) sweepCell {
	return sweepCell{machines: []*sim.Machine{m}, opts: opts}
}

// cellOptions threads engine parallelism, the run context and a per-cell
// child span into one cell's sim options.
func (c Config) cellOptions(ctx context.Context, o sim.Options) (sim.Options, *obs.Span) {
	o = c.simOptions(o)
	if o.Ctx == nil {
		o.Ctx = ctx
	}
	sp := c.Span.StartChild("cell")
	o.Span = sp
	return o, sp
}

// runGrid simulates every cell on matrix a, fanning independent cells out
// over the host pool. results[ci][j] is cell ci under the cell's machine
// j, bit-identical to serial individual runs regardless of pool size. Cell
// failures (injected or genuine) come back joined, each wrapped with its
// cell index; under FailFast the first failure cancels in-flight siblings.
func (c Config) runGrid(a *sparse.CSR, cells []sweepCell) ([][]*sim.Result, error) {
	ctx := c.context()
	if c.Sequential {
		// Seed-equivalent reference: every machine of every cell priced
		// by its own full cache walk, in order. The sweep path is proven
		// bit-identical to this (sim's determinism tests), so only the
		// wall clock differs.
		results := make([][]*sim.Result, len(cells))
		for ci, cell := range cells {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if c.Fault.CellWedged(a.Name, ci) {
				return nil, c.wedgeCell(ctx, a.Name, ci)
			}
			if err := c.Fault.CellError(a.Name, ci); err != nil {
				return nil, fmt.Errorf("cell %d: %w", ci, err)
			}
			results[ci] = make([]*sim.Result, len(cell.machines))
			opts, sp := c.cellOptions(ctx, cell.opts)
			for j, m := range cell.machines {
				r, err := m.RunSpMV(a, nil, opts)
				if err != nil {
					sp.End()
					return nil, fmt.Errorf("cell %d: %w", ci, err)
				}
				results[ci][j] = r
			}
			sp.End()
		}
		return results, nil
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([][]*sim.Result, len(cells))
	errs := make([]error, len(cells))
	_ = cellPool.ForEachCtx(cctx, len(cells), c.workers(), func(ci int) {
		if c.Fault.CellWedged(a.Name, ci) {
			errs[ci] = c.wedgeCell(cctx, a.Name, ci)
		} else if err := c.Fault.CellError(a.Name, ci); err != nil {
			errs[ci] = err
		} else {
			opts, sp := c.cellOptions(cctx, cells[ci].opts)
			results[ci], errs[ci] = sim.RunSpMVSweep(cells[ci].machines, a, nil, opts)
			sp.End()
		}
		if errs[ci] != nil && c.FailFast {
			cancel() // a failed cell aborts its in-flight siblings promptly
		}
	})
	if err := ctx.Err(); err != nil {
		// The run's own context (signal, deadline) aborted the grid.
		return nil, err
	}
	var joined []error
	for ci, err := range errs {
		if err == nil || errors.Is(err, context.Canceled) {
			// Cancelled siblings are fallout of the root-cause cell under
			// FailFast, not failures of their own.
			continue
		}
		joined = append(joined, fmt.Errorf("cell %d: %w", ci, err))
	}
	if len(joined) > 0 {
		return nil, errors.Join(joined...)
	}
	return results, nil
}

// gridMeans generates each selected matrix once and runs every cell on it,
// returning the suite-mean MFLOPS per (cell, machine) - the inverted-loop
// core of every configuration-sweep experiment (the paper reports
// arithmetic means across the suite). An isolated failing matrix (see
// Config.Errors) is excluded from the means; with no failures the
// contributions arrive in the exact order of the historical fixed-size
// walk, so the means are bit-identical.
func (c Config) gridMeans(cells []sweepCell) ([][]float64, error) {
	vals := make([][][]float64, len(cells)) // [cell][machine] -> per-matrix values
	for ci, cell := range cells {
		vals[ci] = make([][]float64, len(cell.machines))
	}
	for _, e := range c.entries() {
		mc := c
		mc.Span = c.Span.StartChild("matrix:" + e.Name)
		a, err := c.fetchMatrix(e)
		if err == nil {
			var rs [][]*sim.Result
			rs, err = mc.runGrid(a, cells)
			if err == nil {
				for ci := range cells {
					for j := range rs[ci] {
						vals[ci][j] = append(vals[ci][j], rs[ci][j].MFLOPS)
					}
				}
			}
		}
		mc.Span.End()
		if err != nil {
			if c.isolate(e.Name, err) {
				continue
			}
			return nil, fmt.Errorf("experiments: matrix %s: %w", e.Name, err)
		}
	}
	means := make([][]float64, len(cells))
	for ci := range cells {
		means[ci] = make([]float64, len(vals[ci]))
		for j := range vals[ci] {
			means[ci][j] = stats.Mean(vals[ci][j])
		}
	}
	return means, nil
}

// meanMFLOPS runs one simulator configuration across the subset and
// averages MFLOPS.
func (c Config) meanMFLOPS(m *sim.Machine, opts sim.Options) (float64, error) {
	means, err := c.gridMeans([]sweepCell{oneMachine(m, opts)})
	if err != nil {
		return 0, err
	}
	return means[0][0], nil
}

// CellError is one isolated failure of a sweep: the matrix it happened on
// and the underlying error (which keeps the failing cell's identity, e.g.
// "cell 3: ... injected fault").
type CellError struct {
	Matrix string
	Err    error
}

// ErrorLog collects isolated failures across a run. It is safe for
// concurrent use; attach one via Config.Errors (or run through
// Experiment.Execute, which attaches one for you).
type ErrorLog struct {
	mu   sync.Mutex
	errs []CellError
}

func (l *ErrorLog) record(matrix string, err error) {
	l.mu.Lock()
	l.errs = append(l.errs, CellError{Matrix: matrix, Err: err})
	l.mu.Unlock()
}

// Errors returns a copy of the recorded failures in record order.
func (l *ErrorLog) Errors() []CellError {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]CellError(nil), l.errs...)
}

// Len reports how many failures were recorded.
func (l *ErrorLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.errs)
}

// Experiment is one regenerable artefact.
type Experiment struct {
	// ID is the registry key (e.g. "fig5").
	ID string
	// Title describes the paper artefact being regenerated.
	Title string
	// Run executes the experiment with the historical semantics: any
	// failing unit of work aborts it (unless the caller attached
	// Config.Errors itself). Prefer Execute for degradation-aware runs.
	Run func(Config) ([]*stats.Table, error)
}

// Execute runs the experiment with graceful degradation: unless FailFast
// is set, an ErrorLog is attached (if the caller didn't supply one) so
// failing (matrix, cell) units become error rows in a trailing "failed
// cells" table instead of aborting the sweep. With no failures the output
// is exactly Run's - no extra table, bit-identical rendering.
func (e Experiment) Execute(cfg Config) ([]*stats.Table, error) {
	if cfg.Errors == nil && !cfg.FailFast {
		cfg.Errors = &ErrorLog{}
	}
	tables, err := e.Run(cfg)
	if err != nil {
		return tables, err
	}
	if cfg.Errors != nil && cfg.Errors.Len() > 0 {
		t := stats.NewTable(e.Title+" - failed cells", "matrix", "error")
		for _, ce := range cfg.Errors.Errors() {
			t.AddRow(ce.Matrix, ce.Err.Error())
		}
		t.AddNote("%d unit(s) failed and were isolated; aggregates above cover only the completed matrices", cfg.Errors.Len())
		tables = append(tables, t)
	}
	return tables, nil
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// CoreCounts is the sweep the paper's line plots use.
var CoreCounts = []int{1, 2, 4, 8, 16, 24, 32, 48}
