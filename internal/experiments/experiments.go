// Package experiments regenerates every table and figure of the paper's
// evaluation section, plus the ablations DESIGN.md calls out. Each
// experiment is a named, self-contained function from a Config to one or
// more rendered tables; cmd/sccsim and the repository benchmarks drive the
// same registry.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/stats"
)

// Config controls experiment scale.
type Config struct {
	// Scale shrinks every testbed matrix (rows and nonzeros) by this
	// factor in (0, 1]. 1.0 reproduces the paper's sizes; the default
	// 0.25 keeps full sweeps to minutes on a laptop while preserving
	// the working-set ordering.
	Scale float64
	// MaxMatrices truncates the testbed to its first N entries
	// (0 = all 32). Used by quick runs and the benchmark harness.
	MaxMatrices int
	// Stride keeps only every Stride-th testbed entry (0 or 1 = all),
	// composing with MaxMatrices. It preserves the ws spread while
	// cutting cost.
	Stride int
}

// DefaultConfig returns the standard configuration (quarter scale, full
// testbed).
func DefaultConfig() Config { return Config{Scale: 0.25} }

// QuickConfig returns a configuration small enough for unit tests and
// benchmarks: 10% scale, every fourth matrix. The scale is the smallest at
// which the suite still straddles the aggregate L2 capacity (so working-set
// and contention effects survive shrinking).
func QuickConfig() Config { return Config{Scale: 0.10, Stride: 4} }

func (c Config) validate() error {
	if c.Scale <= 0 || c.Scale > 1 {
		return fmt.Errorf("experiments: scale %v outside (0, 1]", c.Scale)
	}
	if c.MaxMatrices < 0 || c.Stride < 0 {
		return fmt.Errorf("experiments: negative subset parameters")
	}
	return nil
}

// entries returns the selected testbed subset.
func (c Config) entries() []sparse.TestbedEntry {
	tb := sparse.Testbed()
	stride := c.Stride
	if stride <= 1 {
		stride = 1
	}
	var out []sparse.TestbedEntry
	for i := 0; i < len(tb); i += stride {
		out = append(out, tb[i])
	}
	if c.MaxMatrices > 0 && len(out) > c.MaxMatrices {
		out = out[:c.MaxMatrices]
	}
	return out
}

// forEachMatrix generates each selected matrix at the configured scale,
// invokes fn, and releases the matrix before the next one (the full-scale
// testbed would not fit in memory all at once).
func (c Config) forEachMatrix(fn func(e sparse.TestbedEntry, a *sparse.CSR) error) error {
	for _, e := range c.entries() {
		a := e.GenerateScaled(c.Scale)
		if err := fn(e, a); err != nil {
			return fmt.Errorf("experiments: matrix %s: %w", e.Name, err)
		}
	}
	return nil
}

// meanMFLOPS runs one simulator configuration across the subset and
// averages MFLOPS (the paper reports arithmetic means across the suite).
func (c Config) meanMFLOPS(m *sim.Machine, opts sim.Options) (float64, error) {
	var vals []float64
	err := c.forEachMatrix(func(_ sparse.TestbedEntry, a *sparse.CSR) error {
		r, err := m.RunSpMV(a, nil, opts)
		if err != nil {
			return err
		}
		vals = append(vals, r.MFLOPS)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return stats.Mean(vals), nil
}

// Experiment is one regenerable artefact.
type Experiment struct {
	// ID is the registry key (e.g. "fig5").
	ID string
	// Title describes the paper artefact being regenerated.
	Title string
	// Run executes the experiment.
	Run func(Config) ([]*stats.Table, error)
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// CoreCounts is the sweep the paper's line plots use.
var CoreCounts = []int{1, 2, 4, 8, 16, 24, 32, 48}
