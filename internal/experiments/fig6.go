package experiments

import (
	"fmt"

	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Figure 6: per-matrix performance vs working-set size (8/24/48 cores)",
		Run:   runFig6,
	})
}

// runFig6 reproduces Figure 6: each matrix's MFLOPS against its working
// set at 8, 24 and 48 cores. The paper's observations: at 8 cores no
// working set fits the aggregate L2 and performance shows no ws relation;
// at 24/48 cores matrices whose per-core ws fits the 256 KB L2 jump (up to
// ~1 GFLOPS at 24 cores) while large ones stay in the 400-500 MFLOPS band,
// except the short-row matrices 24 and 25 whose loop overhead wins.
func runFig6(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := sim.NewMachine(scc.Conf0)
	var tables []*stats.Table
	for _, cores := range []int{8, 24, 48} {
		t := stats.NewTable(
			fmt.Sprintf("Figure 6 - performance vs working set, %d cores (conf0)", cores),
			"#", "matrix", "ws (MB)", "ws/core (KB)", "fits L2", "MFLOPS",
		)
		mapping := scc.DistanceReductionMapping(cores)
		err := cfg.forEachMatrix(func(e sparse.TestbedEntry, a *sparse.CSR) error {
			r, err := m.RunSpMV(a, nil, sim.Options{Mapping: mapping})
			if err != nil {
				return err
			}
			wsPerCoreKB := a.WorkingSetMB() * 1024 / float64(cores)
			fits := "no"
			if wsPerCoreKB < 256 {
				fits = "yes"
			}
			t.AddRow(e.ID, e.Name, a.WorkingSetMB(), wsPerCoreKB, fits, r.MFLOPS)
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.AddNote("paper: L2-resident matrices boost at 24/48 cores; matrices 24/25 stay slow (short rows)")
		tables = append(tables, t)
	}
	return tables, nil
}
