package experiments

import (
	"fmt"

	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Figure 6: per-matrix performance vs working-set size (8/24/48 cores)",
		Run:   runFig6,
	})
}

// runFig6 reproduces Figure 6: each matrix's MFLOPS against its working
// set at 8, 24 and 48 cores. The paper's observations: at 8 cores no
// working set fits the aggregate L2 and performance shows no ws relation;
// at 24/48 cores matrices whose per-core ws fits the 256 KB L2 jump (up to
// ~1 GFLOPS at 24 cores) while large ones stay in the 400-500 MFLOPS band,
// except the short-row matrices 24 and 25 whose loop overhead wins.
func runFig6(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := sim.NewMachine(scc.Conf0)
	counts := []int{8, 24, 48}
	tables := make([]*stats.Table, len(counts))
	cells := make([]sweepCell, len(counts))
	for i, cores := range counts {
		tables[i] = stats.NewTable(
			fmt.Sprintf("Figure 6 - performance vs working set, %d cores (conf0)", cores),
			"#", "matrix", "ws (MB)", "ws/core (KB)", "fits L2", "MFLOPS",
		)
		cells[i] = oneMachine(m, sim.Options{Mapping: scc.DistanceReductionMapping(cores)})
	}
	// Matrix-outer: each matrix is generated once and its three core
	// counts run concurrently on the host pool.
	err := cfg.forEachMatrix(func(mc Config, e sparse.TestbedEntry, a *sparse.CSR) error {
		rs, err := mc.runGrid(a, cells)
		if err != nil {
			return err
		}
		for i, cores := range counts {
			wsPerCoreKB := a.WorkingSetMB() * 1024 / float64(cores)
			fits := "no"
			if wsPerCoreKB < 256 {
				fits = "yes"
			}
			tables[i].AddRow(e.ID, e.Name, a.WorkingSetMB(), wsPerCoreKB, fits, rs[i][0].MFLOPS)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, t := range tables {
		t.AddNote("paper: L2-resident matrices boost at 24/48 cores; matrices 24/25 stay slow (short rows)")
	}
	return tables, nil
}
