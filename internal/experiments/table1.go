package experiments

import (
	"repro/internal/sparse"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table I: matrix benchmark suite (n, nnz, nnz/n, working set)",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "latency",
		Title: "Eq. 1: memory latency by hop distance and clock configuration",
		Run:   runLatency,
	})
}

// runTable1 reproduces Table I. The paper-scale columns come from the
// testbed metadata (the reconstructed UFL statistics); the generated
// columns report the synthetic instantiation at the configured scale so the
// reconstruction is auditable.
func runTable1(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := stats.NewTable(
		"Table I - matrix benchmark suite",
		"#", "Matrix", "n", "nnz", "nnz/n", "ws (MB)",
		"gen n", "gen nnz", "gen nnz/n", "gen ws (MB)", "class",
	)
	err := cfg.forEachMatrix(func(mc Config, e sparse.TestbedEntry, a *sparse.CSR) error {
		t.AddRow(
			e.ID, e.Name, e.N, e.NNZ, e.NNZPerRow(), e.WorkingSetMB(),
			a.Rows, a.NNZ(), a.NNZPerRow(), a.WorkingSetMB(), string(e.Class),
		)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("paper-scale columns are the reconstructed UFL statistics; gen columns are the synthetic instantiation at scale %g", cfg.Scale)
	return []*stats.Table{t}, nil
}
