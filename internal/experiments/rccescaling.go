package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/fault"
	"repro/internal/rcce"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "rcce-scaling",
		Title: "RCCE runtime scaling: communication volume across UE counts (executable)",
		Run:   runRCCEScaling,
	})
}

// runRCCEScaling sweeps the executable RCCE SpMV across UE counts on the
// configured mesh and engine: per count, the messages/bytes/barriers the
// runtime really generated, the mapping's mean hop distance and the
// product checksum. The rows are engine-independent by construction (no
// wall or virtual time), so the goroutine and DES backends render
// bit-identical tables - the property `make des-smoke` and the
// cross-engine determinism tests pin down. The sweep runs on the first
// selected testbed matrix: scaling behaviour is a property of the
// runtime, not the suite, and one matrix keeps 1024-UE meshes cheap.
func runRCCEScaling(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	entries := cfg.entries()
	if len(entries) == 0 {
		return nil, fmt.Errorf("experiments: rcce-scaling: empty testbed selection")
	}
	e := entries[0]
	a, err := cfg.fetchMatrix(e)
	if err != nil {
		return nil, fmt.Errorf("experiments: matrix %s: %w", e.Name, err)
	}
	geom := cfg.Mesh.OrDefault()
	rows, err := sim.RunRCCESweep(a, sim.RCCESweepOptions{
		Engine:   cfg.Engine,
		Geometry: cfg.Mesh,
		Deadline: rcceSweepDeadline,
		Fault:    cfg.Fault,
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("RCCE scaling - %s mesh, matrix %s", geom, e.Name),
		"UEs", "messages", "bytes", "barriers", "mean hops", "checksum",
	)
	for _, r := range rows {
		t.AddRow(r.UEs, r.Messages, r.Bytes, r.Barriers, r.MeanHops, r.Checksum)
	}
	t.AddNote("executable runtime counters (not simulated); identical on every engine and host parallelism")
	return []*stats.Table{t}, nil
}

// rcceSweepDeadline bounds every rendezvous of the sweep's runs: generous
// enough that a loaded CI host never trips it, tight enough that a
// genuinely wedged program fails the experiment instead of hanging it.
const rcceSweepDeadline = 5 * time.Minute

// BenchDESRecord is the machine-readable perf record `sccsim -exp
// bench-des` emits (BENCH_des.json): the same rcce-scaling sweep timed on
// both engines, with per-message latency injected so the virtual-time
// advantage is visible - the goroutine backend pays the injected delays
// in wall clock, the DES scheduler jumps its virtual clock past them.
type BenchDESRecord struct {
	// Experiment names the swept experiment and Mesh the geometry.
	Experiment string `json:"experiment"`
	Mesh       string `json:"mesh"`
	// Scale/MaxMatrices/Stride describe the testbed subset (the sweep
	// uses its first matrix).
	Scale       float64 `json:"scale"`
	Stride      int     `json:"stride,omitempty"`
	MaxMatrices int     `json:"max_matrices,omitempty"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	// UEs is the swept ladder and InjectedDelaySec the per-message
	// latency injected into every partial-gather message.
	UEs              []int   `json:"ues"`
	InjectedDelaySec float64 `json:"injected_delay_sec"`
	// GoroutineSec/DESSec are the wall clocks of the two legs; Speedup
	// is their ratio (the virtual-time win). OutputIdentical records
	// whether the legs rendered byte-identical tables (they must).
	GoroutineSec    float64 `json:"goroutine_sec"`
	DESSec          float64 `json:"des_sec"`
	Speedup         float64 `json:"speedup"`
	OutputIdentical bool    `json:"output_identical"`
	UnixTime        int64   `json:"unix_time"`
}

// benchDelay is the latency BenchDES injects into each rank's partial
// send to rank 0: long enough to dominate the goroutine leg's wall clock,
// short enough that the bench stays under a minute.
const benchDelay = 250 * time.Millisecond

// BenchDES times the rcce-scaling sweep on the goroutine and DES engines
// under injected per-message latency and returns the perf record. Both
// legs must render bit-identical tables; only the clocks differ.
func BenchDES(cfg Config) (*BenchDESRecord, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	geom := cfg.Mesh.OrDefault()
	counts := sim.DefaultRCCECounts(geom)
	// Delay every rank's first message to rank 0 - the partial-result
	// gather spmv.RCCEWith performs at each count.
	plan := &fault.Plan{}
	for r := 1; r < geom.NumCores(); r++ {
		plan.Slow = append(plan.Slow, fault.Delay{
			Message: fault.Message{Src: r, Dst: 0, Seq: 0},
			By:      benchDelay,
		})
	}
	leg := func(b rcce.Backend) (float64, string, error) {
		c := cfg
		c.Engine = b
		c.Fault = plan
		start := time.Now() //sccvet:allow nondeterminism BenchDES measures host wall time by design; the swept tables stay deterministic
		out, err := ExecuteByID("rcce-scaling", c)
		if err != nil {
			return 0, "", err
		}
		return time.Since(start).Seconds(), out.Text, nil //sccvet:allow nondeterminism BenchDES measures host wall time by design; the swept tables stay deterministic
	}
	gSec, gOut, err := leg(rcce.BackendGoroutine)
	if err != nil {
		return nil, fmt.Errorf("experiments: bench-des goroutine leg: %w", err)
	}
	dSec, dOut, err := leg(rcce.BackendDES)
	if err != nil {
		return nil, fmt.Errorf("experiments: bench-des DES leg: %w", err)
	}
	rec := &BenchDESRecord{
		Experiment:       "rcce-scaling",
		Mesh:             geom.String(),
		Scale:            cfg.Scale,
		Stride:           cfg.Stride,
		MaxMatrices:      cfg.MaxMatrices,
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		UEs:              counts,
		InjectedDelaySec: benchDelay.Seconds(),
		GoroutineSec:     gSec,
		DESSec:           dSec,
		OutputIdentical:  gOut == dOut,
		UnixTime:         time.Now().Unix(), //sccvet:allow nondeterminism record timestamp metadata, not a simulated quantity
	}
	if dSec > 0 {
		rec.Speedup = gSec / dSec
	}
	return rec, nil
}

// JSON renders the record for BENCH_des.json.
func (r *BenchDESRecord) JSON() ([]byte, error) {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}
