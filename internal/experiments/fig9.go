package experiments

import (
	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Figure 9: clock configurations - performance and power efficiency",
		Run:   runFig9,
	})
}

// runFig9 reproduces Figure 9: (a) average performance under conf0
// (533/800/800), conf1 (800/1600/1066) and conf2 (800/1600/800) across core
// counts with speedups against conf0, and (b) full-system MFLOPS/W for the
// three configurations at 48 cores. The paper reports conf1 speedups up to
// 1.45, conf2 slightly above 1.2, a ~15% conf1-over-conf2 gap from the
// memory clock alone, power rising from 83.3 W to 107.4 W under conf1, and
// conf1 as the best MFLOPS/W with conf0 and conf2 practically tied.
func runFig9(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	configs := []struct {
		name string
		cc   scc.ClockConfig
	}{
		{"conf0", scc.Conf0},
		{"conf1", scc.Conf1},
		{"conf2", scc.Conf2},
	}
	// The three clock configurations share every cache decision, so each
	// (matrix, core count) walks the hierarchy once and prices all three
	// (sim.RunSpMVSweep); one cell per core count covers the whole grid.
	machines := make([]*sim.Machine, len(configs))
	for i, c := range configs {
		machines[i] = sim.NewMachine(c.cc)
	}
	cells := make([]sweepCell, len(CoreCounts))
	for i, n := range CoreCounts {
		cells[i] = sweepCell{machines: machines, opts: sim.Options{Mapping: scc.DistanceReductionMapping(n)}}
	}
	means, err := cfg.gridMeans(cells)
	if err != nil {
		return nil, err
	}

	perf := stats.NewTable(
		"Figure 9(a) - configurations (avg MFLOPS)",
		"cores", "conf0", "conf1", "conf2", "conf1/conf0", "conf2/conf0",
	)
	full := make(map[string]float64) // 48-core average per config
	for i, n := range CoreCounts {
		vals := means[i]
		if n == 48 {
			for j, c := range configs {
				full[c.name] = vals[j]
			}
		}
		perf.AddRow(n, vals[0], vals[1], vals[2], vals[1]/vals[0], vals[2]/vals[0])
	}
	perf.AddNote("paper: conf1 up to 1.45x, conf2 slightly above 1.2x")

	power := stats.NewTable(
		"Figure 9(b) - full-system power efficiency (48 cores)",
		"config", "clocks", "avg MFLOPS", "power (W)", "MFLOPS/W",
	)
	for _, c := range configs {
		watts := scc.ConfigPower(c.cc)
		power.AddRow(c.name, c.cc.String(), full[c.name], watts,
			scc.MFLOPSPerWatt(full[c.name]/1000, watts))
	}
	power.AddNote("paper: 83.3 W at conf0 -> 107.4 W at conf1; conf1 best MFLOPS/W, conf0 ~ conf2")
	return []*stats.Table{perf, power}, nil
}
