package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "ablation-l2geom",
		Title: "Ablation: L2 size and associativity (cache-geometry sweep)",
		Run:   runAblationL2Geom,
	})
}

// l2GeomSizesKB and l2GeomWays span the geometry grid around the SCC's
// 256 KB 4-way design point.
var (
	l2GeomSizesKB = []int{64, 128, 256, 512, 1024}
	l2GeomWays    = []int{2, 4, 8}
)

// runAblationL2Geom sweeps the per-core L2 geometry (size x associativity)
// around the SCC's 256 KB 4-way point at 24 cores. Every cell uses TrueLRU
// replacement so the whole grid is priceable from one stream profile per
// matrix: this experiment is the analytic fast path's showcase - under
// PricingAuto (or forced analytic) the first cell of each matrix traces the
// stream once and the other cells price their geometry in O(ways), while
// PricingExact re-walks every cell (the bench harness measures the ratio).
func runAblationL2Geom(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	mapping := scc.DistanceReductionMapping(24)
	var cells []sweepCell
	type geom struct{ kb, ways int }
	var geoms []geom
	for _, kb := range l2GeomSizesKB {
		for _, w := range l2GeomWays {
			m := sim.NewMachine(scc.Conf0)
			m.L2Geom = &cache.Config{
				SizeBytes:   kb << 10,
				LineBytes:   scc.CacheLineBytes,
				Ways:        w,
				WriteBack:   true,
				Replacement: cache.TrueLRU,
			}
			geoms = append(geoms, geom{kb, w})
			cells = append(cells, oneMachine(m, sim.Options{Mapping: mapping}))
		}
	}
	means, err := cfg.gridMeans(cells)
	if err != nil {
		return nil, err
	}
	base := 0.0
	for i, g := range geoms {
		if g.kb == 256 && g.ways == 4 {
			base = means[i][0]
		}
	}
	t := stats.NewTable(
		"Ablation - L2 geometry (24 cores, conf0, LRU write-back L2, avg MFLOPS)",
		"L2 KB", "ways", "avg MFLOPS", "vs 256KB/4w",
	)
	for i, g := range geoms {
		rel := "-"
		if base > 0 {
			rel = fmt.Sprintf("%.3f", means[i][0]/base)
		}
		t.AddRow(g.kb, g.ways, means[i][0], rel)
	}
	t.AddNote("TrueLRU replacement throughout: the grid shares one stream profile per matrix under analytic pricing")
	t.AddNote("the SCC ships 256 KB 4-way; tree-PLRU vs LRU differences are not modelled here")
	return []*stats.Table{t}, nil
}
