package experiments

import (
	"repro/internal/archcmp"
	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Figure 10: architectural comparison (performance and MFLOPS/W)",
		Run:   runFig10,
	})
}

// runFig10 reproduces Figure 10: the full-system average SpMV throughput
// and power efficiency of the five comparison systems (calibrated roofline
// models, manufacturer TDPs) next to the simulated SCC under conf0 and
// conf1. The paper's findings: the SCC only outperforms the dual-core
// Itanium2; the Tesla M2050 leads both metrics (7.9 GFLOPS, ~35 MFLOPS/W;
// 7.6x the SCC default); the SCC looks relatively better on MFLOPS/W than
// on raw performance.
func runFig10(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	// Simulated SCC full-chip averages.
	sccEntries := make([]archcmp.SCCEntry, 0, 2)
	for _, c := range []struct {
		name string
		cc   scc.ClockConfig
	}{{"SCC conf0", scc.Conf0}, {"SCC conf1", scc.Conf1}} {
		m := sim.NewMachine(c.cc)
		v, err := cfg.meanMFLOPS(m, sim.Options{Mapping: scc.DistanceReductionMapping(48)})
		if err != nil {
			return nil, err
		}
		sccEntries = append(sccEntries, archcmp.SCCEntry{
			Name:   c.name,
			GFLOPS: v / 1000,
			Watts:  scc.ConfigPower(c.cc),
		})
	}

	t := stats.NewTable(
		"Figure 10 - architectural comparison (full system)",
		"system", "cores", "GFLOPS", "power (W)", "MFLOPS/W",
	)
	for _, s := range archcmp.Systems() {
		t.AddRow(s.Name, s.Cores, s.SpMVGFLOPS(), s.TDPWatts, s.MFLOPSPerWatt())
	}
	for _, e := range sccEntries {
		t.AddRow(e.Name, scc.NumCores, e.GFLOPS, e.Watts, e.MFLOPSPerWatt())
	}
	t.AddNote("comparison systems are calibrated roofline models (TDP power, as in the paper); SCC rows are simulated")
	t.AddNote("paper: M2050 7.9 GFLOPS / ~35 MFLOPS/W best; SCC beats only the Itanium2")
	return []*stats.Table{t}, nil
}
