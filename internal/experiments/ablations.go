package experiments

import (
	"fmt"

	"repro/internal/partition"
	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "ablation-formats",
		Title: "Ablation: CSR vs ELLPACK vs blocked CSR storage",
		Run:   runAblationFormats,
	})
	register(Experiment{
		ID:    "ablation-reorder",
		Title: "Ablation: RCM reordering vs original vs shuffled ordering",
		Run:   runAblationReorder,
	})
	register(Experiment{
		ID:    "ablation-partition",
		Title: "Ablation: balanced-nnz vs by-rows vs cyclic partitioning",
		Run:   runAblationPartition,
	})
	register(Experiment{
		ID:    "ablation-cacheblock",
		Title: "Ablation: column-band cache blocking (Williams et al. optimisation)",
		Run:   runAblationCacheBlock,
	})
	register(Experiment{
		ID:    "ablation-prefetch",
		Title: "Ablation: next-line prefetching (Williams et al. optimisation)",
		Run:   runAblationPrefetch,
	})
	register(Experiment{
		ID:    "ablation-warmup",
		Title: "Ablation: cold-cache vs steady-state measurement",
		Run:   runAblationWarmup,
	})
}

// runAblationFormats compares the CSR kernel against ELLPACK and 2x2
// blocked CSR on the testbed subset (24 cores). ELL entries are skipped for
// matrices whose padding would exceed 3x nnz (power-law rows), mirroring
// how practitioners gate the format.
func runAblationFormats(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := sim.NewMachine(scc.Conf0)
	const cores = 24
	t := stats.NewTable(
		"Ablation - storage formats (24 cores, conf0, MFLOPS)",
		"#", "matrix", "CSR", "ELL", "BCSR 2x2", "BCSR fill", "DIA", "HYB",
	)
	err := cfg.forEachMatrix(func(mc Config, e sparse.TestbedEntry, a *sparse.CSR) error {
		csr, err := m.RunSpMV(a, nil, sim.Options{Mapping: scc.DistanceReductionMapping(cores)})
		if err != nil {
			return err
		}
		ellCell := "padded-out"
		if ell, err := sparse.ToELL(a, 3); err == nil {
			r, err := m.RunELL(ell, cores)
			if err != nil {
				return err
			}
			// The ELL kernel skips padding slots, so MFLOPS is already
			// counted against useful flops.
			ellCell = fmt.Sprintf("%.1f", r.MFLOPS)
		}
		b := sparse.ToBCSR(a, 2, 2)
		rb, err := m.RunBCSR(b, cores)
		if err != nil {
			return err
		}
		// Normalise BCSR throughput to useful flops.
		fill := b.FillRatio(a.NNZ())
		usefulBCSR := rb.MFLOPS / fill

		diaCell := "too many diags"
		if d, err := sparse.ToDIA(a, 512); err == nil {
			r, err := m.RunDIA(d, cores)
			if err != nil {
				return err
			}
			diaCell = fmt.Sprintf("%.1f", r.MFLOPS)
		}
		hybCell := "-"
		if hyb, err := sparse.ToHYB(a, 0.66); err == nil {
			r, err := m.RunHYB(hyb, cores)
			if err != nil {
				return err
			}
			hybCell = fmt.Sprintf("%.1f", r.MFLOPS)
		}
		t.AddRow(e.ID, e.Name, csr.MFLOPS, ellCell, usefulBCSR, fill, diaCell, hybCell)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("ELL/BCSR/DIA normalised to useful flops; ELL skipped when padding > 3x nnz; DIA when > 512 diagonals")
	return []*stats.Table{t}, nil
}

// runAblationReorder measures how much a bandwidth-reducing RCM permutation
// recovers for irregular matrices, against the original ordering and an
// adversarial random shuffle. It uses the random-pattern entries of the
// testbed, where the paper's locality findings are most acute.
func runAblationReorder(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := sim.NewMachine(scc.Conf0)
	const cores = 24
	mapping := scc.DistanceReductionMapping(cores)
	t := stats.NewTable(
		"Ablation - RCM reordering (24 cores, conf0, MFLOPS)",
		"#", "matrix", "original", "shuffled", "RCM", "RCM/original",
	)
	err := cfg.forEachMatrix(func(mc Config, e sparse.TestbedEntry, a *sparse.CSR) error {
		if e.Class != sparse.PatternRandom && e.Class != sparse.PatternPowerLaw {
			return nil // reordering targets the irregular entries
		}
		orig, err := m.RunSpMV(a, nil, sim.Options{Mapping: mapping})
		if err != nil {
			return err
		}
		shuf := sparse.ApplySymmetric(a, sparse.RandomPerm(a.Rows, int64(e.ID)))
		rs, err := m.RunSpMV(shuf, nil, sim.Options{Mapping: mapping})
		if err != nil {
			return err
		}
		rcm := sparse.ApplySymmetric(a, sparse.RCM(a))
		rr, err := m.RunSpMV(rcm, nil, sim.Options{Mapping: mapping})
		if err != nil {
			return err
		}
		t.AddRow(e.ID, e.Name, orig.MFLOPS, rs.MFLOPS, rr.MFLOPS, rr.MFLOPS/orig.MFLOPS)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("only irregular (random/power-law) testbed entries shown")
	return []*stats.Table{t}, nil
}

// runAblationPartition compares the paper's balanced-nonzero partitioner
// against by-rows and cyclic splits at 24 cores.
func runAblationPartition(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := sim.NewMachine(scc.Conf0)
	mapping := scc.DistanceReductionMapping(24)
	t := stats.NewTable(
		"Ablation - partitioning schemes (24 cores, conf0, avg MFLOPS)",
		"scheme", "avg MFLOPS", "vs bynnz",
	)
	base := 0.0
	for _, s := range []partition.Scheme{partition.SchemeByNNZ, partition.SchemeByRows, partition.SchemeCyclic, partition.SchemeBFS} {
		v, err := cfg.meanMFLOPS(m, sim.Options{Mapping: mapping, Scheme: s})
		if err != nil {
			return nil, err
		}
		if s == partition.SchemeByNNZ {
			base = v
		}
		t.AddRow(string(s), v, v/base)
	}
	t.AddNote("bynnz is the paper's scheme; cyclic destroys stream contiguity; bfs clusters graph-adjacent rows")
	return []*stats.Table{t}, nil
}

// runAblationWarmup quantifies the cold-vs-steady-state measurement choice
// (DESIGN.md decision 4): for L2-resident matrices cold timing hides the
// Figure 6 boost.
func runAblationWarmup(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := sim.NewMachine(scc.Conf0)
	mapping := scc.DistanceReductionMapping(24)
	means, err := cfg.gridMeans([]sweepCell{
		oneMachine(m, sim.Options{Mapping: mapping}),
		oneMachine(m, sim.Options{Mapping: mapping, ColdCache: true}),
	})
	if err != nil {
		return nil, err
	}
	warm, cold := means[0][0], means[1][0]
	t := stats.NewTable(
		"Ablation - measurement mode (24 cores, conf0, avg MFLOPS)",
		"mode", "avg MFLOPS",
	)
	t.AddRow("steady state (paper)", warm)
	t.AddRow("cold cache", cold)
	t.AddNote("steady state amortises compulsory misses, enabling the Figure 6 L2 boost")
	return []*stats.Table{t}, nil
}

// runAblationPrefetch evaluates a next-line prefetcher - one of the
// Williams et al. SpMV optimisations the paper's related work lists, absent
// from the stock SCC. Streaming matrices should gain; the trade is extra
// memory traffic.
func runAblationPrefetch(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	plain := sim.NewMachine(scc.Conf0)
	pf := sim.NewMachine(scc.Conf0)
	pf.Prefetch = true
	mapping := scc.DistanceReductionMapping(24)
	t := stats.NewTable(
		"Ablation - next-line prefetch (24 cores, conf0, MFLOPS)",
		"#", "matrix", "baseline", "prefetch", "speedup",
	)
	cells := []sweepCell{
		oneMachine(plain, sim.Options{Mapping: mapping}),
		oneMachine(pf, sim.Options{Mapping: mapping}),
	}
	err := cfg.forEachMatrix(func(mc Config, e sparse.TestbedEntry, a *sparse.CSR) error {
		rs, err := mc.runGrid(a, cells)
		if err != nil {
			return err
		}
		rp, rf := rs[0][0], rs[1][0]
		t.AddRow(e.ID, e.Name, rp.MFLOPS, rf.MFLOPS, rf.MFLOPS/rp.MFLOPS)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("next-line prefetch helps streaming (large-ws) matrices; neutral for L2-resident ones")
	return []*stats.Table{t}, nil
}

// runAblationCacheBlock evaluates column-band cache blocking at 4 cores on
// the testbed entries where it can matter: x bigger than twice the L2 and
// enough row density (nnz/n) for per-core x reuse to exist.
func runAblationCacheBlock(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := sim.NewMachine(scc.Conf0)
	const cores = 4
	const bandCols = 16384 // 128 KB x-window
	t := stats.NewTable(
		"Ablation - cache blocking (4 cores, conf0, 128 KB x-window, MFLOPS)",
		"#", "matrix", "nnz/n", "x (KB)", "plain CSR", "blocked", "speedup",
	)
	err := cfg.forEachMatrix(func(mc Config, e sparse.TestbedEntry, a *sparse.CSR) error {
		xKB := 8 * a.Cols / 1024
		if a.NNZPerRow() < 40 || xKB < 512 {
			return nil // blocking cannot pay off; skip
		}
		plain, err := m.RunSpMV(a, nil, sim.Options{Mapping: scc.DistanceReductionMapping(cores)})
		if err != nil {
			return err
		}
		blocked, err := m.RunCacheBlocked(a, bandCols, cores)
		if err != nil {
			return err
		}
		t.AddRow(e.ID, e.Name, a.NNZPerRow(), xKB, plain.MFLOPS, blocked.MFLOPS,
			blocked.MFLOPS/plain.MFLOPS)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if t.Rows() == 0 {
		t.AddNote("no qualifying matrices at this scale (need nnz/n >= 40 and x >= 512 KB); run with -scale 1.0")
	}
	t.AddNote("blocking trades repeated row walks for an L2-resident x window")
	return []*stats.Table{t}, nil
}
