package experiments

import (
	"repro/internal/sparse"
	"repro/internal/stats"
	"repro/internal/tune"
)

func init() {
	register(Experiment{
		ID:    "analysis-powercap",
		Title: "Analysis: performance/power Pareto frontier and power capping",
		Run:   runAnalysisPowercap,
	})
}

// runAnalysisPowercap extends Section IV-D from three named configurations
// to the full clock grid: it sweeps tile x mesh x memory clocks on a
// representative streaming matrix, reports the Pareto frontier, and answers
// "what is the best configuration under a watt budget" for a budget sweep.
func runAnalysisPowercap(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Representative large streaming matrix: pct20stif (3D stencil).
	e, ok := sparse.TestbedEntryByName("pct20stif")
	if !ok {
		panic("experiments: pct20stif missing from the testbed")
	}
	a := e.GenerateScaled(cfg.Scale)
	const cores = 48
	points, err := tune.SweepConfigs(a, cores)
	if err != nil {
		return nil, err
	}

	front := stats.NewTable(
		"Analysis - Pareto frontier (pct20stif, 48 cores)",
		"core MHz", "mesh MHz", "mem MHz", "MFLOPS", "W", "MFLOPS/W",
	)
	for _, p := range tune.ParetoFrontier(points) {
		front.AddRow(p.Config.CoreMHz, p.Config.MeshMHz, p.Config.MemMHz,
			p.MFLOPS, p.Watts, p.EfficiencyMFLOPSPerWatt())
	}
	front.AddNote("every other configuration is dominated (slower and at least as hungry)")

	caps := stats.NewTable(
		"Analysis - best configuration under a power budget",
		"budget (W)", "clocks", "MFLOPS", "W", "MFLOPS/W",
	)
	for _, budget := range []float64{70, 80, 90, 100, 110, 120} {
		best, err := tune.BestUnderBudget(points, budget)
		if err != nil {
			caps.AddRow(budget, "none fits", 0.0, 0.0, 0.0)
			continue
		}
		caps.AddRow(budget, best.Config.String(), best.MFLOPS, best.Watts,
			best.EfficiencyMFLOPSPerWatt())
	}
	caps.AddNote("the paper's conf0/conf1/conf2 are three points of this space")
	return []*stats.Table{front, caps}, nil
}
