package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rcce"
	"repro/internal/scc"
)

// cellTrack is the flight-recorder timeline row harness-level cell
// events (errors, wedges) land on; pool task events carry their own
// per-worker tracks.
const cellTrack = "experiments.cell"

// wedgeDeadline bounds the deliberately wedged communication program a
// WedgeCell fault runs: long enough for the watchdog to tick a few
// times into the flight recorder, short enough that chaos tests stay
// fast.
const wedgeDeadline = 50 * time.Millisecond

// wedgeCell services a fault.Plan.WedgeCell match: instead of returning
// a clean injected error, the cell runs a real two-rank RCCE program
// whose rank 1 wedges at its first operation, so rank 0 blocks in the
// barrier until the deadline watchdog converts the hang into a
// structured DeadlockError. The job that owns ctx therefore fails the
// way a genuinely hung sweep fails - watchdog ticks, the wedged rank's
// last event, and the deadlock verdict all land in the context's flight
// recorder, which is exactly the post-mortem the recorder exists to
// capture.
func (c Config) wedgeCell(ctx context.Context, matrix string, ci int) error {
	rec := obs.RecorderFrom(ctx)
	rec.Recordf(cellTrack, "fault_wedge", "cell wedged",
		"cell %d on matrix %s entering wedged communication", ci, matrix)
	err := rcce.RunWith(rcce.Options{
		Deadline: wedgeDeadline,
		Fault:    &fault.Plan{Wedge: &fault.RankFault{Rank: 1, AfterOps: 0}},
		Recorder: rec,
	}, 2, nil, scc.Uniform(scc.Conf0), func(u *rcce.UE) error {
		return u.Barrier()
	})
	if err == nil {
		// Cannot happen: rank 1 wedges before its barrier, so the program
		// can only end through the watchdog. Guard anyway so a silent
		// success never masks the injected fault.
		err = fault.ErrInjected
	}
	return fmt.Errorf("cell %d on matrix %s wedged: %w", ci, matrix, err)
}
