package experiments

import (
	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Figure 7: SpMV with the per-core L2 caches disabled",
		Run:   runFig7,
	})
}

// runFig7 reproduces Figure 7: average performance with the L2 caches
// enabled vs disabled (the SCC can boot without them) across core counts.
// The paper reports growing degradation with core count - about 30% at 48
// cores - and that without L2 the working-set correlation of Figure 6
// disappears, pinning the Figure 6 spread on L2 capacity misses.
func runFig7(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	on := sim.NewMachine(scc.Conf0)
	off := sim.NewMachine(scc.Conf0)
	off.WithL2 = false

	t := stats.NewTable(
		"Figure 7 - L2 enabled vs disabled (conf0, avg MFLOPS)",
		"cores", "with L2", "without L2", "without/with",
	)
	// One cell per (core count, L2 setting); the two hierarchies see
	// different access outcomes, so each cell walks its own caches.
	var cells []sweepCell
	for _, n := range CoreCounts {
		mapping := scc.DistanceReductionMapping(n)
		cells = append(cells,
			oneMachine(on, sim.Options{Mapping: mapping}),
			oneMachine(off, sim.Options{Mapping: mapping}))
	}
	means, err := cfg.gridMeans(cells)
	if err != nil {
		return nil, err
	}
	for i, n := range CoreCounts {
		a, b := means[2*i][0], means[2*i+1][0]
		t.AddRow(n, a, b, b/a)
	}
	t.AddNote("paper: degradation grows with cores, ~30%% at 48")
	return []*stats.Table{t}, nil
}
