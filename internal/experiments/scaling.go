package experiments

import (
	"fmt"

	"repro/internal/partition"
	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/spmv"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "analysis-scaling",
		Title: "Analysis: parallel efficiency across core counts and matrix classes",
		Run:   runAnalysisScaling,
	})
	register(Experiment{
		ID:    "analysis-distributed",
		Title: "Analysis: halo-exchange cost of a fully distributed SpMV",
		Run:   runAnalysisDistributed,
	})
}

// runAnalysisScaling computes the parallel efficiency (speedup over a
// single core divided by the core count) per testbed matrix across the
// sweep - the scalability view underlying the paper's Figures 5/6: large
// streaming matrices saturate their memory controllers while L2-resident
// ones scale superlinearly (the aggregate cache grows with the cores).
func runAnalysisScaling(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := sim.NewMachine(scc.Conf0)
	counts := []int{4, 8, 16, 24, 48}
	headers := []string{"#", "matrix", "1-core MFLOPS"}
	for _, n := range counts {
		headers = append(headers, fmt.Sprintf("eff@%d", n))
	}
	t := stats.NewTable("Analysis - parallel efficiency (conf0, speedup/cores)", headers...)
	// Cell 0 is the single-core baseline, cells 1.. the sweep counts; all
	// six run concurrently per matrix.
	cells := []sweepCell{oneMachine(m, sim.Options{Mapping: scc.DistanceReductionMapping(1)})}
	for _, n := range counts {
		cells = append(cells, oneMachine(m, sim.Options{Mapping: scc.DistanceReductionMapping(n)}))
	}
	superlinear := 0
	err := cfg.forEachMatrix(func(mc Config, e sparse.TestbedEntry, a *sparse.CSR) error {
		rs, err := mc.runGrid(a, cells)
		if err != nil {
			return err
		}
		base := rs[0][0]
		row := []any{e.ID, e.Name, base.MFLOPS}
		for i, n := range counts {
			eff := rs[i+1][0].MFLOPS / base.MFLOPS / float64(n)
			if eff > 1.05 {
				superlinear++
			}
			row = append(row, eff)
		}
		t.AddRow(row...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("efficiency > 1 is real: the aggregate L2 grows with the core count (%d superlinear cells)", superlinear)
	return []*stats.Table{t}, nil
}

// runAnalysisDistributed prices a fully distributed (no shared x) SpMV:
// per matrix, the halo-exchange volume and estimated exchange time under
// the contiguous and BFS-clustered partitioners, against the compute time
// of one kernel invocation at 24 cores.
func runAnalysisDistributed(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := sim.NewMachine(scc.Conf0)
	const cores = 24
	mapping := scc.DistanceReductionMapping(cores)
	t := stats.NewTable(
		"Analysis - distributed SpMV halo exchange (24 cores, conf0)",
		"#", "matrix", "volume bynnz", "volume bfs", "exch bynnz (µs)", "exch bfs (µs)", "compute (µs)", "comm share bfs",
	)
	err := cfg.forEachMatrix(func(mc Config, e sparse.TestbedEntry, a *sparse.CSR) error {
		compute, err := m.RunSpMV(a, nil, sim.Options{Mapping: mapping})
		if err != nil {
			return err
		}
		planA, err := spmv.NewCommPlan(a, partition.ByNNZ(a, cores))
		if err != nil {
			return err
		}
		planB, err := spmv.NewCommPlan(a, partition.BFSClustered(a, cores))
		if err != nil {
			return err
		}
		costA, err := spmv.ExchangeCost(planA, mapping, scc.Conf0)
		if err != nil {
			return err
		}
		costB, err := spmv.ExchangeCost(planB, mapping, scc.Conf0)
		if err != nil {
			return err
		}
		t.AddRow(e.ID, e.Name,
			planA.Volume(), planB.Volume(),
			costA*1e6, costB*1e6, compute.TimeSec*1e6,
			spmv.ExchangeFraction(costB, compute.TimeSec))
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("the halo exchange is the price of dropping the paper's shared-memory x")
	return []*stats.Table{t}, nil
}
