package experiments

import (
	"fmt"
	"strings"

	"repro/internal/scc"
	"repro/internal/sparse"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Figure 1: SCC floorplan and tile organisation",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "fig2",
		Title: "Figure 2: the CSR format and the reference SpMV kernel",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Figure 4: standard vs distance-reduction UE placement",
		Run:   runFig4,
	})
}

// runFig1 regenerates the chip-overview figure: the 6x4 tile grid with core
// numbering and controller placement, plus the per-tile datasheet.
func runFig1(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 1 - SCC overview", "property", "value")
	t.AddPreamble(scc.RenderChip())
	t.AddRow("tiles", scc.NumTiles)
	t.AddRow("cores", scc.NumCores)
	t.AddRow("memory controllers", scc.NumControllers)
	t.AddRow("L1 data cache", "16 KB, 4-way, 32 B lines, write-through")
	t.AddRow("L2 cache", "256 KB, 4-way, 32 B lines, write-back, pseudo-LRU")
	t.AddRow("MPB per core", fmt.Sprintf("%d KB", scc.MPBBytesPerCore/1024))
	t.AddRow("private memory per core", fmt.Sprintf("%d MB", scc.PrivateMemPerCoreBytes>>20))
	t.AddRow("tile clock range", "100-800 MHz (per-tile domains)")
	t.AddRow("mesh clock", "800 or 1600 MHz")
	t.AddRow("memory clock", "800 or 1066 MHz")
	return []*stats.Table{t}, nil
}

// runFig2 regenerates the CSR worked example: a small sparse matrix in
// dense form next to its Ptr/Index/Val arrays, with the kernel listing.
func runFig2(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// The canonical 5x5 example.
	coo := sparse.NewCOO(5, 5, 9)
	for _, e := range [][3]int{{0, 0, 1}, {0, 2, 2}, {1, 1, 3}, {2, 0, 4}, {2, 3, 5}, {2, 4, 6}, {3, 3, 7}, {4, 1, 8}, {4, 4, 9}} {
		coo.Append(e[0], e[1], float64(e[2]))
	}
	a := coo.ToCSR()

	var dense strings.Builder
	dense.WriteString("A =\n")
	for i := 0; i < a.Rows; i++ {
		dense.WriteString("  [")
		for j := 0; j < a.Cols; j++ {
			fmt.Fprintf(&dense, " %g", a.At(i, j))
		}
		dense.WriteString(" ]\n")
	}
	fmt.Fprintf(&dense, "\nPtr   = %v\nIndex = %v\nVal   = %v\n", a.Ptr, a.Index, a.Val)
	dense.WriteString(`
kernel (the paper's Figure 2):
  for i = 0 .. n-1:
      t = 0
      for k = Ptr[i] .. Ptr[i+1]-1:
          t += Val[k] * x[Index[k]]
      y[i] = t
`)

	t := stats.NewTable("Figure 2 - CSR format example", "row", "stored columns", "stored values")
	t.AddPreamble(dense.String())
	for i := 0; i < a.Rows; i++ {
		idx, val := a.Row(i)
		t.AddRow(i, fmt.Sprintf("%v", idx), fmt.Sprintf("%v", val))
	}
	return []*stats.Table{t}, nil
}

// runFig4 regenerates the mapping diagrams: where 8 units of execution land
// under the standard and distance-reduction policies.
func runFig4(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	const n = 8
	t := stats.NewTable("Figure 4 - UE-to-core mappings (8 ranks)", "policy", "cores", "mean hops", "max hops")
	std := scc.StandardMapping(n)
	dr := scc.DistanceReductionMapping(n)
	t.AddPreamble("(a) standard mapping:\n" + scc.RenderMapping(std))
	t.AddPreamble("(b) distance reduction:\n" + scc.RenderMapping(dr))
	t.AddRow("standard", fmt.Sprintf("%v", std), std.MeanHops(), std.MaxHops())
	t.AddRow("distance", fmt.Sprintf("%v", dr), dr.MeanHops(), dr.MaxHops())
	t.AddNote("the distance policy uses only 0-hop cores for the first 8 ranks")
	return []*stats.Table{t}, nil
}
