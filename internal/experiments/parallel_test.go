package experiments

import (
	"testing"

	"repro/internal/sparse"
)

// testConfig returns a small but non-trivial subset: three matrices at a
// scale where every cache level still participates.
func testConfig() Config {
	return Config{Scale: 0.08, Stride: 7}
}

// renderAll runs an experiment and concatenates every table's CSV - the
// byte-exact artefact the determinism contract covers.
func renderAll(t *testing.T, id string, cfg Config) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	tables, err := e.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := ""
	for _, tab := range tables {
		out += tab.CSV() + "\n"
	}
	return out
}

// TestExperimentsBitIdenticalUnderParallelism proves the end-to-end
// determinism contract at the experiment level: the host-parallel engine
// (worker pools + matrix cache + shared sweep walks) renders byte-identical
// tables to the serial reference engine with memoisation disabled.
func TestExperimentsBitIdenticalUnderParallelism(t *testing.T) {
	for _, id := range []string{"fig5", "fig8", "fig9", "ablation-warmup"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			sequential := testConfig()
			sequential.Sequential = true
			sequential.MatrixCache = sparse.NewMatrixCache(0)

			serial := testConfig()
			serial.Parallelism = 1
			serial.MatrixCache = sparse.NewMatrixCache(0)

			parallel := testConfig()
			parallel.Parallelism = 0
			parallel.MatrixCache = sparse.NewMatrixCache(DefaultMatrixCacheBytes)

			// The seed-equivalent engine (individual cache walks, no
			// memoisation) is the ground truth both engine paths must hit.
			want := renderAll(t, id, sequential)
			if got := renderAll(t, id, serial); got != want {
				t.Errorf("serial engine output differs from sequential reference:\n--- sequential ---\n%s\n--- serial ---\n%s", want, got)
			}
			if got := renderAll(t, id, parallel); got != want {
				t.Errorf("parallel engine output differs from sequential reference:\n--- sequential ---\n%s\n--- parallel ---\n%s", want, got)
			}
		})
	}
}

// TestBenchRecordsSpeedupFields exercises the bench harness end to end on a
// tiny subset and sanity-checks the perf record's bookkeeping.
func TestBenchRecordsSpeedupFields(t *testing.T) {
	cfg := Config{Scale: 0.05, Stride: 9}
	rec, err := Bench(cfg, "fig5")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Experiment != "fig5" {
		t.Errorf("experiment = %q, want fig5", rec.Experiment)
	}
	if rec.SerialSec <= 0 || rec.ParallelSec <= 0 || rec.Speedup <= 0 {
		t.Errorf("non-positive timings: serial %v parallel %v speedup %v",
			rec.SerialSec, rec.ParallelSec, rec.Speedup)
	}
	if rec.Matrices != cfg.MatrixCount() {
		t.Errorf("matrices = %d, want %d", rec.Matrices, cfg.MatrixCount())
	}
	if rec.SimulatedGFLOP <= 0 || rec.SimulatedGFLOPS <= 0 {
		t.Errorf("simulated work not recorded: %v GFLOP, %v GFLOP/s",
			rec.SimulatedGFLOP, rec.SimulatedGFLOPS)
	}
	if rec.MatrixVisits == 0 || rec.CacheMisses == 0 {
		t.Errorf("matrix-cache accounting empty: visits %d misses %d",
			rec.MatrixVisits, rec.CacheMisses)
	}
	if rec.CacheMisses > uint64(rec.Matrices) {
		t.Errorf("parallel leg regenerated matrices: %d misses for %d matrices",
			rec.CacheMisses, rec.Matrices)
	}
	if rec.GoMaxProcs < 1 {
		t.Errorf("gomaxprocs = %d", rec.GoMaxProcs)
	}
}

func TestBenchUnknownExperiment(t *testing.T) {
	if _, err := Bench(Config{Scale: 0.05}, "no-such-exp"); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}
