package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sparse"
)

// testConfig returns a small but non-trivial subset: three matrices at a
// scale where every cache level still participates.
func testConfig() Config {
	return Config{Scale: 0.08, Stride: 7}
}

// renderAll runs an experiment and concatenates every table's CSV - the
// byte-exact artefact the determinism contract covers.
func renderAll(t *testing.T, id string, cfg Config) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	tables, err := e.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := ""
	for _, tab := range tables {
		out += tab.CSV() + "\n"
	}
	return out
}

// TestExperimentsBitIdenticalUnderParallelism proves the end-to-end
// determinism contract at the experiment level: the host-parallel engine
// (worker pools + matrix cache + shared sweep walks) renders byte-identical
// tables to the serial reference engine with memoisation disabled.
func TestExperimentsBitIdenticalUnderParallelism(t *testing.T) {
	for _, id := range []string{"fig5", "fig8", "fig9", "ablation-warmup"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			sequential := testConfig()
			sequential.Sequential = true
			sequential.MatrixCache = sparse.NewMatrixCache(0)

			serial := testConfig()
			serial.Parallelism = 1
			serial.MatrixCache = sparse.NewMatrixCache(0)

			parallel := testConfig()
			parallel.Parallelism = 0
			parallel.MatrixCache = sparse.NewMatrixCache(DefaultMatrixCacheBytes)

			// The seed-equivalent engine (individual cache walks, no
			// memoisation) is the ground truth both engine paths must hit.
			want := renderAll(t, id, sequential)
			if got := renderAll(t, id, serial); got != want {
				t.Errorf("serial engine output differs from sequential reference:\n--- sequential ---\n%s\n--- serial ---\n%s", want, got)
			}
			if got := renderAll(t, id, parallel); got != want {
				t.Errorf("parallel engine output differs from sequential reference:\n--- sequential ---\n%s\n--- parallel ---\n%s", want, got)
			}
		})
	}
}

// TestExperimentsBitIdenticalWithMetricsOff proves the observability
// layer is write-only at the experiment level: disabling the metrics
// registry (counters, pools, spans) renders byte-identical tables at
// Parallelism 1 and 0. Not t.Parallel: it toggles the process-wide
// registry, and must not overlap tests that assert recorded metrics.
func TestExperimentsBitIdenticalWithMetricsOff(t *testing.T) {
	for _, id := range []string{"fig5", "fig9"} {
		for _, parallelism := range []int{1, 0} {
			cfg := testConfig()
			cfg.Parallelism = parallelism
			cfg.MatrixCache = sparse.NewMatrixCache(DefaultMatrixCacheBytes)

			span := obs.Default.StartSpan("test:" + id)
			sCfg := cfg
			sCfg.Span = span
			on := renderAll(t, id, sCfg)
			span.End()

			obs.Default.SetEnabled(false)
			off := renderAll(t, id, cfg)
			obs.Default.SetEnabled(true)

			if on != off {
				t.Errorf("%s parallelism=%d: tables differ with metrics disabled:\n--- on ---\n%s\n--- off ---\n%s",
					id, parallelism, on, off)
			}
		}
	}
}

// TestExperimentsBitIdenticalWithRecorderArmed proves the flight
// recorder keeps the same write-only contract as the metrics registry:
// arming a recorder on the run context and the matrix cache renders
// byte-identical tables to a run with no recorder at all, on both
// engine paths - telemetry on/off can never change a result byte.
func TestExperimentsBitIdenticalWithRecorderArmed(t *testing.T) {
	for _, parallelism := range []int{1, 0} {
		plain := testConfig()
		plain.Parallelism = parallelism
		plain.MatrixCache = sparse.NewMatrixCache(DefaultMatrixCacheBytes)
		want := renderAll(t, "fig5", plain)

		rec := obs.NewRecorder(4096)
		cache := sparse.NewMatrixCache(DefaultMatrixCacheBytes)
		cache.SetRecorder(rec)
		armed := testConfig()
		armed.Parallelism = parallelism
		armed.MatrixCache = cache
		armed.Ctx = obs.WithRecorder(context.Background(), rec)
		got := renderAll(t, "fig5", armed)

		if got != want {
			t.Errorf("parallelism=%d: tables differ with the flight recorder armed:\n--- off ---\n%s\n--- on ---\n%s",
				parallelism, want, got)
		}
		if rec.Len() == 0 {
			t.Errorf("parallelism=%d: recorder armed but saw no events", parallelism)
		}
	}
}

// TestEngineMetricsRecorded runs one experiment and checks the
// observability layer saw the engine's work: UE walks, cells, matrix
// fetches, cache traffic, simulated flops and controller contention all
// advance. Not t.Parallel (reads the process-wide registry around a
// bounded region also touched by TestExperimentsBitIdenticalWithMetricsOff).
func TestEngineMetricsRecorded(t *testing.T) {
	before := obs.Default.Snapshot()
	cfg := testConfig()
	cfg.MatrixCache = sparse.NewMatrixCache(DefaultMatrixCacheBytes)
	cfg.Span = obs.Default.StartSpan("test:metrics-recorded")
	renderAll(t, "fig9", cfg)
	cfg.Span.End()
	after := obs.Default.Snapshot()

	for _, name := range []string{
		"sim.flops.simulated",
		"sim.sweep.runs",
		"sim.sweep.machine_runs",
		"sim.ue_walk.tasks",
		"experiments.cell.tasks",
		"experiments.matrix.visits",
		"sparse.matrix_cache.misses",
	} {
		if after.Counters[name] <= before.Counters[name] {
			t.Errorf("counter %s did not advance: %d -> %d", name, before.Counters[name], after.Counters[name])
		}
	}
	if after.Samples["sim.ue_walk.occupancy"].Count <= before.Samples["sim.ue_walk.occupancy"].Count {
		t.Error("pool occupancy never sampled")
	}
	if after.Timers["experiments.cell.task_seconds"].Count <= before.Timers["experiments.cell.task_seconds"].Count {
		t.Error("per-cell wall time never recorded")
	}
	contended := false
	for name, st := range after.Samples {
		if strings.HasPrefix(name, "mem.mc") && st.Count > before.Samples[name].Count {
			contended = true
		}
	}
	if !contended {
		t.Error("no controller contention samples recorded")
	}
	// The sweep path must actually share walks: fig9 prices 3 machines
	// per invocation.
	runs := after.Counters["sim.sweep.runs"] - before.Counters["sim.sweep.runs"]
	priced := after.Counters["sim.sweep.machine_runs"] - before.Counters["sim.sweep.machine_runs"]
	if priced != 3*runs {
		t.Errorf("sweep-share factor off: %d machine runs over %d sweeps, want 3x", priced, runs)
	}
}

// TestBenchRecordsSpeedupFields exercises the bench harness end to end on a
// tiny subset and sanity-checks the perf record's bookkeeping.
func TestBenchRecordsSpeedupFields(t *testing.T) {
	cfg := Config{Scale: 0.05, Stride: 9}
	rec, err := Bench(cfg, "fig5")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Experiment != "fig5" {
		t.Errorf("experiment = %q, want fig5", rec.Experiment)
	}
	if rec.SerialSec <= 0 || rec.ParallelSec <= 0 || rec.Speedup <= 0 {
		t.Errorf("non-positive timings: serial %v parallel %v speedup %v",
			rec.SerialSec, rec.ParallelSec, rec.Speedup)
	}
	if rec.Matrices != cfg.MatrixCount() {
		t.Errorf("matrices = %d, want %d", rec.Matrices, cfg.MatrixCount())
	}
	if rec.SimulatedGFLOP <= 0 || rec.SimulatedGFLOPS <= 0 {
		t.Errorf("simulated work not recorded: %v GFLOP, %v GFLOP/s",
			rec.SimulatedGFLOP, rec.SimulatedGFLOPS)
	}
	if rec.MatrixVisits == 0 || rec.CacheMisses == 0 {
		t.Errorf("matrix-cache accounting empty: visits %d misses %d",
			rec.MatrixVisits, rec.CacheMisses)
	}
	if rec.CacheMisses > uint64(rec.Matrices) {
		t.Errorf("parallel leg regenerated matrices: %d misses for %d matrices",
			rec.CacheMisses, rec.Matrices)
	}
	if rec.GoMaxProcs < 1 {
		t.Errorf("gomaxprocs = %d", rec.GoMaxProcs)
	}
}

func TestBenchUnknownExperiment(t *testing.T) {
	if _, err := Bench(Config{Scale: 0.05}, "no-such-exp"); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}
