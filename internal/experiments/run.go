package experiments

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// RunOutput is the structured result of one experiment execution - the
// run-as-library twin of cmd/sccsim's stdout path, used by the sccsimd
// job daemon (internal/serve) and anything else that wants rendered
// artefacts as values instead of terminal output.
//
// Text and CSV contain every table (including a trailing "failed cells"
// table when units were isolated), each rendering followed by one blank
// line - the exact bytes cmd/sccsim -outdir persists. Both are pure
// functions of the experiment and the result-shaping Config knobs, so
// they are safe to cache content-addressed: the engine's determinism
// guarantees make them bit-identical across runs, worker counts and
// pricing auto/exact selection.
type RunOutput struct {
	// ID and Title identify the experiment that ran.
	ID    string
	Title string
	// Tables are the rendered artefacts in emission order.
	Tables []*stats.Table
	// Text is the aligned fixed-width rendering of every table.
	Text string
	// CSV is the machine-readable rendering (tables separated by a
	// blank line).
	CSV string
	// Failed counts (matrix, cell) units that were isolated into error
	// rows instead of aborting the run (0 for a clean run).
	Failed int
}

// ExecuteByID runs the registered experiment under cfg with Execute's
// graceful-degradation semantics and returns structured results. The
// error path mirrors Execute: a failing unit aborts only under FailFast
// (or when the caller attached its own Errors log and it is nil).
func ExecuteByID(id string, cfg Config) (*RunOutput, error) {
	e, ok := ByID(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	if cfg.Errors == nil && !cfg.FailFast {
		cfg.Errors = &ErrorLog{}
	}
	tables, err := e.Execute(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	out := &RunOutput{ID: e.ID, Title: e.Title, Tables: tables}
	if cfg.Errors != nil {
		out.Failed = cfg.Errors.Len()
	}
	var txt, csv strings.Builder
	for _, t := range tables {
		txt.WriteString(t.String())
		txt.WriteByte('\n')
		csv.WriteString(t.CSV())
		csv.WriteByte('\n')
	}
	out.Text = txt.String()
	out.CSV = csv.String()
	return out, nil
}
