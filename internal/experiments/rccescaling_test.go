package experiments

import (
	"strings"
	"testing"

	"repro/internal/rcce"
	"repro/internal/scc"
)

// rcceQuick keeps the executable sweep to one small matrix.
func rcceQuick() Config {
	c := QuickConfig()
	c.MaxMatrices = 1
	return c
}

func TestRCCEScalingShape(t *testing.T) {
	tables, err := runRCCEScaling(rcceQuick())
	if err != nil {
		t.Fatalf("rcce-scaling failed: %v", err)
	}
	if len(tables) != 1 {
		t.Fatalf("expected 1 table, got %d", len(tables))
	}
	// Default mesh: the ladder ends at the real chip's 48 cores.
	if rows := tables[0].Rows(); rows != 8 {
		t.Errorf("expected the 8-count default ladder, got %d rows", rows)
	}
	if !strings.Contains(tables[0].String(), "6x4x2") {
		t.Errorf("table title does not name the default mesh:\n%s", tables[0].String())
	}
}

// TestRCCECrossEngineDeterminism is the tentpole's acceptance property:
// the goroutine backend (the semantic oracle) and the virtual-time DES
// scheduler must render byte-identical tables - at the real chip's 48
// UEs and on a 256-core mesh the hardware never had.
func TestRCCECrossEngineDeterminism(t *testing.T) {
	meshes := []struct {
		name string
		geom scc.Geometry
	}{
		{"48-ue-real-chip", scc.Geometry{}},
		{"256-ue-16x16x1", scc.Geometry{TilesX: 16, TilesY: 16, CoresPerTile: 1}},
	}
	for _, m := range meshes {
		t.Run(m.name, func(t *testing.T) {
			render := func(b rcce.Backend) (string, string) {
				cfg := rcceQuick()
				cfg.Engine = b
				cfg.Mesh = m.geom
				out, err := ExecuteByID("rcce-scaling", cfg)
				if err != nil {
					t.Fatalf("engine %v failed: %v", b, err)
				}
				return out.Text, out.CSV
			}
			gTxt, gCSV := render(rcce.BackendGoroutine)
			dTxt, dCSV := render(rcce.BackendDES)
			if gTxt != dTxt {
				t.Errorf("text tables differ between engines:\ngoroutine:\n%s\ndes:\n%s", gTxt, dTxt)
			}
			if gCSV != dCSV {
				t.Errorf("CSV tables differ between engines:\ngoroutine:\n%s\ndes:\n%s", gCSV, dCSV)
			}
		})
	}
}
