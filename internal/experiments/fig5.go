package experiments

import (
	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "Figure 5: standard vs distance-reduction mapping across core counts",
		Run:   runFig5,
	})
}

// runFig5 reproduces Figure 5: average SpMV performance under the RCCE
// default mapping and the paper's distance-reduction mapping for a sweep of
// core counts, with the speedup of the latter. The paper reports speedups
// up to 1.23, identical mappings (speedup 1.0) at 1-2 cores, and the gap
// closing again at 48 cores where both mappings use the whole chip.
func runFig5(cfg Config) ([]*stats.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := sim.NewMachine(scc.Conf0)
	t := stats.NewTable(
		"Figure 5 - mapping policies (conf0, avg MFLOPS)",
		"cores", "standard", "distance", "speedup",
	)
	// One cell per (core count, mapping policy): each matrix is generated
	// once and swept over the whole grid.
	var cells []sweepCell
	for _, n := range CoreCounts {
		cells = append(cells,
			oneMachine(m, sim.Options{Mapping: scc.StandardMapping(n)}),
			oneMachine(m, sim.Options{Mapping: scc.DistanceReductionMapping(n)}))
	}
	means, err := cfg.gridMeans(cells)
	if err != nil {
		return nil, err
	}
	for i, n := range CoreCounts {
		std, dr := means[2*i][0], means[2*i+1][0]
		t.AddRow(n, std, dr, dr/std)
	}
	t.AddNote("paper: distance reduction wins up to 1.23x; equal at 1-2 cores")
	return []*stats.Table{t}, nil
}
