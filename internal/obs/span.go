package obs

import (
	"sync"
	"time"
)

// maxSpanChildren bounds the explicit children kept per span; beyond
// the cap, children only contribute to the per-name rollup (so a
// 48-UE cell or a 32-matrix experiment stays readable in JSON while
// the aggregate totals remain exact).
const maxSpanChildren = 64

// Span is one timed region of a hierarchical trace. All methods are
// nil-safe: a disabled registry hands out nil spans and the
// instrumentation sites need no guards.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	durSec   float64
	ended    bool
	children []*Span
	dropped  int
	rollup   map[string]*rollupEntry

	// capped links a child that exceeded its parent's explicit-children
	// cap back to the parent: on End its duration folds into the
	// parent's rollup instead, keeping aggregate totals exact.
	capped *Span
}

type rollupEntry struct {
	count  uint64
	totSec float64
}

func newSpan(name string) *Span {
	return &Span{name: name, start: now()}
}

// StartSpan opens a root span and tracks it in the registry so the
// snapshot can render the trace. Returns nil when recording is off.
func (r *Registry) StartSpan(name string) *Span {
	if r.disabled.Load() {
		return nil
	}
	s := newSpan(name)
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
	return s
}

// StartChild opens a child span. On a nil parent it returns nil, so a
// whole disabled subtree costs nothing.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: now()}
	s.mu.Lock()
	if len(s.children) < maxSpanChildren {
		s.children = append(s.children, c)
	} else {
		s.dropped++
		c.capped = s
	}
	s.mu.Unlock()
	return c
}

// End closes the span, freezing its duration. Ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	var done time.Duration
	report := false
	if !s.ended {
		done = since(s.start)
		s.ended = true
		s.durSec = done.Seconds()
		report = s.capped != nil
	}
	s.mu.Unlock()
	if report {
		s.capped.Record(s.name, done)
	}
}

// Record folds one timed event into the span's per-name rollup without
// allocating a child node - the aggregation level for high-cardinality
// leaves like per-UE walks (count and total seconds stay exact).
func (s *Span) Record(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.rollup == nil {
		s.rollup = make(map[string]*rollupEntry)
	}
	e, ok := s.rollup[name]
	if !ok {
		e = &rollupEntry{}
		s.rollup[name] = e
	}
	e.count++
	e.totSec += d.Seconds()
	s.mu.Unlock()
}

// SpanSnapshot is the JSON form of a span subtree. StartUnixNano is the
// span's wall-clock start (additive field; older readers ignore it) -
// the trace-event exporter needs absolute starts to place spans on a
// shared timeline, which durations alone cannot reconstruct.
type SpanSnapshot struct {
	Name          string                  `json:"name"`
	StartUnixNano int64                   `json:"start_unix_nano,omitempty"`
	Seconds       float64                 `json:"seconds"`
	Running       bool                    `json:"running,omitempty"`
	Children      []*SpanSnapshot         `json:"children,omitempty"`
	Dropped       int                     `json:"dropped_children,omitempty"`
	Rollup        map[string]RollupCounts `json:"rollup,omitempty"`
}

// RollupCounts aggregates same-named events recorded under a span.
type RollupCounts struct {
	Count   uint64  `json:"count"`
	Seconds float64 `json:"seconds"`
}

func (s *Span) snapshot() *SpanSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := &SpanSnapshot{
		Name:          s.name,
		StartUnixNano: s.start.UnixNano(),
		Seconds:       s.durSec,
		Dropped:       s.dropped,
	}
	if !s.ended {
		out.Running = true
		out.Seconds = since(s.start).Seconds()
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.snapshot())
	}
	if len(s.rollup) > 0 {
		out.Rollup = make(map[string]RollupCounts, len(s.rollup))
		for n, e := range s.rollup {
			out.Rollup[n] = RollupCounts{Count: e.count, Seconds: e.totSec}
		}
	}
	return out
}
