package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Pool is the one instrumented fan-out helper the engine uses for both
// per-UE simulation (internal/sim) and per-cell experiment grids
// (internal/experiments). It replaces the previously duplicated
// forEachRank/forEachCell helpers with identical scheduling semantics:
//
//   - workers <= 1 runs every task inline in index order - the serial
//     reference path the determinism tests pin down;
//   - workers > 1 fans tasks over at most that many goroutines.
//
// Instrumentation is write-only (task count, per-task duration,
// concurrent-occupancy distribution) and cannot influence task order,
// results, or which path runs.
type Pool struct {
	// Tasks counts completed tasks; TaskTime is the per-task duration
	// distribution (for sim.ue_walk this is the per-UE walk time, for
	// experiments.cell the per-cell wall time).
	Tasks    *Counter
	TaskTime *Timer
	// TaskHist is the log-bucketed form of TaskTime: the latency
	// distribution Prometheus scrapes as <prefix>_task_duration_seconds.
	TaskHist *Histogram
	// Occupancy samples the number of concurrently running tasks at
	// each task start; its max is the pool's high-water mark.
	Occupancy *Sample

	prefix string
	busy   atomic.Int64
}

// Pool returns an instrumented pool registering its metrics as
// <prefix>.tasks, <prefix>.task_seconds, <prefix>.task_duration_seconds
// and <prefix>.occupancy.
func (r *Registry) Pool(prefix string) *Pool {
	return &Pool{
		Tasks:     r.Counter(prefix + ".tasks"),
		TaskTime:  r.Timer(prefix + ".task_seconds"),
		TaskHist:  r.Histogram(prefix + ".task_duration_seconds"),
		Occupancy: r.Sample(prefix + ".occupancy"),
		prefix:    prefix,
	}
}

// ForEach runs fn(i) for every i in [0, n), fanning the calls over at
// most workers goroutines. fn must be safe to call concurrently for
// distinct indices when workers > 1.
func (p *Pool) ForEach(n, workers int, fn func(i int)) {
	//sccvet:allow ctx-propagation ForEach is the documented uncancellable variant; Background here IS its contract
	_ = p.ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach bounded by a context: cancellation stops the pool
// from *starting* further tasks and returns ctx.Err(); tasks already
// running finish normally (fn observes cancellation itself if it needs
// finer granularity). A nil ctx means Background. With an un-cancelled
// context the scheduling is identical to ForEach, so the serial reference
// path and the determinism guarantees are unchanged.
func (p *Pool) ForEachCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if ctx == nil {
		ctx = context.Background() //sccvet:allow ctx-propagation documented nil-means-Background fallback for callers without a context
	}
	rec := RecorderFrom(ctx)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			p.run(rec, 0, i, fn)
		}
		return ctx.Err()
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				p.run(rec, w, i, fn)
			}
		}(w)
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	return ctx.Err()
}

// run executes one task under the pool's accounting. w is the worker
// slot executing the task (0 on the serial path); when the context
// carried a flight recorder, the task lands on track "<prefix>/w<w>",
// giving the trace export one timeline row per pool worker.
func (p *Pool) run(rec *Recorder, w, i int, fn func(int)) {
	cur := p.busy.Add(1)
	p.Occupancy.Observe(float64(cur))
	start := now()
	fn(i)
	d := since(start)
	p.TaskTime.Observe(d)
	p.TaskHist.Observe(d.Seconds())
	p.Tasks.Add(1)
	p.busy.Add(-1)
	if rec != nil {
		rec.RecordDur(fmt.Sprintf("%s/w%d", p.prefix, w), "task",
			fmt.Sprintf("%s[%d]", p.prefix, i), "", d)
	}
}
