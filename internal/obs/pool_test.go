package obs

import (
	"sync"
	"testing"
)

// The serial path (workers <= 1) must run tasks inline in index order -
// it is the engine's determinism oracle.
func TestPoolSerialRunsInOrder(t *testing.T) {
	r := New()
	p := r.Pool("test.pool")
	var order []int
	p.ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d tasks, want 5", len(order))
	}
	if p.Tasks.Load() != 5 {
		t.Fatalf("tasks counter = %d, want 5", p.Tasks.Load())
	}
	if st := p.Occupancy.Stats(); st.Max != 1 {
		t.Fatalf("serial occupancy max = %v, want 1", st.Max)
	}
}

// The parallel path must run every index exactly once and never exceed
// the worker bound.
func TestPoolParallelCoversAllIndices(t *testing.T) {
	r := New()
	p := r.Pool("test.pool")
	const n, workers = 100, 4
	var mu sync.Mutex
	seen := make(map[int]int)
	p.ForEach(n, workers, func(i int) {
		mu.Lock()
		seen[i]++
		mu.Unlock()
	})
	if len(seen) != n {
		t.Fatalf("covered %d indices, want %d", len(seen), n)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
	if p.Tasks.Load() != n {
		t.Fatalf("tasks counter = %d, want %d", p.Tasks.Load(), n)
	}
	st := p.Occupancy.Stats()
	if st.Count != n || st.Max > workers || st.Min < 1 {
		t.Fatalf("occupancy stats = %+v (workers %d)", st, workers)
	}
	if tt := p.TaskTime.Stats(); tt.Count != n {
		t.Fatalf("task timer count = %d, want %d", tt.Count, n)
	}
}

// More workers than tasks must clamp, not deadlock.
func TestPoolClampsWorkersToTasks(t *testing.T) {
	r := New()
	p := r.Pool("test.pool")
	ran := 0
	var mu sync.Mutex
	p.ForEach(2, 16, func(i int) {
		mu.Lock()
		ran++
		mu.Unlock()
	})
	if ran != 2 {
		t.Fatalf("ran %d tasks, want 2", ran)
	}
}

// Zero tasks is a no-op on both paths.
func TestPoolZeroTasks(t *testing.T) {
	r := New()
	p := r.Pool("test.pool")
	p.ForEach(0, 1, func(int) { t.Fatal("serial fn called") })
	p.ForEach(0, 8, func(int) { t.Fatal("parallel fn called") })
	if p.Tasks.Load() != 0 {
		t.Fatalf("tasks = %d, want 0", p.Tasks.Load())
	}
}

// A disabled registry must still execute every task - only the
// accounting stops.
func TestPoolRunsTasksWhenDisabled(t *testing.T) {
	r := New()
	r.SetEnabled(false)
	p := r.Pool("test.pool")
	ran := 0
	p.ForEach(3, 1, func(int) { ran++ })
	if ran != 3 {
		t.Fatalf("ran %d tasks, want 3", ran)
	}
	if p.Tasks.Load() != 0 {
		t.Fatal("disabled pool still counted tasks")
	}
}
