package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free log-bucketed latency/size distribution. The
// bucket layout is fixed at construction time for every histogram in
// the process: histBuckets doubling buckets starting at histBase
// (1 µs when observations are seconds), plus one overflow bucket, so
// two histograms with the same name are always mergeable bucket-by-
// bucket and the Prometheus exposition can emit a stable `le` ladder.
//
// Observe is wait-free on the bucket path (one atomic add) and
// lock-free on the sum path (a CAS loop over the float64 bit pattern),
// mirroring Counter/Sample: safe from every worker goroutine, never a
// source of cross-worker ordering, and therefore incapable of changing
// simulation output - the same write-only contract the rest of the
// registry keeps.
type Histogram struct {
	reg     *Registry
	name    string
	buckets [histBuckets + 1]atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

const (
	// histBase is the upper bound of the first bucket. With seconds as
	// the unit this is 1 µs; 40 doublings reach ~1.1e6 s (~12.7 days),
	// comfortably past any job duration this engine produces.
	histBase    = 1e-6
	histBuckets = 40
)

// histBounds holds the inclusive upper bound of each finite bucket:
// histBase * 2^i. Everything above the last bound lands in the
// overflow bucket (Prometheus `+Inf`).
var histBounds = func() [histBuckets]float64 {
	var b [histBuckets]float64
	for i := range b {
		b[i] = histBase * math.Pow(2, float64(i))
	}
	return b
}()

// HistBounds returns a copy of the shared finite bucket upper bounds,
// in ascending order. cmd/metricscheck uses it to validate snapshots
// against the exposition layout.
func HistBounds() []float64 {
	out := make([]float64, histBuckets)
	copy(out[:], histBounds[:])
	return out
}

// Histogram returns the named histogram, creating it on first use.
// Names must appear in the declared schema (names.go) with
// KindHistogram; sccvet's counter-drift analyzer enforces this at the
// call site.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{reg: r, name: name}
		r.histograms[name] = h
	}
	return h
}

// bucketIndex maps a value onto its bucket: the smallest i with
// v <= histBounds[i], or histBuckets (overflow) when none holds.
func bucketIndex(v float64) int {
	if v <= histBase {
		return 0
	}
	// ceil(log2(v/histBase)) via Frexp: v/histBase in [2^(e-1), 2^e).
	frac, exp := math.Frexp(v / histBase)
	i := exp
	if frac == 0.5 { // exact power of two: 2^(exp-1)
		i = exp - 1
	}
	if i >= histBuckets {
		return histBuckets
	}
	if i < 0 {
		return 0
	}
	return i
}

// Observe folds one value into the distribution. NaN is dropped and
// negative values clamp to zero (a duration histogram must never let a
// stepped wall clock manufacture a negative latency).
func (h *Histogram) Observe(v float64) {
	if h == nil || h.reg.disabled.Load() || math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration folds a duration, recorded in seconds (negative
// durations clamp to zero like every Observe).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Merge folds other's buckets, count and sum into h. Both histograms
// share the global bucket layout, so the merge is exact. Reading the
// source concurrently with writers gives a point-in-time-per-field
// view, same as Snapshot.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil || h.reg.disabled.Load() {
		return
	}
	for i := range other.buckets {
		if n := other.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	if s := math.Float64frombits(other.sumBits.Load()); s != 0 {
		for {
			old := h.sumBits.Load()
			next := math.Float64bits(math.Float64frombits(old) + s)
			if h.sumBits.CompareAndSwap(old, next) {
				break
			}
		}
	}
}

// HistStats is the JSON snapshot of one histogram. Buckets are
// per-bucket (non-cumulative) counts aligned with HistBounds(), with
// one trailing overflow entry; the exposition layer cumulates them.
type HistStats struct {
	Count   int64   `json:"count"`
	Sum     float64 `json:"sum"`
	Buckets []int64 `json:"buckets"`
	P50     float64 `json:"p50"`
	P95     float64 `json:"p95"`
	P99     float64 `json:"p99"`
}

// Stats snapshots the histogram. Under concurrent writers each field
// is individually atomic; the quantiles are computed from the bucket
// snapshot so they are always internally consistent with Buckets.
func (h *Histogram) Stats() HistStats {
	var s HistStats
	s.Buckets = make([]int64, histBuckets+1)
	var total int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		total += n
	}
	// Count IS the bucket sum - there is no separate counter to tear
	// against, so Count == sum(Buckets) holds in every snapshot, which
	// cmd/metricscheck asserts and the Prometheus +Inf bucket relies on.
	s.Count = total
	s.Sum = math.Float64frombits(h.sumBits.Load())
	s.P50 = histQuantile(s.Buckets, total, 0.50)
	s.P95 = histQuantile(s.Buckets, total, 0.95)
	s.P99 = histQuantile(s.Buckets, total, 0.99)
	return s
}

// histQuantile estimates the q-quantile from per-bucket counts by
// linear interpolation inside the containing bucket. The overflow
// bucket has no finite upper bound; a quantile landing there reports
// the last finite bound (a floor, matching Prometheus' convention of
// clamping to the highest bucket).
func histQuantile(buckets []int64, total int64, q float64) float64 {
	if total <= 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		prev := cum
		cum += n
		if float64(cum) < rank {
			continue
		}
		if i >= histBuckets {
			return histBounds[histBuckets-1]
		}
		lo := 0.0
		if i > 0 {
			lo = histBounds[i-1]
		}
		hi := histBounds[i]
		frac := (rank - float64(prev)) / float64(n)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return histBounds[histBuckets-1]
}
