package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestSpanSnapshotRacesChildLifecycle snapshots a span continuously
// while children are created, recorded into and finished concurrently -
// the daemon's status endpoint does exactly this to a running job. Run
// under -race (the race target includes this package).
func TestSpanSnapshotRacesChildLifecycle(t *testing.T) {
	r := New()
	root := r.StartDetachedSpan("job")
	stop := make(chan struct{})
	snapDone := make(chan struct{})

	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := root.Snapshot()
			if snap == nil || snap.Name != "job" {
				t.Error("snapshot lost the span")
				return
			}
			for _, c := range snap.Children {
				if c.Seconds < 0 {
					t.Errorf("child %q negative duration", c.Name)
					return
				}
			}
		}
	}()

	const workers, spansEach = 4, 200
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < spansEach; i++ {
				c := root.StartChild(fmt.Sprintf("cell:%d.%d", w, i))
				c.Record("ue_walk", 0)
				c.End()
				c.End() // double-End stays a no-op under race too
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-snapDone

	snap := root.Snapshot()
	// Cap + rollup: explicit children bounded, nothing lost in total.
	if len(snap.Children) > maxSpanChildren {
		t.Fatalf("children %d exceed cap %d", len(snap.Children), maxSpanChildren)
	}
	if got := len(snap.Children) + snap.Dropped; got != workers*spansEach {
		t.Fatalf("children+dropped = %d, want %d", got, workers*spansEach)
	}
}

// TestCounterScopeDeltasWithNamesAddedMidJob pins the documented
// semantics: counters registered AFTER the baseline count from zero,
// and Deltas racing new-name registration is safe.
func TestCounterScopeDeltasWithNamesAddedMidJob(t *testing.T) {
	r := New()
	r.Counter("before").Add(10)
	scope := r.ScopeCounters()
	r.Counter("before").Add(5)
	r.Counter("after").Add(7) // name did not exist at baseline

	d := scope.Deltas()
	if d["before"] != 5 {
		t.Fatalf(`Deltas["before"] = %d, want 5`, d["before"])
	}
	if d["after"] != 7 {
		t.Fatalf(`Deltas["after"] = %d, want 7 (new names count from zero)`, d["after"])
	}
	if scope.Delta("after") != 7 || scope.Delta("missing") != 0 {
		t.Fatal("Delta on new/unknown names broke")
	}

	// Race: one goroutine keeps registering fresh names and bumping
	// them while another reads Deltas.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Counter(fmt.Sprintf("dyn.%d", i%50)).Add(1)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			for n, v := range scope.Deltas() {
				if v == 0 {
					t.Errorf("zero delta for %q leaked", n)
					return
				}
			}
		}
		close(stop)
	}()
	wg.Wait()
}
