// Package obs is the engine's observability layer: named atomic
// counters, gauges, timers and value distributions behind a Registry,
// hierarchical spans (run -> experiment -> matrix -> cell -> UE-walk),
// an instrumented worker pool, and a periodic progress reporter.
//
// The package is standard-library only and deliberately write-only from
// the simulation's point of view: nothing in here is ever read back by
// the engine to make a decision, so enabling, disabling or sampling the
// metrics cannot change a single bit of any Result or rendered table.
// The determinism tests in internal/sim and internal/experiments enforce
// that contract with metrics on, off, and at every parallelism level.
package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry owns a flat namespace of metrics plus the root spans. Metric
// constructors are idempotent: the same name always returns the same
// instance, so hot paths hold the pointer and never pay a map lookup.
type Registry struct {
	disabled atomic.Bool // zero value = enabled
	start    time.Time

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	samples    map[string]*Sample
	histograms map[string]*Histogram
	spans      []*Span
}

// Default is the process-wide registry every instrumented package
// records into; cmd/sccsim snapshots it for -metrics and -progress.
var Default = New()

// New builds an enabled, empty registry.
func New() *Registry {
	return &Registry{
		start:      now(),
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		timers:     make(map[string]*Timer),
		samples:    make(map[string]*Sample),
		histograms: make(map[string]*Histogram),
	}
}

// SetEnabled turns recording on or off. Disabled metrics drop every
// observation (loads return the values accumulated so far) and
// StartSpan returns nil, which every Span method accepts. The engine's
// outputs are identical either way - that is the whole point.
func (r *Registry) SetEnabled(on bool) { r.disabled.Store(!on) }

// Enabled reports whether the registry records observations.
func (r *Registry) Enabled() bool { return !r.disabled.Load() }

// Counter returns (creating on first use) the named monotone counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{reg: r}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named last-value gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{reg: r}
		r.gauges[name] = g
	}
	return g
}

// Timer returns (creating on first use) the named duration distribution.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{s: Sample{reg: r}}
		r.timers[name] = t
	}
	return t
}

// Sample returns (creating on first use) the named value distribution.
func (r *Registry) Sample(name string) *Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.samples[name]
	if !ok {
		s = &Sample{reg: r}
		r.samples[name] = s
	}
	return s
}

// Counter is a monotone uint64 (events, bytes, flops). Add is a single
// atomic op on the hot path.
type Counter struct {
	reg *Registry
	v   atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil && !c.reg.disabled.Load() {
		c.v.Add(n)
	}
}

// Load returns the accumulated value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 (resident bytes, entry counts).
type Gauge struct {
	reg *Registry
	v   atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) {
	if g != nil && !g.reg.disabled.Load() {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil && !g.reg.disabled.Load() {
		g.v.Add(delta)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Sample is a count/sum/min/max distribution of float64 observations
// (pool occupancy, contention slowdown factors). Observations are
// mutex-protected: every instrumented site fires at per-task frequency,
// not per memory access, so the lock is cold.
type Sample struct {
	reg      *Registry
	mu       sync.Mutex
	count    uint64
	sum      float64
	min, max float64
}

// Observe records one value.
func (s *Sample) Observe(v float64) {
	if s == nil || s.reg.disabled.Load() {
		return
	}
	s.mu.Lock()
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	s.mu.Unlock()
}

// Stats returns the snapshot of the distribution.
func (s *Sample) Stats() SampleStats {
	if s == nil {
		return SampleStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SampleStats{Count: s.count, Sum: s.sum, Min: s.min, Max: s.max}
	if s.count > 0 {
		st.Mean = s.sum / float64(s.count)
	}
	return st
}

// Timer is a Sample whose unit is seconds.
type Timer struct{ s Sample }

// Observe records one duration. Negative durations clamp to zero: all
// engine call sites measure via the monotonic-safe since()/Since, but a
// caller handing in wall-clock arithmetic must still never push a
// negative value into the distribution.
func (t *Timer) Observe(d time.Duration) {
	if t != nil {
		t.s.Observe(ClampDuration(d).Seconds())
	}
}

// Stats returns the snapshot of the duration distribution (seconds).
func (t *Timer) Stats() SampleStats {
	if t == nil {
		return SampleStats{}
	}
	return t.s.Stats()
}

// SampleStats is the exported snapshot of a Sample or Timer.
type SampleStats struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// SnapshotData is the schema-stable JSON form of a registry (the
// -metrics out.json payload, versioned like BENCH_*.json).
type SnapshotData struct {
	Schema      string                 `json:"schema"`
	UnixTime    int64                  `json:"unix_time"`
	WallSeconds float64                `json:"wall_seconds"`
	Counters    map[string]uint64      `json:"counters"`
	Gauges      map[string]int64       `json:"gauges"`
	Timers      map[string]SampleStats `json:"timers"`
	Samples     map[string]SampleStats `json:"samples"`
	Histograms  map[string]HistStats   `json:"histograms,omitempty"`
	Spans       []*SpanSnapshot        `json:"spans,omitempty"`
}

// SnapshotSchema identifies the metrics JSON layout.
const SnapshotSchema = "sccsim-metrics/1"

// Snapshot captures every metric and span. Wall time is measured from
// registry creation, so counter/wall_seconds is a process-lifetime rate
// (cells/sec, matrices/sec, simulated FLOPS).
func (r *Registry) Snapshot() *SnapshotData {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := &SnapshotData{
		Schema:      SnapshotSchema,
		UnixTime:    now().Unix(),
		WallSeconds: since(r.start).Seconds(),
		Counters:    make(map[string]uint64, len(r.counters)),
		Gauges:      make(map[string]int64, len(r.gauges)),
		Timers:      make(map[string]SampleStats, len(r.timers)),
		Samples:     make(map[string]SampleStats, len(r.samples)),
	}
	if len(r.histograms) > 0 {
		d.Histograms = make(map[string]HistStats, len(r.histograms))
		for n, h := range r.histograms {
			d.Histograms[n] = h.Stats()
		}
	}
	for n, c := range r.counters {
		d.Counters[n] = c.Load()
	}
	for n, g := range r.gauges {
		d.Gauges[n] = g.Load()
	}
	for n, t := range r.timers {
		d.Timers[n] = t.Stats()
	}
	for n, s := range r.samples {
		d.Samples[n] = s.Stats()
	}
	for _, sp := range r.spans {
		d.Spans = append(d.Spans, sp.snapshot())
	}
	return d
}

// SnapshotJSON renders the snapshot as indented JSON (map keys are
// emitted sorted by encoding/json, keeping the output diff-friendly).
func (r *Registry) SnapshotJSON() ([]byte, error) {
	blob, err := json.MarshalIndent(sanitize(r.Snapshot()), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// sanitize clamps non-finite floats (a timer that never fired has
// min=max=0 already; this guards future metrics) so MarshalJSON cannot
// fail on NaN/Inf.
func sanitize(d *SnapshotData) *SnapshotData {
	fix := func(st SampleStats) SampleStats {
		for _, p := range []*float64{&st.Sum, &st.Mean, &st.Min, &st.Max} {
			if math.IsNaN(*p) || math.IsInf(*p, 0) {
				*p = 0
			}
		}
		return st
	}
	for n, st := range d.Timers {
		d.Timers[n] = fix(st)
	}
	for n, st := range d.Samples {
		d.Samples[n] = fix(st)
	}
	for n, st := range d.Histograms {
		for _, p := range []*float64{&st.Sum, &st.P50, &st.P95, &st.P99} {
			if math.IsNaN(*p) || math.IsInf(*p, 0) {
				*p = 0
			}
		}
		d.Histograms[n] = st
	}
	return d
}

// CounterNames returns the registered counter names, sorted (reporter
// and test helper).
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
