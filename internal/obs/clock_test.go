package obs

import (
	"testing"
	"time"
)

// steppedClock is a fake clock whose reading the test moves by hand -
// including BACKWARDS, which is what a wall-clock step (NTP slew,
// manual reset) looks like to code that lost the monotonic reading.
type steppedClock struct{ t time.Time }

func (c *steppedClock) now() time.Time { return c.t }

func (c *steppedClock) step(d time.Duration) { c.t = c.t.Add(d) }

func TestSinceClampsBackwardsClock(t *testing.T) {
	clk := &steppedClock{t: time.Unix(1000, 0)}
	defer setClock(clk.now)()
	start := now()
	clk.step(-10 * time.Second)
	if d := since(start); d != 0 {
		t.Fatalf("since() after backwards step = %v, want 0", d)
	}
	if d := Since(start); d != 0 {
		t.Fatalf("Since() after backwards step = %v, want 0", d)
	}
	clk.step(15 * time.Second) // net +5s from start
	if d := since(start); d != 5*time.Second {
		t.Fatalf("since() = %v, want 5s", d)
	}
}

// TestSteppedClockCannotProduceNegativeDurations is the regression test
// for the monotonic-safety satellite: run every duration-measuring path
// in the package against a clock that steps backwards mid-measurement
// and assert no negative duration leaks into any metric or snapshot.
func TestSteppedClockCannotProduceNegativeDurations(t *testing.T) {
	clk := &steppedClock{t: time.Unix(2000, 0)}
	defer setClock(clk.now)()

	r := New()

	// Timer fed raw negative wall-clock arithmetic must clamp.
	tm := r.Timer("t")
	tm.Observe(-3 * time.Second)
	if st := tm.Stats(); st.Min < 0 || st.Sum < 0 {
		t.Fatalf("timer accepted a negative duration: %+v", st)
	}

	// Span ended after a backwards step must not go negative.
	sp := r.StartSpan("root")
	child := sp.StartChild("child")
	clk.step(-30 * time.Second)
	child.End()
	sp.End()

	// A running span snapshotted after a backwards step likewise.
	run := r.StartSpan("running")
	clk.step(-30 * time.Second)

	// Pool task timed across a backwards step.
	pool := r.Pool("sim.ue_walk")
	pool.ForEach(1, 1, func(int) { clk.step(-time.Minute) })

	// Histogram observation of a negative value clamps to bucket 0.
	h := r.Histogram("h")
	h.Observe(-1)

	// Registry wall time with the clock before the registry's birth.
	d := r.Snapshot()
	if d.WallSeconds < 0 {
		t.Fatalf("snapshot wall_seconds = %v, negative", d.WallSeconds)
	}
	var check func(s *SpanSnapshot)
	check = func(s *SpanSnapshot) {
		if s.Seconds < 0 {
			t.Fatalf("span %q has negative duration %v", s.Name, s.Seconds)
		}
		for _, c := range s.Children {
			check(c)
		}
	}
	for _, s := range d.Spans {
		check(s)
	}
	for n, st := range d.Timers {
		if st.Min < 0 || st.Sum < 0 {
			t.Fatalf("timer %q went negative: %+v", n, st)
		}
	}
	if st := d.Histograms["h"]; st.Sum < 0 || st.Buckets[0] != 1 {
		t.Fatalf("histogram accepted a negative value: %+v", st)
	}
	_ = run
}

func TestClampDuration(t *testing.T) {
	if ClampDuration(-time.Second) != 0 {
		t.Fatal("ClampDuration(-1s) != 0")
	}
	if ClampDuration(time.Second) != time.Second {
		t.Fatal("ClampDuration(1s) changed a positive duration")
	}
}
