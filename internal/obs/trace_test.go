package obs

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestTraceJSONFromSpansAndFlight(t *testing.T) {
	clk := &steppedClock{t: time.Unix(3000, 0)}
	defer setClock(clk.now)()

	r := New()
	root := r.StartDetachedSpan("job:j1")
	clk.step(10 * time.Millisecond)
	child := root.StartChild("exp:fig3")
	clk.step(20 * time.Millisecond)
	child.End()
	root.End()

	rec := NewRecorder(16)
	rec.Record("serve.job", "state", "queued", "")
	clk.step(5 * time.Millisecond)
	rec.RecordDur("experiments.cell/w0", "task", "experiments.cell[0]", "", 5*time.Millisecond)
	rec.Record("sparse.matrix_cache", "cache_evict", "evict", "m1")

	blob, err := TraceJSON([]*SpanSnapshot{root.Snapshot()}, rec.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := LintTrace(blob); err != nil {
		t.Fatalf("our own trace fails lint: %v", err)
	}

	var f struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Cat  string  `json:"cat"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			ID   string  `json:"id"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(blob, &f); err != nil {
		t.Fatal(err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	counts := map[string]int{}
	for _, e := range f.TraceEvents {
		counts[e.Ph]++
		if e.Ph == "b" || e.Ph == "e" {
			if e.ID == "" {
				t.Fatalf("async span event %q has no id", e.Name)
			}
		}
	}
	if counts["b"] != 2 || counts["e"] != 2 {
		t.Fatalf("want 2 span begin/end pairs, got b=%d e=%d", counts["b"], counts["e"])
	}
	if counts["X"] != 1 {
		t.Fatalf("want 1 complete task event, got %d", counts["X"])
	}
	if counts["i"] != 2 {
		t.Fatalf("want 2 instants, got %d", counts["i"])
	}
	if counts["M"] < 4 { // process + spans row + 3 flight tracks
		t.Fatalf("want >=4 metadata events, got %d", counts["M"])
	}

	tracks, err := TraceTrackNames(blob)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"spans": false, "serve.job": false,
		"experiments.cell/w0": false, "sparse.matrix_cache": false,
	}
	for _, n := range tracks {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("trace missing track %q (have %v)", n, tracks)
		}
	}
}

func TestTraceJSONEmptyInputsStillValid(t *testing.T) {
	blob, err := TraceJSON(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Process metadata alone keeps the file loadable.
	if err := LintTrace(blob); err != nil {
		t.Fatalf("empty trace fails lint: %v", err)
	}
}

func TestTraceJSONWorkerTracksFromPool(t *testing.T) {
	r := New()
	rec := NewRecorder(64)
	ctx := WithRecorder(context.Background(), rec)
	p := r.Pool("sim.ue_walk")
	if err := p.ForEachCtx(ctx, 8, 4, func(int) {}); err != nil {
		t.Fatal(err)
	}
	blob, err := TraceJSON(nil, rec.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	tracks, err := TraceTrackNames(blob)
	if err != nil {
		t.Fatal(err)
	}
	workerTracks := 0
	for _, n := range tracks {
		if len(n) > len("sim.ue_walk/") && n[:len("sim.ue_walk/")] == "sim.ue_walk/" {
			workerTracks++
		}
	}
	if workerTracks < 1 || workerTracks > 4 {
		t.Fatalf("want 1..4 worker tracks, got %d (%v)", workerTracks, tracks)
	}
}

func TestLintTraceRejectsGarbage(t *testing.T) {
	for name, blob := range map[string]string{
		"not json":    "hello",
		"empty":       `{"traceEvents":[]}`,
		"no ph":       `{"traceEvents":[{"name":"x"}]}`,
		"no name":     `{"traceEvents":[{"ph":"X","ts":1}]}`,
		"negative ts": `{"traceEvents":[{"ph":"X","name":"x","ts":-5}]}`,
	} {
		if err := LintTrace([]byte(blob)); err == nil {
			t.Errorf("%s: LintTrace accepted %s", name, blob)
		}
	}
}
