package obs

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Chrome trace-event / Perfetto JSON export. TraceJSON renders a span
// tree plus a flight-recorder tail as one timeline:
//
//   - every span becomes an async begin/end pair ("b"/"e") with a
//     unique id - async, not complete ("X"), because sibling spans
//     genuinely overlap in time (parallel matrices, parallel cells)
//     and overlapping X events on one thread row are undefined in the
//     trace format;
//   - flight events with a duration (pool tasks, matrix fetches)
//     become complete events ("X") on the thread row named by their
//     Track, so each pool worker gets its own lane;
//   - instant flight events (cache hits/evictions, state transitions,
//     watchdog ticks, fault injections) become thread-scoped instants
//     ("i") on their Track's row;
//   - metadata events ("M") name the process and every thread row.
//
// Timestamps are microseconds from the earliest moment in the capture,
// so the viewer opens at t=0 regardless of wall-clock epoch.

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

const tracePid = 1

// TraceJSON renders spans and an optional flight snapshot as a Chrome
// trace-event JSON object (the format Perfetto's "Open trace file"
// accepts). Either argument may be empty/nil.
func TraceJSON(spans []*SpanSnapshot, flight *FlightSnapshot) ([]byte, error) {
	// Epoch: the earliest start among spans and events.
	var t0 int64
	seen := false
	consider := func(ns int64) {
		if ns > 0 && (!seen || ns < t0) {
			t0, seen = ns, true
		}
	}
	var walkStart func(s *SpanSnapshot)
	walkStart = func(s *SpanSnapshot) {
		if s == nil {
			return
		}
		consider(s.StartUnixNano)
		for _, c := range s.Children {
			walkStart(c)
		}
	}
	for _, s := range spans {
		walkStart(s)
	}
	if flight != nil {
		for _, e := range flight.Events {
			consider(e.UnixNano - e.DurNanos)
		}
	}
	usec := func(ns int64) float64 {
		if ns < t0 {
			ns = t0
		}
		return float64(ns-t0) / 1e3
	}

	out := &traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{
		{Name: "process_name", Ph: "M", Pid: tracePid, Tid: 0,
			Args: map[string]any{"name": "sccsim"}},
	}}

	// Thread rows: tid 1 is the span tree; flight tracks get stable
	// tids in first-appearance order.
	const spanTid = 1
	out.TraceEvents = append(out.TraceEvents, traceEvent{
		Name: "thread_name", Ph: "M", Pid: tracePid, Tid: spanTid,
		Args: map[string]any{"name": "spans"},
	})
	tids := map[string]int{}
	nextTid := spanTid + 1
	trackTid := func(track string) int {
		if track == "" {
			track = "events"
		}
		tid, ok := tids[track]
		if !ok {
			tid = nextTid
			nextTid++
			tids[track] = tid
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", Pid: tracePid, Tid: tid,
				Args: map[string]any{"name": track},
			})
		}
		return tid
	}
	if flight != nil {
		// Pre-register tracks sorted so tids (and row order) are stable
		// across identical captures regardless of event interleaving.
		names := make([]string, 0, 8)
		have := map[string]bool{}
		for _, e := range flight.Events {
			t := e.Track
			if t == "" {
				t = "events"
			}
			if !have[t] {
				have[t] = true
				names = append(names, t)
			}
		}
		sort.Strings(names)
		for _, t := range names {
			trackTid(t)
		}
	}

	spanSeq := 0
	var emitSpan func(s *SpanSnapshot)
	emitSpan = func(s *SpanSnapshot) {
		if s == nil {
			return
		}
		spanSeq++
		id := fmt.Sprintf("s%d", spanSeq)
		start := usec(s.StartUnixNano)
		if s.StartUnixNano == 0 {
			start = 0
		}
		var args map[string]any
		if len(s.Rollup) > 0 || s.Dropped > 0 || s.Running {
			args = map[string]any{}
			if s.Running {
				args["running"] = true
			}
			if s.Dropped > 0 {
				args["dropped_children"] = s.Dropped
			}
			for n, rc := range s.Rollup {
				args["rollup."+n] = map[string]any{"count": rc.Count, "seconds": rc.Seconds}
			}
		}
		out.TraceEvents = append(out.TraceEvents,
			traceEvent{Name: s.Name, Cat: "span", Ph: "b", Ts: start,
				Pid: tracePid, Tid: spanTid, ID: id, Args: args},
			traceEvent{Name: s.Name, Cat: "span", Ph: "e",
				Ts: start + s.Seconds*1e6, Pid: tracePid, Tid: spanTid, ID: id})
		for _, c := range s.Children {
			emitSpan(c)
		}
	}
	for _, s := range spans {
		emitSpan(s)
	}

	if flight != nil {
		for _, e := range flight.Events {
			tid := trackTid(e.Track)
			args := map[string]any{"seq": e.Seq, "kind": e.Kind}
			if e.Detail != "" {
				args["detail"] = e.Detail
			}
			if e.DurNanos > 0 {
				out.TraceEvents = append(out.TraceEvents, traceEvent{
					Name: e.Name, Cat: e.Kind, Ph: "X",
					Ts:  usec(e.UnixNano - e.DurNanos),
					Dur: float64(e.DurNanos) / 1e3,
					Pid: tracePid, Tid: tid, Args: args,
				})
			} else {
				out.TraceEvents = append(out.TraceEvents, traceEvent{
					Name: e.Name, Cat: e.Kind, Ph: "i", S: "t",
					Ts: usec(e.UnixNano), Pid: tracePid, Tid: tid, Args: args,
				})
			}
		}
	}

	return json.Marshal(out)
}

// LintTrace validates Chrome trace-event JSON structurally: the
// top-level object holds a non-empty traceEvents array and every event
// carries a phase, a name, and (for non-metadata phases) a
// non-negative timestamp. Shared by cmd tools and the e2e suite.
func LintTrace(data []byte) error {
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("trace: not a JSON object: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		return fmt.Errorf("trace: empty traceEvents array")
	}
	for i, e := range f.TraceEvents {
		ph, _ := e["ph"].(string)
		if ph == "" {
			return fmt.Errorf("trace: event %d has no ph", i)
		}
		if _, ok := e["name"].(string); !ok {
			return fmt.Errorf("trace: event %d has no name", i)
		}
		if ph == "M" {
			continue
		}
		ts, ok := e["ts"].(float64)
		if !ok && e["ts"] != nil {
			return fmt.Errorf("trace: event %d ts is not numeric", i)
		}
		if ts < 0 {
			return fmt.Errorf("trace: event %d ts %v negative", i, ts)
		}
	}
	return nil
}

// TraceTrackNames extracts the thread row names a trace declares,
// sorted - the assertion surface for the e2e suite ("one track per
// worker" is checked by name).
func TraceTrackNames(data []byte) ([]string, error) {
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	var names []string
	for _, e := range f.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			if n, ok := e.Args["name"].(string); ok {
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}
