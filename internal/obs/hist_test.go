package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketIndex(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{-5, 0}, // Observe clamps, but bucketIndex must hold on its own
		{1e-6, 0},
		{1.0000001e-6, 1},
		{2e-6, 1},
		{2.0000001e-6, 2},
		{1e-3, 10},          // 1e-6 * 2^10 = 1.024e-3 >= 1e-3, 2^9 = 5.12e-4 < 1e-3
		{1, 20},             // 2^20 * 1e-6 = 1.048576 >= 1, 2^19 too small
		{1e12, histBuckets}, // overflow
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every finite bound must land in its own bucket (inclusive upper).
	for i, b := range HistBounds() {
		if got := bucketIndex(b); got != i {
			t.Errorf("bucketIndex(bound[%d]=%g) = %d, want %d", i, b, got, i)
		}
	}
}

func TestHistogramObserveAndStats(t *testing.T) {
	r := New()
	h := r.Histogram("serve.jobs.exec_seconds")
	if r.Histogram("serve.jobs.exec_seconds") != h {
		t.Fatal("same name must return the same histogram")
	}
	h.Observe(0.5e-6) // bucket 0
	h.Observe(3e-6)   // bucket 2
	h.Observe(-1)     // clamps to 0, bucket 0
	h.Observe(math.NaN())
	h.Observe(1e40) // overflow
	st := h.Stats()
	if st.Count != 4 {
		t.Fatalf("count = %d, want 4 (NaN dropped)", st.Count)
	}
	var sum int64
	for _, n := range st.Buckets {
		sum += n
	}
	if sum != st.Count {
		t.Fatalf("sum(buckets) = %d != count %d", sum, st.Count)
	}
	if st.Buckets[0] != 2 || st.Buckets[2] != 1 || st.Buckets[histBuckets] != 1 {
		t.Fatalf("bucket layout wrong: %v", st.Buckets)
	}
	if want := 0.5e-6 + 3e-6 + 0 + 1e40; st.Sum != want {
		t.Fatalf("sum = %g, want %g", st.Sum, want)
	}
	if !(st.P50 <= st.P95 && st.P95 <= st.P99) {
		t.Fatalf("quantiles not monotone: p50=%g p95=%g p99=%g", st.P50, st.P95, st.P99)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("q")
	// 100 observations of ~1ms: all land in one bucket, so every
	// quantile must interpolate inside that bucket's bounds.
	for i := 0; i < 100; i++ {
		h.Observe(1e-3)
	}
	st := h.Stats()
	lo, hi := HistBounds()[9], HistBounds()[10]
	for _, q := range []float64{st.P50, st.P95, st.P99} {
		if q < lo || q > hi {
			t.Fatalf("quantile %g outside containing bucket [%g, %g]", q, lo, hi)
		}
	}
	// Overflow-only distribution clamps to the last finite bound.
	h2 := r.Histogram("q2")
	h2.Observe(1e9)
	bounds := HistBounds()
	if st2 := h2.Stats(); st2.P99 != bounds[len(bounds)-1] {
		t.Fatalf("overflow p99 = %g, want last bound %g", st2.P99, bounds[len(bounds)-1])
	}
	// Empty distribution: all zero.
	if st3 := r.Histogram("q3").Stats(); st3.P50 != 0 || st3.Count != 0 {
		t.Fatalf("empty histogram stats not zero: %+v", st3)
	}
}

func TestHistogramMerge(t *testing.T) {
	r := New()
	a, b := r.Histogram("a"), r.Histogram("b")
	for i := 0; i < 10; i++ {
		a.Observe(1e-3)
		b.Observe(1e-1)
	}
	a.Merge(b)
	st := a.Stats()
	if st.Count != 20 {
		t.Fatalf("merged count = %d, want 20", st.Count)
	}
	if want := 10*1e-3 + 10*1e-1; math.Abs(st.Sum-want) > 1e-12 {
		t.Fatalf("merged sum = %g, want %g", st.Sum, want)
	}
	a.Merge(nil) // nil-safe
	var nilH *Histogram
	nilH.Observe(1) // nil-safe
	nilH.Merge(a)
}

func TestHistogramDisabledRegistryDropsObservations(t *testing.T) {
	r := New()
	h := r.Histogram("h")
	r.SetEnabled(false)
	h.Observe(1)
	if st := h.Stats(); st.Count != 0 {
		t.Fatalf("disabled histogram recorded %d observations", st.Count)
	}
	r.SetEnabled(true)
	h.Observe(1)
	if st := h.Stats(); st.Count != 1 {
		t.Fatalf("re-enabled histogram count = %d, want 1", st.Count)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := New()
	h := r.Histogram("c")
	const g, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(g)
	for i := 0; i < g; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Observe(1e-3)
			}
		}()
	}
	wg.Wait()
	st := h.Stats()
	if st.Count != g*per {
		t.Fatalf("count = %d, want %d", st.Count, g*per)
	}
	if want := float64(g*per) * 1e-3; math.Abs(st.Sum-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", st.Sum, want)
	}
}

func TestHistogramInSnapshot(t *testing.T) {
	r := New()
	r.Histogram("serve.jobs.exec_seconds").Observe(0.25)
	d := r.Snapshot()
	st, ok := d.Histograms["serve.jobs.exec_seconds"]
	if !ok {
		t.Fatal("snapshot missing histogram")
	}
	if st.Count != 1 || len(st.Buckets) != histBuckets+1 {
		t.Fatalf("snapshot histogram malformed: count=%d buckets=%d", st.Count, len(st.Buckets))
	}
	if _, err := r.SnapshotJSON(); err != nil {
		t.Fatalf("SnapshotJSON: %v", err)
	}
}
