package obs

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestForEachCtxNilAndBackgroundMatchForEach(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		if err := New().Pool("t").ForEachCtx(nil, 10, workers, func(i int) { ran.Add(1) }); err != nil {
			t.Fatalf("workers=%d: nil ctx: %v", workers, err)
		}
		if ran.Load() != 10 {
			t.Fatalf("workers=%d: ran %d/10 tasks", workers, ran.Load())
		}
	}
}

func TestForEachCtxSerialStopsAtCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	err := New().Pool("t").ForEachCtx(ctx, 10, 1, func(i int) {
		ran++
		if i == 2 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Tasks 0..2 ran; the serial path checks before each start.
	if ran != 3 {
		t.Fatalf("ran %d tasks after cancelling inside task 2, want 3", ran)
	}
}

func TestForEachCtxParallelStopsDispatching(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any dispatch
	var ran atomic.Int64
	err := New().Pool("t").ForEachCtx(ctx, 100, 4, func(i int) { ran.Add(1) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-cancelled pool still ran %d tasks", ran.Load())
	}
}

func TestForEachCtxMidRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := New().Pool("t").ForEachCtx(ctx, 1000, 2, func(i int) {
		if ran.Add(1) == 5 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// In-flight tasks finish; no new dispatches after the cancel lands. The
	// exact count is timing-dependent but must be far below the full range.
	if n := ran.Load(); n < 5 || n > 900 {
		t.Fatalf("ran %d/1000 tasks after cancelling at task 5", n)
	}
}
